// Package scamv is a Go reimplementation of the Scam-V side-channel model
// validation framework with observation refinement (Buiras, Nemati, Lindner,
// Guanciale: "Validation of Side-Channel Models via Observation Refinement",
// MICRO 2021).
//
// The pipeline mirrors Fig. 1 of the paper: generate a binary program,
// synthesize the observational-equivalence relation of the model under
// validation, instantiate it as a pair of input states — guided by a refined
// model and by coverage support models — and execute the pair on the
// hardware, measuring the side channel to decide distinguishability. The
// "hardware" here is the Cortex-A53-like simulator of internal/micro; see
// DESIGN.md for every substitution made relative to the paper's Raspberry
// Pi 3 platform.
//
// The central entry point is Run, which executes a whole Experiment
// (many programs × many test cases) and returns the statistics the paper's
// Table 1 and Fig. 7 report. Pipeline gives finer-grained access for single
// programs, used by the runnable examples.
package scamv

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/core"
	"scamv/internal/gen"
	"scamv/internal/journal"
	"scamv/internal/lifter"
	"scamv/internal/logdb"
	"scamv/internal/micro"
	"scamv/internal/obs"
	"scamv/internal/smt"
	"scamv/internal/stage"
	"scamv/internal/symexec"
	"scamv/internal/telemetry"
)

// Verdict classifies one executed experiment (paper §6.1: each experiment
// is repeated and discrepancies across repetitions are inconclusive).
type Verdict int

// Experiment verdicts.
const (
	// Indistinguishable: the two states produced identical observable
	// cache states in every repetition.
	Indistinguishable Verdict = iota
	// Counterexample: the states are distinguishable on the hardware even
	// though the model under validation equates them — the model is unsound.
	Counterexample
	// Inconclusive: the repetitions disagreed (measurement noise).
	Inconclusive
)

func (v Verdict) String() string {
	switch v {
	case Indistinguishable:
		return "indistinguishable"
	case Counterexample:
		return "counterexample"
	case Inconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Experiment configures one full validation campaign: a program template, a
// model pair, coverage support, and execution parameters.
type Experiment struct {
	// Name identifies the experiment in reports and logs.
	Name string
	// Template generates the test programs.
	Template gen.Template
	// Model is the (model under validation, refined model) pair.
	Model obs.ModelPair
	// Refined enables refinement guidance (s1 ≁M2 s2). When false the
	// campaign is the unguided baseline even if Model carries refined
	// observations.
	Refined bool
	// Support is the coverage support model (nil = M_pc only).
	Support obs.Support

	// Programs is the number of programs to generate; TestsPerProgram the
	// number of test cases attempted per program.
	Programs        int
	TestsPerProgram int

	// Seed makes the whole campaign deterministic.
	Seed int64
	// RandomPhaseProb diversifies solver models; see internal/smt.
	RandomPhaseProb float64
	// MaxConflicts bounds each solver query (0 = unbounded).
	MaxConflicts int64

	// Micro is the simulated core; zero value means micro.DefaultConfig.
	Micro micro.Config
	// AttackerView filters which cache sets the attacker observes
	// (nil = the full cache).
	AttackerView micro.View
	// TimingAttacker extends the attacker's power with the cycle counter:
	// two runs are distinguishable when their observable cache states OR
	// their total execution times differ. Used by the variable-time
	// arithmetic channel experiments (§3's illustration).
	TimingAttacker bool
	// Speculative enables branch-predictor mistraining before measured
	// runs (§5.3), required for the M_ct/M_spec experiments.
	Speculative bool
	// TrainRuns is the number of predictor-training executions (default 4).
	TrainRuns int
	// Repeats is the number of repetitions per experiment (default 10).
	Repeats int

	// Log, when non-nil, receives one record per executed experiment.
	Log *logdb.DB

	// Trace, when non-nil, is the campaign telemetry spine: it receives a
	// span per program per pipeline stage (proggen, encode, lift, symexec,
	// testgen, execute), a query event per solver query with its effort
	// deltas, and a verdict event per executed test case — feeding the
	// -trace JSONL writer, the live -progress line, and the -debug-addr
	// endpoint. A nil Trace costs one pointer check per instrumentation
	// site. Both engines (staged and monolithic) emit the same spans, so
	// trace-derived aggregates are engine-independent.
	Trace *telemetry.Tracer

	// Platform executes experiments; nil means the simulator (SimPlatform)
	// configured by Micro — by default the Cortex-A53-like core. A deployment
	// against real hardware plugs in here — possibly wrapped in a
	// MultiPlatform pool or a faultinject chaos platform.
	Platform Platform

	// Platforms, when non-empty, turns the campaign into a platform-matrix
	// campaign: the test suite is generated once and every test case is
	// executed on each listed platform back to back (batched execution),
	// producing one PlatformResult row per platform in Result.Matrix.
	// Platform 0 is the primary row — its verdicts feed the top-level Result
	// counts exactly as a single-platform campaign's would. See matrix.go.
	Platforms []PlatformSpec

	// matrixExps holds the per-platform experiment clones of a matrix
	// campaign (the campaign experiment with Micro swapped), built by
	// RunContext via buildMatrix.
	matrixExps []*Experiment

	// FailPolicy selects what happens when a platform call keeps failing:
	// FailFast (zero value) aborts the campaign as before, Degrade records
	// the test as skipped and continues. See resilience.go.
	FailPolicy FailPolicy
	// ExecTimeout bounds every platform Execute call (0 = no deadline).
	// An expired deadline classifies as transient and consumes a retry.
	ExecTimeout time.Duration
	// Retries is the per-call retry budget for transient platform errors
	// (0 = a single attempt, today's semantics).
	Retries int
	// RetryBackoff is the base delay before the first retry, doubling per
	// retry with seeded jitter (0 = the resilient default of 1ms).
	RetryBackoff time.Duration
	// QuarantineAfter is the number of consecutive failed test cases after
	// which a program is quarantined under Degrade (default 3).
	QuarantineAfter int

	// Journal, when non-nil, is the campaign's crash-safety spine: every
	// completed program is appended to a durable write-ahead journal as the
	// in-order merge step commits it, with periodic atomic checkpoints, and
	// a journal opened with Resume makes RunContext skip the restored
	// prefix and reproduce the remainder deterministically — the Result is
	// byte-identical (modulo wall-clock fields) to an uninterrupted run.
	// The caller owns the journal's lifecycle (Open before Run, Close
	// after); RunContext calls Begin, Append, and the final Checkpoint.
	// See internal/journal and DESIGN.md §15.
	Journal *journal.Campaign

	// Drain, when non-nil, is the graceful-shutdown seam: closing the
	// channel stops the engines from starting new programs while everything
	// in flight completes and merges (and journals, when armed). The
	// campaign then returns a partial Result with Drained set — resumable,
	// not failed. Distinct from context cancellation, which aborts in-flight
	// work. ArmShutdown wires SIGINT/SIGTERM to a drain channel.
	Drain <-chan struct{}

	// restoredN is the length of the journal-restored prefix: the engines
	// process programs [restoredN, Programs) and fast-forward every
	// sequential seed stream across the skipped prefix. Set by RunContext.
	restoredN int

	// restoredShapeHits/Misses are the shape-cache lookup totals replayed
	// from the restored programs' journaled key lists; added to the live
	// cache's stats at harvest so resumed totals equal an uninterrupted
	// run's.
	restoredShapeHits   int64
	restoredShapeMisses int64

	// Parallel is the number of programs processed concurrently (<= 1
	// means sequential). Counts are deterministic regardless of the
	// setting; only wall-clock TTC varies with scheduling.
	Parallel int

	// LegacySolver disables the shared-prefix incremental solver and builds
	// one fresh SMT solver per generator stream, as before the incremental
	// rework. Kept for A/B benchmarking (see core.Config.Legacy); campaigns
	// should leave it false.
	LegacySolver bool

	// Portfolio, when >= 1, races that many diversified CDCL workers per
	// solver query, first answer wins. Worker 0 is canonical, so campaign
	// results are byte-identical across portfolio sizes; only wall-clock
	// generation time changes. 0 keeps the classic single-solver backend.
	Portfolio int

	// SharedCache enables the campaign-scoped blast/query cache: pair-
	// relation encodings are computed once per template shape and cloned for
	// every alpha-equivalent program (same template, different register
	// allocation), across all concurrent testgen workers. Results are
	// byte-identical with the cache on or off. Ignored under LegacySolver.
	SharedCache bool

	// shapeCache is the campaign's shared prototype cache, created by
	// RunContext when SharedCache is set.
	shapeCache *smt.ShapeCache

	// Monolithic disables the staged engine and runs the pre-staged
	// program-level worker pool (no stage overlap, no Result.Stages
	// metrics). Counts are identical either way; kept for A/B benchmarking
	// (make bench-campaign). Campaigns should leave it false.
	Monolithic bool
}

func (e *Experiment) platform() Platform {
	if e.Platform != nil {
		return e.Platform
	}
	return SimPlatform{}
}

// WithDefaults returns a copy of the experiment with unset execution
// parameters filled in (repeat counts, microarchitecture, attacker view).
// Run applies it automatically; callers driving Pipeline.ExecuteTestCase
// directly should apply it themselves.
func (e *Experiment) WithDefaults() Experiment {
	out := *e
	if out.TrainRuns == 0 {
		out.TrainRuns = 4
	}
	if out.Repeats == 0 {
		out.Repeats = 10
	}
	// Merge the microarchitecture field by field so a partially-set config
	// keeps its explicit fields (VarTimeMul, SpecWindow, PrefetchDisabled,
	// cycle costs, ...) instead of being replaced wholesale. Intentionally
	// zero fields use sentinels; see micro.NoSpeculation.
	out.Micro = out.Micro.WithDefaults()
	if out.AttackerView == nil {
		out.AttackerView = micro.FullView
	}
	if out.TestsPerProgram == 0 {
		out.TestsPerProgram = 40
	}
	if out.Programs == 0 {
		out.Programs = 10
	}
	if out.QuarantineAfter == 0 {
		out.QuarantineAfter = 3
	}
	return out
}

// Result aggregates a campaign's outcome in the shape of the paper's
// Table 1 rows.
type Result struct {
	Name       string
	Model      string
	Refinement string
	Coverage   string

	Programs            int // programs generated
	ProgramsWithCounter int // programs with ≥ 1 counterexample
	Experiments         int // executed test cases
	Counterexamples     int
	Inconclusive        int

	// EncodeFallbacks counts programs whose A64 encode/decode round trip
	// was inconsistent (the decoded program re-encodes to different words)
	// and that therefore ran in their structured form.
	EncodeFallbacks int

	GenTime time.Duration // total test-case generation time
	ExeTime time.Duration // total experiment execution time

	// Queries counts solver queries issued during generation (sat + unsat +
	// given-up); Queries/GenTime is the generation throughput tracked by
	// BENCH_gen.json.
	Queries int

	// TTC is the time to the first counterexample (wall clock from the
	// start of the campaign); Found reports whether one was found at all.
	// Wall clock varies with scheduling under Parallel > 1, so TTC is NOT
	// deterministic per seed — FirstCEProgram/FirstCETest are.
	TTC   time.Duration
	Found bool

	// FirstCEProgram and FirstCETest locate the first counterexample in
	// campaign order: the lowest program index with a counterexample and
	// the first distinguishing test index within it. Unlike the wall-clock
	// TTC, this index is deterministic per seed regardless of Parallel.
	// Both are -1 when Found is false.
	FirstCEProgram int
	FirstCETest    int

	// Stages is the staged engine's metrics spine: one snapshot per
	// pipeline stage (items in/out, busy time, queue-wait and backpressure
	// time), in pipeline order. Empty when Monolithic is set. It tells
	// future optimization work which stage to shard or cache next.
	Stages []stage.Snapshot

	// Resilience accounting (all zero on a healthy platform). SkippedTests
	// counts test cases abandoned under FailPolicy Degrade (including the
	// untried remainder of quarantined programs); QuarantinedPrograms the
	// programs cut off after QuarantineAfter consecutive failures; Skips
	// the per-skip reasons in program order. Retries and Timeouts count
	// resilience-layer events across the campaign; BreakerTrips the circuit
	// breaker trips of a MultiPlatform pool.
	SkippedTests        int
	QuarantinedPrograms int
	Skips               []Skip
	Retries             int
	Timeouts            int
	BreakerTrips        uint64

	// ShapeHits and ShapeMisses count campaign shape-cache lookups when
	// Experiment.SharedCache is set (misses = distinct template shapes
	// encoded; both deterministic per seed). Zero when the cache is off.
	ShapeHits   int64
	ShapeMisses int64

	// RestoredPrograms counts the programs restored from a resumed
	// campaign journal rather than executed in this process; they are
	// included in Programs and every other aggregate. Zero without -resume.
	RestoredPrograms int

	// Drained reports that the campaign stopped early at a graceful
	// shutdown request (Experiment.Drain): the counts cover a prefix of the
	// campaign, and with a journal armed the rest is resumable. A drained
	// campaign returns a Result and a nil error — partial data is data.
	Drained bool

	// Checkpoints counts the atomic checkpoint snapshots written by the
	// campaign journal (periodic plus the final one). Zero without
	// -checkpoint.
	Checkpoints int

	// Matrix holds one soundness row per platform of a matrix campaign
	// (Experiment.Platforms), in platform order; empty for single-platform
	// campaigns. Row 0 mirrors the top-level counts. See matrix.go.
	Matrix []PlatformResult

	// DebugAddr is the actually-bound address of the tracer's debug
	// endpoint ("" when none serves). With -debug-addr=:0 the kernel picks
	// the port; this is where scripts find it.
	DebugAddr string
}

// AvgGen returns the mean generation time per experiment.
func (r *Result) AvgGen() time.Duration {
	if r.Experiments == 0 {
		return 0
	}
	return r.GenTime / time.Duration(r.Experiments)
}

// AvgExe returns the mean execution time per experiment.
func (r *Result) AvgExe() time.Duration {
	if r.Experiments == 0 {
		return 0
	}
	return r.ExeTime / time.Duration(r.Experiments)
}

// Pipeline is the per-program portion of the Scam-V flow: lift, instrument,
// symbolically execute, and generate/execute test cases for one program.
type Pipeline struct {
	Prog         *arm.Program
	Model        obs.ModelPair
	Instrumented *bir.Program
	Paths        []*symexec.Path
	Registers    []string
}

// NewPipeline lifts and instruments prog under the model pair and runs
// symbolic execution once (the §5.1 optimization: a single run serves both
// M1 and M2 via observation tags).
func NewPipeline(prog *arm.Program, model obs.ModelPair) (*Pipeline, error) {
	return newPipelineTraced(prog, model, nil, 0)
}

// newPipelineTraced is NewPipeline with telemetry: the lift span covers
// lifting plus model instrumentation, the symexec span the symbolic run.
func newPipelineTraced(prog *arm.Program, model obs.ModelPair, tr *telemetry.Tracer, p int) (*Pipeline, error) {
	t0 := time.Now()
	bp, err := lifter.Lift(prog)
	if err != nil {
		return nil, fmt.Errorf("scamv: lift %s: %w", prog.Name, err)
	}
	inst, err := model.Instrument(bp)
	if err != nil {
		return nil, fmt.Errorf("scamv: instrument %s: %w", prog.Name, err)
	}
	tr.Span("lift", p, t0)
	t0 = time.Now()
	paths, err := symexec.Run(inst, 0)
	if err != nil {
		return nil, fmt.Errorf("scamv: symexec %s: %w", prog.Name, err)
	}
	tr.Span("symexec", p, t0)
	var regs []string
	for name := range inst.Registers() {
		if isArchReg(name) {
			regs = append(regs, name)
		}
	}
	sort.Strings(regs)
	return &Pipeline{
		Prog:         prog,
		Model:        model,
		Instrumented: inst,
		Paths:        paths,
		Registers:    regs,
	}, nil
}

func isArchReg(name string) bool {
	if len(name) < 2 || name[0] != 'x' {
		return false
	}
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Generator builds the refinement-guided test-case generator for this
// program.
func (pl *Pipeline) Generator(e *Experiment, programSeed int64) *core.Generator {
	return pl.generatorCtx(context.Background(), e, programSeed, 0)
}

// generatorCtx is Generator with the campaign context (cancellation reaches
// down into the SAT search) and the program index for query-event tagging.
func (pl *Pipeline) generatorCtx(ctx context.Context, e *Experiment, programSeed int64, p int) *core.Generator {
	return core.NewGenerator(pl.Paths, core.Config{
		Seed:            programSeed,
		RandomPhaseProb: e.RandomPhaseProb,
		Refined:         e.Refined && pl.Model.Refined(),
		Support:         e.Support,
		MaxConflicts:    e.MaxConflicts,
		Registers:       pl.Registers,
		Legacy:          e.LegacySolver,
		Portfolio:       e.Portfolio,
		ShapeCache:      e.shapeCache,
		Trace:           e.Trace,
		Prog:            p,
		Ctx:             ctx,
	})
}

// TrainingState returns (and caches per path) the predictor-training state
// for a test case whose states take the given path.
func (pl *Pipeline) TrainingState(path int, seed int64) (*core.State, bool) {
	return core.TrainingState(pl.Paths, path, pl.Registers, seed)
}

// Measurement is what the attacker observes from one victim execution: the
// final cache state through the attacker view, and (for timing attackers)
// the cycle count.
type Measurement struct {
	Snapshot *micro.Snapshot
	Cycles   uint64
}

// Distinguishable reports whether two measurements differ for an attacker,
// optionally including the timing channel.
func (m Measurement) Distinguishable(o Measurement, timing bool) bool {
	return !m.Snapshot.Equal(o.Snapshot) || timing && m.Cycles != o.Cycles
}

// Platform abstracts the experiment execution platform of the paper's
// Fig. 8: the component that installs an architectural state, optionally
// trains the branch predictor, runs the victim, and reports the side-channel
// measurement. The default is the simulated Cortex-A53 (SimPlatform);
// a deployment with real boards would implement this interface against its
// debug bridge, as the original Scam-V does with EmbExp.
//
// Execute must honor ctx: the resilience layer derives a per-call deadline
// from Experiment.ExecTimeout, and campaign cancellation flows through the
// same context. A platform that can hang (a wedged board, a stuck bridge)
// must select on ctx.Done so the campaign can cut it loose. Errors may be
// classified with resilient.MarkTransient / resilient.MarkPermanent;
// unclassified errors are treated as transient (retryable).
type Platform interface {
	Execute(ctx context.Context, e *Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (Measurement, error)
}

// SimPlatform runs experiments on the internal/micro simulator.
type SimPlatform struct{}

// Execute implements Platform. The simulator never blocks, so ctx is only
// honored between runs.
func (SimPlatform) Execute(ctx context.Context, e *Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (Measurement, error) {
	if err := ctx.Err(); err != nil {
		return Measurement{}, err
	}
	m := micro.New(e.Micro)
	if e.Speculative && train != nil {
		for i := 0; i < e.TrainRuns; i++ {
			if err := m.LoadState(train.Regs, train.Mem); err != nil {
				return Measurement{}, err
			}
			if err := m.Run(prog, 0, nil); err != nil {
				return Measurement{}, err
			}
		}
	}
	if err := m.LoadState(st.Regs, st.Mem); err != nil {
		return Measurement{}, err
	}
	m.ResetMicro() // the platform module clears the cache before the run
	if err := m.Run(prog, 0, noise); err != nil {
		return Measurement{}, err
	}
	return Measurement{Snapshot: m.Cache.Snapshot(e.AttackerView), Cycles: m.Cycles}, nil
}

// ExecuteTestCase runs a test case Repeats times and classifies it. Errors
// are wrapped with the repeat number and which of the two states (S1/S2) was
// running; inside a campaign the engines add the program and test indexes.
// The retry/timeout policy of the experiment applies (see resilience.go).
func (pl *Pipeline) ExecuteTestCase(e *Experiment, tc *core.TestCase, train *core.State, noiseSeed int64) (Verdict, error) {
	v, _, err := pl.executeTestCase(context.Background(), e, -1, -1, tc, train, noiseSeed)
	return v, err
}

// programResult is one program's contribution to the campaign Result,
// produced by the Execute stage (or by runProgram on the monolithic path)
// and merged in program order by Collect.
type programResult struct {
	experiments     int
	counterexamples int
	inconclusive    int
	encodeFallbacks int
	queries         int
	genTime         time.Duration
	exeTime         time.Duration
	found           bool
	firstCETest     int // test index of the first counterexample, -1 if none
	ttcWall         time.Duration
	records         []logdb.Record

	// Resilience accounting under FailPolicy Degrade (see resilience.go).
	skippedTests int
	quarantined  bool
	skips        []Skip
	retries      int
	timeouts     int

	// platforms is the per-platform tally of a matrix campaign, one entry
	// per Experiment.Platforms spec; nil otherwise. See matrix.go.
	platforms []platformTally

	// shapeKeys are the program's shape-cache lookups (key hashes in lookup
	// order), journaled for resume accounting. See core.Generator.ShapeKeys.
	shapeKeys []uint64
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer with
// full avalanche, used to derive statistically independent seed streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noiseSeed derives the measurement-noise seed for test t of program p.
// Each mixing round is a bijection, so two pairs agreeing in p get distinct
// seeds for distinct t and vice versa; cross-pair collisions are a 2^-64
// event. (The previous additive scheme seed^0x5eed + p*100000 + t*100
// collided exactly: (p, t+1000) and (p+1, t) shared a seed once
// TestsPerProgram reached 1000, silently correlating the noise of unrelated
// experiments.)
func noiseSeed(seed int64, p, t int) int64 {
	h := splitmix64(uint64(seed) ^ 0x5eed)
	h = splitmix64(h ^ uint64(p))
	h = splitmix64(h ^ uint64(t))
	return int64(h)
}

// encodeRoundTrip round-trips a generated program through the A64 encoder.
// The pipeline's nominal input is binary code (the original framework
// transpiles binaries), so every campaign exercises real machine code.
// Programs outside the encodable subset (e.g. user templates with wide
// immediates) fall back to their structured form, as does — reported via
// the fallback flag and counted in Result.EncodeFallbacks — a program whose
// decoding is inconsistent: substituting a decoded program that re-encodes
// differently would silently validate different code than was generated.
func encodeRoundTrip(prog *arm.Program) (_ *arm.Program, fallback bool) {
	if words, err := arm.Encode(prog); err == nil {
		if decoded, err := arm.Decode(prog.Name, words); err == nil {
			if rewords, err := arm.Encode(decoded); err == nil && wordsEqual(words, rewords) {
				return decoded, false
			}
			return prog, true
		}
	}
	return prog, false
}

// genOut is the TestGen stage's product for one program: the generated test
// cases with their per-test generation times and the solver query count.
type genOut struct {
	tests     []*core.TestCase
	durs      []time.Duration
	genTime   time.Duration
	queries   int
	shapeKeys []uint64
}

// generateTests is the TestGen stage body: it drives the refinement-guided
// generator for program p until TestsPerProgram cases exist or the relation
// is exhausted. Generation never depends on execution results, which is
// what lets the staged engine overlap it with the Execute stage.
func generateTests(ctx context.Context, e *Experiment, pl *Pipeline, p int) genOut {
	var out genOut
	spanStart := time.Now()
	g := pl.generatorCtx(ctx, e, e.Seed+int64(p)+1, p)
	for t := 0; t < e.TestsPerProgram; t++ {
		genStart := time.Now()
		tc, ok := g.Next()
		d := time.Since(genStart)
		out.genTime += d
		if !ok {
			break
		}
		out.tests = append(out.tests, tc)
		out.durs = append(out.durs, d)
	}
	out.queries = g.QueriesSat + g.QueriesUnsat + g.QueriesFailed
	out.shapeKeys = g.ShapeKeys
	e.Trace.Span("testgen", p, spanStart)
	return out
}

// executeProgram is the Execute stage body: it runs every generated test
// case of program p on the platform and classifies the verdicts. Under
// FailPolicy Degrade a test whose retry budget is exhausted becomes a skip
// record instead of a campaign abort, and QuarantineAfter consecutive
// failures quarantine the program (its remaining tests count as skipped).
//
// In a matrix campaign (Experiment.Platforms) each test case is a batch: the
// K platform runs execute back to back before the next test, on the primary
// platform first (platform 0, whose verdicts feed the single-platform
// bookkeeping below) and then on every other platform, tallied per row.
// Batching lives here in the shared stage body, so the staged and monolithic
// engines batch identically.
func executeProgram(ctx context.Context, e *Experiment, pl *Pipeline, p int, g genOut, start time.Time) (*programResult, error) {
	out := &programResult{genTime: g.genTime, queries: g.queries, firstCETest: -1, shapeKeys: g.shapeKeys}
	matrix := e.matrixExps
	if len(matrix) > 0 {
		out.platforms = make([]platformTally, len(matrix))
		for k := range out.platforms {
			out.platforms[k].firstCETest = -1
		}
	}
	primary := e
	if len(matrix) > 0 {
		primary = matrix[0]
	}
	platformName := func(k int) string { return e.Platforms[k].Name }
	spanStart := time.Now()
	trainCache := map[int]*core.State{}
	consecutive := 0
	for t, tc := range g.tests {
		var train *core.State
		if e.Speculative {
			if cached, ok := trainCache[tc.PathA]; ok {
				train = cached
			} else if st, ok := pl.TrainingState(tc.PathA, e.Seed+int64(p)); ok {
				train = st
				trainCache[tc.PathA] = st
			}
		}
		exeStart := time.Now()
		verdict, stats, err := pl.executeTestCase(ctx, primary, p, t, tc, train, noiseSeed(e.Seed, p, t))
		exeDur := time.Since(exeStart)
		out.exeTime += exeDur
		out.retries += stats.retries
		out.timeouts += stats.timeouts
		if err != nil {
			if e.FailPolicy != Degrade || ctx.Err() != nil {
				return nil, err
			}
			out.skippedTests++
			out.skips = append(out.skips, Skip{Prog: p, Test: t, Reason: err.Error()})
			e.Trace.Skip(p, t, err.Error())
			// A primary failure skips the whole batch: the matrix rows stay
			// aligned on the same executed test set.
			for k := range out.platforms {
				out.platforms[k].skipped++
			}
			consecutive++
			if consecutive >= e.QuarantineAfter {
				remaining := len(g.tests) - t - 1
				out.skippedTests += remaining
				for k := range out.platforms {
					out.platforms[k].skipped += remaining
				}
				out.quarantined = true
				reason := fmt.Sprintf("quarantined after %d consecutive failures (last: %v)", consecutive, err)
				out.skips = append(out.skips, Skip{Prog: p, Test: -1, Reason: reason})
				e.Trace.Quarantine(p, reason)
				break
			}
			continue
		}
		consecutive = 0
		e.Trace.Verdict(p, t, verdict.String(), exeDur)
		out.experiments++
		switch verdict {
		case Counterexample:
			out.counterexamples++
			if !out.found {
				out.found = true
				out.firstCETest = t
				out.ttcWall = time.Since(start)
			}
		case Inconclusive:
			out.inconclusive++
		}
		// Log records are built when either consumer exists: the experiment
		// log appends them now, and the journal carries them durably so a
		// resumed campaign can replay them into a log opened only later.
		logRecord := func(platform string, v Verdict, d time.Duration) {
			if e.Log == nil && e.Journal == nil {
				return
			}
			out.records = append(out.records, logdb.Record{
				Experiment: e.Name,
				Program:    pl.Prog.Name,
				TestIndex:  t,
				PathA:      tc.PathA,
				PathB:      tc.PathB,
				Class:      tc.Class,
				Verdict:    v.String(),
				Platform:   platform,
				GenMicros:  g.durs[t].Microseconds(),
				ExeMicros:  d.Microseconds(),
				Diff:       tc.Diff(),
			})
		}
		if len(matrix) == 0 {
			logRecord("", verdict, exeDur)
			continue
		}
		// Matrix batch: tally the primary run as row 0, then run the
		// remaining platforms on the same test case with the same training
		// state and noise seed (both platform-independent by construction,
		// which is what keeps a matrix row comparable to the equivalent
		// single-platform campaign).
		out.platforms[0].count(verdict, exeDur, t)
		e.Trace.PlatformVerdict(p, t, platformName(0), verdict.String(), exeDur)
		logRecord(platformName(0), verdict, exeDur)
		for k := 1; k < len(matrix); k++ {
			kStart := time.Now()
			kv, kStats, kerr := pl.executeTestCase(ctx, matrix[k], p, t, tc, train, noiseSeed(e.Seed, p, t))
			kDur := time.Since(kStart)
			out.exeTime += kDur
			out.retries += kStats.retries
			out.timeouts += kStats.timeouts
			if kerr != nil {
				if e.FailPolicy != Degrade || ctx.Err() != nil {
					return nil, fmt.Errorf("platform %s: %w", platformName(k), kerr)
				}
				// A secondary-platform failure skips only that row's run; the
				// primary bookkeeping (and quarantine) is untouched.
				out.platforms[k].skipped++
				continue
			}
			out.platforms[k].count(kv, kDur, t)
			e.Trace.PlatformVerdict(p, t, platformName(k), kv.String(), kDur)
			logRecord(platformName(k), kv, kDur)
		}
	}
	e.Trace.Span("execute", p, spanStart)
	e.Trace.ProgramDone()
	return out, nil
}

// runProgram pushes one generated program through the whole pipeline
// in-line: encode round trip, lift+symexec, test generation, execution.
// It is the unit of parallelism of the monolithic engine, and it composes
// exactly the same stage bodies the staged engine wires through channels —
// which is what keeps the two engines seed-for-seed identical.
func runProgram(ctx context.Context, e *Experiment, prog *arm.Program, p int, start time.Time) (*programResult, error) {
	t0 := time.Now()
	prog, fallback := encodeRoundTrip(prog)
	e.Trace.Span("encode", p, t0)
	pl, err := newPipelineTraced(prog, e.Model, e.Trace, p)
	if err != nil {
		return nil, err
	}
	out, err := executeProgram(ctx, e, pl, p, generateTests(ctx, e, pl, p), start)
	if err != nil {
		return nil, err
	}
	if fallback {
		out.encodeFallbacks++
	}
	return out, nil
}

// mergeProgram folds one program's result into the campaign Result. Callers
// must invoke it in ascending program order: that ordering is what makes
// counts, the log record sequence, and the first-counterexample index
// deterministic regardless of worker scheduling.
func (res *Result) mergeProgram(e *Experiment, p int, out *programResult) error {
	res.Programs++
	res.Experiments += out.experiments
	res.Counterexamples += out.counterexamples
	res.Inconclusive += out.inconclusive
	res.EncodeFallbacks += out.encodeFallbacks
	res.Queries += out.queries
	res.GenTime += out.genTime
	res.ExeTime += out.exeTime
	res.SkippedTests += out.skippedTests
	if out.quarantined {
		res.QuarantinedPrograms++
	}
	res.Skips = append(res.Skips, out.skips...)
	res.Retries += out.retries
	res.Timeouts += out.timeouts
	if out.found {
		res.ProgramsWithCounter++
		if !res.Found {
			// First in program order: the deterministic index.
			res.FirstCEProgram, res.FirstCETest = p, out.firstCETest
		}
		if !res.Found || out.ttcWall < res.TTC {
			res.Found = true
			res.TTC = out.ttcWall
		}
	}
	for k := range out.platforms {
		pt, row := &out.platforms[k], &res.Matrix[k]
		row.Experiments += pt.experiments
		row.Counterexamples += pt.counterexamples
		row.Inconclusive += pt.inconclusive
		row.SkippedTests += pt.skipped
		row.ExeTime += pt.exeTime
		if pt.found && !row.Found {
			// Programs merge in ascending order, so this is the first
			// counterexample in campaign order — deterministic per seed.
			row.Found = true
			row.FirstCEProgram, row.FirstCETest = p, pt.firstCETest
		}
	}
	if e.Log != nil {
		for _, rec := range out.records {
			if err := e.Log.Append(rec); err != nil {
				return err
			}
		}
	}
	// Journal the program as it commits: mergeProgram is the in-order merge
	// point of both engines, so appends arrive in strict program order — the
	// contiguity internal/journal enforces. Restored programs (p < restoredN)
	// were journaled before the restart and are only replayed here.
	if e.Journal != nil && p >= e.restoredN {
		ckpt, err := e.Journal.Append(toJournalRecord(p, out))
		if err != nil {
			return err
		}
		if ckpt {
			e.Trace.Checkpoint(p + 1)
		}
	}
	return nil
}

// drainRequested reports whether the graceful-shutdown channel has closed.
// A nil Drain never drains: receiving from a nil channel blocks forever, so
// the default branch always fires.
func (e *Experiment) drainRequested() bool {
	select {
	case <-e.Drain:
		return true
	default:
		return false
	}
}

// Run executes a full experiment campaign on the staged engine (see
// RunContext). Counts are deterministic per seed regardless of Parallel;
// only wall-clock times vary with scheduling.
func Run(cfg Experiment) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes a full experiment campaign under a context: cancelling
// ctx tears the pipeline down promptly and returns the context's error.
//
// By default the campaign runs on the staged engine (runStaged): explicit
// pipeline stages connected by bounded channels, each with its own worker
// pool, so test generation for program p+1 overlaps platform execution of
// program p, with per-stage metrics in Result.Stages. Experiment.Monolithic
// selects the pre-staged program-level worker pool instead; both engines
// produce identical counts for a given seed.
func RunContext(ctx context.Context, cfg Experiment) (*Result, error) {
	e := cfg.WithDefaults()
	res := &Result{
		Name:           e.Name,
		Model:          e.Model.Name(),
		Refinement:     refinementName(&e),
		Coverage:       obs.SupportName(e.Support),
		FirstCEProgram: -1,
		FirstCETest:    -1,
	}
	e.Trace.BeginCampaign(e.Name, e.Programs)
	if mp, ok := e.Platform.(*MultiPlatform); ok {
		mp.setTracer(e.Trace)
	}
	if e.SharedCache && !e.LegacySolver {
		e.shapeCache = smt.NewShapeCache()
	}
	if err := buildMatrix(&e); err != nil {
		return nil, err
	}
	for _, spec := range e.Platforms {
		res.Matrix = append(res.Matrix, PlatformResult{
			Platform:       spec.Name,
			FirstCEProgram: -1,
			FirstCETest:    -1,
		})
	}
	if e.Journal != nil {
		if err := e.Journal.Begin(e.Name, journalFingerprint(&e)); err != nil {
			return nil, err
		}
		restored := e.Journal.Restored()
		if len(restored) > e.Programs {
			return nil, fmt.Errorf("scamv: journal restored %d programs but the campaign runs only %d", len(restored), e.Programs)
		}
		// Merge the restored prefix through the same in-order merge step the
		// engines use, replaying shape-cache accounting from the journaled
		// key lists (first occurrence = the miss the uninterrupted run paid;
		// everything later = hit), and teach the live cache the keys so its
		// rebuilt prototypes still count as hits.
		var keys []uint64
		seen := make(map[uint64]bool)
		e.restoredN = len(restored) // before the merges: it gates re-journaling
		for _, jr := range restored {
			out := fromJournalRecord(jr)
			if e.shapeCache != nil {
				for _, kh := range out.shapeKeys {
					if seen[kh] {
						e.restoredShapeHits++
					} else {
						seen[kh] = true
						e.restoredShapeMisses++
					}
					keys = append(keys, kh)
				}
			}
			if err := res.mergeProgram(&e, jr.Prog, out); err != nil {
				return nil, err
			}
		}
		res.RestoredPrograms = e.restoredN
		if e.restoredN > 0 {
			e.Trace.Resume(e.Name, e.restoredN)
			if e.shapeCache != nil {
				e.shapeCache.MarkKnown(keys)
			}
		}
	}
	start := time.Now()
	var err error
	if e.Monolithic {
		err = runMonolithic(ctx, &e, res, start)
	} else {
		err = runStaged(ctx, &e, res, start)
	}
	if err != nil {
		return nil, err
	}
	if e.Drain != nil && e.drainRequested() && res.Programs < e.Programs {
		res.Drained = true
	}
	if e.Journal != nil {
		if err := e.Journal.Checkpoint(); err != nil {
			return nil, err
		}
		res.Checkpoints = e.Journal.Checkpoints()
		e.Trace.Checkpoint(res.Programs)
	}
	// Harvest breaker trips from pooled platforms (MultiPlatform, or any
	// custom platform exposing the same counter).
	if bt, ok := e.Platform.(interface{ BreakerTrips() uint64 }); ok {
		res.BreakerTrips = bt.BreakerTrips()
	}
	if e.shapeCache != nil {
		st := e.shapeCache.Stats()
		res.ShapeHits = st.Hits + e.restoredShapeHits
		res.ShapeMisses = st.Misses + e.restoredShapeMisses
	}
	res.DebugAddr = e.Trace.DebugAddr()
	return res, nil
}

// runMonolithic is the pre-staged engine: a flat program-level worker pool
// with an atomic stop protocol, kept for A/B benchmarking against the
// staged engine (make bench-campaign).
func runMonolithic(ctx context.Context, e *Experiment, res *Result, start time.Time) error {
	progRng := rand.New(rand.NewSource(e.Seed))
	progs := make([]*arm.Program, e.Programs)
	for p := range progs {
		t0 := time.Now()
		// On resume the restored prefix is still generated — the template RNG
		// is one sequential stream, so programs [restoredN, Programs) only
		// come out right if the draws for [0, restoredN) happen first — but
		// its spans are not traced (the work is a fast-forward, not a stage).
		progs[p] = e.Template.Generate(progRng, p)
		if p >= e.restoredN {
			e.Trace.Span("proggen", p, t0)
		}
	}

	outs := make([]*programResult, e.Programs)
	live := e.Programs - e.restoredN
	workers := e.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > live {
		workers = live
	}
	if workers <= 1 {
		for p := e.restoredN; p < len(progs); p++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if e.drainRequested() {
				break
			}
			out, err := runProgram(ctx, e, progs[p], p, start)
			if err != nil {
				return err
			}
			outs[p] = out
		}
	} else {
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			runErr error
			stopAt atomic.Int64 // lowest erroring program index so far
		)
		stopAt.Store(int64(len(progs)))
		idxCh := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range idxCh {
					// After an error at index q, skip programs above q (their
					// results would be discarded) but still run lower ones:
					// indexes are handed out in order, so every index below q
					// has been handed out and completes, which makes the
					// reported error the lowest erroring index regardless of
					// worker scheduling.
					if int64(p) > stopAt.Load() || ctx.Err() != nil {
						continue
					}
					out, err := runProgram(ctx, e, progs[p], p, start)
					mu.Lock()
					if err != nil && int64(p) < stopAt.Load() {
						runErr = fmt.Errorf("scamv: program %d: %w", p, err)
						stopAt.Store(int64(p))
					}
					outs[p] = out
					mu.Unlock()
				}
			}()
		}
		// Drain stops the handout, not the workers: every index already sent
		// completes and merges, and since indexes go out in order the merged
		// prefix stays contiguous — exactly what the journal needs to resume.
		for p := e.restoredN; p < len(progs); p++ {
			if int64(p) > stopAt.Load() || ctx.Err() != nil || e.drainRequested() {
				break
			}
			idxCh <- p
		}
		close(idxCh)
		wg.Wait()
		if runErr != nil {
			return runErr
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}

	// Merge in program order: deterministic counts and log.
	for p, out := range outs {
		if out == nil {
			continue
		}
		if err := res.mergeProgram(e, p, out); err != nil {
			return err
		}
	}
	return nil
}

func refinementName(e *Experiment) string {
	if !e.Refined || !e.Model.Refined() {
		return "No"
	}
	switch m := e.Model.(type) {
	case *obs.MPart:
		return "Mpart'"
	case *obs.MTime:
		return "Mtime"
	case *obs.MPCModel:
		return "Mct"
	case *obs.MCt:
		switch m.Spec {
		case obs.SpecStraightLine:
			return "Mspec'"
		default:
			return "Mspec"
		}
	}
	return "M2"
}
