package scamv

import (
	"context"
	"fmt"

	"scamv/internal/arm"
	"scamv/internal/core"
	"scamv/internal/obs"
	"scamv/internal/sat"
	"scamv/internal/smt"
)

// This file provides a purely relational (no-hardware) analysis on top of
// the same machinery the validation pipeline uses. If the refined model M2
// soundly overapproximates the attacker (e.g. M_spec for cores that only
// speculate over branch predictions, per Guarnieri et al. as cited in the
// paper's §7), then a program on which NO pair of M1-equivalent states is
// M2-distinguishable is secure with respect to the weaker model M1: the
// attacker can never learn more than M1 admits. This is the consumer-side
// use of observational models (Ct-verif/CacheAudit-style), built from the
// validation framework's relation synthesis.

// PolicyReport is the outcome of CheckPolicy.
type PolicyReport struct {
	// LeakPossible reports whether some pair of M1-equivalent states is
	// distinguishable under the refined model.
	LeakPossible bool
	// Witness, when a leak is possible, is a concrete pair of states that
	// M1 equates but M2 separates.
	Witness *core.TestCase
	// PairsChecked counts the path pairs examined.
	PairsChecked int
}

// CheckPolicy decides whether prog can leak beyond the model under
// validation M1, assuming the refined model M2 of the pair captures the
// attacker: it searches for states s1 ∼M1 s2 with s1 ≁M2 s2 across all path
// pairs. A nil Witness with LeakPossible=false means the search space is
// exhausted — the program respects M1 even against the M2 attacker.
func CheckPolicy(prog *arm.Program, model obs.ModelPair, seed int64) (*PolicyReport, error) {
	return CheckPolicyContext(context.Background(), prog, model, seed)
}

// CheckPolicyContext is CheckPolicy under a context: the path-pair search
// stops at cancellation with the context's error. The program is prepared
// by the same Encode and Prepare stages the campaign engine runs — the A64
// round trip first, then lift+symexec — so the analysis covers exactly the
// binary code a campaign would execute.
func CheckPolicyContext(ctx context.Context, prog *arm.Program, model obs.ModelPair, seed int64) (*PolicyReport, error) {
	if !model.Refined() {
		return nil, fmt.Errorf("scamv: CheckPolicy needs a refined model pair, got %s", model.Name())
	}
	prog, _ = encodeRoundTrip(prog)
	pl, err := NewPipeline(prog, model)
	if err != nil {
		return nil, err
	}
	rep := &PolicyReport{}
	for a := range pl.Paths {
		for b := range pl.Paths {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rep.PairsChecked++
			s := smt.New(smt.Options{Seed: seed})
			s.Assert(core.PairRelation(pl.Paths[a], pl.Paths[b], true))
			switch s.Check() {
			case sat.Sat:
				s1, s2 := core.ExtractStates(s.Model(), pl.Registers)
				rep.Witness = &core.TestCase{S1: s1, S2: s2, PathA: a, PathB: b}
				rep.LeakPossible = true
				return rep, nil
			case sat.Unknown:
				return nil, fmt.Errorf("scamv: CheckPolicy inconclusive on path pair (%d,%d)", a, b)
			}
		}
	}
	return rep, nil
}
