package scamv

import (
	"fmt"
	"strings"
	"time"

	"scamv/internal/micro"
)

// This file is the platform-matrix campaign driver: one generated test suite
// executed across a zoo of simulated platforms (internal/micro presets),
// producing a per-platform soundness verdict for the observational model
// under validation. The paper validates its models against a single platform
// (the Cortex-A53 of the Raspberry Pi 3); soundness, however, is a
// per-platform property — the same refined relation can hold on an in-order
// core and be falsified by a prefetcher, a different replacement policy, or a
// wider speculation window. The matrix campaign makes that comparison cheap:
//
//   - Test generation is platform-independent (the relation constrains
//     architectural state, not the microarchitecture), so the suite is
//     generated ONCE and its cost amortized over all K platforms.
//   - Execution is batched per test case: the K platform runs of a test
//     execute back to back inside the Execute stage, so both engines (staged
//     and monolithic) batch identically and a K-platform matrix costs one
//     generation plus K executions — far below K independent campaigns.
//   - Platform 0 is the campaign's primary row: its verdicts feed the
//     top-level Result exactly as a single-platform campaign's would, so a
//     matrix whose first platform is the default config reproduces today's
//     counts bit for bit.

// PlatformSpec names one platform of a matrix campaign.
type PlatformSpec struct {
	// Name identifies the platform in reports, logs, and telemetry.
	Name string
	// Micro is the platform's simulated core (merged with WithDefaults).
	Micro micro.Config
}

// PlatformsFromPresets resolves preset names (see micro.PresetNames) into
// matrix platform specs, preserving order.
func PlatformsFromPresets(names ...string) ([]PlatformSpec, error) {
	specs := make([]PlatformSpec, 0, len(names))
	for _, name := range names {
		cfg, err := micro.Preset(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, PlatformSpec{Name: strings.ToLower(strings.TrimSpace(name)), Micro: cfg})
	}
	return specs, nil
}

// PlatformResult is one row of the soundness matrix: the campaign's counts
// restricted to a single platform. Count fields and the first-counterexample
// index are deterministic per seed; ExeTime is wall clock.
type PlatformResult struct {
	Platform        string
	Experiments     int
	Counterexamples int
	Inconclusive    int
	SkippedTests    int
	ExeTime         time.Duration

	// Found reports whether this platform produced a counterexample;
	// FirstCEProgram/FirstCETest locate the first one in campaign order
	// (-1/-1 when Found is false).
	Found          bool
	FirstCEProgram int
	FirstCETest    int
}

// Verdict classifies the model on this platform: "unsound" when the platform
// distinguished a pair the model equates, "sound" when no counterexample was
// found (soundness evidence, not proof), "no-data" when nothing executed.
func (r *PlatformResult) Verdict() string {
	switch {
	case r.Counterexamples > 0:
		return "unsound"
	case r.Experiments == 0:
		return "no-data"
	default:
		return "sound"
	}
}

// platformTally is one program's contribution to one matrix row, merged in
// program order by Result.mergeProgram like the rest of programResult.
type platformTally struct {
	experiments     int
	counterexamples int
	inconclusive    int
	skipped         int
	exeTime         time.Duration
	found           bool
	firstCETest     int
}

func (pt *platformTally) count(v Verdict, d time.Duration, t int) {
	pt.experiments++
	pt.exeTime += d
	switch v {
	case Counterexample:
		pt.counterexamples++
		if !pt.found {
			pt.found = true
			pt.firstCETest = t
		}
	case Inconclusive:
		pt.inconclusive++
	}
}

// buildMatrix validates the platform list and derives the per-platform
// experiment clones the Execute stage batches over. Each clone is the
// campaign experiment with only the simulated core swapped: training, noise
// seeds, repeat counts, and the attacker view stay platform-independent, so
// every platform row sees the same test suite under the same measurement
// protocol.
func buildMatrix(e *Experiment) error {
	if len(e.Platforms) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(e.Platforms))
	e.matrixExps = make([]*Experiment, len(e.Platforms))
	for k, spec := range e.Platforms {
		if spec.Name == "" {
			return fmt.Errorf("scamv: matrix platform %d has no name", k)
		}
		if seen[spec.Name] {
			return fmt.Errorf("scamv: duplicate matrix platform %q", spec.Name)
		}
		seen[spec.Name] = true
		pe := *e
		pe.Micro = spec.Micro.WithDefaults()
		// A clone is a plain single-platform experiment: it must not carry
		// the matrix fields of the campaign it serves.
		pe.Platforms, pe.matrixExps = nil, nil
		e.matrixExps[k] = &pe
	}
	return nil
}

// FormatMatrix renders a campaign's per-platform soundness table. The layout
// is count-only (no wall-clock columns), so for a deterministic platform the
// rendering is byte-stable per seed — the property the golden matrix test
// pins down.
func FormatMatrix(r *Result) string {
	if len(r.Matrix) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "matrix[%s] model=%s refinement=%s:\n", r.Name, r.Model, r.Refinement)
	rows := [][]string{{"platform", "verdict", "exps", "cex", "inconcl", "skipped", "first c.e."}}
	for i := range r.Matrix {
		row := &r.Matrix[i]
		first := "-"
		if row.Found {
			first = fmt.Sprintf("p%d/t%d", row.FirstCEProgram, row.FirstCETest)
		}
		rows = append(rows, []string{
			row.Platform,
			row.Verdict(),
			fmt.Sprintf("%d", row.Experiments),
			fmt.Sprintf("%d", row.Counterexamples),
			fmt.Sprintf("%d", row.Inconclusive),
			fmt.Sprintf("%d", row.SkippedTests),
			first,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		sb.WriteString(" ")
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
