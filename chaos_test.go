// Chaos tests live in an external test package: internal/faultinject imports
// scamv (it wraps scamv.Platform), so an in-package test would be an import
// cycle.
package scamv_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"scamv"
	"scamv/internal/faultinject"
	"scamv/internal/resilient"
)

// golden strips a Result to its seed-deterministic fields: everything except
// wall-clock durations and the scheduling-dependent TTC.
type golden struct {
	Programs            int
	ProgramsWithCounter int
	Experiments         int
	Counterexamples     int
	Inconclusive        int
	Found               bool
	FirstCEProgram      int
	FirstCETest         int
	SkippedTests        int
	QuarantinedPrograms int
	Skips               []scamv.Skip
	Retries             int
	BreakerTrips        uint64
}

func goldenOf(r *scamv.Result) golden {
	return golden{
		Programs:            r.Programs,
		ProgramsWithCounter: r.ProgramsWithCounter,
		Experiments:         r.Experiments,
		Counterexamples:     r.Counterexamples,
		Inconclusive:        r.Inconclusive,
		Found:               r.Found,
		FirstCEProgram:      r.FirstCEProgram,
		FirstCETest:         r.FirstCETest,
		SkippedTests:        r.SkippedTests,
		QuarantinedPrograms: r.QuarantinedPrograms,
		Skips:               r.Skips,
		Retries:             r.Retries,
		BreakerTrips:        r.BreakerTrips,
	}
}

// chaosExperiment builds a small Mpart campaign under the heavy chaos
// profile with FailPolicy Degrade. The fault injector is rebuilt per call:
// its per-identity attempt counters are run-local state, and sharing one
// injector across runs would advance the schedule.
func chaosExperiment(monolithic bool) scamv.Experiment {
	u, _ := scamv.MPartExperiments(false, 5, 6, 2021)
	u.Repeats = 2
	u.Parallel = 4
	u.Monolithic = monolithic
	u.FailPolicy = scamv.Degrade
	u.Retries = 2
	prof, err := faultinject.Named("heavy")
	if err != nil {
		panic(err)
	}
	u.Platform = faultinject.New(nil, prof, 2021)
	return u
}

// TestChaosGoldenDeterministic pins the resilience contract: the same seed
// and chaos profile produce the same degraded Result — across repeat runs
// and across both engines — and the heavy profile actually degrades
// something, so the equality is not vacuous.
func TestChaosGoldenDeterministic(t *testing.T) {
	staged1, err := scamv.Run(chaosExperiment(false))
	if err != nil {
		t.Fatalf("staged chaos campaign failed under Degrade: %v", err)
	}
	staged2, err := scamv.Run(chaosExperiment(false))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := scamv.Run(chaosExperiment(true))
	if err != nil {
		t.Fatalf("monolithic chaos campaign failed under Degrade: %v", err)
	}

	g1, g2, gm := goldenOf(staged1), goldenOf(staged2), goldenOf(mono)
	if !reflect.DeepEqual(g1, g2) {
		t.Errorf("repeat run diverged:\nrun1: %+v\nrun2: %+v", g1, g2)
	}
	if !reflect.DeepEqual(g1, gm) {
		t.Errorf("staged and monolithic diverged:\nstaged: %+v\nmono:   %+v", g1, gm)
	}
	if g1.SkippedTests == 0 && g1.Retries == 0 {
		t.Error("heavy chaos profile neither skipped nor retried anything: the golden equality is vacuous")
	}
	// Every skip carries a reason and a valid program index.
	for _, s := range staged1.Skips {
		if s.Reason == "" || s.Prog < 0 || s.Prog >= g1.Programs {
			t.Errorf("malformed skip record: %+v", s)
		}
	}
}

// TestChaosFailFastAborts pins the default policy: the same chaos campaign
// without Degrade fails instead of silently skipping.
func TestChaosFailFastAborts(t *testing.T) {
	e := chaosExperiment(false)
	e.FailPolicy = scamv.FailFast
	e.Retries = 0
	if _, err := scamv.Run(e); err == nil {
		t.Fatal("heavy chaos under FailFast with no retries completed without error")
	}
}

// TestDegradeHealthyMatchesFailFast pins the no-op guarantee: on a healthy
// platform, Degrade changes nothing — same counts, no skips, and a rendered
// table byte-identical to the FailFast one.
func TestDegradeHealthyMatchesFailFast(t *testing.T) {
	run := func(p scamv.FailPolicy) *scamv.Result {
		u, _ := scamv.MPartExperiments(false, 4, 6, 2021)
		u.Repeats = 2
		u.FailPolicy = p
		r, err := scamv.Run(u)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ff := run(scamv.FailFast)
	dg := run(scamv.Degrade)
	if !reflect.DeepEqual(goldenOf(ff), goldenOf(dg)) {
		t.Errorf("healthy Degrade diverged from FailFast:\nfailfast: %+v\ndegrade:  %+v",
			goldenOf(ff), goldenOf(dg))
	}
	if dg.SkippedTests != 0 || dg.QuarantinedPrograms != 0 || dg.Retries != 0 {
		t.Errorf("healthy Degrade recorded resilience events: %+v", goldenOf(dg))
	}
	// The rendered table keeps the pre-resilience layout: no resilience rows
	// appear on a healthy run (wall-clock cells differ run to run, so the
	// check is structural, not byte comparison across runs).
	for _, table := range []string{scamv.FormatTable(ff), scamv.FormatTable(dg)} {
		for _, row := range []string{"Skipped tests", "Quarantined", "Retries", "Timeouts", "Breaker trips"} {
			if strings.Contains(table, row) {
				t.Errorf("healthy table grew a %q row:\n%s", row, table)
			}
		}
	}
}

// TestCancelDuringChaosHangDoesNotLeak cancels a campaign wedged on
// unbounded injected hangs and checks every pipeline goroutine exits: the
// platform must take the ctx.Done arm, and the engines must unwind rather
// than wait for an execution that never returns.
func TestCancelDuringChaosHangDoesNotLeak(t *testing.T) {
	for _, mono := range []bool{false, true} {
		before := runtime.NumGoroutine()

		u, _ := scamv.MPartExperiments(false, 4, 6, 2021)
		u.Repeats = 2
		u.Parallel = 4
		u.Monolithic = mono
		// Every call hangs until cancellation: the campaign cannot progress.
		u.Platform = faultinject.New(nil, faultinject.Profile{Name: "wedge", HangProb: 1}, 1)

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := scamv.RunContext(ctx, u)
			done <- err
		}()
		time.Sleep(50 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("mono=%v: wedged campaign completed successfully", mono)
			}
			if !errors.Is(err, context.Canceled) {
				t.Logf("mono=%v: campaign error after cancel: %v", mono, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("mono=%v: campaign did not return after cancel", mono)
		}

		leaked := true
		var after int
		for i := 0; i < 200; i++ {
			runtime.Gosched()
			after = runtime.NumGoroutine()
			if after <= before {
				leaked = false
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if leaked {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("mono=%v: goroutines leaked after cancel: before=%d after=%d\n%s",
				mono, before, after, buf[:n])
		}
	}
}

// TestMultiPlatformSurvivesDeadBackend runs a campaign on a two-backend pool
// with one dead member: the breaker trips, the pool rotates to the healthy
// backend, and the campaign's counts match a plain single-platform run.
func TestMultiPlatformSurvivesDeadBackend(t *testing.T) {
	base, _ := scamv.MPartExperiments(false, 4, 6, 2021)
	base.Repeats = 2

	plain := base
	r0, err := scamv.Run(plain)
	if err != nil {
		t.Fatal(err)
	}

	pooled := base
	pooled.Platform = scamv.NewMultiPlatform(
		resilient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		scamv.DeadPlatform{Reason: "unit test"},
		scamv.SimPlatform{},
	)
	r1, err := scamv.Run(pooled)
	if err != nil {
		t.Fatalf("campaign with a dead pool member failed: %v", err)
	}

	if r1.BreakerTrips == 0 {
		t.Error("dead backend never tripped its breaker")
	}
	g0, g1 := goldenOf(r0), goldenOf(r1)
	g0.BreakerTrips, g1.BreakerTrips = 0, 0
	g0.Retries, g1.Retries = 0, 0 // pool-internal rotation, not test retries
	if !reflect.DeepEqual(g0, g1) {
		t.Errorf("pooled campaign diverged from single-platform run:\nplain:  %+v\npooled: %+v", g0, g1)
	}
}
