// Binary demonstrates that the pipeline's input really is machine code, as
// in the original framework where HolBA transpiles binaries: a victim is
// assembled to A64 words, the words are disassembled back, lifted to BIR,
// and validated — and the static relational analysis (CheckPolicy) flags
// the leak without ever running the hardware.
//
//	go run ./examples/binary
package main

import (
	"fmt"
	"log"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/gen"
	"scamv/internal/obs"
)

func main() {
	victim := gen.SiSCloak1()
	fmt.Println("victim (assembly):")
	fmt.Println(victim)

	words, err := arm.Encode(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim (A64 machine code):")
	for i, w := range words {
		fmt.Printf("  %04x: %08x\n", i*4, w)
	}
	fmt.Println()

	decoded, err := arm.Decode("victim.bin", words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("disassembled back:")
	fmt.Println(decoded)

	model := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	rep, err := scamv.CheckPolicy(decoded, model, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relational analysis over %d path pairs: leak possible = %v\n",
		rep.PairsChecked, rep.LeakPossible)
	if rep.LeakPossible {
		fmt.Printf("witness pair (paths %d/%d):\n", rep.Witness.PathA, rep.Witness.PathB)
		fmt.Printf("  s1: %v mem %v\n", rep.Witness.S1.Regs, rep.Witness.S1.Mem.Data)
		fmt.Printf("  s2: %v mem %v\n", rep.Witness.S2.Regs, rep.Witness.S2.Mem.Data)
		fmt.Println("the two states are M_ct-equivalent but their transient loads")
		fmt.Println("touch different cache lines — exactly the SiSCloak leak that the")
		fmt.Println("hardware campaigns confirm (see examples/siscloak).")
	}

	// Contrast: the fenced victim. Inserting the bounds check result into
	// the address computation (a masking idiom) removes the leak.
	masked, err := arm.Parse("masked", `
        ldr x2, [x5, x0]
        cmp x0, x1
        b.hs end
        movz x3, #0x4000     ; fixed, data-independent prefetch target
        ldr x4, [x3]
    end:
        hlt
    `)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := scamv.CheckPolicy(masked, model, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhardened variant: leak possible = %v (%d pairs checked)\n",
		rep2.LeakPossible, rep2.PairsChecked)
}
