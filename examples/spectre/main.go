// Spectre explores the scope of speculation on the simulated Cortex-A53
// (paper §6.3 and §6.5): which transient loads actually issue, and which
// observational model of the M_specK family is the right one for this core.
//
// It runs the M_ct and M_spec1 validation campaigns on Templates B and C,
// then lets the automatic model repair (§8, future work implemented here)
// search the M_specK family for the coarsest model the tests cannot
// invalidate.
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"scamv"
	"scamv/internal/gen"
)

func main() {
	const seed = 2021

	fmt.Println("Template C (causally dependent double load — the Spectre-PHT shape)")
	fmt.Println("--------------------------------------------------------------------")
	unguided, refined := scamv.MCtExperiments(gen.TemplateC{}, 4, 80, seed)
	ru := mustRun(unguided)
	rr := mustRun(refined)
	r1 := mustRun(scamv.MSpec1Experiment(gen.TemplateC{}, 4, 80, seed))
	fmt.Println(scamv.FormatTable(ru, rr, r1))
	fmt.Println("=> M_ct is unsound (the FIRST transient load issues and leaks: the")
	fmt.Println("   SiSCloak class), but M_spec1 holds: the dependent second load never")
	fmt.Println("   issues — the A53 does not forward transient load results, so the")
	fmt.Println("   classic Spectre-PHT gadget does not leak (ARM's claim, confirmed).")
	fmt.Println()

	fmt.Println("Template B (independent loads)")
	fmt.Println("------------------------------")
	rb := mustRun(scamv.MSpec1Experiment(gen.TemplateB{}, 12, 30, seed))
	fmt.Println(scamv.FormatTable(rb))
	fmt.Println("=> M_spec1 is invalidated on Template B: when the two loads have no")
	fmt.Println("   causal dependency, the core issues BOTH transiently.")
	fmt.Println()

	fmt.Println("Automatic model repair over the M_specK family (§8)")
	fmt.Println("----------------------------------------------------")
	for _, tpl := range []gen.Template{gen.TemplateC{}, gen.TemplateB{}} {
		rep, err := scamv.RepairModel(scamv.Experiment{
			Name:            "repair-" + tpl.Name(),
			Template:        tpl,
			Programs:        4,
			TestsPerProgram: 30,
			Seed:            seed,
		}, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n%s\n", tpl.Name(), rep)
	}
}

func mustRun(e scamv.Experiment) *scamv.Result {
	r, err := scamv.Run(e)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
