// Quickstart: run one program through the whole Scam-V pipeline by hand —
// lift, instrument with the M_ct/M_spec model pair, symbolically execute,
// synthesize the refinement-guided relation, generate a test case, and
// execute it on the simulated Cortex-A53.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/obs"
)

func main() {
	// The running example of the paper's Fig. 2/Fig. 4, as AArch64-subset
	// assembly: dereference x0, and if x0 < x1 dereference the loaded
	// value. Under the constant-time model M_ct this program is secure —
	// all memory accesses and branches depend only on public data.
	prog, err := arm.Parse("running-example", `
        ldr x2, [x0]         ; x2 := mem[x0]
        cmp x0, x1
        b.hs end             ; if x0 < x1 then
        ldr x3, [x2]         ;   x3 := mem[x2]
    end:
        hlt
    `)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim program:")
	fmt.Println(prog)

	// Model under validation: M_ct. Refined model: M_spec, which also
	// observes the memory accesses of the mispredicted branch.
	model := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	pl, err := scamv.NewPipeline(prog, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("instrumented BIR (shadow statements inlined, observations tagged):")
	fmt.Println(pl.Instrumented)

	fmt.Printf("symbolic execution found %d paths:\n", len(pl.Paths))
	for i, p := range pl.Paths {
		fmt.Printf("  path %d: condition %s, %d M1 observations, %d refined\n",
			i, p.Cond, len(p.BaseObs()), len(p.RefinedObs()))
	}
	fmt.Println()

	// Generate one refinement-guided test case: two states that M_ct
	// considers equivalent but whose transient observations differ.
	e := scamv.Experiment{Refined: true, Speculative: true, Seed: 42}
	en := e.WithDefaults()
	g := pl.Generator(&en, 1)
	tc, ok := g.Next()
	if !ok {
		log.Fatal("no test case (is the refinement satisfiable?)")
	}
	fmt.Printf("test case on path pair (%d, %d):\n", tc.PathA, tc.PathB)
	fmt.Printf("  s1: regs %v, mem %v\n", tc.S1.Regs, tc.S1.Mem.Data)
	fmt.Printf("  s2: regs %v, mem %v\n", tc.S2.Regs, tc.S2.Mem.Data)

	// A third state from a different path trains the branch predictor to
	// mispredict (§5.3).
	train, ok := pl.TrainingState(tc.PathA, 1)
	if !ok {
		log.Fatal("no training state")
	}
	fmt.Printf("  training state: regs %v\n\n", train.Regs)

	// Execute the experiment: train, run each state from a cold cache,
	// compare the final cache states, repeat 10 times.
	verdict, err := pl.ExecuteTestCase(&en, tc, train, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %v\n", verdict)
	if verdict == scamv.Counterexample {
		fmt.Println("M_ct is UNSOUND on this core: the states are observationally")
		fmt.Println("equivalent for the model but distinguishable on the hardware —")
		fmt.Println("the single speculative load of the mispredicted branch leaked.")
	}
}
