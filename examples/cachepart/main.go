// Cachepart validates cache coloring against the stride prefetcher
// (paper §4.2.1 and §6.2): the observational model M_part assumes cache
// partitioning isolates the attacker's sets, but a stride of loads near the
// partition boundary triggers prefetches that cross it.
//
// The example runs two reduced-scale campaigns — unguided and
// refinement-guided — for both the default partition (sets 61..127) and the
// page-aligned partition (sets 64..127), reproducing the two M_part column
// groups of Table 1: the default partition leaks, the page-aligned one does
// not (prefetching stops at page boundaries).
//
//	go run ./examples/cachepart
package main

import (
	"fmt"
	"log"

	"scamv"
)

func main() {
	const (
		programs = 16
		tests    = 40
		seed     = 2021
	)

	fmt.Println("M_part vs prefetching (AR = cache sets 61..127)")
	fmt.Println("-----------------------------------------------")
	unguided, refined := scamv.MPartExperiments(false, programs, tests, seed)
	ru, err := scamv.Run(unguided)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := scamv.Run(refined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(scamv.FormatTable(ru, rr))

	switch {
	case rr.Counterexamples > 0 && ru.Counterexamples < rr.Counterexamples:
		fmt.Println("=> cache coloring is violated by the prefetcher, and observation")
		fmt.Println("   refinement (M_part') plus M_line coverage is what finds it:")
		fmt.Printf("   %d refined counterexamples vs %d unguided.\n\n",
			rr.Counterexamples, ru.Counterexamples)
	default:
		fmt.Println("=> unexpected outcome; see the table above.")
	}

	fmt.Println("M_part with a page-aligned partition (AR = cache sets 64..127)")
	fmt.Println("---------------------------------------------------------------")
	unguidedPA, refinedPA := scamv.MPartExperiments(true, programs, tests, seed)
	ruPA, err := scamv.Run(unguidedPA)
	if err != nil {
		log.Fatal(err)
	}
	rrPA, err := scamv.Run(refinedPA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(scamv.FormatTable(ruPA, rrPA))

	if ruPA.Counterexamples == 0 && rrPA.Counterexamples == 0 {
		fmt.Println("=> no counterexamples: prefetching stops at the page boundary, so")
		fmt.Println("   page-aligned cache coloring appears secure even under refinement-")
		fmt.Println("   guided search (testing evidence, not proof — §6.2).")
	}
}
