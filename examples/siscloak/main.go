// Siscloak demonstrates the two SiSCloak counterexamples of the paper's
// Fig. 6 (§6.4) end to end: first Scam-V-style validation shows that the
// constant-time model M_ct wrongly classifies the programs as secure, then
// a concrete Flush+Reload attack recovers the secret through the single
// speculative load, using the cycle counter as the timing source.
//
//	go run ./examples/siscloak
package main

import (
	"fmt"
	"log"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/attack"
	"scamv/internal/expr"
	"scamv/internal/gen"
	"scamv/internal/obs"
)

const (
	arrayA = 0x10000 // #A: attacker-indexable array
	arrayB = 0x20000 // #B: probe array
	bound  = 8       // #A-size
)

func main() {
	fmt.Println("SiSCloak counterexample 1 (Fig. 6, middle column):")
	fmt.Println(gen.SiSCloak1())
	validate(gen.SiSCloak1())

	// Mount the real attack: recover A[16] (out of bounds; the "secret")
	// at cache-line granularity.
	secretLine := 37
	mem := expr.NewMemModel(0)
	mem.Set(arrayA+16, uint64(secretLine)*64)
	runner := attack.NewRunner(gen.SiSCloak1(), mem, attack.DefaultConfig())
	train := map[string]uint64{"x0": 0, "x1": bound, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": bound, "x5": arrayA, "x7": arrayB}
	line, err := runner.RecoverLine(train, attackRegs, arrayB, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Flush+Reload recovered secret line %d (planted %d) — leak confirmed.\n\n",
		line, secretLine)

	fmt.Println("SiSCloak counterexample 2 (Fig. 6, right column — classification bit):")
	fmt.Println(gen.SiSCloak2())
	validate(gen.SiSCloak2())

	secretLine2 := 21
	mem2 := expr.NewMemModel(0)
	mem2.Set(arrayA+24, 0x80000000|uint64(secretLine2)*64) // confidential element
	mem2.Set(arrayA+0, 5*64)                               // public element for training
	runner2 := attack.NewRunner(gen.SiSCloak2(), mem2, attack.DefaultConfig())
	var base uint64 = arrayB
	base -= 0x80000000 // compensate the classification bit in the index
	train2 := map[string]uint64{"x0": 0, "x5": arrayA, "x7": base}
	attack2 := map[string]uint64{"x0": 24, "x5": arrayA, "x7": base}
	line2, err := runner2.RecoverLine(train2, attack2, arrayB, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Flush+Reload recovered confidential line %d (planted %d).\n\n",
		line2, secretLine2)

	fmt.Println("Control: the original Spectre-PHT gadget (Fig. 6, left column):")
	fmt.Println(gen.SpectrePHT())
	mem3 := expr.NewMemModel(0)
	mem3.Set(arrayA+16, uint64(secretLine)*64)
	runner3 := attack.NewRunner(gen.SpectrePHT(), mem3, attack.DefaultConfig())
	res, err := runner3.Round(train, attackRegs, arrayB)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.HitLines) == 0 {
		fmt.Println("no probe line hit: the dependent second load never issues on this")
		fmt.Println("core (no transient forwarding) — Cortex-A53 is immune to classic")
		fmt.Println("Spectre-PHT, yet vulnerable to SiSCloak's single speculative load.")
	} else {
		fmt.Printf("unexpected hits: %v\n", res.HitLines)
	}
}

// validate pushes one fixed program through the refinement-guided pipeline
// and reports whether M_ct is invalidated on it.
func validate(prog *arm.Program) {
	pl, err := scamv.NewPipeline(prog, &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll})
	if err != nil {
		log.Fatal(err)
	}
	e := scamv.Experiment{Refined: true, Speculative: true, Seed: 11}
	en := e.WithDefaults()
	g := pl.Generator(&en, 1)
	counter := 0
	for t := 0; t < 10; t++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		trainState, ok := pl.TrainingState(tc.PathA, 1)
		if !ok {
			continue
		}
		v, err := pl.ExecuteTestCase(&en, tc, trainState, int64(t))
		if err != nil {
			log.Fatal(err)
		}
		if v == scamv.Counterexample {
			counter++
		}
	}
	fmt.Printf("validation of M_ct: %d/10 refinement-guided test cases are\n", counter)
	fmt.Println("counterexamples — the constant-time model is unsound for this program.")
	fmt.Println()
}
