package scamv_test

import (
	"fmt"
	"os"
	"testing"

	"scamv"
	"scamv/internal/journal"
)

// TestMain doubles as the crash child of the subprocess crash-safety tests:
// when SCAMV_CRASH_CHILD names a checkpoint directory, the process runs one
// journaled campaign and exits instead of running the test suite — giving
// the parent test a real process to SIGKILL or SIGINT mid-campaign.
func TestMain(m *testing.M) {
	if dir := os.Getenv("SCAMV_CRASH_CHILD"); dir != "" {
		os.Exit(crashChild(dir))
	}
	os.Exit(m.Run())
}

// crashChild runs the crash campaign with its journal in dir, resuming any
// prior state (a fresh directory degrades to a fresh start, so the same
// child serves first runs, post-kill resumes, and post-drain resumes).
// Exit codes mirror cmd/scamv: 0 complete, 3 drained (resumable), 1 error,
// 130 on a second interrupt.
func crashChild(dir string) int {
	e := crashCampaign(os.Getenv("SCAMV_CRASH_MONO") == "1")
	if os.Getenv("SCAMV_CRASH_ARM") == "1" {
		e.Drain = scamv.ArmShutdown(nil, func() { os.Exit(130) })
	}
	j, err := journal.Open(dir, e.Name, journal.Options{Resume: true, Every: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		return 1
	}
	e.Journal = j
	r, err := scamv.Run(e)
	cerr := j.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		return 1
	}
	if cerr != nil {
		fmt.Fprintln(os.Stderr, "crash child:", cerr)
		return 1
	}
	if r.Drained {
		return 3
	}
	return 0
}
