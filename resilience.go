package scamv

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"scamv/internal/arm"
	"scamv/internal/core"
	"scamv/internal/resilient"
	"scamv/internal/telemetry"
)

// This file is the resilience layer between the campaign engines and the
// Platform: per-Execute deadlines and seeded-backoff retries (via
// internal/resilient), the Degrade fail policy with per-test skips and
// program quarantine, and a circuit-breaker-guarded multi-backend pool.
// The paper's real platform is a farm of Raspberry Pi boards driven over a
// debug bridge — boards hang, resets fail, measurements get lost — and a
// campaign must be able to survive a sick backend instead of dying with it.

// FailPolicy selects what a campaign does when platform execution keeps
// failing after the retry budget.
type FailPolicy int

// Fail policies.
const (
	// FailFast aborts the whole campaign on the first exhausted test case
	// (the pre-resilience semantics; the default).
	FailFast FailPolicy = iota
	// Degrade records the failed test as skipped (Result.SkippedTests,
	// Result.Skips) and continues; a program with QuarantineAfter
	// consecutive failures is quarantined and its remaining tests skipped.
	// Counts remain deterministic per seed for a deterministic platform.
	Degrade
)

func (p FailPolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "failfast"
}

// ParseFailPolicy parses the -fail-policy flag values.
func ParseFailPolicy(s string) (FailPolicy, error) {
	switch s {
	case "failfast", "fail-fast", "":
		return FailFast, nil
	case "degrade":
		return Degrade, nil
	}
	return 0, fmt.Errorf("scamv: unknown fail policy %q (want failfast or degrade)", s)
}

// Skip records one unit of work abandoned under FailPolicy Degrade: a test
// case whose retry budget was exhausted, or (Test == -1) a whole program
// quarantined after consecutive failures.
type Skip struct {
	Prog   int    // program index in campaign order
	Test   int    // test index, or -1 for a program-level quarantine record
	Reason string // last error, human-readable
}

// execStats counts the resilience events of one executed test case.
type execStats struct {
	retries  int
	timeouts int
}

// execPolicy builds the per-call retry policy. The jitter stream is salted
// with the call's noise seed (already unique per (program, test) — see
// noiseSeed), the repeat, and the side, so every platform call owns an
// independent, reproducible backoff schedule.
func execPolicy(e *Experiment, p, t, rep, side int, nseed int64, stats *execStats) resilient.Policy {
	return resilient.Policy{
		Timeout:     e.ExecTimeout,
		Retries:     e.Retries,
		BackoffBase: e.RetryBackoff,
		JitterSeed:  splitmix64(uint64(nseed) ^ uint64(side)<<32 ^ 0xbadc0de),
		OnRetry: func(attempt int, err error) {
			stats.retries++
			e.Trace.Retry(p, t, attempt, err.Error())
		},
		OnTimeout: func(attempt int) {
			stats.timeouts++
			e.Trace.Timeout(p, t, attempt)
		},
	}
}

// executeOnce runs one side of one repetition on the platform under the
// experiment's retry/timeout policy. The noise RNG is rebuilt from its seed
// inside every attempt, so a retried attempt sees exactly the noise stream
// the failed one did — retries cannot perturb a deterministic platform.
func (pl *Pipeline) executeOnce(ctx context.Context, e *Experiment, p, t, rep, side int, st, train *core.State, nseed int64, stats *execStats) (Measurement, error) {
	m, _, err := resilient.Do(ctx, execPolicy(e, p, t, rep, side, nseed, stats),
		func(actx context.Context) (Measurement, error) {
			var noise *rand.Rand
			if e.Micro.NoiseProb > 0 {
				noise = rand.New(rand.NewSource(nseed))
			}
			return e.platform().Execute(actx, e, pl.Prog, st, train, noise)
		})
	if err != nil {
		// The engines prepend "scamv: program %d:" on the fail-fast path and
		// Skip.Prog carries the index on the degrade path, so the wrap here
		// adds the rest of the call identity: which test, repeat, and side.
		if t >= 0 {
			return Measurement{}, fmt.Errorf("test %d repeat %d S%d (%s): %w", t, rep, side, pl.Prog.Name, err)
		}
		return Measurement{}, fmt.Errorf("repeat %d S%d (%s): %w", rep, side, pl.Prog.Name, err)
	}
	return m, nil
}

// executeTestCase is ExecuteTestCase with the campaign plumbing: context,
// program/test indexes for telemetry and error context, and resilience
// stats. p and t are -1 when called outside a campaign.
func (pl *Pipeline) executeTestCase(ctx context.Context, e *Experiment, p, t int, tc *core.TestCase, train *core.State, noiseSeed int64) (Verdict, execStats, error) {
	var verdict Verdict
	var stats execStats
	for rep := 0; rep < e.Repeats; rep++ {
		m1, err := pl.executeOnce(ctx, e, p, t, rep, 1, tc.S1, train, noiseSeed+int64(rep)*2, &stats)
		if err != nil {
			return 0, stats, err
		}
		m2, err := pl.executeOnce(ctx, e, p, t, rep, 2, tc.S2, train, noiseSeed+int64(rep)*2+1, &stats)
		if err != nil {
			return 0, stats, err
		}
		d := Indistinguishable
		if m1.Distinguishable(m2, e.TimingAttacker) {
			d = Counterexample
		}
		if rep == 0 {
			verdict = d
		} else if d != verdict {
			return Inconclusive, stats, nil
		}
	}
	return verdict, stats, nil
}

// MultiPlatform fans Execute calls out over a pool of backends, one circuit
// breaker per backend. Calls rotate round-robin; a backend whose breaker is
// open is passed over, a backend that fails is reported to its breaker and
// the call moves to the next one. A permanently dead backend therefore trips
// its breaker and drops out of the rotation (re-probed after the cooldown)
// while the campaign keeps running on the healthy ones.
//
// Campaign counts stay deterministic as long as the healthy backends are
// observationally identical (they measure the same simulated machine), which
// is the deployment this models: one logical platform, several boards.
type MultiPlatform struct {
	backends []Platform
	breakers []*resilient.Breaker
	next     atomic.Uint64
}

// NewMultiPlatform builds a breaker-guarded pool over the given backends.
// cfg configures every breaker (zero value = resilient defaults); the
// per-backend breaker names extend cfg.Name with the backend index.
func NewMultiPlatform(cfg resilient.BreakerConfig, backends ...Platform) *MultiPlatform {
	if len(backends) == 0 {
		backends = []Platform{SimPlatform{}}
	}
	m := &MultiPlatform{backends: backends}
	for i := range backends {
		c := cfg
		if c.Name == "" {
			c.Name = "backend"
		}
		c.Name = fmt.Sprintf("%s[%d]", c.Name, i)
		m.breakers = append(m.breakers, resilient.NewBreaker(c))
	}
	return m
}

// Execute implements Platform by routing the call to the next live backend.
func (m *MultiPlatform) Execute(ctx context.Context, e *Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (Measurement, error) {
	start := int(m.next.Add(1) - 1)
	var lastErr error
	denied := 0
	for i := 0; i < len(m.backends); i++ {
		k := (start + i) % len(m.backends)
		if !m.breakers[k].Allow() {
			denied++
			continue
		}
		meas, err := m.backends[k].Execute(ctx, e, prog, st, train, noise)
		if err == nil {
			m.breakers[k].Success()
			return meas, nil
		}
		m.breakers[k].Failure()
		lastErr = fmt.Errorf("backend %d: %w", k, err)
		if ctx.Err() != nil {
			return Measurement{}, lastErr
		}
	}
	if lastErr == nil {
		// Every breaker denied the call: transient by construction — the
		// cooldown will re-admit probes, so the retry layer may try again.
		return Measurement{}, resilient.MarkTransient(
			fmt.Errorf("all %d backends circuit-broken: %w", denied, resilient.ErrBreakerOpen))
	}
	// Every backend failed this call. Whether that is worth retrying is up
	// to the last error's own class.
	return Measurement{}, fmt.Errorf("all %d backends failed: %w", len(m.backends), lastErr)
}

// BreakerTrips sums the trip counts of all per-backend breakers. RunContext
// harvests it into Result.BreakerTrips.
func (m *MultiPlatform) BreakerTrips() uint64 {
	var n uint64
	for _, b := range m.breakers {
		n += b.Trips()
	}
	return n
}

// BreakerStates returns the current per-backend breaker states, in backend
// order (diagnostics and tests).
func (m *MultiPlatform) BreakerStates() []resilient.State {
	out := make([]resilient.State, len(m.breakers))
	for i, b := range m.breakers {
		out[i] = b.State()
	}
	return out
}

// setTracer wires breaker transitions into the campaign tracer. RunContext
// calls it when the experiment's platform is a MultiPlatform.
func (m *MultiPlatform) setTracer(tr *telemetry.Tracer) {
	for _, b := range m.breakers {
		b.SetOnTransition(func(name string, from, to resilient.State) {
			tr.Breaker(name, from.String(), to.String())
		})
	}
}

// DeadPlatform is a permanently failing Platform: every Execute returns a
// permanent error. It models a board that is wired into the pool but never
// comes up, the canonical breaker-trip scenario of the fault-injection
// tests and the chaos smoke target.
type DeadPlatform struct {
	// Reason customizes the error text (default "backend dead").
	Reason string
}

// Execute implements Platform.
func (d DeadPlatform) Execute(context.Context, *Experiment, *arm.Program, *core.State, *core.State, *rand.Rand) (Measurement, error) {
	reason := d.Reason
	if reason == "" {
		reason = "backend dead"
	}
	return Measurement{}, resilient.MarkPermanent(fmt.Errorf("scamv: %s", reason))
}
