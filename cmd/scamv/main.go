// Command scamv runs the validation campaigns of the paper's evaluation
// (Table 1 and the Fig. 7 table) on the simulated Cortex-A53 platform and
// prints the result tables.
//
// Usage:
//
//	scamv -exp all                 # every campaign at reduced scale
//	scamv -exp mpart -scale 1.0    # one campaign at paper scale
//	scamv -exp mct-a -programs 20  # explicit program count
//	scamv -log run.jsonl           # also append per-experiment records
//	scamv -trace t.jsonl -progress # telemetry trace + live progress line
//	scamv -report t.jsonl          # log aggregates or trace latency report
//	scamv -report-diff old.jsonl new.jsonl
//	                               # align two traces: latency deltas, solver
//	                               # effort regressions, verdict drift
//	scamv -debug-addr :6060        # /metrics, /debug/scamv/live, pprof
//	scamv -flight-dir flights      # anomaly flight recorder: ring + goroutine
//	                               # dump bundles on slow queries and stalls
//	scamv -chaos heavy -fail-policy degrade -retries 2 -exec-timeout 100ms
//	                               # fault-injected campaign that degrades
//	                               # instead of aborting
//	scamv -checkpoint state/       # durable journal + periodic checkpoints:
//	                               # a crash or SIGKILL loses at most the
//	                               # programs in flight
//	scamv -resume state/           # reload the journals, skip completed
//	                               # programs, reproduce the rest exactly
//
// A first SIGINT/SIGTERM drains in-flight programs, checkpoints, prints the
// partial tables, and exits 3 (resumable); a second aborts immediately with
// exit 130.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"scamv"
	"scamv/internal/analysis"
	"scamv/internal/faultinject"
	"scamv/internal/gen"
	"scamv/internal/journal"
	"scamv/internal/logdb"
	"scamv/internal/micro"
	"scamv/internal/telemetry"
)

func main() {
	// The body lives in run so deferred cleanup (log/trace flush, progress
	// stop, debug server close) happens before the process exits with the
	// drain status code.
	os.Exit(run())
}

func run() int {
	var (
		exp       = flag.String("exp", "all", "campaign: all, mpart, mpart-pa, mct-a, mct-b, fig7-c, mspec1-b, straight, mtime, pcmodel")
		scale     = flag.Float64("scale", 0.05, "fraction of the paper-scale program counts to run")
		programs  = flag.Int("programs", 0, "override the number of programs (0 = scale * paper count)")
		tests     = flag.Int("tests", 0, "override test cases per program (0 = preset)")
		seed      = flag.Int64("seed", 2021, "campaign seed")
		logPath   = flag.String("log", "", "append per-experiment JSON records to this file")
		report    = flag.String("report", "", "analyse a previously written log or trace file and exit")
		reportDif = flag.String("report-diff", "", "diff this baseline trace against the trace given as the positional argument, then exit")
		strict    = flag.Bool("strict", false, "with -report/-report-diff: fail on a torn trailing line instead of dropping it with a warning")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "per-stage worker budget (programs in flight)")
		mono      = flag.Bool("monolithic", false, "disable the staged engine (no stage overlap or metrics; A/B baseline)")
		trace     = flag.String("trace", "", "write a JSONL telemetry trace (spans, solver queries, verdicts) to this file")
		debugAddr = flag.String("debug-addr", "", "serve /debug/scamv, /debug/vars and /debug/pprof on this address")
		progress  = flag.Bool("progress", false, "print a live progress line on stderr")
		execTO    = flag.Duration("exec-timeout", 0, "per-execution deadline (0 = none)")
		retries   = flag.Int("retries", 0, "retry budget per execution for transient failures")
		policy    = flag.String("fail-policy", "failfast", "on exhausted retries: failfast (abort campaign) or degrade (skip and continue)")
		chaos     = flag.String("chaos", "off", "fault-injection profile: off, light, or heavy (deterministic per -seed)")
		portfolio = flag.Int("portfolio", 0, "race N diversified CDCL workers per solver query (0 = single solver; results identical at any N)")
		shared    = flag.Bool("shared-cache", false, "share one blast cache per template shape across the campaign (results identical on or off)")
		matrix    = flag.Bool("matrix", false, "run each campaign as a platform matrix over -platforms (default a53,a72,m0)")
		platNames = flag.String("platforms", "", "comma-separated platform presets for the matrix (implies -matrix); see -platforms=help")
		flightDir = flag.String("flight-dir", "", "arm the anomaly flight recorder; bundles (ring + counters + goroutine dump) land under this directory")
		flightCPU = flag.Duration("flight-cpu", 0, "include a CPU profile slice of this duration in each flight bundle (0 = off)")
		ckptDir   = flag.String("checkpoint", "", "write a durable campaign journal with periodic atomic checkpoints under this directory (one subdirectory per campaign)")
		resumeDir = flag.String("resume", "", "resume campaigns from this checkpoint directory, skipping journaled programs (implies -checkpoint DIR)")
		ckptEvery = flag.Int("checkpoint-every", 0, "programs between automatic checkpoints (0 = default of 8, negative = final checkpoint only)")
	)
	flag.Parse()

	if *platNames == "help" {
		fmt.Println("platform presets:", strings.Join(micro.PresetNames(), ", "))
		return 0
	}
	resuming := *resumeDir != ""
	if resuming {
		if *ckptDir != "" && *ckptDir != *resumeDir {
			fatal(fmt.Errorf("-checkpoint %s conflicts with -resume %s (resume implies checkpointing into the same directory)", *ckptDir, *resumeDir))
		}
		*ckptDir = *resumeDir
	}
	var platforms []scamv.PlatformSpec
	if *matrix || *platNames != "" {
		names := *platNames
		if names == "" {
			names = "a53,a72,m0"
		}
		var err error
		platforms, err = scamv.PlatformsFromPresets(strings.Split(names, ",")...)
		if err != nil {
			fatal(err)
		}
	}

	chaosProf, err := faultinject.Named(*chaos)
	if err != nil {
		fatal(err)
	}
	failPolicy, err := scamv.ParseFailPolicy(*policy)
	if err != nil {
		fatal(err)
	}

	if *reportDif != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-report-diff needs exactly one positional argument: the new trace (got %d)", flag.NArg()))
		}
		if err := reportDiff(*reportDif, flag.Arg(0), *strict); err != nil {
			fatal(err)
		}
		return 0
	}
	if *report != "" {
		if err := analyse(*report, *strict); err != nil {
			fatal(err)
		}
		return 0
	}

	var db *logdb.DB
	if *logPath != "" {
		var err error
		db, err = logdb.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		defer db.Close()
	}

	// The tracer exists when any telemetry consumer is on: -trace feeds it
	// a file; -progress, -debug-addr, and -flight-dir run it in
	// aggregates-only mode.
	var tr *telemetry.Tracer
	if *trace != "" {
		var err error
		tr, err = telemetry.Create(*trace)
		if err != nil {
			fatal(err)
		}
	} else if *progress || *debugAddr != "" || *flightDir != "" {
		tr = telemetry.New(nil)
	}
	if tr.Enabled() {
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "scamv:", err)
			}
		}()
	}
	if *flightDir != "" {
		fr := tr.StartFlightRecorder(telemetry.FlightConfig{
			Dir:        *flightDir,
			CPUProfile: *flightCPU,
		})
		defer fr.Stop()
	}
	if *debugAddr != "" {
		srv, addr, err := telemetry.ServeDebug(*debugAddr, tr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		// Report the actually-bound address (meaningful with :0) and expose
		// it to the campaign results via the tracer.
		tr.SetDebugAddr(addr.String())
		fmt.Fprintf(os.Stderr, "scamv: debug endpoint on http://%s/debug/scamv (live: /debug/scamv/live, metrics: /metrics)\n", addr)
	}
	if *progress {
		stop := telemetry.StartProgress(os.Stderr, tr, time.Second)
		defer stop()
	}

	n := func(paper int) int {
		if *programs > 0 {
			return *programs
		}
		v := int(float64(paper) * *scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	tn := func(preset int) int {
		if *tests > 0 {
			return *tests
		}
		return preset
	}

	// Graceful shutdown: the first SIGINT/SIGTERM closes the drain channel —
	// every campaign finishes its in-flight programs, journals them, writes a
	// final checkpoint, and returns a partial (resumable) Result; campaigns
	// not yet started are skipped. A second signal aborts immediately.
	drain := scamv.ArmShutdown(
		func() {
			fmt.Fprintln(os.Stderr, "scamv: interrupt: draining in-flight programs (interrupt again to abort)")
		},
		func() {
			fmt.Fprintln(os.Stderr, "scamv: aborted")
			os.Exit(130)
		},
	)
	stopping := func() bool {
		select {
		case <-drain:
			return true
		default:
			return false
		}
	}
	interrupted := false

	// Resilience knobs apply uniformly; a chaos profile wraps each
	// experiment's platform in a fresh fault injector seeded from -seed, so
	// the fault schedule reproduces with the rest of the campaign.
	applyResilience := func(e *scamv.Experiment) {
		e.ExecTimeout = *execTO
		e.Retries = *retries
		e.FailPolicy = failPolicy
		e.Portfolio = *portfolio
		e.SharedCache = *shared
		e.Platforms = platforms
		e.Drain = drain
		if chaosProf.Name != "off" {
			e.Platform = faultinject.New(e.Platform, chaosProf, *seed)
		}
	}

	// runArmed runs one campaign with its journal armed (when -checkpoint or
	// -resume is set): each campaign gets its own subdirectory keyed by the
	// experiment name, opened fresh or resumed, and closed after the run.
	runArmed := func(e scamv.Experiment) (*scamv.Result, error) {
		if *ckptDir != "" {
			j, err := journal.Open(*ckptDir, e.Name, journal.Options{Resume: resuming, Every: *ckptEvery})
			if err != nil {
				return nil, err
			}
			defer func() {
				if cerr := j.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "scamv:", cerr)
				}
			}()
			e.Journal = j
		}
		r, err := scamv.Run(e)
		if err == nil && r.Drained {
			interrupted = true
		}
		return r, err
	}

	runPair := func(title string, unguided, refined scamv.Experiment) {
		if stopping() {
			interrupted = true
			return
		}
		unguided.Log, refined.Log = db, db
		unguided.Parallel, refined.Parallel = *parallel, *parallel
		unguided.Monolithic, refined.Monolithic = *mono, *mono
		unguided.Trace, refined.Trace = tr, tr
		applyResilience(&unguided)
		applyResilience(&refined)
		fmt.Printf("== %s ==\n", title)
		ru, err := runArmed(unguided)
		if err != nil {
			fatal(err)
		}
		if stopping() {
			interrupted = true
			fmt.Println(scamv.FormatTable(ru))
			return
		}
		rr, err := runArmed(refined)
		if err != nil {
			fatal(err)
		}
		fmt.Println(scamv.FormatTable(ru, rr))
	}
	runOne := func(title string, e scamv.Experiment) {
		if stopping() {
			interrupted = true
			return
		}
		e.Log = db
		e.Parallel = *parallel
		e.Monolithic = *mono
		e.Trace = tr
		applyResilience(&e)
		fmt.Printf("== %s ==\n", title)
		r, err := runArmed(e)
		if err != nil {
			fatal(err)
		}
		fmt.Println(scamv.FormatTable(r))
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("mpart") {
		ran = true
		u, r := scamv.MPartExperiments(false, n(scamv.PaperMPartPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mpart (AR = sets 61..127)", u, r)
	}
	if want("mpart-pa") {
		ran = true
		u, r := scamv.MPartExperiments(true, n(scamv.PaperMPartPAPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mpart page aligned (AR = sets 64..127)", u, r)
	}
	if want("mct-a") {
		ran = true
		u, r := scamv.MCtExperiments(gen.TemplateA{}, n(scamv.PaperMCtAPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mct Template A", u, r)
	}
	if want("mct-b") {
		ran = true
		u, r := scamv.MCtExperiments(gen.TemplateB{}, n(scamv.PaperMCtBPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mct Template B", u, r)
	}
	if want("fig7-c") {
		ran = true
		u, r := scamv.MCtExperiments(gen.TemplateC{}, n(scamv.PaperFig7CPrograms), tn(scamv.PaperFig7CTests), *seed)
		runPair("Fig. 7: Mct Template C", u, r)
		runOne("Fig. 7: Mspec1 Template C",
			scamv.MSpec1Experiment(gen.TemplateC{}, n(scamv.PaperFig7CPrograms), tn(scamv.PaperFig7CTests), *seed))
	}
	if want("mspec1-b") {
		ran = true
		runOne("Fig. 7: Mspec1 Template B",
			scamv.MSpec1Experiment(gen.TemplateB{}, n(scamv.PaperMSpec1BPrograms), tn(scamv.DefaultTestsPerProgram), *seed))
	}
	if want("mtime") {
		ran = true
		u, r := scamv.MTimeExperiments(n(100), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Extension: variable-time multiplier channel (Mct vs Mtime)", u, r)
	}
	if want("pcmodel") {
		ran = true
		u, r := scamv.MPCModelExperiments(n(100), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Extension: program-counter security model vs the data cache", u, r)
	}
	if want("straight") {
		ran = true
		runOne("Fig. 7: Mct Template D with Mspec' (straight-line)",
			scamv.StraightLineExperiment(n(scamv.PaperStraightPrograms), tn(scamv.PaperStraightTests), *seed))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if interrupted {
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "scamv: interrupted; campaign state checkpointed, resumable with -resume %s\n", *ckptDir)
		} else {
			fmt.Fprintln(os.Stderr, "scamv: interrupted; partial results above (run with -checkpoint DIR to make interrupts resumable)")
		}
		return 3
	}
	return 0
}

// analyse dispatches -report on the file's content: telemetry traces (every
// record carries a "kind") get the latency report, experiment logs get the
// campaign aggregates and checklist ratios. A torn trailing line (the writer
// was killed mid-append) is dropped with a warning, or is fatal under
// -strict.
func analyse(path string, strict bool) error {
	trace, err := isTraceFile(path)
	if err != nil {
		return err
	}
	if trace {
		recs, torn, err := telemetry.LoadTraceTolerant(path)
		if err != nil {
			return err
		}
		if err := warnTorn(path, torn, strict); err != nil {
			return err
		}
		fmt.Print(analysis.AnalyzeTrace(recs))
		return nil
	}
	return analyseLog(path, strict)
}

// warnTorn reports torn trailing lines: a stderr warning normally, an error
// under -strict.
func warnTorn(path string, torn int, strict bool) error {
	if torn == 0 {
		return nil
	}
	if strict {
		return fmt.Errorf("%s: %d torn trailing line(s) (rerun without -strict to drop them)", path, torn)
	}
	fmt.Fprintf(os.Stderr, "scamv: warning: %s: %d torn trailing line(s) dropped\n", path, torn)
	return nil
}

// reportDiff loads two traces and prints their alignment: per-stage latency
// deltas, per-program solver-effort regressions, and verdict drift.
func reportDiff(oldPath, newPath string, strict bool) error {
	load := func(path string) ([]telemetry.Record, error) {
		if ok, err := isTraceFile(path); err != nil {
			return nil, err
		} else if !ok {
			return nil, fmt.Errorf("%s: not a telemetry trace (-report-diff compares traces, not logs)", path)
		}
		recs, torn, err := telemetry.LoadTraceTolerant(path)
		if err != nil {
			return nil, err
		}
		if err := warnTorn(path, torn, strict); err != nil {
			return nil, err
		}
		return recs, nil
	}
	oldRecs, err := load(oldPath)
	if err != nil {
		return err
	}
	newRecs, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("old: %s\nnew: %s\n", oldPath, newPath)
	fmt.Print(analysis.DiffTraces(oldRecs, newRecs))
	return nil
}

// isTraceFile sniffs the first non-empty line: telemetry records always
// carry a "kind" field, logdb records never do.
func isTraceFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			// Leave malformed files to the stricter loader's diagnostics.
			return false, nil
		}
		return probe.Kind != "", nil
	}
	return false, sc.Err()
}

// analyseLog prints campaign aggregates and, for every unguided/refined pair
// of the same campaign family, the paper's §A.6.1 checklist ratios.
func analyseLog(path string, strict bool) error {
	recs, torn, err := logdb.LoadTolerant(path)
	if err != nil {
		return err
	}
	if err := warnTorn(path, torn, strict); err != nil {
		return err
	}
	campaigns := analysis.Aggregate(recs)
	fmt.Print(analysis.FormatCampaigns(campaigns))
	fmt.Println()
	for _, name := range analysis.Names(campaigns) {
		patterns := analysis.DiffPatterns(recs, name)
		if len(patterns) == 0 {
			continue
		}
		fmt.Printf("counterexample patterns of %s:\n%s\n", name, analysis.FormatPatterns(patterns))
	}
	for _, name := range analysis.Names(campaigns) {
		if !strings.HasSuffix(name, "/unguided") {
			continue
		}
		refined := campaigns[strings.TrimSuffix(name, "/unguided")+"/refined"]
		if refined == nil {
			continue
		}
		fmt.Print(analysis.Compare(campaigns[name], refined))
		fmt.Println()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scamv:", err)
	os.Exit(1)
}
