// Command scamv runs the validation campaigns of the paper's evaluation
// (Table 1 and the Fig. 7 table) on the simulated Cortex-A53 platform and
// prints the result tables.
//
// Usage:
//
//	scamv -exp all                 # every campaign at reduced scale
//	scamv -exp mpart -scale 1.0    # one campaign at paper scale
//	scamv -exp mct-a -programs 20  # explicit program count
//	scamv -log run.jsonl           # also append per-experiment records
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"scamv"
	"scamv/internal/analysis"
	"scamv/internal/gen"
	"scamv/internal/logdb"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "campaign: all, mpart, mpart-pa, mct-a, mct-b, fig7-c, mspec1-b, straight, mtime, pcmodel")
		scale    = flag.Float64("scale", 0.05, "fraction of the paper-scale program counts to run")
		programs = flag.Int("programs", 0, "override the number of programs (0 = scale * paper count)")
		tests    = flag.Int("tests", 0, "override test cases per program (0 = preset)")
		seed     = flag.Int64("seed", 2021, "campaign seed")
		logPath  = flag.String("log", "", "append per-experiment JSON records to this file")
		report   = flag.String("report", "", "analyse a previously written log file and exit")
		parallel = flag.Int("parallel", runtime.NumCPU(), "per-stage worker budget (programs in flight)")
		mono     = flag.Bool("monolithic", false, "disable the staged engine (no stage overlap or metrics; A/B baseline)")
	)
	flag.Parse()

	if *report != "" {
		if err := analyse(*report); err != nil {
			fatal(err)
		}
		return
	}

	var db *logdb.DB
	if *logPath != "" {
		var err error
		db, err = logdb.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		defer db.Close()
	}

	n := func(paper int) int {
		if *programs > 0 {
			return *programs
		}
		v := int(float64(paper) * *scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	tn := func(preset int) int {
		if *tests > 0 {
			return *tests
		}
		return preset
	}

	runPair := func(title string, unguided, refined scamv.Experiment) {
		unguided.Log, refined.Log = db, db
		unguided.Parallel, refined.Parallel = *parallel, *parallel
		unguided.Monolithic, refined.Monolithic = *mono, *mono
		fmt.Printf("== %s ==\n", title)
		ru, err := scamv.Run(unguided)
		if err != nil {
			fatal(err)
		}
		rr, err := scamv.Run(refined)
		if err != nil {
			fatal(err)
		}
		fmt.Println(scamv.FormatTable(ru, rr))
	}
	runOne := func(title string, e scamv.Experiment) {
		e.Log = db
		e.Parallel = *parallel
		e.Monolithic = *mono
		fmt.Printf("== %s ==\n", title)
		r, err := scamv.Run(e)
		if err != nil {
			fatal(err)
		}
		fmt.Println(scamv.FormatTable(r))
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("mpart") {
		ran = true
		u, r := scamv.MPartExperiments(false, n(scamv.PaperMPartPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mpart (AR = sets 61..127)", u, r)
	}
	if want("mpart-pa") {
		ran = true
		u, r := scamv.MPartExperiments(true, n(scamv.PaperMPartPAPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mpart page aligned (AR = sets 64..127)", u, r)
	}
	if want("mct-a") {
		ran = true
		u, r := scamv.MCtExperiments(gen.TemplateA{}, n(scamv.PaperMCtAPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mct Template A", u, r)
	}
	if want("mct-b") {
		ran = true
		u, r := scamv.MCtExperiments(gen.TemplateB{}, n(scamv.PaperMCtBPrograms), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Table 1: Mct Template B", u, r)
	}
	if want("fig7-c") {
		ran = true
		u, r := scamv.MCtExperiments(gen.TemplateC{}, n(scamv.PaperFig7CPrograms), tn(scamv.PaperFig7CTests), *seed)
		runPair("Fig. 7: Mct Template C", u, r)
		runOne("Fig. 7: Mspec1 Template C",
			scamv.MSpec1Experiment(gen.TemplateC{}, n(scamv.PaperFig7CPrograms), tn(scamv.PaperFig7CTests), *seed))
	}
	if want("mspec1-b") {
		ran = true
		runOne("Fig. 7: Mspec1 Template B",
			scamv.MSpec1Experiment(gen.TemplateB{}, n(scamv.PaperMSpec1BPrograms), tn(scamv.DefaultTestsPerProgram), *seed))
	}
	if want("mtime") {
		ran = true
		u, r := scamv.MTimeExperiments(n(100), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Extension: variable-time multiplier channel (Mct vs Mtime)", u, r)
	}
	if want("pcmodel") {
		ran = true
		u, r := scamv.MPCModelExperiments(n(100), tn(scamv.DefaultTestsPerProgram), *seed)
		runPair("Extension: program-counter security model vs the data cache", u, r)
	}
	if want("straight") {
		ran = true
		runOne("Fig. 7: Mct Template D with Mspec' (straight-line)",
			scamv.StraightLineExperiment(n(scamv.PaperStraightPrograms), tn(scamv.PaperStraightTests), *seed))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// analyse prints campaign aggregates and, for every unguided/refined pair
// of the same campaign family, the paper's §A.6.1 checklist ratios.
func analyse(path string) error {
	recs, err := logdb.Load(path)
	if err != nil {
		return err
	}
	campaigns := analysis.Aggregate(recs)
	fmt.Print(analysis.FormatCampaigns(campaigns))
	fmt.Println()
	for _, name := range analysis.Names(campaigns) {
		patterns := analysis.DiffPatterns(recs, name)
		if len(patterns) == 0 {
			continue
		}
		fmt.Printf("counterexample patterns of %s:\n%s\n", name, analysis.FormatPatterns(patterns))
	}
	for _, name := range analysis.Names(campaigns) {
		if !strings.HasSuffix(name, "/unguided") {
			continue
		}
		refined := campaigns[strings.TrimSuffix(name, "/unguided")+"/refined"]
		if refined == nil {
			continue
		}
		fmt.Print(analysis.Compare(campaigns[name], refined))
		fmt.Println()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scamv:", err)
	os.Exit(1)
}
