// Command siscloak mounts the SiSCloak attack (paper §6.4) against a chosen
// victim gadget on the simulated Cortex-A53 and prints the Flush+Reload
// timing profile.
//
// Usage:
//
//	siscloak                      # counterexample 1 of Fig. 6
//	siscloak -victim siscloak2    # the classification-bit variant
//	siscloak -victim spectre-pht  # the control: does NOT leak on this core
//	siscloak -secret 42 -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"scamv/internal/attack"
	"scamv/internal/expr"
	"scamv/internal/gen"
)

const (
	arrayA = 0x10000
	arrayB = 0x20000
	bound  = 8
)

func main() {
	var (
		victim  = flag.String("victim", "siscloak1", "gadget: siscloak1, siscloak2, spectre-pht")
		secret  = flag.Int("secret", 37, "planted secret (a probe-array line index, 0..63)")
		rounds  = flag.Int("rounds", 4, "maximum Flush+Reload rounds")
		verbose = flag.Bool("verbose", false, "print the per-line reload timings")
	)
	flag.Parse()
	if *secret < 0 || *secret > 63 {
		fatal(fmt.Errorf("secret %d out of range 0..63", *secret))
	}

	mem := expr.NewMemModel(0)
	train := map[string]uint64{"x0": 0, "x1": bound, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": bound, "x5": arrayA, "x7": arrayB}

	var prog = gen.SiSCloak1()
	switch *victim {
	case "siscloak1":
		mem.Set(arrayA+16, uint64(*secret)*64)
	case "siscloak2":
		prog = gen.SiSCloak2()
		mem.Set(arrayA+24, 0x80000000|uint64(*secret)*64)
		mem.Set(arrayA+0, 5*64)
		var base uint64 = arrayB
		base -= 0x80000000
		train = map[string]uint64{"x0": 0, "x5": arrayA, "x7": base}
		attackRegs = map[string]uint64{"x0": 24, "x5": arrayA, "x7": base}
	case "spectre-pht":
		prog = gen.SpectrePHT()
		mem.Set(arrayA+16, uint64(*secret)*64)
	default:
		fatal(fmt.Errorf("unknown victim %q", *victim))
	}

	fmt.Printf("victim %s:\n%s\n", prog.Name, prog)
	fmt.Printf("planted secret: probe line %d\n\n", *secret)

	runner := attack.NewRunner(prog, mem, attack.DefaultConfig())
	var res *attack.Result
	var err error
	for round := 0; round < *rounds; round++ {
		res, err = runner.Round(train, attackRegs, arrayB)
		if err != nil {
			fatal(err)
		}
		if _, ok := res.Recovered(); ok {
			break
		}
	}
	if *verbose {
		fmt.Println("reload timings (cycles):")
		for i, t := range res.Timings {
			marker := ""
			for _, h := range res.HitLines {
				if h == i {
					marker = "  <-- HIT"
				}
			}
			fmt.Printf("  line %2d: %3d%s\n", i, t, marker)
		}
		fmt.Println()
	}
	switch {
	case len(res.HitLines) == 1 && res.HitLines[0] == *secret:
		fmt.Printf("recovered secret line %d — SiSCloak leak confirmed.\n", res.HitLines[0])
	case len(res.HitLines) == 0 && *victim == "spectre-pht":
		fmt.Println("no probe line hit: the dependent transient load never issues on")
		fmt.Println("this core — classic Spectre-PHT does not leak (ARM's A53 claim).")
	case len(res.HitLines) == 0:
		fmt.Println("no leak observed.")
	default:
		fmt.Printf("ambiguous hits: %v\n", res.HitLines)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siscloak:", err)
	os.Exit(1)
}
