// Crash-safety tests: resumed campaigns must reproduce an uninterrupted
// run's Result exactly (modulo wall clock), whether the interruption was a
// graceful drain or a SIGKILL at a random point. Like chaos_test.go, these
// live in the external test package (internal/journal is shared with
// faultinject, which imports scamv).
//
// The subprocess tests re-exec this test binary as a crash child: TestMain
// sees SCAMV_CRASH_CHILD and runs one journaled campaign instead of the test
// suite, so the parent can kill -9 it mid-campaign and resume the pieces.
package scamv_test

import (
	"context"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/core"
	"scamv/internal/journal"
	"scamv/internal/logdb"
)

// resumeGolden strips a Result to the fields the resume-equivalence contract
// covers: every count, index, and verdict — everything except wall-clock
// durations, TTC, stage metrics, and the crash-safety bookkeeping itself.
type resumeGolden struct {
	Name                string
	Programs            int
	ProgramsWithCounter int
	Experiments         int
	Counterexamples     int
	Inconclusive        int
	EncodeFallbacks     int
	Queries             int
	Found               bool
	FirstCEProgram      int
	FirstCETest         int
	SkippedTests        int
	QuarantinedPrograms int
	Skips               []scamv.Skip
	Retries             int
	Timeouts            int
	ShapeHits           int64
	ShapeMisses         int64
	Matrix              []matrixGolden
}

type matrixGolden struct {
	Platform        string
	Experiments     int
	Counterexamples int
	Inconclusive    int
	SkippedTests    int
	Found           bool
	FirstCEProgram  int
	FirstCETest     int
}

func resumeGoldenOf(r *scamv.Result) resumeGolden {
	g := resumeGolden{
		Name:                r.Name,
		Programs:            r.Programs,
		ProgramsWithCounter: r.ProgramsWithCounter,
		Experiments:         r.Experiments,
		Counterexamples:     r.Counterexamples,
		Inconclusive:        r.Inconclusive,
		EncodeFallbacks:     r.EncodeFallbacks,
		Queries:             r.Queries,
		Found:               r.Found,
		FirstCEProgram:      r.FirstCEProgram,
		FirstCETest:         r.FirstCETest,
		SkippedTests:        r.SkippedTests,
		QuarantinedPrograms: r.QuarantinedPrograms,
		Skips:               r.Skips,
		Retries:             r.Retries,
		Timeouts:            r.Timeouts,
		ShapeHits:           r.ShapeHits,
		ShapeMisses:         r.ShapeMisses,
	}
	for i := range r.Matrix {
		m := &r.Matrix[i]
		g.Matrix = append(g.Matrix, matrixGolden{
			Platform:        m.Platform,
			Experiments:     m.Experiments,
			Counterexamples: m.Counterexamples,
			Inconclusive:    m.Inconclusive,
			SkippedTests:    m.SkippedTests,
			Found:           m.Found,
			FirstCEProgram:  m.FirstCEProgram,
			FirstCETest:     m.FirstCETest,
		})
	}
	return g
}

// crashCampaign is the shared campaign under test: small enough for CI,
// with the acceptance features on — platform matrix, portfolio solving, and
// the campaign shape cache — on either engine. Large enough in programs
// that a drain or kill lands while the staged pipeline still has unproduced
// programs (the pipeline absorbs ~4 stages × 4 buffered items in flight).
func crashCampaign(monolithic bool) scamv.Experiment {
	u, _ := scamv.MPartExperiments(false, 24, 5, 2021)
	u.Repeats = 2
	u.Parallel = 4
	u.Monolithic = monolithic
	u.Portfolio = 2
	u.SharedCache = true
	plats, err := scamv.PlatformsFromPresets("a53", "a72")
	if err != nil {
		panic(err)
	}
	u.Platforms = plats
	return u
}

// drainAfter is a Platform wrapper that closes a drain channel after n
// Execute calls — a deterministic-enough way to interrupt a campaign in
// flight without guessing timers.
type drainAfter struct {
	inner scamv.Platform
	n     int64
	count atomic.Int64
	once  sync.Once
	ch    chan struct{}
}

func newDrainAfter(inner scamv.Platform, n int64) *drainAfter {
	if inner == nil {
		inner = scamv.SimPlatform{}
	}
	return &drainAfter{inner: inner, n: n, ch: make(chan struct{})}
}

func (d *drainAfter) Execute(ctx context.Context, e *scamv.Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (scamv.Measurement, error) {
	if d.count.Add(1) >= d.n {
		d.once.Do(func() { close(d.ch) })
	}
	return d.inner.Execute(ctx, e, prog, st, train, noise)
}

// mustRun runs a campaign and fails the test on error.
func mustRun(t *testing.T, e scamv.Experiment) *scamv.Result {
	t.Helper()
	r, err := scamv.Run(e)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

// loadLogNormalized loads a logdb file with the per-record wall-clock fields
// zeroed, so resumed and uninterrupted logs compare on content.
func loadLogNormalized(t *testing.T, path string) []logdb.Record {
	t.Helper()
	recs, err := logdb.Load(path)
	if err != nil {
		t.Fatalf("load log %s: %v", path, err)
	}
	for i := range recs {
		recs[i].GenMicros, recs[i].ExeMicros = 0, 0
	}
	return recs
}

// TestResumeEquivalence is the tentpole contract on both engines: interrupt
// a journaled campaign by a graceful drain partway through, resume it in a
// second "process" (a fresh journal open), and require the stitched Result —
// counts, matrix rows, skips, shape-cache totals — and the experiment log to
// equal an uninterrupted run's.
func TestResumeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mono bool
	}{{"staged", false}, {"monolithic", true}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()

			// Uninterrupted reference, no journal.
			ref := crashCampaign(tc.mono)
			refLog := filepath.Join(dir, "ref.jsonl")
			db, err := logdb.Open(refLog)
			if err != nil {
				t.Fatal(err)
			}
			ref.Log = db
			want := resumeGoldenOf(mustRun(t, ref))
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if want.Experiments == 0 || want.ShapeMisses == 0 || len(want.Matrix) != 2 {
				t.Fatalf("reference campaign is vacuous: %+v", want)
			}

			// Interrupted run: journal armed, drain after a handful of
			// platform executions.
			jdir := filepath.Join(dir, "state")
			e1 := crashCampaign(tc.mono)
			j1, err := journal.Open(jdir, e1.Name, journal.Options{Every: 1})
			if err != nil {
				t.Fatal(err)
			}
			da := newDrainAfter(nil, 20)
			e1.Platform = da
			e1.Drain = da.ch
			e1.Journal = j1
			r1 := mustRun(t, e1)
			if err := j1.Close(); err != nil {
				t.Fatal(err)
			}
			if r1.Programs >= e1.Programs {
				t.Fatalf("drain did not interrupt: %d/%d programs completed", r1.Programs, e1.Programs)
			}
			if !r1.Drained {
				t.Fatalf("partial run not marked Drained: %+v", r1)
			}
			if r1.Checkpoints == 0 {
				t.Fatalf("no checkpoints written by the interrupted run")
			}

			// Resumed run: fresh journal open on the same state, fresh log.
			e2 := crashCampaign(tc.mono)
			j2, err := journal.Open(jdir, e2.Name, journal.Options{Resume: true, Every: 1})
			if err != nil {
				t.Fatal(err)
			}
			resLog := filepath.Join(dir, "resumed.jsonl")
			db2, err := logdb.Open(resLog)
			if err != nil {
				t.Fatal(err)
			}
			e2.Journal = j2
			e2.Log = db2
			r2 := mustRun(t, e2)
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}

			if r2.RestoredPrograms != r1.Programs {
				t.Fatalf("resume restored %d programs, interrupted run completed %d",
					r2.RestoredPrograms, r1.Programs)
			}
			if r2.Drained {
				t.Fatalf("resumed run marked Drained: %+v", r2)
			}
			if got := resumeGoldenOf(r2); !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed Result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
			}
			if got, wantRecs := loadLogNormalized(t, resLog), loadLogNormalized(t, refLog); !reflect.DeepEqual(got, wantRecs) {
				t.Fatalf("resumed log differs from uninterrupted log: %d vs %d records", len(got), len(wantRecs))
			}
		})
	}
}

// TestResumeEquivalenceDegradeChaos runs the same contract under the heavy
// fault-injection profile with FailPolicy Degrade: skips, retries, and
// quarantines journal and resume like verdicts do. The injector's attempt
// counters are keyed by program identity, so a rebuilt injector reproduces
// the fault schedule for the non-restored suffix.
func TestResumeEquivalenceDegradeChaos(t *testing.T) {
	chaotic := func() scamv.Experiment {
		e := chaosExperiment(false)
		// Enough programs that the staged pipeline cannot absorb the whole
		// campaign in its stage buffers before the drain fires (see
		// crashCampaign for the same sizing argument; the buffers hold
		// roughly 20 items, so 20 was not enough).
		e.Programs = 40
		return e
	}

	want := resumeGoldenOf(mustRun(t, chaotic()))
	if want.SkippedTests == 0 && want.Retries == 0 {
		t.Fatalf("chaos campaign is vacuous: %+v", want)
	}

	jdir := t.TempDir()
	e1 := chaotic()
	j1, err := journal.Open(jdir, e1.Name, journal.Options{Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	da := newDrainAfter(e1.Platform, 15)
	e1.Platform = da
	e1.Drain = da.ch
	e1.Journal = j1
	r1 := mustRun(t, e1)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if r1.Programs >= e1.Programs {
		t.Fatalf("drain did not interrupt: %d/%d programs", r1.Programs, e1.Programs)
	}

	e2 := chaotic()
	j2, err := journal.Open(jdir, e2.Name, journal.Options{Resume: true, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	e2.Journal = j2
	r2 := mustRun(t, e2)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := resumeGoldenOf(r2); !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos resume differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}

// TestResumeFingerprintMismatch: resuming under a different configuration
// must fail loudly, not splice incompatible prefixes.
func TestResumeFingerprintMismatch(t *testing.T) {
	jdir := t.TempDir()
	e1 := crashCampaign(false)
	j1, err := journal.Open(jdir, e1.Name, journal.Options{Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	e1.Journal = j1
	mustRun(t, e1)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := crashCampaign(false)
	e2.Seed++ // count-affecting change
	j2, err := journal.Open(jdir, e2.Name, journal.Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	e2.Journal = j2
	if _, err := scamv.Run(e2); err == nil {
		t.Fatalf("resume with a different seed succeeded; want fingerprint mismatch")
	}
}

// TestDrainBeforeStart: a drain signal that lands before the campaign begins
// yields an empty, Drained, resumable Result — not an error.
func TestDrainBeforeStart(t *testing.T) {
	for _, tc := range []struct {
		name string
		mono bool
	}{{"staged", false}, {"monolithic", true}} {
		t.Run(tc.name, func(t *testing.T) {
			e := crashCampaign(tc.mono)
			ch := make(chan struct{})
			close(ch)
			e.Drain = ch
			r := mustRun(t, e)
			if r.Programs != 0 || !r.Drained {
				t.Fatalf("got programs=%d drained=%v, want 0/true", r.Programs, r.Drained)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Subprocess crash children (see TestMain in main_crash_test.go).

// crashChildEnv builds the command that re-executes this test binary as a
// crash child running one journaled campaign in dir.
func crashChildCmd(dir string, mono, armSignals bool) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), "SCAMV_CRASH_CHILD="+dir)
	if mono {
		cmd.Env = append(cmd.Env, "SCAMV_CRASH_MONO=1")
	}
	if armSignals {
		cmd.Env = append(cmd.Env, "SCAMV_CRASH_ARM=1")
	}
	return cmd
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// TestCrashSIGKILLChaos is the kill-at-random-point proof on both engines:
// repeatedly start a journaled campaign in a subprocess, SIGKILL it after an
// escalating delay, and resume — the Result assembled across the carcasses
// must equal an uninterrupted in-process run's.
func TestCrashSIGKILLChaos(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signals required")
	}
	if testing.Short() {
		t.Skip("subprocess chaos loop skipped in -short")
	}
	for _, tc := range []struct {
		name string
		mono bool
	}{{"staged", false}, {"monolithic", true}} {
		t.Run(tc.name, func(t *testing.T) {
			want := resumeGoldenOf(mustRun(t, crashCampaign(tc.mono)))

			dir := t.TempDir()
			delays := []time.Duration{
				20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond,
				90 * time.Millisecond, 140 * time.Millisecond, 220 * time.Millisecond,
				350 * time.Millisecond, 600 * time.Millisecond, time.Second,
			}
			completed := false
			for attempt := 0; attempt < len(delays)+1 && !completed; attempt++ {
				cmd := crashChildCmd(dir, tc.mono, false)
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				if attempt < len(delays) {
					time.Sleep(delays[attempt])
					_ = cmd.Process.Kill() // SIGKILL; may race a clean exit
					code := exitCode(cmd.Wait())
					if code == 0 {
						completed = true
					}
					t.Logf("attempt %d: killed after %v (exit %d)", attempt, delays[attempt], code)
				} else {
					// Last attempt runs to completion.
					out, err := cmd.CombinedOutput()
					if err != nil {
						t.Fatalf("final resume run failed: %v\n%s", err, out)
					}
					completed = true
				}
			}

			// Verify the assembled journal in-process: a resume restores every
			// program and reproduces the uninterrupted Result.
			e := crashCampaign(tc.mono)
			j, err := journal.Open(dir, e.Name, journal.Options{Resume: true, Every: 1})
			if err != nil {
				t.Fatal(err)
			}
			e.Journal = j
			r := mustRun(t, e)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if r.RestoredPrograms != e.Programs {
				t.Fatalf("journal restored %d/%d programs after chaos loop", r.RestoredPrograms, e.Programs)
			}
			if got := resumeGoldenOf(r); !reflect.DeepEqual(got, want) {
				t.Fatalf("post-chaos Result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestGracefulSIGINT drives the two-signal shutdown protocol end to end in a
// subprocess: one SIGINT drains and exits with the resumable status code,
// and a subsequent resume completes the campaign with the uninterrupted
// Result.
func TestGracefulSIGINT(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signals required")
	}
	if testing.Short() {
		t.Skip("subprocess signal test skipped in -short")
	}
	want := resumeGoldenOf(mustRun(t, crashCampaign(false)))

	dir := t.TempDir()
	cmd := crashChildCmd(dir, false, true)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	code := exitCode(cmd.Wait())
	// 3 = drained partway (the interesting path); 0 = the campaign beat the
	// signal, which still exercises resume-of-complete below.
	if code != 3 && code != 0 {
		t.Fatalf("interrupted child exited %d, want 3 (drained) or 0 (completed)", code)
	}
	t.Logf("SIGINT child exited %d", code)

	out, err := crashChildCmd(dir, false, false).CombinedOutput()
	if err != nil {
		t.Fatalf("resume child failed: %v\n%s", err, out)
	}

	e := crashCampaign(false)
	j, err := journal.Open(dir, e.Name, journal.Options{Resume: true, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Journal = j
	r := mustRun(t, e)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := resumeGoldenOf(r); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-SIGINT Result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}

// TestSecondSignalAborts: two rapid SIGINTs abort immediately with a
// non-zero exit, and the journal is still resumable afterwards (the
// checkpointed prefix survives the abort).
func TestSecondSignalAborts(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signals required")
	}
	if testing.Short() {
		t.Skip("subprocess signal test skipped in -short")
	}
	dir := t.TempDir()
	cmd := crashChildCmd(dir, false, true)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	_ = cmd.Process.Signal(syscall.SIGINT)
	time.Sleep(10 * time.Millisecond)
	_ = cmd.Process.Signal(syscall.SIGINT)
	code := exitCode(cmd.Wait())
	// 130 = second-signal abort; 3/0 mean the drain or campaign beat the
	// second signal — timing-dependent, and every outcome must leave the
	// journal resumable.
	if code != 130 && code != 3 && code != 0 {
		t.Fatalf("double-interrupted child exited %d, want 130, 3, or 0", code)
	}
	t.Logf("double-SIGINT child exited %d", code)

	e := crashCampaign(false)
	j, err := journal.Open(dir, e.Name, journal.Options{Resume: true, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Journal = j
	r := mustRun(t, e)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Programs != e.Programs {
		t.Fatalf("resume after abort completed %d/%d programs", r.Programs, e.Programs)
	}
}
