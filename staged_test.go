package scamv

import (
	"context"
	"errors"
	"strings"
	"testing"

	"scamv/internal/gen"
)

// TestStagedMatchesMonolithicGoldenMLine is the acceptance gate of the
// staged-engine rework: seed-for-seed identical campaign counts between the
// monolithic worker pool and the staged pipeline on the golden MLine
// campaign (the BENCH_gen.json configuration), sequentially and with
// stage overlap at Parallel = 4.
func TestStagedMatchesMonolithicGoldenMLine(t *testing.T) {
	base := benchGenCampaign(false)
	base.Programs = 2 // keep the default test run fast; bench-campaign runs it large
	for _, parallel := range []int{1, 4} {
		mono := base
		mono.Monolithic = true
		mono.Parallel = parallel
		rm, err := Run(mono)
		if err != nil {
			t.Fatal(err)
		}
		staged := base
		staged.Parallel = parallel
		rs, err := Run(staged)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Programs != rs.Programs || rm.Experiments != rs.Experiments ||
			rm.Counterexamples != rs.Counterexamples || rm.Inconclusive != rs.Inconclusive ||
			rm.Queries != rs.Queries || rm.ProgramsWithCounter != rs.ProgramsWithCounter ||
			rm.EncodeFallbacks != rs.EncodeFallbacks {
			t.Errorf("parallel=%d: engines diverge:\nmonolithic %+v\nstaged     %+v", parallel, rm, rs)
		}
		if rm.Found != rs.Found || rm.FirstCEProgram != rs.FirstCEProgram || rm.FirstCETest != rs.FirstCETest {
			t.Errorf("parallel=%d: first-counterexample index diverges: p%d/t%d vs p%d/t%d",
				parallel, rm.FirstCEProgram, rm.FirstCETest, rs.FirstCEProgram, rs.FirstCETest)
		}
		if len(rm.Stages) != 0 {
			t.Error("monolithic engine must not report stage metrics")
		}
		if len(rs.Stages) == 0 {
			t.Error("staged engine must report stage metrics")
		}
	}
}

// TestStagesPopulated checks the metrics spine: every pipeline stage
// appears in order, item counts balance, and FormatTable renders the block.
func TestStagesPopulated(t *testing.T) {
	_, refined := MCtExperiments(gen.TemplateA{}, 4, 6, 11)
	refined.Parallel = 3
	r, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"proggen", "encode", "prepare", "testgen", "execute", "collect"}
	if len(r.Stages) != len(want) {
		t.Fatalf("stages: %+v", r.Stages)
	}
	for i, name := range want {
		s := r.Stages[i]
		if s.Name != name {
			t.Fatalf("stage %d = %q, want %q", i, s.Name, name)
		}
		if s.Out != int64(r.Programs) {
			t.Errorf("stage %s emitted %d items, want %d", name, s.Out, r.Programs)
		}
		if s.Skipped != 0 || s.Failed != 0 {
			t.Errorf("stage %s: unexpected skips/failures: %+v", name, s)
		}
	}
	// The heavy stages must account for real work.
	for _, i := range []int{3, 4} {
		if r.Stages[i].Busy <= 0 {
			t.Errorf("stage %s reports no busy time", r.Stages[i].Name)
		}
	}
	out := FormatTable(r)
	for _, wantStr := range []string{"stages[", "proggen", "testgen", "execute", "busy", "wait", "First c.e."} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("FormatTable missing %q:\n%s", wantStr, out)
		}
	}
}

// TestRunContextCancelled: a cancelled context aborts the campaign with the
// context's error instead of a partial result.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, refined := MCtExperiments(gen.TemplateA{}, 8, 10, 11)
	if _, err := RunContext(ctx, refined); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The monolithic engine honors cancellation too.
	refined.Monolithic = true
	if _, err := RunContext(ctx, refined); !errors.Is(err, context.Canceled) {
		t.Fatalf("monolithic err = %v, want context.Canceled", err)
	}
}

// TestNoiseSeedNoCollisions is the regression test for the additive
// noise-seed scheme: the old derivation seed^0x5eed + p*100000 + t*100
// collided exactly once TestsPerProgram reached 1000 ((p, t+1000) and
// (p+1, t) shared a seed); the splitmix64 derivation must keep every
// (program, test) stream distinct across a realistic campaign envelope.
func TestNoiseSeedNoCollisions(t *testing.T) {
	const seed, programs, tests = 2021, 128, 2048
	oldScheme := func(p, t int) int64 { return seed ^ 0x5eed + int64(p)*100000 + int64(t)*100 }
	if oldScheme(0, 1000) != oldScheme(1, 0) {
		t.Fatal("collision premise gone: the old scheme should collide at t=1000")
	}
	seen := make(map[int64][2]int, programs*tests)
	for p := 0; p < programs; p++ {
		for tc := 0; tc < tests; tc++ {
			s := noiseSeed(seed, p, tc)
			if prev, dup := seen[s]; dup {
				t.Fatalf("noiseSeed collision: (p%d,t%d) and (p%d,t%d) share %#x",
					prev[0], prev[1], p, tc, s)
			}
			seen[s] = [2]int{p, tc}
		}
	}
	// Repetition offsets (±2*Repeats around the base) must not alias the
	// base seeds of neighbouring tests either.
	for tc := 0; tc < 100; tc++ {
		base := noiseSeed(seed, 0, tc)
		for rep := int64(1); rep <= 20; rep++ {
			if _, dup := seen[base+rep]; dup {
				t.Fatalf("repetition stream of t%d aliases another test's base seed", tc)
			}
		}
	}
}

// TestFirstCounterexampleDeterministic: the (program, test) index of the
// first counterexample must be identical across runs and Parallel settings,
// unlike the wall-clock TTC.
func TestFirstCounterexampleDeterministic(t *testing.T) {
	_, refined := MCtExperiments(gen.TemplateA{}, 6, 8, 17)
	seq, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Found {
		t.Fatal("refined Template A campaign must find a counterexample")
	}
	par := refined
	par.Parallel = 4
	pr, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.FirstCEProgram != pr.FirstCEProgram || seq.FirstCETest != pr.FirstCETest {
		t.Errorf("first-counterexample index not deterministic: p%d/t%d vs p%d/t%d",
			seq.FirstCEProgram, seq.FirstCETest, pr.FirstCEProgram, pr.FirstCETest)
	}
	if seq.FirstCEProgram < 0 || seq.FirstCETest < 0 {
		t.Errorf("found campaign must have a non-negative index, got p%d/t%d",
			seq.FirstCEProgram, seq.FirstCETest)
	}
	if !strings.Contains(seq.Summary(), "first counterexample at p") {
		t.Errorf("summary missing the index: %s", seq.Summary())
	}
	// Unfound campaigns render "-" instead of an index.
	unfound := &Result{FirstCEProgram: -1, FirstCETest: -1}
	if strings.Contains(FormatTable(unfound), "p-1") {
		t.Error("unfound campaign must render '-' for the first-c.e. cell")
	}
}
