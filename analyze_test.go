package scamv

import (
	"testing"

	"scamv/internal/arm"
	"scamv/internal/gen"
	"scamv/internal/obs"
)

func specModel() *obs.MCt {
	return &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
}

func TestCheckPolicyFlagsSiSCloak(t *testing.T) {
	rep, err := CheckPolicy(gen.SiSCloak1(), specModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LeakPossible {
		t.Fatal("the SiSCloak gadget must be flagged as potentially leaking")
	}
	if rep.Witness == nil {
		t.Fatal("a leak verdict must carry a witness pair")
	}
}

func TestCheckPolicySecureProgram(t *testing.T) {
	// A branch whose body accesses only a fixed, branch-independent
	// address: transient observations are constants, so no M1-equivalent
	// pair can differ under M_spec.
	prog, err := arm.Parse("secure", `
        cmp x0, x1
        b.hs end
        movz x3, #0x4000
        ldr x2, [x3]
    end:
        hlt
    `)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPolicy(prog, specModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakPossible {
		t.Fatalf("constant-address program flagged as leaking (witness %v)", rep.Witness)
	}
	if rep.PairsChecked == 0 {
		t.Error("no pairs checked")
	}
}

func TestCheckPolicyStraightLine(t *testing.T) {
	// No branch at all: nothing speculates, nothing can differ under the
	// refinement.
	prog, err := arm.Parse("line", "ldr x1, [x0]\nadd x2, x1, #1\nhlt")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPolicy(prog, specModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakPossible {
		t.Error("straight-line program cannot leak speculatively")
	}
}

func TestCheckPolicyRequiresRefinedModel(t *testing.T) {
	if _, err := CheckPolicy(gen.SiSCloak1(), &obs.MCt{Geom: obs.DefaultGeometry}, 1); err == nil {
		t.Fatal("expected an error for an unrefined model pair")
	}
}

func TestCheckPolicyWitnessIsReal(t *testing.T) {
	// The witness must actually reproduce on the simulated hardware.
	rep, err := CheckPolicy(gen.SiSCloak1(), specModel(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(gen.SiSCloak1(), specModel())
	if err != nil {
		t.Fatal(err)
	}
	e := Experiment{Speculative: true, Refined: true, Seed: 3}
	en := e.WithDefaults()
	train, ok := pl.TrainingState(rep.Witness.PathA, 3)
	if !ok {
		t.Fatal("no training state")
	}
	v, err := pl.ExecuteTestCase(&en, rep.Witness, train, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != Counterexample {
		t.Errorf("witness does not reproduce on hardware: %v", v)
	}
}
