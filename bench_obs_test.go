package scamv

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"scamv/internal/telemetry"
)

// benchObsRow is one configuration's entry in BENCH_obs.json.
type benchObsRow struct {
	Mode            string  `json:"mode"` // "trace" or "observatory"
	Programs        int     `json:"programs"`
	Experiments     int     `json:"experiments"`
	Counterexamples int     `json:"counterexamples"`
	Queries         int     `json:"queries"`
	WallMS          float64 `json:"wall_ms"`
	MetricsScrapes  int     `json:"metrics_scrapes,omitempty"`
	SSETicks        int     `json:"sse_ticks,omitempty"`
}

// benchObsRun runs the MLine campaign with a full JSONL tracer; with
// observatory=true the whole observability plane rides along: debug HTTP
// server, a /metrics scraper polling every 50ms, an SSE client ticking at
// 50ms, and an armed flight recorder — the worst realistic scrape pressure.
func benchObsRun(t *testing.T, observatory bool, parallel int) benchObsRow {
	t.Helper()
	e := benchGenCampaign(false)
	e.Name = "bench-obs-mline"
	e.Programs = 8
	e.Parallel = parallel

	tr, err := telemetry.Create(filepath.Join(t.TempDir(), "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	e.Trace = tr

	row := benchObsRow{Mode: "trace"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{}, 2)
	if observatory {
		row.Mode = "observatory"
		fr := tr.StartFlightRecorder(telemetry.FlightConfig{Dir: filepath.Join(t.TempDir(), "flights")})
		defer fr.Stop()
		srv, addr, err := telemetry.ServeDebug("127.0.0.1:0", tr)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		base := "http://" + addr.String()

		// Scraper: hammer /metrics at 50ms — 20x a normal Prometheus
		// interval.
		go func() {
			defer func() { done <- struct{}{} }()
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					resp, err := http.Get(base + "/metrics")
					if err != nil {
						continue
					}
					sc := bufio.NewScanner(resp.Body)
					for sc.Scan() {
					}
					resp.Body.Close()
					row.MetricsScrapes++
				}
			}
		}()

		// SSE client: one dashboard open at a 50ms tick.
		go func() {
			defer func() { done <- struct{}{} }()
			req, _ := http.NewRequestWithContext(ctx, "GET", base+"/debug/scamv/events?interval_ms=50", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "data: ") {
					row.SSETicks++
				}
			}
		}()
	}

	w0 := time.Now()
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	row.WallMS = float64(time.Since(w0).Microseconds()) / 1e3
	cancel()
	if observatory {
		<-done
		<-done
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	row.Programs = res.Programs
	row.Experiments = res.Experiments
	row.Counterexamples = res.Counterexamples
	row.Queries = res.Queries
	return row
}

// TestWriteBenchObs measures the observatory's overhead over plain tracing:
// the same traced campaign with and without the debug server, a 50ms
// /metrics scraper, a 50ms SSE dashboard client, and an armed flight
// recorder. Gated behind BENCH_OBS=1:
//
//	BENCH_OBS=1 go test -run TestWriteBenchObs -count=1 .
//
// (or `make bench-obs`). Interleaved fastest-of-two like the other benches;
// target ≤1.05x, hard flake ceiling 1.25x.
func TestWriteBenchObs(t *testing.T) {
	if os.Getenv("BENCH_OBS") == "" {
		t.Skip("set BENCH_OBS=1 to run the observatory-overhead benchmark")
	}
	const parallel = 4
	var off, on benchObsRow
	for i := 0; i < 2; i++ {
		o := benchObsRun(t, false, parallel)
		n := benchObsRun(t, true, parallel)
		if i == 0 || o.WallMS < off.WallMS {
			off = o
		}
		if i == 0 || n.WallMS < on.WallMS {
			on = n
		}
	}

	// Observability must observe, not perturb: identical campaign counts.
	if on.Experiments != off.Experiments || on.Counterexamples != off.Counterexamples ||
		on.Queries != off.Queries {
		t.Errorf("observatory changed campaign counts:\ntrace       %+v\nobservatory %+v", off, on)
	}
	if on.MetricsScrapes == 0 {
		t.Error("observatory run scraped /metrics zero times")
	}

	overhead := 0.0
	if off.WallMS > 0 {
		overhead = on.WallMS / off.WallMS
	}
	out := struct {
		Date        string      `json:"date"`
		Campaign    string      `json:"campaign"`
		Cores       int         `json:"gomaxprocs"`
		Trace       benchObsRow `json:"trace_only"`
		Observatory benchObsRow `json:"observatory"`
		Overhead    float64     `json:"wall_clock_overhead"`
		Target      float64     `json:"target"`
	}{
		Date:     time.Now().UTC().Format("2006-01-02"),
		Campaign: "MLine-support, TemplateA^3 (8 paths), refined MCt/SpecAll, 8 programs x 40 tests, seed 2021, parallel 4; observatory = debug server + 50ms /metrics scraper + 50ms SSE client + flight recorder",
		Cores:    runtime.GOMAXPROCS(0),
		Trace:    off, Observatory: on,
		Overhead: overhead,
		Target:   1.05,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("observatory overhead: %.3fx (trace %.1fms, observatory %.1fms, %d scrapes, %d SSE ticks) on %d core(s)",
		overhead, off.WallMS, on.WallMS, on.MetricsScrapes, on.SSETicks, out.Cores)
	if overhead > 1.25 {
		t.Errorf("observatory overhead %.2fx exceeds the 1.25x flake ceiling (target 1.05x)", overhead)
	}
}
