package arm

import (
	"fmt"
	"math/bits"
)

// This file implements genuine A64 machine-code encoding and decoding for
// the instruction subset, so that generated test programs exist as real
// binaries: the pipeline's input is binary code, as in the original
// framework where HolBA transpiles binaries. Programs round-trip
// Encode ∘ Decode = id; branch targets are PC-relative.
//
// Encodings follow the Arm Architecture Reference Manual for A64 (64-bit
// variants throughout). Logical immediates use the (N, immr, imms) bitmask
// encoding; immediates that are not legal bitmask immediates (or 12-bit
// arithmetic immediates, or 16-bit move immediates) are rejected by Encode.

// EncodeInstr encodes one instruction at byte offset pc (used for
// PC-relative branches; target is the byte offset of the branch target).
func EncodeInstr(ins Instr, pc, target int) (uint32, error) {
	rd, rn, rm := uint32(ins.Rd), uint32(ins.Rn), uint32(ins.Rm)
	switch ins.Op {
	case NOP:
		return 0xD503201F, nil
	case HLT:
		return 0xD4400000, nil // HLT #0
	case MOVZ:
		if ins.Imm>>16 != 0 {
			return 0, fmt.Errorf("arm: movz immediate %#x exceeds 16 bits", ins.Imm)
		}
		return 0xD2800000 | uint32(ins.Imm)<<5 | rd, nil
	case MOVR:
		// MOV Xd, Xn is ORR Xd, XZR, Xn.
		return 0xAA0003E0 | rn<<16 | rd, nil
	case ADDI, SUBI:
		if ins.Imm > 0xfff {
			return 0, fmt.Errorf("arm: arithmetic immediate %#x exceeds 12 bits", ins.Imm)
		}
		base := uint32(0x91000000) // ADD (immediate), 64-bit
		if ins.Op == SUBI {
			base = 0xD1000000
		}
		return base | uint32(ins.Imm)<<10 | rn<<5 | rd, nil
	case ADDR:
		return 0x8B000000 | rm<<16 | rn<<5 | rd, nil
	case SUBR:
		return 0xCB000000 | rm<<16 | rn<<5 | rd, nil
	case ANDR:
		return 0x8A000000 | rm<<16 | rn<<5 | rd, nil
	case ORRR:
		return 0xAA000000 | rm<<16 | rn<<5 | rd, nil
	case EORR:
		return 0xCA000000 | rm<<16 | rn<<5 | rd, nil
	case ANDI, TSTI:
		n, immr, imms, ok := encodeBitmask(ins.Imm)
		if !ok {
			return 0, fmt.Errorf("arm: %#x is not a legal logical immediate", ins.Imm)
		}
		if ins.Op == TSTI {
			// ANDS XZR, Xn, #imm
			return 0xF2000000 | n<<22 | immr<<16 | imms<<10 | rn<<5 | 31, nil
		}
		return 0x92000000 | n<<22 | immr<<16 | imms<<10 | rn<<5 | rd, nil
	case LSLI:
		if ins.Imm > 63 {
			return 0, fmt.Errorf("arm: shift %d out of range", ins.Imm)
		}
		// LSL is UBFM Xd, Xn, #(-sh mod 64), #(63-sh).
		immr := uint32(64-ins.Imm) % 64
		imms := uint32(63 - ins.Imm)
		return 0xD3400000 | immr<<16 | imms<<10 | rn<<5 | rd, nil
	case LSRI:
		if ins.Imm > 63 {
			return 0, fmt.Errorf("arm: shift %d out of range", ins.Imm)
		}
		// LSR is UBFM Xd, Xn, #sh, #63.
		return 0xD3400000 | uint32(ins.Imm)<<16 | 63<<10 | rn<<5 | rd, nil
	case MULR:
		// MUL is MADD Xd, Xn, Xm, XZR.
		return 0x9B007C00 | rm<<16 | rn<<5 | rd, nil
	case LDRR:
		// LDR Xt, [Xn, Xm] (register offset, option LSL #0).
		return 0xF8606800 | rm<<16 | rn<<5 | rd, nil
	case STRR:
		return 0xF8206800 | rm<<16 | rn<<5 | rd, nil
	case LDRI, STRI:
		if ins.Imm%8 != 0 || ins.Imm/8 > 0xfff {
			return 0, fmt.Errorf("arm: load/store offset %#x not encodable (8-byte scaled, 12 bits)", ins.Imm)
		}
		base := uint32(0xF9400000) // LDR (unsigned offset)
		if ins.Op == STRI {
			base = 0xF9000000
		}
		return base | uint32(ins.Imm/8)<<10 | rn<<5 | rd, nil
	case CMPR:
		// SUBS XZR, Xn, Xm.
		return 0xEB00001F | rm<<16 | rn<<5, nil
	case CMPI:
		if ins.Imm > 0xfff {
			return 0, fmt.Errorf("arm: compare immediate %#x exceeds 12 bits", ins.Imm)
		}
		return 0xF100001F | uint32(ins.Imm)<<10 | rn<<5, nil
	case B:
		off := int32(target-pc) / 4
		if off < -(1<<25) || off >= 1<<25 {
			return 0, fmt.Errorf("arm: branch offset %d out of range", off)
		}
		return 0x14000000 | uint32(off)&0x3FFFFFF, nil
	case BCC:
		off := int32(target-pc) / 4
		if off < -(1<<18) || off >= 1<<18 {
			return 0, fmt.Errorf("arm: conditional branch offset %d out of range", off)
		}
		return 0x54000000 | (uint32(off)&0x7FFFF)<<5 | condCode(ins.Cond), nil
	}
	return 0, fmt.Errorf("arm: cannot encode %s", ins)
}

// A64 condition code numbers.
func condCode(c Cond) uint32 {
	switch c {
	case EQ:
		return 0
	case NE:
		return 1
	case HS:
		return 2
	case LO:
		return 3
	case HI:
		return 8
	case LS:
		return 9
	case GE:
		return 10
	case LT:
		return 11
	case GT:
		return 12
	case LE:
		return 13
	}
	panic("arm: unknown condition")
}

func condFromCode(code uint32) (Cond, bool) {
	switch code {
	case 0:
		return EQ, true
	case 1:
		return NE, true
	case 2:
		return HS, true
	case 3:
		return LO, true
	case 8:
		return HI, true
	case 9:
		return LS, true
	case 10:
		return GE, true
	case 11:
		return LT, true
	case 12:
		return GT, true
	case 13:
		return LE, true
	}
	return 0, false
}

// encodeBitmask produces the A64 (N, immr, imms) fields for a 64-bit
// logical immediate, or ok=false if the value is not encodable (all-zeros
// and all-ones are not legal logical immediates).
func encodeBitmask(v uint64) (n, immr, imms uint32, ok bool) {
	if v == 0 || v == ^uint64(0) {
		return 0, 0, 0, false
	}
	for esize := uint(2); esize <= 64; esize *= 2 {
		emask := uint64(1)<<esize - 1
		if esize < 64 {
			// The value must be a replication of its low esize bits.
			elem := v & emask
			rep := elem
			for sh := esize; sh < 64; sh += esize {
				rep |= elem << sh
			}
			if rep != v {
				continue
			}
		}
		elem := v & emask
		if esize == 64 {
			elem = v
		}
		// elem must be a rotation of a contiguous run of ones.
		ones := uint(bits.OnesCount64(elem))
		if ones == 0 || ones == esize {
			continue
		}
		// Rotate so the run is in the low bits: find the rotation r with
		// elem == ror(lowOnes, r), i.e. rol(elem, r) == lowOnes.
		low := uint64(1)<<ones - 1
		for r := uint(0); r < esize; r++ {
			rot := rolField(elem, r, esize)
			if rot == low {
				// immr = rotation amount, imms encodes esize and run length.
				immsField := uint32(ones - 1)
				switch esize {
				case 2:
					immsField |= 0x3C // 1111 0x
				case 4:
					immsField |= 0x38 // 1110 xx
				case 8:
					immsField |= 0x30 // 110x xx
				case 16:
					immsField |= 0x20 // 10xx xx
				case 32:
					immsField |= 0x00 // 0xxx xx
				case 64:
					n = 1
				}
				return n, uint32(r), immsField, true
			}
		}
		return 0, 0, 0, false
	}
	return 0, 0, 0, false
}

// rolField rotates the low esize bits of v left by r.
func rolField(v uint64, r, esize uint) uint64 {
	mask := uint64(1)<<esize - 1
	if esize == 64 {
		mask = ^uint64(0)
	}
	v &= mask
	if r == 0 {
		return v
	}
	return (v<<r | v>>(esize-r)) & mask
}

// decodeBitmask expands (N, immr, imms) back into the 64-bit immediate.
func decodeBitmask(n, immr, imms uint32) (uint64, bool) {
	// len = position of highest set bit of N:NOT(imms) (7 bits).
	combined := n<<6 | (^imms & 0x3F)
	if combined == 0 {
		return 0, false
	}
	length := 31 - uint(bits.LeadingZeros32(combined))
	esize := uint(1) << length
	if esize < 2 {
		return 0, false
	}
	s := uint(imms) & (esize - 1)
	if s == esize-1 {
		return 0, false
	}
	elem := uint64(1)<<(s+1) - 1
	r := uint(immr) & (esize - 1)
	elem = rorField(elem, r, esize)
	// Replicate to 64 bits.
	out := elem
	for sh := esize; sh < 64; sh += esize {
		out |= elem << sh
	}
	return out, true
}

func rorField(v uint64, r, esize uint) uint64 {
	mask := uint64(1)<<esize - 1
	if esize == 64 {
		mask = ^uint64(0)
	}
	v &= mask
	if r == 0 {
		return v
	}
	return (v>>r | v<<(esize-r)) & mask
}

// Encode assembles the whole program into A64 machine code, one 32-bit
// word per instruction.
func Encode(p *Program) ([]uint32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	words := make([]uint32, len(p.Instrs))
	for i, ins := range p.Instrs {
		target := 0
		if ins.IsBranch() {
			target = p.Labels[ins.Label] * 4
		}
		w, err := EncodeInstr(ins, i*4, target)
		if err != nil {
			return nil, fmt.Errorf("arm: instruction %d (%s): %w", i, ins, err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeInstr decodes one word at byte offset pc. Branch instructions get
// synthetic labels "L<byte offset>" pointing at their target.
func DecodeInstr(w uint32, pc int) (Instr, error) {
	rd := Reg(w & 0x1F)
	rn := Reg(w >> 5 & 0x1F)
	rm := Reg(w >> 16 & 0x1F)
	switch {
	case w == 0xD503201F:
		return Instr{Op: NOP}, nil
	case w&0xFFE0001F == 0xD4400000:
		return Instr{Op: HLT}, nil
	case w&0xFFE00000 == 0xD2800000:
		return Instr{Op: MOVZ, Rd: rd, Imm: uint64(w >> 5 & 0xFFFF)}, nil
	case w&0xFFE0FFE0 == 0xAA0003E0:
		return Instr{Op: MOVR, Rd: rd, Rn: rm}, nil
	case w&0xFFC00000 == 0x91000000:
		return Instr{Op: ADDI, Rd: rd, Rn: rn, Imm: uint64(w >> 10 & 0xFFF)}, nil
	case w&0xFFC00000 == 0xD1000000:
		return Instr{Op: SUBI, Rd: rd, Rn: rn, Imm: uint64(w >> 10 & 0xFFF)}, nil
	case w&0xFFE0FC00 == 0x8B000000:
		return Instr{Op: ADDR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFE0FC00 == 0xCB000000:
		return Instr{Op: SUBR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFE0FC00 == 0x8A000000:
		return Instr{Op: ANDR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFE0FC00 == 0xAA000000:
		return Instr{Op: ORRR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFE0FC00 == 0xCA000000:
		return Instr{Op: EORR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFC0001F == 0xF200001F:
		imm, ok := decodeBitmask(w>>22&1, w>>16&0x3F, w>>10&0x3F)
		if !ok {
			return Instr{}, fmt.Errorf("arm: bad bitmask immediate in %#08x", w)
		}
		return Instr{Op: TSTI, Rn: rn, Imm: imm}, nil
	case w&0xFFC00000 == 0x92000000:
		imm, ok := decodeBitmask(w>>22&1, w>>16&0x3F, w>>10&0x3F)
		if !ok {
			return Instr{}, fmt.Errorf("arm: bad bitmask immediate in %#08x", w)
		}
		return Instr{Op: ANDI, Rd: rd, Rn: rn, Imm: imm}, nil
	case w&0xFFC00000 == 0xD3400000:
		immr := uint64(w >> 16 & 0x3F)
		imms := uint64(w >> 10 & 0x3F)
		if imms == 63 {
			return Instr{Op: LSRI, Rd: rd, Rn: rn, Imm: immr}, nil
		}
		if immr == (64-(63-imms))%64 {
			return Instr{Op: LSLI, Rd: rd, Rn: rn, Imm: 63 - imms}, nil
		}
		return Instr{}, fmt.Errorf("arm: unsupported UBFM %#08x", w)
	case w&0xFFE0FC00 == 0x9B007C00:
		return Instr{Op: MULR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFE0FC00 == 0xF8606800:
		return Instr{Op: LDRR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFE0FC00 == 0xF8206800:
		return Instr{Op: STRR, Rd: rd, Rn: rn, Rm: rm}, nil
	case w&0xFFC00000 == 0xF9400000:
		return Instr{Op: LDRI, Rd: rd, Rn: rn, Imm: uint64(w>>10&0xFFF) * 8}, nil
	case w&0xFFC00000 == 0xF9000000:
		return Instr{Op: STRI, Rd: rd, Rn: rn, Imm: uint64(w>>10&0xFFF) * 8}, nil
	case w&0xFFE0FC1F == 0xEB00001F:
		return Instr{Op: CMPR, Rn: rn, Rm: rm}, nil
	case w&0xFFC0001F == 0xF100001F:
		return Instr{Op: CMPI, Rn: rn, Imm: uint64(w >> 10 & 0xFFF)}, nil
	case w&0xFC000000 == 0x14000000:
		off := int32(w<<6) >> 6 // sign-extend 26 bits
		return Instr{Op: B, Label: fmt.Sprintf("L%d", pc+int(off)*4)}, nil
	case w&0xFF000010 == 0x54000000:
		cond, ok := condFromCode(w & 0xF)
		if !ok {
			return Instr{}, fmt.Errorf("arm: unsupported condition in %#08x", w)
		}
		off := int32(w<<8) >> 13 // sign-extend 19 bits from bit 5
		return Instr{Op: BCC, Cond: cond, Label: fmt.Sprintf("L%d", pc+int(off)*4)}, nil
	}
	return Instr{}, fmt.Errorf("arm: cannot decode %#08x", w)
}

// Decode disassembles machine code into a program; branch targets become
// labels at the corresponding instruction positions.
func Decode(name string, words []uint32) (*Program, error) {
	p := NewProgram(name)
	labels := map[int]bool{}
	for i, w := range words {
		ins, err := DecodeInstr(w, i*4)
		if err != nil {
			return nil, fmt.Errorf("arm: word %d: %w", i, err)
		}
		if ins.IsBranch() {
			var off int
			if _, err := fmt.Sscanf(ins.Label, "L%d", &off); err != nil {
				return nil, err
			}
			labels[off] = true
		}
		p.Add(ins)
	}
	for off := range labels {
		if off%4 != 0 || off < 0 || off > len(words)*4 {
			return nil, fmt.Errorf("arm: branch target %d outside the program", off)
		}
		p.Labels[fmt.Sprintf("L%d", off)] = off / 4
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
