package arm

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	src := `
    start:
        movz x0, #0x40
        mov x1, x0
        add x2, x0, #0x8
        add x3, x0, x1
        sub x4, x3, x2
        and x5, x4, #0xff
        orr x6, x5, x1
        eor x7, x6, x5
        lsl x8, x7, #3
        lsr x9, x8, #2
        mul x10, x9, x1
        ldr x11, [x0]
        ldr x12, [x0, #0x40]
        ldr x13, [x0, x1]
        str x11, [x2]
        str x12, [x2, x3]
        cmp x1, x2
        b.lo taken
        cmp x1, #0x5
        tst x1, #0x80
        b end
    taken:
        nop
    end:
        hlt
    `
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round-trip: print and reparse, instruction streams must match.
	p2, err := Parse("t2", p.String())
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, p.String())
	}
	if len(p.Instrs) != len(p2.Instrs) {
		t.Fatalf("round trip changed length: %d vs %d", len(p.Instrs), len(p2.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Errorf("instr %d: %v vs %v", i, p.Instrs[i], p2.Instrs[i])
		}
	}
	for l, idx := range p.Labels {
		if p2.Labels[l] != idx {
			t.Errorf("label %s: %d vs %d", l, idx, p2.Labels[l])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus x0, x1",
		"add x0",
		"ldr x0, x1",     // missing brackets
		"b nowhere",      // unresolved label
		"b.zz somewhere", // bad condition
		"movz x99, #1",   // bad register
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCondHolds(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{EQ, 5, 5, true},
		{NE, 5, 5, false},
		{HS, 5, 5, true},
		{LO, 4, 5, true},
		{HI, 5, 4, true},
		{LS, 5, 5, true},
		{LT, ^uint64(0), 0, true},  // -1 < 0 signed
		{LO, ^uint64(0), 0, false}, // but not unsigned
		{GE, 0, ^uint64(0), true},  // 0 >= -1 signed
		{GT, 1, ^uint64(0), true},
		{LE, ^uint64(0), ^uint64(0), true},
	}
	for i, c := range cases {
		if got := c.c.Holds(c.a, c.b); got != c.want {
			t.Errorf("case %d: %v.Holds(%d,%d) = %v", i, c.c, int64(c.a), int64(c.b), got)
		}
	}
}

func TestCondInvert(t *testing.T) {
	for c := EQ; c <= LE; c++ {
		inv := c.Invert()
		for _, pair := range [][2]uint64{{0, 0}, {1, 2}, {2, 1}, {^uint64(0), 1}, {1, ^uint64(0)}} {
			if c.Holds(pair[0], pair[1]) == inv.Holds(pair[0], pair[1]) {
				t.Errorf("%v and %v agree on (%d,%d)", c, inv, pair[0], pair[1])
			}
		}
	}
}

func TestZeroRegister(t *testing.T) {
	p, err := Parse("z", "mov x0, xzr\nldr x1, [xzr, x2]")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Rn != XZR {
		t.Error("xzr should parse as the zero register")
	}
	if !strings.Contains(p.Instrs[1].String(), "xzr") {
		t.Error("xzr should print as xzr")
	}
}

func TestLabelsAtSamePosition(t *testing.T) {
	p, err := Parse("l", "a: b: nop\nb a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Errorf("labels: %v", p.Labels)
	}
}
