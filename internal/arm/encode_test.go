package arm

import (
	"math/rand"
	"testing"
)

// Golden encodings cross-checked against standard A64 assembler output.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"nop", 0xD503201F},
		{"movz x0, #1", 0xD2800020},
		{"mov x1, x2", 0xAA0203E1},
		{"add x0, x1, #2", 0x91000820},
		{"sub x3, x4, #0xfff", 0xD13FFC83},
		{"add x0, x1, x2", 0x8B020020},
		{"sub x0, x1, x2", 0xCB020020},
		{"and x0, x1, x2", 0x8A020020},
		{"orr x0, x1, x2", 0xAA020020},
		{"eor x0, x1, x2", 0xCA020020},
		{"mul x0, x1, x2", 0x9B027C20},
		{"ldr x0, [x1]", 0xF9400020},
		{"ldr x0, [x1, #8]", 0xF9400420},
		{"ldr x0, [x1, x2]", 0xF8626820},
		{"str x0, [x1, x2]", 0xF8226820},
		{"str x0, [x1, #16]", 0xF9000820},
		{"cmp x1, x2", 0xEB02003F},
		{"cmp x1, #5", 0xF100143F},
		{"lsl x0, x1, #4", 0xD37CEC20},
		{"lsr x0, x1, #4", 0xD344FC20},
		{"and x0, x1, #0xff", 0x92401C20},
		{"tst x1, #0x80000000", 0xF261003F},
	}
	for _, tc := range cases {
		p := MustParse("g", tc.src+"\nhlt")
		words, err := Encode(p)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if words[0] != tc.want {
			t.Errorf("%s: encoded %#08x, want %#08x", tc.src, words[0], tc.want)
		}
	}
}

func TestGoldenBranchEncodings(t *testing.T) {
	// b to self: offset 0.
	p := NewProgram("b")
	p.Mark("self")
	p.Add(Instr{Op: B, Label: "self"})
	words, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0x14000000 {
		t.Errorf("b .: %#08x", words[0])
	}
	// b.eq +8 (skip one instruction).
	p2 := NewProgram("beq")
	p2.Add(Instr{Op: BCC, Cond: EQ, Label: "t"}, Instr{Op: NOP})
	p2.Mark("t")
	p2.Add(Instr{Op: HLT})
	w2, err := Encode(p2)
	if err != nil {
		t.Fatal(err)
	}
	if w2[0] != 0x54000040 {
		t.Errorf("b.eq +8: %#08x", w2[0])
	}
}

// TestBitmaskRoundTrip enumerates every legal (N, immr, imms) field
// combination: decoding then re-encoding must reproduce the same immediate.
func TestBitmaskRoundTrip(t *testing.T) {
	seen := map[uint64]bool{}
	count := 0
	for n := uint32(0); n <= 1; n++ {
		for immr := uint32(0); immr < 64; immr++ {
			for imms := uint32(0); imms < 64; imms++ {
				v, ok := decodeBitmask(n, immr, imms)
				if !ok {
					continue
				}
				count++
				seen[v] = true
				n2, immr2, imms2, ok2 := encodeBitmask(v)
				if !ok2 {
					t.Fatalf("decodable %#x (N=%d immr=%d imms=%d) not re-encodable", v, n, immr, imms)
				}
				v2, ok3 := decodeBitmask(n2, immr2, imms2)
				if !ok3 || v2 != v {
					t.Fatalf("round trip %#x -> (N=%d immr=%d imms=%d) -> %#x", v, n2, immr2, imms2, v2)
				}
			}
		}
	}
	// The A64 logical-immediate space has 5334 distinct 64-bit values.
	if len(seen) != 5334 {
		t.Errorf("distinct logical immediates: %d, want 5334 (fields decoded: %d)", len(seen), count)
	}
	// Known encodable and non-encodable values.
	for _, v := range []uint64{0xff, 0x80000000, 0xffff0000ffff0000, 0x5555555555555555, 1} {
		if _, _, _, ok := encodeBitmask(v); !ok {
			t.Errorf("%#x should be a legal logical immediate", v)
		}
	}
	for _, v := range []uint64{0, ^uint64(0), 0x5, 0xdeadbeef} {
		if _, _, _, ok := encodeBitmask(v); ok {
			t.Errorf("%#x should NOT be a legal logical immediate", v)
		}
	}
}

// TestEncodeDecodeRoundTrip: random encodable programs survive
// Encode → Decode with identical instruction streams.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	randIns := func() Instr {
		reg := func() Reg { return Reg(rng.Intn(31)) } // x0..x30
		switch rng.Intn(16) {
		case 0:
			return Instr{Op: MOVZ, Rd: reg(), Imm: uint64(rng.Intn(1 << 16))}
		case 1:
			return Instr{Op: MOVR, Rd: reg(), Rn: reg()}
		case 2:
			return Instr{Op: ADDI, Rd: reg(), Rn: reg(), Imm: uint64(rng.Intn(1 << 12))}
		case 3:
			return Instr{Op: SUBI, Rd: reg(), Rn: reg(), Imm: uint64(rng.Intn(1 << 12))}
		case 4:
			return Instr{Op: ADDR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 5:
			return Instr{Op: SUBR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 6:
			return Instr{Op: ANDR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 7:
			return Instr{Op: ORRR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 8:
			return Instr{Op: EORR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 9:
			return Instr{Op: LSLI, Rd: reg(), Rn: reg(), Imm: uint64(1 + rng.Intn(63))}
		case 10:
			return Instr{Op: LSRI, Rd: reg(), Rn: reg(), Imm: uint64(1 + rng.Intn(63))}
		case 11:
			return Instr{Op: MULR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 12:
			return Instr{Op: LDRR, Rd: reg(), Rn: reg(), Rm: reg()}
		case 13:
			return Instr{Op: LDRI, Rd: reg(), Rn: reg(), Imm: uint64(rng.Intn(1<<12)) * 8}
		case 14:
			return Instr{Op: STRI, Rd: reg(), Rn: reg(), Imm: uint64(rng.Intn(1<<12)) * 8}
		default:
			return Instr{Op: CMPR, Rn: reg(), Rm: reg()}
		}
	}
	for iter := 0; iter < 200; iter++ {
		p := NewProgram("rt")
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			p.Add(randIns())
		}
		if rng.Intn(2) == 0 {
			p.Add(
				Instr{Op: CMPI, Rn: Reg(rng.Intn(31)), Imm: uint64(rng.Intn(1 << 12))},
				Instr{Op: BCC, Cond: Cond(rng.Intn(10)), Label: "end"},
				randIns(),
			)
			p.Mark("end")
		}
		p.Add(Instr{Op: HLT})

		words, err := Encode(p)
		if err != nil {
			t.Fatalf("iter %d: encode: %v\n%s", iter, err, p)
		}
		q, err := Decode("rt", words)
		if err != nil {
			t.Fatalf("iter %d: decode: %v\n%s", iter, err, p)
		}
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("iter %d: length changed", iter)
		}
		for i := range p.Instrs {
			a, b := p.Instrs[i], q.Instrs[i]
			if a.IsBranch() {
				// Labels are renamed; compare resolved targets instead.
				ta := p.Labels[a.Label]
				tb := q.Labels[b.Label]
				if a.Op != b.Op || a.Cond != b.Cond || ta != tb {
					t.Fatalf("iter %d: branch %d mismatch: %v->%d vs %v->%d", iter, i, a, ta, b, tb)
				}
				continue
			}
			if a != b {
				t.Fatalf("iter %d: instr %d: %v vs %v", iter, i, a, b)
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Instr{
		{Op: MOVZ, Rd: 0, Imm: 1 << 16},        // too wide for movz
		{Op: ADDI, Rd: 0, Rn: 1, Imm: 1 << 12}, // 12-bit overflow
		{Op: ANDI, Rd: 0, Rn: 1, Imm: 0x5},     // not a bitmask immediate
		{Op: LDRI, Rd: 0, Rn: 1, Imm: 12},      // unaligned offset
		{Op: LDRI, Rd: 0, Rn: 1, Imm: 8 << 12}, // offset too large
	}
	for _, ins := range bad {
		if _, err := EncodeInstr(ins, 0, 0); err == nil {
			t.Errorf("expected encode error for %v", ins)
		}
	}
}

// TestFixedProgramsEncodable: the paper's Fig. 6 gadgets must be
// expressible as real machine code.
func TestFixedProgramsEncodable(t *testing.T) {
	for _, p := range []*Program{siscloak1Fixture(), siscloak2Fixture(), spectreFixture()} {
		if _, err := Encode(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// SiSCloak fixtures live in the gen package normally; local copies keep the
// arm package self-contained for this test.
func siscloak1Fixture() *Program {
	return MustParse("siscloak1", "ldr x2, [x5, x0]\ncmp x0, x1\nb.hs end\nldr x4, [x7, x2]\nend:\nhlt")
}

func siscloak2Fixture() *Program {
	return MustParse("siscloak2", "ldr x2, [x5, x0]\ntst x2, #0x80000000\nb.ne end\nldr x4, [x7, x2]\nend:\nhlt")
}

func spectreFixture() *Program {
	return MustParse("spectre-pht", "cmp x0, x1\nb.hs end\nldr x2, [x5, x0]\nldr x4, [x7, x2]\nend:\nhlt")
}
