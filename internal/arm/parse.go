package arm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a textual program in the syntax produced by
// Program.String: one instruction per line, "label:" lines, comments
// starting with ";" or "//".
func Parse(name, src string) (*Program, error) {
	p := NewProgram(name)
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t,[]#") {
				return nil, fmt.Errorf("arm: line %d: bad label %q", ln+1, label)
			}
			p.Mark(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		ins, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("arm: line %d: %v", ln+1, err)
		}
		p.Add(ins)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse that panics on error; for tests and fixed examples.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInstr(line string) (Instr, error) {
	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp >= 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	mnem = strings.ToLower(mnem)
	ops := splitOperands(rest)

	switch {
	case mnem == "nop":
		return Instr{Op: NOP}, nil
	case mnem == "hlt" || mnem == "ret":
		return Instr{Op: HLT}, nil
	case mnem == "b":
		if len(ops) != 1 {
			return Instr{}, fmt.Errorf("b needs a label")
		}
		return Instr{Op: B, Label: ops[0]}, nil
	case strings.HasPrefix(mnem, "b."):
		cond, err := parseCond(mnem[2:])
		if err != nil {
			return Instr{}, err
		}
		if len(ops) != 1 {
			return Instr{}, fmt.Errorf("b.%s needs a label", cond)
		}
		return Instr{Op: BCC, Cond: cond, Label: ops[0]}, nil
	}

	switch mnem {
	case "movz", "mov":
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("%s needs 2 operands", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		if isImm(ops[1]) {
			imm, err := parseImm(ops[1])
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: MOVZ, Rd: rd, Imm: imm}, nil
		}
		rn, err := parseReg(ops[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: MOVR, Rd: rd, Rn: rn}, nil
	case "add", "sub", "and", "orr", "eor", "mul", "lsl", "lsr":
		if len(ops) != 3 {
			return Instr{}, fmt.Errorf("%s needs 3 operands", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		rn, err := parseReg(ops[1])
		if err != nil {
			return Instr{}, err
		}
		if isImm(ops[2]) {
			imm, err := parseImm(ops[2])
			if err != nil {
				return Instr{}, err
			}
			var op Op
			switch mnem {
			case "add":
				op = ADDI
			case "sub":
				op = SUBI
			case "and":
				op = ANDI
			case "lsl":
				op = LSLI
			case "lsr":
				op = LSRI
			default:
				return Instr{}, fmt.Errorf("%s does not take an immediate", mnem)
			}
			return Instr{Op: op, Rd: rd, Rn: rn, Imm: imm}, nil
		}
		rm, err := parseReg(ops[2])
		if err != nil {
			return Instr{}, err
		}
		var op Op
		switch mnem {
		case "add":
			op = ADDR
		case "sub":
			op = SUBR
		case "and":
			op = ANDR
		case "orr":
			op = ORRR
		case "eor":
			op = EORR
		case "mul":
			op = MULR
		default:
			return Instr{}, fmt.Errorf("%s needs an immediate shift", mnem)
		}
		return Instr{Op: op, Rd: rd, Rn: rn, Rm: rm}, nil
	case "ldr", "str":
		if len(ops) < 2 {
			return Instr{}, fmt.Errorf("%s needs a register and an address", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		addr := strings.Join(ops[1:], ",")
		rn, rm, imm, isReg, err := parseAddr(addr)
		if err != nil {
			return Instr{}, err
		}
		switch {
		case mnem == "ldr" && isReg:
			return Instr{Op: LDRR, Rd: rd, Rn: rn, Rm: rm}, nil
		case mnem == "ldr":
			return Instr{Op: LDRI, Rd: rd, Rn: rn, Imm: imm}, nil
		case isReg:
			return Instr{Op: STRR, Rd: rd, Rn: rn, Rm: rm}, nil
		default:
			return Instr{Op: STRI, Rd: rd, Rn: rn, Imm: imm}, nil
		}
	case "cmp", "tst":
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("%s needs 2 operands", mnem)
		}
		rn, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		if isImm(ops[1]) {
			imm, err := parseImm(ops[1])
			if err != nil {
				return Instr{}, err
			}
			if mnem == "tst" {
				return Instr{Op: TSTI, Rn: rn, Imm: imm}, nil
			}
			return Instr{Op: CMPI, Rn: rn, Imm: imm}, nil
		}
		if mnem == "tst" {
			return Instr{}, fmt.Errorf("tst supports only immediate operands")
		}
		rm, err := parseReg(ops[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: CMPR, Rn: rn, Rm: rm}, nil
	}
	return Instr{}, fmt.Errorf("unknown mnemonic %q", mnem)
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "xzr" {
		return XZR, nil
	}
	if len(s) < 2 || s[0] != 'x' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 30 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func isImm(s string) bool { return strings.HasPrefix(strings.TrimSpace(s), "#") }

func parseImm(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "#")
	neg := strings.HasPrefix(s, "-")
	s = strings.TrimPrefix(s, "-")
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q: %v", s, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseAddr parses "[xn]", "[xn, #imm]" or "[xn, xm]".
func parseAddr(s string) (rn, rm Reg, imm uint64, isReg bool, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, fmt.Errorf("bad address %q", s)
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	rn, err = parseReg(parts[0])
	if err != nil {
		return
	}
	switch len(parts) {
	case 1:
		return rn, 0, 0, false, nil
	case 2:
		arg := strings.TrimSpace(parts[1])
		if isImm(arg) {
			imm, err = parseImm(arg)
			return rn, 0, imm, false, err
		}
		rm, err = parseReg(arg)
		return rn, rm, 0, true, err
	}
	return 0, 0, 0, false, fmt.Errorf("bad address %q", s)
}

func parseCond(s string) (Cond, error) {
	for c, n := range condNames {
		if n == s {
			return Cond(c), nil
		}
	}
	return 0, fmt.Errorf("unknown condition %q", s)
}
