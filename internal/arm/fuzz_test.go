package arm

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the assembler: it must never panic, and
// every accepted program must validate and round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"movz x0, #1\nhlt",
		"ldr x1, [x0, x2]\nstr x1, [x0, #8]",
		"a: cmp x0, x1\nb.lo a\nb a",
		"tst x3, #0x80000000\nb.ne out\nout: nop",
		"mul x1, x2, x3\nlsl x4, x1, #63",
		"x:y:hlt",
		"ldr xzr, [xzr]",
		"add x0, x0, #-1",
		"; comment only\n// another",
		"b.zz nowhere",
		"ldr x1, [x0",
		"movz x31, #0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return // rejected input is fine
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\ninput: %q", err, src)
		}
		// Round-trip: the printed form must re-parse to the same program.
		p2, err := Parse("fuzz2", p.String())
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nprinted:\n%s", err, p.String())
		}
		if len(p.Instrs) != len(p2.Instrs) {
			t.Fatalf("round trip changed instruction count: %d vs %d", len(p.Instrs), len(p2.Instrs))
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				t.Fatalf("round trip changed instruction %d: %v vs %v", i, p.Instrs[i], p2.Instrs[i])
			}
		}
	})
}

// FuzzCondHolds checks the duality Holds(c) == !Holds(Invert(c)) over all
// inputs.
func FuzzCondHolds(f *testing.F) {
	f.Add(uint8(0), uint64(0), uint64(0))
	f.Add(uint8(3), uint64(1), ^uint64(0))
	f.Fuzz(func(t *testing.T, c uint8, a, b uint64) {
		cond := Cond(c % 10)
		if cond.Holds(a, b) == cond.Invert().Holds(a, b) {
			t.Fatalf("%v and its inverse agree on (%d, %d)", cond, a, b)
		}
	})
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("[", 100),
		"ldr x1, [x0, x1, lsl #3]", // scaled addressing not in the subset
		"add x1",
	} {
		if _, err := Parse("g", src); err == nil {
			t.Errorf("accepted garbage %q", src)
		}
	}
}
