// Package arm defines the AArch64 subset used by the test-case pipeline:
// the program generators emit arm programs, internal/lifter translates them
// to BIR for symbolic execution, and internal/micro executes them on the
// Cortex-A53-like microarchitectural simulator.
//
// The subset covers the instructions the paper's templates need: moves,
// register/immediate ALU operations, shifts, loads and stores with
// register+register or register+immediate addressing, compare and test,
// conditional and unconditional branches, and halt.
package arm

import (
	"fmt"
	"strings"
)

// Reg is a general-purpose 64-bit register X0..X30; XZR (31) reads as zero.
type Reg uint8

// XZR is the zero register.
const XZR Reg = 31

// NumRegs is the number of addressable registers including XZR.
const NumRegs = 32

// X returns the n-th general-purpose register.
func X(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("arm: no register x%d", n))
	}
	return Reg(n)
}

func (r Reg) String() string {
	if r == XZR {
		return "xzr"
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Op enumerates the instruction opcodes of the subset.
type Op uint8

// Instruction opcodes.
const (
	MOVZ Op = iota // movz xd, #imm
	MOVR           // mov xd, xn
	ADDI           // add xd, xn, #imm
	ADDR           // add xd, xn, xm
	SUBI           // sub xd, xn, #imm
	SUBR           // sub xd, xn, xm
	ANDI           // and xd, xn, #imm
	ANDR           // and xd, xn, xm
	ORRR           // orr xd, xn, xm
	EORR           // eor xd, xn, xm
	LSLI           // lsl xd, xn, #imm
	LSRI           // lsr xd, xn, #imm
	MULR           // mul xd, xn, xm
	LDRR           // ldr xd, [xn, xm]
	LDRI           // ldr xd, [xn, #imm]
	STRR           // str xd, [xn, xm]
	STRI           // str xd, [xn, #imm]
	CMPR           // cmp xn, xm
	CMPI           // cmp xn, #imm
	TSTI           // tst xn, #imm
	B              // b label
	BCC            // b.<cond> label
	HLT            // hlt (end of experiment)
	NOP            // nop
)

var opNames = [...]string{
	"movz", "mov", "add", "add", "sub", "sub", "and", "and", "orr", "eor",
	"lsl", "lsr", "mul", "ldr", "ldr", "str", "str", "cmp", "cmp", "tst",
	"b", "b.", "hlt", "nop",
}

func (o Op) String() string { return opNames[o] }

// Cond is an AArch64 condition code.
type Cond uint8

// Condition codes (subset; signed, unsigned and equality forms).
const (
	EQ Cond = iota
	NE
	HS // unsigned >=
	LO // unsigned <
	HI // unsigned >
	LS // unsigned <=
	GE // signed >=
	LT // signed <
	GT // signed >
	LE // signed <=
)

var condNames = [...]string{"eq", "ne", "hs", "lo", "hi", "ls", "ge", "lt", "gt", "le"}

func (c Cond) String() string { return condNames[c] }

// Invert returns the negated condition.
func (c Cond) Invert() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case HS:
		return LO
	case LO:
		return HS
	case HI:
		return LS
	case LS:
		return HI
	case GE:
		return LT
	case LT:
		return GE
	case GT:
		return LE
	case LE:
		return GT
	}
	panic("arm: unknown condition")
}

// Holds evaluates the condition against compare operands a and b (the
// semantics of cmp a, b followed by b.<cond>).
func (c Cond) Holds(a, b uint64) bool {
	switch c {
	case EQ:
		return a == b
	case NE:
		return a != b
	case HS:
		return a >= b
	case LO:
		return a < b
	case HI:
		return a > b
	case LS:
		return a <= b
	case GE:
		return int64(a) >= int64(b)
	case LT:
		return int64(a) < int64(b)
	case GT:
		return int64(a) > int64(b)
	case LE:
		return int64(a) <= int64(b)
	}
	panic("arm: unknown condition")
}

// Instr is one instruction. Fields are used according to the opcode; Label
// names a branch target.
type Instr struct {
	Op         Op
	Rd, Rn, Rm Reg
	Imm        uint64
	Cond       Cond
	Label      string
}

// String renders the instruction in assembly syntax.
func (i Instr) String() string {
	switch i.Op {
	case MOVZ:
		return fmt.Sprintf("movz %s, #%#x", i.Rd, i.Imm)
	case MOVR:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rn)
	case ADDI:
		return fmt.Sprintf("add %s, %s, #%#x", i.Rd, i.Rn, i.Imm)
	case ADDR:
		return fmt.Sprintf("add %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case SUBI:
		return fmt.Sprintf("sub %s, %s, #%#x", i.Rd, i.Rn, i.Imm)
	case SUBR:
		return fmt.Sprintf("sub %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case ANDI:
		return fmt.Sprintf("and %s, %s, #%#x", i.Rd, i.Rn, i.Imm)
	case ANDR:
		return fmt.Sprintf("and %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case ORRR:
		return fmt.Sprintf("orr %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case EORR:
		return fmt.Sprintf("eor %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case LSLI:
		return fmt.Sprintf("lsl %s, %s, #%d", i.Rd, i.Rn, i.Imm)
	case LSRI:
		return fmt.Sprintf("lsr %s, %s, #%d", i.Rd, i.Rn, i.Imm)
	case MULR:
		return fmt.Sprintf("mul %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case LDRR:
		return fmt.Sprintf("ldr %s, [%s, %s]", i.Rd, i.Rn, i.Rm)
	case LDRI:
		if i.Imm == 0 {
			return fmt.Sprintf("ldr %s, [%s]", i.Rd, i.Rn)
		}
		return fmt.Sprintf("ldr %s, [%s, #%#x]", i.Rd, i.Rn, i.Imm)
	case STRR:
		return fmt.Sprintf("str %s, [%s, %s]", i.Rd, i.Rn, i.Rm)
	case STRI:
		if i.Imm == 0 {
			return fmt.Sprintf("str %s, [%s]", i.Rd, i.Rn)
		}
		return fmt.Sprintf("str %s, [%s, #%#x]", i.Rd, i.Rn, i.Imm)
	case CMPR:
		return fmt.Sprintf("cmp %s, %s", i.Rn, i.Rm)
	case CMPI:
		return fmt.Sprintf("cmp %s, #%#x", i.Rn, i.Imm)
	case TSTI:
		return fmt.Sprintf("tst %s, #%#x", i.Rn, i.Imm)
	case B:
		return "b " + i.Label
	case BCC:
		return fmt.Sprintf("b.%s %s", i.Cond, i.Label)
	case HLT:
		return "hlt"
	case NOP:
		return "nop"
	}
	panic(fmt.Sprintf("arm: unknown opcode %d", i.Op))
}

// IsLoad reports whether the instruction reads memory.
func (i Instr) IsLoad() bool { return i.Op == LDRR || i.Op == LDRI }

// IsStore reports whether the instruction writes memory.
func (i Instr) IsStore() bool { return i.Op == STRR || i.Op == STRI }

// IsBranch reports whether the instruction transfers control.
func (i Instr) IsBranch() bool { return i.Op == B || i.Op == BCC }

// Program is a sequence of instructions with labels attached to positions.
type Program struct {
	Name   string
	Instrs []Instr
	// Labels maps a label to the index of the instruction it precedes
	// (len(Instrs) labels the end).
	Labels map[string]int
}

// NewProgram returns an empty named program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Labels: make(map[string]int)}
}

// Add appends instructions.
func (p *Program) Add(is ...Instr) *Program {
	p.Instrs = append(p.Instrs, is...)
	return p
}

// Mark attaches a label to the current end of the program.
func (p *Program) Mark(label string) *Program {
	p.Labels[label] = len(p.Instrs)
	return p
}

// Target resolves a label to an instruction index.
func (p *Program) Target(label string) (int, bool) {
	i, ok := p.Labels[label]
	return i, ok
}

// Validate checks that all branch targets resolve.
func (p *Program) Validate() error {
	for idx, ins := range p.Instrs {
		if ins.IsBranch() {
			if _, ok := p.Labels[ins.Label]; !ok {
				return fmt.Errorf("arm: %s: instruction %d branches to unknown label %q", p.Name, idx, ins.Label)
			}
		}
	}
	return nil
}

// String renders the program as assembly text (parsable by Parse).
func (p *Program) String() string {
	// Invert the label map: position -> labels.
	at := make(map[int][]string)
	for l, i := range p.Labels {
		at[i] = append(at[i], l)
	}
	var sb strings.Builder
	for i := 0; i <= len(p.Instrs); i++ {
		for _, l := range at[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		if i < len(p.Instrs) {
			fmt.Fprintf(&sb, "    %s\n", p.Instrs[i])
		}
	}
	return sb.String()
}
