package gen

import (
	"math/rand"
	"testing"

	"scamv/internal/arm"
)

func TestCombinators(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Const(42)(r) != 42 {
		t.Error("Const")
	}
	for i := 0; i < 100; i++ {
		v := IntRange(3, 5)(r)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange out of range: %d", v)
		}
		o := OneOf("a", "b")(r)
		if o != "a" && o != "b" {
			t.Fatalf("OneOf: %q", o)
		}
	}
	m := Map(Const(10), func(x int) int { return x * 2 })(r)
	if m != 20 {
		t.Error("Map")
	}
	b := Bind(Const(3), func(x int) G[int] { return Const(x + 1) })(r)
	if b != 4 {
		t.Error("Bind")
	}
	ev := SuchThat(IntRange(0, 100), func(x int) bool { return x%2 == 0 })
	for i := 0; i < 50; i++ {
		if ev(r)%2 != 0 {
			t.Fatal("SuchThat violated")
		}
	}
}

func TestRegNotIn(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	avoid := []arm.Reg{arm.X(0), arm.X(1), arm.X(2)}
	for i := 0; i < 100; i++ {
		reg := RegNotIn(avoid...)(r)
		for _, a := range avoid {
			if reg == a {
				t.Fatal("RegNotIn produced an avoided register")
			}
		}
	}
}

func validate(t *testing.T, tpl Template, n int) []*arm.Program {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	var out []*arm.Program
	for i := 0; i < n; i++ {
		p := tpl.Generate(r, i)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s #%d: %v\n%s", tpl.Name(), i, err, p)
		}
		out = append(out, p)
	}
	return out
}

func TestStrideTemplate(t *testing.T) {
	for _, p := range validate(t, Stride{}, 50) {
		loads := 0
		var base arm.Reg = 255
		var offsets []uint64
		for _, ins := range p.Instrs {
			if ins.Op == arm.LDRI {
				loads++
				if base == 255 {
					base = ins.Rn
				} else if ins.Rn != base {
					t.Fatal("stride loads must share a base")
				}
				if ins.Rd == base {
					t.Fatal("destination must differ from the base register")
				}
				offsets = append(offsets, ins.Imm)
			}
		}
		if loads < 3 || loads > 5 {
			t.Fatalf("stride length %d", loads)
		}
		v := offsets[1] - offsets[0]
		if v == 0 || v%64 != 0 {
			t.Fatalf("distance %d not a multiple of the line size", v)
		}
		for i := 1; i < len(offsets); i++ {
			if offsets[i]-offsets[i-1] != v {
				t.Fatal("offsets not equidistant")
			}
		}
	}
}

func TestTemplateAConstraints(t *testing.T) {
	for _, p := range validate(t, TemplateA{}, 100) {
		// Shape: ldr, cmp, b.hs, ldr, end: hlt.
		if len(p.Instrs) != 5 {
			t.Fatalf("unexpected length %d:\n%s", len(p.Instrs), p)
		}
		ld1, cmp, bcc, ld2 := p.Instrs[0], p.Instrs[1], p.Instrs[2], p.Instrs[3]
		if ld1.Op != arm.LDRR || cmp.Op != arm.CMPR || bcc.Op != arm.BCC || ld2.Op != arm.LDRR {
			t.Fatalf("unexpected shape:\n%s", p)
		}
		r1, r2, r4 := ld1.Rm, ld1.Rd, cmp.Rm
		if r2 == r1 {
			t.Error("constraint r2 != r1 violated")
		}
		if r4 == r1 || r4 == r2 {
			t.Error("constraint r4 not in {r1, r2} violated")
		}
		if ld2.Rm != r2 {
			t.Error("body load must use the loaded value as index")
		}
	}
}

func TestTemplateAAliasSubclassOccurs(t *testing.T) {
	// The unguided-counterexample subclass (§6.3) requires the body base
	// register to alias r0 or r1 in some generated programs.
	r := rand.New(rand.NewSource(123))
	alias := 0
	for i := 0; i < 200; i++ {
		p := TemplateA{}.Generate(r, i)
		ld1, ld2 := p.Instrs[0], p.Instrs[3]
		if ld2.Rn == ld1.Rn || ld2.Rn == ld1.Rm {
			alias++
		}
	}
	if alias == 0 || alias == 200 {
		t.Errorf("alias subclass should occur sometimes, got %d/200", alias)
	}
}

func TestTemplateBShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	preCounts := map[int]bool{}
	bodyCounts := map[int]bool{}
	conds := map[arm.Cond]bool{}
	for i := 0; i < 200; i++ {
		p := TemplateB{}.Generate(r, i)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		pre, body := 0, 0
		seenBranch := false
		for _, ins := range p.Instrs {
			switch {
			case ins.Op == arm.BCC:
				seenBranch = true
				conds[ins.Cond] = true
			case ins.IsLoad() && !seenBranch:
				pre++
			case ins.IsLoad():
				body++
			}
		}
		preCounts[pre] = true
		bodyCounts[body] = true
		if pre > 2 || body < 1 || body > 2 {
			t.Fatalf("template B shape: pre=%d body=%d", pre, body)
		}
	}
	if len(preCounts) < 3 || len(bodyCounts) < 2 || len(conds) < 5 {
		t.Errorf("insufficient variety: pre=%v body=%v conds=%d", preCounts, bodyCounts, len(conds))
	}
}

func TestTemplateCDependentLoads(t *testing.T) {
	for _, p := range validate(t, TemplateC{}, 100) {
		var loads []arm.Instr
		for _, ins := range p.Instrs {
			if ins.IsLoad() {
				loads = append(loads, ins)
			}
		}
		if len(loads) != 2 {
			t.Fatalf("template C must have 2 loads:\n%s", p)
		}
		// Causal dependency: the second load's index is the first's dest.
		if loads[1].Rm != loads[0].Rd && loads[1].Rn != loads[0].Rd {
			t.Fatalf("loads not causally dependent:\n%s", p)
		}
	}
}

func TestTemplateDDeadLoads(t *testing.T) {
	for _, p := range validate(t, TemplateD{}, 50) {
		// There must be a direct B whose target skips at least one load.
		bIdx := -1
		for i, ins := range p.Instrs {
			if ins.Op == arm.B {
				bIdx = i
			}
		}
		if bIdx < 0 {
			t.Fatalf("no unconditional branch:\n%s", p)
		}
		target := p.Labels[p.Instrs[bIdx].Label]
		deadLoads := 0
		for i := bIdx + 1; i < target; i++ {
			if p.Instrs[i].IsLoad() {
				deadLoads++
			}
		}
		if deadLoads < 1 {
			t.Fatalf("no dead loads after the jump:\n%s", p)
		}
	}
}

func TestFixedPrograms(t *testing.T) {
	for _, p := range []*arm.Program{SiSCloak1(), SiSCloak2(), SpectrePHT()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// SiSCloak1 hoists the array load above the check; Spectre-PHT keeps
	// it inside.
	if !SiSCloak1().Instrs[0].IsLoad() {
		t.Error("siscloak1 must start with the hoisted load")
	}
	if SpectrePHT().Instrs[0].IsLoad() {
		t.Error("spectre-pht must start with the bounds check")
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() string {
		r := rand.New(rand.NewSource(99))
		out := ""
		for i := 0; i < 10; i++ {
			out += TemplateB{}.Generate(r, i).String()
		}
		return out
	}
	if gen() != gen() {
		t.Error("generation must be deterministic per seed")
	}
}

func TestTemplateMul(t *testing.T) {
	for _, p := range validate(t, TemplateMul{}, 50) {
		loads, muls := 0, 0
		for _, ins := range p.Instrs {
			if ins.IsLoad() {
				loads++
			}
			if ins.Op == arm.MULR {
				muls++
			}
		}
		if loads != 1 || muls < 1 || muls > 2 {
			t.Fatalf("template mul shape: loads=%d muls=%d\n%s", loads, muls, p)
		}
	}
}

// Every template instance must be expressible as real A64 machine code and
// survive the encode/decode round trip — the pipeline's nominal input is
// binary programs.
func TestAllTemplatesEncodable(t *testing.T) {
	r := rand.New(rand.NewSource(2021))
	templates := []Template{Stride{}, TemplateA{}, TemplateB{}, TemplateC{}, TemplateD{}, TemplateMul{}}
	for _, tpl := range templates {
		for i := 0; i < 30; i++ {
			p := tpl.Generate(r, i)
			words, err := arm.Encode(p)
			if err != nil {
				t.Fatalf("%s #%d not encodable: %v\n%s", tpl.Name(), i, err, p)
			}
			q, err := arm.Decode(p.Name, words)
			if err != nil {
				t.Fatalf("%s #%d not decodable: %v", tpl.Name(), i, err)
			}
			if len(q.Instrs) != len(p.Instrs) {
				t.Fatalf("%s #%d: decode changed length", tpl.Name(), i)
			}
		}
	}
}

func TestSequenceComposition(t *testing.T) {
	seq := Sequence{Parts: []Template{TemplateA{}, Stride{}}}
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		p := seq.Generate(r, i)
		if err := p.Validate(); err != nil {
			t.Fatalf("#%d: %v\n%s", i, err, p)
		}
		// Exactly one branch (from Template A) and at least 3+2 loads.
		branches, loads, hlts := 0, 0, 0
		for _, ins := range p.Instrs {
			if ins.Op == arm.BCC {
				branches++
			}
			if ins.IsLoad() {
				loads++
			}
			if ins.Op == arm.HLT {
				hlts++
			}
		}
		if branches != 1 || loads < 5 {
			t.Fatalf("#%d: branches=%d loads=%d\n%s", i, branches, loads, p)
		}
		if hlts == 0 {
			t.Fatalf("#%d: no terminator", i)
		}
		// Intermediate hlt must not cut the program short: the branch's
		// "end" label must resolve inside the program.
		if _, err := arm.Encode(p); err != nil {
			t.Fatalf("#%d: not encodable: %v", i, err)
		}
	}
}

func TestSequenceName(t *testing.T) {
	s := Sequence{Parts: []Template{TemplateA{}, TemplateD{}}}
	if s.Name() != "seq+tplA+tplD" {
		t.Errorf("name: %s", s.Name())
	}
	s2 := Sequence{Parts: []Template{Stride{}}, SeqName: "custom"}
	if s2.Name() != "custom" {
		t.Errorf("name: %s", s2.Name())
	}
}
