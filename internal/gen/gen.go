// Package gen implements the QuickCheck-style program generators of the
// paper's §5.4: seeded, composable generator combinators and the concrete
// templates of Fig. 5 and Fig. 7 (Stride, A, B, C, D), with the register
// allocation side constraints the paper describes.
package gen

import (
	"fmt"
	"math/rand"

	"scamv/internal/arm"
)

// G is a generator of T values driven by a seeded random source, in the
// style of QuickCheck's monadic generators.
type G[T any] func(r *rand.Rand) T

// Const always generates v.
func Const[T any](v T) G[T] { return func(*rand.Rand) T { return v } }

// OneOf picks uniformly among the given values.
func OneOf[T any](vs ...T) G[T] {
	if len(vs) == 0 {
		panic("gen: OneOf of nothing")
	}
	return func(r *rand.Rand) T { return vs[r.Intn(len(vs))] }
}

// IntRange picks uniformly in [lo, hi].
func IntRange(lo, hi int) G[int] {
	if hi < lo {
		panic("gen: empty range")
	}
	return func(r *rand.Rand) int { return lo + r.Intn(hi-lo+1) }
}

// Map transforms the generated value.
func Map[T, U any](g G[T], f func(T) U) G[U] {
	return func(r *rand.Rand) U { return f(g(r)) }
}

// Bind sequences generators monadically.
func Bind[T, U any](g G[T], f func(T) G[U]) G[U] {
	return func(r *rand.Rand) U { return f(g(r))(r) }
}

// SuchThat retries g until the predicate holds (caller must ensure the
// predicate is satisfiable with reasonable probability).
func SuchThat[T any](g G[T], pred func(T) bool) G[T] {
	return func(r *rand.Rand) T {
		for i := 0; ; i++ {
			v := g(r)
			if pred(v) {
				return v
			}
			if i > 10000 {
				panic("gen: SuchThat retry budget exhausted")
			}
		}
	}
}

// Reg picks a register from the template pool x0..x9.
func Reg() G[arm.Reg] { return Map(IntRange(0, 9), arm.X) }

// RegNotIn picks a pool register distinct from every register in avoid.
func RegNotIn(avoid ...arm.Reg) G[arm.Reg] {
	return SuchThat(Reg(), func(r arm.Reg) bool {
		for _, a := range avoid {
			if r == a {
				return false
			}
		}
		return true
	})
}

// CondGen picks a comparison predicate.
func CondGen() G[arm.Cond] {
	return OneOf(arm.EQ, arm.NE, arm.HS, arm.LO, arm.HI, arm.LS, arm.GE, arm.LT, arm.GT, arm.LE)
}

// Template generates programs of one family.
type Template interface {
	Name() string
	// Generate builds the idx-th program using the seeded source.
	Generate(r *rand.Rand, idx int) *arm.Program
}

// ---------------------------------------------------------------------------
// Stride Template (Fig. 5, M_part experiments)
// ---------------------------------------------------------------------------

// Stride generates 3–5 loads at equidistant offsets from a base register,
// the pattern that can trigger the automatic cache prefetcher (§6.2). The
// distance is a multiple of the cache line size so consecutive accesses fall
// in different cache sets, as the paper's template ensures.
type Stride struct {
	// LineSize is the cache line size in bytes (default 64).
	LineSize uint64
}

// Name implements Template.
func (Stride) Name() string { return "stride" }

// Generate implements Template.
func (t Stride) Generate(r *rand.Rand, idx int) *arm.Program {
	line := t.LineSize
	if line == 0 {
		line = 64
	}
	p := arm.NewProgram(fmt.Sprintf("stride-%d", idx))
	base := Reg()(r)
	n := IntRange(3, 5)(r)
	v := uint64(IntRange(1, 2)(r)) * line
	for i := 0; i < n; i++ {
		dst := RegNotIn(base)(r)
		p.Add(arm.Instr{Op: arm.LDRI, Rd: dst, Rn: base, Imm: uint64(i) * v})
	}
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// ---------------------------------------------------------------------------
// Template A (Fig. 5, M_ct experiments, §6.3)
// ---------------------------------------------------------------------------

// TemplateA is the single-speculative-load shape:
//
//	ldr r2, [r0, r1]
//	if r1 < r4 { ldr r3, [r5, r2] }
//
// with the paper's side constraints r2 ≠ r1 and r4 ∉ {r1, r2}. The base
// register r5 of the conditional load is unconstrained and occasionally
// aliases r0 or r1, which is the subclass where unguided testing can
// stumble on counterexamples (§6.3).
type TemplateA struct{}

// Name implements Template.
func (TemplateA) Name() string { return "tplA" }

// Generate implements Template.
func (TemplateA) Generate(r *rand.Rand, idx int) *arm.Program {
	r0 := Reg()(r)
	r1 := RegNotIn(r0)(r)
	r2 := RegNotIn(r1)(r)
	r4 := RegNotIn(r1, r2)(r)
	r5 := Reg()(r)
	r3 := RegNotIn(r0, r1, r4, r5)(r)

	p := arm.NewProgram(fmt.Sprintf("tplA-%d", idx))
	p.Add(
		arm.Instr{Op: arm.LDRR, Rd: r2, Rn: r0, Rm: r1},
		arm.Instr{Op: arm.CMPR, Rn: r1, Rm: r4},
		arm.Instr{Op: arm.BCC, Cond: arm.LO.Invert(), Label: "end"},
		arm.Instr{Op: arm.LDRR, Rd: r3, Rn: r5, Rm: r2},
	)
	p.Mark("end")
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// ---------------------------------------------------------------------------
// Template B (Fig. 5, §6.3)
// ---------------------------------------------------------------------------

// TemplateB is the general shape: zero to two loads before a branch with a
// randomly chosen predicate, and one or two loads in the body. Register
// placeholders are allocated with no side constraints, so the same machine
// register may serve several roles (§6.3).
type TemplateB struct{}

// Name implements Template.
func (TemplateB) Name() string { return "tplB" }

// Generate implements Template.
func (TemplateB) Generate(r *rand.Rand, idx int) *arm.Program {
	p := arm.NewProgram(fmt.Sprintf("tplB-%d", idx))
	nPre := IntRange(0, 2)(r)
	for i := 0; i < nPre; i++ {
		p.Add(arm.Instr{Op: arm.LDRR, Rd: Reg()(r), Rn: Reg()(r), Rm: Reg()(r)})
	}
	cond := CondGen()(r)
	p.Add(
		arm.Instr{Op: arm.CMPR, Rn: Reg()(r), Rm: Reg()(r)},
		arm.Instr{Op: arm.BCC, Cond: cond.Invert(), Label: "end"},
	)
	nBody := IntRange(1, 2)(r)
	for i := 0; i < nBody; i++ {
		p.Add(arm.Instr{Op: arm.LDRR, Rd: Reg()(r), Rn: Reg()(r), Rm: Reg()(r)})
	}
	p.Mark("end")
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// ---------------------------------------------------------------------------
// Template C (Fig. 7, §6.5)
// ---------------------------------------------------------------------------

// TemplateC guards two causally dependent loads (the second load's address
// uses the first load's result), optionally interleaved with an arithmetic
// operation — the Spectre-PHT shape. On a core that does not forward
// transient load results, the second load cannot issue speculatively.
type TemplateC struct{}

// Name implements Template.
func (TemplateC) Name() string { return "tplC" }

// Generate implements Template.
func (TemplateC) Generate(r *rand.Rand, idx int) *arm.Program {
	rA := Reg()(r)
	rB := RegNotIn(rA)(r)
	r5 := Reg()(r)
	r3 := Reg()(r)
	r6 := RegNotIn(rA, rB, r5)(r)
	r7 := Reg()(r)
	r8 := RegNotIn(r6)(r)
	cond := CondGen()(r)

	p := arm.NewProgram(fmt.Sprintf("tplC-%d", idx))
	p.Add(
		arm.Instr{Op: arm.CMPR, Rn: rA, Rm: rB},
		arm.Instr{Op: arm.BCC, Cond: cond.Invert(), Label: "end"},
		arm.Instr{Op: arm.LDRR, Rd: r6, Rn: r5, Rm: r3},
	)
	if r.Intn(2) == 0 {
		p.Add(arm.Instr{Op: arm.ADDI, Rd: r6, Rn: r6, Imm: uint64(IntRange(1, 64)(r))})
	}
	p.Add(arm.Instr{Op: arm.LDRR, Rd: r8, Rn: r7, Rm: r6})
	p.Mark("end")
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// ---------------------------------------------------------------------------
// Template D (Fig. 7, §6.5 — straight-line speculation)
// ---------------------------------------------------------------------------

// TemplateD places loads after a direct unconditional branch; the code after
// the jump only executes if the core speculates past an unconditional
// direct branch, which ARM claims (and the paper confirms) the A53 does not.
type TemplateD struct{}

// Name implements Template.
func (TemplateD) Name() string { return "tplD" }

// Generate implements Template.
func (TemplateD) Generate(r *rand.Rand, idx int) *arm.Program {
	p := arm.NewProgram(fmt.Sprintf("tplD-%d", idx))
	if r.Intn(2) == 0 {
		p.Add(arm.Instr{Op: arm.LDRR, Rd: Reg()(r), Rn: Reg()(r), Rm: Reg()(r)})
	}
	p.Add(arm.Instr{Op: arm.B, Label: "end"})
	n := IntRange(1, 2)(r)
	for i := 0; i < n; i++ {
		p.Add(arm.Instr{Op: arm.LDRR, Rd: Reg()(r), Rn: Reg()(r), Rm: Reg()(r)})
	}
	p.Mark("end")
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// ---------------------------------------------------------------------------
// Template composition
// ---------------------------------------------------------------------------

// Sequence composes templates in the QuickCheck style the paper describes
// for its generators (§5.4: "the generators ... can be composed to generate
// more complex programs to fit different attack scenarios"): each program
// is the concatenation of one instance of every part, with labels
// namespaced per part and trailing hlt instructions of all but the last
// part removed.
type Sequence struct {
	Parts []Template
	// SeqName overrides the generated name prefix.
	SeqName string
}

// Name implements Template.
func (s Sequence) Name() string {
	if s.SeqName != "" {
		return s.SeqName
	}
	name := "seq"
	for _, p := range s.Parts {
		name += "+" + p.Name()
	}
	return name
}

// Generate implements Template.
func (s Sequence) Generate(r *rand.Rand, idx int) *arm.Program {
	out := arm.NewProgram(fmt.Sprintf("%s-%d", s.Name(), idx))
	for pi, part := range s.Parts {
		p := part.Generate(r, idx)
		last := pi == len(s.Parts)-1
		// Remember label positions relative to this part.
		base := len(out.Instrs)
		trimmed := p.Instrs
		if !last {
			for len(trimmed) > 0 && trimmed[len(trimmed)-1].Op == arm.HLT {
				trimmed = trimmed[:len(trimmed)-1]
			}
		}
		rename := func(l string) string { return fmt.Sprintf("p%d_%s", pi, l) }
		for _, ins := range trimmed {
			if ins.IsBranch() {
				ins.Label = rename(ins.Label)
			}
			out.Add(ins)
		}
		for l, pos := range p.Labels {
			if pos > len(trimmed) {
				pos = len(trimmed)
			}
			out.Labels[rename(l)] = base + pos
		}
	}
	out.Add(arm.Instr{Op: arm.HLT})
	return out
}

// ---------------------------------------------------------------------------
// Template Mul (variable-time arithmetic channel, §3 illustration)
// ---------------------------------------------------------------------------

// TemplateMul exercises the variable-time arithmetic channel: a public load
// followed by one or two multiplies whose results flow into no memory access
// or branch — constant-time-secure programs whose execution time
// nevertheless depends on the multiplier operands on a core with an
// early-terminating multiplier.
type TemplateMul struct{}

// Name implements Template.
func (TemplateMul) Name() string { return "tplMul" }

// Generate implements Template.
func (TemplateMul) Generate(r *rand.Rand, idx int) *arm.Program {
	p := arm.NewProgram(fmt.Sprintf("tplMul-%d", idx))
	base := Reg()(r)
	p.Add(arm.Instr{Op: arm.LDRI, Rd: RegNotIn(base)(r), Rn: base})
	n := IntRange(1, 2)(r)
	for i := 0; i < n; i++ {
		ra := Reg()(r)
		rb := RegNotIn(base)(r)
		rd := RegNotIn(base, ra, rb)(r)
		p.Add(arm.Instr{Op: arm.MULR, Rd: rd, Rn: ra, Rm: rb})
	}
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// ---------------------------------------------------------------------------
// Fixed SiSCloak programs (Fig. 6, §6.4)
// ---------------------------------------------------------------------------

// SiSCloak1 is the first counterexample of Fig. 6: Spectre-PHT with the
// first array access hoisted above the bounds check. Register roles:
// x0 = attacker-controlled index, x1 = bound (#A-size), x5 = #A, x7 = #B.
func SiSCloak1() *arm.Program {
	return arm.MustParse("siscloak1", `
        ldr x2, [x5, x0]     ; x2 = A[x0], hoisted above the check
        cmp x0, x1
        b.hs end             ; if x0 < #A-size then
        ldr x4, [x7, x2]     ;   x4 = B[x2]
    end:
        hlt
    `)
}

// SiSCloak2 is the second counterexample of Fig. 6: the classification of
// an array element is stored in its own high bit. Register roles: x0 =
// attacker-controlled index, x5 = #A, x7 = #B.
func SiSCloak2() *arm.Program {
	return arm.MustParse("siscloak2", `
        ldr x2, [x5, x0]         ; x2 = A[x0]
        tst x2, #0x80000000      ; high bit: is the element confidential?
        b.ne end                 ; if public then
        ldr x4, [x7, x2]         ;   x4 = B[x2]
    end:
        hlt
    `)
}

// SpectrePHT is the original Spectre-PHT victim of Fig. 6 (left column):
// bounds check first, then the dependent double load. Register roles as in
// SiSCloak1.
func SpectrePHT() *arm.Program {
	return arm.MustParse("spectre-pht", `
        cmp x0, x1
        b.hs end                 ; if x0 < #A-size then
        ldr x2, [x5, x0]         ;   x2 = A[x0]
        ldr x4, [x7, x2]         ;   x4 = B[x2]
    end:
        hlt
    `)
}
