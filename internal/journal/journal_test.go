package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scamv/internal/logdb"
)

func rec(p int) ProgramRecord {
	return ProgramRecord{
		Prog:        p,
		Experiments: 10 + p,
		Queries:     3 * p,
		FirstCETest: -1,
		ShapeKeys:   []uint64{uint64(p) * 7, 42},
		Skips:       []Skip{{Prog: p, Test: 1, Reason: "x"}},
		Logs:        []logdb.Record{{Experiment: "e", Program: "prog", TestIndex: p, Verdict: "indistinguishable"}},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Campaign {
	t.Helper()
	c, err := Open(dir, "camp/one", opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func appendN(t *testing.T, c *Campaign, from, to int) {
	t.Helper()
	for p := from; p < to; p++ {
		if _, err := c.Append(rec(p)); err != nil {
			t.Fatalf("append %d: %v", p, err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	if err := c.Begin("camp/one", "fp1"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 5)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{Resume: true})
	if err := r.Begin("camp/one", "fp1"); err != nil {
		t.Fatal(err)
	}
	got := r.Restored()
	if len(got) != 5 {
		t.Fatalf("restored %d records, want 5", len(got))
	}
	for i, g := range got {
		want := rec(i)
		if g.Prog != i || g.Experiments != want.Experiments || len(g.ShapeKeys) != 2 ||
			len(g.Skips) != 1 || len(g.Logs) != 1 || g.Logs[0].TestIndex != i {
			t.Fatalf("record %d round-tripped wrong: %+v", i, g)
		}
	}
	// Appending must continue from the restored prefix.
	if _, err := r.Append(rec(4)); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	appendN(t, r, 5, 7)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir, Options{Resume: true})
	if n := len(r2.Restored()); n != 7 {
		t.Fatalf("after second run restored %d, want 7", n)
	}
	r2.Close()
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{Every: -1})
	if err := c.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 3)
	c.Close()

	jPath := filepath.Join(dir, Sanitize("camp/one"), "journal.jsonl")
	f, err := os.OpenFile(jPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: half a record, no newline.
	if _, err := f.WriteString(`{"kind":"program","prog":3,"exp`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := mustOpen(t, dir, Options{Resume: true, Every: -1})
	if err := r.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	if n := len(r.Restored()); n != 3 {
		t.Fatalf("restored %d, want 3 (torn line dropped)", n)
	}
	// The torn tail must be gone so the next append starts a clean line.
	appendN(t, r, 3, 4)
	r.Close()
	r2 := mustOpen(t, dir, Options{Resume: true})
	if n := len(r2.Restored()); n != 4 {
		t.Fatalf("after repair restored %d, want 4", n)
	}
	r2.Close()
}

func TestJournalFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	if err := c.Begin("camp/one", "fp-a"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 1)
	c.Close()
	r := mustOpen(t, dir, Options{Resume: true})
	err := r.Begin("camp/one", "fp-b")
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("want fingerprint mismatch error, got %v", err)
	}
	r.Close()
}

func TestJournalMidFileCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{Every: -1})
	if err := c.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 3)
	c.Close()
	jPath := filepath.Join(dir, Sanitize("camp/one"), "journal.jsonl")
	data, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the middle of the file: corruption, not truncation.
	mid := len(data) / 2
	data[mid], data[mid+1] = '\x00', '\x00'
	if err := os.WriteFile(jPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "camp/one", Options{Resume: true, Every: -1}); err == nil {
		t.Fatal("mid-file corruption accepted silently")
	}
}

func TestCheckpointRotationAndFallback(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{Every: 2})
	if err := c.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 6) // checkpoints at 2, 4, 6
	if got := c.Checkpoints(); got != 3 {
		t.Fatalf("checkpoints = %d, want 3", got)
	}
	c.Close()
	cdir := filepath.Join(dir, Sanitize("camp/one"))
	for _, name := range []string{"checkpoint.json", "checkpoint.prev.json"} {
		if _, err := os.Stat(filepath.Join(cdir, name)); err != nil {
			t.Fatalf("%s missing after rotation: %v", name, err)
		}
	}

	// Tear the primary checkpoint (truncate to half) and delete the journal:
	// recovery must detect the tear and fall back to checkpoint.prev.json.
	primary := filepath.Join(cdir, "checkpoint.json")
	data, err := os.ReadFile(primary)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(primary, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(cdir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{Resume: true})
	if err := r.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	// prev covers programs [0,4): the torn primary (6) must not be trusted.
	if n := len(r.Restored()); n != 4 {
		t.Fatalf("restored %d from fallback, want 4 (prev checkpoint)", n)
	}
	// And the journal was rewritten from the checkpoint, so a further resume
	// sees the same prefix even without checkpoints.
	r.Close()
	os.Remove(filepath.Join(cdir, "checkpoint.json"))
	os.Remove(filepath.Join(cdir, "checkpoint.prev.json"))
	r2 := mustOpen(t, dir, Options{Resume: true})
	if n := len(r2.Restored()); n != 4 {
		t.Fatalf("rewritten journal restored %d, want 4", n)
	}
	r2.Close()
}

func TestCheckpointAheadOfJournalWins(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{Every: 1})
	if err := c.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 3)
	c.Close()
	// Truncate the journal down to the header + 1 record; the checkpoint
	// still covers 3. Recovery takes the longer prefix.
	cdir := filepath.Join(dir, Sanitize("camp/one"))
	jPath := filepath.Join(cdir, "journal.jsonl")
	data, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(jPath, []byte(lines[0]+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{Resume: true})
	if n := len(r.Restored()); n != 3 {
		t.Fatalf("restored %d, want 3 (checkpoint ahead of journal)", n)
	}
	r.Close()
}

func TestFreshOpenDiscardsStaleState(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{Every: 1})
	if err := c.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	appendN(t, c, 0, 2)
	c.Close()
	// A fresh (non-resume) open of the same campaign truncates everything.
	f := mustOpen(t, dir, Options{})
	if err := f.Begin("camp/one", "fp2"); err != nil {
		t.Fatal(err)
	}
	if n := len(f.Restored()); n != 0 {
		t.Fatalf("fresh open restored %d records", n)
	}
	f.Close()
	r := mustOpen(t, dir, Options{Resume: true})
	if err := r.Begin("camp/one", "fp2"); err != nil {
		t.Fatal(err)
	}
	if n := len(r.Restored()); n != 0 {
		t.Fatalf("stale state leaked into fresh run: %d records", n)
	}
	r.Close()
}

func TestResumeWithNoStateIsFresh(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, dir, Options{Resume: true})
	if err := r.Begin("camp/one", "fp"); err != nil {
		t.Fatal(err)
	}
	if n := len(r.Restored()); n != 0 {
		t.Fatalf("restored %d from empty dir", n)
	}
	appendN(t, r, 0, 2)
	r.Close()
	r2 := mustOpen(t, dir, Options{Resume: true})
	if n := len(r2.Restored()); n != 2 {
		t.Fatalf("restored %d, want 2", n)
	}
	r2.Close()
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"Mpart (AR = sets 61..127)/refined": "Mpart__AR___sets_61..127__refined",
		"plain":                             "plain",
		"":                                  "campaign",
	} {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
