// Package journal is the crash-safety spine of a validation campaign: a
// write-ahead journal of per-program completions plus periodic atomic
// checkpoint snapshots, the substrate behind scamv -checkpoint/-resume and
// the durability contract the distributed scamv-d workers will inherit.
//
// The design splits durability into two artifacts per campaign directory:
//
//   - journal.jsonl — the source of truth. One fsynced JSON line per
//     completed program, appended by the engines' in-order merge step, so
//     the journal always holds a contiguous prefix [0, N) of the campaign.
//     The file follows internal/logdb's torn-final-line contract: a crash
//     mid-append leaves at most one JSON-invalid trailing line, which the
//     resume loader drops (and truncates away before appending resumes).
//
//   - checkpoint.json — a compaction, not an authority. Every few appends
//     the full restored+appended record set is written via the
//     write-temp + fsync + rename + dir-fsync protocol, with the previous
//     checkpoint rotated to checkpoint.prev.json first. A torn checkpoint
//     (missing completeness marker, unparseable JSON) is detected and the
//     previous one — or the journal itself — is used instead. Checkpoints
//     exist so scamv-d supervisors can read campaign progress in one
//     bounded read instead of replaying an unbounded journal.
//
// Resume correctness rests on two properties the engines guarantee: results
// merge in strict ascending program order (so the journal is a prefix, and
// skipping its records is exactly "skip the first N programs"), and every
// per-program random stream is derived deterministically from the campaign
// seed (so the remaining programs reproduce bit-for-bit). See DESIGN.md §15
// for the full argument.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"scamv/internal/logdb"
)

// FS is the write-side filesystem seam of a campaign journal. Production
// code uses OSFS; internal/faultinject wraps it to inject ENOSPC, short
// writes, fsync failures, and torn renames, which is how the recovery paths
// get teeth tests instead of trust.
//
// Reads are deliberately not part of the seam: recovery reads whole files
// through the os package, because a fault during recovery is
// indistinguishable from real corruption and is surfaced the same way.
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so completed renames survive a crash.
	SyncDir(dir string) error
}

// File is the writable-file surface the journal needs: sequential writes,
// fsync, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. Filesystems that cannot sync directories report
// EINVAL; like logdb, that is treated as the platform's ceiling, not an
// error.
func (OSFS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// Version is the journal format version stamped on the header and the
// checkpoint envelope.
const Version = 1

const (
	journalFile  = "journal.jsonl"
	ckptFile     = "checkpoint.json"
	ckptPrevFile = "checkpoint.prev.json"
	ckptTmpFile  = "checkpoint.tmp"
)

// Skip mirrors scamv.Skip: one abandoned test case (or quarantined
// remainder) under FailPolicy Degrade, preserved across resume so the final
// Result's skip list equals an uninterrupted run's.
type Skip struct {
	Prog   int    `json:"prog"`
	Test   int    `json:"test"`
	Reason string `json:"reason"`
}

// PlatformTally is one program's contribution to one matrix-campaign
// platform row.
type PlatformTally struct {
	Experiments     int   `json:"experiments,omitempty"`
	Counterexamples int   `json:"counterexamples,omitempty"`
	Inconclusive    int   `json:"inconclusive,omitempty"`
	Skipped         int   `json:"skipped,omitempty"`
	ExeUS           int64 `json:"exe_us,omitempty"`
	Found           bool  `json:"found,omitempty"`
	FirstCETest     int   `json:"first_ce_test"`
}

// ProgramRecord is one journaled program completion: everything the merge
// step folds into the campaign Result, in durable form. Wall-clock fields
// are carried so resumed aggregate times reflect total work done, but they
// are exactly the fields the resume-equivalence contract excludes.
type ProgramRecord struct {
	Kind string `json:"kind"` // "program"
	Prog int    `json:"prog"`

	Experiments     int   `json:"experiments,omitempty"`
	Counterexamples int   `json:"counterexamples,omitempty"`
	Inconclusive    int   `json:"inconclusive,omitempty"`
	EncodeFallbacks int   `json:"encode_fallbacks,omitempty"`
	Queries         int   `json:"queries,omitempty"`
	GenUS           int64 `json:"gen_us,omitempty"`
	ExeUS           int64 `json:"exe_us,omitempty"`
	Found           bool  `json:"found,omitempty"`
	FirstCETest     int   `json:"first_ce_test"`
	TTCUS           int64 `json:"ttc_us,omitempty"`

	SkippedTests int    `json:"skipped_tests,omitempty"`
	Quarantined  bool   `json:"quarantined,omitempty"`
	Skips        []Skip `json:"skips,omitempty"`
	Retries      int    `json:"retries,omitempty"`
	Timeouts     int    `json:"timeouts,omitempty"`

	// ShapeKeys are the campaign shape-cache keys this program's generator
	// looked up, in lookup order. Replaying the restored key lists
	// reconstructs deterministic hit/miss totals and pre-marks the keys as
	// known, so a resumed campaign's ShapeHits/ShapeMisses equal an
	// uninterrupted run's even though prototypes are rebuilt after restart.
	ShapeKeys []uint64 `json:"shape_keys,omitempty"`

	Platforms []PlatformTally `json:"platforms,omitempty"`

	// Logs are the program's experiment-log records, re-emitted into
	// Experiment.Log on resume so the resumed log file equals an
	// uninterrupted run's.
	Logs []logdb.Record `json:"logs,omitempty"`
}

// header is the journal's first line: the campaign identity and the
// configuration fingerprint resume validates against.
type header struct {
	V           int    `json:"v"`
	Kind        string `json:"kind"` // "header"
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
}

// checkpointEnvelope is the checkpoint.json shape. Complete is the
// completeness marker: it is the last field emitted, so a checkpoint torn by
// a crash mid-write (on filesystems that expose renames of unsynced files,
// or under injected torn-rename faults) decodes with Complete == false —
// or not at all — and is rejected in favor of the previous checkpoint.
type checkpointEnvelope struct {
	V           int             `json:"v"`
	Campaign    string          `json:"campaign"`
	Fingerprint string          `json:"fingerprint"`
	Programs    []ProgramRecord `json:"programs"`
	Complete    bool            `json:"complete"`
}

// Options configures Open.
type Options struct {
	// Resume loads existing campaign state instead of truncating it. With no
	// prior state on disk, a Resume open degrades to a fresh start, so one
	// flag serves first runs and re-runs alike.
	Resume bool
	// Every is the auto-checkpoint period in appended programs (0 = the
	// default of 8; negative = only explicit Checkpoint calls).
	Every int
	// FS overrides the filesystem (nil = OSFS). The fault-injection seam.
	FS FS
}

// Campaign is one campaign's open journal. Append/Checkpoint/Close are safe
// for concurrent use, though the engines call Append from the single
// in-order merge goroutine. Write errors are sticky, like logdb's: after a
// failed append or checkpoint every subsequent mutation returns the first
// error, so a half-written line is never spliced.
type Campaign struct {
	dir   string
	fs    FS
	every int

	mu       sync.Mutex
	f        File
	hdr      header
	begun    bool
	restored []ProgramRecord
	all      []ProgramRecord // restored + appended, checkpoint material
	next     int             // next expected program index
	sinceCk  int
	ckpts    int
	werr     error
}

// Sanitize maps a campaign name to a filesystem-safe directory component:
// every byte outside [A-Za-z0-9._-] becomes '_' (campaign names contain '/',
// e.g. "Mpart-.../refined").
func Sanitize(name string) string {
	if name == "" {
		return "campaign"
	}
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Open prepares the journal for one campaign under dir (the directory given
// to -checkpoint/-resume; each campaign gets the subdirectory
// dir/Sanitize(name)). With Options.Resume, existing state is loaded:
// the newest intact checkpoint and the journal are reconciled, a torn
// trailing journal line is truncated away, and Restored returns the
// recovered prefix once Begin has validated the fingerprint.
func Open(dir, name string, opts Options) (*Campaign, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	every := opts.Every
	if every == 0 {
		every = 8
	}
	cdir := filepath.Join(dir, Sanitize(name))
	if err := fsys.MkdirAll(cdir); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	c := &Campaign{dir: cdir, fs: fsys, every: every}
	if !opts.Resume {
		// Fresh start: drop stale state from any earlier run of this
		// campaign so a later -resume cannot mix runs.
		for _, stale := range []string{ckptFile, ckptPrevFile, ckptTmpFile} {
			if err := fsys.Remove(filepath.Join(cdir, stale)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("journal: %w", err)
			}
		}
		f, err := fsys.Create(filepath.Join(cdir, journalFile))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		c.f = f
		return c, nil
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// recover loads resume state: journal first (source of truth), checkpoint as
// the bounded-read fallback, longest intact prefix wins.
func (c *Campaign) recover() error {
	jPath := filepath.Join(c.dir, journalFile)
	jHdr, jRecs, validLen, jErr := loadJournal(jPath)
	if jErr != nil {
		return jErr
	}
	hdr := jHdr
	ck, _ := loadCheckpoint(c.dir)
	if hdr == nil && ck != nil {
		hdr = &header{V: ck.V, Kind: "header", Campaign: ck.Campaign, Fingerprint: ck.Fingerprint}
	}
	if hdr == nil {
		// No prior state at all: degrade to a fresh start.
		f, err := c.fs.Create(jPath)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		c.f = f
		return nil
	}
	restored := jRecs
	if ck != nil {
		if ck.Fingerprint != hdr.Fingerprint {
			return fmt.Errorf("journal: checkpoint fingerprint does not match journal header (delete %s to discard)", c.dir)
		}
		if len(ck.Programs) > len(restored) {
			// The checkpoint outlived the journal (journal deleted or torn
			// beyond its coverage): adopt the checkpoint's longer prefix.
			restored = ck.Programs
		}
	}
	for i := range restored {
		if restored[i].Prog != i {
			return fmt.Errorf("journal: %s: non-contiguous program records (record %d has prog %d)", c.dir, i, restored[i].Prog)
		}
	}
	c.hdr = *hdr
	c.restored = restored
	c.all = append(c.all, restored...)
	c.next = len(restored)
	// Re-open the journal for appending. When the on-disk journal does not
	// already equal the restored prefix (torn tail, missing header, or a
	// checkpoint ahead of it), rewrite it atomically first so appended
	// records always extend a clean prefix.
	if jHdr != nil && len(restored) == len(jRecs) {
		if st, err := os.Stat(jPath); err == nil && st.Size() > validLen {
			if err := c.fs.Truncate(jPath, validLen); err != nil {
				return fmt.Errorf("journal: truncate torn tail: %w", err)
			}
		}
	} else {
		var buf bytes.Buffer
		hb, err := json.Marshal(c.hdr)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		buf.Write(hb)
		buf.WriteByte('\n')
		for i := range restored {
			rb, err := json.Marshal(&restored[i])
			if err != nil {
				return fmt.Errorf("journal: %w", err)
			}
			buf.Write(rb)
			buf.WriteByte('\n')
		}
		if err := c.atomicWrite(journalFile, buf.Bytes()); err != nil {
			return err
		}
	}
	f, err := c.fs.OpenAppend(jPath)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	c.f = f
	return nil
}

// loadJournal reads the journal tolerantly: header line, then program
// records. The torn-final-line contract of logdb applies — a JSON-invalid
// trailing chunk is dropped (validLen excludes it so the caller can truncate
// it away); an invalid line before the end is hard corruption.
func loadJournal(path string) (hdr *header, recs []ProgramRecord, validLen int64, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			return nil, nil, 0, nil
		}
		return nil, nil, 0, fmt.Errorf("journal: %w", rerr)
	}
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := data
		terminated := nl >= 0
		if terminated {
			line = data[:nl]
			data = data[nl+1:]
		} else {
			data = nil
		}
		lineLen := int64(len(line))
		if terminated {
			lineLen++
		}
		if len(bytes.TrimSpace(line)) == 0 {
			off += lineLen
			continue
		}
		if !json.Valid(line) {
			if len(data) == 0 {
				// Torn final line: a crash mid-append. Drop it.
				return hdr, recs, off, nil
			}
			return nil, nil, 0, fmt.Errorf("journal: %s: corrupt line at byte %d", path, off)
		}
		if hdr == nil {
			var h header
			if uerr := json.Unmarshal(line, &h); uerr != nil || h.Kind != "header" {
				return nil, nil, 0, fmt.Errorf("journal: %s: first line is not a journal header", path)
			}
			if h.V > Version {
				return nil, nil, 0, fmt.Errorf("journal: %s: format v%d newer than supported v%d", path, h.V, Version)
			}
			hdr = &h
		} else {
			var rec ProgramRecord
			if uerr := json.Unmarshal(line, &rec); uerr != nil || rec.Kind != "program" {
				return nil, nil, 0, fmt.Errorf("journal: %s: bad program record at byte %d", path, off)
			}
			recs = append(recs, rec)
		}
		off += lineLen
	}
	return hdr, recs, off, nil
}

// loadCheckpoint returns the newest intact checkpoint: checkpoint.json if it
// parses and carries the completeness marker, else checkpoint.prev.json,
// else nil. fellBack reports that the primary existed but was rejected —
// the torn-checkpoint detection the faultinject teeth test exercises.
func loadCheckpoint(dir string) (ck *checkpointEnvelope, fellBack bool) {
	load := func(name string) *checkpointEnvelope {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil
		}
		var env checkpointEnvelope
		if err := json.Unmarshal(data, &env); err != nil || !env.Complete || env.V > Version {
			return nil
		}
		return &env
	}
	if ck = load(ckptFile); ck != nil {
		return ck, false
	}
	if _, err := os.Stat(filepath.Join(dir, ckptFile)); err == nil {
		fellBack = true
	}
	return load(ckptPrevFile), fellBack
}

// Begin stamps (fresh) or validates (resume) the campaign fingerprint — a
// canonical encoding of every configuration knob that influences campaign
// counts. A resume whose fingerprint differs from the journaled one is
// refused: silently mixing configurations would produce a Result no single
// configuration can reproduce.
func (c *Campaign) Begin(campaign, fingerprint string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.begun {
		return errors.New("journal: Begin called twice")
	}
	if c.hdr.Kind != "" {
		if c.hdr.Fingerprint != fingerprint {
			return fmt.Errorf("journal: resume fingerprint mismatch for campaign %q:\n  journal: %s\n  now:     %s\n(the resumed run must use the same seed, counts, model, platforms, and solver configuration)",
				campaign, c.hdr.Fingerprint, fingerprint)
		}
		c.begun = true
		return nil
	}
	c.hdr = header{V: Version, Kind: "header", Campaign: campaign, Fingerprint: fingerprint}
	b, err := json.Marshal(c.hdr)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := c.writeDurable(append(b, '\n')); err != nil {
		return err
	}
	c.begun = true
	return nil
}

// Restored returns the program records recovered by a Resume open, in
// program order — always the contiguous prefix [0, len) of the campaign.
func (c *Campaign) Restored() []ProgramRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restored
}

// Dir returns the campaign's journal directory.
func (c *Campaign) Dir() string { return c.dir }

// Checkpoints returns how many checkpoint snapshots this Campaign wrote.
func (c *Campaign) Checkpoints() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckpts
}

// writeDurable appends raw bytes to the journal and fsyncs them. Caller
// holds c.mu.
func (c *Campaign) writeDurable(b []byte) error {
	if c.werr != nil {
		return c.werr
	}
	if _, err := c.f.Write(b); err != nil {
		c.werr = fmt.Errorf("journal: %w", err)
		return c.werr
	}
	if err := c.f.Sync(); err != nil {
		c.werr = fmt.Errorf("journal: sync: %w", err)
		return c.werr
	}
	return nil
}

// Append journals one completed program. Records must arrive in ascending
// program order starting at the resume point — the engines' in-order merge
// guarantees it, and Append enforces it, because a gap would break the
// prefix property resume depends on. When it returns nil the record is
// fsynced. checkpointed reports that this append also wrote an automatic
// checkpoint (every Options.Every appends).
func (c *Campaign) Append(rec ProgramRecord) (checkpointed bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.begun {
		return false, errors.New("journal: Append before Begin")
	}
	if c.werr != nil {
		return false, c.werr
	}
	if rec.Prog != c.next {
		return false, fmt.Errorf("journal: out-of-order append: got program %d, want %d", rec.Prog, c.next)
	}
	rec.Kind = "program"
	b, err := json.Marshal(&rec)
	if err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	if err := c.writeDurable(append(b, '\n')); err != nil {
		return false, err
	}
	c.all = append(c.all, rec)
	c.next++
	c.sinceCk++
	if c.every > 0 && c.sinceCk >= c.every {
		if err := c.checkpointLocked(); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Next returns the next expected program index (= programs journaled so far).
func (c *Campaign) Next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// Checkpoint writes an atomic snapshot of everything journaled so far:
// temp file + fsync + rotate checkpoint.json to checkpoint.prev.json +
// rename + directory fsync. Crash-safe at every step — a kill between any
// two operations leaves either the old checkpoint, the old pair, or the new
// pair, all of which recovery handles.
func (c *Campaign) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.begun {
		return errors.New("journal: Checkpoint before Begin")
	}
	return c.checkpointLocked()
}

func (c *Campaign) checkpointLocked() error {
	if c.werr != nil {
		return c.werr
	}
	env := checkpointEnvelope{
		V:           Version,
		Campaign:    c.hdr.Campaign,
		Fingerprint: c.hdr.Fingerprint,
		Programs:    c.all,
		Complete:    true,
	}
	b, err := json.Marshal(&env)
	if err != nil {
		c.werr = fmt.Errorf("journal: %w", err)
		return c.werr
	}
	// Rotate the previous checkpoint out of the way first: if the new
	// write tears, recovery still finds an intact (if older) snapshot.
	primary := filepath.Join(c.dir, ckptFile)
	if _, err := os.Stat(primary); err == nil {
		if err := c.fs.Rename(primary, filepath.Join(c.dir, ckptPrevFile)); err != nil {
			c.werr = fmt.Errorf("journal: rotate checkpoint: %w", err)
			return c.werr
		}
	}
	if err := c.atomicWrite(ckptFile, b); err != nil {
		c.werr = err
		return c.werr
	}
	c.sinceCk = 0
	c.ckpts++
	return nil
}

// atomicWrite writes name under the campaign directory via the injected FS
// with the temp + fsync + rename + dir-fsync protocol (the FS-seam twin of
// logdb.AtomicWriteFile).
func (c *Campaign) atomicWrite(name string, data []byte) error {
	tmpPath := filepath.Join(c.dir, ckptTmpFile)
	tmp, err := c.fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := c.fs.Rename(tmpPath, filepath.Join(c.dir, name)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := c.fs.SyncDir(c.dir); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file. It does not write a final
// checkpoint — the campaign driver does that explicitly so the "final
// checkpoint on drain/finish" step is visible in one place.
func (c *Campaign) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return c.werr
	}
	var serr error
	if c.werr == nil {
		if err := c.f.Sync(); err != nil {
			serr = fmt.Errorf("journal: sync: %w", err)
		}
	}
	cerr := c.f.Close()
	c.f = nil
	if cerr != nil {
		cerr = fmt.Errorf("journal: close: %w", cerr)
	}
	return errors.Join(c.werr, serr, cerr)
}
