package logdb

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestAppendAndRead(t *testing.T) {
	var buf bytes.Buffer
	db := NewWriter(&buf)
	recs := []Record{
		{Experiment: "e1", Program: "p0", TestIndex: 0, Verdict: "counterexample", GenMicros: 12, ExeMicros: 34},
		{Experiment: "e1", Program: "p0", TestIndex: 1, Verdict: "indistinguishable"},
		{Experiment: "e1", Program: "p1", TestIndex: 0, PathA: 1, PathB: 1, Class: 61, Verdict: "inconclusive"},
	}
	for _, r := range recs {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 3 {
		t.Fatalf("len: %d", db.Len())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(Record{Experiment: "x", Verdict: "counterexample"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Experiment != "x" {
		t.Fatalf("loaded: %+v", recs)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("expected error")
	}
}

func TestBadLine(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{\"experiment\":\"a\"}\nnot json\n")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	db := NewWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = db.Append(Record{Experiment: "c", TestIndex: n*100 + j})
			}
		}(i)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 400 {
		t.Fatalf("records: %d", len(recs))
	}
}
