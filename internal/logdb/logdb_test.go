package logdb

import (
	"bufio"
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestAppendAndRead(t *testing.T) {
	var buf bytes.Buffer
	db := NewWriter(&buf)
	recs := []Record{
		{Experiment: "e1", Program: "p0", TestIndex: 0, Verdict: "counterexample", GenMicros: 12, ExeMicros: 34},
		{Experiment: "e1", Program: "p0", TestIndex: 1, Verdict: "indistinguishable"},
		{Experiment: "e1", Program: "p1", TestIndex: 0, PathA: 1, PathB: 1, Class: 61, Verdict: "inconclusive"},
	}
	for _, r := range recs {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 3 {
		t.Fatalf("len: %d", db.Len())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(Record{Experiment: "x", Verdict: "counterexample"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Experiment != "x" {
		t.Fatalf("loaded: %+v", recs)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("expected error")
	}
}

func TestBadLine(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{\"experiment\":\"a\"}\nnot json\n")); err == nil {
		t.Fatal("expected decode error")
	}
}

// errCloser counts Close calls and fails them.
type errCloser struct{ closed int }

func (c *errCloser) Close() error {
	c.closed++
	return errors.New("close failed")
}

// errWriter fails every write, so the bufio flush fails.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestClosePropagatesCloseError(t *testing.T) {
	// A clean flush must not swallow the underlying file's close error.
	c := &errCloser{}
	db := &DB{w: bufio.NewWriter(&bytes.Buffer{}), closer: c}
	if err := db.Append(Record{Experiment: "x"}); err != nil {
		t.Fatal(err)
	}
	err := db.Close()
	if err == nil || !strings.Contains(err.Error(), "close failed") {
		t.Fatalf("close error not propagated: %v", err)
	}
	if c.closed != 1 {
		t.Fatalf("closer called %d times", c.closed)
	}
}

func TestClosePropagatesBothErrors(t *testing.T) {
	// A failing flush must still close the file, and both errors surface.
	c := &errCloser{}
	db := &DB{w: bufio.NewWriter(errWriter{}), closer: c}
	if err := db.Append(Record{Experiment: "x"}); err != nil {
		t.Fatal(err)
	}
	err := db.Close()
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"disk full", "close failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if c.closed != 1 {
		t.Fatalf("file leaked: closer called %d times", c.closed)
	}
}

func TestReadRejectsPartialFinalLine(t *testing.T) {
	// A crash mid-append leaves a final line without its newline; the
	// truncated JSON must be rejected, not silently dropped or misparsed.
	var buf bytes.Buffer
	db := NewWriter(&buf)
	if err := db.Append(Record{Experiment: "ok", Verdict: "counterexample"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	partial := full + `{"experiment":"torn","verdict":"inco`
	if _, err := Read(strings.NewReader(partial)); err == nil {
		t.Fatal("partially-written final line must be rejected")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the torn line: %v", err)
	}
	// The intact prefix alone still reads back.
	recs, err := Read(strings.NewReader(full))
	if err != nil || len(recs) != 1 {
		t.Fatalf("intact log: %v, %d records", err, len(recs))
	}
}

func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	db := NewWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = db.Append(Record{Experiment: "c", TestIndex: n*100 + j})
			}
		}(i)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 400 {
		t.Fatalf("records: %d", len(recs))
	}
}
