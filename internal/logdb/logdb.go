// Package logdb is a small JSON-lines experiment log, standing in for the
// SQLite-based EmbExp-Logs database of the original Scam-V artifact: every
// executed experiment appends one record, and whole runs can be reloaded
// for offline analysis.
package logdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record describes one executed experiment.
type Record struct {
	Experiment string `json:"experiment"`
	Program    string `json:"program"`
	Asm        string `json:"asm,omitempty"`
	TestIndex  int    `json:"test_index"`
	PathA      int    `json:"path_a"`
	PathB      int    `json:"path_b"`
	Class      int    `json:"class"`
	Verdict    string `json:"verdict"`
	// Platform names the matrix-campaign platform this verdict was measured
	// on; empty for single-platform campaigns, so their logs are unchanged.
	Platform  string `json:"platform,omitempty"`
	GenMicros int64  `json:"gen_us"`
	ExeMicros int64  `json:"exe_us"`
	// Diff lists where the two states of the test case differ (register
	// names, plus "mem" when the initial memory images differ): the raw
	// material for the counterexample pattern analysis of the paper's §1.
	Diff []string `json:"diff,omitempty"`
}

// DB appends records to an underlying writer, one JSON object per line.
// It is safe for concurrent use.
type DB struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	n      int
}

// NewWriter wraps an arbitrary writer (e.g. a bytes.Buffer in tests).
func NewWriter(w io.Writer) *DB {
	return &DB{w: bufio.NewWriter(w)}
}

// Open creates (or truncates) a log file.
func Open(path string) (*DB, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("logdb: %w", err)
	}
	return &DB{w: bufio.NewWriter(f), closer: f}, nil
}

// Append writes one record.
func (d *DB) Append(r Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("logdb: %w", err)
	}
	if _, err := d.w.Write(b); err != nil {
		return fmt.Errorf("logdb: %w", err)
	}
	if err := d.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("logdb: %w", err)
	}
	d.n++
	return nil
}

// Len returns the number of appended records.
func (d *DB) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Close flushes and closes the underlying file, if any. The file is closed
// even when the flush fails, and both errors are propagated: a close error
// after a clean flush can still mean the kernel failed to persist buffered
// writes, so swallowing either would hide a truncated log.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ferr, cerr error
	if err := d.w.Flush(); err != nil {
		ferr = fmt.Errorf("logdb: flush: %w", err)
	}
	if d.closer != nil {
		if err := d.closer.Close(); err != nil {
			cerr = fmt.Errorf("logdb: close: %w", err)
		}
	}
	return errors.Join(ferr, cerr)
}

// Load reads all records from a log file.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logdb: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// ReadTolerant decodes records like Read but tolerates a torn final line
// (a crash or kill mid-append): the torn line is dropped and counted instead
// of failing the whole load, so offline analysis can still see the rest of
// the log while warning about the truncation. Malformed lines before the
// final one remain hard errors — those mean corruption, not truncation.
func ReadTolerant(r io.Reader) (recs []Record, torn int, err error) {
	var lines [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("logdb: %w", err)
	}
	last := -1
	for i := len(lines) - 1; i >= 0; i-- {
		if len(lines[i]) > 0 {
			last = i
			break
		}
	}
	for i, b := range lines {
		if len(b) == 0 {
			continue
		}
		var rec Record
		if uerr := json.Unmarshal(b, &rec); uerr != nil {
			if i == last {
				torn++
				break
			}
			return nil, 0, fmt.Errorf("logdb: line %d: %w", i+1, uerr)
		}
		recs = append(recs, rec)
	}
	return recs, torn, nil
}

// LoadTolerant reads a log file via ReadTolerant.
func LoadTolerant(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("logdb: %w", err)
	}
	defer f.Close()
	return ReadTolerant(f)
}

// Read decodes records from a reader.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("logdb: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logdb: %w", err)
	}
	return out, nil
}
