// Package logdb is a small JSON-lines experiment log, standing in for the
// SQLite-based EmbExp-Logs database of the original Scam-V artifact: every
// executed experiment appends one record, and whole runs can be reloaded
// for offline analysis.
package logdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// Record describes one executed experiment.
type Record struct {
	Experiment string `json:"experiment"`
	Program    string `json:"program"`
	Asm        string `json:"asm,omitempty"`
	TestIndex  int    `json:"test_index"`
	PathA      int    `json:"path_a"`
	PathB      int    `json:"path_b"`
	Class      int    `json:"class"`
	Verdict    string `json:"verdict"`
	// Platform names the matrix-campaign platform this verdict was measured
	// on; empty for single-platform campaigns, so their logs are unchanged.
	Platform  string `json:"platform,omitempty"`
	GenMicros int64  `json:"gen_us"`
	ExeMicros int64  `json:"exe_us"`
	// Diff lists where the two states of the test case differ (register
	// names, plus "mem" when the initial memory images differ): the raw
	// material for the counterexample pattern analysis of the paper's §1.
	Diff []string `json:"diff,omitempty"`
}

// Syncer is the optional durability hook of a DB's underlying writer: a
// writer that also implements Syncer (an *os.File does) gains real fsync
// through Commit and SyncAppend. Plain writers (a bytes.Buffer in tests)
// degrade to flush-only commits.
type Syncer interface {
	Sync() error
}

// DB appends records to an underlying writer, one JSON object per line.
// It is safe for concurrent use.
//
// Write errors are sticky: once any append or flush fails, every subsequent
// Append/SyncAppend/Commit returns the original error instead of silently
// continuing. Without the latch, a failed flush could leave a partial line
// in the file and a later successful append would splice its record onto
// the torn tail — corrupting the line in a way the tolerant reader cannot
// distinguish from a clean crash. With it, the file ends at the torn line,
// which is exactly the shape ReadTolerant is specified to recover from.
type DB struct {
	mu     sync.Mutex
	w      *bufio.Writer
	sync   Syncer // non-nil when the underlying writer supports fsync
	closer io.Closer
	n      int
	werr   error // first write error, sticky
}

// NewWriter wraps an arbitrary writer (e.g. a bytes.Buffer in tests). A
// writer implementing Syncer makes Commit and SyncAppend durable.
func NewWriter(w io.Writer) *DB {
	d := &DB{w: bufio.NewWriter(w)}
	if s, ok := w.(Syncer); ok {
		d.sync = s
	}
	if c, ok := w.(io.Closer); ok {
		d.closer = c
	}
	return d
}

// Open creates (or truncates) a log file.
func Open(path string) (*DB, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("logdb: %w", err)
	}
	return &DB{w: bufio.NewWriter(f), sync: f, closer: f}, nil
}

// Append writes one record.
func (d *DB) Append(r Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appendLocked(r)
}

func (d *DB) appendLocked(r Record) error {
	if d.werr != nil {
		return d.werr
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("logdb: %w", err)
	}
	if _, err := d.w.Write(b); err != nil {
		d.werr = fmt.Errorf("logdb: %w", err)
		return d.werr
	}
	if err := d.w.WriteByte('\n'); err != nil {
		d.werr = fmt.Errorf("logdb: %w", err)
		return d.werr
	}
	d.n++
	return nil
}

// Commit flushes buffered records to the underlying writer and, when it
// supports Syncer, fsyncs them to stable storage. A commit failure latches
// the sticky write error.
func (d *DB) Commit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.commitLocked()
}

func (d *DB) commitLocked() error {
	if d.werr != nil {
		return d.werr
	}
	if err := d.w.Flush(); err != nil {
		d.werr = fmt.Errorf("logdb: flush: %w", err)
		return d.werr
	}
	if d.sync != nil {
		if err := d.sync.Sync(); err != nil {
			d.werr = fmt.Errorf("logdb: sync: %w", err)
			return d.werr
		}
	}
	return nil
}

// SyncAppend appends one record and commits it durably in a single critical
// section: when it returns nil, the record's line is flushed and (for
// Syncer-backed writers) fsynced. The write-ahead unit of internal/journal.
func (d *DB) SyncAppend(r Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.appendLocked(r); err != nil {
		return err
	}
	return d.commitLocked()
}

// Err returns the sticky write error, if any.
func (d *DB) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.werr
}

// Len returns the number of appended records.
func (d *DB) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Close flushes and closes the underlying file, if any. The file is closed
// even when the flush fails, and both errors are propagated along with any
// earlier sticky write error: a close error after a clean flush can still
// mean the kernel failed to persist buffered writes, so swallowing either
// would hide a truncated log.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ferr, cerr error
	if d.werr == nil {
		if err := d.w.Flush(); err != nil {
			ferr = fmt.Errorf("logdb: flush: %w", err)
		}
	}
	if d.closer != nil {
		if err := d.closer.Close(); err != nil {
			cerr = fmt.Errorf("logdb: close: %w", err)
		}
	}
	return errors.Join(d.werr, ferr, cerr)
}

// AtomicWriteFile writes data to path with crash atomicity: the bytes land
// in a temporary file in path's directory, are fsynced, and the temp file is
// renamed over path, followed by an fsync of the directory so the rename
// itself is durable. A reader (or a crash recovery) therefore sees either
// the complete old content or the complete new content, never a torn mix —
// the write-temp+fsync+rename contract internal/journal's checkpoints and
// the future scamv-d result uploads build on.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return fmt.Errorf("logdb: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("logdb: atomic write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("logdb: atomic write: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("logdb: atomic write: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Filesystems that cannot sync directories (some network mounts) report
// EINVAL; that is the platform's ceiling, not a caller bug, so it is not
// treated as an error.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("logdb: sync dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("logdb: sync dir: %w", err)
	}
	return nil
}

// Load reads all records from a log file.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logdb: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// ReadTolerant decodes records like Read but tolerates a torn final line
// (a crash or kill mid-append): the torn line is dropped and counted instead
// of failing the whole load, so offline analysis can still see the rest of
// the log while warning about the truncation. Malformed lines before the
// final one remain hard errors — those mean corruption, not truncation.
func ReadTolerant(r io.Reader) (recs []Record, torn int, err error) {
	var lines [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("logdb: %w", err)
	}
	last := -1
	for i := len(lines) - 1; i >= 0; i-- {
		if len(lines[i]) > 0 {
			last = i
			break
		}
	}
	for i, b := range lines {
		if len(b) == 0 {
			continue
		}
		var rec Record
		if uerr := json.Unmarshal(b, &rec); uerr != nil {
			if i == last {
				torn++
				break
			}
			return nil, 0, fmt.Errorf("logdb: line %d: %w", i+1, uerr)
		}
		recs = append(recs, rec)
	}
	return recs, torn, nil
}

// LoadTolerant reads a log file via ReadTolerant.
func LoadTolerant(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("logdb: %w", err)
	}
	defer f.Close()
	return ReadTolerant(f)
}

// Read decodes records from a reader.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("logdb: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logdb: %w", err)
	}
	return out, nil
}
