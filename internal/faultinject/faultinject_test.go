package faultinject

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/core"
	"scamv/internal/expr"
	"scamv/internal/micro"
	"scamv/internal/resilient"
)

// stubPlatform is a healthy inner platform with a recognizable measurement.
type stubPlatform struct{ calls int }

func (s *stubPlatform) Execute(_ context.Context, _ *scamv.Experiment, _ *arm.Program, _, _ *core.State, _ *rand.Rand) (scamv.Measurement, error) {
	s.calls++
	return scamv.Measurement{
		Cycles:   100,
		Snapshot: &micro.Snapshot{Sets: map[int][]uint64{3: {0x40, 0x41}}},
	}, nil
}

func testProg(name string) *arm.Program { return &arm.Program{Name: name} }

func testState(x0 uint64) *core.State {
	return &core.State{
		Regs: map[string]uint64{"x0": x0, "x1": 7},
		Mem:  &expr.MemModel{Default: 0xab, Data: map[uint64]uint64{0x1000: x0}},
	}
}

// drawSchedule replays the fault schedule for a list of calls.
func drawSchedule(f *Platform, progs []*arm.Program, states []*core.State) []Kind {
	var out []Kind
	for i := range progs {
		out = append(out, f.draw(progs[i], states[i]))
	}
	return out
}

func TestScheduleDeterministicAcrossInstances(t *testing.T) {
	prof, err := Named("heavy")
	if err != nil {
		t.Fatal(err)
	}
	var progs []*arm.Program
	var states []*core.State
	for i := 0; i < 200; i++ {
		progs = append(progs, testProg("p"))
		states = append(states, testState(uint64(i)))
	}
	a := New(nil, prof, 42)
	b := New(nil, prof, 42)
	sa := drawSchedule(a, progs, states)
	sb := drawSchedule(b, progs, states)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("call %d: schedule diverged across instances: %v vs %v", i, sa[i], sb[i])
		}
	}
	// A different seed must produce a different schedule (with 200 draws under
	// the heavy profile, a collision over the full sequence is implausible).
	c := New(nil, prof, 43)
	sc := drawSchedule(c, progs, states)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-call schedules")
	}
	// And the heavy profile must actually inject something.
	injected := false
	for _, k := range sa {
		if k != None {
			injected = true
		}
	}
	if !injected {
		t.Fatal("heavy profile injected no faults in 200 calls")
	}
}

func TestRetryAdvancesSchedule(t *testing.T) {
	// With TransientProb = 1 downgraded per attempt: use a profile where the
	// first draw for some identity is Transient, and check the retry (same
	// identity, attempt 2) draws independently — i.e. the per-identity
	// counter advances the schedule rather than replaying the same fault.
	prof := Profile{Name: "t", TransientProb: 0.5}
	f := New(nil, prof, 7)
	prog, st := testProg("p"), testState(1)
	const n = 64
	kinds := make([]Kind, n)
	for i := range kinds {
		kinds[i] = f.draw(prog, st)
	}
	// All draws share one identity; if the counter were ignored they would
	// all be equal.
	varied := false
	for i := 1; i < n; i++ {
		if kinds[i] != kinds[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("64 draws of the same identity all returned %v: attempt counter not advancing", kinds[0])
	}
}

func TestTransientClearsUnderRetry(t *testing.T) {
	// End to end: a platform with a sizable transient rate must still let
	// resilient.Do succeed within a reasonable retry budget, because retries
	// advance the schedule.
	prof := Profile{Name: "t", TransientProb: 0.5}
	inner := &stubPlatform{}
	f := New(inner, prof, 3)
	e := &scamv.Experiment{}
	prog, st := testProg("p"), testState(1)
	p := resilient.Policy{Retries: 16, Sleep: func(context.Context, time.Duration) error { return nil }}
	_, _, err := resilient.Do(context.Background(), p, func(ctx context.Context) (scamv.Measurement, error) {
		return f.Execute(ctx, e, prog, st, st, nil)
	})
	if err != nil {
		t.Fatalf("transient faults did not clear under retry: %v", err)
	}
	if inner.calls == 0 {
		t.Fatal("inner platform never reached")
	}
}

func TestFaultClassification(t *testing.T) {
	inner := &stubPlatform{}
	e := &scamv.Experiment{}
	prog, st := testProg("p"), testState(1)

	ft := New(inner, Profile{Name: "t", TransientProb: 1}, 1)
	_, err := ft.Execute(context.Background(), e, prog, st, st, nil)
	if err == nil || resilient.Classify(err) != resilient.Transient {
		t.Fatalf("TransientProb=1: got err %v (class %v), want transient", err, resilient.Classify(err))
	}

	fp := New(inner, Profile{Name: "p", PermanentProb: 1}, 1)
	_, err = fp.Execute(context.Background(), e, prog, st, st, nil)
	if err == nil || resilient.Classify(err) != resilient.Permanent {
		t.Fatalf("PermanentProb=1: got err %v (class %v), want permanent", err, resilient.Classify(err))
	}
}

func TestHangHonorsContext(t *testing.T) {
	inner := &stubPlatform{}
	f := New(inner, Profile{Name: "h", HangProb: 1}, 1) // HangFor 0: hang until cancel
	e := &scamv.Experiment{}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := f.Execute(ctx, e, testProg("p"), testState(1), testState(1), nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("hang returned %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not honor context cancellation")
	}
	if inner.calls != 0 {
		t.Fatal("unbounded hang reached the inner platform")
	}
}

func TestBoundedHangFallsThrough(t *testing.T) {
	inner := &stubPlatform{}
	f := New(inner, Profile{Name: "h", HangProb: 1, HangFor: time.Millisecond}, 1)
	e := &scamv.Experiment{}
	m, err := f.Execute(context.Background(), e, testProg("p"), testState(1), testState(1), nil)
	if err != nil {
		t.Fatalf("bounded hang failed: %v", err)
	}
	if m.Cycles != 100 {
		t.Fatalf("bounded hang did not fall through to the real execution: cycles %d", m.Cycles)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}
}

func TestCorruptIsDistinguishable(t *testing.T) {
	inner := &stubPlatform{}
	f := New(inner, Profile{Name: "c", CorruptProb: 1}, 1)
	e := &scamv.Experiment{}
	clean, err := inner.Execute(context.Background(), e, testProg("p"), testState(1), testState(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Execute(context.Background(), e, testProg("p"), testState(1), testState(1), nil)
	if err != nil {
		t.Fatalf("corrupt execution failed: %v", err)
	}
	if !got.Distinguishable(clean, true) {
		t.Fatal("corrupted measurement is indistinguishable from the clean one")
	}
	// The original snapshot must not be mutated in place.
	if clean.Snapshot.Sets[3][0] != 0x40 {
		t.Fatal("corrupt mutated the inner measurement's snapshot")
	}

	// An empty snapshot grows a phantom line instead of staying equal.
	out := corrupt(scamv.Measurement{Cycles: 5, Snapshot: &micro.Snapshot{Sets: map[int][]uint64{}}})
	if len(out.Snapshot.Sets[0]) == 0 {
		t.Fatal("corrupting an empty snapshot produced no phantom line")
	}
}

func TestNamedProfiles(t *testing.T) {
	for _, name := range []string{"", "off", "light", "heavy"} {
		if _, err := Named(name); err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
	}
	if _, err := Named("nope"); err == nil {
		t.Fatal("Named(nope) did not fail")
	}
	h, _ := Named("heavy")
	if sum := h.TransientProb + h.PermanentProb + h.HangProb + h.CorruptProb; sum > 1 {
		t.Fatalf("heavy profile probabilities sum to %v > 1", sum)
	}
}

func TestCounts(t *testing.T) {
	inner := &stubPlatform{}
	f := New(inner, Profile{Name: "t", TransientProb: 1}, 1)
	e := &scamv.Experiment{}
	for i := 0; i < 5; i++ {
		_, _ = f.Execute(context.Background(), e, testProg("p"), testState(uint64(i)), nil, nil)
	}
	c := f.Counts()
	if c.Calls != 5 || c.Transients != 5 {
		t.Fatalf("counts = %+v, want 5 calls / 5 transients", c)
	}
}
