package faultinject

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"syscall"

	"scamv/internal/journal"
)

// This file is the filesystem half of the chaos harness: a journal.FS
// wrapper that injects the storage failure modes a long campaign meets in
// the wild — a full disk (ENOSPC), a short write, a failing fsync, and the
// classic ext4 torn-rename hazard (rename published before the data it
// points at reached the platter). The journal and logdb recovery paths are
// specified against exactly these faults; FaultFS is what turns the
// specification into teeth tests.

// FSPlan schedules filesystem faults by 1-based global operation number
// (0 = never). Counting is per-FaultFS and deterministic for a serial
// caller, which the journal is: appends and checkpoints run under one lock.
type FSPlan struct {
	// FailWriteAt fails the Nth file write with ENOSPC before any bytes land.
	FailWriteAt uint64
	// ShortWriteAt writes only half the Nth file write's bytes, then fails
	// with ENOSPC — the torn-line generator.
	ShortWriteAt uint64
	// FailSyncAt fails the Nth fsync with EIO: the data may or may not be
	// durable, the caller must assume not.
	FailSyncAt uint64
	// TornRenameAt truncates the rename source to half its size before the
	// Nth rename succeeds: the crash window where a filesystem without
	// fsync-before-rename ordering publishes a name pointing at torn data.
	TornRenameAt uint64
}

// FaultFS wraps an inner journal.FS (nil = the real filesystem) with an
// FSPlan. Safe for concurrent use; operation numbers are global across all
// files it opened.
type FaultFS struct {
	inner journal.FS
	plan  FSPlan

	writes  atomic.Uint64
	syncs   atomic.Uint64
	renames atomic.Uint64
}

// NewFaultFS builds the fault-injecting filesystem.
func NewFaultFS(inner journal.FS, plan FSPlan) *FaultFS {
	if inner == nil {
		inner = journal.OSFS{}
	}
	return &FaultFS{inner: inner, plan: plan}
}

// MkdirAll implements journal.FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Create implements journal.FS.
func (f *FaultFS) Create(name string) (journal.File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// OpenAppend implements journal.FS.
func (f *FaultFS) OpenAppend(name string) (journal.File, error) {
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements journal.FS, injecting the torn-rename hazard.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if n := f.renames.Add(1); f.plan.TornRenameAt != 0 && n == f.plan.TornRenameAt {
		if st, err := os.Stat(oldpath); err == nil {
			if err := os.Truncate(oldpath, st.Size()/2); err != nil {
				return fmt.Errorf("faultinject: torn rename: %w", err)
			}
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements journal.FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// Truncate implements journal.FS.
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// SyncDir implements journal.FS.
func (f *FaultFS) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

// faultFile counts writes/syncs against the parent plan.
type faultFile struct {
	fs    *FaultFS
	inner journal.File
}

// Write implements io.Writer with injected ENOSPC and short writes.
func (f *faultFile) Write(p []byte) (int, error) {
	n := f.fs.writes.Add(1)
	if f.fs.plan.FailWriteAt != 0 && n == f.fs.plan.FailWriteAt {
		return 0, fmt.Errorf("faultinject: injected write fault: %w", syscall.ENOSPC)
	}
	if f.fs.plan.ShortWriteAt != 0 && n == f.fs.plan.ShortWriteAt {
		half := len(p) / 2
		if wn, err := f.inner.Write(p[:half]); err != nil {
			return wn, err
		}
		return half, fmt.Errorf("faultinject: injected short write: %w", syscall.ENOSPC)
	}
	return f.inner.Write(p)
}

// Sync implements journal.File with injected fsync failures.
func (f *faultFile) Sync() error {
	n := f.fs.syncs.Add(1)
	if f.fs.plan.FailSyncAt != 0 && n == f.fs.plan.FailSyncAt {
		return fmt.Errorf("faultinject: injected fsync fault: %w", syscall.EIO)
	}
	return f.inner.Sync()
}

// Close implements journal.File.
func (f *faultFile) Close() error { return f.inner.Close() }

// FaultWriter adapts one standalone faultFile-style writer around an
// arbitrary file for logdb-level injection: logdb.NewWriter type-asserts
// Syncer, so wrapping the *os.File in a FaultWriter routes both the data
// path and the fsync path through the plan.
type FaultWriter struct {
	f *faultFile
}

// NewFaultWriter wraps an open file with a fresh single-file plan.
func NewFaultWriter(inner journal.File, plan FSPlan) *FaultWriter {
	return &FaultWriter{f: &faultFile{fs: NewFaultFS(nil, plan), inner: inner}}
}

// Write implements io.Writer.
func (w *FaultWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

// Sync implements logdb.Syncer.
func (w *FaultWriter) Sync() error { return w.f.Sync() }

// Close implements io.Closer.
func (w *FaultWriter) Close() error { return w.f.Close() }

var _ io.Writer = (*FaultWriter)(nil)
