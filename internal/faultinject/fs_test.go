package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"scamv/internal/journal"
	"scamv/internal/logdb"
)

func jrec(p int) journal.ProgramRecord {
	return journal.ProgramRecord{Prog: p, Experiments: 5, FirstCETest: -1}
}

// TestTornCheckpointFallsBackToPrevious is the teeth test of the checkpoint
// recovery chain: a rename that publishes torn data (the no-fsync-ordering
// hazard FaultFS models) must be detected via the completeness marker and
// recovery must use the previous checkpoint — never the torn one.
func TestTornCheckpointFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	// Checkpoint after every append. Rename schedule: ckpt1 = #1 (tmp→ckpt);
	// ckpt2 = #2 (rotate), #3 (tmp→ckpt); ckpt3 = #4 (rotate), #5 (tmp→ckpt).
	// Tearing rename #5 leaves checkpoint.json truncated mid-JSON while
	// checkpoint.prev.json (2 programs) stays intact.
	ffs := NewFaultFS(nil, FSPlan{TornRenameAt: 5})
	c, err := journal.Open(dir, "camp", journal.Options{Every: 1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin("camp", "fp"); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if _, err := c.Append(jrec(p)); err != nil {
			t.Fatalf("append %d: %v", p, err)
		}
	}
	c.Close()

	cdir := filepath.Join(dir, "camp")
	raw, err := os.ReadFile(filepath.Join(cdir, "checkpoint.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(strings.TrimSpace(string(raw)), "}") {
		t.Fatalf("checkpoint.json should be torn, got intact JSON (%d bytes)", len(raw))
	}

	// With the journal intact, it outranks both checkpoints: full recovery.
	r, err := journal.Open(dir, "camp", journal.Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Restored()); n != 3 {
		t.Fatalf("journal-backed recovery restored %d, want 3", n)
	}
	r.Close()

	// Without the journal, the torn primary must be rejected and the
	// previous checkpoint used instead.
	if err := os.Remove(filepath.Join(cdir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
	r2, err := journal.Open(dir, "camp", journal.Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r2.Restored()); n != 2 {
		t.Fatalf("fallback recovery restored %d, want 2 (previous checkpoint)", n)
	}
	if err := r2.Begin("camp", "fp"); err != nil {
		t.Fatal(err)
	}
	r2.Close()
}

// TestJournalAppendENOSPCIsStickyAndClean: a full disk fails the append
// loudly, later appends keep failing (no silent gap), and what reached the
// disk before the fault is still a loadable prefix.
func TestJournalAppendENOSPCIsStickyAndClean(t *testing.T) {
	dir := t.TempDir()
	// Write #1 is the header; appends are one write each.
	ffs := NewFaultFS(nil, FSPlan{FailWriteAt: 3})
	c, err := journal.Open(dir, "camp", journal.Options{Every: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin("camp", "fp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(jrec(0)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Append(jrec(1))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err2 := c.Append(jrec(2)); !errors.Is(err2, syscall.ENOSPC) {
		t.Fatalf("sticky error lost: %v", err2)
	}
	c.Close()
	r, err := journal.Open(dir, "camp", journal.Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Restored()); n != 1 {
		t.Fatalf("restored %d, want 1 (the pre-fault prefix)", n)
	}
	r.Close()
}

// TestJournalShortWriteLeavesRecoverableTornLine: a short write tears the
// final line; resume drops it and the campaign redoes that one program.
func TestJournalShortWriteLeavesRecoverableTornLine(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FSPlan{ShortWriteAt: 3})
	c, err := journal.Open(dir, "camp", journal.Options{Every: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin("camp", "fp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(jrec(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(jrec(1)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC after short write, got %v", err)
	}
	c.Close()
	r, err := journal.Open(dir, "camp", journal.Options{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Begin("camp", "fp"); err != nil {
		t.Fatal(err)
	}
	if n := len(r.Restored()); n != 1 {
		t.Fatalf("restored %d, want 1 (torn line dropped)", n)
	}
	// The repaired journal accepts the redo of program 1.
	if _, err := r.Append(jrec(1)); err != nil {
		t.Fatal(err)
	}
	r.Close()
}

// TestJournalFsyncFailureSurfaces: an fsync failure means the record may not
// be durable; Append must say so rather than report success.
func TestJournalFsyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	// Sync #1 covers the header; sync #2 is append 0.
	ffs := NewFaultFS(nil, FSPlan{FailSyncAt: 2})
	c, err := journal.Open(dir, "camp", journal.Options{Every: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin("camp", "fp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(jrec(0)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO from injected fsync fault, got %v", err)
	}
}

// TestLogdbStickyWriteErrorUnderFault pins the logdb satellite fix: after a
// failed flush, every subsequent Append/Commit surfaces the original error
// instead of silently buffering records that can never be written — the
// partial-line interleave hazard.
func TestLogdbStickyWriteErrorUnderFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	db := logdb.NewWriter(NewFaultWriter(f, FSPlan{ShortWriteAt: 1}))
	if err := db.Append(logdb.Record{Experiment: "e", Verdict: "indistinguishable"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC from first commit, got %v", err)
	}
	if err := db.Append(logdb.Record{Experiment: "e2"}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append after failed flush must surface the sticky error, got %v", err)
	}
	if err := db.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Err() = %v, want sticky ENOSPC", err)
	}
	if err := db.Close(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Close must propagate the sticky error, got %v", err)
	}
	// Nothing after the torn half-line may have reached the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "e2") {
		t.Fatalf("record appended after failed flush leaked to disk: %q", data)
	}
}

// TestLogdbSyncAppendDurable: SyncAppend on a healthy file commits the line.
func TestLogdbSyncAppendDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	db, err := logdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SyncAppend(logdb.Record{Experiment: "e", Verdict: "counterexample"}); err != nil {
		t.Fatal(err)
	}
	// Durable before Close: readable by an independent reader right now.
	recs, err := logdb.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Verdict != "counterexample" {
		t.Fatalf("SyncAppend not visible before Close: %+v", recs)
	}
	db.Close()
}
