// Package faultinject is the chaos harness of the resilient campaign
// runtime: a Platform wrapper that injects the failure modes of a real
// board farm — transient errors (a flaky reset), permanent errors (a dead
// board), context-aware hangs (a wedged debug bridge), and corrupted
// measurements (a torn read) — on a deterministic, seed-derived schedule.
//
// Determinism is the whole point: the fault drawn for a call is a pure
// function of (experiment seed, call identity, per-identity attempt count),
// mixed through splitmix64. The identity hashes the program name and the
// executed state, so the schedule does not depend on goroutine scheduling,
// and the attempt counter advances per retry, so a "transient" fault really
// is transient. The same seed and profile therefore produce the same
// campaign Result under FailPolicy Degrade on either engine — the property
// the chaos golden test pins.
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/core"
	"scamv/internal/micro"
	"scamv/internal/resilient"
)

// Kind is one injected fault class.
type Kind int

// Fault kinds.
const (
	None Kind = iota
	// Transient fails the call with a retryable error.
	Transient
	// Permanent fails the call with a non-retryable error.
	Permanent
	// Hang blocks until the context is cancelled (or HangFor elapses, when
	// set), modeling a wedged board; an expired HangFor falls through to a
	// real execution, modeling a slow-but-alive one.
	Hang
	// Corrupt executes for real but returns a torn measurement: the cycle
	// count and one cache tag are perturbed.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	}
	return "none"
}

// Profile is one chaos intensity setting: the marginal probability of each
// fault kind per platform call. The kinds are drawn from one uniform sample
// in the listed order, so the probabilities must sum to at most 1.
type Profile struct {
	Name          string
	TransientProb float64
	PermanentProb float64
	HangProb      float64
	CorruptProb   float64
	// HangFor bounds an injected hang; 0 hangs until the context is
	// cancelled (which requires an ExecTimeout or campaign cancellation to
	// ever finish).
	HangFor time.Duration
}

// Named returns a built-in chaos profile: "off" (no faults), "light"
// (occasional transients and corruption), or "heavy" (the aggressive
// profile of make chaos-smoke: frequent transients, some permanents,
// bounded hangs, corruption).
func Named(name string) (Profile, error) {
	switch name {
	case "off", "":
		return Profile{Name: "off"}, nil
	case "light":
		return Profile{
			Name:          "light",
			TransientProb: 0.05,
			CorruptProb:   0.02,
		}, nil
	case "heavy":
		return Profile{
			Name:          "heavy",
			TransientProb: 0.25,
			PermanentProb: 0.05,
			HangProb:      0.05,
			CorruptProb:   0.10,
			HangFor:       time.Millisecond,
		}, nil
	}
	return Profile{}, fmt.Errorf("faultinject: unknown chaos profile %q (want off, light, or heavy)", name)
}

// Counts is a snapshot of the faults a Platform has injected.
type Counts struct {
	Calls      uint64
	Transients uint64
	Permanents uint64
	Hangs      uint64
	Corrupts   uint64
}

// Platform wraps an inner scamv.Platform with seed-scheduled fault
// injection. Safe for concurrent use.
type Platform struct {
	inner scamv.Platform
	prof  Profile
	seed  uint64

	mu    sync.Mutex
	calls map[uint64]uint64 // per-identity attempt counter

	calln      atomic.Uint64
	transients atomic.Uint64
	permanents atomic.Uint64
	hangs      atomic.Uint64
	corrupts   atomic.Uint64
}

// New wraps inner (nil = scamv.SimPlatform) with the given profile, its
// schedule derived from seed. Wrap the experiment seed so -seed reproduces
// the chaos along with everything else.
func New(inner scamv.Platform, prof Profile, seed int64) *Platform {
	if inner == nil {
		inner = scamv.SimPlatform{}
	}
	return &Platform{
		inner: inner,
		prof:  prof,
		seed:  resilient.Splitmix64(uint64(seed) ^ 0xc4a05),
		calls: make(map[uint64]uint64),
	}
}

// Counts snapshots the injected-fault counters.
func (f *Platform) Counts() Counts {
	return Counts{
		Calls:      f.calln.Load(),
		Transients: f.transients.Load(),
		Permanents: f.permanents.Load(),
		Hangs:      f.hangs.Load(),
		Corrupts:   f.corrupts.Load(),
	}
}

// identity hashes the call's program and executed state: the same logical
// call — however scheduled, whichever engine — gets the same identity.
// The noise RNG is deliberately excluded (it is not comparable) and the
// training state is covered by st via the test case's determinism.
func identity(prog *arm.Program, st *core.State) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, prog.Name)
	regs := make([]string, 0, len(st.Regs))
	for r := range st.Regs {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	for _, r := range regs {
		fmt.Fprintf(h, "|%s=%x", r, st.Regs[r])
	}
	if st.Mem != nil {
		fmt.Fprintf(h, "|def=%x", st.Mem.Default)
		addrs := make([]uint64, 0, len(st.Mem.Data))
		for a := range st.Mem.Data {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(h, "|%x:%x", a, st.Mem.Data[a])
		}
	}
	return h.Sum64()
}

// draw picks the fault for this call: identity ^ per-identity attempt
// number, mixed with the schedule seed. The attempt counter makes retries
// of the same call advance through the schedule — a transient fault clears
// on a later attempt instead of repeating forever.
func (f *Platform) draw(prog *arm.Program, st *core.State) Kind {
	id := identity(prog, st)
	f.mu.Lock()
	n := f.calls[id]
	f.calls[id] = n + 1
	f.mu.Unlock()
	h := resilient.Splitmix64(f.seed ^ resilient.Splitmix64(id+n*0x9e3779b97f4a7c15))
	u := float64(h>>11) / (1 << 53) // uniform in [0, 1)
	switch {
	case u < f.prof.TransientProb:
		return Transient
	case u < f.prof.TransientProb+f.prof.PermanentProb:
		return Permanent
	case u < f.prof.TransientProb+f.prof.PermanentProb+f.prof.HangProb:
		return Hang
	case u < f.prof.TransientProb+f.prof.PermanentProb+f.prof.HangProb+f.prof.CorruptProb:
		return Corrupt
	}
	return None
}

// Execute implements scamv.Platform.
func (f *Platform) Execute(ctx context.Context, e *scamv.Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (scamv.Measurement, error) {
	f.calln.Add(1)
	switch f.draw(prog, st) {
	case Transient:
		f.transients.Add(1)
		return scamv.Measurement{}, resilient.MarkTransient(
			fmt.Errorf("faultinject: injected transient fault (%s)", prog.Name))
	case Permanent:
		f.permanents.Add(1)
		return scamv.Measurement{}, resilient.MarkPermanent(
			fmt.Errorf("faultinject: injected permanent fault (%s)", prog.Name))
	case Hang:
		f.hangs.Add(1)
		if f.prof.HangFor <= 0 {
			<-ctx.Done()
			return scamv.Measurement{}, ctx.Err()
		}
		t := time.NewTimer(f.prof.HangFor)
		select {
		case <-ctx.Done():
			t.Stop()
			return scamv.Measurement{}, ctx.Err()
		case <-t.C:
			// Slow but alive: fall through to the real execution.
		}
	case Corrupt:
		f.corrupts.Add(1)
		m, err := f.inner.Execute(ctx, e, prog, st, train, noise)
		if err != nil {
			return m, err
		}
		return corrupt(m), nil
	}
	return f.inner.Execute(ctx, e, prog, st, train, noise)
}

// corrupt models a torn measurement: the cycle counter's low bit flips and
// one cached tag is perturbed (or a phantom line appears in an empty cache).
// The corruption is value-deterministic — derived from the measurement
// itself — so a corrupted call is reproducible like every other fault.
func corrupt(m scamv.Measurement) scamv.Measurement {
	out := scamv.Measurement{Cycles: m.Cycles ^ 1}
	if m.Snapshot == nil {
		return out
	}
	sets := make(map[int][]uint64, len(m.Snapshot.Sets))
	for set, tags := range m.Snapshot.Sets {
		sets[set] = append([]uint64(nil), tags...)
	}
	perturbed := false
	// Flip the first tag of the lowest populated set (map iteration is not
	// deterministic, so pick by order, not by range).
	lo := -1
	for set, tags := range sets {
		if len(tags) > 0 && (lo == -1 || set < lo) {
			lo = set
		}
	}
	if lo >= 0 {
		sets[lo][0] ^= 1
		perturbed = true
	}
	if !perturbed {
		// Empty view: invent a phantom line.
		sets[0] = []uint64{0xdead}
	}
	out.Snapshot = &micro.Snapshot{Sets: sets}
	return out
}
