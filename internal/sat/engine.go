package sat

import "context"

// Engine is the solving interface shared by a single CDCL Solver and a
// Portfolio of diversified workers. The bit-blaster and the SMT layer
// program against it, so a campaign can swap a portfolio in underneath an
// unchanged encoding.
type Engine interface {
	// NewVar allocates a fresh variable and returns its index.
	NewVar() int
	// NumVars returns the number of allocated variables.
	NumVars() int
	// AddClause adds a clause; it returns false when the formula becomes
	// trivially unsatisfiable.
	AddClause(lits ...Lit) bool
	// BoostVar raises a variable's initial branching activity.
	BoostVar(v int, amount float64)
	// Solve searches under the given assumptions.
	Solve(assumptions ...Lit) Status
	// Value reads variable v in the most recent model.
	Value(v int) bool
	// Model copies the most recent satisfying assignment.
	Model() []bool
	// ResetSearch rewinds search heuristics to their initial state.
	ResetSearch(seed int64)
	// SetContext installs a cancellation context for subsequent Solves.
	SetContext(ctx context.Context)
	// Stats snapshots cumulative search counters.
	Stats() Stats
}

var (
	_ Engine = (*Solver)(nil)
	_ Engine = (*Portfolio)(nil)
)
