package sat

import (
	"context"
	"sync"
)

// Clause-sharing defaults: only short clauses travel (long learnt clauses
// rarely help another search and cost import time), and the pool stops
// growing at a fixed bound so a pathological query cannot hoard memory.
const (
	DefaultShareMaxLen  = 8
	DefaultShareMaxPool = 16384
)

// ClauseShare is an append-only pool of learnt clauses exchanged between
// the helper workers of a Portfolio. Workers export short learnt clauses at
// restart boundaries and import (their own cursor's worth of) foreign
// clauses at the same points. Entries are immutable once appended, so a
// fetched batch can be read without holding the lock.
//
// Soundness contract: every exported clause must be implied by the shared
// problem clauses. The portfolio-vs-brute differential in internal/oracle
// exists precisely to catch a pool that violates this (a "lying worker").
type ClauseShare struct {
	mu      sync.Mutex
	pool    [][]Lit
	maxLen  int
	maxPool int
}

// NewClauseShare builds a pool; non-positive limits select the defaults.
func NewClauseShare(maxLen, maxPool int) *ClauseShare {
	if maxLen <= 0 {
		maxLen = DefaultShareMaxLen
	}
	if maxPool <= 0 {
		maxPool = DefaultShareMaxPool
	}
	return &ClauseShare{maxLen: maxLen, maxPool: maxPool}
}

// Export offers a clause to the pool. It returns false when the clause is
// too long or the pool is full. The literals are copied.
func (cs *ClauseShare) Export(lits []Lit) bool {
	if len(lits) == 0 || len(lits) > cs.maxLen {
		return false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.pool) >= cs.maxPool {
		return false
	}
	cs.pool = append(cs.pool, append([]Lit(nil), lits...))
	return true
}

// fetch returns the clauses appended since cursor and the new cursor.
func (cs *ClauseShare) fetch(cursor int) ([][]Lit, int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.pool[cursor:len(cs.pool):len(cs.pool)], len(cs.pool)
}

// Size reports how many clauses the pool holds.
func (cs *ClauseShare) Size() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.pool)
}

// reset empties the pool. The backing array is dropped rather than truncated
// so batches fetched before the reset stay valid. Callers must ensure no
// worker is mid-search (Portfolio resets only between queries, with all
// worker goroutines joined).
func (cs *ClauseShare) reset() {
	cs.mu.Lock()
	cs.pool = nil
	cs.mu.Unlock()
}

// attachShare wires a worker to a pool. Importing workers pick up foreign
// clauses at restarts; all attached workers export.
func (s *Solver) attachShare(cs *ClauseShare, imports bool) {
	s.share = cs
	s.shareImport = imports
	s.shareMaxLen = cs.maxLen
	s.shareCursor = 0
	s.lastExport = len(s.heads)
}

// shareSync runs at a restart boundary (decision level 0): export fresh
// short learnt clauses, then import foreign ones. It returns false when an
// imported clause produces a top-level conflict, i.e. the formula is unsat
// (assuming a sound pool).
func (s *Solver) shareSync() bool {
	for ci := s.lastExport; ci < len(s.heads); ci++ {
		h := s.heads[ci]
		if h.learnt && int(h.size) <= s.shareMaxLen {
			if s.share.Export(s.arena[h.off : h.off+h.size]) {
				s.SharedOut++
			}
		}
	}
	s.lastExport = len(s.heads)
	if !s.shareImport {
		return true
	}
	batch, cur := s.share.fetch(s.shareCursor)
	s.shareCursor = cur
	for _, lits := range batch {
		if !s.importClause(lits) {
			return false
		}
	}
	// Imported clauses are learnt clauses now; never re-export them.
	s.lastExport = len(s.heads)
	return true
}

// importClause adds a foreign clause as a learnt clause, simplifying
// against the level-0 assignment (we are at level 0 here). It returns false
// on a top-level conflict.
func (s *Solver) importClause(lits []Lit) bool {
	out := s.addTmp[:0]
	for _, l := range lits {
		if l.Var() >= s.NumVars() {
			s.addTmp = out
			return true // foreign variable space: skip defensively
		}
		switch s.litValue(l) {
		case 1:
			s.addTmp = out
			return true // satisfied at level 0
		case -1:
			continue
		}
		out = append(out, l)
	}
	s.addTmp = out[:0]
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefNone)
		if s.propagate() != crefNone {
			s.unsat = true
			return false
		}
	default:
		ci := s.pushClause(out, true)
		s.attach(ci)
	}
	s.SharedIn++
	return true
}

// Portfolio races N diversified CDCL workers over one logical problem,
// implementing Engine so the SMT layer can use it as a drop-in solver.
//
// Every worker holds a full copy of the problem (variables and clauses are
// mirrored to all workers), diversified only in search configuration.
// Worker 0 is canonical: it runs the base configuration and is the only
// worker whose models are ever reported, which makes Sat results — models
// included — independent of the portfolio size. Helpers accelerate Unsat
// answers: a helper proving Unsat cancels the rest of the race, and helper
// learnt clauses circulate through a ClauseShare pool.
//
// Determinism: each Solve first rewinds every worker to its base problem
// state (clauses learnt or imported during earlier queries are dropped; the
// shared clause pool was emptied when the previous query's race ended), so
// a query's outcome is a function of the base clauses, the assumptions, and
// the per-worker seeds alone — not of race timing or of how far earlier
// queries' helpers ran before cancellation. The verdict protocol keeps it that way: worker 0's own
// Sat/Unsat is always final; when worker 0 returns Unknown, the helpers
// (conflict-budget-bounded) are joined WITHOUT cancellation and any helper
// Unsat is taken, in worker order. Under a sound pool and correct workers
// this yields the same verdict for every portfolio size, except on queries
// whose conflict budget is borderline: with MaxConflicts > 0 a helper may
// prove Unsat within its budget where a lone worker 0 gives up, and what a
// helper imports before exhausting its budget depends on intra-query
// scheduling, so budget-limited helper verdicts (never worker 0's, never a
// Sat model) can vary run-to-run (exact equivalence holds at
// MaxConflicts = 0; the MLine bench exhibits no such edge queries).
//
// Model determinism additionally requires the caller to ResetSearch before
// each query, as internal/core's incremental path always does: restore does
// not rewind saved phases, and worker 0's phases would otherwise depend on
// how far its previous search ran before a helper cancelled it.
type Portfolio struct {
	workers []*Solver
	cfgs    []Config
	share   *ClauseShare
	bases   []mark
	ctx     context.Context

	lastWinner int // 1-based worker of the last verdict, 0 = none
	wins       []int64
}

// NewPortfolio builds an empty portfolio with one worker per config (see
// DefaultPortfolioConfigs). With a single config no sharing machinery is
// attached and Solve degenerates to a direct call.
func NewPortfolio(cfgs []Config) *Portfolio {
	workers := make([]*Solver, len(cfgs))
	for i, c := range cfgs {
		workers[i] = NewWithConfig(c)
	}
	return newPortfolio(workers, cfgs)
}

// NewPortfolioFrom builds a portfolio over pre-built workers — typically
// clones of a fully-encoded prototype from the campaign shape cache — and
// applies the i-th config to the i-th worker. The workers must hold
// identical problem state (same variables, same clauses, same order);
// clones of one solver satisfy this by construction.
func NewPortfolioFrom(workers []*Solver, cfgs []Config) *Portfolio {
	if len(workers) != len(cfgs) {
		panic("sat: NewPortfolioFrom worker/config count mismatch")
	}
	for i := range workers {
		workers[i].applyConfig(cfgs[i])
	}
	return newPortfolio(workers, cfgs)
}

func newPortfolio(workers []*Solver, cfgs []Config) *Portfolio {
	p := &Portfolio{
		workers: workers,
		cfgs:    append([]Config(nil), cfgs...),
		bases:   make([]mark, len(workers)),
		wins:    make([]int64, len(workers)),
	}
	if len(workers) > 1 {
		p.share = NewClauseShare(0, 0)
		// Helpers exchange clauses among themselves. Worker 0 stays out of
		// the pool entirely — no export, no import — so its search (and its
		// models) are exactly those of a lone solver with the base config.
		for _, w := range workers[1:] {
			w.attachShare(p.share, true)
		}
	}
	for i, w := range workers {
		p.bases[i] = w.snapshot()
	}
	return p
}

// restoreAll rewinds every worker to its base problem state and rewinds the
// helpers' pool cursors to the start of the (empty, see Solve) shared pool.
// It is a no-op when nothing was learnt since (fast path in restore).
// Callers guarantee no worker goroutine is running (every Solve return path
// joins them).
func (p *Portfolio) restoreAll() {
	for i, w := range p.workers {
		w.restore(p.bases[i])
		w.shareCursor = 0
	}
}

// NewVar allocates the variable in every worker and returns its index
// (identical across workers by construction).
func (p *Portfolio) NewVar() int {
	v := p.workers[0].NewVar()
	for _, w := range p.workers[1:] {
		w.NewVar()
	}
	return v
}

// NumVars returns the number of allocated variables.
func (p *Portfolio) NumVars() int { return p.workers[0].NumVars() }

// NumClauses returns the canonical worker's stored clause count.
func (p *Portfolio) NumClauses() int { return p.workers[0].NumClauses() }

// AddClause adds the clause to every worker. Workers are first rewound to
// their base state so clause normalization (which consults the level-0
// assignment) sees identical state in every worker — and so the result is
// independent of what any worker happened to learn before.
func (p *Portfolio) AddClause(lits ...Lit) bool {
	p.restoreAll()
	ok := true
	for _, w := range p.workers {
		if !w.AddClause(lits...) {
			ok = false
		}
	}
	for i, w := range p.workers {
		p.bases[i] = w.snapshot()
	}
	return ok
}

// BoostVar raises the variable's base activity in every worker.
func (p *Portfolio) BoostVar(v int, amount float64) {
	for _, w := range p.workers {
		w.BoostVar(v, amount)
	}
}

// ResetSearch rewinds every worker's heuristics; helpers get decorrelated
// seeds mixed from the given one.
func (p *Portfolio) ResetSearch(seed int64) {
	p.restoreAll()
	p.workers[0].ResetSearch(seed)
	for i, w := range p.workers {
		if i > 0 {
			w.ResetSearch(mixSeed(seed, i))
		}
	}
}

// SetContext installs a cancellation context applied to subsequent Solves.
func (p *Portfolio) SetContext(ctx context.Context) { p.ctx = ctx }

// Value reads variable v in the canonical worker's model.
func (p *Portfolio) Value(v int) bool { return p.workers[0].Value(v) }

// Model copies the canonical worker's satisfying assignment.
func (p *Portfolio) Model() []bool { return p.workers[0].Model() }

// Stats sums the workers' search counters. The sums reflect real effort
// across the race and are observability-only: unlike verdicts they depend
// on cancellation timing.
func (p *Portfolio) Stats() Stats {
	var t Stats
	for _, w := range p.workers {
		s := w.Stats()
		t.Conflicts += s.Conflicts
		t.Decisions += s.Decisions
		t.Propagations += s.Propagations
		t.Learnt += s.Learnt
		t.SharedIn += s.SharedIn
		t.SharedOut += s.SharedOut
	}
	return t
}

// Solve races the workers on the query and returns the deterministic
// verdict described on the Portfolio type.
func (p *Portfolio) Solve(assumptions ...Lit) Status {
	p.restoreAll()
	w0 := p.workers[0]
	if len(p.workers) == 1 {
		w0.SetContext(p.ctx)
		st := w0.Solve(assumptions...)
		if st == Sat || st == Unsat {
			p.lastWinner = 1
			p.wins[0]++
		} else {
			p.lastWinner = 0
		}
		return st
	}

	// Empty the pool once the race is over (every return path below joins
	// the helpers first): pool contents depend on how far helpers ran before
	// cancellation, and carrying them into the next query would make
	// budget-limited helper verdicts depend on earlier queries' race timing.
	// Resetting at the end rather than at entry leaves the window between
	// AddClause and Solve open for the oracle teeth tests to poison the pool.
	defer p.share.reset()

	outer := p.ctx
	base := context.Background()
	if outer != nil {
		base = outer
	}
	ctx0, cancel0 := context.WithCancel(base)
	ctxH, cancelH := context.WithCancel(base)
	defer cancel0()
	defer cancelH()

	w0.SetContext(ctx0)
	results := make([]Status, len(p.workers))
	var wg sync.WaitGroup
	for i := 1; i < len(p.workers); i++ {
		w := p.workers[i]
		w.SetContext(ctxH)
		wg.Add(1)
		go func(i int, w *Solver) {
			defer wg.Done()
			st := w.Solve(assumptions...)
			results[i] = st
			switch st {
			case Unsat:
				// The race is decided (sound pool ⇒ the formula is unsat
				// under these assumptions); stop everyone else. Worker 0
				// returning its own Unsat first changes nothing.
				cancel0()
				cancelH()
			case Sat:
				// No worker can prove Unsat now; only worker 0's model
				// matters, so stop the other helpers.
				cancelH()
			}
		}(i, w)
	}

	st0 := w0.Solve(assumptions...)
	if st0 == Sat || st0 == Unsat {
		// Worker 0's own answer is always final (it can only be cancelled
		// into Unknown, never into a wrong verdict).
		cancel0()
		cancelH()
		wg.Wait()
		p.lastWinner = 1
		p.wins[0]++
		return st0
	}
	if outer != nil && outer.Err() != nil {
		cancelH()
		wg.Wait()
		p.lastWinner = 0
		return Unknown
	}
	// Worker 0 gave up (conflict budget) or was cancelled by a helper's
	// Unsat. Join ALL helpers without cancelling — each is bounded by the
	// same conflict budget — so the answer does not depend on when worker 0
	// stopped. Any helper Unsat decides.
	wg.Wait()
	for i := 1; i < len(p.workers); i++ {
		if results[i] == Unsat {
			p.lastWinner = i + 1
			p.wins[i]++
			return Unsat
		}
	}
	p.lastWinner = 0
	return Unknown
}

// LastWinner reports which worker decided the previous Solve, 1-based;
// 0 means no verdict (Unknown).
func (p *Portfolio) LastWinner() int { return p.lastWinner }

// Wins returns a copy of the per-worker verdict tallies.
func (p *Portfolio) Wins() []int64 { return append([]int64(nil), p.wins...) }

// Configs returns a copy of the worker configurations.
func (p *Portfolio) Configs() []Config { return append([]Config(nil), p.cfgs...) }

// SharedPool exposes the helper clause pool (nil for single-worker
// portfolios); the oracle differential uses it to poison the pool in teeth
// tests.
func (p *Portfolio) SharedPool() *ClauseShare { return p.share }
