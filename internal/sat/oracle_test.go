// Oracle-backed solver tests: these live in package sat_test because they
// cross-check the CDCL implementation against internal/oracle's brute-force
// reference, and oracle imports sat.
package sat_test

import (
	"math/rand"
	"testing"

	"scamv/internal/oracle"
	"scamv/internal/sat"
)

func buildSolver(seed int64, nVars int, clauses [][]sat.Lit) (*sat.Solver, bool) {
	s := sat.New(seed)
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			return s, false
		}
	}
	return s, true
}

// TestUnknownLeavesSolverUsable drives Solve into its MaxConflicts budget and
// checks an Unknown result is a pause, not a poisoning: the same solver, with
// the budget lifted, must subsequently agree with the brute-force oracle both
// globally and under assumptions.
func TestUnknownLeavesSolverUsable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	hit := 0
	for iter := 0; iter < 500 && hit < 10; iter++ {
		nVars, clauses := oracle.RandomCNF(r, 12, 30)
		s, ok := buildSolver(int64(iter), nVars, clauses)
		if !ok {
			continue
		}
		s.MaxConflicts = 1
		if s.Solve() != sat.Unknown {
			continue // solved within one conflict; not the case under test
		}
		hit++
		s.MaxConflicts = 0
		bst, _ := oracle.BruteSolve(nVars, clauses)
		if got := s.Solve(); got != bst {
			t.Fatalf("iter %d: post-Unknown solve %v, brute says %v", iter, got, bst)
		}
		if bst == sat.Sat && !oracle.CNFSatisfied(clauses, s.Model()[:nVars]) {
			t.Fatalf("iter %d: post-Unknown model falsifies a clause", iter)
		}
		assumptions := []sat.Lit{sat.MkLit(0, true), sat.MkLit(1, false)}
		abst, _ := oracle.BruteSolve(nVars, clauses, assumptions...)
		if got := s.Solve(assumptions...); got != abst {
			t.Fatalf("iter %d: post-Unknown assumption solve %v, brute says %v", iter, got, abst)
		}
		// A second budgeted pause mid-stream must not poison later queries.
		s.MaxConflicts = 1
		_ = s.Solve()
		s.MaxConflicts = 0
		if got := s.Solve(); got != bst {
			t.Fatalf("iter %d: solve after second Unknown %v, brute says %v", iter, got, bst)
		}
	}
	if hit == 0 {
		t.Fatal("no instance exceeded a 1-conflict budget; generator too easy to exercise Unknown")
	}
}

// TestResetAfterAssumptionUnsatRestoresFreshModel checks that an
// assumption-scoped Unsat (here forced by assuming the negation of one whole
// clause) followed by ResetSearch leaves no heuristic residue. When the
// scoped query learned no clauses the solver state is exactly fresh, so the
// next unscoped solve must reproduce the fresh-solver model bit for bit;
// when it did learn, the clause database legitimately differs and we assert
// the oracle-checkable contract instead: the verdict matches brute force and
// the model satisfies every clause.
func TestResetAfterAssumptionUnsatRestoresFreshModel(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	checked, exact := 0, 0
	for iter := 0; iter < 300 && checked < 40; iter++ {
		nVars, clauses := oracle.RandomCNF(r, 10, 20)
		bst, _ := oracle.BruteSolve(nVars, clauses)
		if bst != sat.Sat {
			continue
		}
		fresh, ok := buildSolver(9, nVars, clauses)
		if !ok {
			continue
		}
		// The control goes through the same ResetSearch as the solver under
		// test (reset rebuilds the decision heap, which breaks activity ties
		// in a different order than incremental construction), so the only
		// difference left between the two is the scoped query itself.
		fresh.ResetSearch(9)
		if fresh.Solve() != sat.Sat {
			t.Fatalf("iter %d: fresh solver disagrees with brute Sat", iter)
		}
		want := append([]bool{}, fresh.Model()[:nVars]...)

		s, _ := buildSolver(9, nVars, clauses)
		doomed := clauses[r.Intn(len(clauses))]
		var negated []sat.Lit
		for _, l := range doomed {
			negated = append(negated, l.Neg())
		}
		if got := s.Solve(negated...); got != sat.Unsat {
			t.Fatalf("iter %d: assuming a clause's negation gave %v, want Unsat", iter, got)
		}
		learnt := s.Learnt
		s.ResetSearch(9)
		if s.Solve() != sat.Sat {
			t.Fatalf("iter %d: post-reset solve not Sat", iter)
		}
		model := make([]bool, nVars)
		for v := 0; v < nVars; v++ {
			model[v] = s.Value(v)
		}
		if !oracle.CNFSatisfied(clauses, model) {
			t.Fatalf("iter %d: post-reset model falsifies a clause", iter)
		}
		if learnt == 0 {
			exact++
			for v := 0; v < nVars; v++ {
				if model[v] != want[v] {
					t.Fatalf("iter %d: scoped query learned nothing, yet post-reset model differs from fresh solver at var %d", iter, v)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no satisfiable instance survived; generator misconfigured")
	}
	if exact == 0 {
		t.Fatal("every scoped query learned clauses; bit-identical case never exercised")
	}
}

// TestResetAfterAssumptionUnsatMinimalModel pins the behavior on a
// propagation-only instance where the zero-default-phase model provably
// coincides with the brute-force oracle's numerically minimal model.
func TestResetAfterAssumptionUnsatMinimalModel(t *testing.T) {
	a, b := sat.MkLit(0, false), sat.MkLit(1, false)
	clauses := [][]sat.Lit{{a}, {a.Neg(), b}} // a ∧ (a ⇒ b): unit propagation alone
	s, ok := buildSolver(5, 2, clauses)
	if !ok {
		t.Fatal("unexpected top-level conflict")
	}
	if got := s.Solve(b.Neg()); got != sat.Unsat {
		t.Fatalf("¬b contradicts the units, got %v", got)
	}
	s.ResetSearch(5)
	if s.Solve() != sat.Sat {
		t.Fatal("post-reset solve not Sat")
	}
	bst, bmodel := oracle.BruteSolve(2, clauses)
	if bst != sat.Sat {
		t.Fatalf("brute says %v", bst)
	}
	for v := 0; v < 2; v++ {
		if s.Value(v) != bmodel[v] {
			t.Fatalf("post-reset model differs from brute minimal model at var %d", v)
		}
	}
}
