package sat

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// randomCNF builds a reproducible random k-SAT instance. At ratio ~4.2 the
// instances straddle the sat/unsat threshold, exercising both verdicts.
func randomCNF3(seed int64, nVars, nClauses int) [][]Lit {
	rng := rand.New(rand.NewSource(seed))
	cls := make([][]Lit, nClauses)
	for i := range cls {
		c := make([]Lit, 3)
		for j := range c {
			c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		cls[i] = c
	}
	return cls
}

func addAll(e Engine, nVars int, cls [][]Lit) {
	for i := 0; i < nVars; i++ {
		e.NewVar()
	}
	for _, c := range cls {
		e.AddClause(c...)
	}
}

// TestPortfolioMatchesSingle: for the same seed, a plain solver, a 1-worker
// portfolio, and a 4-worker portfolio must produce the same verdict and
// (when sat) the same canonical model on every instance.
func TestPortfolioMatchesSingle(t *testing.T) {
	const nVars, nClauses = 40, 170
	for seed := int64(0); seed < 40; seed++ {
		cls := randomCNF3(seed, nVars, nClauses)
		base := Config{Seed: seed}

		plain := New(seed)
		p1 := NewPortfolio(DefaultPortfolioConfigs(base, 1))
		p4 := NewPortfolio(DefaultPortfolioConfigs(base, 4))
		addAll(plain, nVars, cls)
		addAll(p1, nVars, cls)
		addAll(p4, nVars, cls)

		plain.ResetSearch(seed)
		p1.ResetSearch(seed)
		p4.ResetSearch(seed)
		st := plain.Solve()
		st1 := p1.Solve()
		st4 := p4.Solve()
		if st1 != st || st4 != st {
			t.Fatalf("seed %d: plain=%v p1=%v p4=%v", seed, st, st1, st4)
		}
		if st == Sat {
			m, m1, m4 := plain.Model(), p1.Model(), p4.Model()
			if !reflect.DeepEqual(m, m1) || !reflect.DeepEqual(m, m4) {
				t.Fatalf("seed %d: models diverge across portfolio sizes", seed)
			}
		}
	}
}

// TestPortfolioEnumerationDeterminism drives full model enumeration with
// blocking clauses — the same access pattern core uses for test generation —
// and requires byte-identical model sequences at portfolio sizes 1 and 4.
func TestPortfolioEnumerationDeterminism(t *testing.T) {
	const nVars, nClauses = 24, 60 // underconstrained: many models
	enumerate := func(p *Portfolio, seed int64, cls [][]Lit) [][]bool {
		addAll(p, nVars, cls)
		var models [][]bool
		for i := 0; i < 30; i++ {
			p.ResetSearch(seed + int64(i)*65537)
			if p.Solve() != Sat {
				break
			}
			m := p.Model()
			models = append(models, m)
			block := make([]Lit, nVars)
			for v := 0; v < nVars; v++ {
				block[v] = MkLit(v, m[v])
			}
			if !p.AddClause(block...) {
				break
			}
		}
		return models
	}
	for seed := int64(0); seed < 10; seed++ {
		cls := randomCNF3(seed, nVars, nClauses)
		base := Config{Seed: seed}
		m1 := enumerate(NewPortfolio(DefaultPortfolioConfigs(base, 1)), seed, cls)
		m4 := enumerate(NewPortfolio(DefaultPortfolioConfigs(base, 4)), seed, cls)
		if !reflect.DeepEqual(m1, m4) {
			t.Fatalf("seed %d: enumeration sequences diverge (%d vs %d models)",
				seed, len(m1), len(m4))
		}
	}
}

// TestPortfolioAssumptions checks verdict agreement under assumption-driven
// queries (the CheckUnder pattern), including re-querying after Unsat.
func TestPortfolioAssumptions(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cls := randomCNF3(seed, 30, 100)
		p1 := NewPortfolio(DefaultPortfolioConfigs(Config{Seed: seed}, 1))
		p4 := NewPortfolio(DefaultPortfolioConfigs(Config{Seed: seed}, 4))
		addAll(p1, 30, cls)
		addAll(p4, 30, cls)
		for q := 0; q < 6; q++ {
			as := []Lit{MkLit(q, q%2 == 0), MkLit(q+7, q%3 == 0)}
			p1.ResetSearch(seed + int64(q))
			p4.ResetSearch(seed + int64(q))
			st1, st4 := p1.Solve(as...), p4.Solve(as...)
			if st1 != st4 {
				t.Fatalf("seed %d q%d: p1=%v p4=%v", seed, q, st1, st4)
			}
			if st1 == Sat && !reflect.DeepEqual(p1.Model(), p4.Model()) {
				t.Fatalf("seed %d q%d: models diverge", seed, q)
			}
		}
	}
}

// TestPortfolioUnsatPigeonhole forces real conflict-heavy search (PHP 7→6)
// so restarts fire and clauses circulate through the share pool.
func TestPortfolioUnsatPigeonhole(t *testing.T) {
	addPigeonhole := func(e Engine, holes int) {
		pigeons := holes + 1
		at := func(p, h int) int { return p*holes + h }
		for i := 0; i < pigeons*holes; i++ {
			e.NewVar()
		}
		for p := 0; p < pigeons; p++ {
			row := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				row[h] = MkLit(at(p, h), false)
			}
			e.AddClause(row...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					e.AddClause(MkLit(at(p1, h), true), MkLit(at(p2, h), true))
				}
			}
		}
	}
	p := NewPortfolio(DefaultPortfolioConfigs(Config{Seed: 1}, 4))
	addPigeonhole(p, 6)
	p.ResetSearch(1)
	if st := p.Solve(); st != Unsat {
		t.Fatalf("pigeonhole: got %v, want Unsat", st)
	}
	if p.LastWinner() == 0 {
		t.Fatalf("pigeonhole: no winner recorded")
	}
	// A second identical query after restore must agree.
	p.ResetSearch(1)
	if st := p.Solve(); st != Unsat {
		t.Fatalf("pigeonhole requery: got %v, want Unsat", st)
	}
}

// TestCloneIndependence: a clone must solve identically to its original and
// the two must not share mutable state afterwards.
func TestCloneIndependence(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		cls := randomCNF3(seed, 30, 110)
		s := New(seed)
		addAll(s, 30, cls)
		c := s.Clone(seed)
		if s.CNFHash() != c.CNFHash() {
			t.Fatalf("seed %d: clone CNF hash differs", seed)
		}
		st, stc := s.Solve(), c.Solve()
		if st != stc {
			t.Fatalf("seed %d: original=%v clone=%v", seed, st, stc)
		}
		if st == Sat && !reflect.DeepEqual(s.Model(), c.Model()) {
			t.Fatalf("seed %d: clone model differs", seed)
		}
		// Diverge the clone; the original's database must be unaffected.
		if st == Sat {
			m := c.Model()
			block := make([]Lit, 0, 30)
			for v := 0; v < 30; v++ {
				block = append(block, MkLit(v, m[v]))
			}
			nc, h := s.NumClauses(), s.CNFHash()
			c.AddClause(block...)
			if s.NumClauses() != nc || s.CNFHash() != h {
				t.Fatalf("seed %d: clone mutation leaked into original", seed)
			}
			s.ResetSearch(seed)
			if s.Solve() != Sat {
				t.Fatalf("seed %d: original lost satisfiability", seed)
			}
		}
	}
}

// TestRestoreRewindsToBase: after solving (learning clauses), restore must
// bring the database back to its marked extent and replay identically.
func TestRestoreRewindsToBase(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		cls := randomCNF3(seed, 30, 120)
		s := New(seed)
		addAll(s, 30, cls)
		m := s.snapshot()
		nc := s.NumClauses()

		s.ResetSearch(seed)
		first := s.Solve()
		s.restore(m)
		if s.NumClauses() != nc {
			t.Fatalf("seed %d: restore kept %d clauses, want %d", seed, s.NumClauses(), nc)
		}
		s.ResetSearch(seed)
		again := s.Solve()
		if first != again {
			t.Fatalf("seed %d: verdict changed after restore: %v then %v", seed, first, again)
		}
		// Replays must also be stable across repeated restore cycles.
		s.restore(m)
		s.ResetSearch(seed)
		if st := s.Solve(); st != first {
			t.Fatalf("seed %d: second replay diverged: %v", seed, st)
		}
	}
}

// TestRestoreCanonicalizesPartialSearch: cancelling a search mid-way leaves
// permuted watch state; restore must erase any trace of it so the next
// query's model matches an uninterrupted worker's. This is the property
// that makes -portfolio N byte-identical for every N.
func TestRestoreCanonicalizesPartialSearch(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cls := randomCNF3(seed, 30, 124)
		mk := func() (*Solver, mark) {
			s := New(seed)
			addAll(s, 30, cls)
			return s, s.snapshot()
		}
		a, ma := mk()
		b, mb := mk()
		// Worker a is "cancelled" almost immediately; worker b runs free.
		a.MaxConflicts = 3
		a.ResetSearch(seed)
		a.Solve()
		a.MaxConflicts = 0
		b.ResetSearch(seed)
		b.Solve()

		a.restore(ma)
		b.restore(mb)
		a.ResetSearch(seed + 1)
		b.ResetSearch(seed + 1)
		sta, stb := a.Solve(), b.Solve()
		if sta != stb {
			t.Fatalf("seed %d: verdicts diverge after partial search: %v vs %v", seed, sta, stb)
		}
		if sta == Sat && !reflect.DeepEqual(a.Model(), b.Model()) {
			t.Fatalf("seed %d: models diverge after partial search", seed)
		}
	}
}

// TestRestoreDeadWatchDirect: after level-0 units falsify a clause's two
// smallest literals, restore's canonicalization must not park both watches
// on dead literals — the clause would become invisible to propagation and
// the solver would answer Sat with a model falsifying it. This drives the
// Solver-level restore path directly: restore canonicalizes whenever prior
// propagation ran, exactly as Portfolio.AddClause does before every
// addition.
func TestRestoreDeadWatchDirect(t *testing.T) {
	s := New(1)
	lits := make([]Lit, 4)
	for i := range lits {
		lits[i] = MkLit(s.NewVar(), false)
	}
	s.AddClause(lits...)
	contradicted := false
	for _, l := range lits {
		s.restore(s.snapshot())
		if !s.AddClause(l.Neg()) {
			contradicted = true
		}
	}
	if !contradicted {
		if st := s.Solve(); st != Unsat {
			t.Fatalf("(a|b|c|d) & !a & !b & !c & !d: got %v with model %v, want Unsat",
				st, s.Model())
		}
	}
}

// TestRestoreDeadWatchRegression is the review repro for the same bug at the
// Portfolio level: (a|b|c|d) & !a & !b & !c & !d used to come back Sat at
// every portfolio size, with models falsifying (a|b|c|d), because AddClause
// restores (and canonicalizes) all workers before each addition.
func TestRestoreDeadWatchRegression(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		p := NewPortfolio(DefaultPortfolioConfigs(Config{Seed: 1}, n))
		lits := make([]Lit, 4)
		for i := range lits {
			lits[i] = MkLit(p.NewVar(), false)
		}
		p.AddClause(lits...)
		contradicted := false
		for _, l := range lits {
			if !p.AddClause(l.Neg()) {
				contradicted = true
			}
		}
		if !contradicted {
			if st := p.Solve(); st != Unsat {
				t.Fatalf("portfolio-%d: got %v, want Unsat", n, st)
			}
		}
	}
}

// TestSharePoolEmptiedBetweenQueries: pool contents depend on how far
// helpers ran before cancellation, so carrying them across queries would
// make budget-limited helper verdicts depend on earlier queries' race
// timing. Solve must leave the pool empty; clauses injected between queries
// (the oracle teeth seam) stay visible to the next query only.
func TestSharePoolEmptiedBetweenQueries(t *testing.T) {
	p := NewPortfolio(DefaultPortfolioConfigs(Config{Seed: 5}, 4))
	addAll(p, 30, randomCNF3(5, 30, 170))
	p.ResetSearch(5)
	p.Solve()
	if n := p.SharedPool().Size(); n != 0 {
		t.Fatalf("pool holds %d clauses after Solve, want 0", n)
	}
	if !p.SharedPool().Export([]Lit{MkLit(0, false), MkLit(1, false)}) {
		t.Fatal("between-queries export rejected")
	}
	p.ResetSearch(6)
	p.Solve()
	if n := p.SharedPool().Size(); n != 0 {
		t.Fatalf("pool holds %d clauses after second Solve, want 0", n)
	}
}

// TestClauseSharePoisoning documents the failure mode the oracle teeth test
// is built on: an unsound clause in the pool makes an importing worker lie.
func TestClauseSharePoisoning(t *testing.T) {
	cs := NewClauseShare(0, 4)
	if !cs.Export([]Lit{MkLit(0, false)}) {
		t.Fatal("export rejected")
	}
	if cs.Export(make([]Lit, DefaultShareMaxLen+1)) {
		t.Fatal("overlong clause accepted")
	}
	if cs.Size() != 1 {
		t.Fatalf("pool size %d, want 1", cs.Size())
	}
	batch, cur := cs.fetch(0)
	if len(batch) != 1 || cur != 1 {
		t.Fatalf("fetch returned %d clauses, cursor %d", len(batch), cur)
	}
}

// TestPortfolioContextCancel: an already-cancelled outer context must yield
// Unknown and leave the portfolio reusable.
func TestPortfolioContextCancel(t *testing.T) {
	cls := randomCNF3(3, 30, 120)
	p := NewPortfolio(DefaultPortfolioConfigs(Config{Seed: 3}, 4))
	addAll(p, 30, cls)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.SetContext(ctx)
	if st := p.Solve(); st != Unknown {
		t.Fatalf("cancelled solve: got %v, want Unknown", st)
	}
	p.SetContext(context.Background())
	p.ResetSearch(3)
	st := p.Solve()
	if st == Unknown {
		t.Fatalf("portfolio unusable after cancellation")
	}
}

// TestConfigDefaults: the zero config must reproduce New's classic solver.
func TestConfigDefaults(t *testing.T) {
	cls := randomCNF3(7, 30, 120)
	a := New(7)
	b := NewWithConfig(Config{Seed: 7})
	addAll(a, 30, cls)
	addAll(b, 30, cls)
	sta, stb := a.Solve(), b.Solve()
	if sta != stb {
		t.Fatalf("verdicts differ: %v vs %v", sta, stb)
	}
	if sta == Sat && !reflect.DeepEqual(a.Model(), b.Model()) {
		t.Fatal("models differ between New and zero-config NewWithConfig")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("search effort differs: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestCNFHashDiscriminates: the hash must be stable under cloning and
// sensitive to clause changes.
func TestCNFHashDiscriminates(t *testing.T) {
	cls := randomCNF3(9, 20, 50)
	a := New(9)
	addAll(a, 20, cls)
	b := New(9)
	addAll(b, 20, cls)
	if a.CNFHash() != b.CNFHash() {
		t.Fatal("identical builds hash differently")
	}
	b.AddClause(MkLit(0, false), MkLit(1, false))
	if a.CNFHash() == b.CNFHash() {
		t.Fatal("hash blind to an added clause")
	}
}
