package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialSat(t *testing.T) {
	s := New(1)
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if s.Solve() != Sat {
		t.Fatal("expected sat")
	}
	if !s.Value(a) {
		t.Fatal("a should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New(1)
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if !s.AddClause(MkLit(a, true)) {
		// Already detected at add time.
		if s.Solve() != Unsat {
			t.Fatal("expected unsat")
		}
		return
	}
	if s.Solve() != Unsat {
		t.Fatal("expected unsat")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// a, (¬a ∨ b), (¬b ∨ c), ..., forces a long chain.
	s := New(1)
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i < n-1; i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if s.Solve() != Sat {
		t.Fatal("expected sat")
	}
	for i := range vars {
		if !s.Value(vars[i]) {
			t.Fatalf("var %d should be true", i)
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	// n+1 pigeons, n holes: classic unsat instance exercising learning.
	const n = 5
	s := New(1)
	// p[i][j]: pigeon i in hole j.
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	// Every pigeon in some hole.
	for i := range p {
		lits := make([]Lit, n)
		for j := range p[i] {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	// No two pigeons share a hole.
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(MkLit(p[i1][j], true), MkLit(p[i2][j], true))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("pigeonhole should be unsat")
	}
}

func TestDefaultPhaseZero(t *testing.T) {
	// Unconstrained variables should come out false with the default phase,
	// emulating Z3's minimal default models.
	s := New(1)
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	if s.Solve() != Sat {
		t.Fatal("expected sat")
	}
	if s.Value(a) && s.Value(b) {
		t.Error("default-phase model should not set both variables")
	}
}

func TestModelEnumeration(t *testing.T) {
	// 3 free variables constrained only by one clause: enumerate all models.
	s := New(1)
	vars := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	s.AddClause(MkLit(vars[0], false), MkLit(vars[1], false), MkLit(vars[2], false))
	count := 0
	seen := map[[3]bool]bool{}
	for s.Solve() == Sat {
		count++
		if count > 10 {
			t.Fatal("too many models")
		}
		var m [3]bool
		block := make([]Lit, 3)
		for i, v := range vars {
			m[i] = s.Value(v)
			block[i] = MkLit(v, s.Value(v))
		}
		if seen[m] {
			t.Fatalf("model %v repeated", m)
		}
		seen[m] = true
		if !s.AddClause(block...) {
			break
		}
	}
	if count != 7 {
		t.Fatalf("expected 7 models of (a∨b∨c), got %d", count)
	}
}

func randomCNF(rng *rand.Rand, nvars, nclauses, width int) [][]Lit {
	cls := make([][]Lit, nclauses)
	for i := range cls {
		c := make([]Lit, width)
		for j := range c {
			c[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 0)
		}
		cls[i] = c
	}
	return cls
}

func bruteForceSat(nvars int, cls [][]Lit) bool {
	for m := 0; m < 1<<uint(nvars); m++ {
		ok := true
		for _, c := range cls {
			cok := false
			for _, l := range c {
				val := m>>uint(l.Var())&1 == 1
				if l.Sign() {
					val = !val
				}
				if val {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		nvars := 4 + rng.Intn(6)
		cls := randomCNF(rng, nvars, 3+rng.Intn(30), 1+rng.Intn(3))
		s := New(int64(iter))
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		addOK := true
		for _, c := range cls {
			if !s.AddClause(c...) {
				addOK = false
			}
		}
		want := bruteForceSat(nvars, cls)
		var got bool
		if !addOK {
			got = false
		} else {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cls)
		}
		if got {
			// Verify the model actually satisfies the formula.
			for _, c := range cls {
				ok := false
				for _, l := range c {
					v := s.Value(l.Var())
					if l.Sign() {
						v = !v
					}
					if v {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, c)
				}
			}
		}
	}
}

func TestRandomPhaseDiversity(t *testing.T) {
	// With random phases, repeated fresh solves of an underconstrained
	// formula should produce diverse models.
	distinct := map[uint32]bool{}
	for seed := int64(0); seed < 20; seed++ {
		s := New(seed)
		s.RandomPhaseProb = 1.0
		vars := make([]int, 16)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		s.AddClause(MkLit(vars[0], false), MkLit(vars[1], false))
		if s.Solve() != Sat {
			t.Fatal("expected sat")
		}
		var sig uint32
		for i, v := range vars {
			if s.Value(v) {
				sig |= 1 << uint(i)
			}
		}
		distinct[sig] = true
	}
	if len(distinct) < 5 {
		t.Errorf("expected diverse models, got %d distinct", len(distinct))
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if g := luby(int64(i)); g != w {
			t.Fatalf("luby(%d) = %d, want %d", i, g, w)
		}
	}
}

func TestMaxConflicts(t *testing.T) {
	// A hard instance with a tiny conflict budget returns Unknown.
	const n = 7
	s := New(1)
	s.MaxConflicts = 3
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := range p {
		lits := make([]Lit, n)
		for j := range p[i] {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(MkLit(p[i1][j], true), MkLit(p[i2][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("expected unknown under conflict budget, got %v", got)
	}
}
