package sat

import (
	"hash/fnv"
	"math/rand"
)

// Clone returns an independent deep copy of the solver: same clause
// database, assignment trail, heuristic state, and configuration, sharing
// no mutable memory with the original. Thanks to the arena clause
// representation this is a handful of bulk slice copies — cheap enough
// that the campaign shape cache clones a fully-blasted prototype solver
// per program instead of re-blasting.
//
// The clone gets a fresh random stream seeded by seed (the original's rng
// position cannot be copied, and callers always want decorrelated or
// deterministic streams anyway — pass the same seed for reproducibility).
// The context is not carried over; call SetContext on the clone if needed.
func (s *Solver) Clone(seed int64) *Solver {
	c := &Solver{
		arena:    append([]Lit(nil), s.arena...),
		heads:    append([]clsHead(nil), s.heads...),
		assigns:  append([]int8(nil), s.assigns...),
		level:    append([]int32(nil), s.level...),
		reason:   append([]cref(nil), s.reason...),
		trail:    append([]Lit(nil), s.trail...),
		trailLim: append([]int32(nil), s.trailLim...),
		qhead:    s.qhead,
		activity: append([]float64(nil), s.activity...),
		varInc:   s.varInc,
		seen:     make([]bool, len(s.seen)),
		phase:    append([]int8(nil), s.phase...),
		baseAct:  append([]float64(nil), s.baseAct...),

		DefaultPhase:    s.DefaultPhase,
		RandomPhaseProb: s.RandomPhaseProb,
		RandomVarProb:   s.RandomVarProb,
		rng:             rand.New(rand.NewSource(seed)),
		varDecay:        s.varDecay,
		restartBase:     s.restartBase,
		restartGeom:     s.restartGeom,
		unsat:           s.unsat,
		dirty:           s.dirty,
		MaxConflicts:    s.MaxConflicts,
		lastExport:      len(s.heads),
	}
	// Watch lists must be copied per-list and in order: propagation visits
	// watchers in list order, so the order determines which conflicts are
	// found and which clauses are learnt.
	c.watches = make([][]cref, len(s.watches))
	for i, ws := range s.watches {
		if len(ws) > 0 {
			c.watches[i] = append([]cref(nil), ws...)
		}
	}
	c.heap = newVarHeap(&c.activity)
	c.heap.heap = append([]int(nil), s.heap.heap...)
	c.heap.pos = append([]int(nil), s.heap.pos...)
	return c
}

// applyConfig overwrites the solver's search configuration in place,
// re-seeding the random stream. The clause database, assignments, and
// activities are untouched; callers pair it with ResetSearch when they
// want heuristics rewound too.
func (s *Solver) applyConfig(cfg Config) {
	cfg = cfg.withDefaults()
	s.DefaultPhase = cfg.DefaultPhase
	s.RandomPhaseProb = cfg.RandomPhaseProb
	s.RandomVarProb = cfg.RandomVarProb
	s.MaxConflicts = cfg.MaxConflicts
	s.varDecay = cfg.VarDecay
	s.restartBase = cfg.RestartBase
	s.restartGeom = cfg.RestartGeometric
	s.rng = rand.New(rand.NewSource(cfg.Seed))
}

// mark captures the extent of the clause database and trail so restore can
// later rewind the solver to exactly this problem state, discarding learnt
// clauses, imported clauses, and level-0 implications added since.
type mark struct {
	heads int
	arena int
	trail int
}

// snapshot records the current database extent. Meaningful only at decision
// level 0 (Portfolio takes snapshots right after AddClause/restore, which
// both end there).
func (s *Solver) snapshot() mark {
	return mark{heads: len(s.heads), arena: len(s.arena), trail: len(s.trail)}
}

// restore rewinds the solver to a previous snapshot: the trail is unwound
// to level 0, clauses added since the mark (learnt during search, imported
// from a share pool, or asserted) are detached and dropped, and level-0
// implications recorded since are unassigned. Saved phases and activities
// are NOT rewound — portfolio determinism relies on the per-query
// ResetSearch that core's incremental path always performs.
//
// Propagation permutes clause literal order and watch-list membership in
// place, so after any search those depend on how far the search ran — which
// for a cancelled portfolio worker depends on race timing. restore therefore
// re-canonicalizes the watch state whenever propagation has run, making the
// post-restore state a pure function of the clause database content.
//
// A sticky top-level unsat is kept: a level-0 conflict is a consequence of
// clauses at or below any mark ever taken, so it remains sound.
func (s *Solver) restore(m mark) {
	s.cancelUntil(0)
	if !s.dirty && len(s.heads) == m.heads && len(s.trail) == m.trail {
		return // fast path: no search and nothing learnt since the mark
	}
	s.heads = s.heads[:m.heads]
	s.arena = s.arena[:m.arena]
	// Unassign level-0 implications recorded after the mark. This must
	// happen after the clause truncation so no reason field can point at a
	// dropped clause.
	for i := len(s.trail) - 1; i >= m.trail; i-- {
		v := s.trail[i].Var()
		if s.assigns[v] == 1 {
			s.phase[v] = 1
		} else {
			s.phase[v] = -1
		}
		s.assigns[v] = 0
		s.reason[v] = crefNone
		s.heap.insert(v)
	}
	s.trail = s.trail[:m.trail]
	s.qhead = len(s.trail)
	if s.lastExport > m.heads {
		s.lastExport = m.heads
	}
	s.canonicalizeWatches()
	s.dirty = false
}

// canonicalizeWatches sorts every clause's literals ascending, promotes
// watchable literals to the watch positions, and rebuilds all watch lists in
// clause order. The result depends only on the clause sets in the database
// plus the level-0 assignment — both pure functions of the clause additions
// (search-time swaps permute within a clause, never across; level-0
// propagation is at fixpoint whenever this runs) — so two workers with equal
// databases end up in identical states no matter what their previous
// searches did.
//
// The promotion is what keeps the watches alive: a watch on a literal that
// is already false at level 0 can never fire again, and a clause whose two
// smallest literals were falsified at level 0 after it was added (by later
// unit assertions) would otherwise become invisible to propagation — its
// remaining literals could all be set false without a conflict being
// detected.
func (s *Solver) canonicalizeWatches() {
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for ci := range s.heads {
		cl := s.clauseLits(cref(ci))
		sortLits(cl)
		s.promoteWatchable(cl)
		s.watches[cl[0].Neg()] = append(s.watches[cl[0].Neg()], cref(ci))
		s.watches[cl[1].Neg()] = append(s.watches[cl[1].Neg()], cref(ci))
	}
}

// promoteWatchable moves up to two literals that are non-false under the
// level-0 assignment into positions 0 and 1, by stable rotation so the
// result is still a deterministic function of sorted order plus the level-0
// assignment. If fewer than two non-false literals exist, the level-0
// fixpoint guarantees the clause is satisfied (a unit clause would have
// propagated its last literal true): the satisfied literal ends up in
// position 0, is permanently true, and makes both watches harmlessly dead.
// Zero non-false literals means every literal is false at level 0 — a
// top-level conflict, re-asserted here in case the sticky flag was lost.
func (s *Solver) promoteWatchable(cl []Lit) {
	w := 0
	for i := 0; i < len(cl) && w < 2; i++ {
		if s.litValue(cl[i]) != -1 {
			l := cl[i]
			copy(cl[w+1:i+1], cl[w:i])
			cl[w] = l
			w++
		}
	}
	if w == 0 {
		s.unsat = true
	}
}

// sortLits is an insertion sort: blasted clauses are almost always 2–4
// literals, where this beats the generic sort and allocates nothing.
func sortLits(cl []Lit) {
	for i := 1; i < len(cl); i++ {
		l := cl[i]
		j := i - 1
		for j >= 0 && cl[j] > l {
			cl[j+1] = cl[j]
			j--
		}
		cl[j+1] = l
	}
}

// CNFHash returns an FNV-1a hash over the clause database (headers and
// literals, in addition order). Two solvers with equal hashes were built by
// the same sequence of effective clause additions — the tests use it to
// prove that cache-instantiated solvers carry byte-identical CNF skeletons.
func (s *Solver) CNFHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(s.heads)))
	for _, hd := range s.heads {
		k := uint64(hd.size)
		if hd.learnt {
			k |= 1 << 32
		}
		put(k)
		for _, l := range s.arena[hd.off : hd.off+hd.size] {
			put(uint64(uint32(l)))
		}
	}
	// Level-0 unit implications are part of the problem too (unit clauses
	// never reach the arena).
	lim := len(s.trail)
	if len(s.trailLim) > 0 {
		lim = int(s.trailLim[0])
	}
	put(uint64(lim))
	for _, l := range s.trail[:lim] {
		put(uint64(uint32(l)))
	}
	return h.Sum64()
}
