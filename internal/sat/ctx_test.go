package sat

import (
	"context"
	"testing"
	"time"
)

// pigeonhole adds the n+1-pigeons/n-holes clauses: unsat, and exponentially
// hard for clause learning without symmetry breaking — a solve that will not
// finish on its own at n ≳ 10.
func pigeonhole(s *Solver, n int) {
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := range p {
		lits := make([]Lit, n)
		for j := range p[i] {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(MkLit(p[i1][j], true), MkLit(p[i2][j], true))
			}
		}
	}
}

func TestSolveCancelledContextReturnsUnknown(t *testing.T) {
	s := New(1)
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve under cancelled context = %v, want Unknown", got)
	}
	// Clearing the context restores normal solving on the same instance.
	s.SetContext(context.Background())
	if s.ctx != nil {
		t.Fatal("SetContext(Background) should disable polling entirely")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve after clearing context = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Fatal("model lost across the Unknown round trip")
	}
}

func TestCancelMidSolve(t *testing.T) {
	s := New(1)
	pigeonhole(s, 11) // far beyond what finishes in this test's lifetime
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.SetContext(ctx)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	got := s.Solve()
	elapsed := time.Since(start)
	if got != Unknown {
		t.Fatalf("cancelled solve = %v, want Unknown", got)
	}
	// The conflict-counter poll (every ~1024 conflicts) must notice the
	// cancellation promptly rather than running the search to completion.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	if s.Conflicts == 0 {
		t.Fatal("solver returned before doing any search work")
	}
	// The search must have been unwound: the solver is reusable.
	if lvl := s.decisionLevel(); lvl != 0 {
		t.Fatalf("decision level %d after cancelled solve, want 0", lvl)
	}
}
