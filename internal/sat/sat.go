// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation, first-UIP
// conflict analysis, VSIDS branching with phase saving, and Luby restarts.
//
// It is the backend of the bitvector SMT solver in internal/smt, which this
// repository uses in place of Z3 for synthesizing test-case states from
// observational-equivalence relations.
//
// The default decision phase is false (assign 0), which makes models of
// underconstrained formulas "minimal" in the same way Z3's default models
// are: unconstrained bitvector variables come out as zero. This property is
// load-bearing for the reproduction — it is what makes *unguided* test-case
// search generate nearly identical states (see DESIGN.md §1).
//
// Clauses live in a flat arena (one literal slice plus fixed-size headers,
// referenced by index) rather than as individually allocated objects. That
// keeps the allocator and garbage collector out of the encoding hot path and
// makes Clone a handful of bulk copies, which is what the campaign-scoped
// shape cache (internal/smt) relies on to instantiate prototype solvers
// cheaply.
package sat

import (
	"context"
	"math/rand"
)

// Lit is a literal: variable index shifted left once, low bit set when the
// literal is negated. Variables are dense integers starting at 0.
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// cref is a clause reference: an index into the solver's clause headers.
// crefNone marks "no reason clause".
type cref = int32

const crefNone cref = -1

// clsHead locates one clause in the literal arena.
type clsHead struct {
	off    int32
	size   int32
	learnt bool
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New or NewWithConfig.
type Solver struct {
	arena []Lit     // all clause literals, clause-contiguous
	heads []clsHead // problem + learnt clauses, in addition order

	watches [][]cref

	assigns  []int8 // 0 = unassigned, 1 = true, -1 = false
	level    []int32
	reason   []cref
	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap
	seen     []bool

	phase        []int8    // saved phase: 1 true, -1 false, 0 use default
	baseAct      []float64 // initial activity (BoostVar amounts), for ResetSearch
	DefaultPhase bool      // initial polarity for decisions (false = assign 0)

	// RandomPhaseProb is the probability that a decision uses a random
	// polarity instead of the saved/default phase. Non-zero values
	// diversify models during enumeration.
	RandomPhaseProb float64
	// RandomVarProb is the probability that a decision picks a uniformly
	// random unassigned variable instead of the VSIDS choice.
	RandomVarProb float64
	rng           *rand.Rand

	// varDecay and restart policy come from Config (New uses the classic
	// defaults: decay 0.95, Luby restarts with base 100).
	varDecay    float64
	restartBase int64
	restartGeom bool

	unsat bool // top-level conflict found
	dirty bool // propagation has permuted clause lits / watch lists

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnt       int64
	SharedIn     int64 // clauses imported from a ClauseShare pool
	SharedOut    int64 // clauses exported to a ClauseShare pool

	// MaxConflicts, when positive, aborts Solve with Unknown after that
	// many conflicts within one Solve call.
	MaxConflicts int64

	// Clause sharing (portfolio workers only; see ClauseShare). share is
	// consulted at restart boundaries: learnt clauses up to shareMaxLen
	// literals are exported, and — when shareImport is set — foreign clauses
	// are imported as learnt clauses.
	share       *ClauseShare
	shareCursor int // pool index imported up to
	shareImport bool
	shareMaxLen int
	lastExport  int // heads index exported up to

	// Scratch buffers reused across conflicts; their contents never survive
	// a call.
	addTmp    []Lit
	learntTmp []Lit
	seenTmp   []int

	// ctx, when set, is polled every ctxCheckMask+1 conflicts; a cancelled
	// context aborts Solve with Unknown (see SetContext).
	ctx context.Context
}

// ctxCheckMask throttles context polling to every 1024th conflict: a single
// conflict is far under a microsecond, so polling each one would make the
// hot loop pay for cancellation that almost never happens.
const ctxCheckMask = 1023

// SetContext installs a cancellation context checked during Solve (about
// every 1024 conflicts, plus once at entry). A cancelled context makes Solve
// return Unknown with the trail unwound — the solver stays usable, exactly
// as after a MaxConflicts abort. A nil ctx removes the check.
func (s *Solver) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		// context.Background and friends can never cancel; skip the polling.
		ctx = nil
	}
	s.ctx = ctx
}

// Stats is a point-in-time copy of the solver's cumulative search counters,
// the unit the telemetry layer diffs around each query to attribute effort.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnt       int64
	SharedIn     int64
	SharedOut    int64
}

// Stats snapshots the search counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Learnt:       s.Learnt,
		SharedIn:     s.SharedIn,
		SharedOut:    s.SharedOut,
	}
}

// Sub returns the counter deltas st - prev (effort spent between the two
// snapshots).
func (st Stats) Sub(prev Stats) Stats {
	return Stats{
		Conflicts:    st.Conflicts - prev.Conflicts,
		Decisions:    st.Decisions - prev.Decisions,
		Propagations: st.Propagations - prev.Propagations,
		Learnt:       st.Learnt - prev.Learnt,
		SharedIn:     st.SharedIn - prev.SharedIn,
		SharedOut:    st.SharedOut - prev.SharedOut,
	}
}

// New returns an empty solver seeded for reproducible randomized decisions,
// with the classic search configuration (see Config).
func New(seed int64) *Solver {
	return NewWithConfig(Config{Seed: seed})
}

// NewWithConfig returns an empty solver with the given search configuration.
func NewWithConfig(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	s := &Solver{varInc: 1, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.heap = newVarHeap(&s.activity)
	s.DefaultPhase = cfg.DefaultPhase
	s.RandomPhaseProb = cfg.RandomPhaseProb
	s.RandomVarProb = cfg.RandomVarProb
	s.MaxConflicts = cfg.MaxConflicts
	s.varDecay = cfg.VarDecay
	s.restartBase = cfg.RestartBase
	s.restartGeom = cfg.RestartGeometric
	return s
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefNone)
	s.activity = append(s.activity, 0)
	s.baseAct = append(s.baseAct, 0)
	s.phase = append(s.phase, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of stored clauses (problem + learnt);
// unit clauses are absorbed into the level-0 trail and not counted.
func (s *Solver) NumClauses() int { return len(s.heads) }

func (s *Solver) litValue(l Lit) int8 {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// clauseLits returns the (mutable) literal slice of a clause.
func (s *Solver) clauseLits(ci cref) []Lit {
	h := &s.heads[ci]
	return s.arena[h.off : h.off+h.size : h.off+h.size]
}

// pushClause appends a clause to the arena, copying lits.
func (s *Solver) pushClause(lits []Lit, learnt bool) cref {
	off := int32(len(s.arena))
	s.arena = append(s.arena, lits...)
	s.heads = append(s.heads, clsHead{off: off, size: int32(len(lits)), learnt: learnt})
	return cref(len(s.heads) - 1)
}

// AddClause adds a clause to the solver. It returns false if the clause
// makes the formula trivially unsatisfiable. Clauses may be added between
// Solve calls (e.g. blocking clauses for model enumeration).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Normalize: sort-free dedup, drop false lits, detect tautology.
	out := s.addTmp[:0]
	for _, l := range lits {
		if l.Var() >= s.NumVars() {
			panic("sat: literal references unallocated variable")
		}
		switch s.litValue(l) {
		case 1:
			s.addTmp = out
			return true // satisfied at level 0
		case -1:
			continue // falsified at level 0: drop
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				s.addTmp = out
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	s.addTmp = out[:0]
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefNone)
		if s.propagate() != crefNone {
			s.unsat = true
			return false
		}
		return true
	}
	ci := s.pushClause(out, false)
	s.attach(ci)
	return true
}

func (s *Solver) attach(ci cref) {
	cl := s.clauseLits(ci)
	s.watches[cl[0].Neg()] = append(s.watches[cl[0].Neg()], ci)
	s.watches[cl[1].Neg()] = append(s.watches[cl[1].Neg()], ci)
}

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = -1
	} else {
		s.assigns[v] = 1
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// reference or crefNone.
func (s *Solver) propagate() cref {
	s.dirty = true // watch lists and clause lit order may be permuted below
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		confl := crefNone
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			cl := s.clauseLits(ci)
			// Ensure the false literal (p.Neg()) is cl[1].
			if cl[0] == p.Neg() {
				cl[0], cl[1] = cl[1], cl[0]
			}
			// If cl[0] is already true the clause is satisfied.
			if s.litValue(cl[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(cl); k++ {
				if s.litValue(cl[k]) != -1 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1].Neg()] = append(s.watches[cl[1].Neg()], ci)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, ci)
			if s.litValue(cl[0]) == -1 {
				// Conflict: keep the remaining watches and bail.
				kept = append(kept, ws[i+1:]...)
				confl = ci
				break
			}
			s.uncheckedEnqueue(cl[0], ci)
		}
		s.watches[p] = kept
		if confl != crefNone {
			return confl
		}
	}
	return crefNone
}

// analyze performs first-UIP conflict analysis. It returns the learnt clause
// (with the asserting literal first; valid until the next conflict) and the
// backtrack level.
func (s *Solver) analyze(confl cref) ([]Lit, int32) {
	learnt := append(s.learntTmp[:0], 0) // slot 0 for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	cleanup := s.seenTmp[:0]

	for {
		for _, q := range s.clauseLits(confl) {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal of the current level on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Compute backtrack level = max level among learnt[1:].
	btLevel := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, v := range cleanup {
		s.seen[v] = false
	}
	s.learntTmp = learnt
	s.seenTmp = cleanup[:0]
	return learnt, btLevel
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayActivities() { s.varInc /= s.varDecay }

// BoostVar raises a variable's initial activity so it is decided early.
// The bit-blaster boosts the bits of named input variables: together with
// the zero default phase, this biases models of underconstrained formulas
// toward zero inputs, mimicking Z3's default models. The boost amount is
// also recorded as the variable's base activity, which ResetSearch restores.
func (s *Solver) BoostVar(v int, amount float64) {
	s.activity[v] += s.varInc * amount
	s.baseAct[v] += amount
	s.heap.update(v)
}

// ResetSearch rewinds the solver's search heuristics to their initial
// state — saved phases cleared, activities restored to the BoostVar base
// values, the activity increment reset, and the randomized-decision stream
// reseeded — while keeping the clause database (including learnt clauses)
// intact. Incremental callers that interleave logically independent queries
// on one solver (e.g. per-coverage-class checks under assumptions) use it so
// each query finds the same minimal-model-style answer a fresh solver over
// the same CNF would, instead of inheriting the previous query's phases.
func (s *Solver) ResetSearch(seed int64) {
	s.cancelUntil(0)
	s.rng = rand.New(rand.NewSource(seed))
	s.varInc = 1
	for v := range s.assigns {
		s.phase[v] = 0
		s.activity[v] = s.baseAct[v]
	}
	s.heap.rebuild(s.assigns)
}

func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= int(s.trailLim[lvl]); i-- {
		v := s.trail[i].Var()
		if s.assigns[v] == 1 {
			s.phase[v] = 1
		} else {
			s.phase[v] = -1
		}
		s.assigns[v] = 0
		s.reason[v] = crefNone
		s.heap.insert(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	if s.RandomVarProb > 0 && s.rng.Float64() < s.RandomVarProb {
		// Try a few random picks before falling back to VSIDS.
		for try := 0; try < 8; try++ {
			v := s.rng.Intn(s.NumVars())
			if s.assigns[v] == 0 {
				return v
			}
		}
	}
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assigns[v] == 0 {
			return v
		}
	}
	return -1
}

func (s *Solver) pickPhase(v int) bool {
	if s.RandomPhaseProb > 0 && s.rng.Float64() < s.RandomPhaseProb {
		return s.rng.Intn(2) == 0
	}
	switch s.phase[v] {
	case 1:
		return true
	case -1:
		return false
	}
	return s.DefaultPhase
}

// luby computes the Luby restart sequence value for index x (0-based):
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}

// restartBudget returns the conflict budget of the r-th restart interval
// under the configured policy: Luby (default) or geometric (×1.5).
func (s *Solver) restartBudget(r int64) int64 {
	if s.restartGeom {
		b := s.restartBase
		for i := int64(0); i < r; i++ {
			b += b >> 1
		}
		return b
	}
	return luby(r) * s.restartBase
}

// Solve searches for a satisfying assignment consistent with the given
// assumption literals. It returns Sat, Unsat, or Unknown (only when
// MaxConflicts is exceeded within this call, or the context is cancelled).
//
// Assumptions are enqueued as pseudo-decisions at successive decision
// levels before any search decision, in the MiniSat style: restarts and
// conflict-driven backjumps may cancel below the assumption levels, and the
// search loop re-establishes whatever assumptions were unwound before
// picking the next branch variable. An Unsat result under non-empty
// assumptions means only that the assumptions are inconsistent with the
// clause database; the solver stays usable and later calls (with other
// assumptions, or none) may still return Sat. After Sat, the full model —
// including the assumption literals — is readable through Value and Model
// until the next Solve or AddClause call.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsat {
		return Unsat
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		return Unknown
	}
	s.cancelUntil(0)
	if s.propagate() != crefNone {
		s.unsat = true
		return Unsat
	}
	for _, a := range assumptions {
		if a.Var() >= s.NumVars() {
			panic("sat: assumption references unallocated variable")
		}
	}
	restart := int64(0)
	budget := s.restartBudget(restart)
	conflictsHere := int64(0)
	startConflicts := s.Conflicts

	for {
		confl := s.propagate()
		if confl != crefNone {
			s.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crefNone)
			} else {
				ci := s.pushClause(learnt, true)
				s.Learnt++
				s.attach(ci)
				s.uncheckedEnqueue(learnt[0], ci)
			}
			s.decayActivities()
			if s.MaxConflicts > 0 && s.Conflicts-startConflicts >= s.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if s.ctx != nil && s.Conflicts&ctxCheckMask == 0 && s.ctx.Err() != nil {
				s.cancelUntil(0)
				return Unknown
			}
			if conflictsHere >= budget {
				// Restart. The boundary is also the cheap place to notice a
				// lost portfolio race: frequently-restarting helpers stop
				// burning cycles well before the every-1024th-conflict poll.
				conflictsHere = 0
				restart++
				budget = s.restartBudget(restart)
				s.cancelUntil(0)
				if s.ctx != nil && s.ctx.Err() != nil {
					return Unknown
				}
				if s.share != nil {
					if !s.shareSync() {
						return Unsat
					}
				}
			}
			continue
		}
		// Re-establish assumptions unwound by backjumps or restarts: one
		// pseudo-decision level per assumption, before any real decision.
		next := Lit(-1)
		for int(s.decisionLevel()) < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.litValue(p) {
			case 1:
				// Already satisfied: open an empty level so the remaining
				// assumptions keep their level alignment.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case -1:
				// The clause database forces the complement: unsat under
				// these assumptions, but not globally.
				s.cancelUntil(0)
				return Unsat
			default:
				next = p
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v == -1 {
				return Sat // all variables assigned
			}
			s.Decisions++
			next = MkLit(v, !s.pickPhase(v))
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(next, crefNone)
	}
}

// Value returns the value of variable v in the last model (false when
// unassigned, which cannot happen after Sat).
func (s *Solver) Value(v int) bool { return s.assigns[v] == 1 }

// Model returns a copy of the current satisfying assignment.
func (s *Solver) Model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.assigns[v] == 1
	}
	return m
}

// ---------------------------------------------------------------------------
// Indexed binary max-heap over variable activities (MiniSat order heap).
// ---------------------------------------------------------------------------

type varHeap struct {
	act  *[]float64
	heap []int
	pos  []int // pos[v] = index in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap { return &varHeap{act: act} }

func (h *varHeap) less(a, b int) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v int) bool { return v < len(h.pos) && h.pos[v] >= 0 }

func (h *varHeap) insert(v int) {
	for v >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v])
}

func (h *varHeap) update(v int) {
	if h.contains(v) {
		h.up(h.pos[v])
	}
}

// rebuild discards the heap and reinserts every unassigned variable in
// index order, so the layout (and therefore tie-breaking among equal
// activities) matches a freshly-constructed solver's heap.
func (h *varHeap) rebuild(assigns []int8) {
	h.heap = h.heap[:0]
	for i := range h.pos {
		h.pos[i] = -1
	}
	for v, a := range assigns {
		if a == 0 {
			h.insert(v)
		}
	}
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return v
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
