package sat

import (
	"math/rand"
	"testing"
)

func TestAssumptionsBasic(t *testing.T) {
	s := New(1)
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	if s.Solve(MkLit(a, true)) != Sat {           // assume ¬a
		t.Fatal("sat under ¬a expected")
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatal("model must satisfy assumption ¬a and clause via b")
	}
	if s.Solve(MkLit(a, false)) != Sat { // assume a
		t.Fatal("sat under a expected")
	}
	if !s.Value(a) {
		t.Fatal("model must satisfy assumption a")
	}
}

func TestUnsatUnderAssumptionsNotGlobal(t *testing.T) {
	s := New(1)
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	s.AddClause(MkLit(a, true), MkLit(b, true))   // ¬a ∨ ¬b
	if s.Solve(MkLit(a, false), MkLit(b, false)) != Unsat {
		t.Fatal("a ∧ b contradicts ¬a ∨ ¬b")
	}
	// The solver must remain usable and globally satisfiable.
	if s.Solve() != Sat {
		t.Fatal("still sat without assumptions")
	}
	if s.Solve(MkLit(a, false)) != Sat {
		t.Fatal("sat under a alone")
	}
	if !s.Value(a) || s.Value(b) {
		t.Fatal("a forces ¬b")
	}
}

func TestAssumptionConflictsWithUnit(t *testing.T) {
	s := New(1)
	a := s.NewVar()
	s.AddClause(MkLit(a, false)) // a
	if s.Solve(MkLit(a, true)) != Unsat {
		t.Fatal("assumption ¬a contradicts unit a")
	}
	if s.Solve() != Sat || !s.Value(a) {
		t.Fatal("globally sat with a=true")
	}
}

// TestActivationLiteralScoping is the tentpole usage pattern: clauses of the
// form (¬act ∨ c) activated per query, with scoped blocking clauses.
func TestActivationLiteralScoping(t *testing.T) {
	s := New(7)
	x := s.NewVar()
	act1, act2 := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(act1, true), MkLit(x, false)) // act1 ⇒ x
	s.AddClause(MkLit(act2, true), MkLit(x, true))  // act2 ⇒ ¬x
	if s.Solve(MkLit(act1, false)) != Sat || !s.Value(x) {
		t.Fatal("under act1, x must hold")
	}
	if s.Solve(MkLit(act2, false)) != Sat || s.Value(x) {
		t.Fatal("under act2, ¬x must hold")
	}
	if s.Solve(MkLit(act1, false), MkLit(act2, false)) != Unsat {
		t.Fatal("both scopes together are contradictory")
	}
	// Scoped blocking: forbid x=true only inside scope 1.
	s.AddClause(MkLit(act1, true), MkLit(x, true))
	if s.Solve(MkLit(act1, false)) != Unsat {
		t.Fatal("scope 1 exhausted")
	}
	if s.Solve(MkLit(act2, false)) != Sat {
		t.Fatal("scope 2 unaffected by scope 1's blocking")
	}
}

// TestAssumptionsAgainstBruteForce cross-checks Solve(assumptions) on random
// small instances against exhaustive enumeration.
func TestAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		nv := 4 + rng.Intn(4)
		nc := 3 + rng.Intn(12)
		clauses := make([][]Lit, nc)
		for i := range clauses {
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				clauses[i] = append(clauses[i], MkLit(rng.Intn(nv), rng.Intn(2) == 0))
			}
		}
		var assumptions []Lit
		seen := map[int]bool{}
		for j := 0; j < 1+rng.Intn(2); j++ {
			v := rng.Intn(nv)
			if !seen[v] {
				seen[v] = true
				assumptions = append(assumptions, MkLit(v, rng.Intn(2) == 0))
			}
		}
		sats := func(model uint) bool {
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					if (model>>uint(l.Var())&1 == 1) != l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			for _, l := range assumptions {
				if (model>>uint(l.Var())&1 == 1) == l.Sign() {
					return false
				}
			}
			return true
		}
		want := Unsat
		for model := uint(0); model < 1<<uint(nv); model++ {
			if sats(model) {
				want = Sat
				break
			}
		}
		s := New(int64(iter))
		s.RandomPhaseProb = 0.2
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			ok = s.AddClause(c...) && ok
		}
		got := s.Solve(assumptions...)
		if !ok && got == Unsat {
			continue
		}
		if got != want {
			t.Fatalf("iter %d: got %v, brute force says %v", iter, got, want)
		}
		if got == Sat {
			var model uint
			for v := 0; v < nv; v++ {
				if s.Value(v) {
					model |= 1 << uint(v)
				}
			}
			if !sats(model) {
				t.Fatalf("iter %d: reported model violates formula or assumptions", iter)
			}
		}
	}
}

// TestResetSearchRestoresPhases checks ResetSearch's contract: saved phases
// and activities from intervening queries are discarded, so a repeated query
// reproduces its original (minimal, zero-default) model instead of echoing
// whatever the last search assigned. This is what lets logically independent
// streams share one solver without their searches contaminating each other.
func TestResetSearchRestoresPhases(t *testing.T) {
	s := New(3)
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	if s.Solve() != Sat {
		t.Fatal("sat expected")
	}
	wantA, wantB := s.Value(a), s.Value(b)
	// An unrelated query flips the assignment; phase saving now remembers it.
	if s.Solve(MkLit(b, true)) != Sat || !s.Value(a) {
		t.Fatal("assuming ¬b must force a")
	}
	s.ResetSearch(3)
	if s.Solve() != Sat {
		t.Fatal("sat expected after reset")
	}
	if s.Value(a) != wantA || s.Value(b) != wantB {
		t.Fatalf("reset query model (%v,%v) differs from original (%v,%v)",
			s.Value(a), s.Value(b), wantA, wantB)
	}
}
