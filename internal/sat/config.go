package sat

// Config is the solver's search configuration, extracted so portfolio
// workers can run diversified searches over one shared problem encoding.
// The zero value (plus a seed) reproduces the classic configuration that
// New has always used: zero default phase, no randomized decisions, VSIDS
// decay 0.95, Luby restarts with base 100, no conflict budget.
type Config struct {
	// Seed drives every randomized decision (random phases/variables and
	// nothing else); two solvers with equal configs and inputs behave
	// identically.
	Seed int64

	// DefaultPhase is the polarity used for a decision variable with no
	// saved phase. False (assign 0) yields Z3-style minimal models and is
	// load-bearing for unguided generation; see the package comment.
	DefaultPhase bool

	// RandomPhaseProb is the probability a decision takes a random
	// polarity; RandomVarProb the probability it picks a random variable.
	RandomPhaseProb float64
	RandomVarProb   float64

	// VarDecay is the VSIDS activity decay factor in (0,1); 0 means the
	// classic 0.95. Smaller values make the search more reactive to recent
	// conflicts, larger values more conservative.
	VarDecay float64

	// RestartBase scales the restart intervals; 0 means the classic 100.
	RestartBase int64

	// RestartGeometric switches from the Luby sequence to a geometric
	// (×1.5) restart schedule.
	RestartGeometric bool

	// MaxConflicts, when positive, bounds each Solve call; exceeding it
	// returns Unknown.
	MaxConflicts int64
}

func (c Config) withDefaults() Config {
	if c.VarDecay == 0 {
		c.VarDecay = 0.95
	}
	if c.RestartBase == 0 {
		c.RestartBase = 100
	}
	return c
}

// mixSeed derives a decorrelated seed from (seed, i) via splitmix64, so
// portfolio workers explore genuinely different random sequences rather
// than offset copies of one stream.
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// DefaultPortfolioConfigs returns n diversified worker configurations for a
// portfolio built from base. Index 0 is base verbatim — it is the canonical
// worker whose models a Portfolio reports, which is what makes portfolio
// results independent of n (see Portfolio). Helpers vary the VSIDS decay,
// restart policy, and phase randomization, each with a seed mixed from
// base.Seed so reruns reproduce.
func DefaultPortfolioConfigs(base Config, n int) []Config {
	if n < 1 {
		n = 1
	}
	cfgs := make([]Config, n)
	cfgs[0] = base
	for i := 1; i < n; i++ {
		c := base
		c.Seed = mixSeed(base.Seed, i)
		switch (i - 1) % 4 {
		case 0:
			// Aggressive decay + geometric restarts: dives deep fast.
			c.VarDecay = 0.85
			c.RestartGeometric = true
		case 1:
			// Conservative decay, long Luby intervals: steady refuter.
			c.VarDecay = 0.99
			c.RestartBase = 256
		case 2:
			// Frequent restarts with phase noise: model diversity.
			c.VarDecay = 0.95
			c.RestartBase = 32
			c.RandomPhaseProb = 0.02
		case 3:
			// Very reactive VSIDS with mild variable noise.
			c.VarDecay = 0.75
			c.RandomVarProb = 0.01
		}
		cfgs[i] = c
	}
	return cfgs
}
