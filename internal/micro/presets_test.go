package micro

import (
	"strings"
	"testing"
)

// TestPresetA53IsDefault: the a53 preset IS today's default platform — the
// contract that keeps a matrix campaign's A53 row byte-identical to a plain
// single-platform campaign.
func TestPresetA53IsDefault(t *testing.T) {
	got, err := Preset("a53")
	if err != nil {
		t.Fatal(err)
	}
	if got != DefaultConfig() {
		t.Fatalf("Preset(a53) = %+v, want DefaultConfig()", got)
	}
}

// TestPresetsAreWithDefaultsStable: every preset is a fully-specified config —
// WithDefaults must be a no-op on it. A preset that relies on WithDefaults
// filling a field would silently change when the defaults do.
func TestPresetsAreWithDefaultsStable(t *testing.T) {
	for _, name := range PresetNames() {
		c, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if merged := c.WithDefaults(); merged != c {
			t.Errorf("%s: WithDefaults changed the preset:\n  preset: %+v\n  merged: %+v", name, c, merged)
		}
	}
}

// TestPresetNameHandling: lookup is case- and whitespace-insensitive, and an
// unknown name errors listing the known ones.
func TestPresetNameHandling(t *testing.T) {
	if _, err := Preset(" A72 "); err != nil {
		t.Errorf("case/space-normalized lookup failed: %v", err)
	}
	_, err := Preset("pentium")
	if err == nil {
		t.Fatal("unknown preset must error")
	}
	for _, want := range []string{"a53", "a72", "m0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should list known preset %q: %v", want, err)
		}
	}
}

// TestPresetNamesSortedAndComplete: PresetNames is sorted (stable CLI help
// and error output) and covers the three headline platforms plus every
// ablation axis.
func TestPresetNamesSorted(t *testing.T) {
	names := PresetNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("PresetNames not sorted: %v", names)
		}
	}
	if len(names) < 11 {
		t.Errorf("expected at least 11 presets (3 platforms + 8 ablations), got %d: %v", len(names), names)
	}
}

// TestPresetsDistinguishable: each headline platform builds a distinct
// machine configuration — a matrix over {a53, a72, m0} is not a matrix over
// one platform three times.
func TestPresetsDistinguishable(t *testing.T) {
	a53, a72, m0 := A53Like(), A72Like(), InOrderM()
	if a53 == a72 || a53 == m0 || a72 == m0 {
		t.Fatal("headline presets must be pairwise distinct")
	}
	if m0.SpecWindow != NoSpeculation {
		t.Error("InOrderM must not speculate")
	}
	if !a72.ForwardTransientLoads {
		t.Error("A72Like must forward transient loads")
	}
}
