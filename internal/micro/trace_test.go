package micro

import (
	"math/rand"
	"strings"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/expr"
)

func TestTraceRecordsAccessesAndPrefetch(t *testing.T) {
	m := New(DefaultConfig())
	tr := &Trace{}
	m.Attach(tr)
	p, _ := arm.Parse("t", `
        ldr x1, [x0]
        ldr x2, [x0, #0x40]
        ldr x3, [x0, #0x80]
        hlt`)
	m.LoadState(map[string]uint64{"x0": 0}, expr.NewMemModel(0))
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.Accesses(); len(got) != 3 || got[0] != 0 || got[1] != 0x40 || got[2] != 0x80 {
		t.Fatalf("accesses: %#v", got)
	}
	if pf := tr.Prefetches(); len(pf) != 1 || pf[0] != 0xc0 {
		t.Fatalf("prefetches: %#v", pf)
	}
	if tr.Mispredictions() != 0 || len(tr.TransientAccesses()) != 0 {
		t.Error("no speculation expected")
	}
	if !strings.Contains(tr.String(), "prefetch") {
		t.Errorf("trace rendering:\n%s", tr)
	}
}

func TestTraceRecordsSpeculation(t *testing.T) {
	m := New(DefaultConfig())
	p, _ := arm.Parse("t", siscloakSrc)
	// Train toward the body, then attack.
	train := map[string]uint64{"x0": 0, "x1": 8, "x5": 0x10000, "x7": 0x20000}
	if err := trainTaken(m, p, train, 4); err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	m.Attach(tr)
	mm := expr.NewMemModel(0)
	mm.Set(0x10000+16, 0x40*9)
	m.LoadState(map[string]uint64{"x0": 16, "x1": 8, "x5": 0x10000, "x7": 0x20000}, mm)
	m.ResetMicro()
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Mispredictions() != 1 {
		t.Fatalf("mispredictions: %d", tr.Mispredictions())
	}
	ta := tr.TransientAccesses()
	if len(ta) != 1 || ta[0] != 0x20000+0x40*9 {
		t.Fatalf("transient accesses: %#v", ta)
	}
	// The trace includes a speculate event with the transient flag.
	found := false
	for _, e := range tr.Events {
		if e.Kind == EvSpeculate && e.Transient {
			found = true
		}
	}
	if !found {
		t.Error("no speculate event recorded")
	}
}

func TestTraceDetach(t *testing.T) {
	m := New(DefaultConfig())
	tr := &Trace{}
	m.Attach(tr)
	m.Attach(nil)
	p, _ := arm.Parse("t", "ldr x1, [x0]\nhlt")
	m.LoadState(nil, expr.NewMemModel(0))
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 0 {
		t.Error("detached trace must not record")
	}
}

func TestTraceNoiseEvent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseProb = 1
	m := New(cfg)
	tr := &Trace{}
	m.Attach(tr)
	p, _ := arm.Parse("t", "hlt")
	m.LoadState(nil, expr.NewMemModel(0))
	if err := m.Run(p, 0, newRand(3)); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Kind != EvNoise || tr.Events[0].PC != -1 {
		t.Fatalf("events: %v", tr.Events)
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvAccess, EvPrefetch, EvBranch, EvSpeculate, EvNoise} {
		if strings.Contains(k.String(), "?") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// newRand is a tiny helper so the trace tests read cleanly.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
