package micro

// PredictorKind selects the branch predictor wired into a Machine. The zero
// value is the per-PC PHT the campaigns have always used, so existing
// configurations keep today's behavior bit for bit.
type PredictorKind uint8

// Predictor kinds.
const (
	// PredPHT is the original pattern-history table: one 2-bit saturating
	// counter per branch PC, unbounded (no aliasing).
	PredPHT PredictorKind = iota
	// PredAlwaysTaken is the static predictor of cores without dynamic
	// prediction hardware (M-class): every conditional branch is predicted
	// taken, training is a no-op.
	PredAlwaysTaken
	// PredBimodal is a fixed-size table of 2-bit counters indexed by
	// pc mod 2^PredictorBits — like PredPHT but with aliasing between
	// branches that share a table slot, the property that makes its
	// mistraining behavior platform-distinguishable.
	PredBimodal
	// PredGshare is a gshare-lite predictor: a global branch-history
	// register XORed into the PC to index the counter table, so a branch's
	// prediction depends on the outcomes of the branches before it.
	PredGshare
)

func (k PredictorKind) String() string {
	switch k {
	case PredPHT:
		return "pht"
	case PredAlwaysTaken:
		return "always-taken"
	case PredBimodal:
		return "bimodal"
	case PredGshare:
		return "gshare"
	}
	return "predictor(?)"
}

// Predictor is the branch-direction predictor contract of the simulated
// core: predict the branch at an instruction index, train on the resolved
// direction, reset to power-on state. Implementations are deterministic
// state machines — prediction sequences are a pure function of the update
// sequence — which is what keeps campaigns reproducible per seed.
type Predictor interface {
	Predict(pc int) bool
	Update(pc int, taken bool)
	Reset()
}

// NewPredictor builds the predictor selected by cfg. PredictorBits sizes the
// bimodal and gshare tables (the PHT is unbounded and always-taken is
// stateless); a zero PredictorBits falls back to the default table size so
// a config that skipped WithDefaults still gets a sane machine.
func NewPredictor(cfg Config) Predictor {
	bits := cfg.PredictorBits
	if bits == 0 {
		bits = defaultPredictorBits
	}
	switch cfg.Predictor {
	case PredAlwaysTaken:
		return AlwaysTaken{}
	case PredBimodal:
		return NewBimodal(bits)
	case PredGshare:
		return NewGshare(bits)
	default:
		return NewBranchPredictor()
	}
}

// AlwaysTaken is the static taken predictor.
type AlwaysTaken struct{}

// Predict implements Predictor.
func (AlwaysTaken) Predict(int) bool { return true }

// Update implements Predictor (static predictors do not train).
func (AlwaysTaken) Update(int, bool) {}

// Reset implements Predictor.
func (AlwaysTaken) Reset() {}

// ctrTaken, ctrUpdate: the shared 2-bit saturating-counter automaton
// (00/01 not-taken, 10/11 taken).
func ctrTaken(c uint8) bool { return c >= 2 }

func ctrUpdate(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// Bimodal is a fixed-size 2-bit-counter table indexed by the low PC bits.
type Bimodal struct {
	table []uint8
	mask  int
}

// NewBimodal builds a bimodal predictor with a 2^bits-entry table, all
// counters weakly not-taken.
func NewBimodal(bits uint) *Bimodal {
	n := 1 << bits
	return &Bimodal{table: make([]uint8, n), mask: n - 1}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc int) bool { return ctrTaken(b.table[pc&b.mask]) }

// Update implements Predictor.
func (b *Bimodal) Update(pc int, taken bool) {
	b.table[pc&b.mask] = ctrUpdate(b.table[pc&b.mask], taken)
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// Gshare is the gshare-lite predictor: global history XOR PC indexes the
// counter table; the history register shifts in every resolved direction.
type Gshare struct {
	table   []uint8
	mask    int
	history int
}

// NewGshare builds a gshare predictor with a 2^bits-entry table and a
// bits-wide global history register, all counters weakly not-taken.
func NewGshare(bits uint) *Gshare {
	n := 1 << bits
	return &Gshare{table: make([]uint8, n), mask: n - 1}
}

func (g *Gshare) index(pc int) int { return (pc ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *Gshare) Predict(pc int) bool { return ctrTaken(g.table[g.index(pc)]) }

// Update implements Predictor. The counter indexed under the pre-update
// history is trained (the slot Predict consulted), then the direction shifts
// into the history register.
func (g *Gshare) Update(pc int, taken bool) {
	i := g.index(pc)
	g.table[i] = ctrUpdate(g.table[i], taken)
	g.history = g.history << 1 & g.mask
	if taken {
		g.history |= 1
	}
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.history = 0
}
