package micro

import (
	"fmt"
	"strings"
)

// Event is one microarchitectural occurrence during a Run, for debugging
// experiments and understanding counterexamples (the role the original
// framework's experiment logs and debugger hooks play).
type Event struct {
	Kind EventKind
	// PC is the instruction index the event belongs to (-1 for events
	// outside instruction execution, e.g. noise fills).
	PC int
	// Addr is the memory address for access/fill/prefetch events.
	Addr uint64
	// Hit reports cache hit/miss for access events.
	Hit bool
	// Taken / Predicted describe branch events.
	Taken, Predicted bool
	// Transient marks events from the speculation window.
	Transient bool
}

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvAccess EventKind = iota // demand or transient data access
	EvPrefetch
	EvBranch
	EvSpeculate // a speculation window opened
	EvNoise
)

func (k EventKind) String() string {
	switch k {
	case EvAccess:
		return "access"
	case EvPrefetch:
		return "prefetch"
	case EvBranch:
		return "branch"
	case EvSpeculate:
		return "speculate"
	case EvNoise:
		return "noise"
	}
	return "event(?)"
}

// String renders one event compactly.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s pc=%d", e.Kind, e.PC)
	switch e.Kind {
	case EvAccess:
		fmt.Fprintf(&sb, " addr=%#x hit=%v", e.Addr, e.Hit)
	case EvPrefetch, EvNoise:
		fmt.Fprintf(&sb, " addr=%#x", e.Addr)
	case EvBranch:
		fmt.Fprintf(&sb, " taken=%v predicted=%v", e.Taken, e.Predicted)
	}
	if e.Transient {
		sb.WriteString(" transient")
	}
	return sb.String()
}

// Trace collects events when attached to a machine via Machine.Attach.
type Trace struct {
	Events []Event
}

// Attach installs a trace collector; pass nil to detach.
func (m *Machine) Attach(t *Trace) { m.trace = t }

func (m *Machine) emit(e Event) {
	if m.trace != nil {
		m.trace.Events = append(m.trace.Events, e)
	}
}

// Accesses returns the addresses of all (demand and transient) accesses in
// program order.
func (t *Trace) Accesses() []uint64 {
	var out []uint64
	for _, e := range t.Events {
		if e.Kind == EvAccess {
			out = append(out, e.Addr)
		}
	}
	return out
}

// TransientAccesses returns only the speculative access addresses.
func (t *Trace) TransientAccesses() []uint64 {
	var out []uint64
	for _, e := range t.Events {
		if e.Kind == EvAccess && e.Transient {
			out = append(out, e.Addr)
		}
	}
	return out
}

// Prefetches returns the prefetched addresses.
func (t *Trace) Prefetches() []uint64 {
	var out []uint64
	for _, e := range t.Events {
		if e.Kind == EvPrefetch {
			out = append(out, e.Addr)
		}
	}
	return out
}

// Mispredictions counts branch events whose prediction disagreed with the
// outcome.
func (t *Trace) Mispredictions() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == EvBranch && e.Taken != e.Predicted {
			n++
		}
	}
	return n
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, e := range t.Events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
