package micro

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// oneSetConfig is a 1-set cache: every access lands in the same set, so
// replacement decisions are fully exposed.
func oneSetConfig(ways int, r Replacement) Config {
	cfg := DefaultConfig()
	cfg.Sets = 1
	cfg.Ways = ways
	cfg.Replacement = r
	return cfg
}

// lineAddr maps a small line number to an address in set 0 of a 1-set cache.
func lineAddr(cfg Config, line uint64) uint64 { return line << cfg.LineBits }

// TestLRUHitRefreshesRecency: a hit moves the line to most-recently-used, so
// the next eviction takes the untouched oldest line instead.
func TestLRUHitRefreshesRecency(t *testing.T) {
	cfg := oneSetConfig(4, LRU)
	c := NewCache(cfg)
	for line := uint64(0); line < 4; line++ {
		c.Access(lineAddr(cfg, line)) // fill: 0 oldest ... 3 newest
	}
	c.Access(lineAddr(cfg, 0)) // hit refreshes line 0
	c.Access(lineAddr(cfg, 4)) // miss: must evict line 1, the true LRU
	if c.Present(lineAddr(cfg, 1)) {
		t.Error("line 1 should have been evicted (oldest after the hit on 0)")
	}
	for _, keep := range []uint64{0, 2, 3, 4} {
		if !c.Present(lineAddr(cfg, keep)) {
			t.Errorf("line %d should have survived", keep)
		}
	}
}

// TestLRUMatchesReferenceModel is the quickcheck LRU invariant: against any
// access sequence, the cache holds exactly the lines a reference
// most-recently-used list holds — which implies evictions happen in access
// order (the front of the list goes first).
func TestLRUMatchesReferenceModel(t *testing.T) {
	cfg := oneSetConfig(4, LRU)
	f := func(seq []uint8) bool {
		c := NewCache(cfg)
		var model []uint64 // least recent at the front
		for _, s := range seq {
			line := uint64(s % 16)
			c.Access(lineAddr(cfg, line))
			at := -1
			for i, l := range model {
				if l == line {
					at = i
					break
				}
			}
			if at >= 0 {
				model = append(model[:at], model[at+1:]...)
			}
			model = append(model, line)
			if len(model) > cfg.Ways {
				model = model[1:]
			}
			// The cache and the model must agree on every candidate line.
			for l := uint64(0); l < 16; l++ {
				inModel := false
				for _, ml := range model {
					if ml == l {
						inModel = true
					}
				}
				if c.Present(lineAddr(cfg, l)) != inModel {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

// TestTreePLRUVictimIsLeafOfVictimPath: on every eviction, the way that is
// replaced is exactly the leaf the PLRU direction bits select at that
// moment — the tree's well-formedness contract, checked for power-of-two
// and odd associativities.
func TestTreePLRUVictimIsLeafOfVictimPath(t *testing.T) {
	for _, ways := range []int{2, 3, 4, 5, 8} {
		cfg := oneSetConfig(ways, TreePLRU)
		f := func(seq []uint8) bool {
			c := NewCache(cfg)
			filled := 0
			for _, s := range seq {
				line := uint64(s % 32)
				addr := lineAddr(cfg, line)
				wasPresent := c.Present(addr)
				wantVictim := c.plru[0].victim()
				before := make([]uint64, ways)
				for i, l := range c.sets[0] {
					if l.valid {
						before[i] = l.tag
					}
				}
				c.Access(addr)
				if wasPresent {
					continue
				}
				if filled < ways {
					filled++
					continue // invalid-way fill, no eviction yet
				}
				// Eviction: exactly the predicted leaf changed.
				for i, l := range c.sets[0] {
					changed := l.tag != before[i]
					if changed != (i == wantVictim) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(22))}); err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
	}
}

// TestTreePLRUNeverEvictsMostRecent: the most recently accessed way is never
// the victim — touch points every bit on its path away from it.
func TestTreePLRUNeverEvictsMostRecent(t *testing.T) {
	for _, ways := range []int{2, 3, 4, 7, 8} {
		tree := newPLRUTree(ways)
		f := func(seq []uint8) bool {
			for _, s := range seq {
				w := int(s) % ways
				tree.touch(w)
				if tree.victim() == w {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}); err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
	}
}

// TestPseudoRandomSeedDeterminism: with ReplacementSeed fixed, two caches
// walked through the same access sequence evict identically at every step —
// the reproducibility contract campaigns rely on. A different seed must
// eventually diverge on the same sequence (otherwise the property is
// vacuous).
func TestPseudoRandomSeedDeterminism(t *testing.T) {
	cfg := oneSetConfig(4, PseudoRandom)
	cfg.ReplacementSeed = 99
	f := func(seq []uint8) bool {
		c1, c2 := NewCache(cfg), NewCache(cfg)
		for _, s := range seq {
			addr := lineAddr(cfg, uint64(s%32))
			c1.Access(addr)
			c2.Access(addr)
			if !c1.Snapshot(FullView).Equal(c2.Snapshot(FullView)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(24))}); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.ReplacementSeed = 100
	c1, c2 := NewCache(cfg), NewCache(other)
	diverged := false
	for i := 0; i < 4096 && !diverged; i++ {
		addr := lineAddr(cfg, uint64(i%9))
		c1.Access(addr)
		c2.Access(addr)
		diverged = !c1.Snapshot(FullView).Equal(c2.Snapshot(FullView))
	}
	if !diverged {
		t.Error("different ReplacementSeed never diverged: determinism test is vacuous")
	}
}

// TestReplacementPoliciesRespectAssociativity: every policy keeps at most
// Ways lines per set and always keeps the just-accessed line resident.
func TestReplacementPoliciesRespectAssociativity(t *testing.T) {
	for _, pol := range []Replacement{LRU, RoundRobin, PseudoRandom, TreePLRU} {
		cfg := oneSetConfig(4, pol)
		f := func(seq []uint8) bool {
			c := NewCache(cfg)
			for _, s := range seq {
				addr := lineAddr(cfg, uint64(s))
				c.Access(addr)
				if !c.Present(addr) {
					return false
				}
				if tags := c.Snapshot(FullView).Sets[0]; len(tags) > cfg.Ways {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(25))}); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}
