package micro

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: after any sequence of accesses, (1) no set holds more lines
// than its associativity, (2) the most recently accessed address is always
// present, (3) every cached tag was accessed at some point (no invented
// lines when the prefetcher is off).
func TestCacheInvariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 2
	f := func(seq []uint16) bool {
		c := NewCache(cfg)
		seen := map[uint64]bool{}
		var last uint64
		for _, s := range seq {
			addr := uint64(s) << 3 // spread across sets and offsets
			c.Access(addr)
			seen[addr>>cfg.LineBits] = true
			last = addr
		}
		if len(seq) > 0 && !c.Present(last) {
			return false
		}
		snap := c.Snapshot(FullView)
		for set, tags := range snap.Sets {
			if len(tags) > cfg.Ways {
				return false
			}
			for _, tag := range tags {
				line := tag*uint64(cfg.Sets) + uint64(set)
				if !seen[line] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Property: flushing an address removes exactly that line; other cached
// lines survive.
func TestFlushExactness(t *testing.T) {
	f := func(a, b uint16) bool {
		c := NewCache(DefaultConfig())
		addrA, addrB := uint64(a)<<6, uint64(b)<<6
		c.Access(addrA)
		c.Access(addrB)
		c.Flush(addrA)
		if c.Present(addrA) && addrA>>6 != addrB>>6 {
			return false
		}
		if addrA>>6 != addrB>>6 && !c.Present(addrB) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot equality is reflexive and symmetric, and any single
// extra fill in an observable set breaks it.
func TestSnapshotEqualityProperties(t *testing.T) {
	f := func(seq []uint16, extra uint16) bool {
		build := func() *Cache {
			c := NewCache(DefaultConfig())
			for _, s := range seq {
				c.Access(uint64(s) << 6)
			}
			return c
		}
		c1, c2 := build(), build()
		s1, s2 := c1.Snapshot(FullView), c2.Snapshot(FullView)
		if !s1.Equal(s2) || !s2.Equal(s1) || !s1.Equal(s1) {
			return false
		}
		addr := uint64(extra)<<6 | 1<<30 // tag outside the sequence range
		c2.Access(addr)
		return !c1.Snapshot(FullView).Equal(c2.Snapshot(FullView))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the branch predictor saturates — after N >= 2 consistent
// updates it predicts that direction regardless of history length.
func TestPredictorSaturation(t *testing.T) {
	f := func(history []bool, dir bool) bool {
		b := NewBranchPredictor()
		for _, h := range history {
			b.Update(3, h)
		}
		for i := 0; i < 4; i++ {
			b.Update(3, dir)
		}
		return b.Predict(3) == dir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefetcher never proposes a target on another page, and only
// after at least PrefetchRun accesses.
func TestPrefetcherProperties(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seq []uint16) bool {
		p := NewPrefetcher(cfg)
		for i, s := range seq {
			addr := uint64(s) << 4
			target, ok := p.OnAccess(addr)
			if !ok {
				continue
			}
			if i+1 < cfg.PrefetchRun {
				return false // triggered too early
			}
			if target>>cfg.PageBits != addr>>cfg.PageBits {
				return false // crossed a page
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
