package micro

// Tree-PLRU replacement state for one cache set: one direction bit per
// internal node of a binary tree whose leaves are the ways. On an access the
// bits along the accessed way's root-to-leaf path are flipped to point *away*
// from it; on an eviction the bits are followed from the root and the leaf
// they lead to is the victim. This is the classic pseudo-LRU used by many
// L1 designs (and one of the zoo's ablation axes): cheaper than true LRU —
// ways-1 bits per set instead of a full recency order — and observably
// different from it, because the tree only remembers one bit of history per
// subtree pair.
//
// The tree is laid out over an arbitrary way count (not just powers of two)
// by splitting each leaf range [lo,hi) at mid = lo + ceil((hi-lo)/2): the
// internal nodes of a range of n leaves occupy n-1 bit slots, the root at
// the range's base slot, the left subtree immediately after it, the right
// subtree after the left's n_left-1 slots.
type plruTree struct {
	bits []bool // len = ways-1; bit false = victim path goes left
}

func newPLRUTree(ways int) plruTree {
	if ways <= 1 {
		return plruTree{}
	}
	return plruTree{bits: make([]bool, ways-1)}
}

// split returns the midpoint of the leaf range [lo,hi) (left half gets the
// extra leaf on odd sizes) — shared by touch and victim so the two walks
// always agree on the tree shape.
func split(lo, hi int) int { return lo + (hi-lo+1)/2 }

// touch updates the path bits so the next victim walk steers away from way.
func (t plruTree) touch(way int) {
	lo, hi, node := 0, len(t.bits)+1, 0
	for hi-lo > 1 {
		mid := split(lo, hi)
		if way < mid {
			// Accessed on the left: point the victim bit right.
			t.bits[node] = true
			node, hi = node+1, mid
		} else {
			t.bits[node] = false
			node, lo = node+(mid-lo), mid
		}
	}
}

// victim follows the direction bits from the root and returns the leaf way
// they select. It does not modify the tree; the subsequent fill's touch
// redirects the path.
func (t plruTree) victim() int {
	lo, hi, node := 0, len(t.bits)+1, 0
	for hi-lo > 1 {
		mid := split(lo, hi)
		if !t.bits[node] {
			node, hi = node+1, mid
		} else {
			node, lo = node+(mid-lo), mid
		}
	}
	return lo
}
