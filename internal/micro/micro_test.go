package micro

import (
	"math/rand"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/expr"
)

func newM() *Machine { return New(DefaultConfig()) }

func TestCacheBasics(t *testing.T) {
	c := NewCache(DefaultConfig())
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Error("same line should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	c.Flush(0x1000)
	if c.Access(0x1000) {
		t.Error("flushed line should miss")
	}
}

func TestCacheLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 2
	c := NewCache(cfg)
	// Three lines mapping to the same set (stride = sets * linesize).
	s := uint64(cfg.Sets) << cfg.LineBits
	c.Access(0)     // A
	c.Access(s)     // B
	c.Access(0)     // A again (B is now LRU)
	c.Access(2 * s) // C evicts B
	if !c.Present(0) {
		t.Error("A should survive")
	}
	if c.Present(s) {
		t.Error("B should be evicted")
	}
	if !c.Present(2 * s) {
		t.Error("C should be present")
	}
}

func TestSnapshotViews(t *testing.T) {
	c := NewCache(DefaultConfig())
	c.Access(5 << 6)  // set 5
	c.Access(70 << 6) // set 70
	full := c.Snapshot(FullView)
	if len(full.Sets) != 2 {
		t.Fatalf("full view: %d sets", len(full.Sets))
	}
	ar := c.Snapshot(RangeView(61, 127))
	if len(ar.Sets) != 1 {
		t.Fatalf("AR view: %d sets", len(ar.Sets))
	}
	if _, ok := ar.Sets[70]; !ok {
		t.Error("set 70 should be visible in AR view")
	}
	// Equality.
	if !full.Equal(c.Snapshot(FullView)) {
		t.Error("snapshot should equal itself")
	}
	c.Access(6 << 6)
	if full.Equal(c.Snapshot(FullView)) {
		t.Error("snapshots should differ after a fill")
	}
}

func TestPrefetcherTriggersOnStride(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPrefetcher(cfg)
	if _, ok := p.OnAccess(0x0); ok {
		t.Error("no prefetch on first access")
	}
	if _, ok := p.OnAccess(0x40); ok {
		t.Error("no prefetch on second access")
	}
	target, ok := p.OnAccess(0x80)
	if !ok || target != 0xc0 {
		t.Fatalf("third equidistant access should prefetch 0xc0, got %#x/%v", target, ok)
	}
	target, ok = p.OnAccess(0xc0)
	if !ok || target != 0x100 {
		t.Errorf("run continues: got %#x/%v", target, ok)
	}
}

func TestPrefetcherIrregularPattern(t *testing.T) {
	p := NewPrefetcher(DefaultConfig())
	p.OnAccess(0x0)
	p.OnAccess(0x40)
	if _, ok := p.OnAccess(0x100); ok {
		t.Error("stride change must reset the run")
	}
	// 0x40, 0x100, 0x1c0 are three equidistant accesses of the new stride.
	if target, ok := p.OnAccess(0x1c0); !ok || target != 0x280 {
		t.Errorf("new stride re-triggers after three accesses: %#x/%v", target, ok)
	}
}

func TestPrefetcherStopsAtPageBoundary(t *testing.T) {
	p := NewPrefetcher(DefaultConfig())
	// Stride ending just below a 4 KiB page boundary: target crosses it.
	p.OnAccess(0xf80 - 0x80)
	p.OnAccess(0xf80 - 0x40)
	if _, ok := p.OnAccess(0xf80); ok {
		t.Skip("target 0xfc0 still on page") // defensive; not expected
	}
	p2 := NewPrefetcher(DefaultConfig())
	p2.OnAccess(0xf40)
	p2.OnAccess(0xf80)
	if _, ok := p2.OnAccess(0xfc0); ok {
		t.Error("prefetch across the page boundary must be suppressed")
	}
}

func TestBranchPredictorTraining(t *testing.T) {
	b := NewBranchPredictor()
	if b.Predict(0) {
		t.Error("cold predictor should predict not-taken")
	}
	b.Update(0, true)
	b.Update(0, true)
	if !b.Predict(0) {
		t.Error("two taken updates should flip the prediction")
	}
	b.Update(0, false)
	b.Update(0, false)
	if b.Predict(0) {
		t.Error("two not-taken updates should flip it back")
	}
}

func runProg(t *testing.T, m *Machine, src string, regs map[string]uint64, mem map[uint64]uint64) *arm.Program {
	t.Helper()
	p, err := arm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mm := expr.NewMemModel(0)
	for a, v := range mem {
		mm.Set(a, v)
	}
	if err := m.LoadState(regs, mm); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMachineArithmetic(t *testing.T) {
	m := newM()
	runProg(t, m, `
        movz x0, #10
        add x1, x0, #5
        sub x2, x1, x0
        lsl x3, x2, #4
        and x4, x3, #0xf0
        orr x5, x4, x0
        eor x6, x5, x5
        mul x7, x0, x1
        hlt`, nil, nil)
	want := map[arm.Reg]uint64{1: 15, 2: 5, 3: 80, 4: 80, 5: 90, 6: 0, 7: 150}
	for r, w := range want {
		if m.Regs[r] != w {
			t.Errorf("x%d = %d, want %d", r, m.Regs[r], w)
		}
	}
}

func TestMachineLoadsFillCache(t *testing.T) {
	m := newM()
	runProg(t, m, "ldr x1, [x0]\nhlt", map[string]uint64{"x0": 0x2000}, map[uint64]uint64{0x2000: 77})
	if m.Regs[1] != 77 {
		t.Errorf("loaded %d", m.Regs[1])
	}
	if !m.Cache.Present(0x2000) {
		t.Error("load should fill the cache")
	}
}

func TestMachineStrideTriggersPrefetch(t *testing.T) {
	m := newM()
	runProg(t, m, `
        ldr x1, [x0]
        ldr x2, [x0, #0x40]
        ldr x3, [x0, #0x80]
        hlt`, map[string]uint64{"x0": 0}, nil)
	if !m.Cache.Present(0xc0) {
		t.Error("prefetcher should have filled the next line")
	}
	// Same stride but crossing a page boundary: no prefetch.
	m2 := newM()
	runProg(t, m2, `
        ldr x1, [x0]
        ldr x2, [x0, #0x40]
        ldr x3, [x0, #0x80]
        hlt`, map[string]uint64{"x0": 0xf40}, nil)
	if m2.Cache.Present(0x1000) {
		t.Error("prefetch must stop at the page boundary")
	}
}

func TestBranchCorrectPredictionNoSpeculation(t *testing.T) {
	// Cold predictor predicts not-taken; the program's branch is not taken,
	// so there is no misprediction and the body is never touched.
	m := newM()
	runProg(t, m, `
        cmp x0, x1
        b.lo body
        b end
    body:
        ldr x2, [x5]
    end:
        hlt`, map[string]uint64{"x0": 5, "x1": 3, "x5": 0x3000}, nil)
	if m.Cache.Present(0x3000) {
		t.Error("correctly predicted branch must not touch the body load")
	}
	if m.TransientLoads != 0 {
		t.Error("no transient loads expected")
	}
}

// trainMispredict trains the predictor at branch pc so the next execution
// with opposite direction mispredicts.
func trainTaken(m *Machine, p *arm.Program, regs map[string]uint64, times int) error {
	mm := expr.NewMemModel(0)
	for i := 0; i < times; i++ {
		if err := m.LoadState(regs, mm); err != nil {
			return err
		}
		if err := m.Run(p, 0, nil); err != nil {
			return err
		}
	}
	return nil
}

const siscloakSrc = `
        ldr x2, [x5, x0]
        cmp x0, x1
        b.hs end
        ldr x4, [x7, x2]
    end:
        hlt`

func TestSiSCloakSingleSpeculativeLoad(t *testing.T) {
	// SiSCloak (§6.4): x2 is loaded architecturally BEFORE the branch; on a
	// mispredicted taken->not-taken transition the body load [x7 + x2]
	// issues transiently, leaking mem[x5+x0] through the cache.
	p, err := arm.Parse("siscloak", siscloakSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := newM()
	// Train: x0 < x1 (branch b.hs not taken... note b.hs skips the body).
	// Body executes when x0 < x1. Train with in-bounds inputs.
	train := map[string]uint64{"x0": 0, "x1": 8, "x5": 0x10000, "x7": 0x20000}
	if err := trainTaken(m, p, train, 4); err != nil {
		t.Fatal(err)
	}
	// Now attack: x0 >= x1 (body architecturally skipped) but the predictor
	// expects the body to run.
	secret := uint64(0x40 * 33) // lands in set 33
	mm := expr.NewMemModel(0)
	mm.Set(0x10000+16, secret)
	if err := m.LoadState(map[string]uint64{"x0": 16, "x1": 8, "x5": 0x10000, "x7": 0x20000}, mm); err != nil {
		t.Fatal(err)
	}
	m.ResetMicro()
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if m.TransientLoads != 1 {
		t.Fatalf("expected exactly one transient load, got %d", m.TransientLoads)
	}
	if !m.Cache.Present(0x20000 + secret) {
		t.Error("the transient load must leave a cache footprint at B[secret]")
	}
}

const spectreSrc = `
        cmp x0, x1
        b.hs end
        ldr x2, [x5, x0]
        ldr x4, [x7, x2]
    end:
        hlt`

func TestSpectrePHTBlockedByTaint(t *testing.T) {
	// Classic Spectre-PHT: BOTH loads are transient and the second depends
	// on the first. The modelled A53 does not forward transient load
	// results, so only the first load issues — Cortex-A53 is not vulnerable
	// to Spectre-PHT (§6.5), matching ARM's claim.
	p, err := arm.Parse("spectre", spectreSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := newM()
	train := map[string]uint64{"x0": 0, "x1": 8, "x5": 0x10000, "x7": 0x20000}
	if err := trainTaken(m, p, train, 4); err != nil {
		t.Fatal(err)
	}
	secret := uint64(0x40 * 33)
	mm := expr.NewMemModel(0)
	mm.Set(0x10000+16, secret)
	if err := m.LoadState(map[string]uint64{"x0": 16, "x1": 8, "x5": 0x10000, "x7": 0x20000}, mm); err != nil {
		t.Fatal(err)
	}
	m.ResetMicro()
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if m.TransientLoads != 1 {
		t.Fatalf("only the first (independent) load should issue, got %d", m.TransientLoads)
	}
	if !m.Cache.Present(0x10000 + 16) {
		t.Error("first transient load should fill the cache")
	}
	if m.Cache.Present(0x20000 + secret) {
		t.Error("dependent second load must NOT issue (no transient forwarding)")
	}
	// Ablation: an aggressive forwarding core leaks.
	cfg := DefaultConfig()
	cfg.ForwardTransientLoads = true
	m2 := New(cfg)
	if err := trainTaken(m2, p, train, 4); err != nil {
		t.Fatal(err)
	}
	mm2 := expr.NewMemModel(0)
	mm2.Set(0x10000+16, secret)
	if err := m2.LoadState(map[string]uint64{"x0": 16, "x1": 8, "x5": 0x10000, "x7": 0x20000}, mm2); err != nil {
		t.Fatal(err)
	}
	m2.ResetMicro()
	if err := m2.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !m2.Cache.Present(0x20000 + secret) {
		t.Error("forwarding core should be Spectre-PHT vulnerable")
	}
}

func TestTwoIndependentTransientLoads(t *testing.T) {
	// §6.5 Template-B finding: two causally independent loads in the
	// mispredicted branch BOTH issue.
	src := `
        cmp x0, x1
        b.hs end
        ldr x2, [x5]
        ldr x3, [x7]
    end:
        hlt`
	p, err := arm.Parse("indep", src)
	if err != nil {
		t.Fatal(err)
	}
	m := newM()
	regs := map[string]uint64{"x0": 0, "x1": 8, "x5": 0x10000, "x7": 0x20000}
	if err := trainTaken(m, p, regs, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadState(map[string]uint64{"x0": 16, "x1": 8, "x5": 0x10000, "x7": 0x20000}, expr.NewMemModel(0)); err != nil {
		t.Fatal(err)
	}
	m.ResetMicro()
	if err := m.Run(p, 0, nil); err != nil {
		t.Fatal(err)
	}
	if m.TransientLoads != 2 {
		t.Fatalf("both independent loads should issue, got %d", m.TransientLoads)
	}
}

func TestNoStraightLineSpeculation(t *testing.T) {
	m := newM()
	runProg(t, m, `
        b end
        ldr x1, [x5]
    end:
        hlt`, map[string]uint64{"x5": 0x4000}, nil)
	if m.Cache.Present(0x4000) || m.TransientLoads != 0 {
		t.Error("direct unconditional branches must not speculate")
	}
}

func TestFlushReloadTiming(t *testing.T) {
	m := newM()
	probe := uint64(0x8000)
	m.Cache.FlushAll()
	miss := m.AccessTimed(probe)
	hit := m.AccessTimed(probe)
	if miss <= hit {
		t.Errorf("miss (%d cycles) should cost more than hit (%d)", miss, hit)
	}
}

func TestNoiseInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseProb = 1.0
	m := New(cfg)
	p, _ := arm.Parse("nop", "hlt")
	if err := m.LoadState(nil, expr.NewMemModel(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(p, 0, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if len(m.Cache.Snapshot(FullView).Sets) == 0 {
		t.Error("noise should have filled a line")
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	run := func(seed int64) *Snapshot {
		cfg := DefaultConfig()
		cfg.NoiseProb = 0.5
		m := New(cfg)
		p, _ := arm.Parse("t", "ldr x1, [x0]\nhlt")
		m.LoadState(map[string]uint64{"x0": 0x1234}, expr.NewMemModel(0))
		m.Run(p, 0, rand.New(rand.NewSource(seed)))
		return m.Cache.Snapshot(FullView)
	}
	if !run(7).Equal(run(7)) {
		t.Error("same seed must reproduce the same snapshot")
	}
}

func TestMulExtraCycles(t *testing.T) {
	for _, tc := range []struct {
		v    uint64
		want uint64
	}{{0, 0}, {1<<16 - 1, 0}, {1 << 16, 1}, {1 << 32, 2}, {1 << 48, 3}} {
		if got := MulExtraCycles(tc.v); got != tc.want {
			t.Errorf("MulExtraCycles(%#x) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestVarTimeMulChangesCycles(t *testing.T) {
	run := func(op uint64, varTime bool) uint64 {
		cfg := DefaultConfig()
		cfg.VarTimeMul = varTime
		m := New(cfg)
		p, _ := arm.Parse("m", "mul x2, x0, x1\nhlt")
		m.LoadState(map[string]uint64{"x0": 3, "x1": op}, expr.NewMemModel(0))
		m.Run(p, 0, nil)
		return m.Cycles
	}
	small := run(5, true)
	big := run(1<<40, true)
	if big <= small {
		t.Errorf("large multiplier should take longer: %d vs %d", big, small)
	}
	// With the constant-time multiplier the cycles are identical.
	if run(5, false) != run(1<<40, false) {
		t.Error("constant-time multiplier must not depend on operands")
	}
}

func TestReplacementPolicies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 2
	s := uint64(cfg.Sets) << cfg.LineBits // set-conflict stride

	// Round-robin: victims cycle 0,1,0,1 regardless of recency.
	cfg.Replacement = RoundRobin
	c := NewCache(cfg)
	c.Access(0)     // way 0
	c.Access(s)     // way 1
	c.Access(0)     // hit (recency irrelevant)
	c.Access(2 * s) // evicts way 0 (= line A) under round-robin
	if c.Present(0) {
		t.Error("round-robin should evict A despite its recent use")
	}
	if !c.Present(s) || !c.Present(2*s) {
		t.Error("round-robin kept the wrong lines")
	}

	// Pseudo-random: deterministic per seed.
	cfg.Replacement = PseudoRandom
	cfg.ReplacementSeed = 42
	run := func() bool {
		c := NewCache(cfg)
		c.Access(0)
		c.Access(s)
		c.Access(2 * s)
		return c.Present(0)
	}
	if run() != run() {
		t.Error("pseudo-random policy must be reproducible per seed")
	}

	// All policies respect associativity.
	for _, pol := range []Replacement{LRU, RoundRobin, PseudoRandom} {
		cfg.Replacement = pol
		c := NewCache(cfg)
		for i := uint64(0); i < 10; i++ {
			c.Access(i * s)
		}
		count := 0
		for i := uint64(0); i < 10; i++ {
			if c.Present(i * s) {
				count++
			}
		}
		if count != cfg.Ways {
			t.Errorf("%v: %d resident lines in a %d-way set", pol, count, cfg.Ways)
		}
	}
}

func TestReplacementString(t *testing.T) {
	if LRU.String() != "lru" || RoundRobin.String() != "round-robin" || PseudoRandom.String() != "pseudo-random" {
		t.Error("replacement names")
	}
}
