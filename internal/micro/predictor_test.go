package micro

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestNewPredictorDispatch: every kind builds its machine, and a zero
// PredictorBits falls back to the default table size instead of a 1-entry
// table.
func TestNewPredictorDispatch(t *testing.T) {
	cases := []struct {
		kind PredictorKind
		want string
	}{
		{PredPHT, "pht"},
		{PredAlwaysTaken, "always-taken"},
		{PredBimodal, "bimodal"},
		{PredGshare, "gshare"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
		p := NewPredictor(Config{Predictor: tc.kind})
		if p == nil {
			t.Fatalf("%s: nil predictor", tc.want)
		}
	}
	if b := NewPredictor(Config{Predictor: PredBimodal}).(*Bimodal); len(b.table) != 1<<defaultPredictorBits {
		t.Errorf("zero PredictorBits: table size %d, want %d", len(b.table), 1<<defaultPredictorBits)
	}
}

// TestAlwaysTakenIsStatic: predicts taken regardless of training history.
func TestAlwaysTakenIsStatic(t *testing.T) {
	f := func(pc uint8, history []bool) bool {
		p := AlwaysTaken{}
		for _, h := range history {
			p.Update(int(pc), h)
		}
		return p.Predict(int(pc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// TestBimodalSaturation: the table counters saturate like the PHT's — after
// enough consistent updates the direction sticks.
func TestBimodalSaturation(t *testing.T) {
	f := func(pc uint8, history []bool, dir bool) bool {
		b := NewBimodal(defaultPredictorBits)
		for _, h := range history {
			b.Update(int(pc), h)
		}
		for i := 0; i < 4; i++ {
			b.Update(int(pc), dir)
		}
		return b.Predict(int(pc)) == dir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(32))}); err != nil {
		t.Fatal(err)
	}
}

// TestBimodalAliasing: two branches whose PCs differ by the table size share
// a counter — the aliasing that distinguishes the bimodal machine from the
// unbounded PHT.
func TestBimodalAliasing(t *testing.T) {
	const bits = 4
	b := NewBimodal(bits)
	for i := 0; i < 4; i++ {
		b.Update(3, true)
	}
	if !b.Predict(3 + 1<<bits) {
		t.Error("aliased PC should inherit the trained direction")
	}
	pht := NewBranchPredictor()
	for i := 0; i < 4; i++ {
		pht.Update(3, true)
	}
	if pht.Predict(3 + 1<<bits) {
		t.Error("the PHT must not alias distinct PCs")
	}
}

// TestGshareHistorySensitivity: with a trained table, the same branch PC can
// predict differently under different global histories — the property that
// makes gshare platform-distinguishable from bimodal.
func TestGshareHistorySensitivity(t *testing.T) {
	const bits = 4
	g := NewGshare(bits)
	// Train pc=0 under history ...01 (prior branch taken) to taken, and
	// under history ...00 (prior branch not taken) to not-taken.
	for i := 0; i < 4; i++ {
		g.Update(7, true)  // history gains a 1
		g.Update(0, true)  // slot (0 ^ history)
		g.Update(7, false) // history gains a 0
		g.Update(0, false)
	}
	g.Update(7, true)
	underTaken := g.Predict(0)
	g.Update(0, underTaken) // keep history moving
	g.Update(7, false)
	underNotTaken := g.Predict(0)
	if underTaken == underNotTaken {
		t.Errorf("gshare predictions insensitive to history: both %v", underTaken)
	}
}

// TestGshareDeterminismAndReset: identical update sequences give identical
// prediction sequences, and Reset restores the power-on state.
func TestGshareDeterminismAndReset(t *testing.T) {
	f := func(seq []uint8) bool {
		g1, g2 := NewGshare(5), NewGshare(5)
		for _, s := range seq {
			pc, taken := int(s>>1), s&1 == 1
			if g1.Predict(pc) != g2.Predict(pc) {
				return false
			}
			g1.Update(pc, taken)
			g2.Update(pc, taken)
		}
		g1.Reset()
		fresh := NewGshare(5)
		for pc := 0; pc < 64; pc++ {
			if g1.Predict(pc) != fresh.Predict(pc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(33))}); err != nil {
		t.Fatal(err)
	}
}

// TestMachineCountsMispredicts: a machine with an always-taken predictor
// mispredicts a never-taken branch exactly once per run, and ResetMicro
// clears the counter.
func TestMachineCountsMispredicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor = PredAlwaysTaken
	m := New(cfg)
	runProg(t, m, `
        cmp x0, x1
        b.lo body
        b end
    body:
        movz x2, #7
    end:
        hlt`, map[string]uint64{"x0": 5, "x1": 3}, nil)
	if m.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d, want 1 (always-taken on a not-taken branch)", m.Mispredicts)
	}
	m.ResetMicro()
	if m.Mispredicts != 0 {
		t.Errorf("ResetMicro left Mispredicts = %d", m.Mispredicts)
	}
}
