package micro

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the microarchitecture zoo: named platform presets for the
// matrix campaigns. The paper validates its models against one platform (a
// Cortex-A53 / Raspberry Pi 3); its conclusion — and the follow-up work on
// abstract side-channel models for computer architectures — is that
// soundness is a *per-platform* property: the same refined relation can be
// sound on an in-order core and falsified by a prefetcher or a wider
// speculation window. The presets span the axes that matter for that
// question: cache geometry, replacement policy, prefetcher variant,
// predictor type, and speculation-window rules.
//
// Only A53Like models validated hardware (the paper's evaluation platform).
// A72Like and InOrderM are *plausible* corners of the design space — a
// wide speculating core with transient-load forwarding, and a conservative
// in-order core without speculation — chosen to bracket the A53, not to
// reproduce specific silicon. The ablation presets move one axis at a time
// off the A53 baseline so a matrix campaign attributes a per-platform
// soundness flip to a single mechanism.

// A53Like is the paper's evaluation platform: the Cortex-A53-flavored
// in-order core of DefaultConfig (LRU 128x4x64B L1D, stride prefetcher,
// per-PC PHT, restricted 16-instruction speculation without transient-load
// forwarding).
func A53Like() Config { return DefaultConfig() }

// A72Like is a wide-core corner: bigger-but-shallower cache (256 sets,
// 2 ways), tree-PLRU replacement, an eager stride prefetcher (run of 2),
// gshare prediction, and an aggressive 48-instruction speculation window
// that forwards transient load results — the out-of-order-like behavior
// that falsifies models the A53 keeps sound.
func A72Like() Config {
	c := DefaultConfig()
	c.Sets = 256
	c.Ways = 2
	c.Replacement = TreePLRU
	c.PrefetchRun = 2
	c.Predictor = PredGshare
	c.SpecWindow = 48
	c.ForwardTransientLoads = true
	c.HitCycles = 4
	c.MissCycles = 60
	c.MispredictCycles = 14
	return c
}

// InOrderM is a conservative M-class-flavored core: a small cache (32 sets,
// 2 ways), no prefetcher, a static always-taken predictor, and no
// speculation at all — the platform most observational models are sound on,
// the matrix campaign's control row.
func InOrderM() Config {
	c := DefaultConfig()
	c.Sets = 32
	c.Ways = 2
	c.PrefetchDisabled = true
	c.Predictor = PredAlwaysTaken
	c.SpecWindow = NoSpeculation
	c.HitCycles = 1
	c.MissCycles = 12
	c.MispredictCycles = 3
	return c
}

// presets maps preset names to config builders. The a53-* entries are the
// single-axis ablations off the A53 baseline.
var presets = map[string]func() Config{
	"a53": A53Like,
	"a72": A72Like,
	"m0":  InOrderM,

	// Replacement-policy axis.
	"a53-plru": func() Config {
		c := A53Like()
		c.Replacement = TreePLRU
		return c
	},
	"a53-prand": func() Config {
		c := A53Like()
		c.Replacement = PseudoRandom
		return c
	},
	// Prefetcher axis.
	"a53-nopf": func() Config {
		c := A53Like()
		c.PrefetchDisabled = true
		return c
	},
	"a53-nextline": func() Config {
		c := A53Like()
		c.Prefetch = PrefetchNextLine
		return c
	},
	// Predictor axis.
	"a53-bimodal": func() Config {
		c := A53Like()
		c.Predictor = PredBimodal
		return c
	},
	"a53-gshare": func() Config {
		c := A53Like()
		c.Predictor = PredGshare
		return c
	},
	// Speculation-rule axis.
	"a53-nospec": func() Config {
		c := A53Like()
		c.SpecWindow = NoSpeculation
		return c
	},
	"a53-wide": func() Config {
		c := A53Like()
		c.SpecWindow = 48
		c.ForwardTransientLoads = true
		return c
	},
}

// Preset returns the named platform configuration. Names are the zoo's
// stable identifiers (cmd/scamv -platforms takes a comma list of them);
// unknown names list the known ones in the error.
func Preset(name string) (Config, error) {
	if f, ok := presets[strings.ToLower(strings.TrimSpace(name))]; ok {
		return f(), nil
	}
	return Config{}, fmt.Errorf("micro: unknown platform preset %q (known: %s)",
		name, strings.Join(PresetNames(), ", "))
}

// PresetNames returns every preset name in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
