package micro

import "testing"

func TestConfigWithDefaults(t *testing.T) {
	d := DefaultConfig()
	cases := []struct {
		name string
		in   Config
		want func(Config) bool
	}{
		{"empty gets all defaults", Config{}, func(c Config) bool {
			return c == d
		}},
		{"noise survives", Config{NoiseProb: 0.25}, func(c Config) bool {
			return c.NoiseProb == 0.25 && c.Sets == d.Sets && c.SpecWindow == d.SpecWindow
		}},
		{"vartime and cycle costs survive", Config{VarTimeMul: true, HitCycles: 1, MissCycles: 7}, func(c Config) bool {
			return c.VarTimeMul && c.HitCycles == 1 && c.MissCycles == 7 &&
				c.MispredictCycles == d.MispredictCycles && c.Ways == d.Ways
		}},
		{"spec window survives", Config{SpecWindow: 5}, func(c Config) bool {
			return c.SpecWindow == 5 && c.Sets == d.Sets
		}},
		{"no-speculation sentinel survives", Config{SpecWindow: NoSpeculation}, func(c Config) bool {
			return c.SpecWindow < 0
		}},
		{"prefetch disabled survives", Config{PrefetchDisabled: true, Sets: 64}, func(c Config) bool {
			return c.PrefetchDisabled && c.Sets == 64 && c.PrefetchRun == d.PrefetchRun
		}},
		{"replacement passes through", Config{Replacement: PseudoRandom, ReplacementSeed: 3}, func(c Config) bool {
			return c.Replacement == PseudoRandom && c.ReplacementSeed == 3
		}},
		{"geometry survives", Config{Sets: 32, Ways: 2, LineBits: 5, PageBits: 14}, func(c Config) bool {
			return c.Sets == 32 && c.Ways == 2 && c.LineBits == 5 && c.PageBits == 14
		}},
		{"tree-plru passes through", Config{Replacement: TreePLRU}, func(c Config) bool {
			return c.Replacement == TreePLRU && c.Sets == d.Sets
		}},
		{"prefetch kind passes through", Config{Prefetch: PrefetchNextLine}, func(c Config) bool {
			return c.Prefetch == PrefetchNextLine && c.PrefetchRun == d.PrefetchRun
		}},
		{"predictor kind passes through", Config{Predictor: PredGshare}, func(c Config) bool {
			return c.Predictor == PredGshare && c.PredictorBits == d.PredictorBits
		}},
		{"predictor bits survive", Config{Predictor: PredBimodal, PredictorBits: 9}, func(c Config) bool {
			return c.PredictorBits == 9 && c.Predictor == PredBimodal
		}},
		{"zero predictor bits get default", Config{Predictor: PredBimodal}, func(c Config) bool {
			return c.PredictorBits == defaultPredictorBits
		}},
	}
	for _, tc := range cases {
		if got := tc.in.WithDefaults(); !tc.want(got) {
			t.Errorf("%s: got %+v", tc.name, got)
		}
	}
}

func TestNoSpeculationDisablesSpeculation(t *testing.T) {
	cfg := Config{SpecWindow: NoSpeculation}.WithDefaults()
	if cfg.SpecWindow > 0 {
		t.Fatalf("SpecWindow = %d, speculation should stay disabled", cfg.SpecWindow)
	}
}
