// Package micro simulates the microarchitecture of the evaluation platform
// (a Cortex-A53-like in-order core) at the level of detail the paper's side
// channels require. It substitutes for the Raspberry Pi 3 boards driven from
// TrustZone in the original evaluation:
//
//   - a set-associative L1 data cache (default 128 sets × 4 ways × 64 B,
//     LRU) whose final state plays the role of the privileged cache
//     inspection used by Scam-V's platform module;
//   - a stride prefetcher that triggers after a run of equidistant loads
//     (default 3, the A53 default noted in §6.1) and stops at page
//     boundaries (the property §6.2 discovers);
//   - a PHT branch predictor with 2-bit saturating counters (§4.2.2);
//   - A53-style restricted speculation (§6.4–6.5): on a mispredicted
//     conditional branch the wrong path is executed transiently for a
//     bounded window; transient loads issue memory requests (and thus fill
//     the cache) unless their address depends on the result of an earlier
//     transient load — transient load results are not forwarded. Direct
//     unconditional branches do not speculate (no straight-line speculation
//     for direct branches, §6.5).
//
// A cycle counter stands in for the PMC, enabling the Flush+Reload attack
// demonstration of §6.4.
package micro

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"scamv/internal/arm"
	"scamv/internal/expr"
)

// Replacement selects the cache replacement policy.
type Replacement uint8

// Replacement policies. LRU is the deterministic default used by the
// validation campaigns; the real Cortex-A53 L1D uses pseudo-random
// replacement, available here for ablations (seeded, still reproducible).
// TreePLRU is the tree pseudo-LRU of wider cores (one direction bit per
// internal tree node; see plru.go), an ablation axis of the platform zoo.
const (
	LRU Replacement = iota
	RoundRobin
	PseudoRandom
	TreePLRU
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case RoundRobin:
		return "round-robin"
	case PseudoRandom:
		return "pseudo-random"
	case TreePLRU:
		return "tree-plru"
	}
	return "replacement(?)"
}

// PrefetchKind selects the data prefetcher variant. The zero value is the
// A53-style stride prefetcher; turning prefetching off entirely stays on
// the PrefetchDisabled switch so existing configurations are unchanged.
type PrefetchKind uint8

// Prefetcher variants.
const (
	// PrefetchStride triggers after PrefetchRun equidistant accesses and
	// fetches the next address in the pattern (the A53 default).
	PrefetchStride PrefetchKind = iota
	// PrefetchNextLine fetches the line after every demand access — no
	// training, fires immediately, the aggressive variant some cores pair
	// with a stride engine. It leaks adjacency rather than stride.
	PrefetchNextLine
)

func (k PrefetchKind) String() string {
	switch k {
	case PrefetchStride:
		return "stride"
	case PrefetchNextLine:
		return "next-line"
	}
	return "prefetch(?)"
}

// Config is the microarchitecture configuration.
type Config struct {
	Sets     int  // number of cache sets
	Ways     int  // cache associativity
	LineBits uint // log2(line size)
	PageBits uint // log2(page size); prefetching stops at page boundaries

	// Replacement is the cache replacement policy (default LRU).
	Replacement Replacement
	// ReplacementSeed seeds the pseudo-random policy.
	ReplacementSeed int64

	// Prefetch selects the prefetcher variant (default the stride engine).
	Prefetch PrefetchKind
	// PrefetchRun is the number of equidistant accesses needed to trigger
	// the stride prefetcher (A53 default setting: 3).
	PrefetchRun int
	// PrefetchDisabled turns the prefetcher off (ablations).
	PrefetchDisabled bool

	// Predictor selects the branch predictor machine (default the per-PC
	// PHT; see predictor.go for the zoo variants).
	Predictor PredictorKind
	// PredictorBits is log2 of the bimodal/gshare table size (default 6;
	// ignored by the PHT and the static predictor).
	PredictorBits uint

	// SpecWindow is the number of instructions executed transiently after
	// a misprediction; 0 disables speculation entirely.
	SpecWindow int
	// ForwardTransientLoads, when true, lets dependent transient loads
	// issue (a more aggressive out-of-order-like core; ablations). The
	// A53-like default is false.
	ForwardTransientLoads bool

	// Cycle costs for the simulated PMC.
	HitCycles, MissCycles, MispredictCycles uint64

	// NoiseProb is the per-run probability of one spurious cache fill
	// (interrupts, other bus masters); it produces the "inconclusive"
	// experiments of §6.1.
	NoiseProb float64

	// VarTimeMul enables an early-terminating multiplier: mul takes extra
	// cycles depending on the magnitude of the second operand (one step
	// per 16 bits of significance). This is the variable-time arithmetic
	// channel the paper uses to illustrate refinement in §3 ("observe the
	// highest bits ... for checking if the time needed for additions
	// depends on the size of the arguments").
	VarTimeMul bool
}

// MulExtraCycles is the early-termination latency model: 0 extra cycles for
// a multiplier below 2^16, up to 3 for one using the top 16 bits.
func MulExtraCycles(multiplier uint64) uint64 {
	switch {
	case multiplier < 1<<16:
		return 0
	case multiplier < 1<<32:
		return 1
	case multiplier < 1<<48:
		return 2
	default:
		return 3
	}
}

// defaultPredictorBits sizes the bimodal/gshare tables when the config
// leaves PredictorBits zero: 64 entries, small enough that realistic test
// programs alias.
const defaultPredictorBits = 6

// DefaultConfig models the Cortex-A53 of the paper's evaluation platform
// (the A53Like preset of the zoo; see presets.go for the other platforms).
func DefaultConfig() Config {
	return Config{
		Sets:             128,
		Ways:             4,
		LineBits:         6,
		PageBits:         12,
		PrefetchRun:      3,
		PredictorBits:    defaultPredictorBits,
		SpecWindow:       16,
		HitCycles:        3,
		MissCycles:       40,
		MispredictCycles: 8,
	}
}

// NoSpeculation is an explicit SpecWindow value requesting a core that never
// executes transiently. WithDefaults treats SpecWindow == 0 as "unset" and
// fills in the default window, so a deliberately non-speculating config must
// say so with this sentinel; the simulator treats any non-positive window as
// disabled.
const NoSpeculation = -1

// WithDefaults merges c with DefaultConfig field by field: zero-value fields
// take the default, set fields survive. Booleans (PrefetchDisabled,
// ForwardTransientLoads, VarTimeMul), NoiseProb, Replacement (zero is LRU,
// the default policy), ReplacementSeed, Prefetch (zero is the stride
// engine) and Predictor (zero is the PHT) pass through unchanged; use
// NoSpeculation rather than 0 to disable speculation explicitly.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.Sets == 0 {
		c.Sets = d.Sets
	}
	if c.Ways == 0 {
		c.Ways = d.Ways
	}
	if c.LineBits == 0 {
		c.LineBits = d.LineBits
	}
	if c.PageBits == 0 {
		c.PageBits = d.PageBits
	}
	if c.PrefetchRun == 0 {
		c.PrefetchRun = d.PrefetchRun
	}
	if c.PredictorBits == 0 {
		c.PredictorBits = d.PredictorBits
	}
	if c.SpecWindow == 0 {
		c.SpecWindow = d.SpecWindow
	}
	if c.HitCycles == 0 {
		c.HitCycles = d.HitCycles
	}
	if c.MissCycles == 0 {
		c.MissCycles = d.MissCycles
	}
	if c.MispredictCycles == 0 {
		c.MispredictCycles = d.MispredictCycles
	}
	return c
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

type cline struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative cache with a configurable replacement policy.
type Cache struct {
	cfg   Config
	sets  [][]cline
	clock uint64
	rr    []int      // round-robin victim pointer per set
	plru  []plruTree // tree-PLRU direction bits per set
	rng   *rand.Rand
}

// NewCache builds an empty cache.
func NewCache(cfg Config) *Cache {
	c := &Cache{cfg: cfg, sets: make([][]cline, cfg.Sets)}
	for i := range c.sets {
		c.sets[i] = make([]cline, cfg.Ways)
	}
	switch cfg.Replacement {
	case RoundRobin:
		c.rr = make([]int, cfg.Sets)
	case PseudoRandom:
		c.rng = rand.New(rand.NewSource(cfg.ReplacementSeed))
	case TreePLRU:
		c.plru = make([]plruTree, cfg.Sets)
		for i := range c.plru {
			c.plru[i] = newPLRUTree(cfg.Ways)
		}
	}
	return c
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.cfg.LineBits
	return int(line % uint64(c.cfg.Sets)), line / uint64(c.cfg.Sets)
}

// Access looks up addr, filling on miss; it reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	c.clock++
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].used = c.clock
			if c.plru != nil {
				c.plru[set].touch(i)
			}
			return true
		}
	}
	// Miss: pick a victim way. Invalid ways are filled first under every
	// policy.
	victim := -1
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Replacement {
		case RoundRobin:
			victim = c.rr[set]
			c.rr[set] = (c.rr[set] + 1) % c.cfg.Ways
		case PseudoRandom:
			victim = c.rng.Intn(c.cfg.Ways)
		case TreePLRU:
			victim = c.plru[set].victim()
		default: // LRU
			victim = 0
			for i := range lines {
				if lines[i].used < lines[victim].used {
					victim = i
				}
			}
		}
	}
	lines[victim] = cline{tag: tag, valid: true, used: c.clock}
	if c.plru != nil {
		c.plru[set].touch(victim)
	}
	return false
}

// Flush invalidates the line containing addr.
func (c *Cache) Flush(addr uint64) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			c.sets[set][i] = cline{}
		}
	}
}

// FlushAll empties the cache and clears the tree-PLRU direction bits (the
// cold state the platform module restores before every measured run).
func (c *Cache) FlushAll() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = cline{}
		}
	}
	for i := range c.plru {
		c.plru[i] = newPLRUTree(c.cfg.Ways)
	}
}

// Present reports whether the line containing addr is cached.
func (c *Cache) Present(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// View filters which cache sets an attacker can observe.
type View func(set int) bool

// FullView observes the whole cache (the M_ct experiments: a Flush+Reload
// attacker sharing memory can probe any set).
func FullView(int) bool { return true }

// RangeView observes sets lo..hi inclusive (the M_part experiments: the
// attacker only examines its own cache partition).
func RangeView(lo, hi int) View {
	return func(s int) bool { return lo <= s && s <= hi }
}

// Snapshot is the observable final cache state: the sorted valid tags of
// each visible set. Two runs are distinguishable iff their snapshots differ.
type Snapshot struct {
	Sets map[int][]uint64
}

// Snapshot captures the cache state through a view.
func (c *Cache) Snapshot(v View) *Snapshot {
	s := &Snapshot{Sets: make(map[int][]uint64)}
	for i, lines := range c.sets {
		if v != nil && !v(i) {
			continue
		}
		var tags []uint64
		for _, l := range lines {
			if l.valid {
				tags = append(tags, l.tag)
			}
		}
		if len(tags) > 0 {
			sort.Slice(tags, func(a, b int) bool { return tags[a] < tags[b] })
			s.Sets[i] = tags
		}
	}
	return s
}

// Equal reports whether two snapshots are identical.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if len(s.Sets) != len(o.Sets) {
		return false
	}
	for set, tags := range s.Sets {
		ot, ok := o.Sets[set]
		if !ok || len(ot) != len(tags) {
			return false
		}
		for i := range tags {
			if tags[i] != ot[i] {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Stride prefetcher
// ---------------------------------------------------------------------------

// Prefetcher is a simple stride prefetcher: after PrefetchRun accesses with
// the same non-zero stride it issues a prefetch for the next address in the
// pattern, unless that address falls on a different page.
type Prefetcher struct {
	cfg  Config
	last uint64
	str  int64
	run  int
}

// NewPrefetcher builds a reset prefetcher.
func NewPrefetcher(cfg Config) *Prefetcher { return &Prefetcher{cfg: cfg} }

// Reset clears the training state.
func (p *Prefetcher) Reset() { p.last, p.str, p.run = 0, 0, 0 }

// OnAccess trains on a demand access and returns a prefetch target when the
// pattern triggers: the next stride under PrefetchStride, the following
// line under PrefetchNextLine. Both stop at page boundaries.
func (p *Prefetcher) OnAccess(addr uint64) (uint64, bool) {
	if p.cfg.PrefetchDisabled {
		return 0, false
	}
	if p.cfg.Prefetch == PrefetchNextLine {
		target := (addr>>p.cfg.LineBits + 1) << p.cfg.LineBits
		if target>>p.cfg.PageBits == addr>>p.cfg.PageBits {
			return target, true
		}
		return 0, false
	}
	defer func() { p.last = addr }()
	if p.run == 0 {
		p.run = 1
		return 0, false
	}
	stride := int64(addr - p.last)
	if stride != 0 && stride == p.str {
		p.run++
	} else {
		p.str = stride
		p.run = 2
		if stride == 0 {
			p.run = 1
			p.str = 0
			return 0, false
		}
	}
	if p.run >= p.cfg.PrefetchRun {
		target := addr + uint64(p.str)
		// A53 prefetching stops at page boundaries (§6.2).
		if target>>p.cfg.PageBits == addr>>p.cfg.PageBits {
			return target, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Branch predictor
// ---------------------------------------------------------------------------

// BranchPredictor is a pattern-history table of 2-bit saturating counters,
// indexed by instruction position — the PredPHT machine, and the historical
// default. The other predictor kinds live in predictor.go.
type BranchPredictor struct {
	pht map[int]uint8
}

// NewBranchPredictor builds a predictor with all counters weakly not-taken.
func NewBranchPredictor() *BranchPredictor { return &BranchPredictor{pht: make(map[int]uint8)} }

// Reset clears the table.
func (b *BranchPredictor) Reset() { b.pht = make(map[int]uint8) }

// Predict returns the predicted direction for the branch at pc.
func (b *BranchPredictor) Predict(pc int) bool { return ctrTaken(b.pht[pc]) }

// Update trains the counter at pc with the resolved direction.
func (b *BranchPredictor) Update(pc int, taken bool) {
	b.pht[pc] = ctrUpdate(b.pht[pc], taken)
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

// Machine is the simulated core plus memory.
type Machine struct {
	Cfg   Config
	Regs  [arm.NumRegs]uint64
	mem   map[uint64]uint64
	memDf uint64

	Cache *Cache
	PF    *Prefetcher
	BP    Predictor

	// Cycles is the simulated PMC cycle counter.
	Cycles uint64
	// TransientLoads counts loads issued speculatively in the last Run.
	TransientLoads int
	// Mispredicts counts resolved conditional branches whose prediction
	// was wrong since the last ResetMicro — the per-platform predictor-
	// quality signal of the matrix campaigns.
	Mispredicts int

	ccA, ccB uint64

	trace  *Trace
	curPC  int
	inSpec bool
}

// New builds a machine with cold microarchitectural state.
func New(cfg Config) *Machine {
	return &Machine{
		Cfg:   cfg,
		mem:   make(map[uint64]uint64),
		Cache: NewCache(cfg),
		PF:    NewPrefetcher(cfg),
		BP:    NewPredictor(cfg),
	}
}

// LoadState installs the architectural state of a test case: register
// values by name ("x0".."x30") and the initial memory image.
func (m *Machine) LoadState(regs map[string]uint64, mem *expr.MemModel) error {
	m.Regs = [arm.NumRegs]uint64{}
	for name, v := range regs {
		if len(name) < 2 || name[0] != 'x' {
			continue // ghost/shadow registers are not architectural
		}
		n, err := strconv.Atoi(name[1:])
		if err != nil || n < 0 || n > 30 {
			return fmt.Errorf("micro: bad register name %q", name)
		}
		m.Regs[n] = v
	}
	m.mem = make(map[uint64]uint64, len(mem.Data))
	m.memDf = 0
	if mem != nil {
		m.memDf = mem.Default
		for a, v := range mem.Data {
			m.mem[a] = v
		}
	}
	return nil
}

// ReadMem returns the memory word at addr.
func (m *Machine) ReadMem(addr uint64) uint64 {
	if v, ok := m.mem[addr]; ok {
		return v
	}
	return m.memDf
}

// WriteMem sets the memory word at addr.
func (m *Machine) WriteMem(addr, v uint64) { m.mem[addr] = v }

// MemSnapshot copies the architectural memory image — the initial words
// installed by LoadState overlaid with every store executed since — as a
// concrete memory model. The differential oracle compares it against the
// symbolic executor's final memory.
func (m *Machine) MemSnapshot() *expr.MemModel {
	mm := expr.NewMemModel(m.memDf)
	for a, v := range m.mem {
		mm.Set(a, v)
	}
	return mm
}

// ResetMicro restores cold cache and prefetcher state (the platform module
// clears the cache before every execution, §6.1) without touching the
// branch predictor, so that predictor training survives into the measured
// run (§5.3).
func (m *Machine) ResetMicro() {
	m.Cache.FlushAll()
	m.PF.Reset()
	m.Cycles = 0
	m.TransientLoads = 0
	m.Mispredicts = 0
}

// access performs a demand data access: cache lookup, prefetcher training,
// and prefetch issue.
func (m *Machine) access(addr uint64) {
	hit := m.Cache.Access(addr)
	if hit {
		m.Cycles += m.Cfg.HitCycles
	} else {
		m.Cycles += m.Cfg.MissCycles
	}
	m.emit(Event{Kind: EvAccess, PC: m.curPC, Addr: addr, Hit: hit, Transient: m.inSpec})
	if target, ok := m.PF.OnAccess(addr); ok {
		m.Cache.Access(target) // prefetch fill (no demand latency modelled)
		m.emit(Event{Kind: EvPrefetch, PC: m.curPC, Addr: target, Transient: m.inSpec})
	}
}

// AccessTimed performs a demand access and returns its cost in cycles; it
// is the attacker's reload primitive for Flush+Reload.
func (m *Machine) AccessTimed(addr uint64) uint64 {
	before := m.Cycles
	m.access(addr)
	return m.Cycles - before
}

func (m *Machine) reg(r arm.Reg) uint64 {
	if r == arm.XZR {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) setReg(r arm.Reg, v uint64) {
	if r != arm.XZR {
		m.Regs[r] = v
	}
}

// Run executes the program to completion (HLT or falling off the end).
// noise, when non-nil, injects spurious cache fills with probability
// Cfg.NoiseProb. maxInstrs guards against runaway programs.
func (m *Machine) Run(p *arm.Program, maxInstrs int, noise *rand.Rand) error {
	if maxInstrs <= 0 {
		maxInstrs = 10000
	}
	if noise != nil && m.Cfg.NoiseProb > 0 && noise.Float64() < m.Cfg.NoiseProb {
		// One spurious line fill at a random set, as if an interrupt
		// handler or another bus master ran concurrently.
		addr := uint64(noise.Intn(m.Cfg.Sets)) << m.Cfg.LineBits
		addr |= uint64(noise.Intn(4)+1) << (m.Cfg.LineBits + uint(16))
		m.Cache.Access(addr)
		m.emit(Event{Kind: EvNoise, PC: -1, Addr: addr})
	}
	pc := 0
	for steps := 0; steps < maxInstrs; steps++ {
		if pc < 0 || pc >= len(p.Instrs) {
			return nil // fell off the end
		}
		ins := p.Instrs[pc]
		m.curPC = pc
		m.Cycles++
		switch ins.Op {
		case arm.HLT:
			return nil
		case arm.NOP:
			pc++
		case arm.MOVZ:
			m.setReg(ins.Rd, ins.Imm)
			pc++
		case arm.MOVR:
			m.setReg(ins.Rd, m.reg(ins.Rn))
			pc++
		case arm.ADDI:
			m.setReg(ins.Rd, m.reg(ins.Rn)+ins.Imm)
			pc++
		case arm.ADDR:
			m.setReg(ins.Rd, m.reg(ins.Rn)+m.reg(ins.Rm))
			pc++
		case arm.SUBI:
			m.setReg(ins.Rd, m.reg(ins.Rn)-ins.Imm)
			pc++
		case arm.SUBR:
			m.setReg(ins.Rd, m.reg(ins.Rn)-m.reg(ins.Rm))
			pc++
		case arm.ANDI:
			m.setReg(ins.Rd, m.reg(ins.Rn)&ins.Imm)
			pc++
		case arm.ANDR:
			m.setReg(ins.Rd, m.reg(ins.Rn)&m.reg(ins.Rm))
			pc++
		case arm.ORRR:
			m.setReg(ins.Rd, m.reg(ins.Rn)|m.reg(ins.Rm))
			pc++
		case arm.EORR:
			m.setReg(ins.Rd, m.reg(ins.Rn)^m.reg(ins.Rm))
			pc++
		case arm.LSLI:
			m.setReg(ins.Rd, shl(m.reg(ins.Rn), ins.Imm))
			pc++
		case arm.LSRI:
			m.setReg(ins.Rd, shr(m.reg(ins.Rn), ins.Imm))
			pc++
		case arm.MULR:
			if m.Cfg.VarTimeMul {
				m.Cycles += MulExtraCycles(m.reg(ins.Rm))
			}
			m.setReg(ins.Rd, m.reg(ins.Rn)*m.reg(ins.Rm))
			pc++
		case arm.LDRR, arm.LDRI:
			addr := m.loadAddr(ins)
			m.access(addr)
			m.setReg(ins.Rd, m.ReadMem(addr))
			pc++
		case arm.STRR, arm.STRI:
			addr := m.loadAddr(ins)
			m.WriteMem(addr, m.reg(ins.Rd))
			pc++
		case arm.CMPR:
			m.ccA, m.ccB = m.reg(ins.Rn), m.reg(ins.Rm)
			pc++
		case arm.CMPI:
			m.ccA, m.ccB = m.reg(ins.Rn), ins.Imm
			pc++
		case arm.TSTI:
			m.ccA, m.ccB = m.reg(ins.Rn)&ins.Imm, 0
			pc++
		case arm.B:
			// Direct unconditional branch: resolved at decode on the
			// modelled core, no straight-line speculation (§6.5).
			t, ok := p.Target(ins.Label)
			if !ok {
				return fmt.Errorf("micro: unknown label %q", ins.Label)
			}
			pc = t
		case arm.BCC:
			t, ok := p.Target(ins.Label)
			if !ok {
				return fmt.Errorf("micro: unknown label %q", ins.Label)
			}
			actual := ins.Cond.Holds(m.ccA, m.ccB)
			predicted := m.BP.Predict(pc)
			m.emit(Event{Kind: EvBranch, PC: pc, Taken: actual, Predicted: predicted})
			if predicted != actual {
				m.Mispredicts++
			}
			if predicted != actual && m.Cfg.SpecWindow > 0 {
				m.Cycles += m.Cfg.MispredictCycles
				wrong := t
				if !predicted {
					wrong = pc + 1
				}
				m.emit(Event{Kind: EvSpeculate, PC: wrong, Transient: true})
				m.speculate(p, wrong)
			}
			m.BP.Update(pc, actual)
			if actual {
				pc = t
			} else {
				pc++
			}
		default:
			return fmt.Errorf("micro: cannot execute %s", ins)
		}
	}
	return fmt.Errorf("micro: %s: exceeded %d instructions", p.Name, maxInstrs)
}

func (m *Machine) loadAddr(ins arm.Instr) uint64 {
	if ins.Op == arm.LDRR || ins.Op == arm.STRR {
		return m.reg(ins.Rn) + m.reg(ins.Rm)
	}
	return m.reg(ins.Rn) + ins.Imm
}

// speculate executes the wrong path transiently: up to SpecWindow
// instructions, stopping at any further control transfer. Transient loads
// issue (filling the cache and training the prefetcher) only if their
// address does not depend on an earlier transient load's result — the
// modelled core does not forward transient load data (§6.4). Transient
// stores have no effect.
func (m *Machine) speculate(p *arm.Program, pc int) {
	m.inSpec = true
	defer func() { m.inSpec = false }()
	regs := m.Regs
	var taint [arm.NumRegs]bool
	rd := func(r arm.Reg) uint64 {
		if r == arm.XZR {
			return 0
		}
		return regs[r]
	}
	wr := func(r arm.Reg, v uint64, t bool) {
		if r != arm.XZR {
			regs[r] = v
			taint[r] = t
		}
	}
	tn := func(r arm.Reg) bool { return r != arm.XZR && taint[r] }

	for k := 0; k < m.Cfg.SpecWindow; k++ {
		if pc < 0 || pc >= len(p.Instrs) {
			return
		}
		ins := p.Instrs[pc]
		m.curPC = pc
		pc++
		switch ins.Op {
		case arm.B, arm.BCC, arm.HLT:
			return // speculation window ends at further control flow
		case arm.NOP:
		case arm.MOVZ:
			wr(ins.Rd, ins.Imm, false)
		case arm.MOVR:
			wr(ins.Rd, rd(ins.Rn), tn(ins.Rn))
		case arm.ADDI:
			wr(ins.Rd, rd(ins.Rn)+ins.Imm, tn(ins.Rn))
		case arm.ADDR:
			wr(ins.Rd, rd(ins.Rn)+rd(ins.Rm), tn(ins.Rn) || tn(ins.Rm))
		case arm.SUBI:
			wr(ins.Rd, rd(ins.Rn)-ins.Imm, tn(ins.Rn))
		case arm.SUBR:
			wr(ins.Rd, rd(ins.Rn)-rd(ins.Rm), tn(ins.Rn) || tn(ins.Rm))
		case arm.ANDI:
			wr(ins.Rd, rd(ins.Rn)&ins.Imm, tn(ins.Rn))
		case arm.ANDR:
			wr(ins.Rd, rd(ins.Rn)&rd(ins.Rm), tn(ins.Rn) || tn(ins.Rm))
		case arm.ORRR:
			wr(ins.Rd, rd(ins.Rn)|rd(ins.Rm), tn(ins.Rn) || tn(ins.Rm))
		case arm.EORR:
			wr(ins.Rd, rd(ins.Rn)^rd(ins.Rm), tn(ins.Rn) || tn(ins.Rm))
		case arm.LSLI:
			wr(ins.Rd, shl(rd(ins.Rn), ins.Imm), tn(ins.Rn))
		case arm.LSRI:
			wr(ins.Rd, shr(rd(ins.Rn), ins.Imm), tn(ins.Rn))
		case arm.MULR:
			wr(ins.Rd, rd(ins.Rn)*rd(ins.Rm), tn(ins.Rn) || tn(ins.Rm))
		case arm.LDRR, arm.LDRI:
			tainted := tn(ins.Rn)
			addr := rd(ins.Rn) + ins.Imm
			if ins.Op == arm.LDRR {
				tainted = tainted || tn(ins.Rm)
				addr = rd(ins.Rn) + rd(ins.Rm)
			}
			if tainted && !m.Cfg.ForwardTransientLoads {
				// Address depends on a transient load result: the core
				// cannot issue the request.
				wr(ins.Rd, 0, true)
				continue
			}
			m.access(addr)
			m.TransientLoads++
			wr(ins.Rd, m.ReadMem(addr), true)
		case arm.STRR, arm.STRI:
			// Transient stores never retire and do not touch the cache.
		case arm.CMPR, arm.CMPI, arm.TSTI:
			// Flag updates in the shadow are irrelevant: a following
			// branch ends the window.
		}
	}
}

func shl(v, s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return v << s
}

func shr(v, s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return v >> s
}
