package spec

import (
	"testing"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/lifter"
	"scamv/internal/symexec"
)

func lift(t *testing.T, src string) *bir.Program {
	t.Helper()
	p, err := arm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func observeAll(addr expr.BVExpr, loadIdx int) *bir.Observe {
	return &bir.Observe{Tag: bir.TagRefined, Kind: "specload", Cond: expr.True,
		Vals: []expr.BVExpr{addr}}
}

func TestInlineAddsShadowOfUntakenBranch(t *testing.T) {
	bp := lift(t, `
        cmp x0, x1
        b.hs end
        ldr x2, [x5, x3]
    end:
        hlt`)
	q, err := Inline(bp, bp, Options{ObserveLoad: observeAll})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
	// The path taking b.hs (skipping the body) must observe the shadow of
	// the body load, computed over shadow registers equal to the inputs.
	var skipped *symexec.Path
	for _, p := range paths {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"] = 9, 1 // x0 >= x1: b.hs taken
		if a.EvalBool(p.Cond) {
			skipped = p
		}
	}
	if skipped == nil {
		t.Fatal("no path for x0 >= x1")
	}
	ro := skipped.RefinedObs()
	if len(ro) != 1 {
		t.Fatalf("refined obs on skip path: %d", len(ro))
	}
	a := expr.NewAssignment()
	a.BV["x5"], a.BV["x3"] = 0x1000, 0x40
	if got := a.EvalBV(ro[0].Vals[0]); got != 0x1040 {
		t.Errorf("shadow load address: %#x", got)
	}
	// The shadow must not corrupt architectural state: x2 unchanged on the
	// skip path.
	if _, written := skipped.Regs["x2"]; written {
		t.Error("shadow execution leaked into the architectural x2")
	}
	if _, ok := skipped.Regs[ShadowPrefix+"x2"]; !ok {
		t.Error("shadow register #x2 missing")
	}
}

func TestInlineEmptyElseNoTrampoline(t *testing.T) {
	// §4.2.2: "since the else branch was initially empty, the
	// instrumentation of the if branch has no effect".
	bp := lift(t, `
        cmp x0, x1
        b.hs end
        ldr x2, [x5, x3]
    end:
        hlt`)
	q, err := Inline(bp, bp, Options{ObserveLoad: observeAll})
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := symexec.Run(q, 0)
	for _, p := range paths {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"] = 0, 5 // body executes
		if a.EvalBool(p.Cond) && len(p.RefinedObs()) != 0 {
			t.Error("taken path must have no shadow observations (empty else)")
		}
	}
}

func TestInlineShadowChainsDependentLoads(t *testing.T) {
	bp := lift(t, `
        cmp x0, x1
        b.hs end
        ldr x2, [x5, x3]
        add x2, x2, #4
        ldr x4, [x7, x2]
    end:
        hlt`)
	q, err := Inline(bp, bp, Options{ObserveLoad: observeAll})
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := symexec.Run(q, 0)
	for _, p := range paths {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"] = 9, 1
		if !a.EvalBool(p.Cond) {
			continue
		}
		ro := p.RefinedObs()
		if len(ro) != 2 {
			t.Fatalf("expected 2 shadow loads, got %d", len(ro))
		}
		// Second shadow address: mem[#x5+#x3] + 4 + #x7.
		a.BV["x5"], a.BV["x3"], a.BV["x7"] = 0x1000, 0, 0x2000
		mm := expr.NewMemModel(0)
		mm.Set(0x1000, 0x40)
		a.Mem[bir.MemName] = mm
		if got := a.EvalBV(ro[1].Vals[0]); got != 0x2000+0x40+4 {
			t.Errorf("dependent shadow address: %#x", got)
		}
	}
}

func TestInlineBudget(t *testing.T) {
	bp := lift(t, `
        cmp x0, x1
        b.hs end
        ldr x2, [x5]
        ldr x3, [x6]
        ldr x4, [x7]
    end:
        hlt`)
	q, err := Inline(bp, bp, Options{MaxShadowStmts: 2, ObserveLoad: observeAll})
	if err != nil {
		t.Fatal(err)
	}
	paths, _ := symexec.Run(q, 0)
	for _, p := range paths {
		if len(p.RefinedObs()) > 2 {
			t.Errorf("speculation window exceeded: %d shadow loads", len(p.RefinedObs()))
		}
	}
}

func TestTautologize(t *testing.T) {
	bp := lift(t, `
        b end
        ldr x1, [x5]
    end:
        hlt`)
	q := Tautologize(bp)
	// The skipping jump must now be a constant-true conditional branch.
	found := false
	for _, b := range q.Blocks {
		if cj, ok := b.Term.(*bir.CondJmp); ok && cj.Cond == expr.True {
			found = true
		}
	}
	if !found {
		t.Fatal("no tautological branch produced")
	}
	// Semantics preserved: the dead load still never executes
	// architecturally.
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths: %d", len(paths))
	}
	if _, written := paths[0].Regs["x1"]; written {
		t.Error("dead code executed architecturally")
	}
	// And with Inline, the dead load becomes a shadow observation.
	q2, err := Inline(q, q, Options{ObserveLoad: observeAll})
	if err != nil {
		t.Fatal(err)
	}
	paths2, _ := symexec.Run(q2, 0)
	if len(paths2[0].RefinedObs()) != 1 {
		t.Errorf("straight-line shadow load not observed: %d", len(paths2[0].RefinedObs()))
	}
}

func TestTautologizeKeepsFallThrough(t *testing.T) {
	// A jump to the immediately following block is a pure fall-through and
	// must not be rewritten.
	bp := lift(t, `
        movz x0, #1
    next:
        hlt`)
	q := Tautologize(bp)
	for _, b := range q.Blocks {
		if cj, ok := b.Term.(*bir.CondJmp); ok && cj.Cond == expr.True {
			t.Error("fall-through jump was tautologized")
		}
	}
}

func TestInlineStopsAtNestedBranch(t *testing.T) {
	// The shadow region ends at a further conditional branch: only the
	// loads BEFORE the nested branch are speculated.
	bp := lift(t, `
        cmp x0, x1
        b.hs end
        ldr x2, [x5]
        cmp x2, x3
        b.hi deeper
        ldr x4, [x6]
    deeper:
        ldr x7, [x8]
    end:
        hlt`)
	q, err := Inline(bp, bp, Options{ObserveLoad: observeAll})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"] = 9, 1 // skip the body architecturally
		if !a.EvalBool(p.Cond) {
			continue
		}
		if got := len(p.RefinedObs()); got != 1 {
			t.Errorf("speculation must stop at the nested branch: %d shadow loads", got)
		}
	}
}

func TestInlineDefaultBudget(t *testing.T) {
	opts := Options{ObserveLoad: observeAll}
	bp := lift(t, `
        cmp x0, x1
        b.hs end
        ldr x2, [x5]
    end:
        hlt`)
	if _, err := Inline(bp, bp, opts); err != nil {
		t.Fatal(err)
	}
}
