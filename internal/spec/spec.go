// Package spec implements the speculative-execution instrumentation of the
// paper's §4.2.2 and §5.1: for every conditional branch, the statements of
// the branch NOT taken are inlined ("shadow statements") in front of the
// branch that IS taken, operating on a shadow copy of the registers (names
// prefixed with '#'). Shadow loads carry observation statements so that the
// refined models M_spec / M_spec1 can constrain transient memory accesses.
//
// It also provides the M_spec' transform (paper §6.5): rewriting
// unconditional direct branches into tautologically-true conditional
// branches, so the same inlining covers straight-line speculation.
package spec

import (
	"fmt"

	"scamv/internal/bir"
	"scamv/internal/expr"
)

// ShadowPrefix marks shadow (transient) registers.
const ShadowPrefix = "#"

// Options configures the inlining.
type Options struct {
	// MaxShadowStmts bounds the number of statements speculated past a
	// branch (the speculation window of the modelled core). Default 16.
	MaxShadowStmts int
	// ObserveLoad builds the observation statement for the i-th (0-based)
	// shadow load of a shadow region, given its (shadow-renamed) address
	// expression. Returning nil skips the observation. This is where the
	// M_spec vs. M_spec1 distinction lives: M_spec tags every transient
	// load, M_spec1 tags the first TagBase and the rest TagRefined.
	ObserveLoad func(addr expr.BVExpr, loadIdx int) *bir.Observe
}

func shadow(name string) string { return ShadowPrefix + name }

// Tautologize returns a copy of p in which every unconditional jump that
// skips over code (i.e. whose target is not the next block in layout order)
// is replaced by a conditional branch with constant-true guard. Combined
// with Inline this yields the M_spec' model for straight-line speculation.
func Tautologize(p *bir.Program) *bir.Program {
	q := p.Clone()
	for i, b := range q.Blocks {
		j, ok := b.Term.(*bir.Jmp)
		if !ok {
			continue
		}
		next := ""
		if i+1 < len(q.Blocks) {
			next = q.Blocks[i+1].Label
		}
		if j.Target == next {
			continue // plain fall-through, nothing is skipped
		}
		b.Term = &bir.CondJmp{Cond: expr.True, True: j.Target, False: next}
	}
	return q
}

// Inline adds shadow trampolines to instrumented. The shadow statement
// sequences are linearized from clean (the uninstrumented program), so that
// architectural observations already present in instrumented are not
// duplicated inside shadow regions. Blocks of instrumented and clean must
// correspond by label.
func Inline(instrumented, clean *bir.Program, opts Options) (*bir.Program, error) {
	if opts.MaxShadowStmts <= 0 {
		opts.MaxShadowStmts = 16
	}
	out := instrumented.Clone()
	nspec := 0
	var newBlocks []*bir.Block
	for _, b := range out.Blocks {
		cj, ok := b.Term.(*bir.CondJmp)
		if !ok {
			continue
		}
		// Shadow of the false side runs when the branch is actually taken,
		// and vice versa.
		shadowOfFalse, err := shadowStmts(clean, cj.False, opts)
		if err != nil {
			return nil, err
		}
		shadowOfTrue, err := shadowStmts(clean, cj.True, opts)
		if err != nil {
			return nil, err
		}
		if len(shadowOfFalse) > 0 {
			tramp := &bir.Block{
				Label: fmt.Sprintf("%s$spec%d", cj.True, nspec),
				Stmts: shadowOfFalse,
				Term:  &bir.Jmp{Target: cj.True},
			}
			nspec++
			newBlocks = append(newBlocks, tramp)
			cj.True = tramp.Label
		}
		if len(shadowOfTrue) > 0 {
			tramp := &bir.Block{
				Label: fmt.Sprintf("%s$spec%d", cj.False, nspec),
				Stmts: shadowOfTrue,
				Term:  &bir.Jmp{Target: cj.False},
			}
			nspec++
			newBlocks = append(newBlocks, tramp)
			cj.False = tramp.Label
		}
	}
	out.Blocks = append(out.Blocks, newBlocks...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// shadowStmts linearizes the code reachable from label in clean (following
// unconditional control flow, stopping at a further branch, a halt, or the
// statement budget) and transforms it into shadow form: every register is
// renamed to its shadow copy, shadow copies are initialized from the real
// registers on first read, stores are dropped (transient stores do not
// retire), and loads are annotated via opts.ObserveLoad.
func shadowStmts(clean *bir.Program, label string, opts Options) ([]bir.Stmt, error) {
	var raw []bir.Stmt
	cur := label
	budget := opts.MaxShadowStmts
collect:
	for {
		b := clean.Block(cur)
		if b == nil {
			return nil, fmt.Errorf("spec: unknown block %q", cur)
		}
		for _, s := range b.Stmts {
			if _, isObs := s.(*bir.Observe); isObs {
				continue // clean should have none; be tolerant
			}
			if budget == 0 {
				break collect
			}
			budget--
			raw = append(raw, s)
		}
		switch t := b.Term.(type) {
		case *bir.Jmp:
			cur = t.Target
		case *bir.CondJmp:
			// Constant-true guards (from Tautologize) are straight-line:
			// keep following the taken side. A real branch ends the
			// speculation window (nested speculation is not modelled).
			if t.Cond == expr.True {
				cur = t.True
				continue
			}
			break collect
		case *bir.Halt:
			break collect
		}
	}

	// Transform to shadow form.
	rename := func(e expr.BVExpr) expr.BVExpr { return expr.RenameBV(e, shadow) }
	var out []bir.Stmt
	initialized := map[string]bool{}
	ensureInit := func(e expr.Expr) {
		vars := map[string]bool{}
		expr.Vars(e, vars, nil, nil)
		for v := range vars {
			if !initialized[v] {
				initialized[v] = true
				out = append(out, &bir.Assign{Dst: shadow(v), Rhs: expr.V64(v)})
			}
		}
	}
	markWritten := func(dst string) { initialized[dst] = true }
	loadIdx := 0
	for _, s := range raw {
		switch v := s.(type) {
		case *bir.Assign:
			ensureInit(v.Rhs)
			sh := &bir.Assign{Dst: shadow(v.Dst), Rhs: rename(v.Rhs)}
			markWritten(v.Dst)
			out = append(out, sh)
		case *bir.Load:
			ensureInit(v.Addr)
			addr := rename(v.Addr)
			if opts.ObserveLoad != nil {
				if o := opts.ObserveLoad(addr, loadIdx); o != nil {
					out = append(out, o)
				}
			}
			loadIdx++
			out = append(out, &bir.Load{Dst: shadow(v.Dst), Addr: addr})
			markWritten(v.Dst)
		case *bir.Store:
			// Dropped: transient stores do not change memory, and the
			// modelled core does not allocate cache lines for them.
		}
	}
	if loadIdx == 0 {
		// A shadow region without memory accesses produces no refined
		// observations; skip it entirely to keep paths small.
		hasObs := false
		for _, s := range out {
			if _, ok := s.(*bir.Observe); ok {
				hasObs = true
				break
			}
		}
		if !hasObs {
			return nil, nil
		}
	}
	return out, nil
}
