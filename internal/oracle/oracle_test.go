package oracle

import (
	"errors"
	"math/rand"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/lifter"
	"scamv/internal/sat"
	"scamv/internal/smt"
)

// --- brute-force SAT oracle -------------------------------------------------

func TestBruteSolveKnownFormulas(t *testing.T) {
	x, y := sat.MkLit(0, false), sat.MkLit(1, false)
	st, model := BruteSolve(2, [][]sat.Lit{{x, y}, {x.Neg(), y}})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	// Minimal model in binary order: x=0 forces y=1 via first clause.
	if model[0] != false || model[1] != true {
		t.Fatalf("non-minimal model %v", model)
	}
	if st, _ := BruteSolve(1, [][]sat.Lit{{x}, {x.Neg()}}); st != sat.Unsat {
		t.Fatalf("got %v for x ∧ ¬x", st)
	}
	if st, _ := BruteSolve(1, [][]sat.Lit{{x}}, x.Neg()); st != sat.Unsat {
		t.Fatalf("got %v for x under assumption ¬x", st)
	}
}

func TestDiffSATAgreesOnRandomCNF(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		nVars, clauses := RandomCNF(r, 10, 20)
		var assumptions []sat.Lit
		for j, n := 0, r.Intn(3); j < n; j++ {
			assumptions = append(assumptions, sat.MkLit(r.Intn(nVars), r.Intn(2) == 1))
		}
		if err := DiffSAT(nVars, clauses, assumptions, CDCLSolve(int64(i))); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

// TestDiffSATCatchesLyingSolver proves the SAT differential has teeth: a
// solver that inverts its verdict, and one that corrupts a model bit, must
// both be flagged.
func TestDiffSATCatchesLyingSolver(t *testing.T) {
	x, y := sat.MkLit(0, false), sat.MkLit(1, false)
	clauses := [][]sat.Lit{{x, y}}
	liar := func(nVars int, cs [][]sat.Lit, as []sat.Lit) (sat.Status, []bool) {
		return sat.Unsat, nil
	}
	if err := DiffSAT(2, clauses, nil, liar); err == nil {
		t.Fatal("verdict-inverting solver not caught")
	}
	corruptor := func(nVars int, cs [][]sat.Lit, as []sat.Lit) (sat.Status, []bool) {
		st, model := CDCLSolve(1)(nVars, cs, as)
		if st == sat.Sat {
			model[0] = !model[0] // flip a bit; {x∨y} with y false becomes falsified
		}
		return st, model
	}
	if err := DiffSAT(2, [][]sat.Lit{{x, y}, {y.Neg()}}, nil, corruptor); err == nil {
		t.Fatal("model-corrupting solver not caught")
	}
}

func TestShrinkCNFReducesLyingSolverRepro(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	nVars, clauses := RandomCNF(r, 12, 24)
	liar := func(nv int, cs [][]sat.Lit, as []sat.Lit) (sat.Status, []bool) {
		return sat.Unsat, nil
	}
	failing := func(nv int, cs [][]sat.Lit) bool {
		return DiffSAT(nv, cs, nil, liar) != nil
	}
	if !failing(nVars, clauses) {
		t.Skip("seed CNF unsat; liar agrees by accident")
	}
	sv, sc := ShrinkCNF(nVars, clauses, failing)
	if !failing(sv, sc) {
		t.Fatal("shrunk CNF no longer failing")
	}
	// An always-Unsat solver disagrees even on the empty CNF, so the
	// shrinker should reach (or approach) the trivial repro.
	if len(sc) > 1 {
		t.Fatalf("shrunk to %d clauses, want ≤1: %v", len(sc), sc)
	}
	if sv > 2 {
		t.Fatalf("shrunk to %d vars, want ≤2", sv)
	}
}

// --- bitblast vs evaluator --------------------------------------------------

func TestEvalVsBlastRandomExprs(t *testing.T) {
	r := rand.New(rand.NewSource(2021))
	src := randSource{r}
	for i := 0; i < 150; i++ {
		w := exprWidths[src.intn(len(exprWidths))]
		e := genBVExpr(src, w, 3)
		b := genBoolExpr(src, w, 2)
		vars := make(map[string]uint)
		varWidths(e, vars)
		varWidths(b, vars)
		a := expr.NewAssignment()
		for name := range vars {
			a.BV[name] = r.Uint64()
		}
		if err := EvalVsBlast(e, a); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if err := EvalVsBlastBool(b, a); err != nil {
			t.Fatalf("iter %d (bool): %v", i, err)
		}
	}
}

// TestDiffBlastCatchesFlippedCarry injects the classic adder bug — a carry
// that never propagates into bit 8 — and checks the differential flags
// exactly the inputs whose low bytes carry.
func TestDiffBlastCatchesFlippedCarry(t *testing.T) {
	x, y := expr.V64("x"), expr.V64("y")
	// Buggy adder: low byte and high 56 bits added independently, the
	// carry out of bit 7 dropped on the floor.
	lo := expr.Add(expr.NewExtract(7, 0, x), expr.NewExtract(7, 0, y))
	hi := expr.Add(expr.NewExtract(63, 8, x), expr.NewExtract(63, 8, y))
	buggy := expr.Or(
		expr.Shl(expr.NewExt(expr.ZeroExt, hi, 64), expr.C64(8)),
		expr.NewExt(expr.ZeroExt, lo, 64))
	good := expr.Add(x, y)

	noCarry := expr.NewAssignment()
	noCarry.BV["x"], noCarry.BV["y"] = 0x1234_5600, 0x0000_00ff
	if err := DiffBlast(buggy, good, noCarry); err != nil {
		t.Fatalf("false positive without carry: %v", err)
	}
	carry := expr.NewAssignment()
	carry.BV["x"], carry.BV["y"] = 0x1234_56ff, 0x0000_0001
	if err := DiffBlast(buggy, good, carry); err == nil {
		t.Fatal("flipped carry not caught")
	}
}

// --- SMT model soundness ----------------------------------------------------

func TestCheckSMTModelCatchesCorruption(t *testing.T) {
	s := smt.New(smt.Options{Seed: 1})
	mem := expr.NewMemVar("MEM")
	x := expr.V64("x")
	fs := []expr.BoolExpr{
		expr.Eq(x, expr.C64(42)),
		expr.Eq(expr.NewRead(mem, x), expr.C64(7)),
	}
	for _, f := range fs {
		s.Assert(f)
	}
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	model := s.Model()
	if err := CheckSMTModel(model, fs...); err != nil {
		t.Fatalf("sound model rejected: %v", err)
	}
	model.BV["x"] = 41 // corrupt: the pinned variable no longer matches
	if err := CheckSMTModel(model, fs...); err == nil {
		t.Fatal("corrupted model accepted")
	}
	model.BV["x"] = 42
	model.Mem["MEM"].Set(42, 8) // corrupt the reconstructed memory image
	if err := CheckSMTModel(model, fs...); err == nil {
		t.Fatal("corrupted memory image accepted")
	}
}

// --- lifter+symexec vs micro ------------------------------------------------

func TestDiffProgramAgreesOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(20211018))
	cfg := DefaultGen()
	for i := 0; i < 150; i++ {
		p := RandomProgram(r, cfg)
		regs, mem := RandomState(r, cfg)
		if err := DiffProgram(p, regs, mem, nil); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

// dropStores wraps the production lifter with an injected bug: every Store
// statement vanishes from the lifted program.
func dropStores(p *arm.Program) (*bir.Program, error) {
	bp, err := lifter.Lift(p)
	if err != nil {
		return nil, err
	}
	for _, b := range bp.Blocks {
		kept := b.Stmts[:0:0]
		for _, s := range b.Stmts {
			if _, isStore := s.(*bir.Store); !isStore {
				kept = append(kept, s)
			}
		}
		b.Stmts = kept
	}
	return bp, nil
}

// TestDiffProgramCatchesDroppedStore proves the program differential has
// teeth, and that the shrinker reduces the injected-lifter-bug repro to a
// minimal program of at most 3 instructions.
func TestDiffProgramCatchesDroppedStore(t *testing.T) {
	// A program whose store is observable both through memory and through a
	// later load, padded with irrelevant instructions for the shrinker.
	p := arm.NewProgram("dropped-store")
	p.Add(
		arm.Instr{Op: arm.MOVZ, Rd: arm.X(1), Imm: 0x123},
		arm.Instr{Op: arm.ADDI, Rd: arm.X(2), Rn: arm.X(1), Imm: 8},
		arm.Instr{Op: arm.MOVZ, Rd: arm.X(3), Imm: 0x777},
		arm.Instr{Op: arm.STRI, Rd: arm.X(3), Rn: arm.X(0), Imm: 0},
		arm.Instr{Op: arm.EORR, Rd: arm.X(4), Rn: arm.X(1), Rm: arm.X(2)},
		arm.Instr{Op: arm.LDRI, Rd: arm.X(5), Rn: arm.X(0), Imm: 0},
		arm.Instr{Op: arm.HLT},
	)
	regs := map[string]uint64{"x0": 0x10000}
	mem := expr.NewMemModel(0)
	mem.Set(0x10000, 0xdead)

	opts := &DiffOptions{Lift: dropStores}
	err := DiffProgram(p, regs, mem, opts)
	var mm *Mismatch
	if !errors.As(err, &mm) {
		t.Fatalf("dropped store not caught: %v", err)
	}
	if err := DiffProgram(p, regs, mem, nil); err != nil {
		t.Fatalf("production lifter flagged: %v", err)
	}

	failing := func(q *arm.Program) bool {
		var m *Mismatch
		return errors.As(DiffProgram(q, regs, mem, opts), &m)
	}
	small := ShrinkProgram(p, failing)
	if !failing(small) {
		t.Fatal("shrunk program no longer failing")
	}
	if len(small.Instrs) > 3 {
		t.Fatalf("shrunk to %d instructions, want ≤3:\n%s", len(small.Instrs), small)
	}
	t.Logf("shrunk repro (%d instrs):\n%s", len(small.Instrs), small)
}

func TestShrinkProgramMechanics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cfg := DefaultGen()
	// Build a branchy program and shrink under a structural predicate to
	// exercise label remapping: "program still contains a conditional
	// branch and a store".
	var p *arm.Program
	has := func(q *arm.Program) bool {
		bcc, store := false, false
		for _, ins := range q.Instrs {
			if ins.Op == arm.BCC {
				bcc = true
			}
			if ins.IsStore() {
				store = true
			}
		}
		return bcc && store
	}
	for p == nil || !has(p) {
		p = RandomProgram(r, cfg)
	}
	small := ShrinkProgram(p, has)
	if err := small.Validate(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	if !has(small) {
		t.Fatal("shrunk program lost the predicate")
	}
	if len(small.Instrs) > 2 {
		t.Fatalf("shrunk to %d instructions, want ≤2 (one bcc + one store):\n%s", len(small.Instrs), small)
	}
}
