package oracle

import (
	"scamv/internal/arm"
	"scamv/internal/sat"
)

// deleteInstr returns a copy of p without instruction i, with label
// positions shifted so every branch still targets the instruction that
// followed it (labels at the deleted position move onto its successor).
func deleteInstr(p *arm.Program, i int) *arm.Program {
	q := arm.NewProgram(p.Name)
	q.Instrs = append(append([]arm.Instr{}, p.Instrs[:i]...), p.Instrs[i+1:]...)
	for l, pos := range p.Labels {
		if pos > i {
			pos--
		}
		q.Labels[l] = pos
	}
	return q
}

// replaceInstr returns a copy of p with instruction i swapped for ins.
func replaceInstr(p *arm.Program, i int, ins arm.Instr) *arm.Program {
	q := arm.NewProgram(p.Name)
	q.Instrs = append([]arm.Instr{}, p.Instrs...)
	q.Instrs[i] = ins
	for l, pos := range p.Labels {
		q.Labels[l] = pos
	}
	return q
}

// regFields enumerates the register operands a shrink candidate may
// canonicalize toward x0.
var regFields = []func(*arm.Instr) *arm.Reg{
	func(q *arm.Instr) *arm.Reg { return &q.Rd },
	func(q *arm.Instr) *arm.Reg { return &q.Rn },
	func(q *arm.Instr) *arm.Reg { return &q.Rm },
}

// ShrinkProgram minimizes a failing program in the delta-debugging style:
// as long as the predicate keeps failing, it deletes instructions, collapses
// conditional branches into unconditional ones, canonicalizes registers
// toward x0 and shrinks immediates toward zero, iterating to a fixpoint.
// The failing predicate must hold for p itself; every candidate passed to
// it is a valid program (all branch targets resolve).
func ShrinkProgram(p *arm.Program, failing func(*arm.Program) bool) *arm.Program {
	try := func(q *arm.Program) bool { return q.Validate() == nil && failing(q) }
	for changed := true; changed; {
		changed = false
		// Deletion pass, front to back; restart indexes after each success
		// so positions stay meaningful.
		for i := 0; i < len(p.Instrs); {
			if q := deleteInstr(p, i); try(q) {
				p = q
				changed = true
				continue
			}
			i++
		}
		// Simplification pass: per-instruction rewrites that keep the count
		// but reduce structure.
		for i := 0; i < len(p.Instrs); i++ {
			ins := p.Instrs[i]
			if ins.Op == arm.BCC {
				if q := replaceInstr(p, i, arm.Instr{Op: arm.B, Label: ins.Label}); try(q) {
					p = q
					changed = true
					continue
				}
			}
			for _, imm := range []uint64{0, ins.Imm >> 1} {
				if ins.Imm != imm {
					cand := ins
					cand.Imm = imm
					if q := replaceInstr(p, i, cand); try(q) {
						p = q
						ins = cand
						changed = true
					}
				}
			}
			for _, field := range regFields {
				cand := ins
				if *field(&cand) == arm.X(0) {
					continue
				}
				*field(&cand) = arm.X(0)
				if q := replaceInstr(p, i, cand); try(q) {
					p = q
					ins = cand
					changed = true
				}
			}
		}
	}
	return p
}

// ShrinkCNF minimizes a failing CNF: it deletes clauses, then literals
// within clauses, then compacts the variable space, as long as the
// predicate keeps failing. The failing predicate must hold for the input.
func ShrinkCNF(nVars int, clauses [][]sat.Lit, failing func(nVars int, clauses [][]sat.Lit) bool) (int, [][]sat.Lit) {
	copyWithout := func(cs [][]sat.Lit, i int) [][]sat.Lit {
		return append(append([][]sat.Lit{}, cs[:i]...), cs[i+1:]...)
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(clauses); {
			if cand := copyWithout(clauses, i); failing(nVars, cand) {
				clauses = cand
				changed = true
				continue
			}
			i++
		}
		for i := range clauses {
			for j := 0; j < len(clauses[i]); {
				if len(clauses[i]) == 1 {
					break
				}
				shorter := append(append([]sat.Lit{}, clauses[i][:j]...), clauses[i][j+1:]...)
				cand := append([][]sat.Lit{}, clauses...)
				cand[i] = shorter
				if failing(nVars, cand) {
					clauses = cand
					changed = true
					continue
				}
				j++
			}
		}
	}
	// Compact: renumber the variables still mentioned densely.
	remap := make(map[int]int)
	for _, c := range clauses {
		for _, l := range c {
			if _, ok := remap[l.Var()]; !ok {
				remap[l.Var()] = len(remap)
			}
		}
	}
	if len(remap) < nVars {
		compact := make([][]sat.Lit, len(clauses))
		for i, c := range clauses {
			compact[i] = make([]sat.Lit, len(c))
			for j, l := range c {
				compact[i][j] = sat.MkLit(remap[l.Var()], l.Sign())
			}
		}
		if failing(len(remap), compact) {
			return len(remap), compact
		}
	}
	return nVars, clauses
}
