package oracle

import (
	"errors"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/expr"
	"scamv/internal/sat"
	"scamv/internal/smt"
)

// FuzzSATOracle differentially tests the CDCL solver against the brute-force
// oracle on fuzzer-shaped CNFs, both through the one-shot DiffSAT path and
// through an incremental flow (assumption solve, ResetSearch, global solve on
// the same solver instance). Failures are minimized with ShrinkCNF before
// reporting.
func FuzzSATOracle(f *testing.F) {
	f.Add([]byte("sat-oracle"))
	f.Add([]byte("\x05\x08abcdefghijklmnop"))
	f.Add([]byte("\x00\x17" + "the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses, assumptions := DecodeCNF(data)
		if err := DiffSAT(nVars, clauses, assumptions, CDCLSolve(1)); err != nil {
			sv, sc := ShrinkCNF(nVars, clauses, func(nv int, cs [][]sat.Lit) bool {
				return DiffSAT(nv, cs, nil, CDCLSolve(1)) != nil
			})
			t.Fatalf("%v\nshrunk: %d vars, clauses %v", err, sv, sc)
		}

		// Incremental flow on one solver: assumption-scoped solve, then
		// ResetSearch, then an unscoped solve — each verdict cross-checked.
		s := sat.New(2)
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		bst, _ := BruteSolve(nVars, clauses)
		if !ok {
			if bst != sat.Unsat {
				t.Fatalf("AddClause reported top-level conflict but brute says %v", bst)
			}
			return
		}
		ast, _ := BruteSolve(nVars, clauses, assumptions...)
		if got := s.Solve(assumptions...); got != ast {
			t.Fatalf("assumption solve: cdcl %v vs brute %v", got, ast)
		}
		s.ResetSearch(3)
		if got := s.Solve(); got != bst {
			t.Fatalf("post-reset solve: cdcl %v vs brute %v", got, bst)
		}
		if bst == sat.Sat {
			if !CNFSatisfied(clauses, s.Model()[:nVars]) {
				t.Fatalf("post-reset model falsifies a clause")
			}
		}
	})
}

// FuzzPortfolioOracle differentially tests the portfolio backend against
// the brute-force oracle on fuzzer-shaped CNFs: the 4-worker race, every
// diversified worker configuration replayed solo, and the canonical-model
// contract (see DiffPortfolio). Failures are minimized with ShrinkCNF.
func FuzzPortfolioOracle(f *testing.F) {
	f.Add([]byte("portfolio-oracle"))
	f.Add([]byte("\x05\x08race four diversified workers"))
	f.Add([]byte("\x02\x04\x01\x00unit chain under assumptions"))
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses, assumptions := DecodeCNF(data)
		if err := DiffPortfolio(nVars, clauses, assumptions, 1, 4); err != nil {
			sv, sc := ShrinkCNF(nVars, clauses, func(nv int, cs [][]sat.Lit) bool {
				return DiffPortfolio(nv, cs, nil, 1, 4) != nil
			})
			t.Fatalf("%v\nshrunk: %d vars, clauses %v", err, sv, sc)
		}
	})
}

// FuzzSMTModelSoundness asserts fuzzer-shaped bitvector+memory formulas and
// validates every Sat model by concrete evaluation of the original formulas —
// seeing through Ackermann read elimination and bit-blasting. Unsat verdicts
// get a one-sided check: a handful of concrete assignments must each falsify
// at least one assertion.
func FuzzSMTModelSoundness(f *testing.F) {
	f.Add([]byte("smt-model"))
	f.Add([]byte("\x05\x05\x05read-over-write-chain"))
	f.Add([]byte("\xff\x01never written address"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := DecodeSMTCheck(data)
		s := smt.New(smt.Options{Seed: 1, MaxConflicts: 50000})
		for _, fm := range fs {
			s.Assert(fm)
		}
		switch s.Check() {
		case sat.Sat:
			if err := CheckSMTModel(s.Model(), fs...); err != nil {
				t.Fatal(err)
			}
		case sat.Unsat:
			vars := make(map[string]uint)
			for _, fm := range fs {
				varWidths(fm, vars)
			}
			for _, word := range []uint64{0, 1, 0x80, ^uint64(0)} {
				a := expr.NewAssignment()
				for name := range vars {
					a.BV[name] = word
				}
				allTrue := true
				for _, fm := range fs {
					if !a.EvalBool(fm) {
						allTrue = false
						break
					}
				}
				if allTrue {
					t.Fatalf("solver said Unsat but assignment word=%#x satisfies all %d assertions", word, len(fs))
				}
			}
		}
	})
}

// FuzzBitblastVsEval cross-checks the Tseitin bit-blaster against the direct
// 64-bit evaluator on fuzzer-shaped expressions and assignments.
func FuzzBitblastVsEval(f *testing.F) {
	f.Add([]byte("bitblast"))
	f.Add([]byte("\x03\x02extract-extend-ite"))
	f.Add([]byte("\x05\x01\x02narrow widths and shifts"))
	f.Fuzz(func(t *testing.T, data []byte) {
		bv, bo, a := DecodeExprCheck(data)
		if err := EvalVsBlast(bv, a); err != nil {
			t.Fatal(err)
		}
		if err := EvalVsBlastBool(bo, a); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzMatrixDiff differentially executes fuzzer-shaped structured programs
// against every platform preset of the microarchitecture zoo: the final
// architectural state must agree with the lifter + symbolic executor on all
// of them, since predictors, prefetchers, replacement policies, and
// speculation windows are microarchitectural only. Divergences are shrunk
// against the full matrix before reporting.
func FuzzMatrixDiff(f *testing.F) {
	f.Add([]byte("matrix-diff"))
	f.Add([]byte("\x02\x01loads stores and branches"))
	f.Add([]byte("\x03\x02\x01\x00compare and branch over body"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, regs, mem := DecodeProgram(data)
		err := DiffProgramMatrix(p, regs, mem, nil)
		if err == nil {
			return
		}
		var mm *Mismatch
		if errors.As(err, &mm) {
			small := ShrinkProgram(p, func(q *arm.Program) bool {
				var m *Mismatch
				return errors.As(DiffProgramMatrix(q, regs, mem, nil), &m)
			})
			t.Fatalf("%v\nshrunk repro:\n%s", err, small)
		}
		t.Fatal(err)
	})
}

// FuzzLifterVsMicro differentially executes fuzzer-shaped structured programs
// through the lifter + symbolic executor and through the microarchitectural
// simulator, comparing final registers and memory. A divergence is shrunk to
// a minimal program before reporting.
func FuzzLifterVsMicro(f *testing.F) {
	f.Add([]byte("lifter-vs-micro"))
	f.Add([]byte("\x02\x01loads stores and branches"))
	f.Add([]byte("\x03\x02\x01\x00compare and branch over body"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, regs, mem := DecodeProgram(data)
		err := DiffProgram(p, regs, mem, nil)
		if err == nil {
			return
		}
		var mm *Mismatch
		if errors.As(err, &mm) {
			small := ShrinkProgram(p, func(q *arm.Program) bool {
				var m *Mismatch
				return errors.As(DiffProgram(q, regs, mem, nil), &m)
			})
			t.Fatalf("%v\nshrunk repro:\n%s", err, small)
		}
		t.Fatal(err)
	})
}
