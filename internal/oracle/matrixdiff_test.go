package oracle

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/expr"
	"scamv/internal/micro"
)

// TestDiffProgramMatrixAgreesOnRandomPrograms: the architectural semantics
// must be identical on every platform of the zoo — speculation windows,
// predictors, prefetchers, and replacement policies are microarchitectural
// only.
func TestDiffProgramMatrixAgreesOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(20211019))
	cfg := DefaultGen()
	for i := 0; i < 30; i++ {
		p := RandomProgram(r, cfg)
		regs, mem := RandomState(r, cfg)
		if err := DiffProgramMatrix(p, regs, mem, nil); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

// mispredictBug is the injected platform-dependent bug of the matrix teeth
// test: run the program normally, then corrupt a register iff the platform's
// predictor mispredicted — an "architectural state leak on misspeculation"
// that only platforms with a mispredicting predictor can exhibit.
func mispredictBug(m *micro.Machine, p *arm.Program, maxInstrs int) error {
	if err := m.Run(p, maxInstrs, nil); err != nil {
		return err
	}
	if m.Mispredicts > 0 {
		m.Regs[5] ^= 0xdead
	}
	return nil
}

// TestDiffProgramMatrixCatchesMispredictBug proves the matrix sweep has
// teeth: a bug gated on a misprediction is invisible on the always-taken
// in-order platform (the branch below is taken, so its static prediction is
// correct) but every cold dynamic predictor predicts not-taken and trips it.
// Single-platform differential testing against the "right" platform would
// miss the bug; the matrix cannot.
func TestDiffProgramMatrixCatchesMispredictBug(t *testing.T) {
	p, err := arm.Parse("mispredict-bug", `
        cmp x0, x1
        b.lo skip
        movz x5, #0x111
    skip:
        hlt`)
	if err != nil {
		t.Fatal(err)
	}
	regs := map[string]uint64{"x0": 1, "x1": 2} // 1 < 2: branch taken
	mem := expr.NewMemModel(0)

	// Dormant on the always-taken platform: prediction is correct, the bug
	// never fires, the differential passes.
	m0 := micro.InOrderM()
	if err := DiffProgram(p, regs, mem, &DiffOptions{Config: &m0, RunMachine: mispredictBug}); err != nil {
		t.Fatalf("always-taken platform should not trip the bug: %v", err)
	}

	// Live on the default platform: the cold PHT predicts not-taken, the
	// taken branch mispredicts, the corruption lands in x5.
	a53 := micro.A53Like()
	err = DiffProgram(p, regs, mem, &DiffOptions{Config: &a53, RunMachine: mispredictBug})
	var mm *Mismatch
	if !errors.As(err, &mm) {
		t.Fatalf("PHT platform should trip the bug: %v", err)
	}
	if mm.Loc != "register x5" {
		t.Errorf("mismatch at %s, want register x5", mm.Loc)
	}

	// The matrix sweep therefore catches it, names the platform, and keeps
	// the Mismatch recoverable for shrinking.
	err = DiffProgramMatrix(p, regs, mem, &DiffOptions{RunMachine: mispredictBug})
	if !errors.As(err, &mm) {
		t.Fatalf("matrix sweep missed the injected bug: %v", err)
	}
	if !strings.Contains(err.Error(), "platform ") {
		t.Errorf("matrix error should name the platform: %v", err)
	}

	// And without the injected bug the same program is clean everywhere.
	if err := DiffProgramMatrix(p, regs, mem, nil); err != nil {
		t.Fatalf("clean program flagged: %v", err)
	}
}
