package oracle

import (
	"fmt"

	"scamv/internal/sat"
)

// This file extends the SAT differential to the portfolio backend. A
// portfolio answer has two extra ways to be wrong that a lone solver does
// not: a diversified helper configuration can be unsound on its own (a
// "lying worker" whose restart policy or phase noise breaks an invariant),
// and the clause-share pool can leak an unimplied clause into every helper
// at once. DiffPortfolio therefore checks three layers: the racing
// portfolio against brute force, each diversified configuration solo
// against brute force, and the canonical-model contract (a portfolio Sat
// model must be exactly the lone base-config solver's model, for any N).

// ConfigSolve adapts a fresh solver with the given search configuration to
// a SolveFunc — the solo-replay path for auditing one diversified worker
// outside the race.
func ConfigSolve(cfg sat.Config) SolveFunc {
	return func(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit) (sat.Status, []bool) {
		s := sat.NewWithConfig(cfg)
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			if !s.AddClause(c...) {
				break // trivially unsat; Solve will confirm
			}
		}
		st := s.Solve(assumptions...)
		if st != sat.Sat {
			return st, nil
		}
		return st, s.Model()
	}
}

// PortfolioSolve adapts a fresh n-worker portfolio (default diversification
// over the given seed) to a SolveFunc.
func PortfolioSolve(seed int64, n int) SolveFunc {
	return func(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit) (sat.Status, []bool) {
		p := sat.NewPortfolio(sat.DefaultPortfolioConfigs(sat.Config{Seed: seed}, n))
		for v := 0; v < nVars; v++ {
			p.NewVar()
		}
		for _, c := range clauses {
			if !p.AddClause(c...) {
				break
			}
		}
		st := p.Solve(assumptions...)
		if st != sat.Sat {
			return st, nil
		}
		return st, p.Model()
	}
}

// DiffPortfolio cross-checks the portfolio backend against the brute-force
// oracle on one CNF: the n-worker race as a whole, then every diversified
// worker configuration replayed solo, and finally the canonical-model
// contract — when both answer Sat, the portfolio's model must equal the
// lone base-config solver's bit for bit, because worker 0 is the only
// worker whose models a portfolio may report. The returned error, when
// non-nil, names the layer that disagreed.
func DiffPortfolio(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit, seed int64, n int) error {
	psolve := PortfolioSolve(seed, n)
	if err := DiffSAT(nVars, clauses, assumptions, psolve); err != nil {
		return fmt.Errorf("portfolio-%d race: %w", n, err)
	}
	cfgs := sat.DefaultPortfolioConfigs(sat.Config{Seed: seed}, n)
	for i, cfg := range cfgs {
		if err := DiffSAT(nVars, clauses, assumptions, ConfigSolve(cfg)); err != nil {
			return fmt.Errorf("worker %d solo (decay=%v base=%v geom=%v): %w",
				i, cfg.VarDecay, cfg.RestartBase, cfg.RestartGeometric, err)
		}
	}
	stP, mP := psolve(nVars, clauses, assumptions)
	stS, mS := ConfigSolve(cfgs[0])(nVars, clauses, assumptions)
	if stP == sat.Sat && stS == sat.Sat {
		for v := 0; v < nVars; v++ {
			if mP[v] != mS[v] {
				return fmt.Errorf("oracle: portfolio-%d model differs from canonical worker at var %d", n, v)
			}
		}
	}
	return nil
}
