package oracle

import (
	"math/rand"
	"testing"

	"scamv/internal/sat"
)

func TestDiffPortfolioAgreesOnRandomCNF(t *testing.T) {
	r := rand.New(rand.NewSource(2021))
	for i := 0; i < 60; i++ {
		nVars, clauses := RandomCNF(r, 10, 20)
		var assumptions []sat.Lit
		for j, n := 0, r.Intn(3); j < n; j++ {
			assumptions = append(assumptions, sat.MkLit(r.Intn(nVars), r.Intn(2) == 1))
		}
		for _, n := range []int{1, 2, 4} {
			if err := DiffPortfolio(nVars, clauses, assumptions, int64(i), n); err != nil {
				t.Fatalf("iter %d portfolio-%d: %v", i, n, err)
			}
		}
	}
}

// poisonedCNF is a satisfiable formula engineered so a two-worker race with
// teethConfigs deterministically exposes an unsound clause pool: the unit
// clause pins x0 true at level 0, and the two conflict gadgets force any
// zero-default-phase search through at least two conflicts before reaching
// the model (x0=x1=x2=1).
func poisonedCNF() (int, [][]sat.Lit) {
	x0, x1 := sat.MkLit(0, false), sat.MkLit(1, false)
	x2, x3 := sat.MkLit(2, false), sat.MkLit(3, false)
	return 4, [][]sat.Lit{
		{x0},
		{x1, x2}, {x1, x2.Neg()}, // deciding x1=0 conflicts; learns x1
		{x1.Neg(), x2, x3}, {x1.Neg(), x2, x3.Neg()}, // deciding x2=0 conflicts; learns x2
	}
}

// teethConfigs is the two-worker setup of the lying-worker repro: worker 0
// gives up after one conflict (so the helper's verdict decides the race)
// and the helper restarts after every conflict (so it syncs with the share
// pool at the earliest opportunity).
func teethConfigs() []sat.Config {
	return []sat.Config{
		{Seed: 1, MaxConflicts: 1},
		{Seed: 2, RestartBase: 1},
	}
}

// TestDiffPortfolioCatchesPoisonedSharePool proves the portfolio
// differential has teeth: a helper whose restart policy makes it import an
// unimplied clause from the share pool wrongly proves Unsat on a
// satisfiable formula, and the brute-force cross-check flags it. The lie is
// injected through the pool (Export of ¬x0 against the formula's unit x0),
// which is exactly how a soundness bug in clause sharing would surface.
func TestDiffPortfolioCatchesPoisonedSharePool(t *testing.T) {
	nVars, clauses := poisonedCNF()

	if st, _ := BruteSolve(nVars, clauses); st != sat.Sat {
		t.Fatalf("repro formula must be satisfiable, brute says %v", st)
	}
	// Worker 0's one-conflict budget must not reach the model: the race
	// outcome then rests entirely on the helper.
	if st, _ := ConfigSolve(teethConfigs()[0])(nVars, clauses, nil); st != sat.Unknown {
		t.Fatalf("canonical worker should exhaust its budget, got %v", st)
	}

	build := func() *sat.Portfolio {
		p := sat.NewPortfolio(teethConfigs())
		for v := 0; v < nVars; v++ {
			p.NewVar()
		}
		for _, c := range clauses {
			p.AddClause(c...)
		}
		return p
	}

	// Clean pool: the helper restarts, finds nothing to import, and answers
	// Sat — which the race discards (only worker 0 reports models), so the
	// portfolio honestly admits Unknown.
	if st := build().Solve(); st != sat.Unknown {
		t.Fatalf("clean pool: got %v, want Unknown", st)
	}

	// Poisoned pool: ¬x0 contradicts the formula's level-0 unit x0, so the
	// helper's first restart import yields a top-level conflict and a bogus
	// Unsat that decides the race.
	lying := func(nv int, cs [][]sat.Lit, as []sat.Lit) (sat.Status, []bool) {
		p := sat.NewPortfolio(teethConfigs())
		for v := 0; v < nv; v++ {
			p.NewVar()
		}
		for _, c := range cs {
			p.AddClause(c...)
		}
		if !p.SharedPool().Export([]sat.Lit{sat.MkLit(0, true)}) {
			t.Fatal("poison clause rejected by the pool")
		}
		st := p.Solve(as...)
		if st != sat.Sat {
			return st, nil
		}
		return st, p.Model()
	}
	err := DiffSAT(nVars, clauses, nil, lying)
	if err == nil {
		t.Fatal("poisoned share pool not caught by the differential")
	}
	t.Logf("differential caught the lie: %v", err)
}

// TestPortfolioModelIndependentOfSize spot-checks the canonical-model
// contract directly: on satisfiable CNFs the reported model is identical at
// every portfolio size (already enforced inside DiffPortfolio; this pins it
// on formulas with many models where helpers genuinely find different ones).
func TestPortfolioModelIndependentOfSize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 40 && checked < 10; i++ {
		nVars, clauses := RandomCNF(r, 8, 10)
		st, want := PortfolioSolve(99, 1)(nVars, clauses, nil)
		if st != sat.Sat {
			continue
		}
		checked++
		for _, n := range []int{2, 3, 4, 6} {
			st2, got := PortfolioSolve(99, n)(nVars, clauses, nil)
			if st2 != sat.Sat {
				t.Fatalf("iter %d: portfolio-%d says %v on a sat formula", i, n, st2)
			}
			for v := 0; v < nVars; v++ {
				if got[v] != want[v] {
					t.Fatalf("iter %d: portfolio-%d model differs at var %d", i, n, v)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no satisfiable formulas generated")
	}
}
