package oracle

import (
	"fmt"

	"scamv/internal/bitblast"
	"scamv/internal/expr"
	"scamv/internal/sat"
)

// varWidths collects every bitvector variable of e with its width.
func varWidths(e expr.Expr, out map[string]uint) {
	switch v := e.(type) {
	case *expr.Const, *expr.BoolConst, *expr.BoolVar, *expr.MemVar:
	case *expr.Var:
		out[v.Name] = v.W
	case *expr.Bin:
		varWidths(v.X, out)
		varWidths(v.Y, out)
	case *expr.Un:
		varWidths(v.X, out)
	case *expr.Extract:
		varWidths(v.X, out)
	case *expr.Ext:
		varWidths(v.X, out)
	case *expr.Ite:
		varWidths(v.Cond, out)
		varWidths(v.Then, out)
		varWidths(v.Else, out)
	case *expr.Cmp:
		varWidths(v.X, out)
		varWidths(v.Y, out)
	case *expr.Nary:
		for _, a := range v.Args {
			varWidths(a, out)
		}
	case *expr.NotBExpr:
		varWidths(v.X, out)
	case *expr.Read:
		varWidths(v.M, out)
		varWidths(v.Addr, out)
	case *expr.Store:
		varWidths(v.M, out)
		varWidths(v.Addr, out)
		varWidths(v.Val, out)
	default:
		panic(fmt.Sprintf("oracle: varWidths on %T", e))
	}
}

// pinVars asserts name = a.BV[name] for every variable of the expressions,
// so the SAT search has exactly one choice per input bit.
func pinVars(bl *bitblast.Blaster, a *expr.Assignment, es ...expr.Expr) {
	vars := make(map[string]uint)
	for _, e := range es {
		varWidths(e, vars)
	}
	for name, w := range vars {
		bl.Assert(expr.Eq(expr.NewVar(name, w), expr.NewConst(a.BV[name], w)))
	}
}

// DiffBlast bit-blasts `blasted` with every input pinned to its value in a,
// solves, and compares the circuit's output word with the direct 64-bit
// evaluation of `reference` under the same assignment. For checking the
// blaster itself the two expressions are the same (see EvalVsBlast);
// passing different expressions turns the check into a semantic-equivalence
// probe at one point, which the teeth tests use to inject mutations.
func DiffBlast(blasted, reference expr.BVExpr, a *expr.Assignment) error {
	s := sat.New(1)
	bl := bitblast.New(s)
	pinVars(bl, a, blasted, reference)
	bits := bl.BV(blasted)
	if st := s.Solve(); st != sat.Sat {
		return fmt.Errorf("oracle: pinned circuit unexpectedly %v for %s", st, blasted)
	}
	got := bl.Value(bits)
	want := a.EvalBV(reference)
	if got != want {
		return fmt.Errorf("oracle: bitblast %#x vs evaluator %#x for %s under %v", got, want, blasted, a.BV)
	}
	return nil
}

// EvalVsBlast cross-checks the bit-blaster against direct evaluation of e
// at the concrete point a.
func EvalVsBlast(e expr.BVExpr, a *expr.Assignment) error { return DiffBlast(e, e, a) }

// EvalVsBlastBool is the boolean-sorted variant: the blasted literal of e
// must agree with EvalBool at the point a.
func EvalVsBlastBool(e expr.BoolExpr, a *expr.Assignment) error {
	s := sat.New(1)
	bl := bitblast.New(s)
	pinVars(bl, a, e)
	l := bl.Bool(e)
	if st := s.Solve(); st != sat.Sat {
		return fmt.Errorf("oracle: pinned circuit unexpectedly %v for %s", st, e)
	}
	got := s.Value(l.Var()) != l.Sign()
	if want := a.EvalBool(e); got != want {
		return fmt.Errorf("oracle: bitblast %v vs evaluator %v for %s under %v", got, want, e, a.BV)
	}
	return nil
}

// CheckSMTModel validates a model returned by internal/smt against the
// original formulas as they were asserted — memory reads, stores and all —
// by concrete evaluation. A sound solver's Sat model must satisfy every
// asserted formula; a failure means read elimination, Ackermann expansion,
// bit-blasting or the CDCL core miscarried somewhere between the assertion
// and the model.
func CheckSMTModel(model *expr.Assignment, formulas ...expr.BoolExpr) error {
	for i, f := range formulas {
		if !model.EvalBool(f) {
			return fmt.Errorf("oracle: model falsifies asserted formula %d: %s", i, f)
		}
	}
	return nil
}
