package oracle

import (
	"fmt"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/lifter"
	"scamv/internal/micro"
	"scamv/internal/symexec"
)

// DiffOptions configures DiffProgram. The zero value uses the production
// lifter and the default Cortex-A53-like simulator configuration; the Lift
// hook exists so the teeth tests can inject lifting mutations and prove the
// differential detects them.
type DiffOptions struct {
	// Lift translates arm to bir; nil means lifter.Lift.
	Lift func(*arm.Program) (*bir.Program, error)
	// Config is the simulator configuration; nil means micro.DefaultConfig.
	// Speculation, caches and the prefetcher never touch architectural
	// state, so the differential holds under any configuration.
	Config *micro.Config
	// MaxInstrs bounds simulator execution (0: the simulator's default).
	MaxInstrs int
	// MaxSteps bounds symbolic execution blocks per path (0: default).
	MaxSteps int
	// RunMachine executes the simulator side; nil means (*micro.Machine).Run.
	// The hook exists for the matrix teeth tests: a wrapper can corrupt
	// architectural state conditioned on a microarchitectural event (say, a
	// branch misprediction) to prove the cross-platform differential catches
	// bugs that only some platforms trigger.
	RunMachine func(m *micro.Machine, p *arm.Program, maxInstrs int) error
}

// Mismatch is a divergence between the symbolic semantics (lifter +
// symbolic executor, evaluated concretely) and the simulator on one
// concrete run: the counterexample the differential oracle exists to find.
type Mismatch struct {
	Prog *arm.Program
	Loc  string // "register x3" or "memory 0x10010"
	Sym  uint64 // lifter+symexec value
	Mic  uint64 // simulator value
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("oracle: %s: symexec %#x vs micro %#x\nprogram:\n%s", m.Loc, m.Sym, m.Mic, m.Prog)
}

// DiffProgram executes p under both independent semantics of the A64
// subset — lift to BIR and symbolically execute, then evaluate the feasible
// path under the concrete initial state; and run the microarchitectural
// simulator directly — and compares the final architectural state: every
// general-purpose register and the full memory image. It returns a
// *Mismatch error on divergence, a plain error when either side fails to
// execute, and nil on agreement.
func DiffProgram(p *arm.Program, regs map[string]uint64, mem *expr.MemModel, o *DiffOptions) error {
	if o == nil {
		o = &DiffOptions{}
	}
	lift := o.Lift
	if lift == nil {
		lift = lifter.Lift
	}
	bp, err := lift(p)
	if err != nil {
		return fmt.Errorf("oracle: lift: %w", err)
	}
	paths, err := symexec.Run(bp, o.MaxSteps)
	if err != nil {
		return fmt.Errorf("oracle: symexec: %w", err)
	}

	a := expr.NewAssignment()
	for k, v := range regs {
		a.BV[k] = v
	}
	a.Mem[bir.MemName] = mem
	taken, err := symexec.Feasible(paths, a)
	if err != nil {
		return err
	}

	cfg := micro.DefaultConfig()
	if o.Config != nil {
		cfg = *o.Config
	}
	m := micro.New(cfg)
	if err := m.LoadState(regs, mem); err != nil {
		return err
	}
	run := o.RunMachine
	if run == nil {
		run = func(m *micro.Machine, p *arm.Program, maxInstrs int) error {
			return m.Run(p, maxInstrs, nil)
		}
	}
	if err := run(m, p, o.MaxInstrs); err != nil {
		return fmt.Errorf("oracle: micro: %w", err)
	}

	// Registers: every architectural register, written or not.
	for i := 0; i <= 30; i++ {
		name := lifter.RegName(arm.X(i))
		got := regs[name]
		if e, written := taken.Regs[name]; written {
			got = a.EvalBV(e)
		}
		if want := m.Regs[i]; got != want {
			return &Mismatch{Prog: p, Loc: "register " + name, Sym: got, Mic: want}
		}
	}

	// Memory: materialize both final images and compare them pointwise over
	// the union of their explicit entries (they share the default word, so
	// untouched addresses agree by construction).
	symMem := a.EvalMem(taken.Mem)
	micMem := m.MemSnapshot()
	if symMem.Default != micMem.Default {
		return &Mismatch{Prog: p, Loc: "memory default", Sym: symMem.Default, Mic: micMem.Default}
	}
	for addr := range symMem.Data {
		if got, want := symMem.Get(addr), micMem.Get(addr); got != want {
			return &Mismatch{Prog: p, Loc: fmt.Sprintf("memory %#x", addr), Sym: got, Mic: want}
		}
	}
	for addr := range micMem.Data {
		if got, want := symMem.Get(addr), micMem.Get(addr); got != want {
			return &Mismatch{Prog: p, Loc: fmt.Sprintf("memory %#x", addr), Sym: got, Mic: want}
		}
	}
	return nil
}

// DiffProgramMatrix sweeps DiffProgram across the whole platform zoo: the
// architectural contract says speculation windows, predictors, prefetchers,
// and replacement policies never touch registers or memory, so the
// differential must hold under EVERY preset, not just the default A53-like
// core. The first diverging platform is reported by name; errors.As still
// recovers the underlying *Mismatch for shrinking.
func DiffProgramMatrix(p *arm.Program, regs map[string]uint64, mem *expr.MemModel, o *DiffOptions) error {
	base := DiffOptions{}
	if o != nil {
		base = *o
	}
	for _, name := range micro.PresetNames() {
		cfg, err := micro.Preset(name)
		if err != nil {
			return err
		}
		po := base
		po.Config = &cfg
		if err := DiffProgram(p, regs, mem, &po); err != nil {
			return fmt.Errorf("platform %s: %w", name, err)
		}
	}
	return nil
}
