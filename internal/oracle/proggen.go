package oracle

import (
	"fmt"
	"math/rand"

	"scamv/internal/arm"
	"scamv/internal/expr"
	"scamv/internal/lifter"
)

// intSource abstracts the randomness driving the structured generators: a
// seeded RNG for the deterministic differential sweeps, or a fuzzer-mutated
// byte stream for the native fuzz targets. Driving one generator from both
// means corpus mutation explores exactly the space of valid programs.
type intSource interface {
	intn(n int) int // uniform-ish in [0, n)
	word() uint64
}

type randSource struct{ r *rand.Rand }

func (s randSource) intn(n int) int { return s.r.Intn(n) }
func (s randSource) word() uint64   { return s.r.Uint64() }

// GenConfig shapes the structured program generator.
type GenConfig struct {
	// Regs is the number of general-purpose registers the generated code
	// uses (x0..x(Regs-1)); XZR is mixed in occasionally regardless.
	Regs int
	// MaxSegments bounds the number of control-flow segments (straight
	// runs, if/else diamonds, compare-and-branch skips, forward jumps).
	MaxSegments int
	// MemBase is the base of the memory window register values are biased
	// toward, so loads and stores alias interestingly.
	MemBase uint64
	// MemWords is the number of words in the window.
	MemWords int
}

// DefaultGen mirrors the paper's template shapes: few registers, short
// programs, one small shared memory window.
func DefaultGen() GenConfig {
	return GenConfig{Regs: 8, MaxSegments: 4, MemBase: 0x10000, MemWords: 8}
}

var genConds = []arm.Cond{arm.EQ, arm.NE, arm.HS, arm.LO, arm.HI, arm.LS, arm.GE, arm.LT, arm.GT, arm.LE}

// genReg picks an operand register, occasionally the zero register.
func genReg(src intSource, cfg GenConfig) arm.Reg {
	if src.intn(16) == 0 {
		return arm.XZR
	}
	return arm.X(src.intn(cfg.Regs))
}

// genInstr generates one random non-control-flow instruction covering the
// full straight-line A64 subset, including register- and immediate-offset
// loads and stores.
func genInstr(src intSource, cfg GenConfig) arm.Instr {
	reg := func() arm.Reg { return genReg(src, cfg) }
	imm := func() uint64 { return uint64(src.intn(1 << 12)) }
	switch src.intn(18) {
	case 0:
		return arm.Instr{Op: arm.MOVZ, Rd: reg(), Imm: imm()}
	case 1:
		return arm.Instr{Op: arm.MOVR, Rd: reg(), Rn: reg()}
	case 2:
		return arm.Instr{Op: arm.ADDI, Rd: reg(), Rn: reg(), Imm: imm()}
	case 3:
		return arm.Instr{Op: arm.ADDR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 4:
		return arm.Instr{Op: arm.SUBI, Rd: reg(), Rn: reg(), Imm: imm()}
	case 5:
		return arm.Instr{Op: arm.SUBR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 6:
		return arm.Instr{Op: arm.ANDI, Rd: reg(), Rn: reg(), Imm: imm()}
	case 7:
		return arm.Instr{Op: arm.ANDR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 8:
		return arm.Instr{Op: arm.ORRR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 9:
		return arm.Instr{Op: arm.EORR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 10:
		return arm.Instr{Op: arm.LSLI, Rd: reg(), Rn: reg(), Imm: uint64(src.intn(64))}
	case 11:
		return arm.Instr{Op: arm.LSRI, Rd: reg(), Rn: reg(), Imm: uint64(src.intn(64))}
	case 12:
		return arm.Instr{Op: arm.MULR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 13:
		return arm.Instr{Op: arm.LDRI, Rd: reg(), Rn: reg(), Imm: imm() &^ 7}
	case 14:
		return arm.Instr{Op: arm.STRI, Rd: reg(), Rn: reg(), Imm: imm() &^ 7}
	case 15:
		return arm.Instr{Op: arm.LDRR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 16:
		return arm.Instr{Op: arm.STRR, Rd: reg(), Rn: reg(), Rm: reg()}
	default:
		return arm.Instr{Op: arm.NOP}
	}
}

func genBody(src intSource, cfg GenConfig, p *arm.Program, n int) {
	for i := 0; i < n; i++ {
		p.Add(genInstr(src, cfg))
	}
}

// genProgram builds a DAG-shaped program (all branches forward, so both the
// symbolic executor and the simulator terminate) out of 1..MaxSegments
// control-flow segments followed by hlt.
func genProgram(src intSource, cfg GenConfig) *arm.Program {
	if cfg.Regs <= 0 {
		cfg = DefaultGen()
	}
	p := arm.NewProgram("fuzz")
	labels := 0
	fresh := func(prefix string) string {
		labels++
		return fmt.Sprintf("%s%d", prefix, labels)
	}
	genCmp := func() arm.Instr {
		switch src.intn(3) {
		case 0:
			return arm.Instr{Op: arm.CMPR, Rn: genReg(src, cfg), Rm: genReg(src, cfg)}
		case 1:
			return arm.Instr{Op: arm.CMPI, Rn: genReg(src, cfg), Imm: uint64(src.intn(1 << 12))}
		default:
			return arm.Instr{Op: arm.TSTI, Rn: genReg(src, cfg), Imm: uint64(src.intn(1 << 12))}
		}
	}
	segments := 1 + src.intn(cfg.MaxSegments)
	for seg := 0; seg < segments; seg++ {
		switch src.intn(4) {
		case 0: // straight-line run
			genBody(src, cfg, p, 1+src.intn(4))
		case 1: // if/else diamond over a compare
			els, end := fresh("else"), fresh("end")
			p.Add(genCmp(),
				arm.Instr{Op: arm.BCC, Cond: genConds[src.intn(len(genConds))], Label: els})
			genBody(src, cfg, p, 1+src.intn(3))
			p.Add(arm.Instr{Op: arm.B, Label: end})
			p.Mark(els)
			genBody(src, cfg, p, 1+src.intn(3))
			p.Mark(end)
		case 2: // cbz/cbnz-style compare-and-branch skipping a body
			skip := fresh("skip")
			cond := arm.EQ
			if src.intn(2) == 0 {
				cond = arm.NE
			}
			p.Add(
				arm.Instr{Op: arm.CMPI, Rn: genReg(src, cfg), Imm: 0},
				arm.Instr{Op: arm.BCC, Cond: cond, Label: skip})
			genBody(src, cfg, p, 1+src.intn(3))
			p.Mark(skip)
		default: // forward jump over dead code (exercises block splitting)
			over := fresh("over")
			p.Add(arm.Instr{Op: arm.B, Label: over})
			genBody(src, cfg, p, 1+src.intn(2))
			p.Mark(over)
		}
	}
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

// genState builds a random initial architectural state: register values
// biased toward the memory window (so addresses alias), small immediates and
// full-range words, plus a populated memory window.
func genState(src intSource, cfg GenConfig) (map[string]uint64, *expr.MemModel) {
	if cfg.Regs <= 0 {
		cfg = DefaultGen()
	}
	regs := make(map[string]uint64, cfg.Regs)
	for i := 0; i < cfg.Regs; i++ {
		name := lifter.RegName(arm.X(i))
		switch src.intn(3) {
		case 0:
			regs[name] = uint64(src.intn(1 << 12))
		case 1:
			regs[name] = src.word()
		default:
			regs[name] = cfg.MemBase + uint64(src.intn(cfg.MemWords*2))*8
		}
	}
	mem := expr.NewMemModel(0)
	for i := 0; i < cfg.MemWords; i++ {
		mem.Set(cfg.MemBase+uint64(i)*8, src.word())
	}
	return regs, mem
}

// RandomProgram draws a structured program from a seeded RNG.
func RandomProgram(r *rand.Rand, cfg GenConfig) *arm.Program {
	return genProgram(randSource{r}, cfg)
}

// RandomState draws an initial state from a seeded RNG.
func RandomState(r *rand.Rand, cfg GenConfig) (map[string]uint64, *expr.MemModel) {
	return genState(randSource{r}, cfg)
}
