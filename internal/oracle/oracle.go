// Package oracle is the standing correctness harness of the solver stack:
// independent reference semantics and differential checks for every layer
// of the hand-rolled trusted computing base, plus automatic counterexample
// shrinking.
//
// The pipeline's verdicts are only as trustworthy as its solvers — a silent
// bug in the CDCL core, the bit-blaster, the Ackermann memory elimination,
// the ARM→BIR lifter or the symbolic executor corrupts validation results
// rather than crashing. Each layer therefore gets a second, independent
// semantics to disagree with:
//
//   - internal/sat is cross-checked against a brute-force oracle that
//     exhaustively enumerates assignments of small CNFs (BruteSolve,
//     DiffSAT), including under assumptions;
//   - internal/smt models are validated by concretely evaluating the
//     original (pre-elimination, pre-blasting) formulas under the returned
//     assignment (CheckSMTModel) — a model-soundness check that sees
//     through both read elimination and bit-blasting;
//   - internal/bitblast is cross-checked against direct 64-bit evaluation
//     (expr.Assignment.EvalBV) on pinned inputs (EvalVsBlast, DiffBlast);
//   - internal/lifter + internal/symexec are differentially executed
//     against the internal/micro simulator over the full A64 subset —
//     loads/stores, unconditional and conditional branches, compare-and-
//     branch patterns — comparing final register and memory state
//     (DiffProgram).
//
// A structured generator (RandomProgram / RandomState) drives the program
// differential from either a seeded RNG or a fuzzer-mutated byte stream:
// the same generator is reused by the native `go test -fuzz` targets in
// this package, so corpus mutation explores exactly the space of valid
// DAG-shaped programs. When any differential check fails, delta-debugging
// shrinkers (ShrinkProgram, ShrinkCNF) minimize the failing input to a
// small repro before it is reported.
//
// See DESIGN.md §8 and `make fuzz-smoke`.
package oracle
