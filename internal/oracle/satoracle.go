package oracle

import (
	"fmt"

	"scamv/internal/sat"
)

// BruteMaxVars bounds the exhaustive SAT oracle: 2^20 assignments is the
// largest search the harness is willing to enumerate per query.
const BruteMaxVars = 20

// LitSatisfied reports whether the literal is true under the model.
func LitSatisfied(l sat.Lit, model []bool) bool {
	return model[l.Var()] != l.Sign()
}

// CNFSatisfied reports whether every clause has a true literal under model.
func CNFSatisfied(clauses [][]sat.Lit, model []bool) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if LitSatisfied(l, model) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// BruteSolve decides the CNF by exhaustive assignment enumeration — the
// reference semantics for internal/sat. Assignments are enumerated in
// increasing binary order with variable 0 as the least-significant bit, so
// the returned model of a satisfiable formula is the numerically minimal
// one: the ideal against which the CDCL solver's zero-default-phase
// "minimal model" heuristic is judged. Assumption literals must also hold
// in the model. nVars must be at most BruteMaxVars.
func BruteSolve(nVars int, clauses [][]sat.Lit, assumptions ...sat.Lit) (sat.Status, []bool) {
	if nVars > BruteMaxVars {
		panic(fmt.Sprintf("oracle: BruteSolve on %d vars (max %d)", nVars, BruteMaxVars))
	}
	model := make([]bool, nVars)
	for bits := uint64(0); bits < 1<<uint(nVars); bits++ {
		for v := 0; v < nVars; v++ {
			model[v] = bits>>uint(v)&1 == 1
		}
		ok := true
		for _, a := range assumptions {
			if !LitSatisfied(a, model) {
				ok = false
				break
			}
		}
		if ok && CNFSatisfied(clauses, model) {
			return sat.Sat, model
		}
	}
	return sat.Unsat, nil
}

// SolveFunc is the interface DiffSAT checks: given a CNF and assumptions it
// returns a status and, when Sat, a model covering every variable.
type SolveFunc func(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit) (sat.Status, []bool)

// CDCLSolve adapts a fresh internal/sat solver to a SolveFunc.
func CDCLSolve(seed int64) SolveFunc {
	return func(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit) (sat.Status, []bool) {
		s := sat.New(seed)
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			if !s.AddClause(c...) {
				break // trivially unsat; Solve will confirm
			}
		}
		st := s.Solve(assumptions...)
		if st != sat.Sat {
			return st, nil
		}
		return st, s.Model()
	}
}

// DiffSAT cross-checks a solver against the brute-force oracle on one CNF:
// the statuses must agree, and a Sat answer must come with a genuine model
// that satisfies every clause and every assumption. Unknown from the solver
// (a bounded search giving up) is tolerated — incompleteness is not
// unsoundness. The returned error, when non-nil, describes the first
// disagreement.
func DiffSAT(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit, solve SolveFunc) error {
	want, _ := BruteSolve(nVars, clauses, assumptions...)
	got, model := solve(nVars, clauses, assumptions)
	if got == sat.Unknown {
		return nil
	}
	if got != want {
		return fmt.Errorf("oracle: solver says %v, brute force says %v on %d vars %d clauses", got, want, nVars, len(clauses))
	}
	if got != sat.Sat {
		return nil
	}
	if len(model) < nVars {
		return fmt.Errorf("oracle: sat model covers %d of %d vars", len(model), nVars)
	}
	for _, a := range assumptions {
		if !LitSatisfied(a, model) {
			return fmt.Errorf("oracle: sat model violates assumption of var %d", a.Var())
		}
	}
	if !CNFSatisfied(clauses, model) {
		return fmt.Errorf("oracle: sat model falsifies a clause")
	}
	return nil
}
