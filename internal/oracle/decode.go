package oracle

import (
	"fmt"
	"math/rand"
	"sort"

	"scamv/internal/arm"
	"scamv/internal/expr"
	"scamv/internal/sat"
)

// byteReader drives the structured generators from a fuzzer-mutated byte
// stream. An exhausted reader yields zeros, so every byte slice decodes to
// some valid structure and corpus mutation never produces a parse error —
// the fuzzer explores the space of CNFs, expressions and programs, not the
// space of framing bugs.
type byteReader struct {
	data []byte
	pos  int
}

func (b *byteReader) byte() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	c := b.data[b.pos]
	b.pos++
	return c
}

func (b *byteReader) intn(n int) int { return int(b.byte()) % n }

func (b *byteReader) word() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b.byte())
	}
	return v
}

// DecodeCNF decodes a small CNF plus assumption literals from fuzz data:
// 3..12 variables, up to 24 clauses of 1..4 literals, up to 3 assumptions.
// The shapes stay within BruteSolve range by construction.
func DecodeCNF(data []byte) (nVars int, clauses [][]sat.Lit, assumptions []sat.Lit) {
	br := &byteReader{data: data}
	nVars = 3 + br.intn(10)
	nClauses := 1 + br.intn(24)
	for i := 0; i < nClauses; i++ {
		width := 1 + br.intn(4)
		clause := make([]sat.Lit, width)
		for j := range clause {
			clause[j] = sat.MkLit(br.intn(nVars), br.intn(2) == 1)
		}
		clauses = append(clauses, clause)
	}
	for i, n := 0, br.intn(4); i < n; i++ {
		assumptions = append(assumptions, sat.MkLit(br.intn(nVars), br.intn(2) == 1))
	}
	return nVars, clauses, assumptions
}

// exprVars are the base names of generated input variables. Names are
// width-qualified ("a8", "b64", ...) because the blaster pins one width per
// name, while one generated expression mixes widths through extracts and
// extensions.
var exprVars = [...]string{"a", "b", "c"}

func genVar(src intSource, w uint) *expr.Var {
	return expr.NewVar(fmt.Sprintf("%s%d", exprVars[src.intn(len(exprVars))], w), w)
}

// genBVExpr generates a random bitvector expression of the given width over
// exprVars, at most depth operators deep. All of the blaster's bitvector
// node types are reachable: binary and unary operators, extracts,
// extensions and ite over comparisons.
func genBVExpr(src intSource, w uint, depth int) expr.BVExpr {
	if depth <= 0 || src.intn(5) == 0 {
		if src.intn(4) == 0 {
			return expr.NewConst(src.word(), w)
		}
		return genVar(src, w)
	}
	switch src.intn(13) {
	case 0:
		return expr.Add(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 1:
		return expr.Sub(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 2:
		return expr.Mul(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 3:
		return expr.And(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 4:
		return expr.Or(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 5:
		return expr.Xor(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 6:
		return expr.Shl(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 7:
		return expr.Lshr(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 8:
		return expr.Ashr(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 9:
		if src.intn(2) == 0 {
			return expr.Not(genBVExpr(src, w, depth-1))
		}
		return expr.Neg(genBVExpr(src, w, depth-1))
	case 10:
		// Extract a w-bit slice out of a wider value.
		if w < 64 {
			wide := w + uint(src.intn(int(64-w)+1))
			lo := uint(src.intn(int(wide-w) + 1))
			return expr.NewExtract(lo+w-1, lo, genBVExpr(src, wide, depth-1))
		}
		return genBVExpr(src, w, depth-1)
	case 11:
		// Extend a narrower value up to w.
		if w > 1 {
			narrow := 1 + uint(src.intn(int(w)))
			kind := expr.ZeroExt
			if src.intn(2) == 0 {
				kind = expr.SignExt
			}
			return expr.NewExt(kind, genBVExpr(src, narrow, depth-1), w)
		}
		return genBVExpr(src, w, depth-1)
	default:
		return expr.NewIte(genBoolExpr(src, w, depth-1),
			genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	}
}

// genBoolExpr generates a random boolean expression whose bitvector leaves
// have the given width.
func genBoolExpr(src intSource, w uint, depth int) expr.BoolExpr {
	if depth <= 0 {
		return expr.Eq(genBVExpr(src, w, 0), genBVExpr(src, w, 0))
	}
	switch src.intn(8) {
	case 0:
		return expr.Eq(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 1:
		return expr.Ult(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 2:
		return expr.Ule(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 3:
		return expr.Slt(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 4:
		return expr.Sle(genBVExpr(src, w, depth-1), genBVExpr(src, w, depth-1))
	case 5:
		return expr.NotB(genBoolExpr(src, w, depth-1))
	case 6:
		return expr.AndB(genBoolExpr(src, w, depth-1), genBoolExpr(src, w, depth-1))
	default:
		return expr.OrB(genBoolExpr(src, w, depth-1), genBoolExpr(src, w, depth-1))
	}
}

var exprWidths = [...]uint{1, 7, 8, 16, 32, 64}

// DecodeExprCheck decodes a bitvector expression, a boolean expression and
// a concrete assignment for every input variable from fuzz data.
func DecodeExprCheck(data []byte) (expr.BVExpr, expr.BoolExpr, *expr.Assignment) {
	br := &byteReader{data: data}
	w := exprWidths[br.intn(len(exprWidths))]
	bv := genBVExpr(br, w, 1+br.intn(4))
	bo := genBoolExpr(br, w, 1+br.intn(3))
	vars := make(map[string]uint)
	varWidths(bv, vars)
	varWidths(bo, vars)
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	a := expr.NewAssignment()
	for _, name := range names {
		a.BV[name] = br.word()
	}
	return bv, bo, a
}

// DecodeSMTCheck decodes a set of bitvector assertions over three 64-bit
// variables and one memory, with read-over-write chains and repeated reads at
// symbolic addresses — the shapes that exercise the solver's Ackermann read
// elimination. Multiplication is deliberately absent: a 64-bit blasted
// multiplier dominates per-exec time without adding memory-theory coverage
// (the bitblast fuzz target covers Mul at narrow widths instead).
func DecodeSMTCheck(data []byte) []expr.BoolExpr {
	br := &byteReader{data: data}
	var mem expr.MemExpr = expr.NewMemVar("MEM")
	vars := [...]expr.BVExpr{expr.V64("x"), expr.V64("y"), expr.V64("z")}
	var bv func(depth int) expr.BVExpr
	bv = func(depth int) expr.BVExpr {
		if depth <= 0 || br.intn(4) == 0 {
			if br.intn(3) == 0 {
				return expr.C64(uint64(br.intn(1 << 8)))
			}
			return vars[br.intn(len(vars))]
		}
		switch br.intn(6) {
		case 0:
			return expr.Add(bv(depth-1), bv(depth-1))
		case 1:
			return expr.Sub(bv(depth-1), bv(depth-1))
		case 2:
			return expr.And(bv(depth-1), bv(depth-1))
		case 3:
			return expr.Or(bv(depth-1), bv(depth-1))
		case 4:
			return expr.Xor(bv(depth-1), bv(depth-1))
		default:
			return expr.NewRead(mem, bv(depth-1))
		}
	}
	for i, n := 0, br.intn(3); i < n; i++ {
		mem = expr.NewStore(mem, bv(1), bv(1))
	}
	fs := make([]expr.BoolExpr, 0, 4)
	for i, n := 0, 1+br.intn(4); i < n; i++ {
		l, r := bv(2), bv(2)
		switch br.intn(3) {
		case 0:
			fs = append(fs, expr.Eq(l, r))
		case 1:
			fs = append(fs, expr.Ult(l, r))
		default:
			fs = append(fs, expr.Ule(l, r))
		}
	}
	return fs
}

// DecodeProgram decodes a structured program plus an initial architectural
// state from fuzz data, using the same generator as RandomProgram.
func DecodeProgram(data []byte) (*arm.Program, map[string]uint64, *expr.MemModel) {
	br := &byteReader{data: data}
	cfg := DefaultGen()
	p := genProgram(br, cfg)
	regs, mem := genState(br, cfg)
	return p, regs, mem
}

// RandomCNF draws a brute-forceable CNF from a seeded RNG (the rand-driven
// twin of DecodeCNF, for deterministic sweeps in tests).
func RandomCNF(r *rand.Rand, maxVars, maxClauses int) (nVars int, clauses [][]sat.Lit) {
	if maxVars > BruteMaxVars {
		maxVars = BruteMaxVars
	}
	nVars = 3 + r.Intn(maxVars-2)
	nClauses := 1 + r.Intn(maxClauses)
	for i := 0; i < nClauses; i++ {
		width := 1 + r.Intn(4)
		clause := make([]sat.Lit, width)
		for j := range clause {
			clause[j] = sat.MkLit(r.Intn(nVars), r.Intn(2) == 1)
		}
		clauses = append(clauses, clause)
	}
	return nVars, clauses
}
