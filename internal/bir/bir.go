// Package bir defines the binary intermediate representation used by the
// validation pipeline, mirroring the role of HolBA's BIR in Scam-V: binary
// programs are lifted into bir (internal/lifter), observational models
// insert tagged Observe statements (internal/obs, internal/spec), and the
// symbolic execution engine (internal/symexec) runs over the result.
//
// A program is a list of labelled blocks; statements assign pure expressions
// to registers, load and store through a single memory, or record tagged
// observations; terminators jump, branch conditionally, or halt.
package bir

import (
	"fmt"
	"strings"

	"scamv/internal/expr"
)

// MemName is the canonical name of the program memory variable.
const MemName = "MEM"

// ObsTag classifies an observation with respect to the pair of models
// (M1 under validation, M2 refined) of the observation-refinement algorithm.
// After the single instrumentation pass, the projection π of the paper's
// §5.1 is simply tag filtering.
type ObsTag uint8

const (
	// TagBase marks observations of the model under validation M1 (hence
	// also of the refined model M2, which is more restrictive).
	TagBase ObsTag = iota
	// TagRefined marks observations exclusive to the refined model M2.
	TagRefined
)

func (t ObsTag) String() string {
	if t == TagBase {
		return "base"
	}
	return "refined"
}

// Stmt is a BIR statement.
type Stmt interface {
	stmt()
	String() string
}

// Assign sets register Dst to the pure expression Rhs (no memory reads;
// loads are explicit Load statements).
type Assign struct {
	Dst string
	Rhs expr.BVExpr
}

func (*Assign) stmt()            {}
func (a *Assign) String() string { return fmt.Sprintf("%s := %s", a.Dst, a.Rhs) }

// Load sets register Dst to the memory word at Addr.
type Load struct {
	Dst  string
	Addr expr.BVExpr
}

func (*Load) stmt()            {}
func (l *Load) String() string { return fmt.Sprintf("%s := %s[%s]", l.Dst, MemName, l.Addr) }

// Store writes Val to memory at Addr.
type Store struct {
	Addr, Val expr.BVExpr
}

func (*Store) stmt()            {}
func (s *Store) String() string { return fmt.Sprintf("%s[%s] := %s", MemName, s.Addr, s.Val) }

// Observe records an observation: when Cond holds, the values of Vals are
// visible to the side channel. Kind is a free-form label ("load", "branch",
// "pc") used for diagnostics and support-model constraints.
type Observe struct {
	Tag  ObsTag
	Kind string
	Cond expr.BoolExpr
	Vals []expr.BVExpr
}

func (*Observe) stmt() {}
func (o *Observe) String() string {
	vals := make([]string, len(o.Vals))
	for i, v := range o.Vals {
		vals[i] = v.String()
	}
	return fmt.Sprintf("observe<%s,%s> %s when %s", o.Tag, o.Kind, strings.Join(vals, ", "), o.Cond)
}

// Term is a block terminator.
type Term interface {
	term()
	String() string
}

// Jmp is an unconditional jump.
type Jmp struct{ Target string }

func (*Jmp) term()            {}
func (j *Jmp) String() string { return "jmp " + j.Target }

// CondJmp branches to True when Cond holds, else to False.
type CondJmp struct {
	Cond        expr.BoolExpr
	True, False string
}

func (*CondJmp) term() {}
func (c *CondJmp) String() string {
	return fmt.Sprintf("cjmp %s ? %s : %s", c.Cond, c.True, c.False)
}

// Halt ends execution.
type Halt struct{}

func (*Halt) term()          {}
func (*Halt) String() string { return "halt" }

// Block is a labelled sequence of statements with a terminator.
type Block struct {
	Label string
	Stmts []Stmt
	Term  Term
}

// Program is a BIR program.
type Program struct {
	Name   string
	Entry  string
	Blocks []*Block

	byLabel map[string]*Block
}

// New builds a program from blocks; the first block is the entry.
func New(name string, blocks ...*Block) *Program {
	p := &Program{Name: name, Blocks: blocks}
	if len(blocks) > 0 {
		p.Entry = blocks[0].Label
	}
	p.index()
	return p
}

func (p *Program) index() {
	p.byLabel = make(map[string]*Block, len(p.Blocks))
	for _, b := range p.Blocks {
		p.byLabel[b.Label] = b
	}
}

// Block returns the block with the given label, or nil.
func (p *Program) Block(label string) *Block {
	if p.byLabel == nil || len(p.byLabel) != len(p.Blocks) {
		p.index()
	}
	return p.byLabel[label]
}

// Validate checks structural well-formedness: unique labels, resolvable
// jump targets, an existing entry, and terminators on every block.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for _, b := range p.Blocks {
		if b.Label == "" {
			return fmt.Errorf("bir: %s: block with empty label", p.Name)
		}
		if seen[b.Label] {
			return fmt.Errorf("bir: %s: duplicate label %q", p.Name, b.Label)
		}
		seen[b.Label] = true
		if b.Term == nil {
			return fmt.Errorf("bir: %s: block %q has no terminator", p.Name, b.Label)
		}
	}
	if !seen[p.Entry] {
		return fmt.Errorf("bir: %s: entry %q not found", p.Name, p.Entry)
	}
	for _, b := range p.Blocks {
		for _, t := range p.Successors(b) {
			if !seen[t] {
				return fmt.Errorf("bir: %s: block %q jumps to unknown label %q", p.Name, b.Label, t)
			}
		}
	}
	return nil
}

// Successors returns the labels a block can transfer control to.
func (p *Program) Successors(b *Block) []string {
	switch t := b.Term.(type) {
	case *Jmp:
		return []string{t.Target}
	case *CondJmp:
		return []string{t.True, t.False}
	case *Halt:
		return nil
	}
	panic(fmt.Sprintf("bir: unknown terminator %T", b.Term))
}

// IsAcyclic reports whether the control-flow graph has no cycles. Symbolic
// execution requires acyclic programs (all generated templates are).
func (p *Program) IsAcyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(label string) bool
	visit = func(label string) bool {
		switch color[label] {
		case grey:
			return false
		case black:
			return true
		}
		color[label] = grey
		b := p.Block(label)
		if b != nil {
			for _, s := range p.Successors(b) {
				if !visit(s) {
					return false
				}
			}
		}
		color[label] = black
		return true
	}
	return visit(p.Entry)
}

// Clone returns a deep copy of the program structure (expressions are
// immutable and shared).
func (p *Program) Clone() *Program {
	blocks := make([]*Block, len(p.Blocks))
	for i, b := range p.Blocks {
		nb := &Block{Label: b.Label, Term: b.Term}
		nb.Stmts = make([]Stmt, len(b.Stmts))
		copy(nb.Stmts, b.Stmts)
		blocks[i] = nb
	}
	np := &Program{Name: p.Name, Entry: p.Entry, Blocks: blocks}
	np.index()
	return np
}

// String renders the program as text.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s (entry %s)\n", p.Name, p.Entry)
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for _, s := range b.Stmts {
			fmt.Fprintf(&sb, "  %s\n", s)
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	return sb.String()
}

// Registers returns the set of register names mentioned by the program
// (assignment targets, load destinations and expression operands), excluding
// the memory.
func (p *Program) Registers() map[string]bool {
	regs := make(map[string]bool)
	add := func(e expr.Expr) {
		if e == nil {
			return
		}
		expr.Vars(e, regs, nil, nil)
	}
	for _, b := range p.Blocks {
		for _, s := range b.Stmts {
			switch v := s.(type) {
			case *Assign:
				regs[v.Dst] = true
				add(v.Rhs)
			case *Load:
				regs[v.Dst] = true
				add(v.Addr)
			case *Store:
				add(v.Addr)
				add(v.Val)
			case *Observe:
				add(v.Cond)
				for _, val := range v.Vals {
					add(val)
				}
			}
		}
		if c, ok := b.Term.(*CondJmp); ok {
			add(c.Cond)
		}
	}
	return regs
}
