package bir

import (
	"strings"
	"testing"

	"scamv/internal/expr"
)

func sample() *Program {
	return New("t",
		&Block{
			Label: "entry",
			Stmts: []Stmt{
				&Assign{Dst: "x1", Rhs: expr.Add(expr.V64("x0"), expr.C64(1))},
			},
			Term: &CondJmp{Cond: expr.Ult(expr.V64("x0"), expr.V64("x2")), True: "then", False: "end"},
		},
		&Block{
			Label: "then",
			Stmts: []Stmt{
				&Load{Dst: "x3", Addr: expr.V64("x1")},
				&Observe{Tag: TagBase, Kind: "load", Cond: expr.True, Vals: []expr.BVExpr{expr.V64("x1")}},
			},
			Term: &Jmp{Target: "end"},
		},
		&Block{Label: "end", Term: &Halt{}},
	)
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	p := sample()
	p.Blocks[1].Term = &Jmp{Target: "nowhere"}
	if err := p.Validate(); err == nil {
		t.Error("expected unknown-label error")
	}
	p2 := sample()
	p2.Blocks = append(p2.Blocks, &Block{Label: "entry", Term: &Halt{}})
	if err := p2.Validate(); err == nil {
		t.Error("expected duplicate-label error")
	}
	p3 := sample()
	p3.Entry = "missing"
	if err := p3.Validate(); err == nil {
		t.Error("expected missing-entry error")
	}
	p4 := sample()
	p4.Blocks[0].Term = nil
	if err := p4.Validate(); err == nil {
		t.Error("expected missing-terminator error")
	}
}

func TestSuccessorsAndAcyclicity(t *testing.T) {
	p := sample()
	succ := p.Successors(p.Block("entry"))
	if len(succ) != 2 || succ[0] != "then" || succ[1] != "end" {
		t.Errorf("successors: %v", succ)
	}
	if !p.IsAcyclic() {
		t.Error("sample is acyclic")
	}
	p.Block("end").Term = &Jmp{Target: "entry"}
	if p.IsAcyclic() {
		t.Error("cycle not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sample()
	q := p.Clone()
	q.Block("then").Stmts = append(q.Block("then").Stmts, &Assign{Dst: "x9", Rhs: expr.C64(0)})
	if len(p.Block("then").Stmts) == len(q.Block("then").Stmts) {
		t.Error("clone shares statement slices")
	}
}

func TestRegisters(t *testing.T) {
	regs := sample().Registers()
	for _, r := range []string{"x0", "x1", "x2", "x3"} {
		if !regs[r] {
			t.Errorf("missing register %s in %v", r, regs)
		}
	}
	if regs[MemName] {
		t.Error("memory must not be listed as a register")
	}
}

func TestString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"entry:", "then:", "observe<base,load>", "cjmp", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}
