package core

import (
	"context"
	"testing"

	"scamv/internal/gen"
	"scamv/internal/obs"
)

// A cancelled Config.Ctx stops test generation: Next returns false instead of
// launching another solver query, and an in-flight solve gives up with
// Unknown, which Next also reports as exhaustion.
func TestGeneratorHonorsCancelledContext(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})

	ctx, cancel := context.WithCancel(context.Background())
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs, Ctx: ctx})
	if _, ok := g.Next(); !ok {
		t.Fatal("generator produced nothing before cancellation")
	}
	cancel()
	if tc, ok := g.Next(); ok {
		t.Fatalf("Next after cancellation returned a test case: %+v", tc)
	}
}

// A background (non-cancellable) context must not change generation at all:
// the same seed yields the same test cases with and without Ctx set.
func TestGeneratorBackgroundContextIsTransparent(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})

	plain := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs})
	wrapped := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs, Ctx: context.Background()})
	for i := 0; i < 5; i++ {
		a, okA := plain.Next()
		b, okB := wrapped.Next()
		if okA != okB {
			t.Fatalf("step %d: exhaustion diverged (%v vs %v)", i, okA, okB)
		}
		if !okA {
			break
		}
		if a.PathA != b.PathA || a.PathB != b.PathB {
			t.Fatalf("step %d: path pair diverged: (%d,%d) vs (%d,%d)",
				i, a.PathA, a.PathB, b.PathA, b.PathB)
		}
		for r, v := range a.S1.Regs {
			if b.S1.Regs[r] != v {
				t.Fatalf("step %d: S1[%s] diverged: %x vs %x", i, r, v, b.S1.Regs[r])
			}
		}
	}
}
