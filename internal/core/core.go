// Package core implements the paper's primary contribution: synthesis of
// observational-equivalence relations from symbolic execution results
// (Eq. 1, §2.3) and observation-refinement-guided test-case generation
// (§3, §5.2).
//
// A test case for a program P is a pair of initial states (s1, s2) with
// s1 ∼M1 s2 (equal M1 observations) and, when refinement is active,
// s1 ≁M2 s2 (different M2-only observations). Following the optimization of
// §5.4, the relation is split into one formula per pair of execution paths,
// explored round-robin; supporting models (obs.Support) contribute
// per-class coverage constraints.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scamv/internal/expr"
	"scamv/internal/obs"
	"scamv/internal/sat"
	"scamv/internal/smt"
	"scamv/internal/symexec"
	"scamv/internal/telemetry"
)

// State is a concrete initial machine state for one side of a test case.
type State struct {
	Regs map[string]uint64
	Mem  *expr.MemModel
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	regs := make(map[string]uint64, len(s.Regs))
	for k, v := range s.Regs {
		regs[k] = v
	}
	return &State{Regs: regs, Mem: s.Mem.Clone()}
}

// TestCase is a generated pair of observationally equivalent states.
type TestCase struct {
	S1, S2 *State
	// PathA and PathB index the symbolic paths taken by S1 and S2.
	PathA, PathB int
	// Class is the support-model coverage class the pair was drawn from.
	Class int
}

// Config configures a Generator.
type Config struct {
	// Seed drives solver randomization; generation is deterministic per seed.
	Seed int64
	// RandomPhaseProb diversifies solver models (see internal/smt).
	RandomPhaseProb float64
	// Refined enables the s1 ≁M2 s2 constraint. Without it the generator
	// is the unguided baseline of the paper's evaluation.
	Refined bool
	// Support is the coverage support model; nil means M_pc only (path-pair
	// round-robin, which is always active).
	Support obs.Support
	// MaxConflicts bounds each solver query; 0 means unbounded.
	MaxConflicts int64
	// Registers lists the program's register names; extracted states carry
	// concrete values for each. Ghost and shadow registers are excluded by
	// the caller.
	Registers []string
	// Legacy restores the pre-incremental behavior: one fresh solver per
	// (path pair, class, slot) stream, re-eliminating memory and re-blasting
	// the pair relation for every coverage class. The default (false) shares
	// one solver per (path pair, slot): the relation and register-diff are
	// asserted once and each class constraint is an activation-literal scope
	// on top. Kept for A/B benchmarking of the shared-prefix reuse.
	Legacy bool

	// Portfolio, when >= 1, backs every solver with a portfolio of that many
	// diversified CDCL workers racing each query. Worker 0 is canonical, so
	// results are byte-identical to Portfolio = 0 at any size (see
	// sat.Portfolio). 0 keeps the classic single-solver backend.
	Portfolio int

	// ShapeCache, when non-nil, is the campaign-scoped prototype cache:
	// pair-relation solvers for alpha-equivalent formula shapes (programs of
	// one template differing only in register allocation) are cloned from one
	// shared encoding instead of re-blasted per program. Ignored in Legacy
	// mode. Safe to share across concurrent generators.
	ShapeCache *smt.ShapeCache

	// Trace, when non-nil, receives one telemetry query event per solver
	// query, carrying the effort deltas (SAT conflicts/decisions/
	// propagations, blast-cache hits/misses, Ackermann expansions) that
	// query cost. Prog tags the events with the program index. A nil Trace
	// costs one pointer check per query.
	Trace *telemetry.Tracer
	Prog  int

	// Ctx, when non-nil and cancellable, is installed on every solver the
	// generator builds and polled between queries: campaign cancellation
	// aborts an in-flight SAT search (Unknown) instead of blocking behind a
	// pathological query. Nil means context.Background.
	Ctx context.Context
}

// suffixes for the two states of Eq. 1.
const (
	sfx1 = "_1"
	sfx2 = "_2"
)

// renameObs instantiates a path's observations for one side of the relation.
func renameObs(in []symexec.Obs, sfx string) []symexec.Obs {
	out := make([]symexec.Obs, len(in))
	f := expr.Suffix(sfx)
	for i, o := range in {
		vals := make([]expr.BVExpr, len(o.Vals))
		for j, v := range o.Vals {
			vals[j] = expr.RenameBV(v, f)
		}
		out[i] = symexec.Obs{Tag: o.Tag, Kind: o.Kind, Cond: expr.RenameBool(o.Cond, f), Vals: vals}
	}
	return out
}

// slotEq is the equality of one observation slot across the two states:
// either both observations are absent, or both are present with equal
// values. Slots with mismatching arity or widths can only be equal by
// being both absent.
func slotEq(a, b symexec.Obs) expr.BoolExpr {
	valsEq := expr.BoolExpr(expr.True)
	if len(a.Vals) != len(b.Vals) {
		valsEq = expr.False
	} else {
		var conj []expr.BoolExpr
		for i := range a.Vals {
			if a.Vals[i].Width() != b.Vals[i].Width() {
				valsEq = expr.False
				break
			}
			conj = append(conj, expr.Eq(a.Vals[i], b.Vals[i]))
		}
		if valsEq == expr.True {
			valsEq = expr.AndB(conj...)
		}
	}
	bothPresent := expr.AndB(a.Cond, b.Cond, valsEq)
	bothAbsent := expr.AndB(expr.NotB(a.Cond), expr.NotB(b.Cond))
	return expr.OrB(bothPresent, bothAbsent)
}

// ObsListEq is the observation-list equality lσa(s1) = lσb(s2) of Eq. 1,
// with slots aligned positionally. Lists of different slot counts are
// unequal (a conservative instantiation for cross-path pairs; see DESIGN.md).
func ObsListEq(a, b []symexec.Obs) expr.BoolExpr {
	if len(a) != len(b) {
		return expr.False
	}
	conj := make([]expr.BoolExpr, len(a))
	for i := range a {
		conj[i] = slotEq(a[i], b[i])
	}
	return expr.AndB(conj...)
}

// PairRelation builds the full relation formula for one path pair:
// pa(s1) ∧ pb(s2) ∧ EqObs_M1 — and, when refined, ∧ ¬EqObs_{M2\M1}.
// It is exported for tests and for the ablation benchmarks comparing
// path-pair splitting against the monolithic Eq. 1 relation.
func PairRelation(pa, pb *symexec.Path, refined bool) expr.BoolExpr {
	return PairRelationSlot(pa, pb, refined, -1)
}

// PairRelationSlot is PairRelation with refinement-slot coverage: when
// slot >= 0, instead of the generic disjunction "some refined observation
// differs", the formula pins down WHICH refined observation slot must
// differ. Enumerating slots round-robin ensures every transient access is
// exercised as the distinguishing one — without it, the solver is free to
// always satisfy the disjunction through the same (possibly hardware-
// invisible) observation, e.g. the causally dependent second load of
// Template C that the core never issues.
func PairRelationSlot(pa, pb *symexec.Path, refined bool, slot int) expr.BoolExpr {
	f1, f2 := expr.Suffix(sfx1), expr.Suffix(sfx2)
	conds := []expr.BoolExpr{
		expr.RenameBool(pa.Cond, f1),
		expr.RenameBool(pb.Cond, f2),
		ObsListEq(renameObs(pa.BaseObs(), sfx1), renameObs(pb.BaseObs(), sfx2)),
	}
	if refined {
		ra := renameObs(pa.RefinedObs(), sfx1)
		rb := renameObs(pb.RefinedObs(), sfx2)
		if slot >= 0 && slot < len(ra) && len(ra) == len(rb) {
			conds = append(conds, expr.NotB(slotEq(ra[slot], rb[slot])))
		} else {
			conds = append(conds, expr.NotB(ObsListEq(ra, rb)))
		}
	}
	return expr.AndB(conds...)
}

// MonolithicRelation is the unsplit Eq. 1 relation over all path pairs,
// kept for the ablation benchmark of the §5.4 optimization: a single formula
// asserting that whatever paths s1 and s2 take, their M1 observations agree
// (and, refined, that some M2 observation differs on the pair's own paths).
func MonolithicRelation(paths []*symexec.Path, refined bool) expr.BoolExpr {
	f1, f2 := expr.Suffix(sfx1), expr.Suffix(sfx2)
	var conj []expr.BoolExpr
	var anyDiff []expr.BoolExpr
	for _, pa := range paths {
		for _, pb := range paths {
			guard := expr.AndB(expr.RenameBool(pa.Cond, f1), expr.RenameBool(pb.Cond, f2))
			eq := ObsListEq(renameObs(pa.BaseObs(), sfx1), renameObs(pb.BaseObs(), sfx2))
			conj = append(conj, expr.Implies(guard, eq))
			if refined {
				diff := expr.NotB(ObsListEq(
					renameObs(pa.RefinedObs(), sfx1),
					renameObs(pb.RefinedObs(), sfx2)))
				anyDiff = append(anyDiff, expr.AndB(guard, diff))
			}
		}
	}
	if refined {
		conj = append(conj, expr.OrB(anyDiff...))
	}
	return expr.AndB(conj...)
}

// genKey identifies one (path pair, coverage class, refinement slot)
// enumeration stream. slot is -1 for the generic refinement disjunction
// (and for unrefined generation).
type genKey struct {
	a, b  int
	class int
	slot  int
}

// pairKey identifies one shared solver: all coverage classes of a
// (path pair, refinement slot) reuse the same encoded pair relation.
type pairKey struct {
	a, b int
	slot int
}

// pairState is the shared incremental solver for one pairKey. The pair
// relation, register-diff, and their bit-blasted CNF are built once;
// per-class constraints are added lazily as activation-literal scopes.
type pairState struct {
	solver *smt.Solver
	// prefixNames are the relation's variables (registers and memory reads),
	// captured before any class constraint; model blocking covers these plus
	// the class scope's own variables, matching the per-stream solvers of
	// legacy mode.
	prefixNames []string
	handles     map[int]smt.Handle // class -> scoped coverage constraint
}

type stream struct {
	dead bool

	// Incremental mode: a view into the shared pair solver.
	ps     *pairState
	handle smt.Handle // zero Handle when Support == nil
	names  []string   // variables to block (prefix ∪ class scope)
	seed   int64      // per-stream search seed (ResetSearch before each query)
	n      int64      // queries issued, diversifies the search seed

	// Legacy mode: a private solver owning the whole formula.
	solver *smt.Solver
}

// activeSolver returns the solver this stream queries: its private one in
// legacy mode, the shared pair solver otherwise.
func (st *stream) activeSolver() *smt.Solver {
	if st.solver != nil {
		return st.solver
	}
	return st.ps.solver
}

// Generator enumerates test cases for one program, round-robin across path
// pairs and support classes, each stream backed by an incremental solver
// with model blocking.
type Generator struct {
	cfg     Config
	paths   []*symexec.Path
	keys    []genKey
	streams map[genKey]*stream
	pairs   map[pairKey]*pairState
	rr      int

	// Stats
	QueriesSat    int
	QueriesUnsat  int
	QueriesFailed int

	// ShapeKeys records the campaign shape-cache key hash of every lookup
	// this generator performed, in lookup order (pair-state creation is
	// single-threaded per program, so the order is deterministic). The
	// campaign journal persists the list for crash-safe resume accounting;
	// empty when no ShapeCache is configured.
	ShapeKeys []uint64
}

// NewGenerator prepares test-case generation over the symbolic paths of an
// instrumented program.
func NewGenerator(paths []*symexec.Path, cfg Config) *Generator {
	classes := 1
	if cfg.Support != nil && cfg.Support.Classes() > 0 {
		classes = cfg.Support.Classes()
	}
	// Refinement-slot streams: one per refined observation slot when the
	// pair's refined lists align, otherwise the generic disjunction.
	slotsFor := func(a, b int) []int {
		if !cfg.Refined {
			return []int{-1}
		}
		na, nb := len(paths[a].RefinedObs()), len(paths[b].RefinedObs())
		if na != nb || na == 0 {
			return []int{-1}
		}
		out := make([]int, na)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Visit coverage classes in a seeded random permutation: with far more
	// classes than test cases per program (M_line has one class per cache
	// set), a fixed order would make every program exercise the same few
	// classes and systematically miss the rest of the space.
	order := rand.New(rand.NewSource(cfg.Seed)).Perm(classes)
	var keys []genKey
	// Same-path pairs first (they are the satisfiable ones for models that
	// observe branch guards), then cross pairs, for every class.
	for _, c := range order {
		for i := range paths {
			for _, s := range slotsFor(i, i) {
				keys = append(keys, genKey{a: i, b: i, class: c, slot: s})
			}
		}
		for i := range paths {
			for j := range paths {
				if i != j {
					for _, s := range slotsFor(i, j) {
						keys = append(keys, genKey{a: i, b: j, class: c, slot: s})
					}
				}
			}
		}
	}
	return &Generator{cfg: cfg, paths: paths, keys: keys,
		streams: make(map[genKey]*stream), pairs: make(map[pairKey]*pairState)}
}

// streamSeed reproduces the per-stream solver seed of the pre-incremental
// generator; incremental mode feeds it to ResetSearch so every class stream
// searches like a fresh solver over the shared CNF.
func (g *Generator) streamSeed(k genKey) int64 {
	return g.cfg.Seed*1000003 + int64(k.a)*8191 + int64(k.b)*131 + int64(k.class)*7 + int64(k.slot)
}

// prefixFormulas is the class-independent part of a stream's formula: the
// pair relation for the slot, plus the requirement that the two register
// vectors differ somewhere (a test case of two identical states is vacuous).
func (g *Generator) prefixFormulas(a, b, slot int) []expr.BoolExpr {
	pa, pb := g.paths[a], g.paths[b]
	out := []expr.BoolExpr{PairRelationSlot(pa, pb, g.cfg.Refined, slot)}
	var diff []expr.BoolExpr
	for _, r := range g.cfg.Registers {
		diff = append(diff, expr.Neq(
			expr.NewVar(r+sfx1, 64), expr.NewVar(r+sfx2, 64)))
	}
	if len(diff) > 0 {
		out = append(out, expr.OrB(diff...))
	}
	return out
}

// assertPrefix installs the prefix formulas on a fresh solver (legacy path).
func (g *Generator) assertPrefix(s *smt.Solver, a, b, slot int) {
	for _, f := range g.prefixFormulas(a, b, slot) {
		s.Assert(f)
	}
}

// newPairState builds the shared solver for one (path pair, slot), cloning a
// cached prototype when the campaign shape cache is enabled.
func (g *Generator) newPairState(pk pairKey) *pairState {
	seed := g.cfg.Seed*1000003 + int64(pk.a)*8191 + int64(pk.b)*131 + int64(pk.slot)
	opts := smt.Options{
		Seed:            seed,
		RandomPhaseProb: g.cfg.RandomPhaseProb,
		MaxConflicts:    g.cfg.MaxConflicts,
		Portfolio:       g.cfg.Portfolio,
	}
	var s *smt.Solver
	if g.cfg.ShapeCache != nil {
		var hit bool
		var kh uint64
		s, hit, kh = g.cfg.ShapeCache.InstantiateTagged(opts, g.prefixFormulas(pk.a, pk.b, pk.slot))
		g.ShapeKeys = append(g.ShapeKeys, kh)
		g.cfg.Trace.ShapeLookup(g.cfg.Prog, hit)
		if g.cfg.Ctx != nil {
			s.SetContext(g.cfg.Ctx)
		}
	} else {
		s = smt.New(opts)
		if g.cfg.Ctx != nil {
			s.SetContext(g.cfg.Ctx)
		}
		g.assertPrefix(s, pk.a, pk.b, pk.slot)
	}
	return &pairState{solver: s, prefixNames: s.VarNames(), handles: make(map[int]smt.Handle)}
}

func (g *Generator) newStream(k genKey) *stream {
	if g.cfg.Legacy {
		s := smt.New(smt.Options{
			Seed:            g.streamSeed(k),
			RandomPhaseProb: g.cfg.RandomPhaseProb,
			MaxConflicts:    g.cfg.MaxConflicts,
			Portfolio:       g.cfg.Portfolio,
		})
		if g.cfg.Ctx != nil {
			s.SetContext(g.cfg.Ctx)
		}
		g.assertPrefix(s, k.a, k.b, k.slot)
		if g.cfg.Support != nil {
			s.Assert(g.cfg.Support.Constraint(k.class, renameObs(g.paths[k.a].Obs, sfx1)))
		}
		return &stream{solver: s}
	}
	pk := pairKey{a: k.a, b: k.b, slot: k.slot}
	ps := g.pairs[pk]
	if ps == nil {
		ps = g.newPairState(pk)
		g.pairs[pk] = ps
	}
	st := &stream{ps: ps, seed: g.streamSeed(k), names: ps.prefixNames}
	if g.cfg.Support != nil {
		h, ok := ps.handles[k.class]
		if !ok {
			h = ps.solver.AssertScoped(
				g.cfg.Support.Constraint(k.class, renameObs(g.paths[k.a].Obs, sfx1)))
			ps.handles[k.class] = h
		}
		st.handle = h
		st.names = unionSorted(ps.prefixNames, h.Names())
	}
	return st
}

// unionSorted merges two sorted, deduplicated string slices.
func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Next produces the next test case, or ok=false when every stream is
// exhausted.
func (g *Generator) Next() (*TestCase, bool) {
	if g.cfg.Ctx != nil && g.cfg.Ctx.Err() != nil {
		// Cancelled campaign: stop generating rather than burning solver
		// time on results nobody will collect.
		return nil, false
	}
	for tried := 0; tried < len(g.keys); tried++ {
		k := g.keys[g.rr%len(g.keys)]
		g.rr++
		st := g.streams[k]
		if st != nil && st.dead {
			continue
		}
		// Telemetry: snapshot the effort counters before ALL work for this
		// query — including stream creation, whose assertions carry the
		// bit-blasting and Ackermann-expansion cost — so the delta is fully
		// attributable to the query that triggered it. A brand-new solver
		// starts from zero stats, which is exactly its delta; a shared pair
		// solver that pre-exists is snapshotted before the scoped assert.
		// Disabled tracing costs one pointer check (Enabled) and nothing else.
		traced := g.cfg.Trace.Enabled()
		var before smt.Stats
		var t0 time.Time
		if traced {
			t0 = time.Now()
			if st != nil {
				before = st.activeSolver().Stats()
			} else if !g.cfg.Legacy {
				if ps := g.pairs[pairKey{a: k.a, b: k.b, slot: k.slot}]; ps != nil {
					before = ps.solver.Stats()
				}
			}
		}
		if st == nil {
			st = g.newStream(k)
			g.streams[k] = st
		}
		solver := st.solver
		legacy := solver != nil
		if !legacy {
			solver = st.ps.solver
		}
		var status sat.Status
		if legacy { // legacy: private solver per stream
			status = solver.Check()
		} else {
			// Rewind search heuristics so this query behaves like a fresh
			// solver seeded for this stream: preserves the minimal-model
			// (zero-phase, boosted-input) behavior per class even though the
			// CNF and learned clauses are shared across classes.
			solver.ResetSearch(st.seed + st.n*65537)
			st.n++
			status = solver.CheckUnder(st.handle)
		}
		if traced {
			d := solver.Stats().Sub(before)
			g.cfg.Trace.Query(telemetry.QueryEvent{
				Prog: g.cfg.Prog, PathA: k.a, PathB: k.b, Class: k.class, Slot: k.slot,
				Status: statusName(status), Dur: time.Since(t0),
				Conflicts: d.Conflicts, Decisions: d.Decisions, Propagations: d.Propagations,
				BlastHits: d.BlastHits, BlastMisses: d.BlastMisses, AckReads: d.AckermannReads,
				Winner: solver.LastWinner(), SharedClauses: d.SharedClauses,
			})
		}
		switch status {
		case sat.Sat:
			g.QueriesSat++
			m := solver.Model()
			tc := g.extract(m, k)
			// Block this model so the stream yields a different pair next
			// time. Blocking covers every variable of the relation,
			// including the memory read values. Incremental streams scope
			// the blocking clause to their class's activation literal so
			// sibling classes on the shared solver are unaffected.
			var blocked bool
			if st.solver != nil {
				blocked = solver.BlockVars(solver.VarNames())
			} else {
				blocked = solver.BlockVarsUnder(st.handle, st.names)
			}
			if !blocked {
				st.dead = true
			}
			return tc, true
		case sat.Unsat:
			g.QueriesUnsat++
			st.dead = true
		default:
			g.QueriesFailed++
			st.dead = true
		}
	}
	return nil, false
}

// statusName maps a SAT status to its trace-schema string.
func statusName(s sat.Status) string {
	switch s {
	case sat.Sat:
		return "sat"
	case sat.Unsat:
		return "unsat"
	}
	return "unknown"
}

func (g *Generator) extract(m *expr.Assignment, k genKey) *TestCase {
	s1, s2 := ExtractStates(m, g.cfg.Registers)
	return &TestCase{S1: s1, S2: s2, PathA: k.a, PathB: k.b, Class: k.class}
}

// ExtractStates reads the two concrete states (s1, s2) out of a model of a
// relation formula built by PairRelation: register values come from the
// _1/_2-suffixed variables and memory images from the renamed memories.
func ExtractStates(m *expr.Assignment, registers []string) (s1, s2 *State) {
	s1 = &State{Regs: make(map[string]uint64), Mem: expr.NewMemModel(0)}
	s2 = &State{Regs: make(map[string]uint64), Mem: expr.NewMemModel(0)}
	for _, r := range registers {
		s1.Regs[r] = m.BV[r+sfx1]
		s2.Regs[r] = m.BV[r+sfx2]
	}
	if mm := m.Mem["MEM"+sfx1]; mm != nil {
		s1.Mem = mm.Clone()
	}
	if mm := m.Mem["MEM"+sfx2]; mm != nil {
		s2.Mem = mm.Clone()
	}
	return s1, s2
}

// TrainingState solves for a state taking a different execution path than
// testPath (paper §5.3): executing the program from it first trains the
// branch predictor so that the test states are mispredicted. Returns ok =
// false when the program has no alternative feasible path.
func TrainingState(paths []*symexec.Path, testPath int, registers []string, seed int64) (*State, bool) {
	for i, p := range paths {
		if i == testPath {
			continue
		}
		s := smt.New(smt.Options{Seed: seed})
		s.Assert(p.Cond)
		if s.Check() != sat.Sat {
			continue
		}
		m := s.Model()
		st := &State{Regs: make(map[string]uint64), Mem: expr.NewMemModel(0)}
		for _, r := range registers {
			st.Regs[r] = m.BV[r]
		}
		if mm := m.Mem["MEM"]; mm != nil {
			st.Mem = mm.Clone()
		}
		return st, true
	}
	return nil, false
}

// String renders a test case compactly.
func (tc *TestCase) String() string {
	return fmt.Sprintf("testcase paths=(%d,%d) class=%d", tc.PathA, tc.PathB, tc.Class)
}

// Diff lists where the two states differ: sorted register names, plus "mem"
// when the initial memory images differ. Counterexample pattern analysis
// (paper §1: "identify patterns that trigger microarchitectural features in
// unexpected ways") aggregates these over a campaign.
func (tc *TestCase) Diff() []string {
	var out []string
	names := make([]string, 0, len(tc.S1.Regs))
	for r := range tc.S1.Regs {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, r := range names {
		if tc.S1.Regs[r] != tc.S2.Regs[r] {
			out = append(out, r)
		}
	}
	if !memEqual(tc.S1.Mem, tc.S2.Mem) {
		out = append(out, "mem")
	}
	return out
}

func memEqual(a, b *expr.MemModel) bool {
	if a.Default != b.Default {
		return false
	}
	for addr, v := range a.Data {
		if b.Get(addr) != v {
			return false
		}
	}
	for addr, v := range b.Data {
		if a.Get(addr) != v {
			return false
		}
	}
	return true
}
