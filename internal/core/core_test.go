package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/gen"
	"scamv/internal/lifter"
	"scamv/internal/obs"
	"scamv/internal/symexec"
)

// pathsFor lifts and instruments a template program and returns its
// symbolic paths plus the architectural register list.
func pathsFor(t *testing.T, m obs.ModelPair, seed int64, tpl gen.Template) ([]*symexec.Path, []string) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := tpl.Generate(r, 0)
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	var regs []string
	for name := range q.Registers() {
		if len(name) >= 2 && name[0] == 'x' {
			regs = append(regs, name)
		}
	}
	return paths, regs
}

// evalObs evaluates a path's observations of one tag class under a state.
func evalObs(p *symexec.Path, tag bir.ObsTag, st *State) []uint64 {
	a := expr.NewAssignment()
	for k, v := range st.Regs {
		a.BV[k] = v
	}
	a.Mem[bir.MemName] = st.Mem
	var out []uint64
	for _, o := range p.Obs {
		if o.Tag != tag || !a.EvalBool(o.Cond) {
			continue
		}
		for _, v := range o.Vals {
			out = append(out, a.EvalBV(v))
		}
	}
	return out
}

// evalPath returns the index of the path a state takes.
func evalPath(paths []*symexec.Path, st *State) int {
	a := expr.NewAssignment()
	for k, v := range st.Regs {
		a.BV[k] = v
	}
	a.Mem[bir.MemName] = st.Mem
	for i, p := range paths {
		if a.EvalBool(p.Cond) {
			return i
		}
	}
	return -1
}

func eqU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGeneratorRefinedTemplateA(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs})
	n := 0
	for i := 0; i < 20; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		n++
		// Semantic check of the refinement algorithm (§3): the states'
		// actual paths satisfy the chosen pair, M1 observations agree and
		// M2-only observations differ.
		if got := evalPath(paths, tc.S1); got != tc.PathA {
			t.Fatalf("s1 takes path %d, expected %d", got, tc.PathA)
		}
		if got := evalPath(paths, tc.S2); got != tc.PathB {
			t.Fatalf("s2 takes path %d, expected %d", got, tc.PathB)
		}
		b1 := evalObs(paths[tc.PathA], bir.TagBase, tc.S1)
		b2 := evalObs(paths[tc.PathB], bir.TagBase, tc.S2)
		if !eqU64(b1, b2) {
			t.Fatalf("M1 observations differ: %v vs %v", b1, b2)
		}
		r1 := evalObs(paths[tc.PathA], bir.TagRefined, tc.S1)
		r2 := evalObs(paths[tc.PathB], bir.TagRefined, tc.S2)
		if eqU64(r1, r2) {
			t.Fatalf("refined observations must differ: %v vs %v", r1, r2)
		}
	}
	if n == 0 {
		t.Fatal("no test cases generated")
	}
}

func TestGeneratorUnguidedKeepsM1Equal(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecNone}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: false, Registers: regs})
	n := 0
	for i := 0; i < 10; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		n++
		b1 := evalObs(paths[tc.PathA], bir.TagBase, tc.S1)
		b2 := evalObs(paths[tc.PathB], bir.TagBase, tc.S2)
		if !eqU64(b1, b2) {
			t.Fatalf("M1 observations differ: %v vs %v", b1, b2)
		}
	}
	if n == 0 {
		t.Fatal("no test cases generated")
	}
}

func sortedRegs(s *State) string {
	names := make([]string, 0, len(s.Regs))
	for k := range s.Regs {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s=%d;", n, s.Regs[n])
	}
	return out
}

func sortedMem(s *State) string {
	addrs := make([]uint64, 0, len(s.Mem.Data))
	for a := range s.Mem.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := ""
	for _, a := range addrs {
		out += fmt.Sprintf("%d=%d;", a, s.Mem.Data[a])
	}
	return out
}

func TestGeneratorEnumerationMakesProgress(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs})
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		key := fmt.Sprintf("%d|%v|%v|%v|%v", tc.PathA, sortedRegs(tc.S1), sortedRegs(tc.S2),
			sortedMem(tc.S1), sortedMem(tc.S2))
		if seen[key] {
			t.Fatal("enumeration repeated a test case")
		}
		seen[key] = true
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	get := func() []*TestCase {
		g := NewGenerator(paths, Config{Seed: 7, Refined: true, Registers: regs})
		var out []*TestCase
		for i := 0; i < 5; i++ {
			tc, ok := g.Next()
			if !ok {
				break
			}
			out = append(out, tc)
		}
		return out
	}
	a, b := get(), get()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		for r, v := range a[i].S1.Regs {
			if b[i].S1.Regs[r] != v {
				t.Fatalf("tc %d: register %s differs", i, r)
			}
		}
	}
}

func TestMPartRefinementForcesOutsideARDifference(t *testing.T) {
	ar := obs.ARRegion{Lo: 61, Hi: 127, Geom: obs.DefaultGeometry}
	m := &obs.MPart{AR: ar, WithRefinement: true}
	paths, regs := pathsFor(t, m, 3, gen.Stride{})
	g := NewGenerator(paths, Config{Seed: 2, Refined: true, Registers: regs})
	tc, ok := g.Next()
	if !ok {
		t.Fatal("no test case")
	}
	b1 := evalObs(paths[tc.PathA], bir.TagBase, tc.S1)
	b2 := evalObs(paths[tc.PathB], bir.TagBase, tc.S2)
	if !eqU64(b1, b2) {
		t.Fatalf("AR-visible observations must agree: %v vs %v", b1, b2)
	}
	r1 := evalObs(paths[tc.PathA], bir.TagRefined, tc.S1)
	r2 := evalObs(paths[tc.PathB], bir.TagRefined, tc.S2)
	if eqU64(r1, r2) {
		t.Fatal("refined (all-access) observations must differ")
	}
}

func TestSupportClassConstraint(t *testing.T) {
	ar := obs.ARRegion{Lo: 61, Hi: 127, Geom: obs.DefaultGeometry}
	m := &obs.MPart{AR: ar, WithRefinement: true}
	paths, regs := pathsFor(t, m, 3, gen.Stride{})
	sup := obs.MLine{Geom: obs.DefaultGeometry}
	g := NewGenerator(paths, Config{Seed: 2, Refined: true, Registers: regs, Support: sup})
	// The round-robin should visit different classes: collect the set of
	// first-access cache sets over a few test cases.
	sets := map[uint64]bool{}
	for i := 0; i < 6; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		r1 := evalObs(paths[tc.PathA], bir.TagRefined, tc.S1)
		if len(r1) == 0 {
			t.Fatal("no refined observation")
		}
		sets[r1[0]&127] = true
		if int(r1[0]&127) != tc.Class {
			t.Fatalf("first access set %d does not match class %d", r1[0]&127, tc.Class)
		}
	}
	if len(sets) < 2 {
		t.Errorf("class enumeration did not move: %v", sets)
	}
}

func TestTrainingState(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
	for testPath := range paths {
		st, ok := TrainingState(paths, testPath, regs, 1)
		if !ok {
			t.Fatalf("no training state for path %d", testPath)
		}
		if got := evalPath(paths, st); got == testPath || got == -1 {
			t.Fatalf("training state takes path %d (test path %d)", got, testPath)
		}
	}
}

func TestObsListEq(t *testing.T) {
	mk := func(v uint64) symexec.Obs {
		return symexec.Obs{Cond: expr.True, Vals: []expr.BVExpr{expr.C64(v)}}
	}
	if ObsListEq([]symexec.Obs{mk(1)}, []symexec.Obs{mk(1), mk(2)}) != expr.False {
		t.Error("different lengths must be unequal")
	}
	if ObsListEq([]symexec.Obs{mk(1)}, []symexec.Obs{mk(1)}) != expr.True {
		t.Error("identical constant lists must be equal")
	}
	if ObsListEq(nil, nil) != expr.True {
		t.Error("empty lists are equal")
	}
	// Conditional slots: both absent counts as equal.
	absent := symexec.Obs{Cond: expr.False, Vals: []expr.BVExpr{expr.C64(1)}}
	absent2 := symexec.Obs{Cond: expr.False, Vals: []expr.BVExpr{expr.C64(2)}}
	if got := ObsListEq([]symexec.Obs{absent}, []symexec.Obs{absent2}); got != expr.True {
		t.Errorf("both-absent slots must be equal, got %s", got)
	}
	// Present vs absent is unequal.
	if got := ObsListEq([]symexec.Obs{mk(1)}, []symexec.Obs{absent}); got != expr.False {
		t.Errorf("present vs absent must be unequal, got %s", got)
	}
}

func TestMonolithicRelationAgreesWithPairs(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	// Any model of a pair relation must satisfy the monolithic relation.
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs})
	tc, ok := g.Next()
	if !ok {
		t.Fatal("no test case")
	}
	mono := MonolithicRelation(paths, true)
	a := expr.NewAssignment()
	for k, v := range tc.S1.Regs {
		a.BV[k+"_1"] = v
	}
	for k, v := range tc.S2.Regs {
		a.BV[k+"_2"] = v
	}
	a.Mem["MEM_1"] = tc.S1.Mem
	a.Mem["MEM_2"] = tc.S2.Mem
	if !a.EvalBool(mono) {
		t.Error("pair-relation model does not satisfy the monolithic relation")
	}
}

func TestRefinementSlotCoverage(t *testing.T) {
	// Template C (two dependent transient loads): the generator must
	// produce test cases where the FIRST refined observation differs and
	// others where the SECOND differs, exercising both transient loads.
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 9, gen.TemplateC{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs})
	firstDiffers, secondDiffers := false, false
	for i := 0; i < 12; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		r1 := evalObs(paths[tc.PathA], bir.TagRefined, tc.S1)
		r2 := evalObs(paths[tc.PathB], bir.TagRefined, tc.S2)
		if len(r1) != 2 || len(r2) != 2 {
			continue
		}
		if r1[0] != r2[0] {
			firstDiffers = true
		}
		if r1[1] != r2[1] {
			secondDiffers = true
		}
	}
	if !firstDiffers || !secondDiffers {
		t.Errorf("slot coverage incomplete: first=%v second=%v", firstDiffers, secondDiffers)
	}
}

func TestGeneratorStats(t *testing.T) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs})
	for i := 0; i < 5; i++ {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	if g.QueriesSat == 0 {
		t.Error("no satisfiable queries recorded")
	}
	if g.QueriesSat+g.QueriesUnsat+g.QueriesFailed < 5 {
		t.Errorf("stats undercount: %d/%d/%d", g.QueriesSat, g.QueriesUnsat, g.QueriesFailed)
	}
}

func TestGeneratorMaxConflictsGivesUp(t *testing.T) {
	// With an absurdly small conflict budget, streams die with Unknown
	// instead of hanging; Next eventually returns false.
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 5, gen.TemplateA{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: true, Registers: regs, MaxConflicts: 1})
	for i := 0; i < 100; i++ {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	if g.QueriesFailed == 0 && g.QueriesSat > 50 {
		t.Error("conflict budget had no effect")
	}
}

func TestStateClone(t *testing.T) {
	s := &State{Regs: map[string]uint64{"x0": 7}, Mem: expr.NewMemModel(0)}
	s.Mem.Set(8, 9)
	c := s.Clone()
	c.Regs["x0"] = 1
	c.Mem.Set(8, 10)
	if s.Regs["x0"] != 7 || s.Mem.Get(8) != 9 {
		t.Error("clone aliases the original")
	}
}

func TestUnrefinedIgnoresSlots(t *testing.T) {
	// Without refinement there must be exactly one stream per (pair,
	// class), regardless of refined observation counts.
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	paths, regs := pathsFor(t, m, 9, gen.TemplateC{})
	g := NewGenerator(paths, Config{Seed: 1, Refined: false, Registers: regs})
	perPair := map[[2]int]bool{}
	for _, k := range g.keys {
		if k.slot != -1 {
			t.Fatalf("unrefined generator has slot stream %+v", k)
		}
		perPair[[2]int{k.a, k.b}] = true
	}
	if len(g.keys) != len(perPair) {
		t.Error("duplicate streams per pair")
	}
}

func TestTestCaseDiff(t *testing.T) {
	mk := func() *State {
		return &State{Regs: map[string]uint64{"x0": 1, "x5": 2}, Mem: expr.NewMemModel(0)}
	}
	s1, s2 := mk(), mk()
	tc := &TestCase{S1: s1, S2: s2}
	if d := tc.Diff(); len(d) != 0 {
		t.Errorf("identical states diff: %v", d)
	}
	s2.Regs["x5"] = 9
	s2.Mem.Set(0x100, 1)
	d := tc.Diff()
	if len(d) != 2 || d[0] != "x5" || d[1] != "mem" {
		t.Errorf("diff: %v", d)
	}
	// Memory difference via default vs explicit-equal entries is NOT a diff.
	s3, s4 := mk(), mk()
	s4.Mem.Set(0x200, 0) // explicit zero equals the default
	if d := (&TestCase{S1: s3, S2: s4}).Diff(); len(d) != 0 {
		t.Errorf("equal memories flagged: %v", d)
	}
}
