package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/gen"
	"scamv/internal/obs"
	"scamv/internal/symexec"
)

// mlineConfig is the shared campaign of the incremental-solving tests: a
// refined MLine-support generator (128 coverage classes) over a branching
// template, i.e. the exact shape the shared-prefix solver reuse targets.
func mlineConfig(seed int64, legacy bool) (tpl gen.Template, m obs.ModelPair, cfg Config) {
	tpl = gen.Sequence{Parts: []gen.Template{gen.TemplateA{}, gen.TemplateA{}}}
	m = &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	cfg = Config{
		Seed:    seed,
		Refined: true,
		Support: obs.MLine{Geom: obs.DefaultGeometry},
		Legacy:  legacy,
	}
	return tpl, m, cfg
}

// TestIncrementalMatchesLegacyOutcomes checks the determinism contract of
// the shared-prefix generator: for the same seed, the incremental and the
// legacy (fresh-solver-per-stream) generators must report the same sat/unsat
// outcome for every stream, and therefore produce the same sequence of
// (pathA, pathB, class) stream keys with the same query counters. Model
// values may differ (the searches run over different learned-clause sets),
// so each incremental test case is instead checked semantically.
func TestIncrementalMatchesLegacyOutcomes(t *testing.T) {
	tpl, m, cfgInc := mlineConfig(11, false)
	_, _, cfgLeg := mlineConfig(11, true)
	paths, regs := pathsFor(t, m, 11, tpl)
	cfgInc.Registers, cfgLeg.Registers = regs, regs

	type key struct{ a, b, class int }
	run := func(cfg Config) ([]key, [3]int) {
		g := NewGenerator(paths, cfg)
		var keys []key
		for i := 0; i < 40; i++ {
			tc, ok := g.Next()
			if !ok {
				break
			}
			keys = append(keys, key{tc.PathA, tc.PathB, tc.Class})
		}
		return keys, [3]int{g.QueriesSat, g.QueriesUnsat, g.QueriesFailed}
	}
	incKeys, incStats := run(cfgInc)
	legKeys, legStats := run(cfgLeg)

	if len(incKeys) == 0 {
		t.Fatal("no test cases generated")
	}
	if len(incKeys) != len(legKeys) {
		t.Fatalf("case counts differ: incremental %d, legacy %d", len(incKeys), len(legKeys))
	}
	for i := range incKeys {
		if incKeys[i] != legKeys[i] {
			t.Fatalf("case %d stream differs: incremental %+v, legacy %+v", i, incKeys[i], legKeys[i])
		}
	}
	if incStats != legStats {
		t.Fatalf("query stats differ: incremental %v, legacy %v", incStats, legStats)
	}
}

// TestIncrementalSemanticValidity checks every incremental-mode test case
// the way TestGeneratorRefinedTemplateA checks legacy ones: states take the
// declared paths, M1 observations agree, refined observations differ, and
// the first access lands in the declared MLine class.
func TestIncrementalSemanticValidity(t *testing.T) {
	tpl, m, cfg := mlineConfig(3, false)
	paths, regs := pathsFor(t, m, 3, tpl)
	cfg.Registers = regs
	g := NewGenerator(paths, cfg)
	n := 0
	for i := 0; i < 24; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		n++
		if got := evalPath(paths, tc.S1); got != tc.PathA {
			t.Fatalf("s1 takes path %d, expected %d", got, tc.PathA)
		}
		if got := evalPath(paths, tc.S2); got != tc.PathB {
			t.Fatalf("s2 takes path %d, expected %d", got, tc.PathB)
		}
		b1 := evalObs(paths[tc.PathA], bir.TagBase, tc.S1)
		b2 := evalObs(paths[tc.PathB], bir.TagBase, tc.S2)
		if !eqU64(b1, b2) {
			t.Fatalf("M1 observations differ: %v vs %v", b1, b2)
		}
		r1 := evalObs(paths[tc.PathA], bir.TagRefined, tc.S1)
		r2 := evalObs(paths[tc.PathB], bir.TagRefined, tc.S2)
		if eqU64(r1, r2) {
			t.Fatalf("refined observations must differ: %v vs %v", r1, r2)
		}
		// MLine pins the first load observation's cache set (support.go):
		// evaluate the same value the constraint constrains.
		if set, ok := firstLoadSet(paths[tc.PathA], tc.S1); ok && int(set) != tc.Class {
			t.Fatalf("first access set %d does not match class %d", set, tc.Class)
		}
	}
	if n == 0 {
		t.Fatal("no test cases generated")
	}
}

// firstLoadSet evaluates the cache-set index MLine's class constraint pins:
// the low 7 bits of the first load observation's line identifier under st.
func firstLoadSet(p *symexec.Path, st *State) (uint64, bool) {
	a := expr.NewAssignment()
	for k, v := range st.Regs {
		a.BV[k] = v
	}
	a.Mem[bir.MemName] = st.Mem
	for _, o := range p.Obs {
		if o.Kind != "load" || len(o.Vals) == 0 {
			continue
		}
		return a.EvalBV(o.Vals[0]) & 127, true
	}
	return 0, false
}

// goldenCase is the serialized form of one generated test case.
type goldenCase struct {
	PathA, PathB, Class int
	S1, S2              string // sorted registers + sorted memory image
}

// TestGeneratorGoldenMLine pins the exact test-case sequence of a seeded
// MLine campaign, guarding the per-seed determinism contract across future
// solver changes. Regenerate testdata/golden_mline.json with
// UPDATE_GOLDEN=1 go test ./internal/core/ -run Golden — and say so in the
// commit message, since changed golden states mean changed generation
// behavior for every seeded campaign.
func TestGeneratorGoldenMLine(t *testing.T) {
	tpl, m, cfg := mlineConfig(9, false)
	paths, regs := pathsFor(t, m, 9, tpl)
	// pathsFor returns registers in map order; the golden sequence needs
	// the deterministic (sorted) order the real pipeline uses.
	sort.Strings(regs)
	cfg.Registers = regs
	g := NewGenerator(paths, cfg)
	var got []goldenCase
	for i := 0; i < 16; i++ {
		tc, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, goldenCase{
			PathA: tc.PathA, PathB: tc.PathB, Class: tc.Class,
			S1: sortedRegs(tc.S1) + "|" + sortedMem(tc.S1),
			S2: sortedRegs(tc.S2) + "|" + sortedMem(tc.S2),
		})
	}
	if len(got) == 0 {
		t.Fatal("no test cases generated")
	}
	path := filepath.Join("testdata", "golden_mline.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d cases, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("case %d deviates from golden:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}
