// Package symexec implements symbolic execution of BIR programs with
// observation collection (paper §2.3): every feasible-by-structure execution
// path yields a symbolic path condition and the list of symbolic
// observations encountered along it, instantiated with the effects of the
// assignments executed so far.
//
// Registers not written before being read are the symbolic inputs; memory
// starts as the symbolic memory variable bir.MemName.
package symexec

import (
	"fmt"

	"scamv/internal/bir"
	"scamv/internal/expr"
)

// Obs is one observation event on a path: when Cond holds in the initial
// state, the values Vals are observable.
type Obs struct {
	Tag  bir.ObsTag
	Kind string
	Cond expr.BoolExpr
	Vals []expr.BVExpr
}

// Path is one terminating symbolic state σ: the path condition, the ordered
// observation list, and the final symbolic machine state.
type Path struct {
	Cond  expr.BoolExpr
	Obs   []Obs
	Trace []string // labels of the blocks executed, in order
	Regs  map[string]expr.BVExpr
	Mem   expr.MemExpr
}

// ObsOfTag returns the observations whose tag satisfies keep — the
// projection π of the paper's §5.1.
func (p *Path) ObsOfTag(keep func(bir.ObsTag) bool) []Obs {
	var out []Obs
	for _, o := range p.Obs {
		if keep(o.Tag) {
			out = append(out, o)
		}
	}
	return out
}

// BaseObs returns the model-under-validation (M1) observations.
func (p *Path) BaseObs() []Obs {
	return p.ObsOfTag(func(t bir.ObsTag) bool { return t == bir.TagBase })
}

// RefinedObs returns the observations exclusive to the refined model M2.
func (p *Path) RefinedObs() []Obs {
	return p.ObsOfTag(func(t bir.ObsTag) bool { return t == bir.TagRefined })
}

// String renders a short description of the path.
func (p *Path) String() string {
	return fmt.Sprintf("path %v cond=%s obs=%d", p.Trace, p.Cond, len(p.Obs))
}

// Feasible returns the single path whose condition holds under the concrete
// assignment a. Path conditions of one program partition the input space, so
// zero or multiple feasible paths indicate a broken guard somewhere in the
// lifter or the executor — Feasible reports either as an error rather than
// guessing.
func Feasible(paths []*Path, a *expr.Assignment) (*Path, error) {
	var taken *Path
	for _, p := range paths {
		if a.EvalBool(p.Cond) {
			if taken != nil {
				return nil, fmt.Errorf("symexec: two feasible paths (%v and %v) under one input", taken.Trace, p.Trace)
			}
			taken = p
		}
	}
	if taken == nil {
		return nil, fmt.Errorf("symexec: no feasible path among %d", len(paths))
	}
	return taken, nil
}

type state struct {
	label string
	regs  map[string]expr.BVExpr
	mem   expr.MemExpr
	conds []expr.BoolExpr
	obs   []Obs
	trace []string
	steps int
}

func (s *state) fork() *state {
	regs := make(map[string]expr.BVExpr, len(s.regs))
	for k, v := range s.regs {
		regs[k] = v
	}
	n := &state{
		label: s.label,
		regs:  regs,
		mem:   s.mem,
		conds: append([]expr.BoolExpr(nil), s.conds...),
		obs:   append([]Obs(nil), s.obs...),
		trace: append([]string(nil), s.trace...),
		steps: s.steps,
	}
	return n
}

func (s *state) subBV(e expr.BVExpr) expr.BVExpr {
	return expr.SubstBV(e, s.regs, nil).(expr.BVExpr)
}

func (s *state) subBool(e expr.BoolExpr) expr.BoolExpr {
	return expr.SubstBV(e, s.regs, nil).(expr.BoolExpr)
}

// Run symbolically executes p, returning one Path per terminating execution
// path. maxSteps bounds the number of blocks executed per path; exceeding it
// (a cyclic CFG) is an error.
func Run(p *bir.Program, maxSteps int) ([]*Path, error) {
	if maxSteps <= 0 {
		maxSteps = 256
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var paths []*Path
	work := []*state{{
		label: p.Entry,
		regs:  make(map[string]expr.BVExpr),
		mem:   expr.NewMemVar(bir.MemName),
	}}
	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		st.steps++
		if st.steps > maxSteps {
			return nil, fmt.Errorf("symexec: %s: path exceeded %d blocks (cyclic CFG?)", p.Name, maxSteps)
		}
		b := p.Block(st.label)
		st.trace = append(st.trace, b.Label)
		for _, raw := range b.Stmts {
			switch stmt := raw.(type) {
			case *bir.Assign:
				st.regs[stmt.Dst] = st.subBV(stmt.Rhs)
			case *bir.Load:
				st.regs[stmt.Dst] = expr.NewRead(st.mem, st.subBV(stmt.Addr))
			case *bir.Store:
				st.mem = expr.NewStore(st.mem, st.subBV(stmt.Addr), st.subBV(stmt.Val))
			case *bir.Observe:
				cond := st.subBool(stmt.Cond)
				if cond == expr.False {
					continue
				}
				vals := make([]expr.BVExpr, len(stmt.Vals))
				for i, v := range stmt.Vals {
					vals[i] = st.subBV(v)
				}
				st.obs = append(st.obs, Obs{Tag: stmt.Tag, Kind: stmt.Kind, Cond: cond, Vals: vals})
			default:
				return nil, fmt.Errorf("symexec: unknown statement %T", raw)
			}
		}
		switch t := b.Term.(type) {
		case *bir.Halt:
			paths = append(paths, &Path{
				Cond:  expr.AndB(st.conds...),
				Obs:   st.obs,
				Trace: st.trace,
				Regs:  st.regs,
				Mem:   st.mem,
			})
		case *bir.Jmp:
			st.label = t.Target
			work = append(work, st)
		case *bir.CondJmp:
			cond := st.subBool(t.Cond)
			switch cond {
			case expr.True:
				st.label = t.True
				work = append(work, st)
			case expr.False:
				st.label = t.False
				work = append(work, st)
			default:
				other := st.fork()
				st.conds = append(st.conds, cond)
				st.label = t.True
				work = append(work, st)
				other.conds = append(other.conds, expr.NotB(cond))
				other.label = t.False
				work = append(work, other)
			}
		default:
			return nil, fmt.Errorf("symexec: unknown terminator %T", b.Term)
		}
	}
	return paths, nil
}
