package symexec

import (
	"testing"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/lifter"
)

func lift(t *testing.T, src string) *bir.Program {
	t.Helper()
	p, err := arm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestSinglePath(t *testing.T) {
	bp := lift(t, "movz x0, #7\nadd x1, x0, #1\nhlt")
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths: %d", len(paths))
	}
	if paths[0].Cond != expr.True {
		t.Errorf("straight-line path condition should be true, got %s", paths[0].Cond)
	}
	a := expr.NewAssignment()
	if got := a.EvalBV(paths[0].Regs["x1"]); got != 8 {
		t.Errorf("x1 = %d", got)
	}
}

func TestForkAndPathConditions(t *testing.T) {
	bp := lift(t, `
        cmp x0, x1
        b.lo less
        movz x2, #10
        b end
    less:
        movz x2, #20
    end:
        hlt`)
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
	// Path conditions must partition the input space.
	for _, in := range [][2]uint64{{0, 1}, {1, 0}, {3, 3}} {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"] = in[0], in[1]
		n := 0
		for _, p := range paths {
			if a.EvalBool(p.Cond) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("input %v satisfied %d path conditions", in, n)
		}
	}
}

func TestObservationCollection(t *testing.T) {
	bp := lift(t, "ldr x2, [x0, x1]\nhlt")
	// Instrument manually: observe the load address.
	for _, b := range bp.Blocks {
		var out []bir.Stmt
		for _, s := range b.Stmts {
			if l, ok := s.(*bir.Load); ok {
				out = append(out, &bir.Observe{
					Tag: bir.TagBase, Kind: "load", Cond: expr.True,
					Vals: []expr.BVExpr{l.Addr},
				})
			}
			out = append(out, s)
		}
		b.Stmts = out
	}
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs := paths[0].BaseObs()
	if len(obs) != 1 {
		t.Fatalf("obs: %d", len(obs))
	}
	a := expr.NewAssignment()
	a.BV["x0"], a.BV["x1"] = 0x100, 0x20
	if got := a.EvalBV(obs[0].Vals[0]); got != 0x120 {
		t.Errorf("observed address: %#x", got)
	}
}

func TestObservationSeesAssignments(t *testing.T) {
	// The observation after an assignment must reflect the assignment — the
	// "propagation of the symbol" example of §2.3.
	p := bir.New("t", &bir.Block{
		Label: "e",
		Stmts: []bir.Stmt{
			&bir.Assign{Dst: "x0", Rhs: expr.Add(expr.V64("x0"), expr.C64(4))},
			&bir.Observe{Tag: bir.TagBase, Kind: "load", Cond: expr.True, Vals: []expr.BVExpr{expr.V64("x0")}},
		},
		Term: &bir.Halt{},
	})
	paths, err := Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := expr.NewAssignment()
	a.BV["x0"] = 10
	if got := a.EvalBV(paths[0].Obs[0].Vals[0]); got != 14 {
		t.Errorf("observation does not see the assignment: %d", got)
	}
}

func TestLoadBecomesSymbolicRead(t *testing.T) {
	bp := lift(t, "ldr x1, [x0]\nldr x2, [x1]\nhlt")
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := expr.NewAssignment()
	a.BV["x0"] = 0x1000
	mm := expr.NewMemModel(0)
	mm.Set(0x1000, 0x2000)
	mm.Set(0x2000, 99)
	a.Mem[bir.MemName] = mm
	if got := a.EvalBV(paths[0].Regs["x2"]); got != 99 {
		t.Errorf("nested load: %d", got)
	}
}

func TestStoreThenLoadAliasing(t *testing.T) {
	bp := lift(t, "str x1, [x0]\nldr x2, [x3]\nhlt")
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	// When x3 == x0 the load sees the stored value.
	a := expr.NewAssignment()
	a.BV["x0"], a.BV["x1"], a.BV["x3"] = 0x80, 7, 0x80
	a.Mem[bir.MemName] = expr.NewMemModel(0)
	if got := a.EvalBV(paths[0].Regs["x2"]); got != 7 {
		t.Errorf("aliasing store->load: %d", got)
	}
	// When x3 != x0 it sees the initial memory.
	a.BV["x3"] = 0x90
	if got := a.EvalBV(paths[0].Regs["x2"]); got != 0 {
		t.Errorf("non-aliasing store->load: %d", got)
	}
}

func TestCyclicProgramRejected(t *testing.T) {
	p := bir.New("loop", &bir.Block{Label: "a", Term: &bir.Jmp{Target: "a"}})
	if _, err := Run(p, 16); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestConditionalObservationSkippedWhenFalse(t *testing.T) {
	p := bir.New("t", &bir.Block{
		Label: "e",
		Stmts: []bir.Stmt{
			&bir.Observe{Tag: bir.TagBase, Kind: "load", Cond: expr.False, Vals: []expr.BVExpr{expr.C64(1)}},
			&bir.Observe{Tag: bir.TagRefined, Kind: "load", Cond: expr.True, Vals: []expr.BVExpr{expr.C64(2)}},
		},
		Term: &bir.Halt{},
	})
	paths, err := Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0].Obs) != 1 {
		t.Fatalf("statically false observation not dropped: %v", paths[0].Obs)
	}
	if len(paths[0].RefinedObs()) != 1 || len(paths[0].BaseObs()) != 0 {
		t.Error("tag projection wrong")
	}
}

func TestTraceRecordsBlocks(t *testing.T) {
	bp := lift(t, "cmp x0, #1\nb.eq end\nmovz x1, #1\nend:\nhlt")
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if len(p.Trace) < 1 {
			t.Errorf("empty trace for %s", p)
		}
	}
}

func TestNestedBranchesFourPaths(t *testing.T) {
	bp := lift(t, `
        cmp x0, x1
        b.lo a
        movz x2, #1
        b join1
    a:
        movz x2, #2
    join1:
        cmp x2, x3
        b.hi b
        movz x4, #3
        b end
    b:
        movz x4, #4
    end:
        hlt`)
	paths, err := Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("expected 4 paths, got %d", len(paths))
	}
	// Path conditions partition the space and final states agree with a
	// direct interpretation.
	for _, in := range [][4]uint64{{0, 1, 0, 9}, {5, 1, 0, 0}, {9, 9, 9, 9}, {1, 2, 3, 1}} {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"], a.BV["x3"] = in[0], in[1], in[3]
		feasible := 0
		for _, p := range paths {
			if !a.EvalBool(p.Cond) {
				continue
			}
			feasible++
			x2 := uint64(1)
			if in[0] < in[1] {
				x2 = 2
			}
			x4 := uint64(3)
			if x2 > in[3] {
				x4 = 4
			}
			if got := a.EvalBV(p.Regs["x2"]); got != x2 {
				t.Errorf("input %v: x2=%d want %d", in, got, x2)
			}
			if got := a.EvalBV(p.Regs["x4"]); got != x4 {
				t.Errorf("input %v: x4=%d want %d", in, got, x4)
			}
		}
		if feasible != 1 {
			t.Errorf("input %v: %d feasible paths", in, feasible)
		}
	}
}

func TestObservationOrderIsProgramOrder(t *testing.T) {
	p := bir.New("t", &bir.Block{
		Label: "e",
		Stmts: []bir.Stmt{
			&bir.Observe{Tag: bir.TagBase, Kind: "first", Cond: expr.True, Vals: []expr.BVExpr{expr.C64(1)}},
			&bir.Observe{Tag: bir.TagRefined, Kind: "second", Cond: expr.True, Vals: []expr.BVExpr{expr.C64(2)}},
			&bir.Observe{Tag: bir.TagBase, Kind: "third", Cond: expr.True, Vals: []expr.BVExpr{expr.C64(3)}},
		},
		Term: &bir.Halt{},
	})
	paths, err := Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{}
	for _, o := range paths[0].Obs {
		kinds = append(kinds, o.Kind)
	}
	if kinds[0] != "first" || kinds[1] != "second" || kinds[2] != "third" {
		t.Errorf("order: %v", kinds)
	}
	base := paths[0].BaseObs()
	if len(base) != 2 || base[0].Kind != "first" || base[1].Kind != "third" {
		t.Errorf("projection must preserve order: %v", base)
	}
}
