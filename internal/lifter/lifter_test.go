package lifter

import (
	"testing"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/symexec"
)

func liftSrc(t *testing.T, src string) *bir.Program {
	t.Helper()
	p, err := arm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Validate(); err != nil {
		t.Fatal(err)
	}
	return bp
}

// run executes the lifted program symbolically and evaluates the single
// final path under the given inputs, returning the final register values.
func runConcrete(t *testing.T, bp *bir.Program, regs map[string]uint64, mem map[uint64]uint64) map[string]*expr.Assignment {
	t.Helper()
	paths, err := symexec.Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := expr.NewAssignment()
	for k, v := range regs {
		a.BV[k] = v
	}
	mm := expr.NewMemModel(0)
	for k, v := range mem {
		mm.Set(k, v)
	}
	a.Mem[bir.MemName] = mm
	out := map[string]*expr.Assignment{}
	for _, p := range paths {
		if a.EvalBool(p.Cond) {
			fin := expr.NewAssignment()
			fin.BV = a.BV
			fin.Mem = a.Mem
			res := expr.NewAssignment()
			for r, e := range p.Regs {
				res.BV[r] = fin.EvalBV(e)
			}
			out["taken"] = res
		}
	}
	return out
}

func TestLiftStraightLine(t *testing.T) {
	bp := liftSrc(t, `
        movz x0, #0x10
        add x1, x0, #0x4
        lsl x2, x1, #2
        hlt
    `)
	res := runConcrete(t, bp, nil, nil)["taken"]
	if res == nil {
		t.Fatal("no feasible path")
	}
	if res.BV["x0"] != 0x10 || res.BV["x1"] != 0x14 || res.BV["x2"] != 0x50 {
		t.Fatalf("wrong results: %v", res.BV)
	}
}

func TestLiftLoadStore(t *testing.T) {
	bp := liftSrc(t, `
        ldr x1, [x0]
        add x2, x1, #1
        str x2, [x0, #8]
        ldr x3, [x0, #8]
        hlt
    `)
	res := runConcrete(t, bp, map[string]uint64{"x0": 0x1000}, map[uint64]uint64{0x1000: 41})["taken"]
	if res.BV["x1"] != 41 || res.BV["x3"] != 42 {
		t.Fatalf("load/store chain wrong: x1=%d x3=%d", res.BV["x1"], res.BV["x3"])
	}
}

func TestLiftBranchBothPaths(t *testing.T) {
	bp := liftSrc(t, `
        cmp x0, x1
        b.lo skip
        movz x2, #1
        b end
    skip:
        movz x2, #2
    end:
        hlt
    `)
	paths, err := symexec.Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("expected 2 paths, got %d", len(paths))
	}
	// x0 < x1 takes skip: x2 = 2.
	for _, tc := range []struct {
		x0, x1, want uint64
	}{{1, 2, 2}, {2, 1, 1}, {5, 5, 1}} {
		a := expr.NewAssignment()
		a.BV["x0"], a.BV["x1"] = tc.x0, tc.x1
		found := false
		for _, p := range paths {
			if a.EvalBool(p.Cond) {
				if found {
					t.Fatal("two paths feasible for one input")
				}
				found = true
				if got := a.EvalBV(p.Regs["x2"]); got != tc.want {
					t.Errorf("x0=%d x1=%d: x2=%d want %d", tc.x0, tc.x1, got, tc.want)
				}
			}
		}
		if !found {
			t.Fatalf("no feasible path for x0=%d x1=%d", tc.x0, tc.x1)
		}
	}
}

func TestLiftAllConditions(t *testing.T) {
	conds := []arm.Cond{arm.EQ, arm.NE, arm.HS, arm.LO, arm.HI, arm.LS, arm.GE, arm.LT, arm.GT, arm.LE}
	vals := [][2]uint64{{0, 0}, {1, 2}, {2, 1}, {^uint64(0), 1}, {1, ^uint64(0)}, {^uint64(0), ^uint64(0)}}
	for _, c := range conds {
		e := CondExpr(c)
		for _, v := range vals {
			a := expr.NewAssignment()
			a.BV[CmpA], a.BV[CmpB] = v[0], v[1]
			if got, want := a.EvalBool(e), c.Holds(v[0], v[1]); got != want {
				t.Errorf("cond %v on (%d,%d): lifted %v, arm %v", c, int64(v[0]), int64(v[1]), got, want)
			}
		}
	}
}

func TestLiftXZR(t *testing.T) {
	bp := liftSrc(t, `
        add x1, xzr, #5
        ldr xzr, [x0]
        hlt
    `)
	paths, err := symexec.Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	a := expr.NewAssignment()
	if got := a.EvalBV(p.Regs["x1"]); got != 5 {
		t.Errorf("xzr read: x1=%d", got)
	}
	// The load to xzr must still exist (observable) but land in the sink.
	if _, ok := p.Regs["_sink"]; !ok {
		t.Error("load to xzr should reach the sink register")
	}
}

func TestLiftUnconditionalJump(t *testing.T) {
	bp := liftSrc(t, `
        b end
        movz x1, #1
    end:
        hlt
    `)
	paths, err := symexec.Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("expected 1 path, got %d", len(paths))
	}
	if _, written := paths[0].Regs["x1"]; written {
		t.Error("skipped code must not execute")
	}
}

func TestLiftFallThroughBlocks(t *testing.T) {
	// A label in the middle of straight-line code forces a block split with
	// fall-through.
	bp := liftSrc(t, `
        movz x0, #1
    mid:
        add x0, x0, #1
        hlt
    `)
	paths, err := symexec.Run(bp, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := expr.NewAssignment()
	if got := a.EvalBV(paths[0].Regs["x0"]); got != 2 {
		t.Errorf("fall-through result: %d", got)
	}
}

// TestCondExprMatchesCondHolds cross-checks the two condition semantics in
// the system: the symbolic guard built over the ghost compare registers
// (lifter.CondExpr, consumed by the symbolic executor) and the concrete
// predicate the simulator evaluates (arm.Cond.Holds). A divergence here
// would make every conditional branch lift incorrectly.
func TestCondExprMatchesCondHolds(t *testing.T) {
	conds := []arm.Cond{arm.EQ, arm.NE, arm.HS, arm.LO, arm.HI, arm.LS,
		arm.GE, arm.LT, arm.GT, arm.LE}
	edge := []uint64{0, 1, 2, 0x7fffffffffffffff, 0x8000000000000000,
		0x8000000000000001, ^uint64(0), ^uint64(0) - 1}
	var pairs [][2]uint64
	for _, a := range edge {
		for _, b := range edge {
			pairs = append(pairs, [2]uint64{a, b})
		}
	}
	for _, c := range conds {
		guard := CondExpr(c)
		inverted := CondExpr(c.Invert())
		for _, p := range pairs {
			a := expr.NewAssignment()
			a.BV[CmpA], a.BV[CmpB] = p[0], p[1]
			want := c.Holds(p[0], p[1])
			if got := a.EvalBool(guard); got != want {
				t.Fatalf("%v(%#x, %#x): CondExpr %v, Holds %v", c, p[0], p[1], got, want)
			}
			if got := a.EvalBool(inverted); got == want {
				t.Fatalf("%v(%#x, %#x): inverted guard agrees with original", c, p[0], p[1])
			}
		}
	}
}
