// Package lifter translates arm programs into bir programs, mirroring
// HolBA's binary-to-BIR transpilation step in the Scam-V pipeline.
//
// Flag handling follows the compare-and-branch idiom of the generated
// templates: cmp/tst record their operands in the ghost registers _cca and
// _ccb, and a following b.<cond> lowers to a conditional jump whose guard is
// the corresponding comparison of the ghost registers. This is exact for
// programs in which flags are only produced by cmp/tst and only consumed by
// conditional branches — which holds for every generated template.
package lifter

import (
	"fmt"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
)

// Ghost register names for the most recent compare operands.
const (
	CmpA = "_cca"
	CmpB = "_ccb"
)

// RegName returns the BIR variable name of an ARM register.
func RegName(r arm.Reg) string { return fmt.Sprintf("x%d", uint8(r)) }

// regE is the value of a register as an expression (XZR reads as zero).
func regE(r arm.Reg) expr.BVExpr {
	if r == arm.XZR {
		return expr.C64(0)
	}
	return expr.V64(RegName(r))
}

// CondExpr builds the guard expression of b.<cond> over the ghost compare
// registers (exported for the observational models that need to rebuild
// branch guards).
func CondExpr(c arm.Cond) expr.BoolExpr {
	a, b := expr.V64(CmpA), expr.V64(CmpB)
	switch c {
	case arm.EQ:
		return expr.Eq(a, b)
	case arm.NE:
		return expr.Neq(a, b)
	case arm.HS:
		return expr.Ule(b, a)
	case arm.LO:
		return expr.Ult(a, b)
	case arm.HI:
		return expr.Ult(b, a)
	case arm.LS:
		return expr.Ule(a, b)
	case arm.GE:
		return expr.Sle(b, a)
	case arm.LT:
		return expr.Slt(a, b)
	case arm.GT:
		return expr.Slt(b, a)
	case arm.LE:
		return expr.Sle(a, b)
	}
	panic("lifter: unknown condition")
}

// Lift translates an arm program into a bir program. Basic blocks are split
// at labels and after branches; block labels are "L<n>" where n is the index
// of the leader instruction ("Lend" for the end of the program).
func Lift(p *arm.Program) (*bir.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Instrs)

	// Identify leaders.
	leader := make([]bool, n+1)
	leader[0] = true
	leader[n] = true
	for _, idx := range p.Labels {
		leader[idx] = true
	}
	for i, ins := range p.Instrs {
		if ins.IsBranch() || ins.Op == arm.HLT {
			leader[i+1] = true
		}
	}

	blockLabel := func(idx int) string {
		if idx >= n {
			return "Lend"
		}
		return fmt.Sprintf("L%d", idx)
	}
	target := func(label string) (string, error) {
		idx, ok := p.Target(label)
		if !ok {
			return "", fmt.Errorf("lifter: unknown label %q", label)
		}
		return blockLabel(idx), nil
	}

	var blocks []*bir.Block
	i := 0
	for i < n {
		start := i
		blk := &bir.Block{Label: blockLabel(start)}
		for i < n && blk.Term == nil {
			if i > start && leader[i] {
				// The next instruction starts another block: fall through.
				blk.Term = &bir.Jmp{Target: blockLabel(i)}
				break
			}
			ins := p.Instrs[i]
			switch ins.Op {
			case arm.HLT:
				blk.Term = &bir.Halt{}
				i++
			case arm.B:
				t, err := target(ins.Label)
				if err != nil {
					return nil, err
				}
				blk.Term = &bir.Jmp{Target: t}
				i++
			case arm.BCC:
				t, err := target(ins.Label)
				if err != nil {
					return nil, err
				}
				blk.Term = &bir.CondJmp{
					Cond:  CondExpr(ins.Cond),
					True:  t,
					False: blockLabel(i + 1),
				}
				i++
			default:
				blk.Stmts = append(blk.Stmts, liftStraight(ins)...)
				i++
			}
		}
		if blk.Term == nil {
			blk.Term = &bir.Halt{} // fell off the end of the program
		}
		blocks = append(blocks, blk)
	}
	// Terminal empty block.
	blocks = append(blocks, &bir.Block{Label: "Lend", Term: &bir.Halt{}})

	bp := bir.New(p.Name, blocks...)
	if err := bp.Validate(); err != nil {
		return nil, err
	}
	return bp, nil
}

// liftStraight lifts a non-control-flow instruction.
func liftStraight(ins arm.Instr) []bir.Stmt {
	dst := RegName(ins.Rd)
	discard := ins.Rd == arm.XZR
	assign := func(rhs expr.BVExpr) []bir.Stmt {
		if discard {
			return nil
		}
		return []bir.Stmt{&bir.Assign{Dst: dst, Rhs: rhs}}
	}
	addrRR := func() expr.BVExpr { return expr.Add(regE(ins.Rn), regE(ins.Rm)) }
	addrRI := func() expr.BVExpr { return expr.Add(regE(ins.Rn), expr.C64(ins.Imm)) }

	switch ins.Op {
	case arm.NOP:
		return nil
	case arm.MOVZ:
		return assign(expr.C64(ins.Imm))
	case arm.MOVR:
		return assign(regE(ins.Rn))
	case arm.ADDI:
		return assign(expr.Add(regE(ins.Rn), expr.C64(ins.Imm)))
	case arm.ADDR:
		return assign(expr.Add(regE(ins.Rn), regE(ins.Rm)))
	case arm.SUBI:
		return assign(expr.Sub(regE(ins.Rn), expr.C64(ins.Imm)))
	case arm.SUBR:
		return assign(expr.Sub(regE(ins.Rn), regE(ins.Rm)))
	case arm.ANDI:
		return assign(expr.And(regE(ins.Rn), expr.C64(ins.Imm)))
	case arm.ANDR:
		return assign(expr.And(regE(ins.Rn), regE(ins.Rm)))
	case arm.ORRR:
		return assign(expr.Or(regE(ins.Rn), regE(ins.Rm)))
	case arm.EORR:
		return assign(expr.Xor(regE(ins.Rn), regE(ins.Rm)))
	case arm.LSLI:
		return assign(expr.Shl(regE(ins.Rn), expr.C64(ins.Imm)))
	case arm.LSRI:
		return assign(expr.Lshr(regE(ins.Rn), expr.C64(ins.Imm)))
	case arm.MULR:
		return assign(expr.Mul(regE(ins.Rn), regE(ins.Rm)))
	case arm.LDRR:
		return []bir.Stmt{&bir.Load{Dst: loadDst(ins.Rd), Addr: addrRR()}}
	case arm.LDRI:
		return []bir.Stmt{&bir.Load{Dst: loadDst(ins.Rd), Addr: addrRI()}}
	case arm.STRR:
		return []bir.Stmt{&bir.Store{Addr: addrRR(), Val: regE(ins.Rd)}}
	case arm.STRI:
		return []bir.Stmt{&bir.Store{Addr: addrRI(), Val: regE(ins.Rd)}}
	case arm.CMPR:
		return []bir.Stmt{
			&bir.Assign{Dst: CmpA, Rhs: regE(ins.Rn)},
			&bir.Assign{Dst: CmpB, Rhs: regE(ins.Rm)},
		}
	case arm.CMPI:
		return []bir.Stmt{
			&bir.Assign{Dst: CmpA, Rhs: regE(ins.Rn)},
			&bir.Assign{Dst: CmpB, Rhs: expr.C64(ins.Imm)},
		}
	case arm.TSTI:
		return []bir.Stmt{
			&bir.Assign{Dst: CmpA, Rhs: expr.And(regE(ins.Rn), expr.C64(ins.Imm))},
			&bir.Assign{Dst: CmpB, Rhs: expr.C64(0)},
		}
	}
	panic(fmt.Sprintf("lifter: cannot lift %s", ins))
}

// loadDst is the destination register of a load; loads to XZR still access
// memory (and thus remain observable) but their result is discarded into a
// sink register.
func loadDst(r arm.Reg) string {
	if r == arm.XZR {
		return "_sink"
	}
	return RegName(r)
}
