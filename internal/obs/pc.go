package obs

import (
	"scamv/internal/bir"
	"scamv/internal/expr"
)

// MPCModel is the program-counter security model of Molnar et al. (the
// paper's [36], discussed in §7): an attacker observes only the victim's
// control flow. It abstracts timing channels that depend on which branch
// executes, but says nothing about data caches. Pairing it with a refined
// model that also observes memory-access lines (i.e. M_ct as M2) lets
// Scam-V demonstrate that the PC model is unsound on any machine with a
// data cache: states with identical control flow but different load
// addresses are distinguishable.
type MPCModel struct {
	Geom Geometry
	// WithRefinement adds the cache-line observations of M_ct as the
	// refined model.
	WithRefinement bool
}

// Name implements ModelPair.
func (m *MPCModel) Name() string {
	if m.WithRefinement {
		return "Mpcmodel+Mct"
	}
	return "Mpcmodel"
}

// Refined implements ModelPair.
func (m *MPCModel) Refined() bool { return m.WithRefinement }

// Instrument implements ModelPair: branch guards are TagBase (the model
// under validation), access lines TagRefined (the refinement).
func (m *MPCModel) Instrument(p *bir.Program) (*bir.Program, error) {
	q := p.Clone()
	for _, b := range q.Blocks {
		var stmts []bir.Stmt
		for _, s := range b.Stmts {
			if addr := accessAddr(s); addr != nil && m.WithRefinement {
				stmts = append(stmts, &bir.Observe{
					Tag:  bir.TagRefined,
					Kind: "load",
					Cond: expr.True,
					Vals: []expr.BVExpr{m.Geom.LineOf(addr)},
				})
			}
			stmts = append(stmts, s)
		}
		if cj, ok := b.Term.(*bir.CondJmp); ok {
			stmts = append(stmts, &bir.Observe{
				Tag:  bir.TagBase,
				Kind: "branch",
				Cond: expr.True,
				Vals: []expr.BVExpr{boolToBV(cj.Cond)},
			})
		}
		b.Stmts = stmts
	}
	return q, nil
}

var _ ModelPair = (*MPCModel)(nil)
