package obs

import (
	"testing"

	"scamv/internal/micro"
)

// geometryOf adapts a zoo preset's cache shape to GeometryOf.
func geometryOf(t *testing.T, cfg micro.Config) Geometry {
	t.Helper()
	g, err := GeometryOf(cfg.LineBits, cfg.Sets)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGeometryOfPresets: the default platform's derived geometry is exactly
// the package default (the models were written for the A53-like core), and
// the other zoo platforms derive the geometry their set counts imply.
func TestGeometryOfPresets(t *testing.T) {
	if g := geometryOf(t, micro.A53Like()); g != DefaultGeometry {
		t.Errorf("A53Like geometry = %+v, want %+v", g, DefaultGeometry)
	}
	if g := geometryOf(t, micro.A72Like()); g != (Geometry{LineBits: 6, SetBits: 8}) {
		t.Errorf("A72Like geometry = %+v, want 256 sets = 8 set bits", g)
	}
	if g := geometryOf(t, micro.InOrderM()); g != (Geometry{LineBits: 6, SetBits: 5}) {
		t.Errorf("InOrderM geometry = %+v, want 32 sets = 5 set bits", g)
	}
	// Every preset must have a derivable geometry: power-of-two set counts
	// are part of the zoo contract.
	for _, name := range micro.PresetNames() {
		cfg, err := micro.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := GeometryOf(cfg.LineBits, cfg.Sets); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
}

func TestGeometryOfRejectsNonPowerOfTwo(t *testing.T) {
	for _, sets := range []int{0, -4, 3, 96, 127} {
		if _, err := GeometryOf(6, sets); err == nil {
			t.Errorf("GeometryOf(6, %d) accepted a non-power-of-two set count", sets)
		}
	}
}

// TestGeometryMatches: a geometry is native to exactly the platforms whose
// cache shape it was derived from.
func TestGeometryMatches(t *testing.T) {
	a53 := micro.A53Like()
	if !DefaultGeometry.Matches(a53.LineBits, a53.Sets) {
		t.Error("DefaultGeometry must match the default platform")
	}
	a72 := micro.A72Like()
	if DefaultGeometry.Matches(a72.LineBits, a72.Sets) {
		t.Error("DefaultGeometry must not match the A72-like shape")
	}
	if DefaultGeometry.Matches(6, 100) {
		t.Error("Matches must reject underivable shapes")
	}
}
