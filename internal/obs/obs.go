// Package obs defines the observational models of the paper as
// instrumentation passes over BIR programs, together with the supporting
// models used for coverage (§4.1).
//
// A ModelPair couples the model under validation M1 with the refined model
// M2 used to guide state-space exploration (paper §3). A single
// instrumentation pass inserts observations for M2 with tags distinguishing
// those that already belong to M1 (bir.TagBase) from those exclusive to M2
// (bir.TagRefined); the projection π of §5.1 is tag filtering, so symbolic
// execution runs once per program.
//
// Cache-channel observations are line-granular (the address right-shifted by
// the line-offset bits): an attacker probing the data cache distinguishes
// lines, not byte offsets. This follows the prior Scam-V work the paper
// builds on, where cache observations expose tag and set index.
package obs

import (
	"fmt"

	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/spec"
)

// Geometry describes the cache geometry shared between the observational
// models and the hardware simulator. The defaults match the Cortex-A53 L1D
// modelled in internal/micro: 64-byte lines, 128 sets.
type Geometry struct {
	LineBits uint // log2(line size in bytes)
	SetBits  uint // log2(number of sets)
}

// DefaultGeometry is the Cortex-A53 L1D geometry (64 B lines, 128 sets).
var DefaultGeometry = Geometry{LineBits: 6, SetBits: 7}

// LineOf returns the line identifier of an address (tag plus set index).
func (g Geometry) LineOf(addr expr.BVExpr) expr.BVExpr {
	return expr.Lshr(addr, expr.C64(uint64(g.LineBits)))
}

// SetOf returns the cache set index of an address as a SetBits-wide value.
func (g Geometry) SetOf(addr expr.BVExpr) expr.BVExpr {
	return expr.NewExtract(g.LineBits+g.SetBits-1, g.LineBits, addr)
}

// SetOfConst is SetOf on a concrete address.
func (g Geometry) SetOfConst(addr uint64) uint64 {
	return addr >> g.LineBits & ((1 << g.SetBits) - 1)
}

// ARRegion is the attacker-accessible region of the cache, expressed as an
// inclusive range of set indexes (paper §6.2: AR(v) ≜ lo ≤ line(v) ≤ hi).
type ARRegion struct {
	Lo, Hi uint64
	Geom   Geometry
}

// Pred builds the AR predicate over a symbolic address.
func (r ARRegion) Pred(addr expr.BVExpr) expr.BoolExpr {
	set := r.Geom.SetOf(addr)
	w := set.Width()
	return expr.AndB(
		expr.Ule(expr.NewConst(r.Lo, w), set),
		expr.Ule(set, expr.NewConst(r.Hi, w)),
	)
}

// Contains reports whether a concrete address falls in the region.
func (r ARRegion) Contains(addr uint64) bool {
	s := r.Geom.SetOfConst(addr)
	return r.Lo <= s && s <= r.Hi
}

func (r ARRegion) String() string { return fmt.Sprintf("AR[%d..%d]", r.Lo, r.Hi) }

// ModelPair is a (model under validation, refined model) pair realized as a
// single tagged instrumentation pass.
type ModelPair interface {
	// Name identifies the pair, e.g. "Mct+Mspec".
	Name() string
	// Refined reports whether M2 adds observations beyond M1 (i.e. whether
	// refinement guidance is active).
	Refined() bool
	// Instrument returns the tagged-observation version of p.
	Instrument(p *bir.Program) (*bir.Program, error)
}

// boolToBV renders a boolean observation value as a 1-bit vector.
func boolToBV(b expr.BoolExpr) expr.BVExpr {
	return expr.NewIte(b, expr.NewConst(1, 1), expr.NewConst(0, 1))
}

// ---------------------------------------------------------------------------
// M_part / M_part' — cache partitioning vs. prefetching (§4.2.1)
// ---------------------------------------------------------------------------

// MPart is the cache-partitioning model M_part: the line of every memory
// access inside the attacker-accessible region is observed. When
// WithRefinement is set it also carries the refined model M_part', which
// observes the line of every access unconditionally (TagRefined), so that
// generated state pairs must differ in accesses outside the region.
type MPart struct {
	AR             ARRegion
	WithRefinement bool
}

// Name implements ModelPair.
func (m *MPart) Name() string {
	if m.WithRefinement {
		return "Mpart+Mpart'"
	}
	return "Mpart"
}

// Refined implements ModelPair.
func (m *MPart) Refined() bool { return m.WithRefinement }

// Instrument implements ModelPair.
func (m *MPart) Instrument(p *bir.Program) (*bir.Program, error) {
	q := p.Clone()
	g := m.AR.Geom
	for _, b := range q.Blocks {
		var stmts []bir.Stmt
		for _, s := range b.Stmts {
			addr := accessAddr(s)
			if addr != nil {
				stmts = append(stmts, &bir.Observe{
					Tag:  bir.TagBase,
					Kind: "load",
					Cond: m.AR.Pred(addr),
					Vals: []expr.BVExpr{g.LineOf(addr)},
				})
				if m.WithRefinement {
					stmts = append(stmts, &bir.Observe{
						Tag:  bir.TagRefined,
						Kind: "load",
						Cond: expr.True,
						Vals: []expr.BVExpr{g.LineOf(addr)},
					})
				}
			}
			stmts = append(stmts, s)
		}
		b.Stmts = stmts
	}
	return q, nil
}

func accessAddr(s bir.Stmt) expr.BVExpr {
	switch v := s.(type) {
	case *bir.Load:
		return v.Addr
	case *bir.Store:
		return v.Addr
	}
	return nil
}

// ---------------------------------------------------------------------------
// M_ct family — constant time vs. speculation (§4.2.2, §6.5)
// ---------------------------------------------------------------------------

// SpecKind selects how speculative observations are generated.
type SpecKind uint8

const (
	// SpecNone disables speculative instrumentation: the pair is plain
	// M_ct with no refinement (the unguided baseline).
	SpecNone SpecKind = iota
	// SpecAll observes every transient load (M_spec) as TagRefined.
	SpecAll
	// SpecFirstBase observes every transient load, tagging the FIRST one
	// TagBase: the model under validation is then M_spec1 (M_ct plus the
	// first transient load) and the refinement is M_spec.
	SpecFirstBase
	// SpecStraightLine first rewrites unconditional direct branches into
	// tautologically-true conditional branches, then behaves like SpecAll:
	// this is M_spec' (§6.5, Template D).
	SpecStraightLine
)

// MCt is the constant-time model M_ct (program counter / branch guards plus
// the line of every architectural memory access), optionally paired with a
// speculative refinement.
type MCt struct {
	Geom Geometry
	Spec SpecKind
	// MaxShadowStmts bounds the speculation window of the refined model;
	// 0 uses the spec package default.
	MaxShadowStmts int
	// BaseSpecLoads generalizes M_spec1 to the M_specK family: the first
	// K transient loads of each shadow region belong to the model under
	// validation (TagBase) and only the remainder is refinement-exclusive.
	// SpecFirstBase with the zero value means K = 1. The automatic model
	// repair of §8 (scamv.RepairModel) searches this family for the
	// coarsest sound K.
	BaseSpecLoads int
}

func (m *MCt) baseSpecLoads() int {
	if m.Spec == SpecFirstBase && m.BaseSpecLoads == 0 {
		return 1
	}
	return m.BaseSpecLoads
}

// Name implements ModelPair.
func (m *MCt) Name() string {
	switch m.Spec {
	case SpecNone:
		return "Mct"
	case SpecAll:
		if k := m.baseSpecLoads(); k > 0 {
			return fmt.Sprintf("Mspec%d+Mspec", k)
		}
		return "Mct+Mspec"
	case SpecFirstBase:
		if k := m.baseSpecLoads(); k != 1 {
			return fmt.Sprintf("Mspec%d+Mspec", k)
		}
		return "Mspec1+Mspec"
	case SpecStraightLine:
		return "Mct+Mspec'"
	}
	return "Mct(?)"
}

// Refined implements ModelPair.
func (m *MCt) Refined() bool { return m.Spec != SpecNone }

// Instrument implements ModelPair.
func (m *MCt) Instrument(p *bir.Program) (*bir.Program, error) {
	clean := p
	if m.Spec == SpecStraightLine {
		clean = spec.Tautologize(p)
	}

	// Architectural (M1) observations: branch guards and access lines.
	q := clean.Clone()
	for _, b := range q.Blocks {
		var stmts []bir.Stmt
		for _, s := range b.Stmts {
			if addr := accessAddr(s); addr != nil {
				stmts = append(stmts, &bir.Observe{
					Tag:  bir.TagBase,
					Kind: "load",
					Cond: expr.True,
					Vals: []expr.BVExpr{m.Geom.LineOf(addr)},
				})
			}
			stmts = append(stmts, s)
		}
		if cj, ok := b.Term.(*bir.CondJmp); ok {
			stmts = append(stmts, &bir.Observe{
				Tag:  bir.TagBase,
				Kind: "branch",
				Cond: expr.True,
				Vals: []expr.BVExpr{boolToBV(cj.Cond)},
			})
		}
		b.Stmts = stmts
	}
	if m.Spec == SpecNone {
		return q, nil
	}

	observeLoad := func(addr expr.BVExpr, loadIdx int) *bir.Observe {
		tag := bir.TagRefined
		if loadIdx < m.baseSpecLoads() {
			tag = bir.TagBase
		}
		return &bir.Observe{
			Tag:  tag,
			Kind: "specload",
			Cond: expr.True,
			Vals: []expr.BVExpr{m.Geom.LineOf(addr)},
		}
	}
	return spec.Inline(q, clean, spec.Options{
		MaxShadowStmts: m.MaxShadowStmts,
		ObserveLoad:    observeLoad,
	})
}
