package obs

import (
	"fmt"

	"scamv/internal/expr"
	"scamv/internal/symexec"
)

// Support is a supporting observational model used for test coverage
// (paper §4.1): it induces a coarse, enumerable partition of the input
// space, and test cases are drawn from the classes round-robin.
//
// Path coverage (M_pc, §4.1.1) is built into the generator itself — the
// relation is split per path pair and pairs are explored round-robin — so
// MPc contributes no extra constraint.
type Support interface {
	Name() string
	// Classes returns the number of enumerable coverage classes.
	Classes() int
	// Constraint returns the class-k membership constraint over the
	// observations of the first state's path (already renamed to the _1
	// namespace).
	Constraint(k int, pathObs []symexec.Obs) expr.BoolExpr
}

// MPc is the path-enumeration support model M_pc: its classes are the path
// pairs, which the generator already enumerates round-robin, so it
// contributes a single trivial class.
type MPc struct{}

// Name implements Support.
func (MPc) Name() string { return "Mpc" }

// Classes implements Support.
func (MPc) Classes() int { return 1 }

// Constraint implements Support.
func (MPc) Constraint(int, []symexec.Obs) expr.BoolExpr { return expr.True }

// MLine is the cache-line enumeration support model M_line (§4.1.2): it
// observes the cache set index of memory accesses, partitioning states by
// the set their first access falls into. Enumerating the classes guarantees
// that tests cover every cache set — including the sets at the boundary of
// a cache partition, which is where prefetching leaks arise.
type MLine struct {
	Geom Geometry
}

// Name implements Support.
func (m MLine) Name() string { return "Mline" }

// Classes implements Support.
func (m MLine) Classes() int { return 1 << m.Geom.SetBits }

// Constraint implements Support. Class k requires the first observed
// memory access of s1 to fall into cache set k.
func (m MLine) Constraint(k int, pathObs []symexec.Obs) expr.BoolExpr {
	for _, o := range pathObs {
		if o.Kind != "load" || len(o.Vals) == 0 {
			continue
		}
		// Observation values for cache channels are line identifiers
		// (addr >> LineBits); the set index is their low SetBits bits.
		line := o.Vals[0]
		if line.Width() < m.Geom.SetBits {
			continue
		}
		set := expr.NewExtract(m.Geom.SetBits-1, 0, line)
		return expr.Eq(set, expr.NewConst(uint64(k), m.Geom.SetBits))
	}
	return expr.True
}

// MLineCoarse is the coarser variant of M_line the paper suggests for
// programs with many memory accesses (§4.2.1: "one can use a coarser
// supporting model, which observes only a few bits of the cache set
// index"): classes are identified by the top Bits bits of the set index.
type MLineCoarse struct {
	Geom Geometry
	// Bits is the number of high set-index bits observed (1..SetBits).
	Bits uint
}

// Name implements Support.
func (m MLineCoarse) Name() string { return "Mline-coarse" }

// Classes implements Support.
func (m MLineCoarse) Classes() int { return 1 << m.bits() }

func (m MLineCoarse) bits() uint {
	if m.Bits == 0 || m.Bits > m.Geom.SetBits {
		return 2
	}
	return m.Bits
}

// Constraint implements Support: class k pins the high bits of the first
// access's set index.
func (m MLineCoarse) Constraint(k int, pathObs []symexec.Obs) expr.BoolExpr {
	b := m.bits()
	for _, o := range pathObs {
		if o.Kind != "load" || len(o.Vals) == 0 {
			continue
		}
		line := o.Vals[0]
		if line.Width() < m.Geom.SetBits {
			continue
		}
		top := expr.NewExtract(m.Geom.SetBits-1, m.Geom.SetBits-b, line)
		return expr.Eq(top, expr.NewConst(uint64(k), b))
	}
	return expr.True
}

var (
	_ Support = MPc{}
	_ Support = MLine{}
	_ Support = MLineCoarse{}
)

// SupportName renders a support model list for reports ("Mpc & Mline").
func SupportName(s Support) string {
	if s == nil {
		return "Mpc"
	}
	if _, ok := s.(MPc); ok {
		return "Mpc"
	}
	return fmt.Sprintf("Mpc & %s", s.Name())
}
