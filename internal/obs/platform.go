package obs

import "fmt"

// This file ties observational-model geometry to matrix-campaign platforms.
// Every model here observes cache line and set indexes through a Geometry;
// a platform zoo (internal/micro presets) varies the cache shape per
// platform, and a model instantiated with one platform's geometry observes
// a *different* partition of addresses than another platform implements.
// That mismatch is not automatically an error — validating an A53-geometry
// model against a differently shaped core is exactly the kind of soundness
// question a matrix campaign asks — but it should be a deliberate choice,
// so the helpers below make the platform → geometry derivation explicit.

// GeometryOf derives a model geometry from a platform's L1D shape: the line
// size (as log2 bits) and the set count. The set count must be a power of
// two — set indexes are observed as bit extracts, which cannot express a
// non-power-of-two modulus.
func GeometryOf(lineBits uint, sets int) (Geometry, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return Geometry{}, fmt.Errorf("obs: set count %d is not a power of two", sets)
	}
	var setBits uint
	for s := sets; s > 1; s >>= 1 {
		setBits++
	}
	return Geometry{LineBits: lineBits, SetBits: setBits}, nil
}

// Matches reports whether this geometry describes a platform with the given
// L1D shape — the check a matrix campaign uses to tell which platforms the
// model's observations are native to.
func (g Geometry) Matches(lineBits uint, sets int) bool {
	pg, err := GeometryOf(lineBits, sets)
	return err == nil && pg == g
}
