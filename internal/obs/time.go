package obs

import (
	"scamv/internal/bir"
	"scamv/internal/expr"
)

// This file implements the variable-time arithmetic channel used in §3 to
// illustrate observation refinement: on a core with an early-terminating
// multiplier, execution time depends on the magnitude of multiply operands,
// which the constant-time model M_ct does not observe. The refined model
// M_time additionally observes the size class of every multiplier operand,
// steering test generation toward pairs of states whose multiplies take
// different time (the paper's classes C_{v,v',2^16·i}).

// SizeClass returns the 2-bit early-termination size class of a 64-bit
// value: 0 for < 2^16, 1 for < 2^32, 2 for < 2^48, 3 otherwise. It mirrors
// micro.MulExtraCycles.
func SizeClass(e expr.BVExpr) expr.BVExpr {
	cls := func(v uint64) expr.BVExpr { return expr.NewConst(v, 2) }
	return expr.NewIte(expr.Ult(e, expr.C64(1<<16)), cls(0),
		expr.NewIte(expr.Ult(e, expr.C64(1<<32)), cls(1),
			expr.NewIte(expr.Ult(e, expr.C64(1<<48)), cls(2), cls(3))))
}

// MTime couples M_ct (model under validation) with a refinement that
// observes the size class of every multiply's second operand — the operand
// that drives the early-terminating multiplier's latency.
type MTime struct {
	Geom           Geometry
	WithRefinement bool
}

// Name implements ModelPair.
func (m *MTime) Name() string {
	if m.WithRefinement {
		return "Mct+Mtime"
	}
	return "Mct"
}

// Refined implements ModelPair.
func (m *MTime) Refined() bool { return m.WithRefinement }

// Instrument implements ModelPair: the architectural M_ct observations plus
// a refined size-class observation per multiply.
func (m *MTime) Instrument(p *bir.Program) (*bir.Program, error) {
	q := p.Clone()
	for _, b := range q.Blocks {
		var stmts []bir.Stmt
		for _, s := range b.Stmts {
			if addr := accessAddr(s); addr != nil {
				stmts = append(stmts, &bir.Observe{
					Tag:  bir.TagBase,
					Kind: "load",
					Cond: expr.True,
					Vals: []expr.BVExpr{m.Geom.LineOf(addr)},
				})
			}
			if m.WithRefinement {
				if a, ok := s.(*bir.Assign); ok {
					for _, operand := range mulOperands(a.Rhs) {
						stmts = append(stmts, &bir.Observe{
							Tag:  bir.TagRefined,
							Kind: "mulsize",
							Cond: expr.True,
							Vals: []expr.BVExpr{SizeClass(operand)},
						})
					}
				}
			}
			stmts = append(stmts, s)
		}
		if cj, ok := b.Term.(*bir.CondJmp); ok {
			stmts = append(stmts, &bir.Observe{
				Tag:  bir.TagBase,
				Kind: "branch",
				Cond: expr.True,
				Vals: []expr.BVExpr{boolToBV(cj.Cond)},
			})
		}
		b.Stmts = stmts
	}
	return q, nil
}

// mulOperands collects the latency-relevant (second) operands of every
// multiplication in an expression.
func mulOperands(e expr.Expr) []expr.BVExpr {
	var out []expr.BVExpr
	var walk func(x expr.Expr)
	walk = func(x expr.Expr) {
		switch v := x.(type) {
		case *expr.Bin:
			if v.Op == expr.OpMul {
				out = append(out, v.Y)
			}
			walk(v.X)
			walk(v.Y)
		case *expr.Un:
			walk(v.X)
		case *expr.Extract:
			walk(v.X)
		case *expr.Ext:
			walk(v.X)
		case *expr.Ite:
			walk(v.Cond)
			walk(v.Then)
			walk(v.Else)
		case *expr.Cmp:
			walk(v.X)
			walk(v.Y)
		case *expr.Nary:
			for _, a := range v.Args {
				walk(a)
			}
		case *expr.NotBExpr:
			walk(v.X)
		}
	}
	walk(e)
	return out
}

var _ ModelPair = (*MTime)(nil)
