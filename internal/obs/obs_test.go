package obs

import (
	"math/rand"
	"testing"

	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/gen"
	"scamv/internal/lifter"
	"scamv/internal/symexec"
)

func liftTemplateA(t *testing.T) *bir.Program {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	p := gen.TemplateA{}.Generate(r, 0)
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestGeometry(t *testing.T) {
	g := DefaultGeometry
	a := expr.NewAssignment()
	a.BV["a"] = 0x12345
	if got := a.EvalBV(g.LineOf(expr.V64("a"))); got != 0x12345>>6 {
		t.Errorf("line: %#x", got)
	}
	if got := a.EvalBV(g.SetOf(expr.V64("a"))); got != (0x12345>>6)&127 {
		t.Errorf("set: %#x", got)
	}
	if g.SetOfConst(0x12345) != (0x12345>>6)&127 {
		t.Error("SetOfConst mismatch")
	}
}

func TestARRegion(t *testing.T) {
	ar := ARRegion{Lo: 61, Hi: 127, Geom: DefaultGeometry}
	for _, tc := range []struct {
		set  uint64
		want bool
	}{{0, false}, {60, false}, {61, true}, {127, true}} {
		addr := tc.set << 6
		if ar.Contains(addr) != tc.want {
			t.Errorf("Contains(set %d) != %v", tc.set, tc.want)
		}
		a := expr.NewAssignment()
		a.BV["p"] = addr
		if got := a.EvalBool(ar.Pred(expr.V64("p"))); got != tc.want {
			t.Errorf("Pred(set %d) = %v", tc.set, got)
		}
	}
	// Wrap-around: set index is mod 128, so a second "page" of sets works.
	a := expr.NewAssignment()
	a.BV["p"] = (128 + 61) << 6
	if !a.EvalBool(ar.Pred(expr.V64("p"))) {
		t.Error("set index must wrap modulo the number of sets")
	}
}

func TestMPartInstrumentation(t *testing.T) {
	bp := liftTemplateA(t)
	ar := ARRegion{Lo: 61, Hi: 127, Geom: DefaultGeometry}
	m := &MPart{AR: ar, WithRefinement: true}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Template A has two loads on the taken path: each should have one
	// conditional base observation and one unconditional refined one.
	var taken *symexec.Path
	for _, p := range paths {
		if len(p.Obs) > 2 {
			taken = p
		}
	}
	if taken == nil {
		t.Fatal("no path with more than 2 observations")
	}
	if got := len(taken.BaseObs()); got != 2 {
		t.Errorf("base obs: %d", got)
	}
	if got := len(taken.RefinedObs()); got != 2 {
		t.Errorf("refined obs: %d", got)
	}
	for _, o := range taken.RefinedObs() {
		if o.Cond != expr.True {
			t.Errorf("refined observation should be unconditional, got %s", o.Cond)
		}
	}
	for _, o := range taken.BaseObs() {
		if o.Cond == expr.True {
			t.Errorf("base M_part observation should be AR-conditional")
		}
	}
}

func TestMPartWithoutRefinement(t *testing.T) {
	bp := liftTemplateA(t)
	m := &MPart{AR: ARRegion{Lo: 61, Hi: 127, Geom: DefaultGeometry}}
	if m.Refined() {
		t.Error("refinement flag")
	}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if len(p.RefinedObs()) != 0 {
			t.Error("unrefined M_part must not add refined observations")
		}
	}
}

func TestMCtSpecInstrumentation(t *testing.T) {
	bp := liftTemplateA(t)
	m := &MCt{Geom: DefaultGeometry, Spec: SpecAll}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths: %d", len(paths))
	}
	// The path NOT taking the branch body must carry a refined observation
	// of the transient body load; its address uses the shadow copy of the
	// architectural registers.
	var notTaken, taken *symexec.Path
	for _, p := range paths {
		if len(p.BaseObs()) == 2 { // load + branch (body not executed)
			notTaken = p
		} else {
			taken = p
		}
	}
	if notTaken == nil || taken == nil {
		t.Fatalf("could not classify paths: %d and %d base obs",
			len(paths[0].BaseObs()), len(paths[1].BaseObs()))
	}
	if got := len(notTaken.RefinedObs()); got != 1 {
		t.Fatalf("not-taken path refined obs: %d", got)
	}
	// Evaluate the transient observation: it must equal the line of the
	// body load computed from the initial state (shadow copies).
	ro := notTaken.RefinedObs()[0]
	if ro.Kind != "specload" {
		t.Errorf("kind: %s", ro.Kind)
	}
	// The taken path has a shadow region from the empty else branch: no
	// loads there, hence no refined observations.
	if got := len(taken.RefinedObs()); got != 0 {
		t.Errorf("taken path refined obs: %d", got)
	}
}

func TestMSpec1TagsFirstLoadBase(t *testing.T) {
	// Template C has two dependent loads in the body: under M_spec1 the
	// first transient load is part of the model under validation.
	r := rand.New(rand.NewSource(9))
	p := gen.TemplateC{}.Generate(r, 0)
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	m := &MCt{Geom: DefaultGeometry, Spec: SpecFirstBase}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range paths {
		var specBase, specRefined int
		for _, o := range p.Obs {
			if o.Kind != "specload" {
				continue
			}
			if o.Tag == bir.TagBase {
				specBase++
			} else {
				specRefined++
			}
		}
		if specBase == 1 && specRefined == 1 {
			found = true
		}
	}
	if !found {
		t.Error("expected a path with one base and one refined transient load")
	}
}

func TestMCtStraightLine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := gen.TemplateD{}.Generate(r, 0)
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	m := &MCt{Geom: DefaultGeometry, Spec: SpecStraightLine}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The tautologized branch never forks (guard is constant true), so
	// there is exactly one path, and it carries refined observations of the
	// straight-line loads after the jump.
	if len(paths) != 1 {
		t.Fatalf("paths: %d", len(paths))
	}
	if len(paths[0].RefinedObs()) == 0 {
		t.Error("straight-line shadow loads should be observed")
	}
}

func TestSupportMLine(t *testing.T) {
	m := MLine{Geom: DefaultGeometry}
	if m.Classes() != 128 {
		t.Fatalf("classes: %d", m.Classes())
	}
	line := expr.Lshr(expr.V64("a_1"), expr.C64(6))
	obsList := []symexec.Obs{{Kind: "load", Cond: expr.True, Vals: []expr.BVExpr{line}}}
	c := m.Constraint(61, obsList)
	a := expr.NewAssignment()
	a.BV["a_1"] = 61 << 6
	if !a.EvalBool(c) {
		t.Error("address in set 61 should satisfy class 61")
	}
	a.BV["a_1"] = 62 << 6
	if a.EvalBool(c) {
		t.Error("address in set 62 should not satisfy class 61")
	}
	// No loads: constraint trivially true.
	if m.Constraint(5, nil) != expr.True {
		t.Error("no-load constraint should be true")
	}
}

func TestModelNames(t *testing.T) {
	cases := []struct {
		m    ModelPair
		want string
	}{
		{&MPart{}, "Mpart"},
		{&MPart{WithRefinement: true}, "Mpart+Mpart'"},
		{&MCt{}, "Mct"},
		{&MCt{Spec: SpecAll}, "Mct+Mspec"},
		{&MCt{Spec: SpecFirstBase}, "Mspec1+Mspec"},
		{&MCt{Spec: SpecStraightLine}, "Mct+Mspec'"},
	}
	for _, c := range cases {
		if c.m.Name() != c.want {
			t.Errorf("name %q != %q", c.m.Name(), c.want)
		}
	}
}

func TestMTimeInstrumentation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := gen.TemplateMul{}.Generate(r, 0)
	bp, err := lifter.Lift(p)
	if err != nil {
		t.Fatal(err)
	}
	m := &MTime{Geom: DefaultGeometry, WithRefinement: true}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := paths[0]
	if len(path.BaseObs()) == 0 {
		t.Error("the load must be observed by M_ct")
	}
	ro := path.RefinedObs()
	if len(ro) == 0 {
		t.Fatal("multiply size classes must be observed by the refinement")
	}
	for _, o := range ro {
		if o.Kind != "mulsize" {
			t.Errorf("kind: %s", o.Kind)
		}
		if o.Vals[0].Width() != 2 {
			t.Errorf("size class width: %d", o.Vals[0].Width())
		}
	}
}

func TestSizeClass(t *testing.T) {
	for _, tc := range []struct {
		v    uint64
		want uint64
	}{{0, 0}, {1<<16 - 1, 0}, {1 << 16, 1}, {1<<32 - 1, 1}, {1 << 32, 2}, {1 << 48, 3}, {^uint64(0), 3}} {
		a := expr.NewAssignment()
		a.BV["v"] = tc.v
		if got := a.EvalBV(SizeClass(expr.V64("v"))); got != tc.want {
			t.Errorf("SizeClass(%#x) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestMPCModelInstrumentation(t *testing.T) {
	bp := liftTemplateA(t)
	m := &MPCModel{Geom: DefaultGeometry, WithRefinement: true}
	q, err := m.Instrument(bp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := symexec.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		for _, o := range p.BaseObs() {
			if o.Kind != "branch" {
				t.Errorf("PC model must only observe branches, got %s", o.Kind)
			}
		}
		if len(p.RefinedObs()) == 0 {
			t.Error("refinement must observe the loads")
		}
	}
}

func TestMLineCoarse(t *testing.T) {
	m := MLineCoarse{Geom: DefaultGeometry, Bits: 2}
	if m.Classes() != 4 {
		t.Fatalf("classes: %d", m.Classes())
	}
	line := expr.Lshr(expr.V64("a_1"), expr.C64(6))
	obsList := []symexec.Obs{{Kind: "load", Cond: expr.True, Vals: []expr.BVExpr{line}}}
	// Class 3 = top quarter of the 128 sets (96..127).
	c := m.Constraint(3, obsList)
	a := expr.NewAssignment()
	a.BV["a_1"] = 100 << 6 // set 100
	if !a.EvalBool(c) {
		t.Error("set 100 belongs to the top quarter")
	}
	a.BV["a_1"] = 50 << 6
	if a.EvalBool(c) {
		t.Error("set 50 does not belong to the top quarter")
	}
	// Degenerate Bits values fall back to a sane default.
	if (MLineCoarse{Geom: DefaultGeometry}).Classes() != 4 {
		t.Error("default bits")
	}
}
