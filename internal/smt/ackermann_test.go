// Ackermann memory tests backed by the differential oracle: every Sat model
// is re-validated by evaluating the original (pre-elimination) formulas
// concretely via oracle.CheckSMTModel. Package smt_test because oracle
// imports smt.
package smt_test

import (
	"testing"

	"scamv/internal/expr"
	"scamv/internal/oracle"
	"scamv/internal/sat"
	"scamv/internal/smt"
)

func checkSat(t *testing.T, fs ...expr.BoolExpr) *expr.Assignment {
	t.Helper()
	s := smt.New(smt.Options{Seed: 1})
	for _, f := range fs {
		s.Assert(f)
	}
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("expected Sat, got %v", st)
	}
	m := s.Model()
	if err := oracle.CheckSMTModel(m, fs...); err != nil {
		t.Fatalf("model unsound: %v", err)
	}
	return m
}

func checkUnsat(t *testing.T, fs ...expr.BoolExpr) {
	t.Helper()
	s := smt.New(smt.Options{Seed: 1})
	for _, f := range fs {
		s.Assert(f)
	}
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("expected Unsat, got %v", st)
	}
}

// TestAckermannEqualAddresses: two reads at symbolic addresses constrained
// equal must alias — forcing their values apart is contradictory, and the
// satisfiable variant produces a model whose memory image backs both reads.
func TestAckermannEqualAddresses(t *testing.T) {
	mem := expr.NewMemVar("MEM")
	p, q := expr.V64("p"), expr.V64("q")
	eq := expr.Eq(p, q)
	checkUnsat(t,
		eq,
		expr.Eq(expr.NewRead(mem, p), expr.C64(1)),
		expr.Eq(expr.NewRead(mem, q), expr.C64(2)),
	)
	m := checkSat(t,
		eq,
		expr.Eq(expr.NewRead(mem, p), expr.C64(7)),
		expr.Eq(expr.NewRead(mem, q), expr.C64(7)),
	)
	if m.BV["p"] != m.BV["q"] {
		t.Fatalf("addresses not aliased: p=%#x q=%#x", m.BV["p"], m.BV["q"])
	}
	if got := m.Mem["MEM"].Get(m.BV["p"]); got != 7 {
		t.Fatalf("memory image at aliased address: got %#x, want 7", got)
	}
}

// TestAckermannUnequalAddresses: with the addresses forced apart the two
// reads are independent, so distinct values are satisfiable.
func TestAckermannUnequalAddresses(t *testing.T) {
	mem := expr.NewMemVar("MEM")
	p, q := expr.V64("p"), expr.V64("q")
	m := checkSat(t,
		expr.NotB(expr.Eq(p, q)),
		expr.Eq(expr.NewRead(mem, p), expr.C64(1)),
		expr.Eq(expr.NewRead(mem, q), expr.C64(2)),
	)
	if m.BV["p"] == m.BV["q"] {
		t.Fatal("addresses collapsed despite disequality constraint")
	}
	img := m.Mem["MEM"]
	if img.Get(m.BV["p"]) != 1 || img.Get(m.BV["q"]) != 2 {
		t.Fatalf("memory image disagrees with reads: [p]=%#x [q]=%#x",
			img.Get(m.BV["p"]), img.Get(m.BV["q"]))
	}
}

// TestAckermannReadOverWriteChain pushes a read through a long store chain
// with a symbolic address: the read must see the latest store that aliases
// it, concrete stores at other addresses notwithstanding.
func TestAckermannReadOverWriteChain(t *testing.T) {
	base := expr.NewMemVar("MEM")
	a := expr.V64("a")
	var chain expr.MemExpr = base
	for i := 0; i < 8; i++ {
		chain = expr.NewStore(chain, expr.C64(uint64(0x1000+8*i)), expr.C64(uint64(100+i)))
	}
	// A symbolic store sits in the middle of rebuilding the chain.
	chain = expr.NewStore(chain, a, expr.C64(0xbeef))
	chain = expr.NewStore(chain, expr.C64(0x1000), expr.C64(0xaa))

	// Read back at a: if a == 0x1000 the later concrete store wins, so
	// demanding 0xbeef forces a ≠ 0x1000.
	m := checkSat(t,
		expr.Eq(expr.NewRead(chain, a), expr.C64(0xbeef)),
	)
	if m.BV["a"] == 0x1000 {
		t.Fatal("a == 0x1000 would be shadowed by the later store")
	}
	// And pinning a to the shadowed slot makes that same demand Unsat.
	checkUnsat(t,
		expr.Eq(a, expr.C64(0x1000)),
		expr.Eq(expr.NewRead(chain, a), expr.C64(0xbeef)),
	)
	// Reads of the untouched concrete slots see the original chain values.
	m = checkSat(t,
		expr.Eq(a, expr.C64(0x2000)),
		expr.Eq(expr.NewRead(chain, expr.C64(0x1008)), expr.C64(101)),
		expr.Eq(expr.NewRead(chain, expr.C64(0x1000)), expr.C64(0xaa)),
	)
	if m.BV["a"] != 0x2000 {
		t.Fatalf("a pinned to %#x, model says %#x", 0x2000, m.BV["a"])
	}
}

// TestAckermannDefaultZeroRead: under the default (zero) phase, a read of a
// never-written address is unconstrained but the solver's minimal-model
// heuristic drives the fresh Ackermann variable to zero, and the
// reconstructed memory image agrees.
func TestAckermannDefaultZeroRead(t *testing.T) {
	mem := expr.NewMemVar("MEM")
	p := expr.V64("p")
	f := expr.Eq(p, expr.C64(0x4000))
	s := smt.New(smt.Options{Seed: 1})
	s.Assert(f)
	// Mention the read so the solver introduces its Ackermann variable.
	g := expr.Ule(expr.NewRead(mem, p), expr.C64(^uint64(0)))
	s.Assert(g)
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("expected Sat, got %v", st)
	}
	m := s.Model()
	if err := oracle.CheckSMTModel(m, f, g); err != nil {
		t.Fatalf("model unsound: %v", err)
	}
	if got := m.Mem["MEM"].Get(0x4000); got != 0 {
		t.Fatalf("unconstrained read under default-zero phase: got %#x, want 0", got)
	}
}
