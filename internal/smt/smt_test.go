package smt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

func solveOne(t *testing.T, fs ...expr.BoolExpr) *expr.Assignment {
	t.Helper()
	s := New(Options{Seed: 1})
	for _, f := range fs {
		s.Assert(f)
	}
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("expected sat, got %v", st)
	}
	m := s.Model()
	for _, f := range fs {
		if !m.EvalBool(f) {
			t.Fatalf("model does not satisfy %s", f)
		}
	}
	return m
}

func TestArithmetic(t *testing.T) {
	x, y := expr.V64("x"), expr.V64("y")
	m := solveOne(t,
		expr.Eq(expr.Add(x, y), expr.C64(100)),
		expr.Eq(expr.Sub(x, y), expr.C64(2)),
	)
	if m.BV["x"]+m.BV["y"] != 100 || m.BV["x"]-m.BV["y"] != 2 {
		t.Fatalf("got x=%d y=%d", m.BV["x"], m.BV["y"])
	}
}

func TestUnsat(t *testing.T) {
	s := New(Options{Seed: 1})
	x := expr.V64("x")
	s.Assert(expr.Ult(x, expr.C64(5)))
	s.Assert(expr.Ult(expr.C64(10), x))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("expected unsat, got %v", st)
	}
}

func TestSignedVsUnsigned(t *testing.T) {
	x := expr.V64("x")
	m := solveOne(t,
		expr.Slt(x, expr.C64(0)),     // x negative
		expr.Ult(expr.C64(1<<40), x), // but huge unsigned
		expr.Eq(expr.And(x, expr.C64(0xff)), expr.C64(0x7f)),
	)
	if int64(m.BV["x"]) >= 0 {
		t.Fatalf("x should be negative, got %#x", m.BV["x"])
	}
	if m.BV["x"]&0xff != 0x7f {
		t.Fatalf("byte constraint violated: %#x", m.BV["x"])
	}
}

func TestShifts(t *testing.T) {
	x := expr.V64("x")
	sh := expr.V64("sh")
	m := solveOne(t,
		expr.Eq(expr.Shl(x, sh), expr.C64(0x100)),
		expr.Eq(sh, expr.C64(4)),
	)
	if m.BV["x"]<<4 != 0x100 {
		t.Fatalf("shift model wrong: x=%#x", m.BV["x"])
	}
}

func TestNarrowWidth(t *testing.T) {
	a := expr.NewVar("a", 8)
	m := solveOne(t,
		expr.Eq(expr.Add(a, expr.NewConst(200, 8)), expr.NewConst(10, 8)),
	)
	if (m.BV["a"]+200)&0xff != 10 {
		t.Fatalf("8-bit wraparound model wrong: a=%d", m.BV["a"])
	}
}

func TestMemoryBasic(t *testing.T) {
	mem := expr.NewMemVar("mem")
	p := expr.V64("p")
	m := solveOne(t,
		expr.Eq(expr.NewRead(mem, p), expr.C64(77)),
		expr.Eq(p, expr.C64(0x4000)),
	)
	mm := m.Mem["mem"]
	if mm == nil || mm.Get(0x4000) != 77 {
		t.Fatalf("memory model wrong: %v", mm)
	}
}

func TestMemoryAckermann(t *testing.T) {
	// Two reads at addresses forced equal must yield equal values.
	mem := expr.NewMemVar("mem")
	p, q := expr.V64("p"), expr.V64("q")
	s := New(Options{Seed: 1})
	s.Assert(expr.Eq(p, q))
	s.Assert(expr.Eq(expr.NewRead(mem, p), expr.C64(1)))
	s.Assert(expr.Eq(expr.NewRead(mem, q), expr.C64(2)))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("functional consistency violated: got %v", st)
	}
}

func TestMemoryDistinctReads(t *testing.T) {
	mem := expr.NewMemVar("mem")
	p, q := expr.V64("p"), expr.V64("q")
	m := solveOne(t,
		expr.Neq(p, q),
		expr.Eq(expr.NewRead(mem, p), expr.C64(1)),
		expr.Eq(expr.NewRead(mem, q), expr.C64(2)),
	)
	mm := m.Mem["mem"]
	if mm.Get(m.BV["p"]) != 1 || mm.Get(m.BV["q"]) != 2 {
		t.Fatalf("memory reconstruction wrong: p=%#x q=%#x mem=%v",
			m.BV["p"], m.BV["q"], mm.Data)
	}
}

func TestReadOverWrite(t *testing.T) {
	mem := expr.NewMemVar("mem")
	p := expr.V64("p")
	st := expr.NewStore(mem, expr.C64(0x100), expr.C64(55))
	// Read at p of mem[0x100 := 55]: if p = 0x100 result must be 55.
	s := New(Options{Seed: 1})
	s.Assert(expr.Eq(p, expr.C64(0x100)))
	s.Assert(expr.Neq(expr.NewRead(st, p), expr.C64(55)))
	if got := s.Check(); got != sat.Unsat {
		t.Fatalf("read-over-write should force 55, got %v", got)
	}
}

func TestNestedRead(t *testing.T) {
	// mem[mem[x]] = 9 with mem[x] = 0x2000.
	mem := expr.NewMemVar("mem")
	x := expr.V64("x")
	inner := expr.NewRead(mem, x)
	outer := expr.NewRead(mem, inner)
	m := solveOne(t,
		expr.Eq(x, expr.C64(0x1000)),
		expr.Eq(inner, expr.C64(0x2000)),
		expr.Eq(outer, expr.C64(9)),
	)
	mm := m.Mem["mem"]
	if mm.Get(0x1000) != 0x2000 || mm.Get(0x2000) != 9 {
		t.Fatalf("nested read memory wrong: %v", mm.Data)
	}
}

func TestDefaultModelIsZero(t *testing.T) {
	// Z3-emulation: unconstrained parts of the model default to zero.
	x, y := expr.V64("x"), expr.V64("y")
	m := solveOne(t, expr.Eq(x, x), expr.Ule(y, expr.C64(0xffff)))
	if m.BV["y"] != 0 {
		t.Fatalf("default-phase model should zero y, got %#x", m.BV["y"])
	}
}

func TestEnumerationBlocking(t *testing.T) {
	x := expr.NewVar("x", 4)
	s := New(Options{Seed: 1})
	s.Assert(expr.Ult(x, expr.NewConst(5, 4)))
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		st := s.Check()
		if st != sat.Sat {
			break
		}
		m := s.Model()
		v := m.BV["x"]
		if seen[v] {
			t.Fatalf("value %d repeated", v)
		}
		if v >= 5 {
			t.Fatalf("value %d out of range", v)
		}
		seen[v] = true
		if !s.BlockVars([]string{"x"}) {
			break
		}
	}
	if len(seen) != 5 {
		t.Fatalf("expected 5 models, got %d", len(seen))
	}
}

func TestIteBlasting(t *testing.T) {
	c := expr.V64("c")
	x := expr.NewIte(expr.Eq(c, expr.C64(0)), expr.C64(10), expr.C64(20))
	m := solveOne(t,
		expr.Eq(x, expr.C64(20)),
	)
	if m.BV["c"] == 0 {
		t.Fatal("c must be nonzero to select 20")
	}
}

func TestQuickSolverSoundness(t *testing.T) {
	// Property: for random linear constraints that are satisfiable by
	// construction, the solver finds a model and the model checks out.
	rng := rand.New(rand.NewSource(3))
	f := func(a, b uint64) bool {
		x, y := expr.V64("x"), expr.V64("y")
		target := a + b
		s := New(Options{Seed: int64(a ^ b)})
		s.Assert(expr.Eq(expr.Add(x, y), expr.C64(target)))
		s.Assert(expr.Eq(x, expr.C64(a)))
		if s.Check() != sat.Sat {
			return false
		}
		m := s.Model()
		return m.BV["x"] == a && m.BV["x"]+m.BV["y"] == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMulBlasting(t *testing.T) {
	x := expr.NewVar("x", 16)
	m := solveOne(t,
		expr.Eq(expr.Mul(x, expr.NewConst(3, 16)), expr.NewConst(21, 16)),
		expr.Ult(x, expr.NewConst(100, 16)),
	)
	if m.BV["x"]*3%(1<<16) != 21 {
		t.Fatalf("mul model wrong: x=%d", m.BV["x"])
	}
}

func TestAshrBlasting(t *testing.T) {
	x := expr.NewVar("x", 8)
	m := solveOne(t,
		expr.Eq(expr.Ashr(x, expr.NewConst(4, 8)), expr.NewConst(0xff, 8)),
		expr.Eq(expr.And(x, expr.NewConst(0x0f, 8)), expr.NewConst(0x05, 8)),
	)
	v := m.BV["x"]
	if v>>7&1 != 1 || v&0x0f != 5 {
		t.Fatalf("ashr model wrong: %#x", v)
	}
}

func TestUnknownUnderConflictBudget(t *testing.T) {
	// A hard multiplication inversion with a tiny conflict budget returns
	// Unknown rather than hanging.
	s := New(Options{Seed: 1, MaxConflicts: 5})
	x, y := expr.V64("x"), expr.V64("y")
	s.Assert(expr.Eq(expr.Mul(x, y), expr.C64(0xdeadbeefcafebabe)))
	s.Assert(expr.Ult(expr.C64(1), x))
	s.Assert(expr.Ult(expr.C64(1), y))
	if got := s.Check(); got != sat.Unknown {
		t.Fatalf("expected unknown, got %v", got)
	}
}

func TestVarNamesAndReadVars(t *testing.T) {
	s := New(Options{Seed: 1})
	mem := expr.NewMemVar("MEM")
	s.Assert(expr.Eq(expr.NewRead(mem, expr.V64("p")), expr.C64(1)))
	s.Assert(expr.Eq(expr.NewRead(mem, expr.V64("q")), expr.C64(2)))
	names := s.VarNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"p", "q", "$rd_MEM_1", "$rd_MEM_2"} {
		if !found[want] {
			t.Errorf("missing %s in %v", want, names)
		}
	}
	if got := s.ReadVarNames("MEM"); len(got) != 2 {
		t.Errorf("read vars: %v", got)
	}
}

func TestBlockVarsNothingEncoded(t *testing.T) {
	s := New(Options{Seed: 1})
	s.Assert(expr.True)
	if s.Check() != sat.Sat {
		t.Fatal("trivially sat")
	}
	if s.BlockVars([]string{"nonexistent"}) {
		t.Error("blocking unencoded variables should report false")
	}
}

func TestStatsProgress(t *testing.T) {
	s := New(Options{Seed: 1})
	x := expr.V64("x")
	s.Assert(expr.Eq(expr.Add(x, expr.C64(1)), expr.C64(100)))
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	st := s.Stats()
	if st.Decisions == 0 && st.Propagations == 0 {
		t.Error("no search activity recorded")
	}
	if st.BlastMisses == 0 {
		t.Error("asserting a fresh formula must miss the blast cache")
	}
}

func TestStatsCountersAndDeltas(t *testing.T) {
	mem := expr.NewMemVar("MEM")
	s := New(Options{Seed: 1})
	// Three reads of one memory at distinct symbolic addresses: 3 Ackermann
	// variables and 1+2 = 3 pairwise functional-consistency constraints.
	for _, name := range []string{"a", "b", "c"} {
		s.Assert(expr.Ule(expr.NewRead(mem, expr.V64(name)), expr.C64(255)))
	}
	st := s.Stats()
	if st.AckermannReads != 3 {
		t.Errorf("AckermannReads = %d, want 3", st.AckermannReads)
	}
	if st.AckermannConstraints != 3 {
		t.Errorf("AckermannConstraints = %d, want 3 (pairwise over 3 reads)", st.AckermannConstraints)
	}
	before := st
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	d := s.Stats().Sub(before)
	if d.AckermannReads != 0 || d.AckermannConstraints != 0 {
		t.Errorf("Check must not add Ackermann work: %+v", d)
	}
	if d.Propagations == 0 && d.Decisions == 0 {
		t.Error("Check delta shows no search activity")
	}
	// Re-asserting a structurally identical formula hits the blast cache.
	preHits := s.Stats().BlastHits
	s.Assert(expr.Ule(expr.NewRead(mem, expr.V64("a")), expr.C64(255)))
	if s.Stats().BlastHits <= preHits {
		t.Error("re-asserted formula should hit the blast cache")
	}
}

func TestSharedReadAcrossAssertions(t *testing.T) {
	// The same Read node asserted twice must map to one Ackermann variable.
	mem := expr.NewMemVar("MEM")
	rd := expr.NewRead(mem, expr.V64("p"))
	s := New(Options{Seed: 1})
	s.Assert(expr.Ule(rd, expr.C64(100)))
	s.Assert(expr.Ule(expr.C64(10), rd))
	if got := len(s.ReadVarNames("MEM")); got != 1 {
		t.Errorf("read deduplication failed: %d vars", got)
	}
	if s.Check() != sat.Sat {
		t.Fatal("sat expected")
	}
	m := s.Model()
	v := m.Mem["MEM"].Get(m.BV["p"])
	if v < 10 || v > 100 {
		t.Errorf("read value out of range: %d", v)
	}
}

// TestExhaustiveSmallWidth checks solver verdicts against exhaustive
// enumeration: for several fixed one-variable formulas over 8-bit values,
// the solver must agree with brute force about satisfiability, and its
// model must be one of the brute-force solutions.
func TestExhaustiveSmallWidth(t *testing.T) {
	x := expr.NewVar("x", 8)
	c := func(v uint64) expr.BVExpr { return expr.NewConst(v, 8) }
	formulas := []struct {
		name string
		f    expr.BoolExpr
		ok   func(v uint64) bool
	}{
		{"linear", expr.Eq(expr.Add(expr.Mul(x, c(3)), c(7)), c(52)),
			func(v uint64) bool { return (v*3+7)&0xff == 52 }},
		{"masked", expr.AndB(expr.Eq(expr.And(x, c(0xf0)), c(0x30)), expr.Ult(x, c(0x38))),
			func(v uint64) bool { return v&0xf0 == 0x30 && v < 0x38 }},
		{"signed", expr.AndB(expr.Slt(x, c(0)), expr.Eq(expr.Lshr(x, c(5)), c(7))),
			func(v uint64) bool { return int8(v) < 0 && v>>5 == 7 }},
		{"xor-shift", expr.Eq(expr.Xor(x, expr.Shl(x, c(1))), c(0x0c)),
			func(v uint64) bool { return (v^(v<<1))&0xff == 0x0c }},
		{"unsat", expr.AndB(expr.Ult(x, c(4)), expr.Ult(c(9), x)),
			func(v uint64) bool { return false }},
	}
	for _, tc := range formulas {
		want := false
		for v := uint64(0); v < 256; v++ {
			if tc.ok(v) {
				want = true
				break
			}
		}
		s := New(Options{Seed: 5})
		s.Assert(tc.f)
		got := s.Check()
		if want && got != sat.Sat {
			t.Errorf("%s: expected sat, got %v", tc.name, got)
			continue
		}
		if !want && got != sat.Unsat {
			t.Errorf("%s: expected unsat, got %v", tc.name, got)
			continue
		}
		if want {
			v := s.Model().BV["x"]
			if !tc.ok(v) {
				t.Errorf("%s: model x=%#x is not a solution", tc.name, v)
			}
		}
	}
}

// TestExhaustiveModelEnumeration enumerates ALL models of a small formula
// and compares the solution set against brute force.
func TestExhaustiveModelEnumeration(t *testing.T) {
	x := expr.NewVar("x", 6)
	f := expr.Eq(expr.And(x, expr.NewConst(0b101, 6)), expr.NewConst(0b101, 6))
	s := New(Options{Seed: 2})
	s.Assert(f)
	got := map[uint64]bool{}
	for s.Check() == sat.Sat {
		v := s.Model().BV["x"]
		if got[v] {
			t.Fatalf("model %#x repeated", v)
		}
		got[v] = true
		if len(got) > 64 {
			t.Fatal("runaway enumeration")
		}
		if !s.BlockVars([]string{"x"}) {
			break
		}
	}
	want := map[uint64]bool{}
	for v := uint64(0); v < 64; v++ {
		if v&0b101 == 0b101 {
			want[v] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("found %d models, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Errorf("missing model %#x", v)
		}
	}
}
