package smt

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

// pairFormulas builds a small pair-relation-shaped formula set over renamable
// register names: two memory reads, an equality coupling, and a bound.
func pairFormulas(r1, r2, mem string) []expr.BoolExpr {
	x, y := expr.V64(r1), expr.V64(r2)
	m := expr.NewMemVar(mem)
	return []expr.BoolExpr{
		expr.Eq(expr.NewRead(m, x), expr.NewRead(m, expr.Add(y, expr.C64(8)))),
		expr.Eq(expr.And(x, expr.C64(0xfff)), expr.And(y, expr.C64(0xfff))),
		expr.Ult(x, expr.C64(1<<20)),
		expr.Ult(y, expr.C64(1<<20)),
	}
}

func buildUncached(opts Options, fs []expr.BoolExpr) *Solver {
	s := New(opts)
	for _, f := range fs {
		s.Assert(f)
	}
	return s
}

func cnfHash(t *testing.T, s *Solver) uint64 {
	t.Helper()
	w, ok := s.sat.(*sat.Solver)
	if !ok {
		t.Fatalf("backend is %T, want *sat.Solver", s.sat)
	}
	return w.CNFHash()
}

// enumerate checks, models, and blocks nTimes, returning the model sequence.
func enumerate(t *testing.T, s *Solver, fs []expr.BoolExpr, names []string, nTimes int) []*expr.Assignment {
	t.Helper()
	var models []*expr.Assignment
	for i := 0; i < nTimes; i++ {
		if st := s.Check(); st != sat.Sat {
			break
		}
		m := s.Model()
		for _, f := range fs {
			if !m.EvalBool(f) {
				t.Fatalf("model %d does not satisfy %s", i, f)
			}
		}
		models = append(models, m)
		if !s.BlockVars(names) {
			t.Fatalf("model %d: nothing blocked", i)
		}
	}
	return models
}

// TestShapeCacheMatchesUncached is the byte-identity property of the cache:
// a cache-instantiated solver carries the same CNF (hash over clauses and
// level-0 trail) as a solver that encoded the formulas directly, and the
// whole enumerate-and-block conversation yields identical model sequences.
func TestShapeCacheMatchesUncached(t *testing.T) {
	fs := pairFormulas("R3", "R7", "MEM")
	opts := Options{Seed: 2021}

	plain := buildUncached(opts, fs)
	sc := NewShapeCache()
	cached, hit := sc.Instantiate(opts, fs)
	if hit {
		t.Fatalf("first instantiation reported a hit")
	}

	if hp, hc := cnfHash(t, plain), cnfHash(t, cached); hp != hc {
		t.Fatalf("CNF hash mismatch: uncached %#x cached %#x", hp, hc)
	}
	if got, want := cached.VarNames(), plain.VarNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("VarNames mismatch:\n cached %v\n plain  %v", got, want)
	}
	if got, want := cached.ReadVarNames("MEM"), plain.ReadVarNames("MEM"); !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadVarNames mismatch: cached %v plain %v", got, want)
	}

	names := []string{"R3", "R7"}
	mp := enumerate(t, plain, fs, names, 5)
	mc := enumerate(t, cached, fs, names, 5)
	if len(mp) != len(mc) {
		t.Fatalf("model counts differ: uncached %d cached %d", len(mp), len(mc))
	}
	for i := range mp {
		if !reflect.DeepEqual(mp[i].BV, mc[i].BV) {
			t.Fatalf("model %d differs:\n uncached %v\n cached   %v", i, mp[i].BV, mc[i].BV)
		}
	}
}

// TestShapeCacheScopedQueries drives the incremental-engine conversation
// shape (scoped asserts + CheckUnder + scoped blocking) through a cached
// solver and checks it against the uncached equivalent.
func TestShapeCacheScopedQueries(t *testing.T) {
	fs := pairFormulas("R1", "R2", "MEM")
	opts := Options{Seed: 7}

	run := func(s *Solver) ([]string, []uint64) {
		x, y := expr.V64("R1"), expr.V64("R2")
		h := s.AssertScoped(expr.Eq(expr.Xor(x, y), expr.C64(0x4000)))
		var vals []uint64
		for i := 0; i < 4; i++ {
			s.ResetSearch(int64(i))
			if st := s.CheckUnder(h); st != sat.Sat {
				break
			}
			m := s.Model()
			vals = append(vals, m.BV["R1"], m.BV["R2"])
			if !s.BlockVarsUnder(h, []string{"R1", "R2"}) {
				break
			}
		}
		return h.Names(), vals
	}

	plain := buildUncached(opts, fs)
	sc := NewShapeCache()
	cached, _ := sc.Instantiate(opts, fs)

	np, vp := run(plain)
	nc, vc := run(cached)
	if !reflect.DeepEqual(np, nc) {
		t.Fatalf("scoped handle names differ: uncached %v cached %v", np, nc)
	}
	if !reflect.DeepEqual(vp, vc) {
		t.Fatalf("scoped model sequences differ:\n uncached %v\n cached   %v", vp, vc)
	}
	if len(vp) == 0 {
		t.Fatalf("scoped query never sat")
	}
}

// TestShapeCacheAlphaEquivalentPrograms is the point of the cache: programs
// of one template differing only in register allocation share one prototype.
func TestShapeCacheAlphaEquivalentPrograms(t *testing.T) {
	sc := NewShapeCache()
	progs := [][2]string{{"R0", "R1"}, {"R5", "R9"}, {"R2", "R8"}, {"R11", "R4"}}

	var hashes []uint64
	for i, p := range progs {
		fs := pairFormulas(p[0], p[1], "MEM")
		s, hit := sc.Instantiate(Options{Seed: int64(i)}, fs)
		if hit != (i > 0) {
			t.Fatalf("program %d: hit=%v", i, hit)
		}
		hashes = append(hashes, cnfHash(t, s))
		if st := s.Check(); st != sat.Sat {
			t.Fatalf("program %d: %v", i, st)
		}
		m := s.Model()
		for _, f := range fs {
			if !m.EvalBool(f) {
				t.Fatalf("program %d: model in wrong name space: %s", i, f)
			}
		}
		if _, ok := m.BV[p[0]]; !ok {
			t.Fatalf("program %d: model missing %s: %v", i, p[0], m.BV)
		}
	}
	for i := 1; i < len(hashes); i++ {
		if hashes[i] != hashes[0] {
			t.Fatalf("alpha-equivalent programs got different CNF skeletons: %#x vs %#x", hashes[i], hashes[0])
		}
	}
	st := sc.Stats()
	if st.Misses != 1 || st.Hits != int64(len(progs)-1) || st.Shapes != 1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits / 1 shape", st, len(progs)-1)
	}

	// A structurally different formula set must not collide.
	other := []expr.BoolExpr{expr.Ult(expr.V64("R0"), expr.C64(4))}
	if _, hit := sc.Instantiate(Options{}, other); hit {
		t.Fatalf("different shape reported a cache hit")
	}
	if st := sc.Stats(); st.Shapes != 2 {
		t.Fatalf("expected 2 shapes, got %d", st.Shapes)
	}
}

// TestShapeCacheConcurrent hammers one shape from many goroutines (run under
// -race): the prototype must be blasted exactly once, every instantiation
// must carry the identical CNF skeleton, and per-goroutine solving must not
// interfere.
func TestShapeCacheConcurrent(t *testing.T) {
	sc := NewShapeCache()
	const workers = 16
	hashes := make([]uint64, workers)
	verdicts := make([]sat.Status, workers)
	models := make([]map[string]uint64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r1 := fmt.Sprintf("R%d", w)
			r2 := fmt.Sprintf("Q%d", w)
			fs := pairFormulas(r1, r2, "MEM")
			s, _ := sc.Instantiate(Options{Seed: 42}, fs)
			hashes[w] = s.sat.(*sat.Solver).CNFHash()
			verdicts[w] = s.Check()
			if verdicts[w] == sat.Sat {
				m := s.Model()
				models[w] = map[string]uint64{"a": m.BV[r1], "b": m.BV[r2]}
			}
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		if hashes[w] != hashes[0] {
			t.Fatalf("worker %d CNF hash %#x != worker 0 %#x", w, hashes[w], hashes[0])
		}
		if verdicts[w] != verdicts[0] {
			t.Fatalf("worker %d verdict %v != worker 0 %v", w, verdicts[w], verdicts[0])
		}
		if !reflect.DeepEqual(models[w], models[0]) {
			t.Fatalf("worker %d model %v != worker 0 %v (same seed, same shape)", w, models[w], models[0])
		}
	}
	st := sc.Stats()
	if st.Misses != 1 {
		t.Fatalf("prototype built %d times, want exactly 1", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers-1)
	}
}

// TestShapeCachePortfolioInstantiation checks that portfolio-backed clones
// from the cache agree with the single-solver clone (worker 0 canonical).
func TestShapeCachePortfolioInstantiation(t *testing.T) {
	fs := pairFormulas("R3", "R7", "MEM")
	sc := NewShapeCache()

	s1, _ := sc.Instantiate(Options{Seed: 5, Portfolio: 1}, fs)
	s4, _ := sc.Instantiate(Options{Seed: 5, Portfolio: 4}, fs)
	if _, ok := s1.sat.(*sat.Portfolio); !ok {
		t.Fatalf("Portfolio:1 backend is %T", s1.sat)
	}
	if _, ok := s4.sat.(*sat.Portfolio); !ok {
		t.Fatalf("Portfolio:4 backend is %T", s4.sat)
	}

	names := []string{"R3", "R7"}
	m1 := enumerate(t, s1, fs, names, 6)
	m4 := enumerate(t, s4, fs, names, 6)
	if len(m1) != len(m4) {
		t.Fatalf("model counts differ: P1 %d P4 %d", len(m1), len(m4))
	}
	for i := range m1 {
		if !reflect.DeepEqual(m1[i].BV, m4[i].BV) {
			t.Fatalf("model %d differs between P1 and P4:\n %v\n %v", i, m1[i].BV, m4[i].BV)
		}
	}
}

// TestShapeCacheRejectsPlaceholderNames: a caller variable named "@0",
// introduced after instantiation, would silently alias the prototype's
// canonical placeholder for a different variable. The renamer must refuse
// the reserved namespace loudly instead of corrupting the encoding.
func TestShapeCacheRejectsPlaceholderNames(t *testing.T) {
	sc := NewShapeCache()
	s, _ := sc.Instantiate(Options{Seed: 1}, pairFormulas("R1", "R2", "MEM"))
	defer func() {
		if recover() == nil {
			t.Fatal("asserting a variable named \"@0\" did not panic")
		}
	}()
	s.Assert(expr.Ult(expr.V64("@0"), expr.C64(4)))
}

// TestShapeCacheRejectsPlaceholderNamesAtInstantiation covers the other
// boundary: formulas whose variables already use the reserved namespace must
// be refused when the renamer bijection is built.
func TestShapeCacheRejectsPlaceholderNamesAtInstantiation(t *testing.T) {
	sc := NewShapeCache()
	defer func() {
		if recover() == nil {
			t.Fatal("instantiating over a variable named \"@0\" did not panic")
		}
	}()
	sc.Instantiate(Options{}, []expr.BoolExpr{expr.Ult(expr.V64("@0"), expr.C64(4))})
}

// TestShapeCacheMemoryModel checks memory-image reconstruction through the
// rename boundary: read variables, their addresses, and the reassembled
// memory must all land back in caller space.
func TestShapeCacheMemoryModel(t *testing.T) {
	x := expr.V64("addr")
	m := expr.NewMemVar("MEM")
	fs := []expr.BoolExpr{
		expr.Eq(expr.NewRead(m, x), expr.C64(0xdead)),
		expr.Eq(x, expr.C64(0x1000)),
	}
	sc := NewShapeCache()
	s, _ := sc.Instantiate(Options{Seed: 1}, fs)
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	model := s.Model()
	mm, ok := model.Mem["MEM"]
	if !ok {
		t.Fatalf("model has no MEM image: %v", model.Mem)
	}
	if got := mm.Get(0x1000); got != 0xdead {
		t.Fatalf("MEM[0x1000] = %#x, want 0xdead", got)
	}
	rv := s.ReadVarNames("MEM")
	if len(rv) != 1 || rv[0] != "$rd_MEM_1" {
		t.Fatalf("ReadVarNames = %v, want [$rd_MEM_1]", rv)
	}
}
