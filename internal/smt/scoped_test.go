package smt

import (
	"testing"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

// TestScopedAssertionsIndependent models the generator's class streams: one
// shared prefix, several mutually exclusive scoped constraints, each
// checkable on its own.
func TestScopedAssertionsIndependent(t *testing.T) {
	s := New(Options{Seed: 1})
	x := expr.NewVar("x", 8)
	s.Assert(expr.Ult(x, expr.NewConst(200, 8))) // shared prefix
	h0 := s.AssertScoped(expr.Eq(x, expr.NewConst(3, 8)))
	h1 := s.AssertScoped(expr.Eq(x, expr.NewConst(7, 8)))
	if s.CheckUnder(h0) != sat.Sat || s.Model().BV["x"] != 3 {
		t.Fatal("scope 0 must pin x=3")
	}
	if s.CheckUnder(h1) != sat.Sat || s.Model().BV["x"] != 7 {
		t.Fatal("scope 1 must pin x=7")
	}
	if s.CheckUnder(h0, h1) != sat.Unsat {
		t.Fatal("both scopes together are contradictory")
	}
	if s.Check() != sat.Sat {
		t.Fatal("plain check ignores scoped assertions")
	}
	if s.CheckUnder(h0) != sat.Sat || s.Model().BV["x"] != 3 {
		t.Fatal("scope 0 must still be checkable after a global unsat-free run")
	}
}

func TestScopedHandleNames(t *testing.T) {
	s := New(Options{Seed: 1})
	x := expr.NewVar("x", 64)
	y := expr.NewVar("y", 64)
	s.Assert(expr.Ult(x, expr.NewConst(10, 64)))
	h := s.AssertScoped(expr.Eq(y, expr.Add(x, expr.NewConst(1, 64))))
	names := h.Names()
	want := map[string]bool{"x": true, "y": true}
	if len(names) != 2 || !want[names[0]] || !want[names[1]] {
		t.Fatalf("handle names = %v, want x and y", names)
	}
}

// TestScopedReadCapture checks that memory reads introduced while asserting
// a scoped formula appear in the handle's name set, so scoped model blocking
// covers the memory image.
func TestScopedReadCapture(t *testing.T) {
	s := New(Options{Seed: 1})
	mem := expr.NewMemVar("MEM")
	a := expr.NewVar("a", 64)
	h := s.AssertScoped(expr.Eq(expr.NewRead(mem, a), expr.NewConst(5, 64)))
	foundRead := false
	for _, n := range h.Names() {
		if len(n) > 4 && n[:4] == "$rd_" {
			foundRead = true
		}
	}
	if !foundRead {
		t.Fatalf("handle names %v miss the introduced read variable", h.Names())
	}
}

// TestBlockVarsUnderScoped enumerates models inside one scope and checks the
// sibling scope is unaffected — the incremental generator's model blocking.
func TestBlockVarsUnderScoped(t *testing.T) {
	s := New(Options{Seed: 1})
	x := expr.NewVar("x", 2)
	h0 := s.AssertScoped(expr.Ult(x, expr.NewConst(2, 2))) // x ∈ {0, 1}
	h1 := s.AssertScoped(expr.Ule(x, expr.NewConst(1, 2))) // same set, own scope
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		if s.CheckUnder(h0) != sat.Sat {
			t.Fatalf("query %d: expected sat", i)
		}
		v := s.Model().BV["x"]
		if seen[v] {
			t.Fatalf("model x=%d repeated despite blocking", v)
		}
		seen[v] = true
		if !s.BlockVarsUnder(h0, []string{"x"}) {
			t.Fatal("blocking must succeed while x is encoded")
		}
	}
	if s.CheckUnder(h0) != sat.Unsat {
		t.Fatal("scope 0 must be exhausted after two models")
	}
	if s.CheckUnder(h1) != sat.Sat {
		t.Fatal("scope 1 must be unaffected by scope 0's blocking")
	}
}

// TestZeroHandleFallsBack: the zero Handle (no Support case) behaves like
// the unscoped API.
func TestZeroHandleFallsBack(t *testing.T) {
	s := New(Options{Seed: 1})
	x := expr.NewVar("x", 2)
	s.Assert(expr.Ult(x, expr.NewConst(2, 2)))
	var h Handle
	count := 0
	for count < 4 {
		if s.CheckUnder(h) != sat.Sat {
			break
		}
		count++
		if !s.BlockVarsUnder(h, []string{"x"}) {
			break
		}
	}
	if count != 2 {
		t.Fatalf("enumerated %d models, want 2", count)
	}
}

// TestScopedDeterministicWithReset mirrors the generator's usage: resetting
// the search with a fixed seed before each query makes the per-scope model
// sequence reproducible.
func TestScopedDeterministicWithReset(t *testing.T) {
	run := func() []uint64 {
		s := New(Options{Seed: 9})
		x := expr.NewVar("x", 4)
		y := expr.NewVar("y", 4)
		s.Assert(expr.Eq(expr.And(x, y), expr.NewConst(0, 4)))
		ha := s.AssertScoped(expr.Ult(x, expr.NewConst(5, 4)))
		hb := s.AssertScoped(expr.Ult(y, expr.NewConst(5, 4)))
		var out []uint64
		for i := 0; i < 3; i++ {
			s.ResetSearch(100)
			if s.CheckUnder(ha) != sat.Sat {
				break
			}
			out = append(out, s.Model().BV["x"])
			s.BlockVarsUnder(ha, []string{"x", "y"})
			s.ResetSearch(200)
			if s.CheckUnder(hb) != sat.Sat {
				break
			}
			out = append(out, s.Model().BV["y"])
			s.BlockVarsUnder(hb, []string{"x", "y"})
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("model sequences differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("model %d differs across identical runs: %v vs %v", i, a, b)
		}
	}
}
