package smt

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

// renamer is the name-space boundary of a shape-cache-instantiated solver:
// the solver internally works in the prototype's canonical placeholder
// space ("@0", "@1", ...), and the renamer bijects between those and the
// caller's actual names. Names unknown to the bijection (variables first
// introduced after instantiation, e.g. by coverage-class constraints) pass
// through unchanged — which is only sound because caller names never start
// with '@': a pass-through "@0" would silently alias the prototype's
// placeholder for a different variable and corrupt the encoding with no
// error. The invariant is enforced, not assumed: '@'-prefixed caller names
// panic at this boundary (newRenamer for names present at instantiation,
// in for names introduced later).
//
// Ackermann read variables are named "$rd_<mem>_<n>" by the solver; both
// directions translate the embedded memory name so read variables line up
// with what an uncached solver would have produced.
type renamer struct {
	toCanon   map[string]string
	fromCanon map[string]string
}

// newRenamer builds the bijection actual[i] <-> "@i".
func newRenamer(actual []string) *renamer {
	rn := &renamer{
		toCanon:   make(map[string]string, len(actual)),
		fromCanon: make(map[string]string, len(actual)),
	}
	for i, name := range actual {
		rejectReservedName(name)
		p := "@" + strconv.Itoa(i)
		rn.toCanon[name] = p
		rn.fromCanon[p] = name
	}
	return rn
}

func (rn *renamer) in(name string) string {
	rejectReservedName(name)
	return rnMap(rn.toCanon, name)
}

func (rn *renamer) out(name string) string { return rnMap(rn.fromCanon, name) }

// rejectReservedName panics on caller variable names in the reserved
// placeholder namespace. Load-bearing for correctness: see the renamer doc.
func rejectReservedName(name string) {
	if strings.HasPrefix(name, "@") {
		panic("smt: variable name " + strconv.Quote(name) +
			" collides with the shape cache's reserved '@' placeholder namespace")
	}
}

func rnMap(m map[string]string, name string) string {
	if t, ok := m[name]; ok {
		return t
	}
	if rest, ok := strings.CutPrefix(name, "$rd_"); ok {
		if i := strings.LastIndexByte(rest, '_'); i > 0 {
			if t, ok := m[rest[:i]]; ok {
				return "$rd_" + t + rest[i:]
			}
		}
	}
	return name
}

// ShapeCacheStats is a point-in-time snapshot of shape-cache traffic. A
// lookup is a miss only while the prototype is first built, so for a fixed
// campaign the totals are deterministic: exactly one miss per distinct
// template shape.
type ShapeCacheStats struct {
	Hits, Misses int64
	Shapes       int
}

// ShapeCache is the campaign-scoped solver-prototype cache: the first time a
// formula-list shape (canonical expression identity, see expr.CanonShape) is
// instantiated, a prototype solver is built — memory elimination, Ackermann
// expansion and bit-blasting run once — and every later instantiation of the
// same shape clones the prototype's CNF in a few bulk copies, renaming
// variables at the API boundary instead of re-encoding.
//
// It is safe for concurrent use by the staged engine's testgen workers: the
// entry map is mutex-guarded, each prototype is built under its own entry
// lock (concurrent requesters of one shape block until the build finishes,
// then clone), and finished prototypes are frozen — clones layer their own
// caches over the prototype's read-only maps.
type ShapeCache struct {
	mu      sync.Mutex
	entries map[string]*shapeEntry
	// known holds key hashes journaled by a resumed campaign's completed
	// programs: their prototypes were already paid for before the restart,
	// so a live lookup of a known key counts as a hit even while the
	// prototype is silently rebuilt. That keeps a resumed campaign's
	// hit/miss totals equal to an uninterrupted run's — the resume
	// determinism contract of internal/journal. Nil outside resume.
	known map[uint64]bool

	hits, misses atomic.Int64
}

type shapeEntry struct {
	mu    sync.Mutex
	built bool
	proto *Solver
}

// NewShapeCache returns an empty cache.
func NewShapeCache() *ShapeCache {
	return &ShapeCache{entries: make(map[string]*shapeEntry)}
}

// Stats snapshots hit/miss totals and the number of cached shapes.
func (sc *ShapeCache) Stats() ShapeCacheStats {
	sc.mu.Lock()
	n := len(sc.entries)
	sc.mu.Unlock()
	return ShapeCacheStats{Hits: sc.hits.Load(), Misses: sc.misses.Load(), Shapes: n}
}

// Instantiate returns a solver equivalent to
//
//	s := New(opts); for _, f := range formulas { s.Assert(f) }
//
// — same CNF, same models, same verdicts — but sharing the encoding work
// with every other instantiation of the same formula shape. The returned
// bool reports whether the prototype already existed (a cache hit).
//
// Only the base-configuration knobs of opts (seed, phase, conflict budget,
// portfolio size) vary between instantiations; they do not enter the cache
// key because they configure the search, not the CNF.
func (sc *ShapeCache) Instantiate(opts Options, formulas []expr.BoolExpr) (*Solver, bool) {
	s, hit, _ := sc.InstantiateTagged(opts, formulas)
	return s, hit
}

// KeyHash is the stable 64-bit identity of a canonical shape key, the unit
// of the journal's per-program shape-key lists (the full key strings are
// large; the hash is what crosses the durability boundary).
func KeyHash(key string) uint64 {
	// FNV-1a, inlined to keep the hot path allocation-free.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// MarkKnown registers shape-key hashes restored from a campaign journal:
// lookups of these keys count as hits from now on (see the known field).
func (sc *ShapeCache) MarkKnown(keys []uint64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.known == nil {
		sc.known = make(map[uint64]bool, len(keys))
	}
	for _, k := range keys {
		sc.known[k] = true
	}
}

// InstantiateTagged is Instantiate plus the shape-key hash of the lookup,
// which campaign engines journal for resume accounting.
func (sc *ShapeCache) InstantiateTagged(opts Options, formulas []expr.BoolExpr) (*Solver, bool, uint64) {
	key, renamed, names := expr.CanonShape(formulas)
	kh := KeyHash(key)

	sc.mu.Lock()
	e := sc.entries[key]
	if e == nil {
		e = &shapeEntry{}
		sc.entries[key] = e
	}
	known := sc.known[kh]
	sc.mu.Unlock()

	e.mu.Lock()
	hit := e.built
	if !e.built {
		// The prototype always runs on a plain single solver with zero
		// options: none of the Options fields influence the clauses
		// produced, and the prototype is never solved. It is frozen from
		// here on — instantiations only read it.
		proto := New(Options{})
		for _, f := range renamed {
			proto.Assert(f)
		}
		e.proto = proto
		e.built = true
	}
	e.mu.Unlock()
	// A lookup of a journal-known key is a hit even when the prototype had
	// to be rebuilt in this process: the uninterrupted campaign would have
	// hit here, and resume accounting must agree with it.
	counted := hit || known
	if counted {
		sc.hits.Add(1)
	} else {
		sc.misses.Add(1)
	}

	return sc.instantiate(e.proto, opts, names), counted, kh
}

// instantiate clones the prototype under the requested search options.
func (sc *ShapeCache) instantiate(proto *Solver, opts Options, names []string) *Solver {
	protoSat := proto.sat.(*sat.Solver)
	cfg := opts.satConfig()
	var eng sat.Engine
	if opts.Portfolio >= 1 {
		cfgs := sat.DefaultPortfolioConfigs(cfg, opts.Portfolio)
		workers := make([]*sat.Solver, len(cfgs))
		for i, c := range cfgs {
			workers[i] = protoSat.Clone(c.Seed)
		}
		eng = sat.NewPortfolioFrom(workers, cfgs)
	} else {
		w := protoSat.Clone(opts.Seed)
		w.DefaultPhase = opts.DefaultPhase
		w.RandomPhaseProb = opts.RandomPhaseProb
		w.MaxConflicts = opts.MaxConflicts
		eng = w
	}

	s := &Solver{
		sat:            eng,
		bl:             proto.bl.CloneOnto(eng),
		rn:             newRenamer(names),
		reads:          make(map[string][]readInfo, len(proto.reads)),
		readSeen:       make(map[*expr.Read]*expr.Var), // pointer memo is prototype-local; the structural fallback in readBase covers re-reads
		nreads:         proto.nreads,
		ackConstraints: proto.ackConstraints,
		bvVars:         make(map[string]uint, len(proto.bvVars)),
		boolVars:       make(map[string]bool, len(proto.boolVars)),
	}
	for mem, ris := range proto.reads {
		s.reads[mem] = append([]readInfo(nil), ris...)
	}
	for n, w := range proto.bvVars {
		s.bvVars[n] = w
	}
	for n, v := range proto.boolVars {
		s.boolVars[n] = v
	}
	return s
}
