// Package smt is a satisfiability-modulo-theories frontend over the CDCL
// solver in internal/sat: quantifier-free bitvectors plus a theory of
// memories (total maps from 64-bit addresses to 64-bit words).
//
// It stands in for Z3 in the Scam-V pipeline. Memory reads are eliminated
// before bit-blasting:
//
//  1. read-over-write rewriting: mem[a := v][x] becomes ite(a = x, v, mem[x]);
//  2. Ackermann expansion: each read mem[x] of a base memory variable becomes
//     a fresh bitvector variable r, with functional-consistency constraints
//     (x_i = x_j) ⇒ (r_i = r_j) for every pair of reads of the same memory.
//
// Models assign concrete words to every read address, from which a concrete
// initial memory image is reconstructed.
package smt

import (
	"context"
	"fmt"
	"sort"

	"scamv/internal/bitblast"
	"scamv/internal/expr"
	"scamv/internal/sat"
)

// Options configures a Solver.
type Options struct {
	// Seed drives randomized decisions; solving is deterministic per seed.
	Seed int64
	// DefaultPhase is the polarity of unconstrained decisions. false (the
	// default) yields Z3-like "all zeros" default models.
	DefaultPhase bool
	// RandomPhaseProb makes a fraction of decisions use a random polarity,
	// diversifying enumerated models. 0 disables.
	RandomPhaseProb float64
	// MaxConflicts bounds the search; 0 means unbounded.
	MaxConflicts int64
	// Portfolio, when >= 1, backs the solver with a sat.Portfolio of that
	// many diversified CDCL workers racing each query (worker 0 runs the
	// configuration above and supplies all models, so results are
	// deterministic across portfolio sizes; see sat.Portfolio). 0 keeps the
	// classic single-solver backend.
	Portfolio int
}

// satConfig maps Options onto the base sat search configuration.
func (o Options) satConfig() sat.Config {
	return sat.Config{
		Seed:            o.Seed,
		DefaultPhase:    o.DefaultPhase,
		RandomPhaseProb: o.RandomPhaseProb,
		MaxConflicts:    o.MaxConflicts,
	}
}

type readInfo struct {
	addr expr.BVExpr // address expression, memory-free
	v    *expr.Var   // the fresh variable standing for the read value
}

// Solver is an incremental SMT solver: assert formulas, check, read a model,
// block it, and check again. Beyond plain global assertions it supports
// assumption-scoped assertions: AssertScoped encodes a formula guarded by a
// fresh activation literal and CheckUnder solves with a chosen set of
// activation literals assumed true, so many logically independent queries
// over a shared prefix reuse one solver (one memory elimination, one
// bit-blasting) instead of rebuilding it per query.
type Solver struct {
	sat sat.Engine
	bl  *bitblast.Blaster

	// rn, when non-nil, translates between the caller's variable names and
	// the canonical placeholder names of the shape-cache prototype this
	// solver was instantiated from. Formulas are renamed into canonical
	// space on the way in; models, handles and name listings are renamed
	// back on the way out. Solvers built by New run without translation.
	rn *renamer

	reads          map[string][]readInfo // per base memory variable
	readSeen       map[*expr.Read]*expr.Var
	nreads         int
	ackConstraints int64 // functional-consistency implications asserted

	bvVars   map[string]uint // declared widths of encoded variables
	boolVars map[string]bool

	// capture, when non-nil, collects the names of bitvector variables
	// referenced (or introduced by read elimination) while asserting one
	// scoped formula; AssertScoped stores them in the returned Handle.
	capture map[string]bool
}

// Handle identifies one assumption-scoped assertion: pass it to CheckUnder
// to activate the formula, and to BlockVarsUnder to add blocking clauses
// that apply only while the formula is active.
type Handle struct {
	act   sat.Lit
	names []string // bitvector variables referenced by the scoped formula
	valid bool
}

// Names returns the sorted bitvector variable names referenced by the
// scoped formula (including read variables its elimination introduced).
func (h Handle) Names() []string { return h.names }

// New returns a fresh solver.
func New(opts Options) *Solver {
	cfg := opts.satConfig()
	var eng sat.Engine
	if opts.Portfolio >= 1 {
		eng = sat.NewPortfolio(sat.DefaultPortfolioConfigs(cfg, opts.Portfolio))
	} else {
		eng = sat.NewWithConfig(cfg)
	}
	return &Solver{
		sat:      eng,
		bl:       bitblast.New(eng),
		reads:    make(map[string][]readInfo),
		readSeen: make(map[*expr.Read]*expr.Var),
		bvVars:   make(map[string]uint),
		boolVars: make(map[string]bool),
	}
}

// Assert adds a formula to the solver.
func (s *Solver) Assert(e expr.BoolExpr) {
	if s.rn != nil {
		e = expr.RenameBool(e, s.rn.in)
	}
	flat := s.elim(e).(expr.BoolExpr)
	s.recordVars(flat)
	s.bl.Assert(flat)
}

// AssertScoped encodes e guarded by a fresh activation literal and returns
// a Handle for it. The formula constrains the search only during CheckUnder
// calls that list the handle; other checks (and plain Check) see it fully
// relaxed. Scoped assertions cannot be retracted, but an unused scope costs
// only its (shared, cached) CNF.
func (s *Solver) AssertScoped(e expr.BoolExpr) Handle {
	if s.rn != nil {
		e = expr.RenameBool(e, s.rn.in)
	}
	s.capture = make(map[string]bool)
	flat := s.elim(e).(expr.BoolExpr)
	s.recordVars(flat)
	names := make([]string, 0, len(s.capture))
	for n := range s.capture {
		names = append(names, s.rnOut(n))
	}
	sort.Strings(names)
	s.capture = nil
	act := sat.MkLit(s.sat.NewVar(), false)
	s.bl.AssertImplied(act, flat)
	return Handle{act: act, names: names, valid: true}
}

// rnIn translates a caller-space name into the solver's internal space;
// identity for solvers not built from a shape-cache prototype.
func (s *Solver) rnIn(name string) string {
	if s.rn == nil {
		return name
	}
	return s.rn.in(name)
}

// rnOut translates an internal name back into caller space.
func (s *Solver) rnOut(name string) string {
	if s.rn == nil {
		return name
	}
	return s.rn.out(name)
}

// CheckUnder runs the SAT search with the given scoped assertions active.
// With no handles it is equivalent to Check. On Sat, the model (read via
// Model) satisfies every active scoped formula plus all plain assertions.
func (s *Solver) CheckUnder(handles ...Handle) sat.Status {
	assumptions := make([]sat.Lit, 0, len(handles))
	for _, h := range handles {
		if h.valid {
			assumptions = append(assumptions, h.act)
		}
	}
	return s.sat.Solve(assumptions...)
}

// ResetSearch rewinds the backend solver's search heuristics (phases,
// activities, randomization) to their initial state, keeping all encoded
// clauses. Incremental callers reset between logically independent
// CheckUnder queries so each behaves like a fresh solver over the same CNF;
// see sat.Solver.ResetSearch.
func (s *Solver) ResetSearch(seed int64) { s.sat.ResetSearch(seed) }

// SetContext installs a cancellation context on the backend SAT solver:
// a cancelled context makes in-flight and future checks return Unknown
// instead of searching on. See sat.Solver.SetContext.
func (s *Solver) SetContext(ctx context.Context) { s.sat.SetContext(ctx) }

func (s *Solver) recordVars(e expr.Expr) {
	bv := make(map[string]bool)
	boolv := make(map[string]bool)
	expr.Vars(e, bv, boolv, nil)
	for name := range bv {
		if s.capture != nil {
			s.capture[name] = true
		}
		if _, ok := s.bvVars[name]; !ok {
			s.bvVars[name] = 0 // width filled in lazily below
		}
	}
	for name := range boolv {
		s.boolVars[name] = true
	}
	// Recover widths by a second walk (cheap; variables are few).
	var walk func(x expr.Expr)
	walk = func(x expr.Expr) {
		switch v := x.(type) {
		case *expr.Var:
			s.bvVars[v.Name] = v.W
		case *expr.Bin:
			walk(v.X)
			walk(v.Y)
		case *expr.Un:
			walk(v.X)
		case *expr.Extract:
			walk(v.X)
		case *expr.Ext:
			walk(v.X)
		case *expr.Ite:
			walk(v.Cond)
			walk(v.Then)
			walk(v.Else)
		case *expr.Cmp:
			walk(v.X)
			walk(v.Y)
		case *expr.Nary:
			for _, a := range v.Args {
				walk(a)
			}
		case *expr.NotBExpr:
			walk(v.X)
		}
	}
	walk(e)
}

// elim removes memory reads from e (see the package comment).
func (s *Solver) elim(e expr.Expr) expr.Expr {
	switch v := e.(type) {
	case *expr.Const, *expr.Var, *expr.BoolConst, *expr.BoolVar:
		return e
	case *expr.Bin:
		x := s.elim(v.X).(expr.BVExpr)
		y := s.elim(v.Y).(expr.BVExpr)
		if x == v.X && y == v.Y {
			return e
		}
		return rebin(v.Op, x, y)
	case *expr.Un:
		x := s.elim(v.X).(expr.BVExpr)
		if v.Op == expr.OpNot {
			return expr.Not(x)
		}
		return expr.Neg(x)
	case *expr.Extract:
		return expr.NewExtract(v.Hi, v.Lo, s.elim(v.X).(expr.BVExpr))
	case *expr.Ext:
		return expr.NewExt(v.Kind, s.elim(v.X).(expr.BVExpr), v.W)
	case *expr.Ite:
		return expr.NewIte(s.elim(v.Cond).(expr.BoolExpr),
			s.elim(v.Then).(expr.BVExpr), s.elim(v.Else).(expr.BVExpr))
	case *expr.Cmp:
		return recmp(v.Op, s.elim(v.X).(expr.BVExpr), s.elim(v.Y).(expr.BVExpr))
	case *expr.Nary:
		args := make([]expr.BoolExpr, len(v.Args))
		for i, a := range v.Args {
			args[i] = s.elim(a).(expr.BoolExpr)
		}
		if v.Op == expr.OpAndB {
			return expr.AndB(args...)
		}
		return expr.OrB(args...)
	case *expr.NotBExpr:
		return expr.NotB(s.elim(v.X).(expr.BoolExpr))
	case *expr.Read:
		return s.elimRead(v)
	}
	panic(fmt.Sprintf("smt: elim on %T", e))
}

func rebin(op expr.BinOp, x, y expr.BVExpr) expr.BVExpr {
	switch op {
	case expr.OpAdd:
		return expr.Add(x, y)
	case expr.OpSub:
		return expr.Sub(x, y)
	case expr.OpMul:
		return expr.Mul(x, y)
	case expr.OpAnd:
		return expr.And(x, y)
	case expr.OpOr:
		return expr.Or(x, y)
	case expr.OpXor:
		return expr.Xor(x, y)
	case expr.OpShl:
		return expr.Shl(x, y)
	case expr.OpLshr:
		return expr.Lshr(x, y)
	case expr.OpAshr:
		return expr.Ashr(x, y)
	}
	panic("smt: bad binop")
}

func recmp(op expr.CmpOp, x, y expr.BVExpr) expr.BoolExpr {
	switch op {
	case expr.OpEq:
		return expr.Eq(x, y)
	case expr.OpUlt:
		return expr.Ult(x, y)
	case expr.OpUle:
		return expr.Ule(x, y)
	case expr.OpSlt:
		return expr.Slt(x, y)
	case expr.OpSle:
		return expr.Sle(x, y)
	}
	panic("smt: bad cmpop")
}

// elimRead eliminates one read node, pushing it through stores and
// introducing an Ackermann variable at the base memory.
func (s *Solver) elimRead(r *expr.Read) expr.BVExpr {
	if v, ok := s.readSeen[r]; ok {
		return v
	}
	addr := s.elim(r.Addr).(expr.BVExpr)
	res := s.readBase(r.M, addr)
	if v, ok := res.(*expr.Var); ok {
		s.readSeen[r] = v
	}
	return res
}

func (s *Solver) readBase(m expr.MemExpr, addr expr.BVExpr) expr.BVExpr {
	switch mv := m.(type) {
	case *expr.Store:
		sa := s.elim(mv.Addr).(expr.BVExpr)
		sv := s.elim(mv.Val).(expr.BVExpr)
		return expr.NewIte(expr.Eq(sa, addr), sv, s.readBase(mv.M, addr))
	case *expr.MemVar:
		// Reuse an existing read of the same memory at a structurally
		// identical address expression.
		for _, ri := range s.reads[mv.Name] {
			if ri.addr == addr || ri.addr.String() == addr.String() {
				return ri.v
			}
		}
		s.nreads++
		v := expr.NewVar(fmt.Sprintf("$rd_%s_%d", mv.Name, s.nreads), 64)
		// Functional consistency with every earlier read of this memory.
		for _, prev := range s.reads[mv.Name] {
			c := expr.Implies(expr.Eq(prev.addr, addr), expr.Eq(prev.v, v))
			s.recordVars(c)
			s.bl.Assert(c)
			s.ackConstraints++
		}
		s.reads[mv.Name] = append(s.reads[mv.Name], readInfo{addr: addr, v: v})
		s.bvVars[v.Name] = 64
		if s.capture != nil {
			s.capture[v.Name] = true
		}
		return v
	}
	panic(fmt.Sprintf("smt: readBase on %T", m))
}

// Check runs the SAT search.
func (s *Solver) Check() sat.Status { return s.sat.Solve() }

// Stats is the solver's cumulative effort counter set: the CDCL search
// counters of the backend, the blast-cache traffic of the Tseitin encoder,
// and the memory-elimination work (Ackermann read variables introduced and
// functional-consistency constraints asserted). Telemetry snapshots it
// around each query and records the Sub delta, so one type serves live
// tracing, the debug endpoint, and tests.
type Stats struct {
	// Conflicts, Decisions, and Propagations are the backend CDCL search
	// counters (sat.Stats).
	Conflicts    int64
	Decisions    int64
	Propagations int64

	// BlastHits and BlastMisses count hash-consed CNF cache lookups in the
	// bit-blaster, across both bitvector and boolean expressions.
	BlastHits   int64
	BlastMisses int64

	// AckermannReads is the number of fresh read variables introduced by
	// memory elimination; AckermannConstraints the number of functional-
	// consistency implications asserted for them (quadratic in reads per
	// memory, the §5-style blowup this layer makes observable).
	AckermannReads       int64
	AckermannConstraints int64

	// SharedClauses counts learnt clauses imported from the portfolio's
	// clause-share pool, summed over all workers. Always 0 for the classic
	// single-solver backend.
	SharedClauses int64
}

// Sub returns the counter deltas st - prev.
func (st Stats) Sub(prev Stats) Stats {
	return Stats{
		Conflicts:            st.Conflicts - prev.Conflicts,
		Decisions:            st.Decisions - prev.Decisions,
		Propagations:         st.Propagations - prev.Propagations,
		BlastHits:            st.BlastHits - prev.BlastHits,
		BlastMisses:          st.BlastMisses - prev.BlastMisses,
		AckermannReads:       st.AckermannReads - prev.AckermannReads,
		AckermannConstraints: st.AckermannConstraints - prev.AckermannConstraints,
		SharedClauses:        st.SharedClauses - prev.SharedClauses,
	}
}

// Stats snapshots the solver's effort counters.
func (s *Solver) Stats() Stats {
	ss := s.sat.Stats()
	cs := s.bl.CacheStats()
	return Stats{
		Conflicts:            ss.Conflicts,
		Decisions:            ss.Decisions,
		Propagations:         ss.Propagations,
		BlastHits:            cs.Hits(),
		BlastMisses:          cs.Misses(),
		AckermannReads:       int64(s.nreads),
		AckermannConstraints: s.ackConstraints,
		SharedClauses:        ss.SharedIn,
	}
}

// LastWinner reports which portfolio worker decided the previous check
// (1-based), or 0 when the backend is a single solver or the check returned
// Unknown. The telemetry layer records it per query.
func (s *Solver) LastWinner() int {
	if p, ok := s.sat.(*sat.Portfolio); ok {
		return p.LastWinner()
	}
	return 0
}

// PortfolioWins returns the per-worker verdict tallies of the portfolio
// backend, or nil for a single-solver backend.
func (s *Solver) PortfolioWins() []int64 {
	if p, ok := s.sat.(*sat.Portfolio); ok {
		return p.Wins()
	}
	return nil
}

// Model extracts the current satisfying assignment, including reconstructed
// memory images for every memory variable that was read.
func (s *Solver) Model() *expr.Assignment {
	// Build the assignment in the solver's internal name space first — the
	// read address expressions evaluated below live there — and translate
	// the keys to caller space at the end.
	a := expr.NewAssignment()
	for name := range s.bvVars {
		if s.bl.HasVar(name) {
			a.BV[name] = s.bl.VarValue(name)
		}
	}
	for name := range s.boolVars {
		a.Bool[name] = s.bl.BoolVarValue(name)
	}
	for memName, reads := range s.reads {
		mm := expr.NewMemModel(0)
		for _, ri := range reads {
			addr := a.EvalBV(ri.addr)
			mm.Set(addr, a.BV[ri.v.Name])
		}
		a.Mem[memName] = mm
	}
	if s.rn == nil {
		return a
	}
	out := expr.NewAssignment()
	for name, v := range a.BV {
		out.BV[s.rn.out(name)] = v
	}
	for name, v := range a.Bool {
		out.Bool[s.rn.out(name)] = v
	}
	for name, mm := range a.Mem {
		out.Mem[s.rn.out(name)] = mm
	}
	return out
}

// VarNames returns the sorted names of all bitvector variables known to the
// solver (including internal read variables, whose names start with "$rd_").
func (s *Solver) VarNames() []string {
	names := make([]string, 0, len(s.bvVars))
	for n := range s.bvVars {
		names = append(names, s.rnOut(n))
	}
	sort.Strings(names)
	return names
}

// ReadVarNames returns the names of the Ackermann read variables of the
// given memory, in introduction order.
func (s *Solver) ReadVarNames(mem string) []string {
	var names []string
	for _, ri := range s.reads[s.rnIn(mem)] {
		names = append(names, s.rnOut(ri.v.Name))
	}
	return names
}

// BlockVars adds a blocking clause ruling out the current model's values of
// the named bitvector variables, so the next Check yields a model that
// differs in at least one of them. Names without encoded bits are skipped.
// It returns false if nothing could be blocked (no named variable encoded).
func (s *Solver) BlockVars(names []string) bool {
	var clause []sat.Lit
	for _, name := range names {
		name = s.rnIn(name)
		if !s.bl.HasVar(name) {
			continue
		}
		w := s.bvVars[name]
		if w == 0 {
			w = 64
		}
		val := s.bl.VarValue(name)
		bits := s.bl.VarBits(name, w)
		for i, l := range bits {
			if val>>uint(i)&1 == 1 {
				clause = append(clause, l.Neg())
			} else {
				clause = append(clause, l)
			}
		}
	}
	if len(clause) == 0 {
		return false
	}
	s.sat.AddClause(clause...)
	return true
}

// BlockVarsUnder is BlockVars restricted to the scope of h: the blocking
// clause carries ¬h.act, so it only forbids the model during CheckUnder
// calls that activate h. Other scopes sharing this solver are unaffected.
func (s *Solver) BlockVarsUnder(h Handle, names []string) bool {
	if !h.valid {
		return s.BlockVars(names)
	}
	clause := []sat.Lit{h.act.Neg()}
	for _, name := range names {
		name = s.rnIn(name)
		if !s.bl.HasVar(name) {
			continue
		}
		w := s.bvVars[name]
		if w == 0 {
			w = 64
		}
		val := s.bl.VarValue(name)
		bits := s.bl.VarBits(name, w)
		for i, l := range bits {
			if val>>uint(i)&1 == 1 {
				clause = append(clause, l.Neg())
			} else {
				clause = append(clause, l)
			}
		}
	}
	if len(clause) == 1 {
		return false
	}
	s.sat.AddClause(clause...)
	return true
}
