package stage

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestCancelWhileStalledDoesNotLeakGoroutines wedges a pipeline on
// backpressure — tiny buffers, a slow producer-side fan-out and no collector
// draining the tail — then cancels it and checks every worker goroutine
// exits. Workers blocked sending output must take the ctx.Done arm of their
// select; a missing Done case would park them on the full channel forever.
func TestCancelWhileStalledDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	c := NewCoord(context.Background())
	src := Source(c, "gen", 0, 1000, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	mid := Attach(c, Func[int, int]{"double", func(ctx context.Context, v int) (int, error) {
		return v * 2, nil
	}}, 4, 1, src)
	// A second stage with an unbuffered output and no consumer: its workers
	// fill the one-slot pipe and stall on send.
	_ = Attach(c, Func[int, int]{"stall", func(ctx context.Context, v int) (int, error) {
		return v + 1, nil
	}}, 4, 0, mid)

	// Let the pipeline actually wedge: the stall stage must have received
	// items and be blocked emitting them before we pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snaps := c.Snapshots()
		if snaps[2].In > snaps[2].Out {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pipeline never stalled on backpressure")
		}
		time.Sleep(time.Millisecond)
	}

	c.Cancel()

	// Goroutine counts are asynchronous: exits race with our observation, so
	// poll with a deadline before declaring a leak.
	var after int
	for i := 0; i < 200; i++ {
		runtime.Gosched()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after cancel: before=%d after=%d\n%s", before, after, buf[:n])
}

// TestCancelMidCollectUnblocks covers the collector side of the same
// contract: Collect blocked waiting for input must return the context error
// on cancellation rather than waiting for a close that never comes.
func TestCancelMidCollectUnblocks(t *testing.T) {
	before := runtime.NumGoroutine()

	c := NewCoord(context.Background())
	// A source that produces one item and then blocks forever (until
	// cancellation) keeps the collector starved mid-run.
	src := Source(c, "gen", 0, 2, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return i, nil
	})
	done := make(chan error, 1)
	go func() {
		done <- Collect(c, "sink", src, func(it Item[int]) error { return nil })
	}()

	time.Sleep(10 * time.Millisecond)
	c.Cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Collect returned nil after cancellation mid-stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Collect did not return after cancel")
	}

	var after int
	for i := 0; i < 200; i++ {
		runtime.Gosched()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after cancel: before=%d after=%d\n%s", before, after, buf[:n])
}
