// Package stage is the plumbing of the staged campaign engine: typed
// pipeline stages connected by bounded channels, each driven by its own
// worker pool, with cooperative cancellation and a metrics spine.
//
// The design mirrors the paper's Fig. 1 pipeline (generate → lift →
// symbolically execute → synthesize relation → generate inputs → run on
// platform → analyze): every box becomes a Stage, every arrow a bounded
// channel, and the engine overlaps the boxes — test generation for program
// p+1 runs while program p executes on the platform.
//
// Determinism by ordering: every work item carries the sequence index its
// source assigned (Item.Index). Stages run items concurrently and may emit
// them out of order, but each stage emits exactly one output item per input
// item, so the terminal Collect can re-establish the source order with a
// reorder buffer. Campaign counts are therefore identical to a sequential
// run regardless of worker counts — only wall clock changes.
//
// Failure protocol: the first error at index q makes q the cutoff. Items
// above the cutoff are skipped (they ride through the pipeline as
// ErrSkipped tombstones so the reorder buffer stays gap-free), items below
// it complete normally, and the reported error is the one with the lowest
// index regardless of worker scheduling. External cancellation via the
// Coord's context tears the whole pipeline down promptly.
package stage

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one box of the pipeline: a pure per-item transformation from In
// to Out. Run must be safe for concurrent calls (one per worker) and should
// honor ctx for long computations; the engine also checks ctx between
// items.
type Stage[In, Out any] interface {
	Name() string
	Run(ctx context.Context, in In) (Out, error)
}

// Func adapts an ordinary function to a Stage.
type Func[In, Out any] struct {
	StageName string
	F         func(context.Context, In) (Out, error)
}

// Name implements Stage.
func (f Func[In, Out]) Name() string { return f.StageName }

// Run implements Stage.
func (f Func[In, Out]) Run(ctx context.Context, in In) (Out, error) { return f.F(ctx, in) }

// Item is one unit of work in flight, tagged with the sequence index its
// source assigned. Err carries a processing failure (or ErrSkipped) past
// downstream stages so the terminal collector sees every index exactly once.
type Item[T any] struct {
	Index int
	Val   T
	Err   error
}

// ErrSkipped marks an item that was dropped because its index lies above
// the failure cutoff; its payload was never computed.
var ErrSkipped = errors.New("stage: skipped past failure cutoff")

// ErrStop, returned by a Source generator, ends production cleanly: no
// further items are generated, no failure is recorded, and everything
// already in flight drains through the pipeline to the collector. It is the
// graceful-shutdown seam — distinct from Coord.Cancel, which tears down
// in-flight work instead of draining it.
var ErrStop = errors.New("stage: source stopped")

// PanicError wraps a panic recovered from a stage body. The pipeline treats
// it like any other processing error — the item fails, the failure cutoff
// protocol applies — instead of letting one pathological program (a lifter
// or solver panic) crash the whole process. Stack is the panicking
// goroutine's stack, captured at recovery.
type PanicError struct {
	Stage string // stage (or source) name
	Value any    // the value passed to panic
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("stage %s: panic: %v\n%s", p.Stage, p.Value, p.Stack)
}

// runItem invokes f, converting a panic into a *PanicError. The item-level
// work of Source and Attach goes through it so a panicking stage body
// follows the lowest-index failure protocol like a returned error.
func runItem[In, Out any](ctx context.Context, name string, in In, f func(context.Context, In) (Out, error)) (out Out, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Stage: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return f(ctx, in)
}

// Metrics is one stage's live counter set. All fields are atomic: workers
// update them concurrently and Snapshot may be read while the pipeline runs.
type Metrics struct {
	name    string
	workers int

	in, out, skipped, failed atomic.Int64
	busyNS, waitNS, stallNS  atomic.Int64
}

// Snapshot is a point-in-time copy of one stage's metrics, the unit of the
// campaign's Result.Stages spine.
type Snapshot struct {
	Name    string
	Workers int
	In      int64         // items received
	Out     int64         // items emitted (includes tombstones)
	Skipped int64         // items dropped past the failure cutoff
	Failed  int64         // items whose Run returned an error
	Busy    time.Duration // total time inside Stage.Run, summed over workers
	Wait    time.Duration // total time blocked receiving input (starvation)
	Stall   time.Duration // total time blocked sending output (backpressure)
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Name:    m.name,
		Workers: m.workers,
		In:      m.in.Load(),
		Out:     m.out.Load(),
		Skipped: m.skipped.Load(),
		Failed:  m.failed.Load(),
		Busy:    time.Duration(m.busyNS.Load()),
		Wait:    time.Duration(m.waitNS.Load()),
		Stall:   time.Duration(m.stallNS.Load()),
	}
}

// Coord is the shared control state of one pipeline run: the cancellation
// context, the failure cutoff, the lowest-index error, and the metrics of
// every attached stage (in attach order).
type Coord struct {
	ctx    context.Context
	cancel context.CancelFunc

	cutoff atomic.Int64 // lowest failed index; items above it are skipped

	mu       sync.Mutex
	firstIdx int
	firstErr error
	metrics  []*Metrics
}

// NewCoord derives a pipeline coordinator from a parent context. Cancel
// must be called when the run is over (defer it next to the Collect call).
func NewCoord(ctx context.Context) *Coord {
	cctx, cancel := context.WithCancel(ctx)
	c := &Coord{ctx: cctx, cancel: cancel, firstIdx: math.MaxInt}
	c.cutoff.Store(math.MaxInt64)
	return c
}

// Context returns the run's cancellation context.
func (c *Coord) Context() context.Context { return c.ctx }

// Cancel tears the pipeline down: sources stop producing and workers abort
// between items.
func (c *Coord) Cancel() { c.cancel() }

// Fail records a processing error for the item at index. The cutoff drops
// to the lowest failing index; items above it are skipped from then on,
// items below it still complete, which makes FirstErr deterministic
// regardless of worker scheduling.
func (c *Coord) Fail(index int, err error) {
	for {
		cur := c.cutoff.Load()
		if int64(index) >= cur {
			break
		}
		if c.cutoff.CompareAndSwap(cur, int64(index)) {
			break
		}
	}
	c.mu.Lock()
	if index < c.firstIdx {
		c.firstIdx, c.firstErr = index, err
	}
	c.mu.Unlock()
}

// FirstErr returns the recorded error with the lowest item index, or a nil
// error when every item succeeded.
func (c *Coord) FirstErr() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstIdx, c.firstErr
}

// Snapshots returns the metrics of every stage attached so far, in attach
// (pipeline) order.
func (c *Coord) Snapshots() []Snapshot {
	c.mu.Lock()
	ms := append([]*Metrics(nil), c.metrics...)
	c.mu.Unlock()
	out := make([]Snapshot, len(ms))
	for i, m := range ms {
		out[i] = m.Snapshot()
	}
	return out
}

func (c *Coord) addMetrics(name string, workers int) *Metrics {
	m := &Metrics{name: name, workers: workers}
	c.mu.Lock()
	c.metrics = append(c.metrics, m)
	c.mu.Unlock()
	return m
}

// Source starts the pipeline's producer: a single goroutine calling gen for
// indexes 0..n-1 in order (so gen may own sequential state, e.g. the
// program-generation RNG) and emitting tagged items on a channel with the
// given buffer. Production stops early at cancellation, at the failure
// cutoff, or when gen itself fails.
func Source[T any](c *Coord, name string, buf, n int, gen func(ctx context.Context, i int) (T, error)) <-chan Item[T] {
	m := c.addMetrics(name, 1)
	out := make(chan Item[T], buf)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			if c.ctx.Err() != nil || int64(i) > c.cutoff.Load() {
				return
			}
			t0 := time.Now()
			v, err := runItem(c.ctx, name, i, gen)
			m.busyNS.Add(time.Since(t0).Nanoseconds())
			it := Item[T]{Index: i, Val: v}
			if errors.Is(err, ErrStop) {
				return
			}
			if err != nil {
				c.Fail(i, err)
				m.failed.Add(1)
				return
			}
			s0 := time.Now()
			select {
			case out <- it:
				m.stallNS.Add(time.Since(s0).Nanoseconds())
				m.out.Add(1)
			case <-c.ctx.Done():
				return
			}
		}
	}()
	return out
}

// Attach connects a stage to its input channel with the given worker count
// and output buffer, returning the output channel. Each worker loops:
// receive, skip-or-run, emit. Items that arrive already failed (or above
// the cutoff) pass through as tombstones without invoking the stage, so
// every input index reaches the output exactly once.
func Attach[In, Out any](c *Coord, s Stage[In, Out], workers, buf int, in <-chan Item[In]) <-chan Item[Out] {
	if workers < 1 {
		workers = 1
	}
	m := c.addMetrics(s.Name(), workers)
	out := make(chan Item[Out], buf)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				w0 := time.Now()
				var it Item[In]
				var ok bool
				select {
				case it, ok = <-in:
				case <-c.ctx.Done():
					return
				}
				m.waitNS.Add(time.Since(w0).Nanoseconds())
				if !ok {
					return
				}
				m.in.Add(1)
				o := Item[Out]{Index: it.Index, Err: it.Err}
				switch {
				case it.Err != nil:
					// Tombstone from upstream: pass through untouched.
				case int64(it.Index) > c.cutoff.Load():
					o.Err = ErrSkipped
					m.skipped.Add(1)
				default:
					b0 := time.Now()
					v, err := runItem(c.ctx, s.Name(), it.Val, s.Run)
					m.busyNS.Add(time.Since(b0).Nanoseconds())
					if err != nil {
						c.Fail(it.Index, err)
						o.Err = err
						m.failed.Add(1)
					} else {
						o.Val = v
					}
				}
				s0 := time.Now()
				select {
				case out <- o:
					m.stallNS.Add(time.Since(s0).Nanoseconds())
					m.out.Add(1)
				case <-c.ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Collect is the pipeline's terminal stage: it drains in and invokes fn in
// strict ascending index order (0, 1, 2, ...), buffering out-of-order
// arrivals, which re-establishes source order — the determinism-by-ordering
// contract. Tombstoned items (Err != nil) are passed to fn too so it can
// account for them; fn returning an error aborts the run. Collect returns
// when the channel closes or the context is cancelled.
func Collect[T any](c *Coord, name string, in <-chan Item[T], fn func(Item[T]) error) error {
	m := c.addMetrics(name, 1)
	pending := make(map[int]Item[T])
	next := 0
	emit := func(it Item[T]) error {
		b0 := time.Now()
		err := fn(it)
		m.busyNS.Add(time.Since(b0).Nanoseconds())
		if err != nil {
			m.failed.Add(1)
			return err
		}
		m.out.Add(1)
		return nil
	}
	flush := func() error {
		for {
			it, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			next++
			if err := emit(it); err != nil {
				return err
			}
		}
	}
	for {
		w0 := time.Now()
		select {
		case it, ok := <-in:
			m.waitNS.Add(time.Since(w0).Nanoseconds())
			if !ok {
				// The source may have stopped early (cutoff), so the tail of
				// the index space never arrives; what did arrive is a
				// contiguous prefix and flush has already emitted it. Any
				// leftovers mean an upstream bug — emit them in index order
				// anyway rather than dropping silently.
				for len(pending) > 0 {
					lo := math.MaxInt
					for i := range pending {
						if i < lo {
							lo = i
						}
					}
					it := pending[lo]
					delete(pending, lo)
					if err := emit(it); err != nil {
						return err
					}
				}
				return nil
			}
			m.in.Add(1)
			pending[it.Index] = it
			if err := flush(); err != nil {
				return err
			}
		case <-c.ctx.Done():
			return c.ctx.Err()
		}
	}
}
