package stage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// buildDoubler wires source → double → collect and returns the collected
// values in emit order.
func TestPipelineOrderAndMetrics(t *testing.T) {
	c := NewCoord(context.Background())
	defer c.Cancel()
	const n = 20
	src := Source(c, "src", 4, n, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	// Several workers so items can overtake each other; a tiny index-odd
	// delay makes reordering likely.
	doubled := Attach(c, Func[int, int]{StageName: "double", F: func(_ context.Context, v int) (int, error) {
		if v%2 == 1 {
			time.Sleep(time.Millisecond)
		}
		return 2 * v, nil
	}}, 4, 4, src)
	var got []int
	if err := Collect(c, "collect", doubled, func(it Item[int]) error {
		if it.Err != nil {
			t.Fatalf("unexpected item error: %v", it.Err)
		}
		got = append(got, it.Val)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("collected %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("item %d out of order: got %d, want %d", i, v, 2*i)
		}
	}
	if _, err := c.FirstErr(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	snaps := c.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("snapshots: %d", len(snaps))
	}
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if s := byName["src"]; s.Out != n {
		t.Errorf("source out = %d", s.Out)
	}
	if s := byName["double"]; s.In != n || s.Out != n || s.Workers != 4 || s.Busy <= 0 {
		t.Errorf("double metrics: %+v", s)
	}
	if s := byName["collect"]; s.In != n || s.Out != n {
		t.Errorf("collect metrics: %+v", s)
	}
}

// A single-worker stage failing at index 3: indexes 0..2 complete, the
// failure is recorded at 3, and everything after rides through as skipped
// tombstones that the downstream stage never processes.
func TestFailureCutoffSkipsTail(t *testing.T) {
	c := NewCoord(context.Background())
	defer c.Cancel()
	const n = 10
	boom := errors.New("boom")
	// Pre-fill the input so every index is already in flight when the
	// failure hits: the tail must then ride through as skipped tombstones.
	src := make(chan Item[int], n)
	for i := 0; i < n; i++ {
		src <- Item[int]{Index: i, Val: i}
	}
	close(src)
	st1 := Attach(c, Func[int, int]{StageName: "fail3", F: func(_ context.Context, v int) (int, error) {
		if v == 3 {
			return 0, boom
		}
		return v, nil
	}}, 1, 1, (<-chan Item[int])(src))
	var processed []int
	st2 := Attach(c, Func[int, int]{StageName: "witness", F: func(_ context.Context, v int) (int, error) {
		processed = append(processed, v)
		return v, nil
	}}, 1, 1, st1)
	var okIdx, skippedIdx, failedIdx []int
	if err := Collect(c, "collect", st2, func(it Item[int]) error {
		switch {
		case it.Err == nil:
			okIdx = append(okIdx, it.Index)
		case errors.Is(it.Err, ErrSkipped):
			skippedIdx = append(skippedIdx, it.Index)
		default:
			failedIdx = append(failedIdx, it.Index)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	idx, err := c.FirstErr()
	if !errors.Is(err, boom) || idx != 3 {
		t.Fatalf("FirstErr = (%d, %v), want (3, boom)", idx, err)
	}
	// The witness stage must have run exactly the pre-failure items: with
	// single workers everywhere, order is preserved and the cutoff is set
	// before item 4 is considered.
	if fmt.Sprint(processed) != "[0 1 2]" {
		t.Fatalf("witness processed %v", processed)
	}
	if fmt.Sprint(okIdx) != "[0 1 2]" || fmt.Sprint(failedIdx) != "[3]" {
		t.Fatalf("ok %v failed %v", okIdx, failedIdx)
	}
	if len(skippedIdx) == 0 {
		t.Fatal("no items skipped past the cutoff")
	}
	for _, s := range c.Snapshots() {
		if s.Name == "witness" && s.Skipped == 0 {
			// The skip may happen at fail3 already (cutoff was set by the
			// time the next item arrived there); witness then just passes
			// tombstones through. Either stage recording skips is fine, so
			// only check the total below.
			total := int64(0)
			for _, s2 := range c.Snapshots() {
				total += s2.Skipped
			}
			if total == 0 {
				t.Error("no stage recorded skipped items")
			}
		}
	}
}

// Concurrent failures at several indexes must deterministically report the
// lowest one, because lower-indexed items are never skipped.
func TestLowestIndexErrorWins(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		c := NewCoord(context.Background())
		const n = 30
		src := Source(c, "src", n, n, func(_ context.Context, i int) (int, error) { return i, nil })
		st := Attach(c, Func[int, int]{StageName: "multi-fail", F: func(_ context.Context, v int) (int, error) {
			if v == 5 || v == 6 || v == 25 {
				return 0, fmt.Errorf("fail-%d", v)
			}
			return v, nil
		}}, 8, 4, src)
		if err := Collect(c, "collect", st, func(Item[int]) error { return nil }); err != nil {
			t.Fatal(err)
		}
		idx, err := c.FirstErr()
		if idx != 5 || err == nil || err.Error() != "fail-5" {
			t.Fatalf("attempt %d: FirstErr = (%d, %v), want (5, fail-5)", attempt, idx, err)
		}
		c.Cancel()
	}
}

// External cancellation tears the pipeline down promptly even when a stage
// is slow, and Collect reports the context error.
func TestExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCoord(ctx)
	defer c.Cancel()
	var started atomic.Int64
	src := Source(c, "src", 1, 1000, func(_ context.Context, i int) (int, error) { return i, nil })
	slow := Attach(c, Func[int, int]{StageName: "slow", F: func(ctx context.Context, v int) (int, error) {
		started.Add(1)
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
		return v, nil
	}}, 2, 1, src)
	var wg sync.WaitGroup
	wg.Add(1)
	var collErr error
	go func() {
		defer wg.Done()
		collErr = Collect(c, "collect", slow, func(Item[int]) error { return nil })
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	wg.Wait()
	if !errors.Is(collErr, context.Canceled) {
		t.Fatalf("collect error = %v, want context.Canceled", collErr)
	}
	if s := started.Load(); s > 20 {
		t.Errorf("cancellation was not prompt: %d items started", s)
	}
}

// A collector error aborts the run.
func TestCollectorErrorAborts(t *testing.T) {
	c := NewCoord(context.Background())
	defer c.Cancel()
	src := Source(c, "src", 1, 10, func(_ context.Context, i int) (int, error) { return i, nil })
	errSink := errors.New("sink full")
	err := Collect(c, "collect", src, func(it Item[int]) error {
		if it.Index == 2 {
			return errSink
		}
		return nil
	})
	if !errors.Is(err, errSink) {
		t.Fatalf("collect error = %v", err)
	}
}

// A failing source records its error and stops producing.
func TestSourceFailure(t *testing.T) {
	c := NewCoord(context.Background())
	defer c.Cancel()
	boom := errors.New("genfail")
	src := Source(c, "src", 1, 10, func(_ context.Context, i int) (int, error) {
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	var seen []int
	if err := Collect(c, "collect", src, func(it Item[int]) error {
		seen = append(seen, it.Index)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seen) != "[0 1 2 3]" {
		t.Fatalf("collected %v", seen)
	}
	if idx, err := c.FirstErr(); idx != 4 || !errors.Is(err, boom) {
		t.Fatalf("FirstErr = (%d, %v)", idx, err)
	}
}
