package stage

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// A panicking stage body must not kill the worker or wedge the pipeline: the
// panic becomes a stack-annotated error on the item, and the failure protocol
// (lowest index wins, tail skipped) applies exactly as for a returned error.
func TestPanicRecoveredAsStageError(t *testing.T) {
	c := NewCoord(context.Background())
	defer c.Cancel()
	const n = 10
	src := Source(c, "src", 4, n, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	st := Attach(c, Func[int, int]{StageName: "boomer", F: func(_ context.Context, v int) (int, error) {
		if v == 2 {
			panic("kaboom at two")
		}
		return v, nil
	}}, 4, 4, src)
	var okIdx []int
	if err := Collect(c, "collect", st, func(it Item[int]) error {
		if it.Err == nil {
			okIdx = append(okIdx, it.Index)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	idx, err := c.FirstErr()
	if idx != 2 || err == nil {
		t.Fatalf("FirstErr = (%d, %v), want the panic at index 2", idx, err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Stage != "boomer" {
		t.Errorf("PanicError.Stage = %q, want boomer", pe.Stage)
	}
	if pe.Value != "kaboom at two" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("PanicError.Stack does not look like a stack trace")
	}
	if !strings.Contains(err.Error(), "boomer") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error text %q lacks stage name or panic value", err.Error())
	}
	// Items 0 and 1 must still have completed.
	for _, want := range []int{0, 1} {
		found := false
		for _, i := range okIdx {
			if i == want {
				found = true
			}
		}
		if !found {
			t.Errorf("pre-panic item %d did not complete", want)
		}
	}
}

// A panic in a source generator is recovered the same way.
func TestPanicInSourceRecovered(t *testing.T) {
	c := NewCoord(context.Background())
	defer c.Cancel()
	src := Source(c, "src", 1, 3, func(_ context.Context, i int) (int, error) {
		if i == 1 {
			panic(errors.New("generator exploded"))
		}
		return i, nil
	})
	if err := Collect(c, "collect", src, func(Item[int]) error { return nil }); err != nil {
		t.Fatal(err)
	}
	idx, err := c.FirstErr()
	if idx != 1 {
		t.Fatalf("FirstErr index = %d, want 1", idx)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Stage != "src" {
		t.Errorf("PanicError.Stage = %q, want src", pe.Stage)
	}
}
