package resilient

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for deterministic cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration, probes int) (*Breaker, *fakeClock, *[]string) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Name:             "test",
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		ProbeBudget:      probes,
		Now:              clk.Now,
		OnTransition: func(name string, from, to State) {
			transitions = append(transitions, fmt.Sprintf("%s:%v->%v", name, from, to))
		},
	})
	return b, clk, &transitions
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _, trans := newTestBreaker(3, time.Second, 1)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure trips it
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, want open/1", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if len(*trans) != 1 || (*trans)[0] != "test:closed->open" {
		t.Fatalf("transitions = %v", *trans)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second, 1)
	b.Failure()
	b.Failure()
	b.Success() // resets the consecutive count
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("third consecutive failure must trip")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	b, clk, trans := newTestBreaker(1, time.Second, 1)
	b.Failure()
	if b.State() != Open {
		t.Fatal("want open")
	}
	if b.Allow() {
		t.Fatal("cooldown not elapsed, must deny")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed, must admit a probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("probe success must close: %v", b.State())
	}
	want := []string{"test:closed->open", "test:open->half-open", "test:half-open->closed"}
	if len(*trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", *trans, want)
	}
	for i := range want {
		if (*trans)[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, (*trans)[i], want[i])
		}
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second, 1)
	b.Failure()
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("want probe admitted")
	}
	b.Failure()
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d, want open/2 after probe failure", b.State(), b.Trips())
	}
	// The re-open restarts the cooldown at the fake clock's current time.
	if b.Allow() {
		t.Fatal("re-opened breaker must deny until a fresh cooldown elapses")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("fresh cooldown elapsed, want probe admitted")
	}
}

func TestBreakerProbeBudget(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second, 2)
	b.Failure()
	clk.Advance(time.Second)
	if !b.Allow() { // promotes to half-open, consumes probe 1
		t.Fatal("probe 1 denied")
	}
	if !b.Allow() { // probe 2
		t.Fatal("probe 2 denied")
	}
	if b.Allow() { // budget exhausted
		t.Fatal("probe past the budget admitted")
	}
	b.Success() // any probe success closes
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied")
	}
}

func TestBreakerStaleReportsIgnored(t *testing.T) {
	b, _, _ := newTestBreaker(1, time.Second, 1)
	b.Failure() // open
	// Reports from calls admitted before the trip must not disturb an open
	// breaker.
	b.Success()
	b.Failure()
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, stale reports must be ignored", b.State(), b.Trips())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 5, Cooldown: time.Nanosecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if b.Allow() {
					if (i+j)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	// No assertion beyond absence of data races (run under -race) and a
	// coherent final state.
	_ = b.State()
	_ = b.Trips()
}
