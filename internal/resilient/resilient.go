// Package resilient provides the generic resilience primitives of the
// campaign runtime: transient/permanent error classification, a bounded
// retry loop with per-attempt deadlines and seeded-jitter exponential
// backoff (Do), and a closed/open/half-open circuit breaker (Breaker).
//
// The package is deliberately free of scamv types: it operates on plain
// functions and errors, and the root package wires it around the Platform
// interface (see scamv.Experiment.FailPolicy and scamv.MultiPlatform).
// The motivating failure mode is the paper's real execution substrate — a
// farm of Raspberry Pi boards driven over a debug bridge, where boards
// hang, resets fail, and measurements get lost — so the defaults lean
// toward "retry it": an unclassified error is treated as transient.
//
// Everything randomized is seeded (Policy.JitterSeed), so retry schedules
// are reproducible: the same call with the same seed backs off by the same
// delays.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Class classifies an error's retryability.
type Class int

// Error classes.
const (
	// Transient errors may succeed on retry (a flaky board, a lost
	// measurement, an attempt deadline).
	Transient Class = iota
	// Permanent errors will not be fixed by retrying (a dead backend, an
	// impossible request, a cancelled campaign).
	Permanent
)

func (c Class) String() string {
	if c == Permanent {
		return "permanent"
	}
	return "transient"
}

// classified wraps an error with an explicit class, recoverable by Classify
// through arbitrarily deep %w chains.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// MarkTransient marks err explicitly transient. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Transient}
}

// MarkPermanent marks err explicitly permanent. A nil err stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Permanent}
}

// Classify determines an error's class: an explicit mark wins; a cancelled
// context is permanent (the caller is tearing down — retrying fights the
// shutdown); a deadline is transient (the next attempt gets a fresh one);
// everything else defaults to transient, the flaky-board assumption.
func Classify(err error) Class {
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	if errors.Is(err, context.Canceled) {
		return Permanent
	}
	return Transient
}

// ErrBreakerOpen is returned by Do when the policy's circuit breaker denies
// the call before any attempt is made.
var ErrBreakerOpen = errors.New("resilient: circuit breaker open")

// Policy configures one Do call.
type Policy struct {
	// Timeout is the per-attempt deadline (0 = none). An attempt that
	// exceeds it fails with context.DeadlineExceeded, which classifies as
	// transient.
	Timeout time.Duration
	// Retries is the number of re-attempts after the first try (0 = one
	// attempt, no retry). Only transient failures are retried.
	Retries int

	// BackoffBase is the delay before the first retry (default 1ms); each
	// further retry doubles it, capped at BackoffMax (default 250ms). The
	// actual delay is scaled by a seeded jitter factor in [0.5, 1.5).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed derives the deterministic jitter stream for this call;
	// callers salt it per call identity so parallel calls de-synchronize
	// while any single call's schedule stays reproducible.
	JitterSeed uint64

	// Breaker, when non-nil, gates every attempt: a denied attempt returns
	// ErrBreakerOpen immediately, and attempt outcomes feed the breaker.
	Breaker *Breaker

	// ClassifyErr overrides the default Classify.
	ClassifyErr func(error) Class

	// OnRetry is invoked before each backoff sleep with the failing attempt
	// index (0-based) and its error. OnTimeout is invoked when an attempt
	// hits the per-attempt deadline. Both are optional telemetry hooks.
	OnRetry   func(attempt int, err error)
	OnTimeout func(attempt int)

	// Sleep replaces the context-aware backoff sleep in tests.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Outcome reports what one Do call spent.
type Outcome struct {
	Attempts      int  // attempts actually made
	Retries       int  // backoff-and-retry transitions
	Timeouts      int  // attempts that hit the per-attempt deadline
	BreakerDenied bool // the breaker refused the call before any attempt
}

// Splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer with full
// avalanche, the shared seed-derivation primitive of the resilience and
// fault-injection layers (and of the campaign noise seeds in the root
// package). Deriving every randomized schedule from it keeps chaos tests
// reproducible.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff computes the jittered delay before retrying after attempt.
func backoff(p Policy, attempt int) time.Duration {
	base := p.BackoffBase
	if base <= 0 {
		base = time.Millisecond
	}
	cap := p.BackoffMax
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	shift := attempt
	if shift > 20 {
		shift = 20
	}
	d := base << uint(shift)
	if d > cap || d <= 0 {
		d = cap
	}
	// Jitter factor in [0.5, 1.5), derived deterministically from the seed
	// and the attempt index.
	h := Splitmix64(p.JitterSeed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	frac := 0.5 + float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs f with the policy's deadline, retry, and breaker semantics:
// each attempt gets its own deadline-bounded context derived from ctx;
// transient failures are retried up to p.Retries times with jittered
// exponential backoff; permanent failures, breaker denials, and parent
// cancellation stop immediately. The returned error is the last attempt's
// (with timeout attempts annotated), and the Outcome is always valid.
func Do[T any](ctx context.Context, p Policy, f func(context.Context) (T, error)) (T, Outcome, error) {
	var zero T
	var o Outcome
	classify := p.ClassifyErr
	if classify == nil {
		classify = Classify
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, o, err
		}
		if p.Breaker != nil && !p.Breaker.Allow() {
			o.BreakerDenied = true
			return zero, o, ErrBreakerOpen
		}
		o.Attempts++
		actx := ctx
		var cancel context.CancelFunc
		if p.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.Timeout)
		}
		v, err := f(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if p.Breaker != nil {
				p.Breaker.Success()
			}
			return v, o, nil
		}
		if p.Breaker != nil {
			p.Breaker.Failure()
		}
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// The attempt deadline fired (the parent is still live).
			o.Timeouts++
			if p.OnTimeout != nil {
				p.OnTimeout(attempt)
			}
			err = fmt.Errorf("attempt %d exceeded the %v deadline: %w", attempt, p.Timeout, err)
		}
		if ctx.Err() != nil || classify(err) == Permanent || attempt >= p.Retries {
			return zero, o, err
		}
		o.Retries++
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if d := backoff(p, attempt); d > 0 {
			if serr := sleep(ctx, d); serr != nil {
				return zero, o, serr
			}
		}
	}
}
