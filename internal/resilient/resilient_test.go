package resilient

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// noSleep replaces the backoff sleep so retry tests run instantly.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func TestClassify(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"default transient", base, Transient},
		{"marked transient", MarkTransient(base), Transient},
		{"marked permanent", MarkPermanent(base), Permanent},
		{"wrapped mark survives", fmt.Errorf("outer: %w", MarkPermanent(base)), Permanent},
		{"deadline transient", context.DeadlineExceeded, Transient},
		{"canceled permanent", context.Canceled, Permanent},
		{"wrapped canceled", fmt.Errorf("ctx: %w", context.Canceled), Permanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil {
		t.Errorf("Mark* of nil must stay nil")
	}
	// Marks keep the message and the chain.
	if got := MarkPermanent(base).Error(); got != "boom" {
		t.Errorf("marked error message = %q", got)
	}
	if !errors.Is(MarkTransient(base), base) {
		t.Errorf("marked error must unwrap to the original")
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	calls := 0
	var retried []int
	p := Policy{
		Retries: 5,
		Sleep:   noSleep,
		OnRetry: func(attempt int, err error) { retried = append(retried, attempt) },
	}
	v, o, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, errors.New("flaky")
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Do = (%d, %v), want (42, nil)", v, err)
	}
	if calls != 3 || o.Attempts != 3 || o.Retries != 2 {
		t.Fatalf("calls=%d outcome=%+v, want 3 attempts 2 retries", calls, o)
	}
	if len(retried) != 2 || retried[0] != 0 || retried[1] != 1 {
		t.Fatalf("OnRetry attempts = %v, want [0 1]", retried)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	dead := MarkPermanent(errors.New("dead board"))
	_, o, err := Do(context.Background(), Policy{Retries: 10, Sleep: noSleep},
		func(context.Context) (int, error) {
			calls++
			return 0, dead
		})
	if !errors.Is(err, dead) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if calls != 1 || o.Attempts != 1 || o.Retries != 0 {
		t.Fatalf("permanent error must not retry: calls=%d outcome=%+v", calls, o)
	}
}

func TestDoExhaustsRetryBudget(t *testing.T) {
	calls := 0
	_, o, err := Do(context.Background(), Policy{Retries: 3, Sleep: noSleep},
		func(context.Context) (int, error) {
			calls++
			return 0, errors.New("always flaky")
		})
	if err == nil {
		t.Fatal("want error after exhausted budget")
	}
	if calls != 4 || o.Attempts != 4 || o.Retries != 3 {
		t.Fatalf("calls=%d outcome=%+v, want 4 attempts 3 retries", calls, o)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	calls := 0
	timeouts := 0
	p := Policy{
		Timeout:   5 * time.Millisecond,
		Retries:   2,
		Sleep:     noSleep,
		OnTimeout: func(int) { timeouts++ },
	}
	_, o, err := Do(context.Background(), p, func(ctx context.Context) (int, error) {
		calls++
		if calls < 3 {
			<-ctx.Done() // simulate a hang that honors the deadline
			return 0, ctx.Err()
		}
		return 7, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || o.Timeouts != 2 || timeouts != 2 || o.Retries != 2 {
		t.Fatalf("calls=%d timeouts=%d outcome=%+v", calls, timeouts, o)
	}
}

func TestDoParentCancellationWinsOverRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, o, err := Do(ctx, Policy{Retries: 100, Sleep: noSleep},
		func(context.Context) (int, error) {
			calls++
			cancel()
			return 0, errors.New("flaky")
		})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 1 || o.Retries != 0 {
		t.Fatalf("cancelled parent must stop retrying: calls=%d outcome=%+v", calls, o)
	}
	// A fresh Do on a cancelled ctx makes no attempts at all.
	_, o, err = Do(ctx, Policy{Sleep: noSleep}, func(context.Context) (int, error) {
		t.Fatal("must not be called")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) || o.Attempts != 0 {
		t.Fatalf("cancelled ctx: err=%v outcome=%+v", err, o)
	}
}

func TestDoBreakerDenies(t *testing.T) {
	fake := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Now: func() time.Time { return fake }})
	b.Failure() // trip it
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	calls := 0
	_, o, err := Do(context.Background(), Policy{Breaker: b, Sleep: noSleep},
		func(context.Context) (int, error) {
			calls++
			return 0, nil
		})
	if !errors.Is(err, ErrBreakerOpen) || calls != 0 || !o.BreakerDenied {
		t.Fatalf("err=%v calls=%d outcome=%+v, want breaker denial", err, calls, o)
	}
}

func TestDoFeedsBreaker(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	_, _, err := Do(context.Background(), Policy{Retries: 2, Breaker: b, Sleep: noSleep},
		func(context.Context) (int, error) { return 0, errors.New("flaky") })
	if err == nil {
		t.Fatal("want error")
	}
	// 3 attempts = 3 consecutive failures = trip.
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, want open after 3 failures", b.State(), b.Trips())
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{BackoffBase: time.Millisecond, BackoffMax: 16 * time.Millisecond, JitterSeed: 99}
	var prev []time.Duration
	for round := 0; round < 2; round++ {
		var ds []time.Duration
		for a := 0; a < 10; a++ {
			d := backoff(p, a)
			lo := time.Duration(float64(minDur(p.BackoffBase<<uint(a), p.BackoffMax)) * 0.5)
			hi := time.Duration(float64(minDur(p.BackoffBase<<uint(a), p.BackoffMax)) * 1.5)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", a, d, lo, hi)
			}
			ds = append(ds, d)
		}
		if round == 1 {
			for i := range ds {
				if ds[i] != prev[i] {
					t.Fatalf("backoff not deterministic at attempt %d: %v != %v", i, ds[i], prev[i])
				}
			}
		}
		prev = ds
	}
	// A different seed produces a different schedule.
	q := p
	q.JitterSeed = 100
	same := true
	for a := 0; a < 10; a++ {
		if backoff(q, a) != prev[a] {
			same = false
		}
	}
	if same {
		t.Fatal("different jitter seeds produced identical schedules")
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b && a > 0 {
		return a
	}
	return b
}

func TestSplitmix64(t *testing.T) {
	// First output of the canonical splitmix64 stream seeded with 0.
	if got := Splitmix64(0); got != 0xE220A8397B1DCDAF {
		t.Fatalf("Splitmix64(0) = %#x, want 0xE220A8397B1DCDAF", got)
	}
	if Splitmix64(1) == Splitmix64(2) {
		t.Fatal("mixer collision on adjacent inputs")
	}
}
