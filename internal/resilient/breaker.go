package resilient

import (
	"sync"
	"time"
)

// State is a circuit-breaker state.
type State int

// Breaker states. Closed admits everything; Open denies everything until the
// cooldown elapses; HalfOpen admits a bounded probe budget whose outcomes
// decide between re-closing and re-opening.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig configures a Breaker. The zero value gets sane defaults:
// trip after 5 consecutive failures, 250ms cooldown, 1 half-open probe.
type BreakerConfig struct {
	// Name labels the breaker in transition hooks and telemetry.
	Name string
	// FailureThreshold is the number of consecutive failures that trips a
	// closed breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker denies calls before admitting
	// half-open probes (default 250ms).
	Cooldown time.Duration
	// ProbeBudget is how many concurrent probe calls a half-open breaker
	// admits (default 1).
	ProbeBudget int
	// Now replaces time.Now in tests for deterministic cooldown handling.
	Now func() time.Time
	// OnTransition is invoked (outside the breaker lock) on every state
	// change.
	OnTransition func(name string, from, to State)
}

// Breaker is a per-platform-instance circuit breaker. Callers ask Allow
// before an attempt and report Success or Failure after it; the breaker
// trips open after FailureThreshold consecutive failures, denies calls for
// Cooldown, then admits up to ProbeBudget half-open probes — one probe
// success re-closes it, one probe failure re-opens it.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped open
	inFlight int       // admitted half-open probes awaiting a report
	trips    uint64    // lifetime closed/half-open → open transitions
}

// NewBreaker builds a Breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 250 * time.Millisecond
	}
	if cfg.ProbeBudget <= 0 {
		cfg.ProbeBudget = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Name returns the configured breaker name.
func (b *Breaker) Name() string { return b.cfg.Name }

// SetOnTransition installs the transition hook after construction (used to
// wire telemetry that exists only once the campaign starts).
func (b *Breaker) SetOnTransition(f func(name string, from, to State)) {
	b.mu.Lock()
	b.cfg.OnTransition = f
	b.mu.Unlock()
}

// transition changes state under b.mu and returns the hook invocation to run
// after unlocking (hooks must not run under the lock — they may call back).
func (b *Breaker) transition(to State) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if to == Open {
		b.trips++
		b.openedAt = b.cfg.Now()
	}
	if hook := b.cfg.OnTransition; hook != nil {
		name := b.cfg.Name
		return func() { hook(name, from, to) }
	}
	return nil
}

// Allow reports whether a call may proceed. An open breaker whose cooldown
// has elapsed moves to half-open; a half-open breaker admits calls up to its
// probe budget.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var hook func()
	ok := false
	switch b.state {
	case Closed:
		ok = true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			hook = b.transition(HalfOpen)
			b.inFlight = 1
			ok = true
		}
	case HalfOpen:
		if b.inFlight < b.cfg.ProbeBudget {
			b.inFlight++
			ok = true
		}
	}
	b.mu.Unlock()
	if hook != nil {
		hook()
	}
	return ok
}

// Success reports a successful call. A half-open probe success re-closes the
// breaker; a closed success resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	var hook func()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.inFlight = 0
		b.failures = 0
		hook = b.transition(Closed)
	case Open:
		// A stale report from a call admitted before the trip: ignore.
	}
	b.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// Failure reports a failed call. The threshold's worth of consecutive
// closed failures trips the breaker open; any half-open probe failure
// re-opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var hook func()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			hook = b.transition(Open)
		}
	case HalfOpen:
		b.inFlight = 0
		hook = b.transition(Open)
	case Open:
		// Stale report; the breaker is already open.
	}
	b.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// State returns the current state (open breakers past their cooldown still
// report Open until an Allow promotes them).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
