package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket 0 holds
// sub-microsecond durations; bucket i (i > 0) holds durations in
// [2^(i-1), 2^i) microseconds. Bucket 39 tops out above 2^38 µs ≈ 76 hours,
// far beyond any single span or query.
const histBuckets = 40

// Histogram is a fixed-bucket log2 latency histogram. Observe costs one
// bit-length computation and three atomic adds — no floating point and no
// allocation — so it is safe to call from every pipeline worker on every
// solver query. Quantile estimation (report time only) returns the upper
// bound of the bucket containing the requested rank, an upward-biased
// estimate with at most 2x relative error, which is plenty to rank stages
// and spot tail blowups.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sumUS  atomic.Int64
	maxUS  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(us))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one duration. Safe for concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// NumBuckets is the number of fixed log2 buckets, for consumers exporting
// the raw bucket counts (the /metrics Prometheus histogram rendering).
const NumBuckets = histBuckets

// Buckets returns a copy of the per-bucket counts. Bucket 0 holds
// sub-microsecond observations; bucket i (i > 0) holds [2^(i-1), 2^i) µs;
// the last bucket additionally absorbs everything past its lower edge.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

// BucketUpperUS returns the inclusive upper edge of bucket i in microseconds
// (durations are truncated to µs before bucketing, so the edge is exact).
// The last bucket is unbounded and returns -1.
func BucketUpperUS(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= histBuckets-1:
		return -1
	default:
		return (int64(1) << uint(i)) - 1
	}
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sumUS.Load()) * time.Microsecond
}

// Max returns the largest observed duration (at microsecond granularity).
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the bucket containing the ceil(q*count)-th observation,
// clamped to the observed maximum. It returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == histBuckets-1 {
				// The top bucket is unbounded; its finite "edge" would
				// understate any saturating observation.
				return h.Max()
			}
			var upper int64
			if i > 0 {
				upper = (int64(1) << uint(i)) - 1
			}
			if max := h.maxUS.Load(); upper > max {
				upper = max
			}
			return time.Duration(upper) * time.Microsecond
		}
	}
	return h.Max()
}

// Quantiles is the (p50, p95, p99) triple every latency table reports.
func (h *Histogram) Quantiles() (p50, p95, p99 time.Duration) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}
