package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestLivePageServes(t *testing.T) {
	srv := httptest.NewServer(DebugMux(New(nil)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/scamv/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	page := string(body)
	if !strings.Contains(page, "<!doctype html>") || !strings.Contains(page, "EventSource") {
		t.Error("live page missing expected skeleton")
	}
	// Zero external dependencies: no scripts, styles, images, or fonts
	// fetched from anywhere but the serving process itself.
	for _, needle := range []string{"http://", "https://", "src=", "href=", "@import", "url("} {
		if strings.Contains(page, needle) {
			t.Errorf("live page references an external asset (%q)", needle)
		}
	}
}

func TestSSEStreamTicks(t *testing.T) {
	tr := New(nil)
	tr.BeginCampaign("sse", 2)
	tr.Query(QueryEvent{Status: "sat", Dur: time.Millisecond})
	srv := httptest.NewServer(DebugMux(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/scamv/events?interval_ms=30")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}

	// Read two event frames: the immediate snapshot plus one tick.
	sc := bufio.NewScanner(resp.Body)
	var frames []countersJSON
	for sc.Scan() && len(frames) < 2 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var c countersJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &c); err != nil {
			t.Fatalf("SSE frame is not JSON: %v", err)
		}
		frames = append(frames, c)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d SSE frames, want 2 (scan err %v)", len(frames), sc.Err())
	}
	for i, c := range frames {
		if c.TotalPrograms != 2 || c.Queries != 1 {
			t.Errorf("frame %d: total_programs=%d queries=%d, want 2/1", i, c.TotalPrograms, c.Queries)
		}
	}
}

func TestSSEIntervalFloor(t *testing.T) {
	srv := httptest.NewServer(DebugMux(New(nil)))
	defer srv.Close()

	// A hostile interval_ms=1 must be floored, not honored: over ~100ms we
	// should see far fewer than 100 frames.
	resp, err := http.Get(srv.URL + "/debug/scamv/events?interval_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := time.After(100 * time.Millisecond)
	frames := 0
	sc := bufio.NewScanner(resp.Body)
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				frames++
			}
		}
	}()
	<-done
	resp.Body.Close()
	<-ch
	if frames > 10 {
		t.Errorf("%d frames in 100ms despite the interval floor", frames)
	}
}

func TestFlightEndpoint(t *testing.T) {
	tr := New(nil)
	srv := httptest.NewServer(DebugMux(tr))
	defer srv.Close()

	// No recorder attached: 404.
	resp, err := http.Get(srv.URL + "/debug/scamv/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d without a recorder, want 404", resp.StatusCode)
	}

	dir := t.TempDir()
	fr := tr.StartFlightRecorder(FlightConfig{RingSize: 8, Dir: dir, StallThreshold: -1})
	defer fr.Stop()
	tr.Verdict(0, 0, "ok", time.Millisecond)

	// GET: status document.
	resp, err = http.Get(srv.URL + "/debug/scamv/flight")
	if err != nil {
		t.Fatal(err)
	}
	var st FlightStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.RingSize != 8 || st.Events != 1 {
		t.Fatalf("GET status = %+v (err %v), want ring_size=8 events=1", st, err)
	}

	// POST: forced capture returns the bundle path.
	resp, err = http.Post(srv.URL+"/debug/scamv/flight?reason=smoke", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cap struct {
		Bundle string `json:"bundle"`
		Error  string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cap)
	resp.Body.Close()
	if err != nil || cap.Error != "" || cap.Bundle == "" {
		t.Fatalf("POST capture = %+v (err %v)", cap, err)
	}
	assertBundle(t, cap.Bundle, "smoke")
}

func TestDebugSnapshotCarriesObservatoryFields(t *testing.T) {
	tr := New(nil)
	tr.PlatformVerdict(0, 0, "a53", "counterexample", time.Millisecond)
	tr.SetPipelineSource(func() []PipelineStage {
		return []PipelineStage{{Name: "encode", Workers: 3, In: 5, Out: 4,
			Busy: time.Millisecond, Wait: 2 * time.Millisecond, Stall: 3 * time.Millisecond}}
	})
	fr := tr.StartFlightRecorder(FlightConfig{RingSize: 4, StallThreshold: -1})
	defer fr.Stop()

	srv := httptest.NewServer(DebugMux(tr))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/scamv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var c countersJSON
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if len(c.Platforms) != 1 || c.Platforms[0].Name != "a53" || c.Platforms[0].Counterexamples != 1 {
		t.Errorf("platforms = %+v", c.Platforms)
	}
	if len(c.Pipeline) != 1 || c.Pipeline[0].StallUS != 3000 || c.Pipeline[0].Workers != 3 {
		t.Errorf("pipeline = %+v", c.Pipeline)
	}
	if c.Flight == nil || c.Flight.RingSize != 4 {
		t.Errorf("flight = %+v", c.Flight)
	}
}
