package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	p50, p95, p99 := h.Quantiles()
	if p50 != 0 || p95 != 0 || p99 != 0 {
		t.Errorf("empty histogram quantiles = %v/%v/%v, want zeros", p50, p95, p99)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("empty histogram has non-zero aggregates")
	}
	for i, n := range h.Buckets() {
		if n != 0 {
			t.Fatalf("empty histogram bucket %d = %d", i, n)
		}
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Microsecond)
	// Every quantile of a single observation is that observation, clamped to
	// the recorded max (not the bucket's upper edge 511µs).
	p50, p95, p99 := h.Quantiles()
	if p50 != 300*time.Microsecond || p95 != p50 || p99 != p50 {
		t.Errorf("quantiles = %v/%v/%v, want 300µs each", p50, p95, p99)
	}
	if h.Count() != 1 || h.Sum() != 300*time.Microsecond {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramTopBucketSaturation(t *testing.T) {
	var h Histogram
	huge := 200 * time.Hour // 7.2e11 µs, past the last finite edge (2^38 µs)
	h.Observe(huge)
	h.Observe(2 * huge)

	buckets := h.Buckets()
	if buckets[NumBuckets-1] != 2 {
		t.Fatalf("top bucket holds %d, want both saturating observations", buckets[NumBuckets-1])
	}
	if BucketUpperUS(NumBuckets-1) != -1 {
		t.Error("top bucket must be unbounded")
	}
	// Quantiles clamp to the observed max rather than reporting an edge.
	if got := h.Quantile(0.99); got != 2*huge {
		t.Errorf("p99 = %v, want %v", got, 2*huge)
	}
}

func TestHistogramNegativeDuration(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Sum() != 0 || h.Buckets()[0] != 1 {
		t.Errorf("negative observation: sum=%v bucket0=%d, want clamped to 0 in bucket 0",
			h.Sum(), h.Buckets()[0])
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if BucketUpperUS(0) != 0 {
		t.Error("bucket 0 upper edge must be 0µs (sub-microsecond)")
	}
	// Edges must be exact: an observation of exactly (2^i - 1)µs lands in
	// bucket i, and one of 2^i µs lands in bucket i+1.
	for i := 1; i < 10; i++ {
		edge := BucketUpperUS(i)
		if got := bucketOf(time.Duration(edge) * time.Microsecond); got != i {
			t.Errorf("edge %dµs lands in bucket %d, want %d", edge, got, i)
		}
		if got := bucketOf(time.Duration(edge+1) * time.Microsecond); got != i+1 {
			t.Errorf("%dµs lands in bucket %d, want %d", edge+1, got, i+1)
		}
	}
	if BucketUpperUS(-5) != 0 || BucketUpperUS(NumBuckets+3) != -1 {
		t.Error("out-of-range bucket indices must clamp")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	// Hammer one histogram from many goroutines; run under -race this
	// asserts the lock-free Observe/read paths are actually race-free, and
	// the totals check that no observation is lost.
	var h Histogram
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(1+(w*perWorker+i)%1000) * time.Microsecond)
				if i%128 == 0 {
					h.Quantiles() // concurrent readers
					h.Buckets()
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	var sum int64
	for _, n := range h.Buckets() {
		sum += n
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("max = %v, want 1ms", h.Max())
	}
}
