package telemetry

// The flight recorder is the "deep evidence on demand" half of the
// observatory: cheap aggregates run all the time (/metrics, the progress
// line), and when an anomaly fires — a solver query far past the campaign's
// own p99, a circuit breaker opening, a pipeline stage stalling on
// backpressure — the recorder snapshots a bounded lock-free ring of the most
// recent trace records, the live counters, a goroutine dump, and optionally a
// short CPU profile into a timestamped bundle directory. The design follows
// the targeted-diagnosis philosophy of per-site mitigation work: pay for
// detail exactly when something is wrong, nothing the rest of the time.
//
// The ring is a fixed slice of atomic record pointers behind one atomic
// cursor: writers claim a slot with a single fetch-add and store a pointer,
// so the hot path costs two atomic operations and no locks. Two writers
// racing a full lap apart can land on the same slot; last-write-wins is fine
// for a diagnostic buffer. Snapshot readers gather whatever pointers are
// present and sort by timestamp.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightConfig tunes the flight recorder. The zero value of every field
// selects a sensible default; a zero Dir disables bundle writing (the ring
// and watermarks still run and feed /metrics and the dashboard).
type FlightConfig struct {
	// RingSize is the number of trace records retained (default 2048).
	RingSize int
	// Dir is the directory anomaly bundles are written under (one
	// timestamped subdirectory per capture). Empty disables captures.
	Dir string

	// QueryLatencyFactor k arms the slow-query trigger: a query slower than
	// k × the campaign's own live p99 captures a bundle. Default 8;
	// negative disables the trigger.
	QueryLatencyFactor int64
	// QueryLatencyFloor suppresses the slow-query trigger below this
	// absolute latency (default 1ms), so microsecond-noise campaigns
	// don't fire on 8 × 2µs.
	QueryLatencyFloor time.Duration
	// MinQuerySamples is the number of observed queries required before the
	// slow-query trigger arms (default 128) — p99 of ten queries is noise.
	MinQuerySamples int64

	// StallThreshold arms the stage-stall trigger: a pipeline stage whose
	// backpressure stall grows by more than this within one SampleInterval
	// captures a bundle (default 2s, i.e. badly stalled for a whole tick
	// across workers). Negative disables the trigger.
	StallThreshold time.Duration
	// SampleInterval is the stall watchdog's sampling period (default 1s).
	SampleInterval time.Duration

	// Cooldown is the minimum spacing between automatic captures (default
	// 10s); MaxCaptures caps them per recorder (default 16). ForceCapture
	// bypasses both.
	Cooldown    time.Duration
	MaxCaptures int

	// CPUProfile, when positive, includes a CPU profile slice of this
	// duration (cpu.pprof) in each bundle. Capture is asynchronous, so the
	// campaign does not block; if another profile is already running the
	// slice is skipped.
	CPUProfile time.Duration
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.RingSize <= 0 {
		c.RingSize = 2048
	}
	if c.QueryLatencyFactor == 0 {
		c.QueryLatencyFactor = 8
	}
	if c.QueryLatencyFloor <= 0 {
		c.QueryLatencyFloor = time.Millisecond
	}
	if c.MinQuerySamples <= 0 {
		c.MinQuerySamples = 128
	}
	if c.StallThreshold == 0 {
		c.StallThreshold = 2 * time.Second
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 16
	}
	return c
}

// FlightRecorder keeps the bounded ring of recent trace records, watermark
// gauges, and the anomaly-capture machinery. Attach one to a tracer with
// Tracer.StartFlightRecorder; all methods are safe for concurrent use and
// safe on a nil receiver.
type FlightRecorder struct {
	cfg FlightConfig
	tr  *Tracer

	slots  []atomic.Pointer[Record]
	cursor atomic.Int64

	// Watermark gauges: the worst observations seen so far.
	maxQueryUS atomic.Int64
	maxStallUS atomic.Int64

	captures  atomic.Int64 // capture attempts admitted
	lastCapUS atomic.Int64 // wall clock (unix µs) of the last admitted capture
	capturing atomic.Bool  // one bundle writer at a time

	lastMu     sync.Mutex
	lastReason string
	lastBundle string
	lastErr    error

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// StartFlightRecorder attaches a flight recorder to the tracer and starts
// its stall watchdog. A recorder attached earlier is replaced (it should be
// stopped first). Returns nil on a nil tracer.
func (t *Tracer) StartFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if t == nil {
		return nil
	}
	fr := &FlightRecorder{
		cfg:  cfg.withDefaults(),
		tr:   t,
		stop: make(chan struct{}),
	}
	fr.slots = make([]atomic.Pointer[Record], fr.cfg.RingSize)
	t.fr.Store(fr)
	if fr.cfg.StallThreshold > 0 {
		fr.wg.Add(1)
		go fr.watch()
	}
	return fr
}

// FlightRecorder returns the recorder attached to the tracer, if any.
func (t *Tracer) FlightRecorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.fr.Load()
}

// Stop detaches the recorder from its tracer and waits for the watchdog and
// any in-flight bundle write to finish. Idempotent.
func (fr *FlightRecorder) Stop() {
	if fr == nil {
		return
	}
	fr.stopOnce.Do(func() {
		close(fr.stop)
		fr.tr.fr.CompareAndSwap(fr, nil)
	})
	fr.wg.Wait()
}

// add appends one record to the ring (called by Tracer.record for every
// trace record). Lock-free: one fetch-add, one pointer store.
func (fr *FlightRecorder) add(rec *Record) {
	i := fr.cursor.Add(1) - 1
	fr.slots[i%int64(len(fr.slots))].Store(rec)
}

// noteQuery updates the query watermark and evaluates the slow-query
// trigger against the campaign's own live p99.
func (fr *FlightRecorder) noteQuery(d time.Duration, hist *Histogram) {
	watermark(&fr.maxQueryUS, d.Microseconds())
	if fr.cfg.QueryLatencyFactor <= 0 || d < fr.cfg.QueryLatencyFloor {
		return
	}
	if hist.Count() < fr.cfg.MinQuerySamples {
		return
	}
	_, _, p99 := hist.Quantiles()
	if p99 > 0 && d > time.Duration(fr.cfg.QueryLatencyFactor)*p99 {
		fr.TriggerCapture(fmt.Sprintf("slow-query %s > %dx p99 %s", d, fr.cfg.QueryLatencyFactor, p99))
	}
}

// noteBreaker fires the breaker-open trigger.
func (fr *FlightRecorder) noteBreaker(name string) {
	fr.TriggerCapture("breaker-open " + name)
}

// watch is the stall watchdog: it samples the live pipeline metrics every
// SampleInterval and captures when any stage's backpressure stall grows by
// more than StallThreshold within one interval.
func (fr *FlightRecorder) watch() {
	defer fr.wg.Done()
	tick := time.NewTicker(fr.cfg.SampleInterval)
	defer tick.Stop()
	prev := make(map[string]time.Duration)
	for {
		select {
		case <-fr.stop:
			return
		case <-tick.C:
			for _, ps := range fr.tr.pipelineSnapshot() {
				watermark(&fr.maxStallUS, ps.Stall.Microseconds())
				delta := ps.Stall - prev[ps.Name]
				prev[ps.Name] = ps.Stall
				if delta > fr.cfg.StallThreshold {
					fr.TriggerCapture(fmt.Sprintf("stage-stall %s +%s/%s", ps.Name, delta, fr.cfg.SampleInterval))
				}
			}
		}
	}
}

// watermark raises an atomic high-watermark gauge to at least v.
func watermark(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TriggerCapture requests an asynchronous anomaly capture. It is the entry
// point of the automatic triggers: admission is guarded by the cooldown, the
// MaxCaptures cap, and a single-writer gate, so a burst of anomalies costs
// one bundle. Reports whether a capture was admitted. The bundle is written
// on a background goroutine — the instrumented hot path never blocks on I/O.
func (fr *FlightRecorder) TriggerCapture(reason string) bool {
	if fr == nil || fr.cfg.Dir == "" {
		return false
	}
	now := time.Now().UnixMicro()
	if last := fr.lastCapUS.Load(); last != 0 && now-last < fr.cfg.Cooldown.Microseconds() {
		return false
	}
	if fr.captures.Load() >= int64(fr.cfg.MaxCaptures) {
		return false
	}
	if !fr.capturing.CompareAndSwap(false, true) {
		return false
	}
	fr.lastCapUS.Store(now)
	fr.captures.Add(1)
	fr.wg.Add(1)
	go func() {
		defer fr.wg.Done()
		defer fr.capturing.Store(false)
		dir, err := fr.writeBundle(reason, time.Now())
		fr.lastMu.Lock()
		fr.lastReason, fr.lastBundle, fr.lastErr = reason, dir, err
		fr.lastMu.Unlock()
	}()
	return true
}

// ForceCapture writes a bundle synchronously, bypassing cooldown and cap —
// the manual path behind the debug endpoint's POST and the smoke tests.
func (fr *FlightRecorder) ForceCapture(reason string) (string, error) {
	if fr == nil {
		return "", fmt.Errorf("telemetry: no flight recorder attached")
	}
	if fr.cfg.Dir == "" {
		return "", fmt.Errorf("telemetry: flight recorder has no bundle directory")
	}
	fr.captures.Add(1)
	fr.lastCapUS.Store(time.Now().UnixMicro())
	dir, err := fr.writeBundle(reason, time.Now())
	fr.lastMu.Lock()
	fr.lastReason, fr.lastBundle, fr.lastErr = reason, dir, err
	fr.lastMu.Unlock()
	return dir, err
}

// RingSnapshot returns the ring's current records ordered by timestamp.
func (fr *FlightRecorder) RingSnapshot() []Record {
	if fr == nil {
		return nil
	}
	out := make([]Record, 0, len(fr.slots))
	for i := range fr.slots {
		if rec := fr.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TSus < out[j].TSus })
	return out
}

// FlightStatus is the recorder's live status, rendered by /debug/scamv,
// the SSE stream, and the flight endpoint.
type FlightStatus struct {
	RingSize   int    `json:"ring_size"`
	Events     int64  `json:"events"`
	Dropped    int64  `json:"dropped"` // events overwritten by newer ones
	Captures   int64  `json:"captures"`
	LastReason string `json:"last_reason,omitempty"`
	LastBundle string `json:"last_bundle,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	// Watermark gauges: worst observations so far.
	MaxQueryUS int64 `json:"max_query_us"`
	MaxStallUS int64 `json:"max_stall_us"`
}

// Status reports the recorder's counters and watermarks.
func (fr *FlightRecorder) Status() FlightStatus {
	if fr == nil {
		return FlightStatus{}
	}
	seen := fr.cursor.Load()
	dropped := seen - int64(len(fr.slots))
	if dropped < 0 {
		dropped = 0
	}
	st := FlightStatus{
		RingSize:   len(fr.slots),
		Events:     seen,
		Dropped:    dropped,
		Captures:   fr.captures.Load(),
		MaxQueryUS: fr.maxQueryUS.Load(),
		MaxStallUS: fr.maxStallUS.Load(),
	}
	fr.lastMu.Lock()
	st.LastReason, st.LastBundle = fr.lastReason, fr.lastBundle
	if fr.lastErr != nil {
		st.LastError = fr.lastErr.Error()
	}
	fr.lastMu.Unlock()
	return st
}

// writeBundle snapshots the ring, counters, and goroutines (plus an optional
// CPU slice) into a fresh timestamped directory and returns its path.
func (fr *FlightRecorder) writeBundle(reason string, now time.Time) (string, error) {
	dir := filepath.Join(fr.cfg.Dir,
		fmt.Sprintf("anomaly-%s-%s", now.UTC().Format("20060102T150405.000000Z"), slugify(reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: flight bundle: %w", err)
	}

	// ring.jsonl: the recent-history window, in trace format so every
	// existing trace tool (-report, DiffTraces, ReadTrace) loads it.
	ring := fr.RingSnapshot()
	var rb strings.Builder
	for i := range ring {
		b, err := json.Marshal(&ring[i])
		if err != nil {
			return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
		}
		rb.Write(b)
		rb.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "ring.jsonl"), []byte(rb.String()), 0o644); err != nil {
		return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
	}

	// counters.json: the anomaly context — reason, wall clock, the full
	// live counter snapshot, and the recorder's own status.
	meta := struct {
		Reason     string       `json:"reason"`
		CapturedAt string       `json:"captured_at"`
		Counters   countersJSON `json:"counters"`
		Flight     FlightStatus `json:"flight"`
	}{
		Reason:     reason,
		CapturedAt: now.UTC().Format(time.RFC3339Nano),
		Counters:   countersWire(fr.tr.Snapshot()),
		Flight:     fr.Status(),
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "counters.json"), append(mb, '\n'), 0o644); err != nil {
		return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
	}

	// goroutines.txt: full stacks — where every worker was when the
	// anomaly fired.
	gf, err := os.Create(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
	}
	perr := pprof.Lookup("goroutine").WriteTo(gf, 2)
	if cerr := gf.Close(); perr == nil {
		perr = cerr
	}
	if perr != nil {
		return dir, fmt.Errorf("telemetry: flight bundle: %w", perr)
	}

	// cpu.pprof: optional profile slice. Best effort — if another profile
	// is running (e.g. a user-driven /debug/pprof/profile), skip silently.
	if fr.cfg.CPUProfile > 0 {
		cf, err := os.Create(filepath.Join(dir, "cpu.pprof"))
		if err != nil {
			return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			os.Remove(cf.Name())
		} else {
			time.Sleep(fr.cfg.CPUProfile)
			pprof.StopCPUProfile()
			if err := cf.Close(); err != nil {
				return dir, fmt.Errorf("telemetry: flight bundle: %w", err)
			}
		}
	}
	return dir, nil
}

// slugify reduces an anomaly reason to a short directory-name-safe tag.
func slugify(s string) string {
	var sb strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
			dash = false
		default:
			if !dash && sb.Len() > 0 {
				sb.WriteByte('-')
				dash = true
			}
		}
		if sb.Len() >= 48 {
			break
		}
	}
	return strings.TrimSuffix(sb.String(), "-")
}
