package telemetry

// The live dashboard: one self-contained HTML page (no external assets, no
// JS dependencies — it must work from an air-gapped lab box) fed by a
// server-sent-events stream of the tracer's counter snapshots. SSE over
// chunked HTTP keeps the server side trivial (no websocket framing) and
// curl-friendly:
//
//	curl -N http://localhost:6060/debug/scamv/events
//
// streams one JSON snapshot per tick.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// sseMinInterval floors the client-requested tick to keep a hostile or
// buggy ?interval_ms from turning the stream into a busy loop.
const sseMinInterval = 20 * time.Millisecond

// sseHandler streams counter snapshots as server-sent events. One snapshot
// is sent immediately, then one per interval (default 1s, client-tunable
// via ?interval_ms=) until the client disconnects.
func sseHandler(t *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		interval := time.Second
		if ms, err := strconv.Atoi(r.FormValue("interval_ms")); err == nil && ms > 0 {
			interval = time.Duration(ms) * time.Millisecond
			if interval < sseMinInterval {
				interval = sseMinInterval
			}
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		h.Set("X-Accel-Buffering", "no") // defeat proxy buffering

		emit := func() bool {
			b, err := json.Marshal(wireSnapshot(t))
			if err != nil {
				return false
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
			if _, err := w.Write(b); err != nil {
				return false
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return false
			}
			fl.Flush()
			return true
		}
		if !emit() {
			return
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-tick.C:
				if !emit() {
					return
				}
			}
		}
	}
}

// flightHandler reports the flight recorder's status (GET) and forces a
// capture (POST, optional ?reason=), returning the bundle path — the manual
// seam the obs-smoke exercises and an operator's "grab me evidence now".
func flightHandler(t *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fr := t.FlightRecorder()
		if fr == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if r.Method == http.MethodPost {
			reason := r.FormValue("reason")
			if reason == "" {
				reason = "manual"
			}
			dir, err := fr.ForceCapture(reason)
			out := struct {
				Bundle string `json:"bundle,omitempty"`
				Error  string `json:"error,omitempty"`
			}{Bundle: dir}
			if err != nil {
				out.Error = err.Error()
				w.WriteHeader(http.StatusInternalServerError)
			}
			_ = enc.Encode(out)
			return
		}
		_ = enc.Encode(fr.Status())
	}
}

// liveHandler serves the dashboard page.
func liveHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(liveHTML))
	}
}

// liveHTML is the whole dashboard. Everything inline; the only network
// dependency is the /debug/scamv/events stream it subscribes to.
const liveHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>scamv live</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 1.5rem auto; max-width: 72rem; padding: 0 1rem;
         background: #101418; color: #d8dee4; }
  h1 { font-size: 1.1rem; } h2 { font-size: .9rem; margin: 1.4em 0 .4em;
       color: #8b949e; text-transform: uppercase; letter-spacing: .08em; }
  #status { color: #8b949e; }
  .tiles { display: flex; flex-wrap: wrap; gap: .6rem; }
  .tile { background: #161b22; border: 1px solid #30363d; border-radius: 6px;
          padding: .45rem .8rem; min-width: 7.5rem; }
  .tile b { display: block; font-size: 1.25rem; font-weight: 600; }
  .tile span { color: #8b949e; font-size: .75rem; }
  table { border-collapse: collapse; }
  th, td { text-align: left; padding: .15rem .8rem .15rem 0; }
  th { color: #8b949e; font-weight: 500; }
  .bar { display: inline-flex; width: 16rem; height: .8rem; background: #21262d;
         border-radius: 3px; overflow: hidden; vertical-align: middle; }
  .bar i { display: block; height: 100%; }
  .busy { background: #3fb950; } .wait { background: #d29922; }
  .stall { background: #f85149; }
  .legend i { display: inline-block; width: .7rem; height: .7rem;
              border-radius: 2px; vertical-align: middle; margin: 0 .25rem 0 .8rem; }
  .muted { color: #8b949e; }
</style>
</head>
<body>
<h1>scamv campaign observatory <span id="status" class="muted">connecting…</span></h1>
<div class="tiles" id="tiles"></div>

<h2>pipeline <span class="legend muted"><i class="busy"></i>busy <i class="wait"></i>wait (starved) <i class="stall"></i>stall (backpressure)</span></h2>
<table id="stages"><tbody></tbody></table>

<h2>solver</h2>
<div class="tiles" id="solver"></div>

<h2>portfolio win shares</h2>
<div id="portfolio" class="muted">single-solver campaign</div>

<h2>platform matrix</h2>
<div id="matrix" class="muted">single-platform campaign</div>

<h2>flight recorder</h2>
<div id="flight" class="muted">not attached</div>

<script>
"use strict";
const $ = id => document.getElementById(id);
const fmtUS = us => us < 1000 ? us + "µs"
  : us < 1e6 ? (us / 1000).toFixed(1) + "ms" : (us / 1e6).toFixed(2) + "s";
const tile = (label, val) => '<div class="tile"><b>' + val + '</b><span>' + label + '</span></div>';

function render(c) {
  $("status").textContent = "live · elapsed " + fmtUS(c.elapsed_us);
  $("tiles").innerHTML =
    tile("programs", c.programs + " / " + c.total_programs) +
    tile("experiments", c.experiments) +
    tile("counterexamples", c.counterexamples) +
    tile("inconclusive", c.inconclusive) +
    (c.retries ? tile("retries", c.retries) : "") +
    (c.skips ? tile("skips", c.skips) : "") +
    (c.breaker_trips ? tile("breaker trips", c.breaker_trips) : "");

  // Per-stage backpressure bars from the live pipeline (busy/wait/stall
  // shares); span-histogram fallback shows busy only.
  const rows = [];
  const pipe = c.pipeline || [];
  if (pipe.length) {
    for (const s of pipe) {
      const total = s.busy_us + s.wait_us + s.stall_us || 1;
      const seg = (cls, us) =>
        '<i class="' + cls + '" style="width:' + (100 * us / total) + '%"></i>';
      rows.push("<tr><td>" + s.name + "</td><td>" + s.in + "→" + s.out +
        '</td><td><span class="bar">' + seg("busy", s.busy_us) +
        seg("wait", s.wait_us) + seg("stall", s.stall_us) +
        '</span></td><td class="muted">busy ' + fmtUS(s.busy_us) +
        " · wait " + fmtUS(s.wait_us) + " · stall " + fmtUS(s.stall_us) +
        " · ×" + s.workers + "</td></tr>");
    }
  } else {
    for (const s of c.stages || []) {
      rows.push("<tr><td>" + s.name + "</td><td>" + s.count +
        '</td><td><span class="bar"><i class="busy" style="width:100%"></i></span></td>' +
        '<td class="muted">busy ' + fmtUS(s.busy_us) + " · p95 " + fmtUS(s.p95_us) + "</td></tr>");
    }
  }
  $("stages").tBodies[0].innerHTML = rows.join("") ||
    '<tr><td class="muted">no pipeline activity yet</td></tr>';

  $("solver").innerHTML =
    tile("queries", c.queries) +
    tile("query p50 / p99", fmtUS(c.query_p50_us) + " / " + fmtUS(c.query_p99_us)) +
    tile("conflicts", c.conflicts) +
    tile("propagations", c.propagations) +
    tile("blast hit/miss", c.blast_hits + "/" + c.blast_misses) +
    ((c.shape_hits || c.shape_misses) ? tile("shape hit/miss", (c.shape_hits||0) + "/" + (c.shape_misses||0)) : "") +
    ((c.shared_clauses) ? tile("shared clauses", c.shared_clauses) : "");

  const wins = c.portfolio_wins || [];
  if (wins.length) {
    const total = wins.reduce((a, b) => a + b, 0) || 1;
    $("portfolio").innerHTML = wins.map((w, i) =>
      '<div>w' + (i + 1) + ' <span class="bar" style="width:12rem">' +
      '<i class="busy" style="width:' + (100 * w / total) + '%"></i></span> ' +
      w + " (" + (100 * w / total).toFixed(0) + "%)</div>").join("");
  }

  const plats = c.platforms || [];
  if (plats.length) {
    $("matrix").innerHTML = "<table><tr><th>platform</th><th>exps</th>" +
      "<th>cex</th><th>inconcl</th><th>verdict</th></tr>" +
      plats.map(p => "<tr><td>" + p.name + "</td><td>" + p.experiments +
        "</td><td>" + p.counterexamples + "</td><td>" + p.inconclusive +
        "</td><td>" + (p.experiments === 0 ? "no-data"
          : p.counterexamples > 0 ? "unsound" : "sound") + "</td></tr>").join("") +
      "</table>";
  }

  if (c.flight) {
    const f = c.flight;
    $("flight").innerHTML = "ring " + f.events + " events (" + f.dropped +
      " overwritten of " + f.ring_size + " slots) · " + f.captures +
      " captures · max query " + fmtUS(f.max_query_us) +
      " · max stall " + fmtUS(f.max_stall_us) +
      (f.last_reason ? "<br>last: " + f.last_reason +
        (f.last_bundle ? ' <span class="muted">' + f.last_bundle + "</span>" : "") : "");
  }
}

const es = new EventSource("/debug/scamv/events");
es.onmessage = e => render(JSON.parse(e.data));
es.onerror = () => { $("status").textContent = "disconnected — retrying…"; };
</script>
</body>
</html>
`
