package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1µs..100µs.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got, want := h.Sum(), 5050*time.Microsecond; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if got := h.Max(); got != 100*time.Microsecond {
		t.Errorf("max = %v, want 100µs", got)
	}
	// Upper-bound estimates: p50 of 1..100 lands in bucket [32,63]µs → 63µs;
	// p99 lands in [64,127]µs, clamped to the observed max 100µs.
	if got := h.Quantile(0.50); got != 63*time.Microsecond {
		t.Errorf("p50 = %v, want 63µs", got)
	}
	if got := h.Quantile(0.99); got != 100*time.Microsecond {
		t.Errorf("p99 = %v, want 100µs (clamped to max)", got)
	}
	// Estimate never undershoots the true quantile by more than 2x.
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		est := h.Quantile(q).Microseconds()
		true_ := int64(q * 100)
		if est < true_ {
			t.Errorf("q%.2f estimate %dµs below true %dµs", q, est, true_)
		}
		if est > 2*true_+1 {
			t.Errorf("q%.2f estimate %dµs above 2x true %dµs", q, est, true_)
		}
	}
}

func TestHistogramEmptyAndZero(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(0)
	h.Observe(-time.Second) // clock weirdness must not panic or corrupt
	if h.Count() != 2 || h.Quantile(1.0) != 0 {
		t.Errorf("zero-duration observations: count=%d p100=%v", h.Count(), h.Quantile(1.0))
	}
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every instrumentation-site method must be a no-op on nil.
	tr.BeginCampaign("c", 5)
	tr.Span("testgen", 0, time.Now())
	tr.Query(QueryEvent{Status: "sat"})
	tr.Verdict(0, 0, "counterexample", time.Millisecond)
	tr.ProgramDone()
	if c := tr.Snapshot(); c.Queries != 0 {
		t.Error("nil snapshot not zero")
	}
	if err := tr.Err(); err != nil {
		t.Error(err)
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
	stop := StartProgress(nil, tr, time.Millisecond)
	stop()
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	tr.BeginCampaign("mct-a/refined", 2)
	tr.Span("lift", 0, time.Now().Add(-2*time.Millisecond))
	tr.Query(QueryEvent{
		Prog: 0, PathA: 1, PathB: 2, Class: 7, Slot: -1,
		Status: "sat", Dur: 3 * time.Millisecond,
		Conflicts: 10, Decisions: 20, Propagations: 300,
		BlastHits: 40, BlastMisses: 5, AckReads: 2,
	})
	tr.Verdict(0, 3, "counterexample", time.Millisecond)
	tr.ProgramDone()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	kinds := []string{"campaign", "span", "query", "verdict"}
	for i, k := range kinds {
		if recs[i].Kind != k {
			t.Errorf("record %d kind = %q, want %q", i, recs[i].Kind, k)
		}
		if recs[i].V != SchemaVersion {
			t.Errorf("record %d schema v%d, want v%d", i, recs[i].V, SchemaVersion)
		}
	}
	q := recs[2]
	if q.PathA != 1 || q.PathB != 2 || q.Class != 7 || q.Slot != -1 ||
		q.Status != "sat" || q.Conflicts != 10 || q.Decisions != 20 ||
		q.Propagations != 300 || q.BlastHits != 40 || q.BlastMisses != 5 || q.AckReads != 2 {
		t.Errorf("query record mangled: %+v", q)
	}
	if q.DurUS != 3000 {
		t.Errorf("query dur = %dµs, want 3000", q.DurUS)
	}
	if recs[3].Test != 3 || recs[3].Verdict != "counterexample" {
		t.Errorf("verdict record mangled: %+v", recs[3])
	}

	// Aggregates track the same events.
	c := tr.Snapshot()
	if c.Programs != 1 || c.Experiments != 1 || c.Counterexamples != 1 ||
		c.Queries != 1 || c.Conflicts != 10 || c.BlastHits != 40 || c.AckReads != 2 {
		t.Errorf("aggregates diverge from trace: %+v", c)
	}
	if len(c.Stages) != 1 || c.Stages[0].Name != "lift" || c.Stages[0].Count != 1 {
		t.Errorf("stage aggregates: %+v", c.Stages)
	}
}

func TestReadTraceRejectsPartialFinalLine(t *testing.T) {
	// Mirror of logdb's torn-line contract: a crash mid-append leaves a
	// final line without its newline; the truncated JSON must be rejected
	// with an error naming the line, not silently dropped or misparsed.
	var buf bytes.Buffer
	tr := New(&buf)
	tr.Span("execute", 0, time.Now())
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	partial := full + `{"v":1,"kind":"query","status":"sa`
	if _, err := ReadTrace(strings.NewReader(partial)); err == nil {
		t.Fatal("partially-written final line must be rejected")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the torn line: %v", err)
	}
	// The intact prefix alone still reads back.
	recs, err := ReadTrace(strings.NewReader(full))
	if err != nil || len(recs) != 1 {
		t.Fatalf("intact trace: %v, %d records", err, len(recs))
	}
}

func TestReadTraceRejectsNewerSchemaAndKindless(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"v":99,"kind":"span"}`)); err == nil ||
		!strings.Contains(err.Error(), "v99") {
		t.Errorf("newer schema must be rejected by version: %v", err)
	}
	if _, err := ReadTrace(strings.NewReader(`{"v":1,"ts_us":0}`)); err == nil ||
		!strings.Contains(err.Error(), "kind") {
		t.Errorf("kindless record must be rejected: %v", err)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFull
	}
	f.n -= len(p)
	return len(p), nil
}

var errFull = &writeError{"disk full"}

type writeError struct{ s string }

func (e *writeError) Error() string { return e.s }

func TestTracerStickyWriteError(t *testing.T) {
	tr := New(&failWriter{n: 1}) // fails once the buffer flushes
	for i := 0; i < 100000; i++ {
		tr.Span("testgen", i, time.Now())
	}
	err := tr.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("write failure swallowed: %v", err)
	}
	if tr.Err() == nil {
		t.Error("Err() should report the sticky write error")
	}
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Span("execute", w, time.Now())
				tr.Query(QueryEvent{Prog: w, Status: "sat", Dur: time.Microsecond, Conflicts: 1})
				tr.Verdict(w, i, "indistinguishable", time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8*200*3 {
		t.Fatalf("got %d records, want %d (interleaved writes tore lines?)", len(recs), 8*200*3)
	}
	c := tr.Snapshot()
	if c.Queries != 1600 || c.Conflicts != 1600 || c.Experiments != 1600 {
		t.Errorf("aggregates lost updates: %+v", c)
	}
}

func TestRenderProgressWithStages(t *testing.T) {
	prev := Counters{Queries: 100, Stages: []StageCount{
		{Name: "testgen", Busy: 1 * time.Second},
		{Name: "execute", Busy: 1 * time.Second},
	}}
	cur := Counters{
		TotalPrograms: 24, Programs: 5, Experiments: 180, Counterexamples: 12,
		Queries: 300,
		Stages: []StageCount{
			{Name: "testgen", Busy: 4 * time.Second},
			{Name: "execute", Busy: 2 * time.Second},
		},
	}
	line := RenderProgress(cur, prev, 10*time.Second)
	for _, want := range []string{"progs 5/24", "exps 180", "cex 12", "queries 300 (20.0/s)", "busy%", "testgen 75", "execute 25"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
}

func TestRenderProgressMonolithicFallback(t *testing.T) {
	// No stage spine at all (monolithic campaign): the line must fall back
	// to program-level counts without panicking or printing a busy section.
	cur := Counters{TotalPrograms: 8, Programs: 3, Experiments: 120, Queries: 40}
	line := RenderProgress(cur, Counters{}, time.Second)
	if !strings.Contains(line, "progs 3/8") || strings.Contains(line, "busy%") {
		t.Errorf("monolithic fallback line wrong: %q", line)
	}
	// Zero-duration interval and all-zero counters must not divide by zero.
	line = RenderProgress(Counters{}, Counters{}, 0)
	if !strings.Contains(line, "progs 0/0") {
		t.Errorf("zero line wrong: %q", line)
	}
}

func TestStartProgressEmitsAndStops(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	tr := New(nil)
	tr.BeginCampaign("p", 4)
	tr.ProgramDone()
	stop := StartProgress(w, tr, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "progs 1/4") {
		t.Errorf("progress output missing counts: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final line not newline-terminated: %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
