package telemetry

import (
	"strings"
	"testing"
)

func TestReadTraceTolerant(t *testing.T) {
	good := `{"v":4,"kind":"campaign","ts_us":1,"name":"c","programs":2}
{"v":4,"kind":"query","ts_us":2,"status":"sat","dur_us":100}
`
	cases := []struct {
		name     string
		input    string
		wantRecs int
		wantTorn int
		wantErr  string
	}{
		{"clean", good, 2, 0, ""},
		{"torn final line", good + `{"v":4,"kind":"verd`, 2, 1, ""},
		{"torn final after newline gap", good + "\n" + `{"v":4,"ki`, 2, 1, ""},
		{"mid-file corruption is fatal", `{"v":4,"kind":"camp` + "\n" + good, 0, 0, "line 1"},
		{"kindless final line is fatal", good + `{"v":4,"ts_us":3}`, 0, 0, "without kind"},
		{"newer schema is fatal", good + `{"v":99,"kind":"query","ts_us":3}`, 0, 0, "newer than supported"},
		{"empty", "", 0, 0, ""},
		{"only a torn line", `{"v":4,"ki`, 0, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, torn, err := ReadTraceTolerant(strings.NewReader(tc.input))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.wantRecs || torn != tc.wantTorn {
				t.Errorf("recs=%d torn=%d, want %d/%d", len(recs), torn, tc.wantRecs, tc.wantTorn)
			}
		})
	}
}

func TestReadTraceStrictStillRejectsTorn(t *testing.T) {
	torn := `{"v":4,"kind":"campaign","ts_us":1,"name":"c","programs":1}
{"v":4,"kind":"verd`
	if _, err := ReadTrace(strings.NewReader(torn)); err == nil {
		t.Fatal("strict reader accepted a torn final line")
	}
}
