package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// validatePromText is a dependency-free Prometheus text-format (0.0.4)
// checker: every line must be a comment, HELP, TYPE, or a well-formed
// sample; samples must follow their family's TYPE line; histogram families
// must have ascending le edges, non-decreasing cumulative buckets, a +Inf
// bucket equal to _count, and a _sum series. It returns the parsed samples
// keyed by full series (name + sorted labels).
func validatePromText(t *testing.T, data []byte) map[string]float64 {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe := regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

	types := make(map[string]string) // family -> type
	samples := make(map[string]float64)
	type histSeries struct {
		le  float64
		cum float64
	}
	hists := make(map[string][]histSeries) // histogram family+labels -> buckets
	var curFamily string

	sc := bufio.NewScanner(bytes.NewReader(data))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", lineno, line)
			}
			if !nameRe.MatchString(parts[2]) {
				t.Fatalf("line %d: bad metric name %q", lineno, parts[2])
			}
			if parts[1] == "TYPE" {
				if _, dup := types[parts[2]]; dup {
					t.Fatalf("line %d: duplicate TYPE for %q", lineno, parts[2])
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown type %q", lineno, parts[3])
				}
				types[parts[2]] = parts[3]
				curFamily = parts[2]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		mm := sampleRe.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("line %d: malformed sample %q", lineno, line)
		}
		name, labelStr, valStr := mm[1], mm[3], mm[4]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineno, valStr, err)
		}
		// The sample must belong to the most recently typed family (the
		// format requires family grouping).
		family := name
		var isBucket, isSum, isCount bool
		if types[curFamily] == "histogram" {
			switch {
			case name == curFamily+"_bucket":
				family, isBucket = curFamily, true
			case name == curFamily+"_sum":
				family, isSum = curFamily, true
			case name == curFamily+"_count":
				family, isCount = curFamily, true
			}
		}
		if family != curFamily {
			t.Fatalf("line %d: sample %q outside its family group (current %q)", lineno, name, curFamily)
		}
		var le string
		var labels []string
		if labelStr != "" {
			for _, l := range strings.Split(labelStr, ",") {
				lm := labelRe.FindStringSubmatch(l)
				if lm == nil {
					t.Fatalf("line %d: malformed label %q", lineno, l)
				}
				if lm[1] == "le" {
					le = lm[2]
					continue
				}
				labels = append(labels, l)
			}
		}
		sort.Strings(labels)
		series := name + "{" + strings.Join(labels, ",") + "}"
		if isBucket {
			lef := 0.0
			if le == "+Inf" {
				lef = float64(1<<63 - 1)
			} else if lef, err = strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("line %d: bad le %q", lineno, le)
			}
			hists[series] = append(hists[series], histSeries{le: lef, cum: val})
			continue
		}
		if _, dup := samples[series+"|le="+le]; dup {
			t.Fatalf("line %d: duplicate series %q", lineno, series)
		}
		samples[series+"|le="+le] = val
		_ = isSum
		_ = isCount
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Histogram invariants per bucket series.
	for series, buckets := range hists {
		base := strings.TrimSuffix(strings.SplitN(series, "{", 2)[0], "_bucket")
		labels := "{" + strings.SplitN(series, "{", 2)[1]
		for i := 1; i < len(buckets); i++ {
			if buckets[i].le <= buckets[i-1].le {
				t.Fatalf("%s: le edges not ascending", series)
			}
			if buckets[i].cum < buckets[i-1].cum {
				t.Fatalf("%s: cumulative counts decrease", series)
			}
		}
		last := buckets[len(buckets)-1]
		if last.le != float64(1<<63-1) {
			t.Fatalf("%s: missing +Inf bucket", series)
		}
		count, ok := samples[base+"_count"+labels+"|le="]
		if !ok {
			t.Fatalf("%s: missing _count", series)
		}
		if count != last.cum {
			t.Fatalf("%s: +Inf bucket %v != count %v", series, last.cum, count)
		}
		if _, ok := samples[base+"_sum"+labels+"|le="]; !ok {
			t.Fatalf("%s: missing _sum", series)
		}
	}
	return samples
}

func TestWriteMetricsParsesAndCounts(t *testing.T) {
	tr := New(nil)
	tr.BeginCampaign("c", 4)
	tr.Span("testgen", 0, time.Now().Add(-3*time.Millisecond))
	tr.Span("execute", 0, time.Now().Add(-time.Millisecond))
	tr.Query(QueryEvent{Status: "sat", Dur: 2 * time.Millisecond,
		Conflicts: 7, Propagations: 90, BlastMisses: 1, Winner: 2, SharedClauses: 5})
	tr.Query(QueryEvent{Status: "unsat", Dur: time.Millisecond, Winner: 1})
	tr.Verdict(0, 0, "counterexample", time.Millisecond)
	tr.PlatformVerdict(0, 0, "a53", "counterexample", time.Millisecond)
	tr.PlatformVerdict(0, 0, "a72", "ok", time.Millisecond)
	tr.ShapeLookup(0, true)
	tr.ProgramDone()
	tr.SetPipelineSource(func() []PipelineStage {
		return []PipelineStage{
			{Name: "testgen", Workers: 2, In: 1, Out: 1,
				Busy: 3 * time.Millisecond, Wait: time.Millisecond, Stall: 2 * time.Millisecond},
		}
	})

	var buf bytes.Buffer
	tr.WriteMetrics(&buf)
	samples := validatePromText(t, buf.Bytes())

	want := map[string]float64{
		"scamv_programs_expected{}|le=":                            4,
		"scamv_programs_completed_total{}|le=":                     1,
		"scamv_experiments_total{}|le=":                            1,
		"scamv_counterexamples_total{}|le=":                        1,
		"scamv_solver_queries_total{}|le=":                         2,
		"scamv_solver_conflicts_total{}|le=":                       7,
		"scamv_solver_propagations_total{}|le=":                    90,
		"scamv_blast_cache_misses_total{}|le=":                     1,
		"scamv_shared_clauses_total{}|le=":                         5,
		"scamv_shape_cache_hits_total{}|le=":                       1,
		`scamv_portfolio_wins_total{worker="1"}|le=`:               1,
		`scamv_portfolio_wins_total{worker="2"}|le=`:               1,
		`scamv_platform_counterexamples_total{platform="a53"}|le=`: 1,
		`scamv_platform_experiments_total{platform="a72"}|le=`:     1,
		`scamv_stage_items_in_total{stage="testgen"}|le=`:          1,
		`scamv_stage_workers{stage="testgen"}|le=`:                 2,
		`scamv_query_duration_seconds_count{}|le=`:                 2,
	}
	for series, v := range want {
		got, ok := samples[series]
		if !ok {
			t.Errorf("missing series %s", series)
		} else if got != v {
			t.Errorf("%s = %v, want %v", series, got, v)
		}
	}
	if got := samples[`scamv_stage_stall_seconds_total{stage="testgen"}|le=`]; got != 0.002 {
		t.Errorf("stall seconds = %v, want 0.002", got)
	}

	// The per-stage histogram family must carry one bucket series per stage.
	for _, stage := range []string{"testgen", "execute"} {
		series := fmt.Sprintf(`scamv_stage_duration_seconds_count{stage=%q}|le=`, stage)
		if samples[series] != 1 {
			t.Errorf("missing stage histogram for %s: %v", stage, samples[series])
		}
	}
}

func TestWriteMetricsNilAndEmptyTracer(t *testing.T) {
	var buf bytes.Buffer
	(*Tracer)(nil).WriteMetrics(&buf)
	validatePromText(t, buf.Bytes())
	if !strings.Contains(buf.String(), "scamv_solver_queries_total 0") {
		t.Errorf("nil tracer should still render the core zero families:\n%s", buf.String())
	}

	buf.Reset()
	New(nil).WriteMetrics(&buf)
	validatePromText(t, buf.Bytes())
}

func TestMetricsEndpointContentType(t *testing.T) {
	tr := New(nil)
	tr.Query(QueryEvent{Status: "sat", Dur: time.Millisecond})
	var buf bytes.Buffer
	tr.WriteMetrics(&buf)
	validatePromText(t, buf.Bytes())
	if !strings.HasPrefix(MetricsContentType, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", MetricsContentType)
	}
}
