package telemetry

// Prometheus text-format exporter (exposition format 0.0.4), dependency
// free: the tracer's live aggregates rendered as counter/gauge/histogram
// families under /metrics, so a long campaign can be watched from any
// standard scraper. The fixed log2 latency histograms map directly onto
// native Prometheus histograms — the inclusive µs bucket edges become `le`
// bounds in seconds, exact because durations are truncated to µs before
// bucketing.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// MetricsContentType is the Prometheus text exposition content type.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves the tracer's aggregates in Prometheus text format.
func MetricsHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		t.WriteMetrics(w)
	})
}

// WriteMetrics renders the tracer's live aggregates as Prometheus text.
// Safe on a nil tracer (renders the static zero families).
func (t *Tracer) WriteMetrics(w io.Writer) {
	c := t.Snapshot()
	m := &promWriter{w: w}

	m.family("scamv_elapsed_seconds", "gauge", "Seconds since the tracer started.")
	m.sample("scamv_elapsed_seconds", nil, secs(c.Elapsed.Microseconds()))

	m.family("scamv_programs_expected", "gauge", "Programs the running campaigns expect to process in total.")
	m.sample("scamv_programs_expected", nil, ival(c.TotalPrograms))
	m.family("scamv_programs_completed_total", "counter", "Programs fully processed (all tests executed).")
	m.sample("scamv_programs_completed_total", nil, ival(c.Programs))
	m.family("scamv_experiments_total", "counter", "Executed test cases.")
	m.sample("scamv_experiments_total", nil, ival(c.Experiments))
	m.family("scamv_counterexamples_total", "counter", "Test cases the platform distinguished but the model equates.")
	m.sample("scamv_counterexamples_total", nil, ival(c.Counterexamples))
	m.family("scamv_inconclusive_total", "counter", "Test cases with inconclusive verdicts.")
	m.sample("scamv_inconclusive_total", nil, ival(c.Inconclusive))

	m.family("scamv_solver_queries_total", "counter", "Solver queries issued during test-case generation.")
	m.sample("scamv_solver_queries_total", nil, ival(c.Queries))
	m.family("scamv_solver_conflicts_total", "counter", "CDCL conflicts summed over all queries.")
	m.sample("scamv_solver_conflicts_total", nil, ival(c.Conflicts))
	m.family("scamv_solver_decisions_total", "counter", "CDCL decisions summed over all queries.")
	m.sample("scamv_solver_decisions_total", nil, ival(c.Decisions))
	m.family("scamv_solver_propagations_total", "counter", "CDCL unit propagations summed over all queries.")
	m.sample("scamv_solver_propagations_total", nil, ival(c.Propagations))
	m.family("scamv_blast_cache_hits_total", "counter", "Bit-blast cache hits.")
	m.sample("scamv_blast_cache_hits_total", nil, ival(c.BlastHits))
	m.family("scamv_blast_cache_misses_total", "counter", "Bit-blast cache misses.")
	m.sample("scamv_blast_cache_misses_total", nil, ival(c.BlastMisses))
	m.family("scamv_ackermann_reads_total", "counter", "Ackermann memory-read expansions.")
	m.sample("scamv_ackermann_reads_total", nil, ival(c.AckReads))

	m.family("scamv_retries_total", "counter", "Platform-execution retries.")
	m.sample("scamv_retries_total", nil, ival(c.Retries))
	m.family("scamv_timeouts_total", "counter", "Platform attempts that hit their deadline.")
	m.sample("scamv_timeouts_total", nil, ival(c.Timeouts))
	m.family("scamv_skips_total", "counter", "Tests abandoned under FailPolicy Degrade.")
	m.sample("scamv_skips_total", nil, ival(c.Skips))
	m.family("scamv_quarantines_total", "counter", "Programs quarantined after consecutive failures.")
	m.sample("scamv_quarantines_total", nil, ival(c.Quarantines))
	m.family("scamv_breaker_trips_total", "counter", "Circuit-breaker transitions into the open state.")
	m.sample("scamv_breaker_trips_total", nil, ival(c.BreakerTrips))

	m.family("scamv_shape_cache_hits_total", "counter", "Campaign shape-cache hits.")
	m.sample("scamv_shape_cache_hits_total", nil, ival(c.ShapeHits))
	m.family("scamv_shape_cache_misses_total", "counter", "Campaign shape-cache misses (distinct shapes encoded).")
	m.sample("scamv_shape_cache_misses_total", nil, ival(c.ShapeMisses))
	m.family("scamv_shared_clauses_total", "counter", "Learnt clauses imported from the portfolio share pool.")
	m.sample("scamv_shared_clauses_total", nil, ival(c.SharedClauses))

	m.family("scamv_resumed_programs_total", "counter", "Programs restored from campaign journals instead of re-run.")
	m.sample("scamv_resumed_programs_total", nil, ival(c.ResumedPrograms))
	m.family("scamv_checkpoints_total", "counter", "Durable campaign checkpoints written.")
	m.sample("scamv_checkpoints_total", nil, ival(c.Checkpoints))

	if len(c.PortfolioWins) > 0 {
		m.family("scamv_portfolio_wins_total", "counter", "Deciding queries per portfolio worker.")
		for i, wins := range c.PortfolioWins {
			m.sample("scamv_portfolio_wins_total",
				[][2]string{{"worker", strconv.Itoa(i + 1)}}, ival(wins))
		}
	}

	if len(c.Platforms) > 0 {
		m.family("scamv_platform_experiments_total", "counter", "Executed tests per matrix platform.")
		for _, p := range c.Platforms {
			m.sample("scamv_platform_experiments_total",
				[][2]string{{"platform", p.Name}}, ival(p.Experiments))
		}
		m.family("scamv_platform_counterexamples_total", "counter", "Counterexamples per matrix platform.")
		for _, p := range c.Platforms {
			m.sample("scamv_platform_counterexamples_total",
				[][2]string{{"platform", p.Name}}, ival(p.Counterexamples))
		}
		m.family("scamv_platform_inconclusive_total", "counter", "Inconclusive verdicts per matrix platform.")
		for _, p := range c.Platforms {
			m.sample("scamv_platform_inconclusive_total",
				[][2]string{{"platform", p.Name}}, ival(p.Inconclusive))
		}
	}

	// Stage-level work accounting. Busy comes from the span histograms so
	// it exists on both engines; wait/stall/items/workers come from the
	// staged engine's live pipeline source when one is registered.
	if len(c.Stages) > 0 {
		m.family("scamv_stage_busy_seconds_total", "counter", "Work time inside each pipeline stage, summed over workers.")
		for _, s := range c.Stages {
			m.sample("scamv_stage_busy_seconds_total",
				[][2]string{{"stage", s.Name}}, secs(s.Busy.Microseconds()))
		}
	}
	if len(c.Pipeline) > 0 {
		m.family("scamv_stage_wait_seconds_total", "counter", "Input starvation per stage: time blocked receiving upstream items.")
		for _, s := range c.Pipeline {
			m.sample("scamv_stage_wait_seconds_total",
				[][2]string{{"stage", s.Name}}, secs(s.Wait.Microseconds()))
		}
		m.family("scamv_stage_stall_seconds_total", "counter", "Output backpressure per stage: time blocked sending downstream.")
		for _, s := range c.Pipeline {
			m.sample("scamv_stage_stall_seconds_total",
				[][2]string{{"stage", s.Name}}, secs(s.Stall.Microseconds()))
		}
		m.family("scamv_stage_items_in_total", "counter", "Items received per stage.")
		for _, s := range c.Pipeline {
			m.sample("scamv_stage_items_in_total",
				[][2]string{{"stage", s.Name}}, ival(s.In))
		}
		m.family("scamv_stage_items_out_total", "counter", "Items emitted per stage.")
		for _, s := range c.Pipeline {
			m.sample("scamv_stage_items_out_total",
				[][2]string{{"stage", s.Name}}, ival(s.Out))
		}
		m.family("scamv_stage_workers", "gauge", "Worker-pool size per stage.")
		for _, s := range c.Pipeline {
			m.sample("scamv_stage_workers",
				[][2]string{{"stage", s.Name}}, ival(int64(s.Workers)))
		}
	}

	// Native histograms from the fixed log2 buckets.
	if t != nil {
		m.family("scamv_query_duration_seconds", "histogram", "Solver query latency.")
		m.histogram("scamv_query_duration_seconds", nil, &t.queryHist)

		t.stagesMu.RLock()
		order := append([]*stageAgg(nil), t.order...)
		t.stagesMu.RUnlock()
		if len(order) > 0 {
			m.family("scamv_stage_duration_seconds", "histogram", "Per-program span latency by pipeline stage.")
			for _, a := range order {
				m.histogram("scamv_stage_duration_seconds",
					[][2]string{{"stage", a.name}}, &a.hist)
			}
		}
	}

	// Flight-recorder watermarks, when one is attached.
	if fr := t.FlightRecorder(); fr != nil {
		st := fr.Status()
		m.family("scamv_flight_events_total", "counter", "Trace records seen by the flight-recorder ring.")
		m.sample("scamv_flight_events_total", nil, ival(st.Events))
		m.family("scamv_flight_dropped_total", "counter", "Ring records overwritten by newer ones.")
		m.sample("scamv_flight_dropped_total", nil, ival(st.Dropped))
		m.family("scamv_flight_captures_total", "counter", "Anomaly bundles captured.")
		m.sample("scamv_flight_captures_total", nil, ival(st.Captures))
		m.family("scamv_flight_max_query_seconds", "gauge", "Slowest solver query observed (watermark).")
		m.sample("scamv_flight_max_query_seconds", nil, secs(st.MaxQueryUS))
		m.family("scamv_flight_max_stall_seconds", "gauge", "Largest cumulative stage stall observed (watermark).")
		m.sample("scamv_flight_max_stall_seconds", nil, secs(st.MaxStallUS))
	}
}

// promWriter emits exposition-format lines.
type promWriter struct {
	w io.Writer
}

func (m *promWriter) family(name, typ, help string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *promWriter) sample(name string, labels [][2]string, value string) {
	io.WriteString(m.w, name)
	writeLabels(m.w, labels)
	fmt.Fprintf(m.w, " %s\n", value)
}

// histogram renders one Histogram as a native Prometheus histogram: the
// cumulative bucket series with exact inclusive upper edges, then sum and
// count. Extra labels (e.g. stage) ride on every series of the family.
func (m *promWriter) histogram(name string, labels [][2]string, h *Histogram) {
	buckets := h.Buckets()
	var cum int64
	for i, n := range buckets {
		upper := BucketUpperUS(i)
		if upper < 0 {
			break // the top bucket is the +Inf series below
		}
		cum += n
		le := strconv.FormatFloat(float64(upper)/1e6, 'g', -1, 64)
		m.sample(name+"_bucket", append(append([][2]string(nil), labels...), [2]string{"le", le}), ival(cum))
	}
	total := h.Count()
	m.sample(name+"_bucket", append(append([][2]string(nil), labels...), [2]string{"le", "+Inf"}), ival(total))
	m.sample(name+"_sum", labels, secs(h.Sum().Microseconds()))
	m.sample(name+"_count", labels, ival(total))
}

func writeLabels(w io.Writer, labels [][2]string) {
	if len(labels) == 0 {
		return
	}
	io.WriteString(w, "{")
	for i, kv := range labels {
		if i > 0 {
			io.WriteString(w, ",")
		}
		// %q escapes backslashes, quotes, and newlines — exactly the
		// exposition format's label-value escaping.
		fmt.Fprintf(w, `%s=%q`, kv[0], kv[1])
	}
	io.WriteString(w, "}")
}

func ival(v int64) string { return strconv.FormatInt(v, 10) }

// secs renders microseconds as seconds with full precision.
func secs(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}
