// Package telemetry is the campaign observability spine: a low-overhead,
// concurrency-safe tracer threaded through the whole Scam-V pipeline.
//
// Three consumers hang off one Tracer:
//
//   - a JSONL trace writer (scamv -trace run.jsonl) recording one line per
//     pipeline span, per solver query (with SAT counter deltas, blast-cache
//     hits/misses, and Ackermann expansion counts), and per experiment
//     verdict — reloadable by ReadTrace for offline latency analysis;
//   - live aggregates (Snapshot) feeding the periodic progress line on
//     stderr and the expvar/pprof debug endpoint;
//   - per-stage and per-query latency histograms (fixed log2 buckets, no
//     floats in the hot path).
//
// A nil *Tracer is fully functional and free: every method starts with a
// single pointer check, so the disabled pipeline pays one compare-and-branch
// per instrumentation site and nothing else. The trace file format follows
// the durability patterns of internal/logdb: buffered writes behind a mutex,
// Close flushes and closes joining both errors, and the reader rejects a
// torn final line by naming it.
package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SchemaVersion is the trace schema version stamped on every record.
// Version 1: kinds "campaign", "span", "query", "verdict" with the fields
// documented on Record. Version 2 adds the resilience kinds "retry",
// "timeout", "skip", "quarantine", "breaker" (new fields Reason, Attempt,
// From, To). Version 3 adds the portfolio/shape-cache fields on "query"
// records (Winner, SharedClauses) and the "shape" kind (Hit) recording
// campaign shape-cache lookups; v1 and v2 traces remain loadable. Version 4
// adds the "platform" kind: one record per (platform, test) of a matrix
// campaign, carrying the platform name in Name alongside the verdict fields.
// Version 5 adds the crash-safety kinds "resume" (a campaign restored a
// journaled prefix: Name, Programs = restored count) and "checkpoint" (a
// durable checkpoint was written: Programs = programs covered). Readers
// reject records from a newer schema.
const SchemaVersion = 5

// Record is one JSONL trace line. One flat struct serves all kinds; fields
// not meaningful for a kind are zero and omitted from the encoding (their
// decoded zero values are identical, so the round trip is lossless).
//
// Kinds:
//
//	campaign  a campaign started: Name, Programs (expected count)
//	span      one pipeline stage finished for one program: Stage, Prog, DurUS
//	query     one solver query: Prog, PathA/PathB/Class/Slot, Status, DurUS,
//	          plus the solver-effort deltas of this query (Conflicts,
//	          Decisions, Propagations, BlastHits, BlastMisses, AckReads) and,
//	          under a portfolio backend, Winner (1-based deciding worker) and
//	          SharedClauses (learnt clauses imported this query)
//	shape     one campaign shape-cache lookup: Prog, Hit
//	verdict   one executed test case: Prog, Test, Verdict, DurUS
//	retry     one platform retry: Prog, Test, Attempt (failing attempt,
//	          0-based), Reason
//	timeout   one platform attempt hit its deadline: Prog, Test, Attempt
//	skip      one test abandoned under FailPolicy Degrade: Prog, Test, Reason
//	quarantine one program quarantined: Prog, Reason
//	breaker   one circuit-breaker transition: Name, From, To
//	platform  one platform's verdict for one test of a matrix campaign:
//	          Name (platform), Prog, Test, Verdict, DurUS
//	resume    a campaign restored a journaled prefix on startup: Name
//	          (campaign), Programs (restored program count)
//	checkpoint a durable campaign checkpoint was written: Programs
//	          (programs covered by the checkpoint)
type Record struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	// TSus is microseconds since the tracer started (monotonic).
	TSus int64 `json:"ts_us"`

	Name     string `json:"name,omitempty"`
	Programs int    `json:"programs,omitempty"`

	Prog  int    `json:"prog,omitempty"`
	Stage string `json:"stage,omitempty"`
	DurUS int64  `json:"dur_us,omitempty"`

	Test    int    `json:"test,omitempty"`
	Verdict string `json:"verdict,omitempty"`

	PathA  int    `json:"path_a,omitempty"`
	PathB  int    `json:"path_b,omitempty"`
	Class  int    `json:"class,omitempty"`
	Slot   int    `json:"slot,omitempty"`
	Status string `json:"status,omitempty"`

	Conflicts    int64 `json:"conflicts,omitempty"`
	Decisions    int64 `json:"decisions,omitempty"`
	Propagations int64 `json:"propagations,omitempty"`
	BlastHits    int64 `json:"blast_hits,omitempty"`
	BlastMisses  int64 `json:"blast_misses,omitempty"`
	AckReads     int64 `json:"ack_reads,omitempty"`

	// Resilience fields (schema v2).
	Reason  string `json:"reason,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`

	// Portfolio and shape-cache fields (schema v3).
	Winner        int   `json:"winner,omitempty"`
	SharedClauses int64 `json:"shared_clauses,omitempty"`
	Hit           bool  `json:"hit,omitempty"`
}

// QueryEvent is one solver query as reported by the test-case generator.
// The counter fields are deltas over this query, not cumulative totals.
type QueryEvent struct {
	Prog   int
	PathA  int
	PathB  int
	Class  int
	Slot   int
	Status string
	Dur    time.Duration

	Conflicts    int64
	Decisions    int64
	Propagations int64
	BlastHits    int64
	BlastMisses  int64
	AckReads     int64

	// Winner is the 1-based portfolio worker that decided the query (0 for a
	// single-solver backend or an undecided query); SharedClauses counts the
	// learnt clauses imported from the portfolio share pool during the query.
	Winner        int
	SharedClauses int64
}

// stageAgg accumulates span observations for one stage name.
type stageAgg struct {
	name string
	hist Histogram
}

// Tracer collects spans, query events, and verdicts. All methods are safe
// for concurrent use and safe on a nil receiver (the disabled fast path).
type Tracer struct {
	start time.Time

	mu     sync.Mutex // guards w, closer, werr
	w      *bufio.Writer
	closer io.Closer
	werr   error // first write error, sticky

	// Aggregates for the progress line and the debug endpoint.
	totalPrograms   atomic.Int64
	programs        atomic.Int64
	experiments     atomic.Int64
	counterexamples atomic.Int64
	inconclusive    atomic.Int64

	queries      atomic.Int64
	queryHist    Histogram
	conflicts    atomic.Int64
	decisions    atomic.Int64
	propagations atomic.Int64
	blastHits    atomic.Int64
	blastMisses  atomic.Int64
	ackReads     atomic.Int64

	// Resilience counters (schema v2 kinds).
	retries      atomic.Int64
	timeouts     atomic.Int64
	skips        atomic.Int64
	quarantines  atomic.Int64
	breakerTrips atomic.Int64

	// Portfolio and shape-cache counters (schema v3).
	sharedClauses atomic.Int64
	shapeHits     atomic.Int64
	shapeMisses   atomic.Int64

	// Crash-safety counters (schema v5).
	resumedPrograms atomic.Int64
	checkpoints     atomic.Int64
	winsMu          sync.Mutex
	wins            []int64 // index = winner-1, grown on demand

	// Per-platform verdict aggregates of a matrix campaign (schema v4).
	platMu    sync.Mutex
	platforms map[string]*PlatformCount

	stagesMu sync.RWMutex
	stages   map[string]*stageAgg
	order    []*stageAgg // first-seen order

	// Observability plane (no schema impact): the optional flight recorder
	// ring, the live pipeline-metrics source registered by the staged
	// engine, and the actually-bound debug address of -debug-addr.
	fr atomic.Pointer[FlightRecorder]

	pipeMu  sync.Mutex
	pipeSrc func() []PipelineStage

	addrMu    sync.Mutex
	debugAddr string
}

// PipelineStage is one live pipeline-stage snapshot: the staged engine's
// busy/wait/stall counters surfaced while the campaign runs (Result.Stages
// only materializes at the end). Wait is input starvation, Stall is output
// backpressure — the pair that ranks the bottleneck stage live.
type PipelineStage struct {
	Name    string
	Workers int
	In      int64
	Out     int64
	Busy    time.Duration
	Wait    time.Duration
	Stall   time.Duration
}

// SetPipelineSource registers a live per-stage metrics provider (the staged
// engine's coordinator). The source is called on every Snapshot; it must be
// safe for concurrent use. A later campaign on the same tracer replaces the
// source; the last campaign's pipeline stays scrapeable after it finishes.
func (t *Tracer) SetPipelineSource(fn func() []PipelineStage) {
	if t == nil {
		return
	}
	t.pipeMu.Lock()
	t.pipeSrc = fn
	t.pipeMu.Unlock()
}

// pipelineSnapshot reads the live pipeline metrics, if a source is set.
func (t *Tracer) pipelineSnapshot() []PipelineStage {
	if t == nil {
		return nil
	}
	t.pipeMu.Lock()
	fn := t.pipeSrc
	t.pipeMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// SetDebugAddr records the actually-bound address of the -debug-addr
// endpoint (meaningful with ":0", where the kernel picks the port), so
// tests and scripts can scrape ephemeral ports via Tracer or Result.
func (t *Tracer) SetDebugAddr(addr string) {
	if t == nil {
		return
	}
	t.addrMu.Lock()
	t.debugAddr = addr
	t.addrMu.Unlock()
}

// DebugAddr returns the bound debug-endpoint address ("" when none serves).
func (t *Tracer) DebugAddr() string {
	if t == nil {
		return ""
	}
	t.addrMu.Lock()
	defer t.addrMu.Unlock()
	return t.debugAddr
}

// New returns a tracer writing JSONL records to w. A nil w yields an
// aggregates-only tracer: spans and queries update the live counters and
// histograms but no trace is written — the mode behind -progress and
// -debug-addr without -trace.
func New(w io.Writer) *Tracer {
	t := &Tracer{start: time.Now(), stages: make(map[string]*stageAgg)}
	if w != nil {
		t.w = bufio.NewWriter(w)
		if c, ok := w.(io.Closer); ok {
			t.closer = c
		}
	}
	return t
}

// Create opens (or truncates) a trace file and returns a tracer writing
// to it. Close flushes and closes the file.
func Create(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return New(f), nil
}

// Enabled reports whether the tracer records anything. It is the one
// pointer check instrumentation sites pay when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// now returns microseconds since the tracer started.
func (t *Tracer) now() int64 { return time.Since(t.start).Microseconds() }

// record stamps the schema version on one record, feeds it to the flight
// recorder's ring (when one is attached), and appends it to the trace file
// (when one is open). Every event method funnels through here, so the ring
// sees exactly the records the trace would.
func (t *Tracer) record(rec *Record) {
	rec.V = SchemaVersion
	if fr := t.fr.Load(); fr != nil {
		fr.add(rec)
	}
	t.write(rec)
}

// write appends one record. Marshalling happens outside the lock; the first
// write error is kept and reported by Err and Close.
func (t *Tracer) write(rec *Record) {
	if t.w == nil {
		return
	}
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.werr != nil {
		return
	}
	if err != nil {
		t.werr = fmt.Errorf("telemetry: %w", err)
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.werr = fmt.Errorf("telemetry: %w", err)
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.werr = fmt.Errorf("telemetry: %w", err)
	}
}

// BeginCampaign records a campaign-start record and adds the expected
// program count to the progress denominator. Multiple campaigns may share
// one tracer (cmd/scamv runs several per invocation).
func (t *Tracer) BeginCampaign(name string, programs int) {
	if t == nil {
		return
	}
	t.totalPrograms.Add(int64(programs))
	t.record(&Record{Kind: "campaign", TSus: t.now(), Name: name, Programs: programs})
}

// stage returns (creating if needed) the aggregate for a stage name.
func (t *Tracer) stage(name string) *stageAgg {
	t.stagesMu.RLock()
	a := t.stages[name]
	t.stagesMu.RUnlock()
	if a != nil {
		return a
	}
	t.stagesMu.Lock()
	defer t.stagesMu.Unlock()
	if a = t.stages[name]; a == nil {
		a = &stageAgg{name: name}
		t.stages[name] = a
		t.order = append(t.order, a)
	}
	return a
}

// Span records one pipeline stage's work on one program, measured from
// start to now. Call it at the end of the stage body:
//
//	t0 := time.Now()
//	... stage work ...
//	tr.Span("testgen", p, t0)
func (t *Tracer) Span(stage string, prog int, start time.Time) {
	if t == nil {
		return
	}
	d := time.Since(start)
	t.stage(stage).hist.Observe(d)
	t.record(&Record{Kind: "span", TSus: t.now(), Prog: prog, Stage: stage, DurUS: d.Microseconds()})
}

// Query records one solver query with its effort deltas.
func (t *Tracer) Query(ev QueryEvent) {
	if t == nil {
		return
	}
	t.queries.Add(1)
	t.queryHist.Observe(ev.Dur)
	t.conflicts.Add(ev.Conflicts)
	t.decisions.Add(ev.Decisions)
	t.propagations.Add(ev.Propagations)
	t.blastHits.Add(ev.BlastHits)
	t.blastMisses.Add(ev.BlastMisses)
	t.ackReads.Add(ev.AckReads)
	t.sharedClauses.Add(ev.SharedClauses)
	if ev.Winner > 0 {
		t.winsMu.Lock()
		for len(t.wins) < ev.Winner {
			t.wins = append(t.wins, 0)
		}
		t.wins[ev.Winner-1]++
		t.winsMu.Unlock()
	}
	t.record(&Record{
		Kind: "query", TSus: t.now(), Prog: ev.Prog,
		PathA: ev.PathA, PathB: ev.PathB, Class: ev.Class, Slot: ev.Slot,
		Status: ev.Status, DurUS: ev.Dur.Microseconds(),
		Conflicts: ev.Conflicts, Decisions: ev.Decisions, Propagations: ev.Propagations,
		BlastHits: ev.BlastHits, BlastMisses: ev.BlastMisses, AckReads: ev.AckReads,
		Winner: ev.Winner, SharedClauses: ev.SharedClauses,
	})
	if fr := t.fr.Load(); fr != nil {
		fr.noteQuery(ev.Dur, &t.queryHist)
	}
}

// ShapeLookup records one campaign shape-cache lookup: hit means an earlier
// program already built the prototype encoding for this template shape.
func (t *Tracer) ShapeLookup(prog int, hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.shapeHits.Add(1)
	} else {
		t.shapeMisses.Add(1)
	}
	t.record(&Record{Kind: "shape", TSus: t.now(), Prog: prog, Hit: hit})
}

// Verdict records one executed test case's classification and execution time.
func (t *Tracer) Verdict(prog, test int, verdict string, dur time.Duration) {
	if t == nil {
		return
	}
	t.experiments.Add(1)
	switch verdict {
	case "counterexample":
		t.counterexamples.Add(1)
	case "inconclusive":
		t.inconclusive.Add(1)
	}
	t.record(&Record{Kind: "verdict", TSus: t.now(), Prog: prog, Test: test,
		Verdict: verdict, DurUS: dur.Microseconds()})
}

// PlatformVerdict records one platform's verdict for one test case of a
// matrix campaign. Unlike Verdict it does not bump the campaign experiment
// counters — the primary platform's Verdict call already did — it feeds the
// per-platform aggregates and the v4 "platform" trace kind.
func (t *Tracer) PlatformVerdict(prog, test int, platform, verdict string, dur time.Duration) {
	if t == nil {
		return
	}
	t.platMu.Lock()
	if t.platforms == nil {
		t.platforms = make(map[string]*PlatformCount)
	}
	pc := t.platforms[platform]
	if pc == nil {
		pc = &PlatformCount{Name: platform}
		t.platforms[platform] = pc
	}
	pc.Experiments++
	switch verdict {
	case "counterexample":
		pc.Counterexamples++
	case "inconclusive":
		pc.Inconclusive++
	}
	t.platMu.Unlock()
	t.record(&Record{Kind: "platform", TSus: t.now(), Prog: prog, Test: test,
		Name: platform, Verdict: verdict, DurUS: dur.Microseconds()})
}

// Retry records one platform-execution retry: attempt (0-based) failed with
// reason and will be re-attempted after backoff.
func (t *Tracer) Retry(prog, test, attempt int, reason string) {
	if t == nil {
		return
	}
	t.retries.Add(1)
	t.record(&Record{Kind: "retry", TSus: t.now(), Prog: prog, Test: test,
		Attempt: attempt, Reason: reason})
}

// Timeout records one platform attempt exceeding its per-Execute deadline.
func (t *Tracer) Timeout(prog, test, attempt int) {
	if t == nil {
		return
	}
	t.timeouts.Add(1)
	t.record(&Record{Kind: "timeout", TSus: t.now(), Prog: prog, Test: test, Attempt: attempt})
}

// Skip records one test case abandoned under FailPolicy Degrade.
func (t *Tracer) Skip(prog, test int, reason string) {
	if t == nil {
		return
	}
	t.skips.Add(1)
	t.record(&Record{Kind: "skip", TSus: t.now(), Prog: prog, Test: test, Reason: reason})
}

// Quarantine records one program being quarantined after consecutive
// failures.
func (t *Tracer) Quarantine(prog int, reason string) {
	if t == nil {
		return
	}
	t.quarantines.Add(1)
	t.record(&Record{Kind: "quarantine", TSus: t.now(), Prog: prog, Reason: reason})
}

// Breaker records one circuit-breaker state transition; transitions into the
// open state count as trips.
func (t *Tracer) Breaker(name, from, to string) {
	if t == nil {
		return
	}
	if to == "open" {
		t.breakerTrips.Add(1)
		if fr := t.fr.Load(); fr != nil {
			fr.noteBreaker(name)
		}
	}
	t.record(&Record{Kind: "breaker", TSus: t.now(), Name: name, From: from, To: to})
}

// Resume records a campaign restoring a journaled prefix of programs
// completed before a restart. The restored count feeds both the resumed
// counter and the completed-programs counter, so the progress line starts at
// N/P instead of replaying from zero.
func (t *Tracer) Resume(name string, programs int) {
	if t == nil {
		return
	}
	t.resumedPrograms.Add(int64(programs))
	t.programs.Add(int64(programs))
	t.record(&Record{Kind: "resume", TSus: t.now(), Name: name, Programs: programs})
}

// Checkpoint records one durable campaign checkpoint covering the first
// programs completed programs.
func (t *Tracer) Checkpoint(programs int) {
	if t == nil {
		return
	}
	t.checkpoints.Add(1)
	t.record(&Record{Kind: "checkpoint", TSus: t.now(), Programs: programs})
}

// ProgramDone bumps the completed-program counter behind the progress line.
func (t *Tracer) ProgramDone() {
	if t == nil {
		return
	}
	t.programs.Add(1)
}

// PlatformCount is one matrix platform's live verdict aggregate.
type PlatformCount struct {
	Name            string
	Experiments     int64
	Counterexamples int64
	Inconclusive    int64
}

// StageCount is one stage's live aggregate in a Counters snapshot.
type StageCount struct {
	Name  string
	Count int64
	Busy  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Counters is a point-in-time copy of the tracer's aggregates, consumed by
// the progress sampler and the debug endpoint.
type Counters struct {
	Elapsed time.Duration

	TotalPrograms   int64
	Programs        int64
	Experiments     int64
	Counterexamples int64
	Inconclusive    int64

	Queries      int64
	QueryTime    time.Duration
	QueryP50     time.Duration
	QueryP95     time.Duration
	QueryP99     time.Duration
	Conflicts    int64
	Decisions    int64
	Propagations int64
	BlastHits    int64
	BlastMisses  int64
	AckReads     int64

	Retries      int64
	Timeouts     int64
	Skips        int64
	Quarantines  int64
	BreakerTrips int64

	// SharedClauses sums the learnt clauses imported across portfolio
	// workers; PortfolioWins tallies deciding queries per worker (index =
	// worker-1); ShapeHits/ShapeMisses count campaign shape-cache lookups.
	SharedClauses int64
	PortfolioWins []int64
	ShapeHits     int64
	ShapeMisses   int64

	// ResumedPrograms counts programs restored from campaign journals
	// (included in Programs); Checkpoints counts durable checkpoints written.
	ResumedPrograms int64
	Checkpoints     int64

	// Platforms holds per-platform verdict aggregates of matrix campaigns,
	// sorted by platform name; empty for single-platform campaigns.
	Platforms []PlatformCount

	Stages []StageCount // first-seen (pipeline) order

	// Pipeline holds the staged engine's live per-stage busy/wait/stall
	// metrics when a campaign registered a source via SetPipelineSource;
	// nil for monolithic campaigns and idle tracers. Unlike Stages (span
	// durations), Pipeline carries starvation and backpressure.
	Pipeline []PipelineStage
}

// Snapshot copies the live aggregates. Safe to call while the campaign runs.
func (t *Tracer) Snapshot() Counters {
	if t == nil {
		return Counters{}
	}
	c := Counters{
		Elapsed:         time.Since(t.start),
		TotalPrograms:   t.totalPrograms.Load(),
		Programs:        t.programs.Load(),
		Experiments:     t.experiments.Load(),
		Counterexamples: t.counterexamples.Load(),
		Inconclusive:    t.inconclusive.Load(),
		Queries:         t.queries.Load(),
		QueryTime:       t.queryHist.Sum(),
		Conflicts:       t.conflicts.Load(),
		Decisions:       t.decisions.Load(),
		Propagations:    t.propagations.Load(),
		BlastHits:       t.blastHits.Load(),
		BlastMisses:     t.blastMisses.Load(),
		AckReads:        t.ackReads.Load(),
		Retries:         t.retries.Load(),
		Timeouts:        t.timeouts.Load(),
		Skips:           t.skips.Load(),
		Quarantines:     t.quarantines.Load(),
		BreakerTrips:    t.breakerTrips.Load(),
		SharedClauses:   t.sharedClauses.Load(),
		ShapeHits:       t.shapeHits.Load(),
		ShapeMisses:     t.shapeMisses.Load(),
		ResumedPrograms: t.resumedPrograms.Load(),
		Checkpoints:     t.checkpoints.Load(),
	}
	t.winsMu.Lock()
	c.PortfolioWins = append([]int64(nil), t.wins...)
	t.winsMu.Unlock()
	t.platMu.Lock()
	for _, pc := range t.platforms {
		c.Platforms = append(c.Platforms, *pc)
	}
	t.platMu.Unlock()
	sort.Slice(c.Platforms, func(i, j int) bool { return c.Platforms[i].Name < c.Platforms[j].Name })
	c.QueryP50, c.QueryP95, c.QueryP99 = t.queryHist.Quantiles()
	t.stagesMu.RLock()
	order := append([]*stageAgg(nil), t.order...)
	t.stagesMu.RUnlock()
	for _, a := range order {
		sc := StageCount{Name: a.name, Count: a.hist.Count(), Busy: a.hist.Sum()}
		sc.P50, sc.P95, sc.P99 = a.hist.Quantiles()
		c.Stages = append(c.Stages, sc)
	}
	c.Pipeline = t.pipelineSnapshot()
	return c
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.werr
}

// Close flushes the trace and closes the underlying file, if any. Like
// logdb.Close, the file is closed even when the flush fails and both errors
// are joined — either alone can mean a truncated trace.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var ferr, cerr error
	if t.w != nil {
		if err := t.w.Flush(); err != nil {
			ferr = fmt.Errorf("telemetry: flush: %w", err)
		}
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil {
			cerr = fmt.Errorf("telemetry: close: %w", err)
		}
		t.closer = nil
	}
	return errors.Join(t.werr, ferr, cerr)
}

// ReadTrace decodes trace records from a reader. Mirroring logdb.Read, a
// torn final line (a crash mid-append) is rejected with an error naming the
// line rather than silently dropped or misparsed; records from a newer
// schema version are rejected too.
func ReadTrace(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		if rec.V > SchemaVersion {
			return nil, fmt.Errorf("telemetry: line %d: trace schema v%d newer than supported v%d",
				line, rec.V, SchemaVersion)
		}
		if rec.Kind == "" {
			return nil, fmt.Errorf("telemetry: line %d: record without kind", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return out, nil
}

// ReadTraceTolerant decodes trace records like ReadTrace but tolerates a
// torn final line (a crash or kill mid-append): instead of failing, the torn
// line is dropped and counted, so -report can still analyse the rest of the
// trace while warning the user. Malformed lines before the final one, kindless
// records, and newer-schema records remain hard errors — those mean
// corruption, not truncation.
func ReadTraceTolerant(r io.Reader) (recs []Record, torn int, err error) {
	var lines [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("telemetry: %w", err)
	}
	last := -1 // index of the last non-empty line
	for i := len(lines) - 1; i >= 0; i-- {
		if len(lines[i]) > 0 {
			last = i
			break
		}
	}
	for i, b := range lines {
		if len(b) == 0 {
			continue
		}
		var rec Record
		if uerr := json.Unmarshal(b, &rec); uerr != nil {
			if i == last {
				torn++
				break
			}
			return nil, 0, fmt.Errorf("telemetry: line %d: %w", i+1, uerr)
		}
		if rec.V > SchemaVersion {
			return nil, 0, fmt.Errorf("telemetry: line %d: trace schema v%d newer than supported v%d",
				i+1, rec.V, SchemaVersion)
		}
		if rec.Kind == "" {
			return nil, 0, fmt.Errorf("telemetry: line %d: record without kind", i+1)
		}
		recs = append(recs, rec)
	}
	return recs, torn, nil
}

// LoadTraceTolerant reads a trace file via ReadTraceTolerant.
func LoadTraceTolerant(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return ReadTraceTolerant(f)
}

// LoadTrace reads all records from a trace file.
func LoadTrace(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// SortRecords orders records by timestamp, then by kind for equal stamps —
// a stable order for golden tests over concurrent campaigns.
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].TSus != recs[j].TSus {
			return recs[i].TSus < recs[j].TSus
		}
		return recs[i].Kind < recs[j].Kind
	})
}
