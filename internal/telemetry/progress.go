package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// RenderProgress formats one live progress line from two successive counter
// snapshots taken dt apart: programs done, experiments, counterexamples,
// query throughput over the interval, and the per-stage busy share of the
// interval's pipeline work.
//
// With no stage samples (a -monolithic campaign before any shared stage
// body ran, or an idle tracer) the line falls back to the program-level
// counts alone — it never assumes a stage spine exists.
func RenderProgress(cur, prev Counters, dt time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "progs %d/%d", cur.Programs, cur.TotalPrograms)
	// Crash-safety counters appear only for resumed/checkpointed campaigns.
	if cur.ResumedPrograms > 0 {
		fmt.Fprintf(&sb, " (%d resumed)", cur.ResumedPrograms)
	}
	fmt.Fprintf(&sb, "  exps %d", cur.Experiments)
	fmt.Fprintf(&sb, "  cex %d", cur.Counterexamples)
	if cur.Inconclusive > 0 {
		fmt.Fprintf(&sb, "  inconcl %d", cur.Inconclusive)
	}
	qps := 0.0
	if dt > 0 {
		qps = float64(cur.Queries-prev.Queries) / dt.Seconds()
	}
	fmt.Fprintf(&sb, "  queries %d (%.1f/s)", cur.Queries, qps)
	// Resilience counters appear only once something went wrong: a healthy
	// campaign's progress line is unchanged.
	if cur.Retries > 0 || cur.Timeouts > 0 {
		fmt.Fprintf(&sb, "  retries %d", cur.Retries)
		if cur.Timeouts > 0 {
			fmt.Fprintf(&sb, " (%d timeouts)", cur.Timeouts)
		}
	}
	if cur.Skips > 0 {
		fmt.Fprintf(&sb, "  skips %d", cur.Skips)
	}
	if cur.Quarantines > 0 {
		fmt.Fprintf(&sb, "  quarantined %d", cur.Quarantines)
	}
	if cur.BreakerTrips > 0 {
		fmt.Fprintf(&sb, "  breaker-trips %d", cur.BreakerTrips)
	}
	if cur.Checkpoints > 0 {
		fmt.Fprintf(&sb, "  ckpts %d", cur.Checkpoints)
	}
	// Portfolio/shape-cache counters appear only when those features run.
	if cur.ShapeHits+cur.ShapeMisses > 0 {
		fmt.Fprintf(&sb, "  shapes %d/%d hit", cur.ShapeHits, cur.ShapeHits+cur.ShapeMisses)
	}
	if len(cur.PortfolioWins) > 0 {
		sb.WriteString("  wins")
		for _, w := range cur.PortfolioWins {
			fmt.Fprintf(&sb, " %d", w)
		}
		if cur.SharedClauses > 0 {
			fmt.Fprintf(&sb, "  shared %d", cur.SharedClauses)
		}
	}

	// Busy share over the interval: how the pipeline's working time divided
	// across stages since the previous tick. Relative shares rank the
	// bottleneck without knowing per-stage worker counts.
	deltas := make(map[string]time.Duration, len(prev.Stages))
	for _, s := range prev.Stages {
		deltas[s.Name] = s.Busy
	}
	var total time.Duration
	type share struct {
		name string
		busy time.Duration
	}
	var shares []share
	for _, s := range cur.Stages {
		d := s.Busy - deltas[s.Name]
		if d < 0 {
			d = 0
		}
		total += d
		shares = append(shares, share{s.Name, d})
	}
	if total > 0 {
		sb.WriteString("  busy%")
		for _, s := range shares {
			pct := int(100 * s.busy / total)
			if pct == 0 {
				continue
			}
			fmt.Fprintf(&sb, " %s %d", s.name, pct)
		}
	}
	return sb.String()
}

// StartProgress launches a sampler goroutine that renders the progress line
// to w every interval (1s when interval <= 0), overwriting in place with a
// carriage return. The returned stop function halts the sampler, prints one
// final line, and terminates it with a newline; it is idempotent.
func StartProgress(w io.Writer, t *Tracer, interval time.Duration) (stop func()) {
	if t == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		prev := t.Snapshot()
		prevAt := time.Now()
		width := 0
		emit := func(final bool) {
			cur := t.Snapshot()
			now := time.Now()
			line := RenderProgress(cur, prev, now.Sub(prevAt))
			prev, prevAt = cur, now
			if pad := width - len(line); pad > 0 {
				line += strings.Repeat(" ", pad)
			} else {
				width = len(line)
			}
			end := "\r"
			if final {
				end = "\n"
			}
			fmt.Fprintf(w, "\r%s%s", line, end)
		}
		for {
			select {
			case <-tick.C:
				emit(false)
			case <-done:
				emit(true)
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
