package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDebugEndpoint(t *testing.T) {
	tr := New(nil)
	tr.BeginCampaign("c", 3)
	tr.Query(QueryEvent{Status: "sat", Dur: 2 * time.Millisecond, Conflicts: 7, BlastMisses: 1})
	tr.Span("symexec", 0, time.Now().Add(-time.Millisecond))
	tr.ProgramDone()

	srv := httptest.NewServer(DebugMux(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/scamv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var c countersJSON
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if c.Programs != 1 || c.Queries != 1 || c.Conflicts != 7 || c.BlastMisses != 1 {
		t.Errorf("/debug/scamv counters wrong: %+v", c)
	}
	if len(c.Stages) != 1 || c.Stages[0].Name != "symexec" || c.Stages[0].P50US == 0 {
		t.Errorf("/debug/scamv stages wrong: %+v", c.Stages)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestServeDebugPicksFreePort(t *testing.T) {
	tr := New(nil)
	srv, addr, err := ServeDebug("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/debug/scamv")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
