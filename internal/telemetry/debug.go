package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// countersJSON is the wire shape of /debug/scamv: the Counters snapshot
// with durations flattened to microseconds.
type countersJSON struct {
	ElapsedUS int64 `json:"elapsed_us"`

	TotalPrograms   int64 `json:"total_programs"`
	Programs        int64 `json:"programs"`
	Experiments     int64 `json:"experiments"`
	Counterexamples int64 `json:"counterexamples"`
	Inconclusive    int64 `json:"inconclusive"`

	Queries      int64 `json:"queries"`
	QueryTimeUS  int64 `json:"query_time_us"`
	QueryP50US   int64 `json:"query_p50_us"`
	QueryP95US   int64 `json:"query_p95_us"`
	QueryP99US   int64 `json:"query_p99_us"`
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	BlastHits    int64 `json:"blast_hits"`
	BlastMisses  int64 `json:"blast_misses"`
	AckReads     int64 `json:"ack_reads"`

	Retries      int64 `json:"retries"`
	Timeouts     int64 `json:"timeouts"`
	Skips        int64 `json:"skips"`
	Quarantines  int64 `json:"quarantines"`
	BreakerTrips int64 `json:"breaker_trips"`

	SharedClauses int64   `json:"shared_clauses,omitempty"`
	PortfolioWins []int64 `json:"portfolio_wins,omitempty"`
	ShapeHits     int64   `json:"shape_hits,omitempty"`
	ShapeMisses   int64   `json:"shape_misses,omitempty"`

	ResumedPrograms int64 `json:"resumed_programs,omitempty"`
	Checkpoints     int64 `json:"checkpoints,omitempty"`

	Stages []stageJSON `json:"stages,omitempty"`

	// Platforms carries per-platform verdicts of matrix campaigns; Pipeline
	// the staged engine's live busy/wait/stall; Flight the flight recorder's
	// ring/watermark status — all omitted when the feature is idle, so
	// pre-observatory consumers see an unchanged document.
	Platforms []platformJSON `json:"platforms,omitempty"`
	Pipeline  []pipelineJSON `json:"pipeline,omitempty"`
	Flight    *FlightStatus  `json:"flight,omitempty"`
}

type stageJSON struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	BusyUS int64  `json:"busy_us"`
	P50US  int64  `json:"p50_us"`
	P95US  int64  `json:"p95_us"`
	P99US  int64  `json:"p99_us"`
}

type platformJSON struct {
	Name            string `json:"name"`
	Experiments     int64  `json:"experiments"`
	Counterexamples int64  `json:"counterexamples"`
	Inconclusive    int64  `json:"inconclusive"`
}

type pipelineJSON struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	In      int64  `json:"in"`
	Out     int64  `json:"out"`
	BusyUS  int64  `json:"busy_us"`
	WaitUS  int64  `json:"wait_us"`
	StallUS int64  `json:"stall_us"`
}

func countersWire(c Counters) countersJSON {
	out := countersJSON{
		ElapsedUS:       c.Elapsed.Microseconds(),
		TotalPrograms:   c.TotalPrograms,
		Programs:        c.Programs,
		Experiments:     c.Experiments,
		Counterexamples: c.Counterexamples,
		Inconclusive:    c.Inconclusive,
		Queries:         c.Queries,
		QueryTimeUS:     c.QueryTime.Microseconds(),
		QueryP50US:      c.QueryP50.Microseconds(),
		QueryP95US:      c.QueryP95.Microseconds(),
		QueryP99US:      c.QueryP99.Microseconds(),
		Conflicts:       c.Conflicts,
		Decisions:       c.Decisions,
		Propagations:    c.Propagations,
		BlastHits:       c.BlastHits,
		BlastMisses:     c.BlastMisses,
		AckReads:        c.AckReads,
		Retries:         c.Retries,
		Timeouts:        c.Timeouts,
		Skips:           c.Skips,
		Quarantines:     c.Quarantines,
		BreakerTrips:    c.BreakerTrips,
		SharedClauses:   c.SharedClauses,
		PortfolioWins:   c.PortfolioWins,
		ShapeHits:       c.ShapeHits,
		ShapeMisses:     c.ShapeMisses,
		ResumedPrograms: c.ResumedPrograms,
		Checkpoints:     c.Checkpoints,
	}
	for _, s := range c.Stages {
		out.Stages = append(out.Stages, stageJSON{
			Name:   s.Name,
			Count:  s.Count,
			BusyUS: s.Busy.Microseconds(),
			P50US:  s.P50.Microseconds(),
			P95US:  s.P95.Microseconds(),
			P99US:  s.P99.Microseconds(),
		})
	}
	for _, p := range c.Platforms {
		out.Platforms = append(out.Platforms, platformJSON{
			Name:            p.Name,
			Experiments:     p.Experiments,
			Counterexamples: p.Counterexamples,
			Inconclusive:    p.Inconclusive,
		})
	}
	for _, p := range c.Pipeline {
		out.Pipeline = append(out.Pipeline, pipelineJSON{
			Name:    p.Name,
			Workers: p.Workers,
			In:      p.In,
			Out:     p.Out,
			BusyUS:  p.Busy.Microseconds(),
			WaitUS:  p.Wait.Microseconds(),
			StallUS: p.Stall.Microseconds(),
		})
	}
	return out
}

// wireSnapshot builds the full wire document for /debug/scamv and the SSE
// stream: the counter snapshot plus the flight recorder's status.
func wireSnapshot(t *Tracer) countersJSON {
	out := countersWire(t.Snapshot())
	if fr := t.FlightRecorder(); fr != nil {
		st := fr.Status()
		out.Flight = &st
	}
	return out
}

// DebugMux builds the debug endpoint served by -debug-addr on a private
// mux (no global DefaultServeMux registration, so tests can build many):
//
//	/metrics             Prometheus text-format export of the live aggregates
//	/debug/scamv         JSON snapshot of the tracer's live counters
//	/debug/scamv/live    self-contained live HTML dashboard (SSE-fed)
//	/debug/scamv/events  server-sent-events stream of counter snapshots
//	/debug/scamv/flight  flight-recorder status (GET) / forced capture (POST)
//	/debug/vars          the process's expvar map (memstats, cmdline)
//	/debug/pprof/        the standard pprof index, profiles, and traces
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(t))
	mux.HandleFunc("/debug/scamv", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(wireSnapshot(t))
	})
	mux.HandleFunc("/debug/scamv/live", liveHandler())
	mux.HandleFunc("/debug/scamv/events", sseHandler(t))
	mux.HandleFunc("/debug/scamv/flight", flightHandler(t))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060";
// port 0 picks a free port, reported by the returned address). The caller
// closes the returned server when the campaign is over. Profiling a live
// campaign:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile
//	curl http://localhost:6060/debug/scamv
func ServeDebug(addr string, t *Tracer) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(t), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
