package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRingOverwrite(t *testing.T) {
	tr := New(nil)
	fr := tr.StartFlightRecorder(FlightConfig{RingSize: 8, StallThreshold: -1})
	defer fr.Stop()

	for i := 0; i < 20; i++ {
		tr.Verdict(i, 0, "ok", time.Millisecond)
	}
	snap := fr.RingSnapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(snap))
	}
	// Only the newest 8 of the 20 verdicts survive.
	for _, rec := range snap {
		if rec.Prog < 12 {
			t.Errorf("ring kept stale record for prog %d", rec.Prog)
		}
	}
	st := fr.Status()
	if st.Events != 20 || st.Dropped != 12 || st.RingSize != 8 {
		t.Errorf("status = %+v, want events=20 dropped=12 ring_size=8", st)
	}
	// Timestamps must come back sorted.
	for i := 1; i < len(snap); i++ {
		if snap[i].TSus < snap[i-1].TSus {
			t.Fatal("ring snapshot not time-ordered")
		}
	}
}

func TestFlightSlowQueryTrigger(t *testing.T) {
	dir := t.TempDir()
	tr := New(nil)
	fr := tr.StartFlightRecorder(FlightConfig{
		RingSize:           64,
		Dir:                dir,
		QueryLatencyFactor: 4,
		QueryLatencyFloor:  time.Microsecond,
		MinQuerySamples:    16,
		StallThreshold:     -1,
	})
	defer fr.Stop()

	// Build a tight p99 baseline, then one egregious outlier. The baseline
	// must be large enough that the p99 rank stays below the outlier's own
	// bucket (the outlier is already observed when the trigger evaluates).
	for i := 0; i < 128; i++ {
		tr.Query(QueryEvent{Status: "sat", Dur: 100 * time.Microsecond})
	}
	tr.Query(QueryEvent{Status: "sat", Dur: 200 * time.Millisecond})
	fr.Stop() // waits for the async bundle write

	st := fr.Status()
	if st.Captures != 1 {
		t.Fatalf("captures = %d, want 1 (reason %q err %q)", st.Captures, st.LastReason, st.LastError)
	}
	if !strings.HasPrefix(st.LastReason, "slow-query") {
		t.Errorf("reason = %q, want slow-query*", st.LastReason)
	}
	if st.LastError != "" {
		t.Fatalf("bundle write failed: %s", st.LastError)
	}
	if st.MaxQueryUS != 200_000 {
		t.Errorf("max query watermark = %dµs, want 200000", st.MaxQueryUS)
	}

	assertBundle(t, st.LastBundle, "slow-query")
}

// assertBundle checks the on-disk shape of an anomaly bundle: a loadable
// ring.jsonl in trace format, a counters.json with the capture reason, and a
// non-empty goroutine dump.
func assertBundle(t *testing.T, dir, wantReason string) {
	t.Helper()
	if dir == "" {
		t.Fatal("no bundle path recorded")
	}
	recs, err := LoadTrace(filepath.Join(dir, "ring.jsonl"))
	if err != nil {
		t.Fatalf("ring.jsonl does not load as a trace: %v", err)
	}
	if len(recs) == 0 {
		t.Error("ring.jsonl is empty")
	}
	mb, err := os.ReadFile(filepath.Join(dir, "counters.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Reason   string       `json:"reason"`
		Counters countersJSON `json:"counters"`
		Flight   FlightStatus `json:"flight"`
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatalf("counters.json: %v", err)
	}
	if !strings.HasPrefix(meta.Reason, wantReason) {
		t.Errorf("bundle reason = %q, want %s*", meta.Reason, wantReason)
	}
	gb, err := os.ReadFile(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gb), "goroutine") {
		t.Error("goroutines.txt does not look like a goroutine dump")
	}
}

func TestFlightStallWatchdog(t *testing.T) {
	dir := t.TempDir()
	tr := New(nil)
	// A fake pipeline whose execute stage accrues 1s of stall per read —
	// every watchdog tick sees a delta over the 500ms threshold.
	var mu sync.Mutex
	stall := time.Duration(0)
	tr.SetPipelineSource(func() []PipelineStage {
		mu.Lock()
		defer mu.Unlock()
		stall += time.Second
		return []PipelineStage{{Name: "execute", Workers: 1, Stall: stall}}
	})
	fr := tr.StartFlightRecorder(FlightConfig{
		RingSize:       16,
		Dir:            dir,
		StallThreshold: 500 * time.Millisecond,
		SampleInterval: 10 * time.Millisecond,
	})
	tr.Verdict(0, 0, "ok", time.Millisecond) // something for the ring

	deadline := time.Now().Add(5 * time.Second)
	for fr.Status().Captures == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fr.Stop()

	st := fr.Status()
	if st.Captures == 0 {
		t.Fatal("stall watchdog never captured")
	}
	if !strings.HasPrefix(st.LastReason, "stage-stall execute") {
		t.Errorf("reason = %q, want stage-stall execute*", st.LastReason)
	}
	if st.MaxStallUS == 0 {
		t.Error("stall watermark not raised")
	}
	if st.LastError != "" {
		t.Fatalf("bundle write failed: %s", st.LastError)
	}
	assertBundle(t, st.LastBundle, "stage-stall")
}

func TestFlightBreakerTriggerAndCooldown(t *testing.T) {
	dir := t.TempDir()
	tr := New(nil)
	fr := tr.StartFlightRecorder(FlightConfig{
		RingSize:       16,
		Dir:            dir,
		StallThreshold: -1,
		Cooldown:       time.Hour,
	})

	tr.Breaker("target", "closed", "open")
	tr.Breaker("target", "open", "half-open") // not a trip
	tr.Breaker("target", "half-open", "open")
	fr.Stop()

	st := fr.Status()
	if st.Captures != 1 {
		t.Fatalf("captures = %d, want 1 (cooldown must swallow the second trip)", st.Captures)
	}
	if !strings.HasPrefix(st.LastReason, "breaker-open target") {
		t.Errorf("reason = %q", st.LastReason)
	}
}

func TestFlightForceCaptureWithoutDir(t *testing.T) {
	tr := New(nil)
	fr := tr.StartFlightRecorder(FlightConfig{RingSize: 4, StallThreshold: -1})
	defer fr.Stop()
	if _, err := fr.ForceCapture("manual"); err == nil {
		t.Fatal("ForceCapture without a bundle dir must fail")
	}
	if fr.TriggerCapture("auto") {
		t.Fatal("TriggerCapture without a bundle dir must decline")
	}
}

func TestFlightMaxCapturesCap(t *testing.T) {
	dir := t.TempDir()
	tr := New(nil)
	fr := tr.StartFlightRecorder(FlightConfig{
		RingSize:       4,
		Dir:            dir,
		StallThreshold: -1,
		Cooldown:       time.Nanosecond,
		MaxCaptures:    2,
	})
	admitted := 0
	for i := 0; i < 10; i++ {
		// Serialize: wait out the single-writer gate between attempts.
		if fr.TriggerCapture("burst") {
			admitted++
			waitIdle(t, fr)
		}
		time.Sleep(time.Millisecond) // outlive the nanosecond cooldown
	}
	fr.Stop()
	if admitted != 2 {
		t.Fatalf("admitted %d captures, want 2 (MaxCaptures)", admitted)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d bundle dirs on disk, want 2", len(entries))
	}
}

// waitIdle spins until the recorder's async bundle writer has finished.
func waitIdle(t *testing.T, fr *FlightRecorder) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fr.capturing.Load() {
		if time.Now().After(deadline) {
			t.Fatal("bundle writer stuck")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Stop()
	if fr.TriggerCapture("x") {
		t.Fatal("nil recorder admitted a capture")
	}
	if fr.RingSnapshot() != nil {
		t.Fatal("nil recorder returned a snapshot")
	}
	if st := fr.Status(); st.RingSize != 0 {
		t.Fatal("nil recorder returned a status")
	}
	if (*Tracer)(nil).StartFlightRecorder(FlightConfig{}) != nil {
		t.Fatal("nil tracer started a recorder")
	}
	if (*Tracer)(nil).FlightRecorder() != nil {
		t.Fatal("nil tracer returned a recorder")
	}
}

func TestSlugify(t *testing.T) {
	for in, want := range map[string]string{
		"slow-query 1.2s > 8x p99 10ms": "slow-query-1-2s-8x-p99-10ms",
		"breaker-open target":           "breaker-open-target",
		"___":                           "",
	} {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}
