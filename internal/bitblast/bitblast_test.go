package bitblast

import (
	"math/rand"
	"testing"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

// solveEq asserts e and returns a model assignment for the named variables.
func solveEq(t *testing.T, e expr.BoolExpr, names map[string]uint) (map[string]uint64, bool) {
	t.Helper()
	s := sat.New(1)
	b := New(s)
	b.Assert(e)
	if s.Solve() != sat.Sat {
		return nil, false
	}
	out := make(map[string]uint64)
	for n := range names {
		out[n] = b.VarValue(n)
	}
	return out, true
}

func TestAssertSimpleEquality(t *testing.T) {
	x := expr.NewVar("x", 16)
	m, ok := solveEq(t, expr.Eq(x, expr.NewConst(0xbeef, 16)), map[string]uint{"x": 16})
	if !ok || m["x"] != 0xbeef {
		t.Fatalf("m=%v ok=%v", m, ok)
	}
}

func TestUnsatDetected(t *testing.T) {
	x := expr.NewVar("x", 8)
	s := sat.New(1)
	b := New(s)
	b.Assert(expr.Eq(x, expr.NewConst(1, 8)))
	b.Assert(expr.Eq(x, expr.NewConst(2, 8)))
	if s.Solve() != sat.Unsat {
		t.Fatal("expected unsat")
	}
}

// randomBV builds a random bitvector expression over the variables a, b of
// the given width, with bounded depth.
func randomBV(rng *rand.Rand, w uint, depth int) expr.BVExpr {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return expr.NewVar("a", w)
		case 1:
			return expr.NewVar("b", w)
		default:
			return expr.NewConst(rng.Uint64(), w)
		}
	}
	x := randomBV(rng, w, depth-1)
	y := randomBV(rng, w, depth-1)
	switch rng.Intn(12) {
	case 0:
		return expr.Add(x, y)
	case 1:
		return expr.Sub(x, y)
	case 2:
		return expr.And(x, y)
	case 3:
		return expr.Or(x, y)
	case 4:
		return expr.Xor(x, y)
	case 5:
		return expr.Not(x)
	case 6:
		return expr.Neg(x)
	case 7:
		return expr.Shl(x, expr.NewConst(uint64(rng.Intn(int(w)+2)), w))
	case 8:
		return expr.Lshr(x, expr.NewConst(uint64(rng.Intn(int(w)+2)), w))
	case 9:
		return expr.Ashr(x, expr.NewConst(uint64(rng.Intn(int(w)+2)), w))
	case 10:
		return expr.NewIte(expr.Ult(x, y), x, y)
	default:
		return expr.Mul(x, y)
	}
}

func randomBool(rng *rand.Rand, w uint, depth int) expr.BoolExpr {
	x := randomBV(rng, w, depth)
	y := randomBV(rng, w, depth)
	switch rng.Intn(5) {
	case 0:
		return expr.Eq(x, y)
	case 1:
		return expr.Ult(x, y)
	case 2:
		return expr.Ule(x, y)
	case 3:
		return expr.Slt(x, y)
	default:
		return expr.Sle(x, y)
	}
}

// TestBlastAgainstEvaluator is the core soundness property of the
// bit-blaster: for random formulas F and random concrete inputs (a, b),
// the CNF encoding of F ∧ a = A ∧ b = B is satisfiable exactly when the
// structural evaluator says F(A, B) holds.
func TestBlastAgainstEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	widths := []uint{1, 7, 8, 13, 32, 64}
	for iter := 0; iter < 300; iter++ {
		w := widths[rng.Intn(len(widths))]
		f := randomBool(rng, w, 3)
		av := rng.Uint64() & maskOf(w)
		bv := rng.Uint64() & maskOf(w)

		assign := expr.NewAssignment()
		assign.BV["a"], assign.BV["b"] = av, bv
		want := assign.EvalBool(f)

		s := sat.New(int64(iter))
		bl := New(s)
		bl.Assert(f)
		bl.Assert(expr.Eq(expr.NewVar("a", w), expr.NewConst(av, w)))
		bl.Assert(expr.Eq(expr.NewVar("b", w), expr.NewConst(bv, w)))
		got := s.Solve() == sat.Sat
		if got != want {
			t.Fatalf("iter %d (w=%d): blast=%v eval=%v for %s with a=%#x b=%#x",
				iter, w, got, want, f, av, bv)
		}
	}
}

// TestBlastModelsEvaluateTrue: every model the solver produces for a random
// formula must satisfy the formula under the structural evaluator.
func TestBlastModelsEvaluateTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for iter := 0; iter < 200; iter++ {
		w := []uint{4, 8, 16, 64}[rng.Intn(4)]
		f := randomBool(rng, w, 3)
		s := sat.New(int64(iter))
		bl := New(s)
		bl.Assert(f)
		if s.Solve() != sat.Sat {
			continue // genuinely unsat formulas are fine
		}
		assign := expr.NewAssignment()
		assign.BV["a"] = bl.VarValue("a")
		assign.BV["b"] = bl.VarValue("b")
		if !assign.EvalBool(f) {
			t.Fatalf("iter %d: model a=%#x b=%#x does not satisfy %s",
				iter, assign.BV["a"], assign.BV["b"], f)
		}
	}
}

func maskOf(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func TestVariableWidthConsistency(t *testing.T) {
	s := sat.New(1)
	b := New(s)
	b.VarBits("x", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	b.VarBits("x", 16)
}

func TestBoolVars(t *testing.T) {
	p := expr.NewBoolVar("p")
	q := expr.NewBoolVar("q")
	s := sat.New(1)
	b := New(s)
	b.Assert(expr.AndB(expr.OrB(p, q), expr.NotB(p)))
	if s.Solve() != sat.Sat {
		t.Fatal("expected sat")
	}
	if b.BoolVarValue("p") || !b.BoolVarValue("q") {
		t.Fatalf("p=%v q=%v", b.BoolVarValue("p"), b.BoolVarValue("q"))
	}
}

func TestSharedSubtreesEncodedOnce(t *testing.T) {
	// The same subtree asserted twice must not duplicate CNF variables.
	x := expr.NewVar("x", 32)
	shared := expr.Add(x, expr.NewConst(1, 32))
	s := sat.New(1)
	b := New(s)
	b.Assert(expr.Ult(shared, expr.NewConst(100, 32)))
	n1 := s.NumVars()
	b.Assert(expr.Ult(shared, expr.NewConst(50, 32))) // reuses shared + x
	n2 := s.NumVars()
	// Only the new comparator's gates should be added, far fewer than a
	// fresh adder encoding.
	if n2-n1 > 200 {
		t.Errorf("no structural sharing: %d new vars", n2-n1)
	}
}

func TestBarrelShifterSymbolicAmount(t *testing.T) {
	// x << s = 0x100 with both x and s symbolic.
	x := expr.NewVar("x", 16)
	sh := expr.NewVar("s", 16)
	s := sat.New(1)
	b := New(s)
	b.Assert(expr.Eq(expr.Shl(x, sh), expr.NewConst(0x100, 16)))
	b.Assert(expr.Ult(expr.NewConst(0, 16), sh)) // nonzero shift
	if s.Solve() != sat.Sat {
		t.Fatal("expected sat")
	}
	xv, sv := b.VarValue("x"), b.VarValue("s")
	if sv == 0 || sv >= 16 || (xv<<sv)&0xffff != 0x100 {
		t.Fatalf("bad model x=%#x s=%d", xv, sv)
	}
}

func TestOverShift(t *testing.T) {
	// Shifting by >= width must yield zero (logical) on the CNF side too.
	x := expr.NewVar("x", 8)
	s := sat.New(1)
	b := New(s)
	b.Assert(expr.Eq(x, expr.NewConst(0xff, 8)))
	b.Assert(expr.Neq(expr.Shl(x, expr.NewConst(9, 8)), expr.NewConst(0, 8)))
	if s.Solve() != sat.Unsat {
		t.Fatal("overshift must be zero")
	}
}
