// Package bitblast translates bitvector and boolean expressions from
// internal/expr into CNF over an internal/sat solver, using Tseitin
// encoding with structural caching and constant propagation at the literal
// level.
//
// Memory expressions are not handled here; internal/smt eliminates memory
// reads (read-over-write rewriting plus Ackermann expansion) before blasting.
package bitblast

import (
	"fmt"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

// Blaster incrementally encodes expressions into a SAT solver. Identical
// subtrees are encoded once: every expression entering the blaster is first
// hash-consed through an expr.Interner, so the pointer-keyed CNF caches hit
// for structurally identical terms even when they were built independently
// (e.g. the same observation address renamed once per incremental query).
type Blaster struct {
	// S is the backing solver — a single sat.Solver or a sat.Portfolio; the
	// blaster only needs the Engine surface (NewVar/AddClause/BoostVar/Value).
	S sat.Engine

	t, f sat.Lit // constant true / false literals

	intern    *expr.Interner
	bvCache   map[expr.BVExpr][]sat.Lit
	boolCache map[expr.BoolExpr]sat.Lit
	varBits   map[string][]sat.Lit
	boolVars  map[string]sat.Lit

	// parent, when set, is a frozen blaster whose caches serve as read-only
	// fallback layers (see CloneOnto). Cache writes always go to this
	// blaster's own maps.
	parent *Blaster

	stats CacheStats
}

// CacheStats counts hash-consed CNF cache traffic: a hit means a subtree was
// asserted again (e.g. the same observation address renamed per incremental
// query) and cost nothing; a miss means fresh Tseitin clauses were emitted.
// The hit ratio is the payoff of the shared-prefix solver reuse and is
// surfaced per query by the telemetry layer via smt.Solver.Stats.
type CacheStats struct {
	BVHits, BVMisses     int64
	BoolHits, BoolMisses int64
}

// Hits is the total cache-hit count across both expression sorts.
func (c CacheStats) Hits() int64 { return c.BVHits + c.BoolHits }

// Misses is the total cache-miss count across both expression sorts.
func (c CacheStats) Misses() int64 { return c.BVMisses + c.BoolMisses }

// CacheStats snapshots the blast-cache counters.
func (b *Blaster) CacheStats() CacheStats { return b.stats }

// New returns a Blaster over solver s.
func New(s sat.Engine) *Blaster {
	b := &Blaster{
		S:         s,
		intern:    expr.NewInterner(),
		bvCache:   make(map[expr.BVExpr][]sat.Lit),
		boolCache: make(map[expr.BoolExpr]sat.Lit),
		varBits:   make(map[string][]sat.Lit),
		boolVars:  make(map[string]sat.Lit),
	}
	b.t = b.newLit()
	b.f = b.t.Neg()
	s.AddClause(b.t)
	return b
}

// CloneOnto returns a blaster over eng that reuses this blaster's encoding
// work: the interner and both CNF caches become read-only parent layers, so
// everything already blasted here resolves to the same literals without
// copying the (large) maps. eng must hold the same variable space as this
// blaster's solver — in practice a sat.Solver.Clone of it, or a portfolio
// built from such clones. After the first CloneOnto this blaster must stay
// frozen (no further Assert/BV/Bool calls); concurrent clones of one frozen
// blaster are then safe, which is what the campaign shape cache relies on.
//
// Cache statistics start at zero in the clone: hits against the parent
// layers count as hits of the clone.
func (b *Blaster) CloneOnto(eng sat.Engine) *Blaster {
	nb := &Blaster{
		S:         eng,
		t:         b.t,
		f:         b.f,
		intern:    b.intern.NewChild(),
		bvCache:   make(map[expr.BVExpr][]sat.Lit),
		boolCache: make(map[expr.BoolExpr]sat.Lit),
		varBits:   make(map[string][]sat.Lit, len(b.varBits)),
		boolVars:  make(map[string]sat.Lit, len(b.boolVars)),
		parent:    b,
	}
	// Variable registries are small (one entry per named variable) and are
	// consulted on hot read paths; copy them flat. The bit slices themselves
	// are immutable and shared.
	for p := b; p != nil; p = p.parent {
		for name, bits := range p.varBits {
			if _, ok := nb.varBits[name]; !ok {
				nb.varBits[name] = bits
			}
		}
		for name, l := range p.boolVars {
			if _, ok := nb.boolVars[name]; !ok {
				nb.boolVars[name] = l
			}
		}
	}
	return nb
}

func (b *Blaster) newLit() sat.Lit { return sat.MkLit(b.S.NewVar(), false) }

func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.t
	}
	return b.f
}

func (b *Blaster) isTrue(l sat.Lit) bool  { return l == b.t }
func (b *Blaster) isFalse(l sat.Lit) bool { return l == b.f }

// ---------------------------------------------------------------------------
// Gates
// ---------------------------------------------------------------------------

func (b *Blaster) and2(x, y sat.Lit) sat.Lit {
	switch {
	case b.isFalse(x) || b.isFalse(y) || x == y.Neg():
		return b.f
	case b.isTrue(x):
		return y
	case b.isTrue(y), x == y:
		return x
	}
	c := b.newLit()
	b.S.AddClause(c.Neg(), x)
	b.S.AddClause(c.Neg(), y)
	b.S.AddClause(c, x.Neg(), y.Neg())
	return c
}

func (b *Blaster) or2(x, y sat.Lit) sat.Lit {
	return b.and2(x.Neg(), y.Neg()).Neg()
}

func (b *Blaster) xor2(x, y sat.Lit) sat.Lit {
	switch {
	case b.isFalse(x):
		return y
	case b.isFalse(y):
		return x
	case b.isTrue(x):
		return y.Neg()
	case b.isTrue(y):
		return x.Neg()
	case x == y:
		return b.f
	case x == y.Neg():
		return b.t
	}
	c := b.newLit()
	b.S.AddClause(c.Neg(), x, y)
	b.S.AddClause(c.Neg(), x.Neg(), y.Neg())
	b.S.AddClause(c, x, y.Neg())
	b.S.AddClause(c, x.Neg(), y)
	return c
}

// mux returns sel ? x : y.
func (b *Blaster) mux(sel, x, y sat.Lit) sat.Lit {
	switch {
	case b.isTrue(sel):
		return x
	case b.isFalse(sel):
		return y
	case x == y:
		return x
	}
	if b.isTrue(x) {
		return b.or2(sel, y)
	}
	if b.isFalse(x) {
		return b.and2(sel.Neg(), y)
	}
	if b.isTrue(y) {
		return b.or2(sel.Neg(), x)
	}
	if b.isFalse(y) {
		return b.and2(sel, x)
	}
	c := b.newLit()
	b.S.AddClause(c.Neg(), sel.Neg(), x)
	b.S.AddClause(c, sel.Neg(), x.Neg())
	b.S.AddClause(c.Neg(), sel, y)
	b.S.AddClause(c, sel, y.Neg())
	return c
}

// maj3 returns the majority of x, y, z.
func (b *Blaster) maj3(x, y, z sat.Lit) sat.Lit {
	return b.or2(b.and2(x, y), b.or2(b.and2(x, z), b.and2(y, z)))
}

func (b *Blaster) xor3(x, y, z sat.Lit) sat.Lit {
	return b.xor2(b.xor2(x, y), z)
}

func (b *Blaster) andN(ls []sat.Lit) sat.Lit {
	acc := b.t
	for _, l := range ls {
		acc = b.and2(acc, l)
	}
	return acc
}

func (b *Blaster) orN(ls []sat.Lit) sat.Lit {
	acc := b.f
	for _, l := range ls {
		acc = b.or2(acc, l)
	}
	return acc
}

// ---------------------------------------------------------------------------
// Bitvectors
// ---------------------------------------------------------------------------

// VarBits returns (allocating if needed) the literal vector of the named
// bitvector variable, LSB first.
func (b *Blaster) VarBits(name string, w uint) []sat.Lit {
	if bits, ok := b.varBits[name]; ok {
		if uint(len(bits)) != w {
			panic(fmt.Sprintf("bitblast: variable %s used at widths %d and %d", name, len(bits), w))
		}
		return bits
	}
	bits := make([]sat.Lit, w)
	for i := range bits {
		bits[i] = b.newLit()
		// Boost input bits so they are decided early with the zero default
		// phase (Z3-like minimal models), high-order bits first: CDCL model
		// enumeration then churns the low-order bits, keeping successive
		// models of underconstrained formulas numerically close — the
		// "too similar to invalidate the model" behaviour of unguided
		// search that motivates observation refinement.
		b.S.BoostVar(bits[i].Var(), 0.5+float64(i)*0.05)
	}
	b.varBits[name] = bits
	return bits
}

// HasVar reports whether the named bitvector variable was encoded.
func (b *Blaster) HasVar(name string) bool {
	_, ok := b.varBits[name]
	return ok
}

// VarValue reads the value of the named variable from the solver's current
// model. It returns 0 for variables that never appeared in any asserted
// formula (they are unconstrained).
func (b *Blaster) VarValue(name string) uint64 {
	bits, ok := b.varBits[name]
	if !ok {
		return 0
	}
	return b.litsValue(bits)
}

// Value reads the model word of a blasted literal vector (as returned by
// BV), LSB first. Callers cross-checking the circuit against direct
// evaluation (internal/oracle) use it to observe arbitrary encoded
// subexpressions, not just named variables.
func (b *Blaster) Value(bits []sat.Lit) uint64 { return b.litsValue(bits) }

func (b *Blaster) litsValue(bits []sat.Lit) uint64 {
	var v uint64
	for i, l := range bits {
		lv := b.S.Value(l.Var())
		if l.Sign() {
			lv = !lv
		}
		if lv {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BV encodes a bitvector expression, returning its literal vector LSB first.
func (b *Blaster) BV(e expr.BVExpr) []sat.Lit {
	e = b.intern.Intern(e).(expr.BVExpr)
	for p := b; p != nil; p = p.parent {
		if bits, ok := p.bvCache[e]; ok {
			b.stats.BVHits++
			return bits
		}
	}
	b.stats.BVMisses++
	bits := b.bv(e)
	b.bvCache[e] = bits
	return bits
}

func (b *Blaster) bv(e expr.BVExpr) []sat.Lit {
	switch v := e.(type) {
	case *expr.Const:
		bits := make([]sat.Lit, v.W)
		for i := range bits {
			bits[i] = b.constLit(v.V>>uint(i)&1 == 1)
		}
		return bits
	case *expr.Var:
		return b.VarBits(v.Name, v.W)
	case *expr.Bin:
		x, y := b.BV(v.X), b.BV(v.Y)
		switch v.Op {
		case expr.OpAdd:
			s, _ := b.adder(x, y, b.f)
			return s
		case expr.OpSub:
			s, _ := b.adder(x, b.notBits(y), b.t)
			return s
		case expr.OpMul:
			return b.multiplier(x, y)
		case expr.OpAnd:
			return b.mapBits2(x, y, b.and2)
		case expr.OpOr:
			return b.mapBits2(x, y, b.or2)
		case expr.OpXor:
			return b.mapBits2(x, y, b.xor2)
		case expr.OpShl:
			return b.shifter(x, y, shiftLeft, b.f)
		case expr.OpLshr:
			return b.shifter(x, y, shiftRight, b.f)
		case expr.OpAshr:
			return b.shifter(x, y, shiftRight, x[len(x)-1])
		}
	case *expr.Un:
		x := b.BV(v.X)
		if v.Op == expr.OpNot {
			return b.notBits(x)
		}
		// Two's-complement negation: ~x + 1.
		s, _ := b.adder(b.notBits(x), b.constBits(0, uint(len(x))), b.t)
		return s
	case *expr.Extract:
		x := b.BV(v.X)
		out := make([]sat.Lit, v.Hi-v.Lo+1)
		copy(out, x[v.Lo:v.Hi+1])
		return out
	case *expr.Ext:
		x := b.BV(v.X)
		out := make([]sat.Lit, v.W)
		copy(out, x)
		fill := b.f
		if v.Kind == expr.SignExt {
			fill = x[len(x)-1]
		}
		for i := len(x); i < int(v.W); i++ {
			out[i] = fill
		}
		return out
	case *expr.Ite:
		c := b.Bool(v.Cond)
		x, y := b.BV(v.Then), b.BV(v.Else)
		out := make([]sat.Lit, len(x))
		for i := range out {
			out[i] = b.mux(c, x[i], y[i])
		}
		return out
	case *expr.Read:
		panic("bitblast: memory read must be eliminated before blasting (see internal/smt)")
	}
	panic(fmt.Sprintf("bitblast: BV on %T", e))
}

func (b *Blaster) constBits(v uint64, w uint) []sat.Lit {
	bits := make([]sat.Lit, w)
	for i := range bits {
		bits[i] = b.constLit(v>>uint(i)&1 == 1)
	}
	return bits
}

func (b *Blaster) notBits(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Neg()
	}
	return out
}

func (b *Blaster) mapBits2(x, y []sat.Lit, f func(a, c sat.Lit) sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i := range out {
		out[i] = f(x[i], y[i])
	}
	return out
}

// adder is a ripple-carry adder with carry-in; it returns sum and carry-out.
func (b *Blaster) adder(x, y []sat.Lit, cin sat.Lit) ([]sat.Lit, sat.Lit) {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i] = b.xor3(x[i], y[i], c)
		c = b.maj3(x[i], y[i], c)
	}
	return out, c
}

// multiplier is a shift-add multiplier (modular, same width as operands).
func (b *Blaster) multiplier(x, y []sat.Lit) []sat.Lit {
	w := len(x)
	acc := b.constBits(0, uint(w))
	for i := 0; i < w; i++ {
		// addend = (x << i) & y[i]
		addend := make([]sat.Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				addend[j] = b.f
			} else {
				addend[j] = b.and2(x[j-i], y[i])
			}
		}
		acc, _ = b.adder(acc, addend, b.f)
	}
	return acc
}

type shiftDir int

const (
	shiftLeft shiftDir = iota
	shiftRight
)

// shifter is a logarithmic barrel shifter. fill is the bit shifted in
// (b.f for logical shifts, the sign bit for arithmetic right shifts).
func (b *Blaster) shifter(x, amt []sat.Lit, dir shiftDir, fill sat.Lit) []sat.Lit {
	w := len(x)
	// Number of stages: ceil(log2(w)).
	stages := 0
	for 1<<uint(stages) < w {
		stages++
	}
	cur := make([]sat.Lit, w)
	copy(cur, x)
	for s := 0; s < stages && s < len(amt); s++ {
		sh := 1 << uint(s)
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			if dir == shiftLeft {
				if i-sh >= 0 {
					shifted = cur[i-sh]
				} else {
					shifted = fill
				}
			} else {
				if i+sh < w {
					shifted = cur[i+sh]
				} else {
					shifted = fill
				}
			}
			next[i] = b.mux(amt[s], shifted, cur[i])
		}
		cur = next
	}
	// Any set bit in amt beyond the stage range means "shift out everything".
	if len(amt) > stages {
		big := b.orN(amt[stages:])
		for i := range cur {
			cur[i] = b.mux(big, fill, cur[i])
		}
	}
	return cur
}

// ultBits returns the borrow-out of x - y, i.e. x <u y.
func (b *Blaster) ultBits(x, y []sat.Lit) sat.Lit {
	borrow := b.f
	for i := range x {
		borrow = b.maj3(x[i].Neg(), y[i], borrow)
	}
	return borrow
}

func (b *Blaster) eqBits(x, y []sat.Lit) sat.Lit {
	acc := b.t
	for i := range x {
		acc = b.and2(acc, b.xor2(x[i], y[i]).Neg())
	}
	return acc
}

// ---------------------------------------------------------------------------
// Booleans
// ---------------------------------------------------------------------------

// Bool encodes a boolean expression, returning a single literal equivalent
// to it.
func (b *Blaster) Bool(e expr.BoolExpr) sat.Lit {
	e = b.intern.Intern(e).(expr.BoolExpr)
	for p := b; p != nil; p = p.parent {
		if l, ok := p.boolCache[e]; ok {
			b.stats.BoolHits++
			return l
		}
	}
	b.stats.BoolMisses++
	l := b.boolE(e)
	b.boolCache[e] = l
	return l
}

func (b *Blaster) boolE(e expr.BoolExpr) sat.Lit {
	switch v := e.(type) {
	case *expr.BoolConst:
		return b.constLit(v.B)
	case *expr.BoolVar:
		if l, ok := b.boolVars[v.Name]; ok {
			return l
		}
		l := b.newLit()
		b.boolVars[v.Name] = l
		return l
	case *expr.NotBExpr:
		return b.Bool(v.X).Neg()
	case *expr.Nary:
		ls := make([]sat.Lit, len(v.Args))
		for i, a := range v.Args {
			ls[i] = b.Bool(a)
		}
		if v.Op == expr.OpAndB {
			return b.andN(ls)
		}
		return b.orN(ls)
	case *expr.Cmp:
		x, y := b.BV(v.X), b.BV(v.Y)
		switch v.Op {
		case expr.OpEq:
			return b.eqBits(x, y)
		case expr.OpUlt:
			return b.ultBits(x, y)
		case expr.OpUle:
			return b.ultBits(y, x).Neg()
		case expr.OpSlt:
			return b.sltBits(x, y)
		case expr.OpSle:
			return b.sltBits(y, x).Neg()
		}
	}
	panic(fmt.Sprintf("bitblast: Bool on %T", e))
}

func (b *Blaster) sltBits(x, y []sat.Lit) sat.Lit {
	sx, sy := x[len(x)-1], y[len(y)-1]
	diff := b.xor2(sx, sy)
	// Different signs: x < y iff x is negative. Same signs: unsigned compare.
	return b.mux(diff, sx, b.ultBits(x, y))
}

// BoolVarValue reads the value of a named boolean variable from the model.
func (b *Blaster) BoolVarValue(name string) bool {
	l, ok := b.boolVars[name]
	if !ok {
		return false
	}
	v := b.S.Value(l.Var())
	if l.Sign() {
		v = !v
	}
	return v
}

// Assert constrains e to be true. Top-level conjunctions are split to keep
// the CNF small.
func (b *Blaster) Assert(e expr.BoolExpr) {
	if n, ok := e.(*expr.Nary); ok && n.Op == expr.OpAndB {
		for _, a := range n.Args {
			b.Assert(a)
		}
		return
	}
	b.S.AddClause(b.Bool(e))
}

// AssertImplied constrains act ⇒ e: each top-level conjunct of e becomes a
// clause guarded by the negated activation literal, so the constraint is
// active only while act is assumed (or asserted) true. This is the CNF
// backbone of assumption-scoped assertions in internal/smt.
func (b *Blaster) AssertImplied(act sat.Lit, e expr.BoolExpr) {
	if n, ok := e.(*expr.Nary); ok && n.Op == expr.OpAndB {
		for _, a := range n.Args {
			b.AssertImplied(act, a)
		}
		return
	}
	b.S.AddClause(act.Neg(), b.Bool(e))
}
