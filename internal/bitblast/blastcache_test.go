package bitblast

import (
	"testing"

	"scamv/internal/expr"
	"scamv/internal/sat"
)

// TestBlastCacheAcrossAsserts checks the structural blast cache: asserting a
// second, independently built copy of a formula must not grow the CNF — the
// interner maps it onto the first copy's literals.
func TestBlastCacheAcrossAsserts(t *testing.T) {
	s := sat.New(1)
	b := New(s)
	build := func() expr.BoolExpr {
		x := expr.NewVar("x", 64)
		y := expr.NewVar("y", 64)
		return expr.Eq(expr.Add(expr.Mul(x, y), x), expr.NewConst(99, 64))
	}
	b.Assert(build())
	vars := s.NumVars()
	b.Assert(build())
	if s.NumVars() != vars {
		t.Fatalf("re-asserting an identical formula added %d variables", s.NumVars()-vars)
	}
}

// TestBlastCacheSharesSubterms: a new formula reusing an already-blasted
// subterm only pays for its new part.
func TestBlastCacheSharesSubterms(t *testing.T) {
	s := sat.New(1)
	b := New(s)
	x := expr.NewVar("x", 64)
	y := expr.NewVar("y", 64)
	b.Assert(expr.Ult(expr.Mul(x, y), expr.NewConst(1000, 64)))
	grown := s.NumVars()

	// Fresh structural copy of the multiply inside a new comparison: the
	// multiplier circuit (the expensive part) must be reused.
	s2 := sat.New(1)
	b2 := New(s2)
	b2.Assert(expr.Ult(expr.Mul(expr.NewVar("x", 64), expr.NewVar("y", 64)), expr.NewConst(1000, 64)))
	b2.Assert(expr.Eq(expr.Mul(expr.NewVar("x", 64), expr.NewVar("y", 64)), expr.NewConst(42, 64)))
	fresh := sat.New(1)
	bf := New(fresh)
	bf.Assert(expr.Eq(expr.Mul(expr.NewVar("x", 64), expr.NewVar("y", 64)), expr.NewConst(42, 64)))

	added := s2.NumVars() - grown
	if added >= fresh.NumVars() {
		t.Fatalf("shared-subterm assert added %d vars, no better than a fresh blast (%d)",
			added, fresh.NumVars())
	}
}

// TestAssertImpliedRelaxed: clauses from AssertImplied only bind while the
// activation literal is assumed.
func TestAssertImpliedRelaxed(t *testing.T) {
	s := sat.New(1)
	b := New(s)
	x := expr.NewVar("x", 4)
	b.Assert(expr.Ult(x, expr.NewConst(8, 4)))
	act := sat.MkLit(s.NewVar(), false)
	b.AssertImplied(act, expr.AndB(
		expr.Eq(x, expr.NewConst(5, 4)),
		expr.Ult(expr.NewConst(1, 4), x)))
	if s.Solve() != sat.Sat {
		t.Fatal("relaxed formula must stay sat")
	}
	if s.Solve(act) != sat.Sat {
		t.Fatal("activated formula is satisfiable")
	}
	if b.VarValue("x") != 5 {
		t.Fatalf("under activation x=%d, want 5", b.VarValue("x"))
	}
	if s.Solve(act.Neg()) != sat.Sat {
		t.Fatal("deactivated formula must stay sat")
	}
}
