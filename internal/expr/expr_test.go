package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstNormalization(t *testing.T) {
	c := NewConst(0x1ff, 8)
	if c.V != 0xff {
		t.Fatalf("expected truncation to 0xff, got %#x", c.V)
	}
	if c.Width() != 8 {
		t.Fatalf("width = %d", c.Width())
	}
}

func TestConstantFolding(t *testing.T) {
	x := C64(10)
	y := C64(3)
	cases := []struct {
		got  BVExpr
		want uint64
	}{
		{Add(x, y), 13},
		{Sub(x, y), 7},
		{Mul(x, y), 30},
		{And(x, y), 2},
		{Or(x, y), 11},
		{Xor(x, y), 9},
		{Shl(x, y), 80},
		{Lshr(x, y), 1},
		{Neg(x), ^uint64(10) + 1},
		{Not(x), ^uint64(10)},
	}
	for i, c := range cases {
		k, ok := c.got.(*Const)
		if !ok {
			t.Fatalf("case %d: not folded: %s", i, c.got)
		}
		if k.V != c.want {
			t.Fatalf("case %d: got %#x want %#x", i, k.V, c.want)
		}
	}
}

func TestIdentityFolding(t *testing.T) {
	v := V64("x")
	if Add(v, C64(0)) != v {
		t.Error("x + 0 should fold to x")
	}
	if Sub(v, C64(0)) != v {
		t.Error("x - 0 should fold to x")
	}
	if And(v, C64(^uint64(0))) != v {
		t.Error("x & ~0 should fold to x")
	}
	if k, ok := And(v, C64(0)).(*Const); !ok || k.V != 0 {
		t.Error("x & 0 should fold to 0")
	}
	if Or(C64(0), v) != v {
		t.Error("0 | x should fold to x")
	}
	if Mul(v, C64(1)) != v {
		t.Error("x * 1 should fold to x")
	}
}

func TestAshrConst(t *testing.T) {
	x := NewConst(0x80, 8)
	r := Ashr(x, NewConst(3, 8)).(*Const)
	if r.V != 0xf0 {
		t.Fatalf("ashr sign fill: got %#x want 0xf0", r.V)
	}
	r2 := Ashr(x, NewConst(100, 8)).(*Const)
	if r2.V != 0xff {
		t.Fatalf("ashr overshift negative: got %#x want 0xff", r2.V)
	}
}

func TestSignedComparison(t *testing.T) {
	a := NewConst(0xff, 8) // -1 signed
	b := NewConst(1, 8)
	if Slt(a, b) != True {
		t.Error("-1 <s 1 should be true")
	}
	if Ult(a, b) != False {
		t.Error("0xff <u 1 should be false")
	}
	if Sle(a, a) != True {
		t.Error("x <=s x should be true")
	}
}

func TestBoolSimplification(t *testing.T) {
	x := NewBoolVar("p")
	if AndB(True, x) != x {
		t.Error("true ∧ p should fold to p")
	}
	if AndB(False, x) != False {
		t.Error("false ∧ p should fold to false")
	}
	if OrB(True, x) != True {
		t.Error("true ∨ p should fold to true")
	}
	if NotB(NotB(x)) != x {
		t.Error("double negation should cancel")
	}
	// Nested conjunction flattening.
	y := NewBoolVar("q")
	z := NewBoolVar("r")
	n := AndB(AndB(x, y), z).(*Nary)
	if len(n.Args) != 3 {
		t.Errorf("flattening failed: %s", n)
	}
}

func TestEvalAgainstGo(t *testing.T) {
	// Property: symbolic evaluation of (x op y) matches direct Go arithmetic.
	rng := rand.New(rand.NewSource(7))
	f := func(x, y uint64, opIdx uint8) bool {
		op := BinOp(opIdx % 9)
		a := NewAssignment()
		a.BV["x"] = x
		a.BV["y"] = y
		vx, vy := V64("x"), V64("y")
		e := &Bin{Op: op, X: vx, Y: vy}
		got := a.EvalBV(e)
		want := evalBin(op, x, y, 64)
		return got == want
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMemory(t *testing.T) {
	a := NewAssignment()
	mm := NewMemModel(0)
	mm.Set(0x1000, 42)
	a.Mem["mem"] = mm
	a.BV["p"] = 0x1000

	m := NewMemVar("mem")
	if got := a.EvalBV(NewRead(m, V64("p"))); got != 42 {
		t.Fatalf("read mapped address: got %d", got)
	}
	if got := a.EvalBV(NewRead(m, C64(0x2000))); got != 0 {
		t.Fatalf("read default: got %d", got)
	}
	st := NewStore(m, C64(0x1000), C64(7))
	if got := a.EvalBV(NewRead(st, V64("p"))); got != 7 {
		t.Fatalf("read over write: got %d", got)
	}
	if got := a.EvalBV(NewRead(st, C64(0x1008))); got != 0 {
		t.Fatalf("read past write: got %d", got)
	}
}

func TestRename(t *testing.T) {
	e := Eq(Add(V64("x"), C64(1)), NewRead(NewMemVar("mem"), V64("x")))
	r := RenameBool(e, Suffix("_1"))
	bv := map[string]bool{}
	mv := map[string]bool{}
	Vars(r, bv, nil, mv)
	if !bv["x_1"] || bv["x"] {
		t.Errorf("bv vars after rename: %v", bv)
	}
	if !mv["mem_1"] || mv["mem"] {
		t.Errorf("mem vars after rename: %v", mv)
	}
}

func TestSubst(t *testing.T) {
	e := Add(V64("r0"), V64("r1"))
	sub := map[string]BVExpr{"r0": C64(5), "r1": C64(6)}
	r := SubstBV(e, sub, nil).(*Const)
	if r.V != 11 {
		t.Fatalf("subst+fold: got %d", r.V)
	}
}

func TestExtractExt(t *testing.T) {
	x := C64(0xabcd)
	e := NewExtract(7, 0, x).(*Const)
	if e.V != 0xcd || e.Width() != 8 {
		t.Fatalf("extract: %v", e)
	}
	z := NewExt(ZeroExt, NewConst(0x80, 8), 16).(*Const)
	if z.V != 0x80 {
		t.Fatalf("zext: %#x", z.V)
	}
	sx := NewExt(SignExt, NewConst(0x80, 8), 16).(*Const)
	if sx.V != 0xff80 {
		t.Fatalf("sext: %#x", sx.V)
	}
}

func TestIteFolding(t *testing.T) {
	x, y := C64(1), C64(2)
	if NewIte(True, x, y) != x {
		t.Error("ite(true) should fold")
	}
	if NewIte(False, x, y) != y {
		t.Error("ite(false) should fold")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	Add(C64(1), NewConst(1, 8))
}

func TestCanonicalization(t *testing.T) {
	x := V64("x")
	// Constant chains associate: (x + 1) + 2 == x + 3 structurally.
	a := Add(Add(x, C64(1)), C64(2))
	b := Add(x, C64(3))
	if a.String() != b.String() {
		t.Errorf("add chains do not normalize: %s vs %s", a, b)
	}
	// Subtraction folds into the same chain: (x - 1) + 2 == x + 1.
	if got := Add(Sub(x, C64(1)), C64(2)).String(); got != Add(x, C64(1)).String() {
		t.Errorf("sub-add mix: %s", got)
	}
	// Constants move right: 5 + x == x + 5.
	if Add(C64(5), x).String() != Add(x, C64(5)).String() {
		t.Error("const not commuted right")
	}
	// Shift chains combine.
	if got := Lshr(Lshr(x, C64(6)), C64(2)).String(); got != Lshr(x, C64(8)).String() {
		t.Errorf("lshr chain: %s", got)
	}
	// Mask chains combine.
	if got := And(And(x, C64(0xff)), C64(0x0f)).String(); got != And(x, C64(0x0f)).String() {
		t.Errorf("and chain: %s", got)
	}
	// x ^ x and x - x vanish.
	if k, ok := Xor(x, x).(*Const); !ok || k.V != 0 {
		t.Error("x^x should fold to 0")
	}
	if k, ok := Sub(x, x).(*Const); !ok || k.V != 0 {
		t.Error("x-x should fold to 0")
	}
	// Solved equality: x + 10 = 17 ⇒ x = 7.
	eq := Eq(Add(x, C64(10)), C64(17))
	if eq.String() != Eq(x, C64(7)).String() {
		t.Errorf("eq not solved: %s", eq)
	}
	// Negated comparisons dualize.
	if NotB(Ult(x, C64(5))).String() != Ule(C64(5), x).String() {
		t.Errorf("not-ult dual: %s", NotB(Ult(x, C64(5))))
	}
}

// TestCanonicalizationPreservesSemantics: random expressions built two ways
// must evaluate identically under random inputs.
func TestCanonicalizationPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(xv uint64, c1, c2 uint16) bool {
		a := NewAssignment()
		a.BV["x"] = xv
		x := V64("x")
		pairs := [][2]BVExpr{
			{Add(Add(x, C64(uint64(c1))), C64(uint64(c2))), nil},
			{Sub(x, C64(uint64(c1))), nil},
			{Add(Sub(x, C64(uint64(c1))), C64(uint64(c2))), nil},
			{And(And(x, C64(uint64(c1))), C64(uint64(c2))), nil},
			{Lshr(Lshr(x, C64(uint64(c1%32))), C64(uint64(c2%31))), nil},
		}
		want := []uint64{
			xv + uint64(c1) + uint64(c2),
			xv - uint64(c1),
			xv - uint64(c1) + uint64(c2),
			xv & uint64(c1) & uint64(c2),
			shrTwice(xv, uint64(c1%32), uint64(c2%31)),
		}
		for i, p := range pairs {
			if a.EvalBV(p[0]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func shrTwice(v, s1, s2 uint64) uint64 {
	v >>= s1
	v >>= s2
	return v
}

// TestNotBDualsAgree: the dual rewriting of negated comparisons preserves
// truth for all operand values, including the signed corner cases.
func TestNotBDualsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	mk := []func(x, y BVExpr) BoolExpr{Ult, Ule, Slt, Sle}
	f := func(xv, yv uint64, op uint8) bool {
		a := NewAssignment()
		a.BV["x"], a.BV["y"] = xv, yv
		cmp := mk[op%4](V64("x"), V64("y"))
		return a.EvalBool(NotB(cmp)) == !a.EvalBool(cmp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
