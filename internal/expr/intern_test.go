package expr

import (
	"math/rand"
	"testing"
)

func TestInternIdentity(t *testing.T) {
	in := NewInterner()
	build := func() BVExpr {
		x := NewVar("x", 64)
		y := NewVar("y", 64)
		return Add(Mul(x, y), Shl(x, NewConst(3, 64)))
	}
	a := in.Intern(build())
	b := in.Intern(build())
	if a != b {
		t.Fatal("structurally equal trees must intern to one pointer")
	}
	c := in.Intern(Add(NewVar("x", 64), NewVar("z", 64)))
	if c == a {
		t.Fatal("different trees must stay distinct")
	}
	// Idempotence: interning a canonical node returns it unchanged.
	if in.Intern(a) != a {
		t.Fatal("intern must be idempotent")
	}
}

func TestInternSharesSubterms(t *testing.T) {
	in := NewInterner()
	x := NewVar("x", 64)
	sum1 := in.Intern(Add(x, NewConst(1, 64))).(BVExpr)
	// A structurally equal subterm inside a larger tree must resolve to the
	// same canonical node.
	whole := in.Intern(Mul(Add(NewVar("x", 64), NewConst(1, 64)), NewConst(7, 64)))
	bin, ok := whole.(*Bin)
	if !ok {
		t.Fatalf("expected Bin, got %T", whole)
	}
	if bin.X != sum1 {
		t.Fatal("subterm not shared with earlier interned term")
	}
}

func TestInternBoolAndMemory(t *testing.T) {
	in := NewInterner()
	mem := NewMemVar("MEM")
	addr := NewVar("a", 64)
	r1 := in.Intern(NewRead(NewStore(mem, addr, NewConst(5, 64)), NewVar("b", 64)))
	r2 := in.Intern(NewRead(NewStore(NewMemVar("MEM"), NewVar("a", 64), NewConst(5, 64)), NewVar("b", 64)))
	if r1 != r2 {
		t.Fatal("reads over equal stores must intern together")
	}
	c1 := in.Intern(AndB(Eq(addr, NewConst(1, 64)), NotB(Ult(addr, NewConst(9, 64)))))
	c2 := in.Intern(AndB(Eq(NewVar("a", 64), NewConst(1, 64)), NotB(Ult(NewVar("a", 64), NewConst(9, 64)))))
	if c1 != c2 {
		t.Fatal("boolean trees must intern together")
	}
}

// TestInternPreservesSemantics evaluates random expressions before and after
// interning under random assignments.
func TestInternPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	in := NewInterner()
	vars := []BVExpr{NewVar("x", 64), NewVar("y", 64), NewVar("z", 64)}
	var gen func(depth int) BVExpr
	gen = func(depth int) BVExpr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return vars[rng.Intn(len(vars))]
			}
			return NewConst(rng.Uint64()%1024, 64)
		}
		x, y := gen(depth-1), gen(depth-1)
		switch rng.Intn(6) {
		case 0:
			return Add(x, y)
		case 1:
			return Sub(x, y)
		case 2:
			return Mul(x, y)
		case 3:
			return And(x, y)
		case 4:
			return Xor(x, y)
		default:
			return NewIte(Ult(x, y), x, y)
		}
	}
	for iter := 0; iter < 100; iter++ {
		e := gen(4)
		canon := in.Intern(e).(BVExpr)
		a := NewAssignment()
		a.BV["x"] = rng.Uint64()
		a.BV["y"] = rng.Uint64()
		a.BV["z"] = rng.Uint64()
		if a.EvalBV(e) != a.EvalBV(canon) {
			t.Fatalf("iter %d: interned expression evaluates differently", iter)
		}
	}
}
