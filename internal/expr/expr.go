// Package expr implements the symbolic expression language shared by the
// BIR intermediate representation, the symbolic execution engine, the
// relation synthesizer and the SMT solver.
//
// The language has three sorts:
//
//   - bitvectors of width 1..64 (registers, addresses, observation values),
//   - booleans (path conditions, branch guards),
//   - memories (total maps from 64-bit addresses to 64-bit words).
//
// Expressions are immutable trees built with smart constructors that perform
// light constant folding; structural sharing arises naturally because
// subtrees are reused by pointer.
package expr

import (
	"fmt"
	"strings"
)

// Sort identifies the sort of an expression.
type Sort uint8

// The three sorts of the term language.
const (
	SortBV Sort = iota
	SortBool
	SortMem
)

func (s Sort) String() string {
	switch s {
	case SortBV:
		return "bv"
	case SortBool:
		return "bool"
	case SortMem:
		return "mem"
	}
	return fmt.Sprintf("sort(%d)", uint8(s))
}

// Expr is a node of the symbolic expression tree.
type Expr interface {
	Sort() Sort
	String() string
}

// BVExpr is implemented by bitvector-sorted expressions and reports their
// width in bits.
type BVExpr interface {
	Expr
	Width() uint
}

// mask returns the w-bit mask.
func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// ---------------------------------------------------------------------------
// Bitvector leaves
// ---------------------------------------------------------------------------

// Const is a bitvector constant.
type Const struct {
	W uint
	V uint64 // always normalized to W bits
}

// NewConst builds a bitvector constant of width w, truncating v to w bits.
func NewConst(v uint64, w uint) *Const {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("expr: invalid bitvector width %d", w))
	}
	return &Const{W: w, V: v & mask(w)}
}

// C64 builds a 64-bit constant.
func C64(v uint64) *Const { return NewConst(v, 64) }

func (c *Const) Sort() Sort  { return SortBV }
func (c *Const) Width() uint { return c.W }
func (c *Const) String() string {
	return fmt.Sprintf("0x%x:%d", c.V, c.W)
}

// Var is a bitvector variable (a register or an input).
type Var struct {
	Name string
	W    uint
}

// NewVar builds a bitvector variable.
func NewVar(name string, w uint) *Var {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("expr: invalid bitvector width %d", w))
	}
	return &Var{Name: name, W: w}
}

// V64 builds a 64-bit variable.
func V64(name string) *Var { return NewVar(name, 64) }

func (v *Var) Sort() Sort     { return SortBV }
func (v *Var) Width() uint    { return v.W }
func (v *Var) String() string { return v.Name }

// ---------------------------------------------------------------------------
// Bitvector operators
// ---------------------------------------------------------------------------

// BinOp enumerates binary bitvector operators.
type BinOp uint8

// Binary bitvector operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl  // logical shift left
	OpLshr // logical shift right
	OpAshr // arithmetic shift right
)

var binOpNames = [...]string{"add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"}

func (op BinOp) String() string { return binOpNames[op] }

// Bin is a binary bitvector operation; both operands have the same width.
type Bin struct {
	Op   BinOp
	X, Y BVExpr
}

func (b *Bin) Sort() Sort  { return SortBV }
func (b *Bin) Width() uint { return b.X.Width() }
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Op, b.X, b.Y)
}

func checkSameWidth(x, y BVExpr) {
	if x.Width() != y.Width() {
		panic(fmt.Sprintf("expr: width mismatch %d vs %d in %s / %s", x.Width(), y.Width(), x, y))
	}
}

func evalBin(op BinOp, x, y uint64, w uint) uint64 {
	m := mask(w)
	switch op {
	case OpAdd:
		return (x + y) & m
	case OpSub:
		return (x - y) & m
	case OpMul:
		return (x * y) & m
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		if y >= uint64(w) {
			return 0
		}
		return (x << y) & m
	case OpLshr:
		if y >= uint64(w) {
			return 0
		}
		return x >> y
	case OpAshr:
		sign := x >> (w - 1) & 1
		if y >= uint64(w) {
			if sign == 1 {
				return m
			}
			return 0
		}
		r := x >> y
		if sign == 1 {
			r |= m &^ (m >> y)
		}
		return r
	}
	panic("expr: unknown binop")
}

func newBin(op BinOp, x, y BVExpr) BVExpr {
	checkSameWidth(x, y)
	cx, xc := x.(*Const)
	cy, yc := y.(*Const)
	if xc && yc {
		return NewConst(evalBin(op, cx.V, cy.V, x.Width()), x.Width())
	}
	// Light identity folding and canonicalization: constants ride on the
	// right of commutative operators and associate through chains, so that
	// structurally equal addresses (e.g. base+64+64 vs base+128) normalize
	// to one shape — this keeps relation formulas small and lets the
	// memory theory deduplicate reads at syntactically equal addresses.
	switch op {
	case OpAdd:
		if xc && cx.V == 0 {
			return y
		}
		if yc && cy.V == 0 {
			return x
		}
		if xc && !yc {
			return newBin(OpAdd, y, x) // const to the right
		}
		if yc {
			if inner, ok := x.(*Bin); ok && inner.Op == OpAdd {
				if ic, ok := inner.Y.(*Const); ok {
					// (x + c1) + c2 → x + (c1+c2)
					return newBin(OpAdd, inner.X, NewConst(ic.V+cy.V, x.Width()))
				}
			}
			if inner, ok := x.(*Bin); ok && inner.Op == OpSub {
				if ic, ok := inner.Y.(*Const); ok {
					// (x - c1) + c2 → x + (c2-c1)
					return newBin(OpAdd, inner.X, NewConst(cy.V-ic.V, x.Width()))
				}
			}
		}
	case OpSub, OpShl, OpLshr, OpAshr, OpOr, OpXor:
		if yc && cy.V == 0 {
			return x
		}
		if (op == OpOr || op == OpXor) && xc && cx.V == 0 {
			return y
		}
		if op == OpSub && yc {
			// x - c → x + (-c): one canonical chain shape for addresses.
			return newBin(OpAdd, x, NewConst(-cy.V, x.Width()))
		}
		if (op == OpXor || op == OpSub) && x == y {
			return NewConst(0, x.Width())
		}
		if op == OpOr && x == y {
			return x
		}
		if op == OpLshr && yc {
			if inner, ok := x.(*Bin); ok && inner.Op == OpLshr {
				if ic, ok := inner.Y.(*Const); ok && ic.V+cy.V < uint64(x.Width()) {
					// (x >> c1) >> c2 → x >> (c1+c2)
					return newBin(OpLshr, inner.X, NewConst(ic.V+cy.V, x.Width()))
				}
			}
		}
	case OpAnd:
		if yc && cy.V == mask(x.Width()) {
			return x
		}
		if xc && cx.V == mask(x.Width()) {
			return y
		}
		if xc && cx.V == 0 || yc && cy.V == 0 {
			return NewConst(0, x.Width())
		}
		if x == y {
			return x
		}
		if yc {
			if inner, ok := x.(*Bin); ok && inner.Op == OpAnd {
				if ic, ok := inner.Y.(*Const); ok {
					// (x & c1) & c2 → x & (c1&c2)
					return newBin(OpAnd, inner.X, NewConst(ic.V&cy.V, x.Width()))
				}
			}
		}
	case OpMul:
		if yc && cy.V == 1 {
			return x
		}
		if xc && cx.V == 1 {
			return y
		}
		if xc && cx.V == 0 || yc && cy.V == 0 {
			return NewConst(0, x.Width())
		}
	}
	return &Bin{Op: op, X: x, Y: y}
}

// Add returns x + y.
func Add(x, y BVExpr) BVExpr { return newBin(OpAdd, x, y) }

// Sub returns x - y.
func Sub(x, y BVExpr) BVExpr { return newBin(OpSub, x, y) }

// Mul returns x * y (modular).
func Mul(x, y BVExpr) BVExpr { return newBin(OpMul, x, y) }

// And returns the bitwise conjunction of x and y.
func And(x, y BVExpr) BVExpr { return newBin(OpAnd, x, y) }

// Or returns the bitwise disjunction of x and y.
func Or(x, y BVExpr) BVExpr { return newBin(OpOr, x, y) }

// Xor returns the bitwise exclusive-or of x and y.
func Xor(x, y BVExpr) BVExpr { return newBin(OpXor, x, y) }

// Shl returns x logically shifted left by y.
func Shl(x, y BVExpr) BVExpr { return newBin(OpShl, x, y) }

// Lshr returns x logically shifted right by y.
func Lshr(x, y BVExpr) BVExpr { return newBin(OpLshr, x, y) }

// Ashr returns x arithmetically shifted right by y.
func Ashr(x, y BVExpr) BVExpr { return newBin(OpAshr, x, y) }

// UnOp enumerates unary bitvector operators.
type UnOp uint8

// Unary bitvector operators.
const (
	OpNot UnOp = iota // bitwise complement
	OpNeg             // two's-complement negation
)

func (op UnOp) String() string {
	if op == OpNot {
		return "not"
	}
	return "neg"
}

// Un is a unary bitvector operation.
type Un struct {
	Op UnOp
	X  BVExpr
}

func (u *Un) Sort() Sort     { return SortBV }
func (u *Un) Width() uint    { return u.X.Width() }
func (u *Un) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// Not returns the bitwise complement of x.
func Not(x BVExpr) BVExpr {
	if c, ok := x.(*Const); ok {
		return NewConst(^c.V, c.W)
	}
	return &Un{Op: OpNot, X: x}
}

// Neg returns the two's-complement negation of x.
func Neg(x BVExpr) BVExpr {
	if c, ok := x.(*Const); ok {
		return NewConst(-c.V, c.W)
	}
	return &Un{Op: OpNeg, X: x}
}

// Extract selects bits hi..lo (inclusive) of x as a (hi-lo+1)-wide value.
type Extract struct {
	Hi, Lo uint
	X      BVExpr
}

// NewExtract builds an extraction of bits hi..lo of x.
func NewExtract(hi, lo uint, x BVExpr) BVExpr {
	if hi < lo || hi >= x.Width() {
		panic(fmt.Sprintf("expr: bad extract [%d:%d] of width %d", hi, lo, x.Width()))
	}
	if c, ok := x.(*Const); ok {
		return NewConst(c.V>>lo, hi-lo+1)
	}
	if lo == 0 && hi == x.Width()-1 {
		return x
	}
	return &Extract{Hi: hi, Lo: lo, X: x}
}

func (e *Extract) Sort() Sort     { return SortBV }
func (e *Extract) Width() uint    { return e.Hi - e.Lo + 1 }
func (e *Extract) String() string { return fmt.Sprintf("%s[%d:%d]", e.X, e.Hi, e.Lo) }

// ExtKind distinguishes zero and sign extension.
type ExtKind uint8

// Extension kinds.
const (
	ZeroExt ExtKind = iota
	SignExt
)

// Ext widens x to width W.
type Ext struct {
	Kind ExtKind
	W    uint
	X    BVExpr
}

// NewExt extends x to width w using the given kind.
func NewExt(kind ExtKind, x BVExpr, w uint) BVExpr {
	if w < x.Width() || w > 64 {
		panic(fmt.Sprintf("expr: bad extension %d -> %d", x.Width(), w))
	}
	if w == x.Width() {
		return x
	}
	if c, ok := x.(*Const); ok {
		v := c.V
		if kind == SignExt && v>>(c.W-1)&1 == 1 {
			v |= mask(w) &^ mask(c.W)
		}
		return NewConst(v, w)
	}
	return &Ext{Kind: kind, W: w, X: x}
}

func (e *Ext) Sort() Sort  { return SortBV }
func (e *Ext) Width() uint { return e.W }
func (e *Ext) String() string {
	k := "zext"
	if e.Kind == SignExt {
		k = "sext"
	}
	return fmt.Sprintf("(%s %s %d)", k, e.X, e.W)
}

// Ite is a bitvector if-then-else.
type Ite struct {
	Cond       BoolExpr
	Then, Else BVExpr
}

// NewIte builds ite(cond, thn, els).
func NewIte(cond BoolExpr, thn, els BVExpr) BVExpr {
	checkSameWidth(thn, els)
	if c, ok := cond.(*BoolConst); ok {
		if c.B {
			return thn
		}
		return els
	}
	return &Ite{Cond: cond, Then: thn, Else: els}
}

func (i *Ite) Sort() Sort     { return SortBV }
func (i *Ite) Width() uint    { return i.Then.Width() }
func (i *Ite) String() string { return fmt.Sprintf("(ite %s %s %s)", i.Cond, i.Then, i.Else) }

// ---------------------------------------------------------------------------
// Booleans
// ---------------------------------------------------------------------------

// BoolExpr is implemented by boolean-sorted expressions.
type BoolExpr interface {
	Expr
	boolExpr()
}

// BoolConst is a boolean constant.
type BoolConst struct{ B bool }

// True and False are the boolean constants.
var (
	True  = &BoolConst{B: true}
	False = &BoolConst{B: false}
)

func (b *BoolConst) Sort() Sort { return SortBool }
func (b *BoolConst) boolExpr()  {}
func (b *BoolConst) String() string {
	if b.B {
		return "true"
	}
	return "false"
}

// BoolVar is a boolean variable.
type BoolVar struct{ Name string }

// NewBoolVar builds a boolean variable.
func NewBoolVar(name string) *BoolVar { return &BoolVar{Name: name} }

func (b *BoolVar) Sort() Sort     { return SortBool }
func (b *BoolVar) boolExpr()      {}
func (b *BoolVar) String() string { return b.Name }

// CmpOp enumerates bitvector comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpUlt
	OpUle
	OpSlt
	OpSle
)

var cmpOpNames = [...]string{"=", "<u", "<=u", "<s", "<=s"}

func (op CmpOp) String() string { return cmpOpNames[op] }

// Cmp compares two bitvectors and yields a boolean.
type Cmp struct {
	Op   CmpOp
	X, Y BVExpr
}

func (c *Cmp) Sort() Sort     { return SortBool }
func (c *Cmp) boolExpr()      {}
func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.X, c.Op, c.Y) }

func signed(v uint64, w uint) int64 {
	if w == 64 {
		return int64(v)
	}
	if v>>(w-1)&1 == 1 {
		return int64(v | ^mask(w))
	}
	return int64(v)
}

func evalCmp(op CmpOp, x, y uint64, w uint) bool {
	switch op {
	case OpEq:
		return x == y
	case OpUlt:
		return x < y
	case OpUle:
		return x <= y
	case OpSlt:
		return signed(x, w) < signed(y, w)
	case OpSle:
		return signed(x, w) <= signed(y, w)
	}
	panic("expr: unknown cmpop")
}

func newCmp(op CmpOp, x, y BVExpr) BoolExpr {
	checkSameWidth(x, y)
	cx, xc := x.(*Const)
	cy, yc := y.(*Const)
	if xc && yc {
		return Bool(evalCmp(op, cx.V, cy.V, x.Width()))
	}
	if op == OpEq && x == y {
		return True
	}
	if op == OpEq {
		// Eq(x + c1, c2) → Eq(x, c2 - c1): solved forms shrink the CNF.
		if bx, ok := x.(*Bin); ok && bx.Op == OpAdd {
			if c1, ok := bx.Y.(*Const); ok && yc {
				return newCmp(OpEq, bx.X, NewConst(cy.V-c1.V, x.Width()))
			}
		}
		if by, ok := y.(*Bin); ok && by.Op == OpAdd {
			if c1, ok := by.Y.(*Const); ok && xc {
				return newCmp(OpEq, by.X, NewConst(cx.V-c1.V, y.Width()))
			}
		}
	}
	return &Cmp{Op: op, X: x, Y: y}
}

// Eq returns x = y.
func Eq(x, y BVExpr) BoolExpr { return newCmp(OpEq, x, y) }

// Neq returns x ≠ y.
func Neq(x, y BVExpr) BoolExpr { return NotB(Eq(x, y)) }

// Ult returns x <u y (unsigned).
func Ult(x, y BVExpr) BoolExpr { return newCmp(OpUlt, x, y) }

// Ule returns x <=u y (unsigned).
func Ule(x, y BVExpr) BoolExpr { return newCmp(OpUle, x, y) }

// Slt returns x <s y (signed).
func Slt(x, y BVExpr) BoolExpr { return newCmp(OpSlt, x, y) }

// Sle returns x <=s y (signed).
func Sle(x, y BVExpr) BoolExpr { return newCmp(OpSle, x, y) }

// Bool converts a Go bool to a boolean constant expression.
func Bool(b bool) *BoolConst {
	if b {
		return True
	}
	return False
}

// NaryOp enumerates n-ary boolean connectives.
type NaryOp uint8

// Boolean connectives.
const (
	OpAndB NaryOp = iota
	OpOrB
)

// Nary is an n-ary boolean conjunction or disjunction.
type Nary struct {
	Op   NaryOp
	Args []BoolExpr
}

func (n *Nary) Sort() Sort { return SortBool }
func (n *Nary) boolExpr()  {}
func (n *Nary) String() string {
	op := "and"
	if n.Op == OpOrB {
		op = "or"
	}
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("(%s %s)", op, strings.Join(parts, " "))
}

func newNary(op NaryOp, args []BoolExpr) BoolExpr {
	unit := op == OpAndB // and's unit is true, or's unit is false
	flat := make([]BoolExpr, 0, len(args))
	for _, a := range args {
		if c, ok := a.(*BoolConst); ok {
			if c.B == unit {
				continue // drop unit
			}
			return Bool(!unit) // absorbing element
		}
		if n, ok := a.(*Nary); ok && n.Op == op {
			flat = append(flat, n.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return Bool(unit)
	case 1:
		return flat[0]
	}
	return &Nary{Op: op, Args: flat}
}

// AndB returns the conjunction of args.
func AndB(args ...BoolExpr) BoolExpr { return newNary(OpAndB, args) }

// OrB returns the disjunction of args.
func OrB(args ...BoolExpr) BoolExpr { return newNary(OpOrB, args) }

// NotBExpr is boolean negation.
type NotBExpr struct{ X BoolExpr }

func (n *NotBExpr) Sort() Sort     { return SortBool }
func (n *NotBExpr) boolExpr()      {}
func (n *NotBExpr) String() string { return fmt.Sprintf("(not %s)", n.X) }

// NotB returns the negation of x. Negated comparisons rewrite to their dual
// (¬(a <u b) ≡ b <=u a), which keeps path conditions negation-free and the
// CNF encoding slightly smaller.
func NotB(x BoolExpr) BoolExpr {
	switch v := x.(type) {
	case *BoolConst:
		return Bool(!v.B)
	case *NotBExpr:
		return v.X
	case *Cmp:
		switch v.Op {
		case OpUlt:
			return newCmp(OpUle, v.Y, v.X)
		case OpUle:
			return newCmp(OpUlt, v.Y, v.X)
		case OpSlt:
			return newCmp(OpSle, v.Y, v.X)
		case OpSle:
			return newCmp(OpSlt, v.Y, v.X)
		}
	}
	return &NotBExpr{X: x}
}

// Implies returns x ⇒ y.
func Implies(x, y BoolExpr) BoolExpr { return OrB(NotB(x), y) }

// Iff returns x ⇔ y.
func Iff(x, y BoolExpr) BoolExpr {
	if cx, ok := x.(*BoolConst); ok {
		if cx.B {
			return y
		}
		return NotB(y)
	}
	if cy, ok := y.(*BoolConst); ok {
		if cy.B {
			return x
		}
		return NotB(x)
	}
	return AndB(Implies(x, y), Implies(y, x))
}

// ---------------------------------------------------------------------------
// Memories
// ---------------------------------------------------------------------------

// MemExpr is implemented by memory-sorted expressions. A memory is a total
// map from 64-bit addresses to 64-bit words.
type MemExpr interface {
	Expr
	memExpr()
}

// MemVar is a memory variable (an initial memory).
type MemVar struct{ Name string }

// NewMemVar builds a memory variable.
func NewMemVar(name string) *MemVar { return &MemVar{Name: name} }

func (m *MemVar) Sort() Sort     { return SortMem }
func (m *MemVar) memExpr()       {}
func (m *MemVar) String() string { return m.Name }

// Store is a memory update: the memory M with address Addr mapped to Val.
type Store struct {
	M    MemExpr
	Addr BVExpr
	Val  BVExpr
}

// NewStore builds a memory update.
func NewStore(m MemExpr, addr, val BVExpr) *Store {
	if addr.Width() != 64 || val.Width() != 64 {
		panic("expr: memory store requires 64-bit address and value")
	}
	return &Store{M: m, Addr: addr, Val: val}
}

func (s *Store) Sort() Sort     { return SortMem }
func (s *Store) memExpr()       {}
func (s *Store) String() string { return fmt.Sprintf("%s[%s := %s]", s.M, s.Addr, s.Val) }

// Read is a memory read: the 64-bit word of M at address Addr.
type Read struct {
	M    MemExpr
	Addr BVExpr
}

// NewRead builds a memory read.
func NewRead(m MemExpr, addr BVExpr) BVExpr {
	if addr.Width() != 64 {
		panic("expr: memory read requires 64-bit address")
	}
	return &Read{M: m, Addr: addr}
}

func (r *Read) Sort() Sort     { return SortBV }
func (r *Read) Width() uint    { return 64 }
func (r *Read) String() string { return fmt.Sprintf("%s[%s]", r.M, r.Addr) }
