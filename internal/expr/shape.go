package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// CanonShape computes the canonical shape of a formula list: a key that is
// identical for any two lists that are equal up to a consistent renaming of
// their variables (alpha-equivalent), together with the formulas rewritten
// into the canonical name space and the name substitution that was applied.
//
// Canonical names are "@0", "@1", ... assigned by first occurrence during a
// left-to-right traversal, with one counter shared across bitvector, boolean
// and memory variables (node tags keep the sorts apart in the key). The
// returned names slice maps placeholder index i back to the original name
// behind "@i".
//
// The key is built from a dense serialization of the expression DAG — every
// distinct subterm gets one definition line, identified structurally, so the
// key does not depend on how much pointer sharing the input trees happen to
// have. The campaign shape cache (internal/smt.ShapeCache) uses the key to
// recognize that two programs of one template induce identical path-pair
// relations modulo register naming, and the renamed formulas to build one
// shared prototype encoding.
//
// The renamed trees are maximally shared: structurally equal subterms are
// one node. This is safe for every consumer downstream of the bit-blaster's
// interner, which would merge them anyway.
func CanonShape(formulas []BoolExpr) (key string, renamed []BoolExpr, names []string) {
	c := &canonizer{
		table:  make(map[string]int),
		memo:   make(map[Expr]int),
		nameOf: make(map[string]string),
	}
	roots := make([]int, len(formulas))
	renamed = make([]BoolExpr, len(formulas))
	for i, f := range formulas {
		id := c.canon(f)
		roots[i] = id
		renamed[i] = c.nodes[id].(BoolExpr)
	}
	var sb strings.Builder
	for _, d := range c.defs {
		sb.WriteString(d)
		sb.WriteByte('\n')
	}
	sb.WriteByte('!')
	for _, r := range roots {
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(r))
	}
	return sb.String(), renamed, c.names
}

type canonizer struct {
	table  map[string]int    // structural def -> dense id
	defs   []string          // id -> def line, in assignment order
	nodes  []Expr            // id -> canonical renamed node
	memo   map[Expr]int      // visited input node -> id (pointer memo)
	nameOf map[string]string // original name -> placeholder
	names  []string          // placeholder index -> original name
}

// ph returns the placeholder for an original variable name, assigning the
// next index on first sight.
func (c *canonizer) ph(name string) string {
	if p, ok := c.nameOf[name]; ok {
		return p
	}
	p := "@" + strconv.Itoa(len(c.names))
	c.nameOf[name] = p
	c.names = append(c.names, name)
	return p
}

// intern registers the def line, building the canonical node on first sight.
func (c *canonizer) intern(def string, build func() Expr) int {
	if id, ok := c.table[def]; ok {
		return id
	}
	id := len(c.defs)
	c.table[def] = id
	c.defs = append(c.defs, def)
	c.nodes = append(c.nodes, build())
	return id
}

func (c *canonizer) canon(e Expr) int {
	if id, ok := c.memo[e]; ok {
		return id
	}
	id := c.canonNew(e)
	c.memo[e] = id
	return id
}

func (c *canonizer) node(id int) Expr     { return c.nodes[id] }
func (c *canonizer) bv(id int) BVExpr     { return c.nodes[id].(BVExpr) }
func (c *canonizer) boolx(id int) BoolExpr { return c.nodes[id].(BoolExpr) }
func (c *canonizer) mem(id int) MemExpr   { return c.nodes[id].(MemExpr) }

func def1(tag string, args ...int) string {
	var sb strings.Builder
	sb.WriteString(tag)
	for _, a := range args {
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(a))
	}
	return sb.String()
}

func (c *canonizer) canonNew(e Expr) int {
	switch v := e.(type) {
	case *BoolConst:
		if v.B {
			return c.intern("T", func() Expr { return True })
		}
		return c.intern("F", func() Expr { return False })
	case *Const:
		def := "c " + strconv.FormatUint(uint64(v.W), 10) + " " + strconv.FormatUint(v.V, 16)
		return c.intern(def, func() Expr { return v })
	case *Var:
		p := c.ph(v.Name)
		def := "v " + strconv.FormatUint(uint64(v.W), 10) + " " + p
		return c.intern(def, func() Expr { return NewVar(p, v.W) })
	case *BoolVar:
		p := c.ph(v.Name)
		return c.intern("V "+p, func() Expr { return NewBoolVar(p) })
	case *MemVar:
		p := c.ph(v.Name)
		return c.intern("m "+p, func() Expr { return NewMemVar(p) })
	case *Bin:
		x, y := c.canon(v.X), c.canon(v.Y)
		return c.intern(def1("b"+strconv.Itoa(int(v.Op)), x, y), func() Expr {
			return newBin(v.Op, c.bv(x), c.bv(y))
		})
	case *Un:
		x := c.canon(v.X)
		return c.intern(def1("u"+strconv.Itoa(int(v.Op)), x), func() Expr {
			if v.Op == OpNot {
				return Not(c.bv(x))
			}
			return Neg(c.bv(x))
		})
	case *Extract:
		x := c.canon(v.X)
		def := "x " + strconv.FormatUint(uint64(v.Hi), 10) + ":" + strconv.FormatUint(uint64(v.Lo), 10)
		return c.intern(def1(def, x), func() Expr {
			return NewExtract(v.Hi, v.Lo, c.bv(x))
		})
	case *Ext:
		x := c.canon(v.X)
		def := "e" + strconv.Itoa(int(v.Kind)) + " " + strconv.FormatUint(uint64(v.W), 10)
		return c.intern(def1(def, x), func() Expr {
			return NewExt(v.Kind, c.bv(x), v.W)
		})
	case *Ite:
		cond, thn, els := c.canon(v.Cond), c.canon(v.Then), c.canon(v.Else)
		return c.intern(def1("i", cond, thn, els), func() Expr {
			return NewIte(c.boolx(cond), c.bv(thn), c.bv(els))
		})
	case *Cmp:
		x, y := c.canon(v.X), c.canon(v.Y)
		return c.intern(def1("p"+strconv.Itoa(int(v.Op)), x, y), func() Expr {
			return newCmp(v.Op, c.bv(x), c.bv(y))
		})
	case *Nary:
		ids := make([]int, len(v.Args))
		for i, a := range v.Args {
			ids[i] = c.canon(a)
		}
		return c.intern(def1("n"+strconv.Itoa(int(v.Op)), ids...), func() Expr {
			args := make([]BoolExpr, len(ids))
			for i, id := range ids {
				args[i] = c.boolx(id)
			}
			return newNary(v.Op, args)
		})
	case *NotBExpr:
		x := c.canon(v.X)
		return c.intern(def1("N", x), func() Expr { return NotB(c.boolx(x)) })
	case *Store:
		m, addr, val := c.canon(v.M), c.canon(v.Addr), c.canon(v.Val)
		return c.intern(def1("s", m, addr, val), func() Expr {
			return NewStore(c.mem(m), c.bv(addr), c.bv(val))
		})
	case *Read:
		m, addr := c.canon(v.M), c.canon(v.Addr)
		return c.intern(def1("r", m, addr), func() Expr {
			return NewRead(c.mem(m), c.bv(addr))
		})
	}
	panic(fmt.Sprintf("expr: CanonShape on %T", e))
}
