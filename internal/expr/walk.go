package expr

import "fmt"

// Rename rewrites every variable name (bitvector, boolean and memory) in e
// through f, returning a new expression. It is used to instantiate a formula
// for the two states s1 and s2 of a test case (suffixing names with "_1" or
// "_2").
func Rename(e Expr, f func(string) string) Expr {
	switch v := e.(type) {
	case *Const, *BoolConst:
		return e
	case *Var:
		return NewVar(f(v.Name), v.W)
	case *BoolVar:
		return NewBoolVar(f(v.Name))
	case *Bin:
		return newBin(v.Op, RenameBV(v.X, f), RenameBV(v.Y, f))
	case *Un:
		x := RenameBV(v.X, f)
		if v.Op == OpNot {
			return Not(x)
		}
		return Neg(x)
	case *Extract:
		return NewExtract(v.Hi, v.Lo, RenameBV(v.X, f))
	case *Ext:
		return NewExt(v.Kind, RenameBV(v.X, f), v.W)
	case *Ite:
		return NewIte(RenameBool(v.Cond, f), RenameBV(v.Then, f), RenameBV(v.Else, f))
	case *Cmp:
		return newCmp(v.Op, RenameBV(v.X, f), RenameBV(v.Y, f))
	case *Nary:
		args := make([]BoolExpr, len(v.Args))
		for i, a := range v.Args {
			args[i] = RenameBool(a, f)
		}
		return newNary(v.Op, args)
	case *NotBExpr:
		return NotB(RenameBool(v.X, f))
	case *MemVar:
		return NewMemVar(f(v.Name))
	case *Store:
		return NewStore(RenameMem(v.M, f), RenameBV(v.Addr, f), RenameBV(v.Val, f))
	case *Read:
		return NewRead(RenameMem(v.M, f), RenameBV(v.Addr, f))
	}
	panic(fmt.Sprintf("expr: Rename on %T", e))
}

// RenameBV is Rename specialized to bitvector expressions.
func RenameBV(e BVExpr, f func(string) string) BVExpr { return Rename(e, f).(BVExpr) }

// RenameBool is Rename specialized to boolean expressions.
func RenameBool(e BoolExpr, f func(string) string) BoolExpr { return Rename(e, f).(BoolExpr) }

// RenameMem is Rename specialized to memory expressions.
func RenameMem(e MemExpr, f func(string) string) MemExpr { return Rename(e, f).(MemExpr) }

// Suffix returns a renaming function that appends sfx to every name.
func Suffix(sfx string) func(string) string {
	return func(name string) string { return name + sfx }
}

// Vars collects the variable names of each sort occurring in e into the
// provided sets (any of which may be nil to skip collection).
func Vars(e Expr, bv, boolv, memv map[string]bool) {
	switch v := e.(type) {
	case *Const, *BoolConst:
	case *Var:
		if bv != nil {
			bv[v.Name] = true
		}
	case *BoolVar:
		if boolv != nil {
			boolv[v.Name] = true
		}
	case *Bin:
		Vars(v.X, bv, boolv, memv)
		Vars(v.Y, bv, boolv, memv)
	case *Un:
		Vars(v.X, bv, boolv, memv)
	case *Extract:
		Vars(v.X, bv, boolv, memv)
	case *Ext:
		Vars(v.X, bv, boolv, memv)
	case *Ite:
		Vars(v.Cond, bv, boolv, memv)
		Vars(v.Then, bv, boolv, memv)
		Vars(v.Else, bv, boolv, memv)
	case *Cmp:
		Vars(v.X, bv, boolv, memv)
		Vars(v.Y, bv, boolv, memv)
	case *Nary:
		for _, a := range v.Args {
			Vars(a, bv, boolv, memv)
		}
	case *NotBExpr:
		Vars(v.X, bv, boolv, memv)
	case *MemVar:
		if memv != nil {
			memv[v.Name] = true
		}
	case *Store:
		Vars(v.M, bv, boolv, memv)
		Vars(v.Addr, bv, boolv, memv)
		Vars(v.Val, bv, boolv, memv)
	case *Read:
		Vars(v.M, bv, boolv, memv)
		Vars(v.Addr, bv, boolv, memv)
	default:
		panic(fmt.Sprintf("expr: Vars on %T", e))
	}
}

// SubstBV replaces bitvector variables in e according to sub (and memory
// variables according to memSub; either map may be nil). It is the workhorse
// of the symbolic executor: program expressions over register names are
// instantiated with the current symbolic register values.
func SubstBV(e Expr, sub map[string]BVExpr, memSub map[string]MemExpr) Expr {
	switch v := e.(type) {
	case *Const, *BoolConst, *BoolVar:
		return e
	case *Var:
		if sub != nil {
			if r, ok := sub[v.Name]; ok {
				if r.Width() != v.W {
					panic(fmt.Sprintf("expr: substitution width mismatch for %s", v.Name))
				}
				return r
			}
		}
		return e
	case *Bin:
		return newBin(v.Op, SubstBV(v.X, sub, memSub).(BVExpr), SubstBV(v.Y, sub, memSub).(BVExpr))
	case *Un:
		x := SubstBV(v.X, sub, memSub).(BVExpr)
		if v.Op == OpNot {
			return Not(x)
		}
		return Neg(x)
	case *Extract:
		return NewExtract(v.Hi, v.Lo, SubstBV(v.X, sub, memSub).(BVExpr))
	case *Ext:
		return NewExt(v.Kind, SubstBV(v.X, sub, memSub).(BVExpr), v.W)
	case *Ite:
		return NewIte(SubstBV(v.Cond, sub, memSub).(BoolExpr),
			SubstBV(v.Then, sub, memSub).(BVExpr),
			SubstBV(v.Else, sub, memSub).(BVExpr))
	case *Cmp:
		return newCmp(v.Op, SubstBV(v.X, sub, memSub).(BVExpr), SubstBV(v.Y, sub, memSub).(BVExpr))
	case *Nary:
		args := make([]BoolExpr, len(v.Args))
		for i, a := range v.Args {
			args[i] = SubstBV(a, sub, memSub).(BoolExpr)
		}
		return newNary(v.Op, args)
	case *NotBExpr:
		return NotB(SubstBV(v.X, sub, memSub).(BoolExpr))
	case *MemVar:
		if memSub != nil {
			if r, ok := memSub[v.Name]; ok {
				return r
			}
		}
		return e
	case *Store:
		return NewStore(SubstBV(v.M, sub, memSub).(MemExpr),
			SubstBV(v.Addr, sub, memSub).(BVExpr),
			SubstBV(v.Val, sub, memSub).(BVExpr))
	case *Read:
		return NewRead(SubstBV(v.M, sub, memSub).(MemExpr),
			SubstBV(v.Addr, sub, memSub).(BVExpr))
	}
	panic(fmt.Sprintf("expr: SubstBV on %T", e))
}
