package expr

import "strconv"

// Interner hash-conses expression trees: Intern maps every structurally
// identical subterm to one canonical node pointer, so downstream caches
// keyed by pointer identity (notably the bit-blaster's CNF cache) hit for
// terms that were built independently — e.g. the same observation address
// renamed once for the pair relation and again for each coverage-class
// constraint of an incremental solver.
//
// An Interner is not safe for concurrent use; each solver owns its own.
// A frozen interner can however serve as the shared read-only parent of many
// child interners (see NewChild), which is how the campaign shape cache
// instantiates per-program solvers without copying the prototype's tables.
type Interner struct {
	memo  map[Expr]Expr   // any visited node -> canonical node
	table map[string]Expr // structural key -> canonical node
	ids   map[Expr]uint64 // canonical node -> dense id used in child keys
	base  uint64          // id offset: total ids held by the parent chain
	parent *Interner      // frozen fallback layer, read-only after NewChild
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		memo:  make(map[Expr]Expr),
		table: make(map[string]Expr),
		ids:   make(map[Expr]uint64),
	}
}

// NewChild returns an interner layered over in: lookups fall through to in
// (and its ancestors), new terms are recorded only in the child. The parent
// MUST NOT intern any new term afterwards — children assign ids starting at
// the parent chain's current count, and concurrent children of one frozen
// parent are safe precisely because none of them writes to it.
func (in *Interner) NewChild() *Interner {
	return &Interner{
		memo:   make(map[Expr]Expr),
		table:  make(map[string]Expr),
		ids:    make(map[Expr]uint64),
		base:   in.base + uint64(len(in.ids)),
		parent: in,
	}
}

// Intern returns the canonical representative of e, interning every subterm.
// The result is structurally identical to e; two calls with structurally
// equal trees return the same pointer.
func (in *Interner) Intern(e Expr) Expr {
	for p := in; p != nil; p = p.parent {
		if c, ok := p.memo[e]; ok {
			return c
		}
	}
	c := in.intern(e)
	in.memo[e] = c
	if c != e {
		in.memo[c] = c
	}
	return c
}

// id returns the dense id of an already-canonical node.
func (in *Interner) id(c Expr) uint64 {
	for p := in; p != nil; p = p.parent {
		if id, ok := p.ids[c]; ok {
			return id
		}
	}
	return 0
}

// canon looks the key up through the layer chain, registering node in the
// youngest layer as the canonical representative when the key is new.
func (in *Interner) canon(key []byte, build func() Expr) Expr {
	k := string(key)
	for p := in; p != nil; p = p.parent {
		if c, ok := p.table[k]; ok {
			return c
		}
	}
	c := build()
	in.table[k] = c
	in.ids[c] = in.base + uint64(len(in.ids)) + 1
	return c
}

func appendID(key []byte, id uint64) []byte {
	key = append(key, ' ')
	return strconv.AppendUint(key, id, 16)
}

func (in *Interner) intern(e Expr) Expr {
	switch v := e.(type) {
	case *BoolConst:
		// True/False are package singletons; keep them canonical as-is.
		if v.B {
			return in.canon([]byte("T"), func() Expr { return True })
		}
		return in.canon([]byte("F"), func() Expr { return False })
	case *Const:
		key := append([]byte("c"), ' ')
		key = strconv.AppendUint(key, uint64(v.W), 10)
		key = appendID(key, v.V)
		return in.canon(key, func() Expr { return v })
	case *Var:
		key := append([]byte("v"), ' ')
		key = strconv.AppendUint(key, uint64(v.W), 10)
		key = append(key, ' ')
		key = append(key, v.Name...)
		return in.canon(key, func() Expr { return v })
	case *BoolVar:
		key := append([]byte("V "), v.Name...)
		return in.canon(key, func() Expr { return v })
	case *MemVar:
		key := append([]byte("m "), v.Name...)
		return in.canon(key, func() Expr { return v })
	case *Bin:
		x := in.Intern(v.X).(BVExpr)
		y := in.Intern(v.Y).(BVExpr)
		key := append([]byte("b"), byte(v.Op))
		key = appendID(key, in.id(x))
		key = appendID(key, in.id(y))
		return in.canon(key, func() Expr {
			if x == v.X && y == v.Y {
				return v
			}
			return &Bin{Op: v.Op, X: x, Y: y}
		})
	case *Un:
		x := in.Intern(v.X).(BVExpr)
		key := append([]byte("u"), byte(v.Op))
		key = appendID(key, in.id(x))
		return in.canon(key, func() Expr {
			if x == v.X {
				return v
			}
			return &Un{Op: v.Op, X: x}
		})
	case *Extract:
		x := in.Intern(v.X).(BVExpr)
		key := append([]byte("x"), ' ')
		key = strconv.AppendUint(key, uint64(v.Hi), 10)
		key = append(key, ':')
		key = strconv.AppendUint(key, uint64(v.Lo), 10)
		key = appendID(key, in.id(x))
		return in.canon(key, func() Expr {
			if x == v.X {
				return v
			}
			return &Extract{Hi: v.Hi, Lo: v.Lo, X: x}
		})
	case *Ext:
		x := in.Intern(v.X).(BVExpr)
		key := append([]byte("e"), byte(v.Kind))
		key = strconv.AppendUint(key, uint64(v.W), 10)
		key = appendID(key, in.id(x))
		return in.canon(key, func() Expr {
			if x == v.X {
				return v
			}
			return &Ext{Kind: v.Kind, W: v.W, X: x}
		})
	case *Ite:
		cond := in.Intern(v.Cond).(BoolExpr)
		thn := in.Intern(v.Then).(BVExpr)
		els := in.Intern(v.Else).(BVExpr)
		key := append([]byte("i"), ' ')
		key = appendID(key, in.id(cond))
		key = appendID(key, in.id(thn))
		key = appendID(key, in.id(els))
		return in.canon(key, func() Expr {
			if cond == v.Cond && thn == v.Then && els == v.Else {
				return v
			}
			return &Ite{Cond: cond, Then: thn, Else: els}
		})
	case *Cmp:
		x := in.Intern(v.X).(BVExpr)
		y := in.Intern(v.Y).(BVExpr)
		key := append([]byte("p"), byte(v.Op))
		key = appendID(key, in.id(x))
		key = appendID(key, in.id(y))
		return in.canon(key, func() Expr {
			if x == v.X && y == v.Y {
				return v
			}
			return &Cmp{Op: v.Op, X: x, Y: y}
		})
	case *Nary:
		args := make([]BoolExpr, len(v.Args))
		same := true
		key := append([]byte("n"), byte(v.Op))
		for i, a := range v.Args {
			args[i] = in.Intern(a).(BoolExpr)
			same = same && args[i] == a
			key = appendID(key, in.id(args[i]))
		}
		return in.canon(key, func() Expr {
			if same {
				return v
			}
			return &Nary{Op: v.Op, Args: args}
		})
	case *NotBExpr:
		x := in.Intern(v.X).(BoolExpr)
		key := append([]byte("N"), ' ')
		key = appendID(key, in.id(x))
		return in.canon(key, func() Expr {
			if x == v.X {
				return v
			}
			return &NotBExpr{X: x}
		})
	case *Store:
		m := in.Intern(v.M).(MemExpr)
		addr := in.Intern(v.Addr).(BVExpr)
		val := in.Intern(v.Val).(BVExpr)
		key := append([]byte("s"), ' ')
		key = appendID(key, in.id(m))
		key = appendID(key, in.id(addr))
		key = appendID(key, in.id(val))
		return in.canon(key, func() Expr {
			if m == v.M && addr == v.Addr && val == v.Val {
				return v
			}
			return &Store{M: m, Addr: addr, Val: val}
		})
	case *Read:
		m := in.Intern(v.M).(MemExpr)
		addr := in.Intern(v.Addr).(BVExpr)
		key := append([]byte("r"), ' ')
		key = appendID(key, in.id(m))
		key = appendID(key, in.id(addr))
		return in.canon(key, func() Expr {
			if m == v.M && addr == v.Addr {
				return v
			}
			return &Read{M: m, Addr: addr}
		})
	}
	panic("expr: Intern on unknown node")
}
