package expr

import "fmt"

// MemModel is a concrete memory: a default word plus explicit entries.
type MemModel struct {
	Default uint64
	Data    map[uint64]uint64
}

// NewMemModel returns an empty memory with the given default word.
func NewMemModel(def uint64) *MemModel {
	return &MemModel{Default: def, Data: make(map[uint64]uint64)}
}

// Get returns the word at addr.
func (m *MemModel) Get(addr uint64) uint64 {
	if v, ok := m.Data[addr]; ok {
		return v
	}
	return m.Default
}

// Set maps addr to v.
func (m *MemModel) Set(addr, v uint64) { m.Data[addr] = v }

// Clone returns a deep copy of the memory.
func (m *MemModel) Clone() *MemModel {
	c := NewMemModel(m.Default)
	for k, v := range m.Data {
		c.Data[k] = v
	}
	return c
}

// Assignment maps variables of each sort to concrete values.
type Assignment struct {
	BV   map[string]uint64
	Bool map[string]bool
	Mem  map[string]*MemModel
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{
		BV:   make(map[string]uint64),
		Bool: make(map[string]bool),
		Mem:  make(map[string]*MemModel),
	}
}

// EvalBV evaluates a bitvector expression under a. Unassigned variables
// evaluate to zero; unassigned memories behave as all-zero memories.
func (a *Assignment) EvalBV(e BVExpr) uint64 {
	switch v := e.(type) {
	case *Const:
		return v.V
	case *Var:
		return a.BV[v.Name] & mask(v.W)
	case *Bin:
		return evalBin(v.Op, a.EvalBV(v.X), a.EvalBV(v.Y), v.Width())
	case *Un:
		x := a.EvalBV(v.X)
		if v.Op == OpNot {
			return ^x & mask(v.Width())
		}
		return -x & mask(v.Width())
	case *Extract:
		return a.EvalBV(v.X) >> v.Lo & mask(v.Width())
	case *Ext:
		x := a.EvalBV(v.X)
		if v.Kind == SignExt && x>>(v.X.Width()-1)&1 == 1 {
			x |= mask(v.W) &^ mask(v.X.Width())
		}
		return x
	case *Ite:
		if a.EvalBool(v.Cond) {
			return a.EvalBV(v.Then)
		}
		return a.EvalBV(v.Else)
	case *Read:
		return a.evalRead(v.M, a.EvalBV(v.Addr))
	}
	panic(fmt.Sprintf("expr: EvalBV on %T", e))
}

func (a *Assignment) evalRead(m MemExpr, addr uint64) uint64 {
	switch v := m.(type) {
	case *MemVar:
		mm := a.Mem[v.Name]
		if mm == nil {
			return 0
		}
		return mm.Get(addr)
	case *Store:
		if a.EvalBV(v.Addr) == addr {
			return a.EvalBV(v.Val)
		}
		return a.evalRead(v.M, addr)
	}
	panic(fmt.Sprintf("expr: evalRead on %T", m))
}

// EvalMem materializes the concrete memory denoted by m under a: the
// innermost memory variable's image overlaid with every store along the
// chain, each address and value evaluated concretely. Unassigned memory
// variables behave as all-zero memories.
func (a *Assignment) EvalMem(m MemExpr) *MemModel {
	switch v := m.(type) {
	case *MemVar:
		if mm := a.Mem[v.Name]; mm != nil {
			return mm.Clone()
		}
		return NewMemModel(0)
	case *Store:
		mm := a.EvalMem(v.M)
		mm.Set(a.EvalBV(v.Addr), a.EvalBV(v.Val))
		return mm
	}
	panic(fmt.Sprintf("expr: EvalMem on %T", m))
}

// EvalBool evaluates a boolean expression under a.
func (a *Assignment) EvalBool(e BoolExpr) bool {
	switch v := e.(type) {
	case *BoolConst:
		return v.B
	case *BoolVar:
		return a.Bool[v.Name]
	case *Cmp:
		return evalCmp(v.Op, a.EvalBV(v.X), a.EvalBV(v.Y), v.X.Width())
	case *Nary:
		if v.Op == OpAndB {
			for _, arg := range v.Args {
				if !a.EvalBool(arg) {
					return false
				}
			}
			return true
		}
		for _, arg := range v.Args {
			if a.EvalBool(arg) {
				return true
			}
		}
		return false
	case *NotBExpr:
		return !a.EvalBool(v.X)
	}
	panic(fmt.Sprintf("expr: EvalBool on %T", e))
}
