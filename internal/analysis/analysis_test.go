package analysis

import (
	"math"
	"strings"
	"testing"

	"scamv/internal/logdb"
)

func recs() []logdb.Record {
	return []logdb.Record{
		// Unguided campaign: 1 counterexample late.
		{Experiment: "u", Program: "p0", Verdict: "indistinguishable", GenMicros: 100, ExeMicros: 50},
		{Experiment: "u", Program: "p0", Verdict: "inconclusive", GenMicros: 100, ExeMicros: 50},
		{Experiment: "u", Program: "p1", Verdict: "counterexample", GenMicros: 100, ExeMicros: 50},
		{Experiment: "u", Program: "p1", Verdict: "indistinguishable", GenMicros: 100, ExeMicros: 50},
		// Refined campaign: counterexample immediately, more of them.
		{Experiment: "r", Program: "p0", Verdict: "counterexample", GenMicros: 10, ExeMicros: 40},
		{Experiment: "r", Program: "p1", Verdict: "counterexample", GenMicros: 10, ExeMicros: 40},
		{Experiment: "r", Program: "p1", Verdict: "counterexample", GenMicros: 10, ExeMicros: 40},
		{Experiment: "r", Program: "p2", Verdict: "indistinguishable", GenMicros: 10, ExeMicros: 40},
	}
}

func TestAggregate(t *testing.T) {
	m := Aggregate(recs())
	u, r := m["u"], m["r"]
	if u == nil || r == nil {
		t.Fatalf("campaigns: %v", Names(m))
	}
	if u.Programs != 2 || u.ProgramsWithCex != 1 || u.Experiments != 4 ||
		u.Counterexamples != 1 || u.Inconclusive != 1 {
		t.Errorf("unguided aggregate: %+v", u)
	}
	if r.Programs != 3 || r.ProgramsWithCex != 2 || r.Counterexamples != 3 {
		t.Errorf("refined aggregate: %+v", r)
	}
	// TTC: unguided found its first counterexample on record 3:
	// 3 * 150 = 450 µs cumulative.
	if u.MicrosToFirstCex != 450 {
		t.Errorf("unguided TTC: %d", u.MicrosToFirstCex)
	}
	if r.MicrosToFirstCex != 50 {
		t.Errorf("refined TTC: %d", r.MicrosToFirstCex)
	}
	if u.AvgGenMicros() != 100 || u.AvgExeMicros() != 50 {
		t.Errorf("averages: %f %f", u.AvgGenMicros(), u.AvgExeMicros())
	}
	if got := r.CexRate(); got != 0.75 {
		t.Errorf("cex rate: %f", got)
	}
}

func TestCompare(t *testing.T) {
	m := Aggregate(recs())
	c := Compare(m["u"], m["r"])
	if c.ProgramFactor != 2 {
		t.Errorf("program factor: %f", c.ProgramFactor)
	}
	if c.CexFactor != 3 {
		t.Errorf("cex factor: %f", c.CexFactor)
	}
	if c.TTCSpeedup != 9 {
		t.Errorf("ttc speedup: %f", c.TTCSpeedup)
	}
	out := c.String()
	for _, want := range []string{"~2.0×", "~3.0×", "~9.0×"} {
		if !strings.Contains(out, want) {
			t.Errorf("checklist missing %q:\n%s", want, out)
		}
	}
}

func TestCompareDegenerateCases(t *testing.T) {
	// Unguided found nothing: factors are infinite.
	u := &Campaign{Name: "u", MicrosToFirstCex: -1}
	r := &Campaign{Name: "r", Counterexamples: 5, ProgramsWithCex: 2, MicrosToFirstCex: 10}
	c := Compare(u, r)
	if !math.IsInf(c.CexFactor, 1) || !math.IsInf(c.TTCSpeedup, 1) {
		t.Errorf("expected infinite factors: %+v", c)
	}
	// Neither found anything.
	r2 := &Campaign{Name: "r2", MicrosToFirstCex: -1}
	c2 := Compare(u, r2)
	if c2.TTCSpeedup != 0 || c2.CexFactor != 0 {
		t.Errorf("expected zero factors: %+v", c2)
	}
}

func TestFormatCampaigns(t *testing.T) {
	out := FormatCampaigns(Aggregate(recs()))
	if !strings.Contains(out, "campaign") || !strings.Contains(out, "r") {
		t.Errorf("format:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("expected header + 2 rows, got %d lines", len(lines))
	}
}

func TestNamesSorted(t *testing.T) {
	m := map[string]*Campaign{"b": {}, "a": {}, "c": {}}
	n := Names(m)
	if n[0] != "a" || n[1] != "b" || n[2] != "c" {
		t.Errorf("names: %v", n)
	}
}

func TestDiffPatterns(t *testing.T) {
	recs := []logdb.Record{
		{Experiment: "r", Verdict: "counterexample", Diff: []string{"x5", "mem"}},
		{Experiment: "r", Verdict: "counterexample", Diff: []string{"x5", "mem"}},
		{Experiment: "r", Verdict: "counterexample", Diff: []string{"x0"}},
		{Experiment: "r", Verdict: "indistinguishable", Diff: []string{"x9"}},
		{Experiment: "other", Verdict: "counterexample", Diff: []string{"x1"}},
	}
	p := DiffPatterns(recs, "r")
	if p["x5,mem"] != 2 || p["x0"] != 1 || len(p) != 2 {
		t.Errorf("patterns: %v", p)
	}
	out := FormatPatterns(p)
	if !strings.Contains(out, "differ in {x5,mem}") {
		t.Errorf("format:\n%s", out)
	}
	// Most frequent first.
	if strings.Index(out, "x5,mem") > strings.Index(out, "{x0}") {
		t.Errorf("ordering:\n%s", out)
	}
}
