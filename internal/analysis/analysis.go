// Package analysis aggregates experiment logs (internal/logdb) into
// campaign statistics and evaluates the artifact-appendix checklist of the
// paper (§A.6.1), which phrases the evaluation's expected outcomes as
// ratios between the refined and unguided campaigns: how many times more
// programs with counterexamples, how many times more counterexamples, and
// how much faster the first counterexample arrives.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"scamv/internal/logdb"
)

// Campaign is the aggregate of one experiment campaign's log records.
type Campaign struct {
	Name            string
	Programs        int
	ProgramsWithCex int
	Experiments     int
	Counterexamples int
	Inconclusive    int

	TotalGenMicros int64
	TotalExeMicros int64

	// MicrosToFirstCex is the cumulative generation+execution time up to
	// and including the first counterexample; -1 when none was found.
	MicrosToFirstCex int64
}

// AvgGenMicros is the mean generation time per experiment.
func (c *Campaign) AvgGenMicros() float64 {
	if c.Experiments == 0 {
		return 0
	}
	return float64(c.TotalGenMicros) / float64(c.Experiments)
}

// AvgExeMicros is the mean execution time per experiment.
func (c *Campaign) AvgExeMicros() float64 {
	if c.Experiments == 0 {
		return 0
	}
	return float64(c.TotalExeMicros) / float64(c.Experiments)
}

// CexRate is the fraction of experiments that are counterexamples.
func (c *Campaign) CexRate() float64 {
	if c.Experiments == 0 {
		return 0
	}
	return float64(c.Counterexamples) / float64(c.Experiments)
}

// DiffPatterns counts, over the counterexamples of a campaign's records,
// how often each state-difference pattern occurs — the paper's §1 goal of
// collecting enough counterexamples "to get better insight and identify
// patterns". A pattern is the comma-joined Diff list of the test case
// (e.g. "x5,mem": the states differed in register x5 and in memory).
func DiffPatterns(recs []logdb.Record, campaign string) map[string]int {
	out := make(map[string]int)
	for _, r := range recs {
		if r.Experiment != campaign || r.Verdict != "counterexample" {
			continue
		}
		out[strings.Join(r.Diff, ",")]++
	}
	return out
}

// FormatPatterns renders the patterns of a campaign sorted by frequency.
func FormatPatterns(patterns map[string]int) string {
	type kv struct {
		k string
		n int
	}
	var items []kv
	for k, n := range patterns {
		items = append(items, kv{k, n})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].k < items[j].k
	})
	var sb strings.Builder
	for _, it := range items {
		fmt.Fprintf(&sb, "  %6d  differ in {%s}\n", it.n, it.k)
	}
	return sb.String()
}

// Aggregate groups log records by campaign name.
func Aggregate(recs []logdb.Record) map[string]*Campaign {
	out := make(map[string]*Campaign)
	progs := make(map[string]map[string]bool)
	progsCex := make(map[string]map[string]bool)
	for _, r := range recs {
		c := out[r.Experiment]
		if c == nil {
			c = &Campaign{Name: r.Experiment, MicrosToFirstCex: -1}
			out[r.Experiment] = c
			progs[r.Experiment] = make(map[string]bool)
			progsCex[r.Experiment] = make(map[string]bool)
		}
		progs[r.Experiment][r.Program] = true
		c.Experiments++
		c.TotalGenMicros += r.GenMicros
		c.TotalExeMicros += r.ExeMicros
		switch r.Verdict {
		case "counterexample":
			c.Counterexamples++
			progsCex[r.Experiment][r.Program] = true
			if c.MicrosToFirstCex < 0 {
				c.MicrosToFirstCex = c.TotalGenMicros + c.TotalExeMicros
			}
		case "inconclusive":
			c.Inconclusive++
		}
	}
	for name, c := range out {
		c.Programs = len(progs[name])
		c.ProgramsWithCex = len(progsCex[name])
	}
	return out
}

// Names returns the campaign names in sorted order.
func Names(m map[string]*Campaign) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Checklist compares a refined campaign against its unguided baseline in
// the terms of §A.6.1.
type Checklist struct {
	Unguided, Refined *Campaign

	// ProgramFactor = refined programs-with-counterexamples / unguided
	// (Inf when the unguided baseline found none).
	ProgramFactor float64
	// CexFactor = refined counterexamples / unguided (Inf as above).
	CexFactor float64
	// TTCSpeedup = unguided time-to-counterexample / refined (Inf when the
	// unguided baseline never found one; 0 when neither did).
	TTCSpeedup float64
}

// Compare builds the checklist for a (unguided, refined) campaign pair.
func Compare(unguided, refined *Campaign) *Checklist {
	c := &Checklist{Unguided: unguided, Refined: refined}
	c.ProgramFactor = ratio(float64(refined.ProgramsWithCex), float64(unguided.ProgramsWithCex))
	c.CexFactor = ratio(float64(refined.Counterexamples), float64(unguided.Counterexamples))
	switch {
	case refined.MicrosToFirstCex < 0:
		c.TTCSpeedup = 0
	case unguided.MicrosToFirstCex < 0:
		c.TTCSpeedup = math.Inf(1)
	default:
		c.TTCSpeedup = ratio(float64(unguided.MicrosToFirstCex), float64(refined.MicrosToFirstCex))
	}
	return c
}

func ratio(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// String renders the checklist as the paper phrases it.
func (c *Checklist) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "with refinement in place (%s vs %s):\n", c.Refined.Name, c.Unguided.Name)
	fmt.Fprintf(&sb, "  programs with counterexamples: %s more (%d vs %d)\n",
		factor(c.ProgramFactor), c.Refined.ProgramsWithCex, c.Unguided.ProgramsWithCex)
	fmt.Fprintf(&sb, "  counterexamples:               %s more (%d vs %d)\n",
		factor(c.CexFactor), c.Refined.Counterexamples, c.Unguided.Counterexamples)
	fmt.Fprintf(&sb, "  time to first counterexample:  %s faster\n", factor(c.TTCSpeedup))
	return sb.String()
}

func factor(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "∞×"
	case f == 0:
		return "0×"
	default:
		return fmt.Sprintf("~%.1f×", f)
	}
}

// FormatCampaigns renders a per-campaign summary table.
func FormatCampaigns(m map[string]*Campaign) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %8s %8s %8s %8s %8s %10s %10s\n",
		"campaign", "progs", "p.w.cex", "exps", "cex", "inconcl", "avg-gen", "avg-exe")
	for _, name := range Names(m) {
		c := m[name]
		fmt.Fprintf(&sb, "%-32s %8d %8d %8d %8d %8d %9.0fµs %9.0fµs\n",
			c.Name, c.Programs, c.ProgramsWithCex, c.Experiments,
			c.Counterexamples, c.Inconclusive, c.AvgGenMicros(), c.AvgExeMicros())
	}
	return sb.String()
}
