package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scamv/internal/telemetry"
)

// loadGoldenPair reads the committed miniature trace pair: the new trace is
// the old one with testgen spans and query durations ×8, conflicts ×10, and
// p1/t1's verdict flipped from inconclusive to counterexample.
func loadGoldenPair(t *testing.T) (oldRecs, newRecs []telemetry.Record) {
	t.Helper()
	var err error
	oldRecs, err = telemetry.LoadTrace(filepath.Join("testdata", "diff_old.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	newRecs, err = telemetry.LoadTrace(filepath.Join("testdata", "diff_new.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return oldRecs, newRecs
}

func TestDiffTracesFindsInjectedRegression(t *testing.T) {
	oldRecs, newRecs := loadGoldenPair(t)
	d := DiffTraces(oldRecs, newRecs)

	// The injected slowdown: testgen spans ×8 on both programs.
	var testgen *StageDiff
	for i := range d.Stages {
		if d.Stages[i].Name == "testgen" {
			testgen = &d.Stages[i]
		}
	}
	if testgen == nil {
		t.Fatal("no testgen stage in diff")
	}
	if testgen.Old.Total != 11*time.Millisecond || testgen.New.Total != 88*time.Millisecond {
		t.Errorf("testgen totals %v → %v, want 11ms → 88ms", testgen.Old.Total, testgen.New.Total)
	}
	// Unchanged stages must diff to the identical distribution.
	for _, s := range d.Stages {
		if s.Name == "testgen" {
			continue
		}
		if s.Old.Total != s.New.Total || s.Old.Count != s.New.Count {
			t.Errorf("stage %s moved (%v → %v) despite identical records", s.Name, s.Old.Total, s.New.Total)
		}
	}

	// Query latency ×8, conflicts ×10, per program and overall.
	if d.Query.Old.Count != 4 || d.Query.New.Count != 4 {
		t.Errorf("query counts %d/%d, want 4/4", d.Query.Old.Count, d.Query.New.Count)
	}
	if d.Query.New.Total != 8*d.Query.Old.Total {
		t.Errorf("query total %v → %v, want ×8", d.Query.Old.Total, d.Query.New.Total)
	}
	if len(d.Efforts) != 2 {
		t.Fatalf("efforts = %d programs, want 2", len(d.Efforts))
	}
	// Worst regression first: p1 lost 41.3ms, p0 lost 35ms.
	if d.Efforts[0].Prog != 1 || d.Efforts[0].DeltaQueryTime() <= d.Efforts[1].DeltaQueryTime() {
		t.Errorf("efforts not sorted worst-first: %+v", d.Efforts)
	}
	for _, e := range d.Efforts {
		if e.New.Conflicts != 10*e.Old.Conflicts {
			t.Errorf("p%d conflicts %d → %d, want ×10", e.Prog, e.Old.Conflicts, e.New.Conflicts)
		}
	}

	// Verdict drift: exactly the one flipped experiment.
	if len(d.Verdicts) != 1 {
		t.Fatalf("verdict drift = %+v, want exactly one change", d.Verdicts)
	}
	v := d.Verdicts[0]
	if v.Prog != 1 || v.Test != 1 || v.Old != "inconclusive" || v.New != "counterexample" {
		t.Errorf("drift = %+v, want p1/t1 inconclusive→counterexample", v)
	}
}

func TestDiffReportGolden(t *testing.T) {
	oldRecs, newRecs := loadGoldenPair(t)
	got := DiffTraces(oldRecs, newRecs).String()

	goldenPath := filepath.Join("testdata", "diff_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("diff report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Byte stability: rendering the same pair again must be identical.
	if again := DiffTraces(oldRecs, newRecs).String(); again != got {
		t.Error("DiffReport.String is not deterministic across runs")
	}
}

func TestDiffTracesOneSided(t *testing.T) {
	oldRecs, _ := loadGoldenPair(t)
	d := DiffTraces(oldRecs, nil)
	if len(d.Verdicts) != 4 {
		t.Errorf("diff against empty trace: %d verdict changes, want 4 removals", len(d.Verdicts))
	}
	for _, v := range d.Verdicts {
		if v.New != "" {
			t.Errorf("removal has a new-side verdict: %+v", v)
		}
	}
	out := d.String()
	if !strings.Contains(out, "gone") {
		t.Error("one-sided diff should render removed latency as \"gone\"")
	}
	// And the mirror image.
	d = DiffTraces(nil, oldRecs)
	if !strings.Contains(d.String(), "new") || len(d.Verdicts) != 4 {
		t.Error("diff from empty trace should render additions")
	}
}
