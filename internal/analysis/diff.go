package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scamv/internal/telemetry"
)

// This file is the regression half of the observatory: given two trace files
// of the same (or similar) campaign — a known-good baseline and a fresh run —
// DiffTraces aligns them and reports what moved: per-stage latency deltas,
// per-program solver-effort regressions, and verdict drift. The report is a
// pure function of the two inputs (stable iteration orders everywhere), so
// the rendered text is byte-stable and golden-testable.

// StageDiff is one pipeline stage's latency distribution in both traces. A
// zero-count side means the stage only exists in the other trace.
type StageDiff struct {
	Name     string
	Old, New LatencyDist
}

// EffortDiff is one program's solver effort in both traces, aligned by
// program index. A zero side means the program ran in only one trace.
type EffortDiff struct {
	Prog     int
	Old, New ProgramEffort
}

// DeltaQueryTime is the signed query-time movement for sorting: positive
// means the new trace spent longer in the solver for this program.
func (e EffortDiff) DeltaQueryTime() time.Duration {
	return e.New.QueryTime - e.Old.QueryTime
}

// VerdictChange is one experiment whose verdict differs between the traces,
// aligned by (program, test) — the drift that turns a soundness claim.
type VerdictChange struct {
	Prog, Test int
	Old, New   string // empty side: experiment ran in only one trace
}

// DiffReport is the full alignment of two traces.
type DiffReport struct {
	Old, New *TraceReport

	// Stages is the union of pipeline stages: old-trace pipeline order, then
	// stages that only appear in the new trace.
	Stages []StageDiff

	// Query is the overall solver-query latency distribution on both sides.
	Query StageDiff

	// Efforts is the per-program solver-effort alignment, sorted by
	// descending query-time regression (worst offender first).
	Efforts []EffortDiff

	// Verdicts lists every (program, test) whose verdict changed, sorted by
	// program then test.
	Verdicts []VerdictChange
}

// DiffTraces aligns two record sets. Records should come straight from
// telemetry.LoadTrace / LoadTraceTolerant; order within each trace does not
// matter beyond first-seen stage order.
func DiffTraces(oldRecs, newRecs []telemetry.Record) *DiffReport {
	d := &DiffReport{
		Old: AnalyzeTrace(oldRecs),
		New: AnalyzeTrace(newRecs),
	}

	// Stage union, old pipeline order first.
	oldStages := make(map[string]LatencyDist, len(d.Old.Stages))
	for _, s := range d.Old.Stages {
		oldStages[s.Name] = s
	}
	newStages := make(map[string]LatencyDist, len(d.New.Stages))
	for _, s := range d.New.Stages {
		newStages[s.Name] = s
	}
	seen := make(map[string]bool)
	for _, s := range d.Old.Stages {
		d.Stages = append(d.Stages, StageDiff{Name: s.Name, Old: s, New: newStages[s.Name]})
		seen[s.Name] = true
	}
	for _, s := range d.New.Stages {
		if !seen[s.Name] {
			d.Stages = append(d.Stages, StageDiff{Name: s.Name, New: s})
		}
	}

	d.Query = StageDiff{Name: "all queries", Old: d.Old.QueryAll, New: d.New.QueryAll}

	// Program union, aligned by index.
	oldEff := make(map[int]ProgramEffort, len(d.Old.ByProgram))
	for _, e := range d.Old.ByProgram {
		oldEff[e.Prog] = e
	}
	newEff := make(map[int]ProgramEffort, len(d.New.ByProgram))
	for _, e := range d.New.ByProgram {
		newEff[e.Prog] = e
	}
	progs := make(map[int]bool)
	for p := range oldEff {
		progs[p] = true
	}
	for p := range newEff {
		progs[p] = true
	}
	for p := range progs {
		d.Efforts = append(d.Efforts, EffortDiff{Prog: p, Old: oldEff[p], New: newEff[p]})
	}
	sort.Slice(d.Efforts, func(i, j int) bool {
		di, dj := d.Efforts[i].DeltaQueryTime(), d.Efforts[j].DeltaQueryTime()
		if di != dj {
			return di > dj
		}
		return d.Efforts[i].Prog < d.Efforts[j].Prog
	})

	// Verdict drift by (prog, test); re-runs within one trace keep the last
	// verdict, matching how a campaign's final line of record reads.
	type key struct{ prog, test int }
	oldV := make(map[key]string)
	for _, rec := range oldRecs {
		if rec.Kind == "verdict" {
			oldV[key{rec.Prog, rec.Test}] = rec.Verdict
		}
	}
	newV := make(map[key]string)
	for _, rec := range newRecs {
		if rec.Kind == "verdict" {
			newV[key{rec.Prog, rec.Test}] = rec.Verdict
		}
	}
	keys := make(map[key]bool)
	for k := range oldV {
		keys[k] = true
	}
	for k := range newV {
		keys[k] = true
	}
	for k := range keys {
		if oldV[k] != newV[k] {
			d.Verdicts = append(d.Verdicts, VerdictChange{
				Prog: k.prog, Test: k.test, Old: oldV[k], New: newV[k]})
		}
	}
	sort.Slice(d.Verdicts, func(i, j int) bool {
		if d.Verdicts[i].Prog != d.Verdicts[j].Prog {
			return d.Verdicts[i].Prog < d.Verdicts[j].Prog
		}
		return d.Verdicts[i].Test < d.Verdicts[j].Test
	})
	return d
}

// maxEffortRows caps the per-program regression table like the single-trace
// report's effort table.
const maxEffortRows = 20

// String renders the diff. Layout mirrors TraceReport.String: aligned
// tables, a section per concern, regressions first.
func (d *DiffReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace diff: old %d campaigns/%d programs/%d queries/%d verdicts → new %d/%d/%d/%d\n",
		len(d.Old.Campaigns), d.Old.Programs, d.Old.Queries, d.Old.Verdicts,
		len(d.New.Campaigns), d.New.Programs, d.New.Queries, d.New.Verdicts)

	fmt.Fprintf(&sb, "\nstage latency (old → new):\n")
	rows := [][]string{{"stage", "count", "total", "Δtotal", "p95", "p99"}}
	for _, s := range d.Stages {
		rows = append(rows, []string{
			s.Name,
			fmtPair("%d", s.Old.Count, s.New.Count),
			fmtUS(s.Old.Total) + " → " + fmtUS(s.New.Total),
			fmtRatio(s.Old.Total, s.New.Total),
			fmtUS(s.Old.P95) + " → " + fmtUS(s.New.P95),
			fmtUS(s.Old.P99) + " → " + fmtUS(s.New.P99),
		})
	}
	writeAligned(&sb, rows)

	fmt.Fprintf(&sb, "\nsolver query latency (old → new):\n")
	rows = [][]string{{"", "count", "total", "Δtotal", "p95", "p99"}}
	rows = append(rows, []string{
		d.Query.Name,
		fmtPair("%d", d.Query.Old.Count, d.Query.New.Count),
		fmtUS(d.Query.Old.Total) + " → " + fmtUS(d.Query.New.Total),
		fmtRatio(d.Query.Old.Total, d.Query.New.Total),
		fmtUS(d.Query.Old.P95) + " → " + fmtUS(d.Query.New.P95),
		fmtUS(d.Query.Old.P99) + " → " + fmtUS(d.Query.New.P99),
	})
	writeAligned(&sb, rows)

	if len(d.Efforts) > 0 {
		fmt.Fprintf(&sb, "\nsolver effort per program (by Δ query time, worst first):\n")
		rows = [][]string{{"prog", "q-time", "Δ", "queries", "conflicts", "props"}}
		shown := d.Efforts
		if len(shown) > maxEffortRows {
			shown = shown[:maxEffortRows]
		}
		for _, e := range shown {
			rows = append(rows, []string{
				fmt.Sprintf("p%d", e.Prog),
				fmtUS(e.Old.QueryTime) + " → " + fmtUS(e.New.QueryTime),
				fmtRatio(e.Old.QueryTime, e.New.QueryTime),
				fmtPair("%d", e.Old.Queries, e.New.Queries),
				fmtPair("%d", e.Old.Conflicts, e.New.Conflicts),
				fmtPair("%d", e.Old.Propagations, e.New.Propagations),
			})
		}
		writeAligned(&sb, rows)
		if hidden := len(d.Efforts) - len(shown); hidden > 0 {
			fmt.Fprintf(&sb, "  … and %d more programs\n", hidden)
		}
	}

	if len(d.Verdicts) == 0 {
		fmt.Fprintf(&sb, "\nverdict drift: none\n")
	} else {
		fmt.Fprintf(&sb, "\nverdict drift (%d experiments changed):\n", len(d.Verdicts))
		rows = [][]string{{"prog", "test", "old", "new"}}
		for _, v := range d.Verdicts {
			o, n := v.Old, v.New
			if o == "" {
				o = "(absent)"
			}
			if n == "" {
				n = "(absent)"
			}
			rows = append(rows, []string{
				fmt.Sprintf("p%d", v.Prog), fmt.Sprintf("t%d", v.Test), o, n})
		}
		writeAligned(&sb, rows)
	}
	return sb.String()
}

// fmtPair renders "old → new", collapsing to one value when unchanged.
func fmtPair(format string, a, b int64) string {
	if a == b {
		return fmt.Sprintf(format, a)
	}
	return fmt.Sprintf(format+" → "+format, a, b)
}

// fmtRatio renders the new/old multiplier: "×1.00" unchanged, "×8.13" an
// eightfold regression, "×0.50" an improvement, "new"/"gone" for one-sided.
func fmtRatio(a, b time.Duration) string {
	switch {
	case a == 0 && b == 0:
		return "—"
	case a == 0:
		return "new"
	case b == 0:
		return "gone"
	default:
		return fmt.Sprintf("×%.2f", float64(b)/float64(a))
	}
}
