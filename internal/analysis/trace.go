package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scamv/internal/telemetry"
)

// This file ingests telemetry trace files (scamv -trace run.jsonl) and
// renders the latency side of a campaign: per-stage and per-query
// p50/p95/p99, and where the solver effort went program by program. It
// reuses the telemetry fixed-bucket histogram, so the offline quantiles
// agree with the live progress line's.

// LatencyDist is one latency distribution reconstructed from trace records.
type LatencyDist struct {
	Name  string
	Count int64
	Total time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

func distOf(name string, h *telemetry.Histogram) LatencyDist {
	d := LatencyDist{Name: name, Count: h.Count(), Total: h.Sum()}
	d.P50, d.P95, d.P99 = h.Quantiles()
	return d
}

// ProgramEffort is the solver work one program cost during test generation,
// plus its experiment outcome — the per-program breakdown that shows which
// programs were expensive and whether the effort paid off.
type ProgramEffort struct {
	Prog      int
	Queries   int64
	QueryTime time.Duration

	Conflicts    int64
	Decisions    int64
	Propagations int64
	BlastHits    int64
	BlastMisses  int64
	AckReads     int64

	Experiments     int64
	Counterexamples int64
}

// TraceReport is the aggregate of one trace file.
type TraceReport struct {
	Campaigns []string // campaign names in trace order
	Programs  int      // expected program count (sum over campaigns)

	Spans    int64
	Queries  int64
	Verdicts int64

	// Stages holds one latency distribution per pipeline stage, in
	// first-seen (pipeline) order.
	Stages []LatencyDist

	// QueryAll is the latency distribution over every solver query;
	// QueryByStatus splits it by solver outcome (sat, unsat, unknown).
	QueryAll      LatencyDist
	QueryByStatus []LatencyDist

	// ExecDist is the per-test execution latency (verdict records).
	ExecDist LatencyDist

	// ByProgram is the solver-effort breakdown, sorted by descending
	// query time.
	ByProgram []ProgramEffort

	// Resilience counters (schema v2 kinds); all zero for a healthy
	// campaign or a v1 trace.
	Retries      int64
	Timeouts     int64
	Skips        int64
	Quarantines  int64
	BreakerTrips int64

	// Portfolio and shape-cache aggregates (schema v3 fields); all zero for
	// a single-solver, cache-off campaign or an older trace. PortfolioWins
	// tallies deciding queries per worker (index = worker-1).
	PortfolioWins []int64
	SharedClauses int64
	ShapeHits     int64
	ShapeMisses   int64

	// Platforms holds the per-platform verdict breakdown of matrix campaigns
	// (schema v4 "platform" records), sorted by platform name; empty for
	// single-platform traces.
	Platforms []PlatformEffort
}

// PlatformEffort is one matrix platform's verdict counts and execution
// latency distribution.
type PlatformEffort struct {
	Name            string
	Experiments     int64
	Counterexamples int64
	Inconclusive    int64
	Exec            LatencyDist
}

// AnalyzeTrace aggregates trace records into a report.
func AnalyzeTrace(recs []telemetry.Record) *TraceReport {
	r := &TraceReport{}
	stageHists := make(map[string]*telemetry.Histogram)
	var stageOrder []string
	statusHists := make(map[string]*telemetry.Histogram)
	var statusOrder []string
	var queryHist, execHist telemetry.Histogram
	type platAgg struct {
		cex, inconcl int64
		hist         telemetry.Histogram
	}
	platforms := make(map[string]*platAgg)
	progs := make(map[int]*ProgramEffort)
	prog := func(p int) *ProgramEffort {
		pe := progs[p]
		if pe == nil {
			pe = &ProgramEffort{Prog: p}
			progs[p] = pe
		}
		return pe
	}

	for _, rec := range recs {
		d := time.Duration(rec.DurUS) * time.Microsecond
		switch rec.Kind {
		case "campaign":
			r.Campaigns = append(r.Campaigns, rec.Name)
			r.Programs += rec.Programs
		case "span":
			r.Spans++
			h := stageHists[rec.Stage]
			if h == nil {
				h = &telemetry.Histogram{}
				stageHists[rec.Stage] = h
				stageOrder = append(stageOrder, rec.Stage)
			}
			h.Observe(d)
		case "query":
			r.Queries++
			queryHist.Observe(d)
			h := statusHists[rec.Status]
			if h == nil {
				h = &telemetry.Histogram{}
				statusHists[rec.Status] = h
				statusOrder = append(statusOrder, rec.Status)
			}
			h.Observe(d)
			pe := prog(rec.Prog)
			pe.Queries++
			pe.QueryTime += d
			pe.Conflicts += rec.Conflicts
			pe.Decisions += rec.Decisions
			pe.Propagations += rec.Propagations
			pe.BlastHits += rec.BlastHits
			pe.BlastMisses += rec.BlastMisses
			pe.AckReads += rec.AckReads
			r.SharedClauses += rec.SharedClauses
			if rec.Winner > 0 {
				for len(r.PortfolioWins) < rec.Winner {
					r.PortfolioWins = append(r.PortfolioWins, 0)
				}
				r.PortfolioWins[rec.Winner-1]++
			}
		case "verdict":
			r.Verdicts++
			execHist.Observe(d)
			pe := prog(rec.Prog)
			pe.Experiments++
			if rec.Verdict == "counterexample" {
				pe.Counterexamples++
			}
		case "platform":
			pa := platforms[rec.Name]
			if pa == nil {
				pa = &platAgg{}
				platforms[rec.Name] = pa
			}
			pa.hist.Observe(d)
			switch rec.Verdict {
			case "counterexample":
				pa.cex++
			case "inconclusive":
				pa.inconcl++
			}
		case "retry":
			r.Retries++
		case "timeout":
			r.Timeouts++
		case "skip":
			r.Skips++
		case "quarantine":
			r.Quarantines++
		case "breaker":
			if rec.To == "open" {
				r.BreakerTrips++
			}
		case "shape":
			if rec.Hit {
				r.ShapeHits++
			} else {
				r.ShapeMisses++
			}
		}
	}

	for _, name := range stageOrder {
		r.Stages = append(r.Stages, distOf(name, stageHists[name]))
	}
	r.QueryAll = distOf("all", &queryHist)
	sort.Strings(statusOrder)
	for _, st := range statusOrder {
		r.QueryByStatus = append(r.QueryByStatus, distOf(st, statusHists[st]))
	}
	r.ExecDist = distOf("execute/test", &execHist)
	var platNames []string
	for name := range platforms {
		platNames = append(platNames, name)
	}
	sort.Strings(platNames)
	for _, name := range platNames {
		pa := platforms[name]
		r.Platforms = append(r.Platforms, PlatformEffort{
			Name:            name,
			Experiments:     pa.hist.Count(),
			Counterexamples: pa.cex,
			Inconclusive:    pa.inconcl,
			Exec:            distOf(name, &pa.hist),
		})
	}
	for _, pe := range progs {
		r.ByProgram = append(r.ByProgram, *pe)
	}
	sort.Slice(r.ByProgram, func(i, j int) bool {
		if r.ByProgram[i].QueryTime != r.ByProgram[j].QueryTime {
			return r.ByProgram[i].QueryTime > r.ByProgram[j].QueryTime
		}
		return r.ByProgram[i].Prog < r.ByProgram[j].Prog
	})
	return r
}

// maxProgramRows caps the per-program effort table; a paper-scale campaign
// has hundreds of programs and the tail rows carry no insight.
const maxProgramRows = 20

// String renders the report: stage latency table, query latency split by
// status, and the top of the per-program solver-effort breakdown.
func (r *TraceReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d campaigns, %d programs expected, %d spans, %d queries, %d verdicts\n",
		len(r.Campaigns), r.Programs, r.Spans, r.Queries, r.Verdicts)

	// Resilience line only when something went wrong: healthy-trace reports
	// are unchanged.
	if r.Retries > 0 || r.Timeouts > 0 || r.Skips > 0 || r.Quarantines > 0 || r.BreakerTrips > 0 {
		fmt.Fprintf(&sb, "resilience: %d retries (%d timeouts), %d skips, %d quarantined, %d breaker trips\n",
			r.Retries, r.Timeouts, r.Skips, r.Quarantines, r.BreakerTrips)
	}

	// Portfolio/shape-cache lines only when those features ran.
	if len(r.PortfolioWins) > 0 {
		fmt.Fprintf(&sb, "portfolio wins by worker:")
		for i, w := range r.PortfolioWins {
			fmt.Fprintf(&sb, " w%d=%d", i+1, w)
		}
		if r.SharedClauses > 0 {
			fmt.Fprintf(&sb, "  (%d clauses imported from the share pool)", r.SharedClauses)
		}
		sb.WriteString("\n")
	}
	if r.ShapeHits+r.ShapeMisses > 0 {
		fmt.Fprintf(&sb, "shape cache: %d/%d hits (%d distinct shapes encoded)\n",
			r.ShapeHits, r.ShapeHits+r.ShapeMisses, r.ShapeMisses)
	}

	fmt.Fprintf(&sb, "\nstage latency (per program):\n")
	writeDistTable(&sb, "stage", r.Stages)

	fmt.Fprintf(&sb, "\nsolver query latency:\n")
	dists := append([]LatencyDist{r.QueryAll}, r.QueryByStatus...)
	writeDistTable(&sb, "status", dists)

	fmt.Fprintf(&sb, "\nexecution latency (per test):\n")
	writeDistTable(&sb, "", []LatencyDist{r.ExecDist})

	if len(r.Platforms) > 0 {
		fmt.Fprintf(&sb, "\nplatform matrix (per-platform verdicts):\n")
		rows := [][]string{{"platform", "exps", "cex", "inconcl", "exe-total", "exe-p95"}}
		for _, pe := range r.Platforms {
			rows = append(rows, []string{
				pe.Name,
				fmt.Sprintf("%d", pe.Experiments),
				fmt.Sprintf("%d", pe.Counterexamples),
				fmt.Sprintf("%d", pe.Inconclusive),
				fmtUS(pe.Exec.Total),
				fmtUS(pe.Exec.P95),
			})
		}
		writeAligned(&sb, rows)
	}

	if len(r.ByProgram) > 0 {
		fmt.Fprintf(&sb, "\nsolver effort per program (by query time):\n")
		rows := [][]string{{"prog", "queries", "q-time", "conflicts", "decisions",
			"props", "blast h/m", "ack-reads", "exps", "cex"}}
		shown := r.ByProgram
		if len(shown) > maxProgramRows {
			shown = shown[:maxProgramRows]
		}
		for _, pe := range shown {
			rows = append(rows, []string{
				fmt.Sprintf("p%d", pe.Prog),
				fmt.Sprintf("%d", pe.Queries),
				fmtUS(pe.QueryTime),
				fmt.Sprintf("%d", pe.Conflicts),
				fmt.Sprintf("%d", pe.Decisions),
				fmt.Sprintf("%d", pe.Propagations),
				fmt.Sprintf("%d/%d", pe.BlastHits, pe.BlastMisses),
				fmt.Sprintf("%d", pe.AckReads),
				fmt.Sprintf("%d", pe.Experiments),
				fmt.Sprintf("%d", pe.Counterexamples),
			})
		}
		writeAligned(&sb, rows)
		if hidden := len(r.ByProgram) - len(shown); hidden > 0 {
			fmt.Fprintf(&sb, "  … and %d more programs\n", hidden)
		}
	}
	return sb.String()
}

func writeDistTable(sb *strings.Builder, label string, dists []LatencyDist) {
	rows := [][]string{{label, "count", "total", "p50", "p95", "p99"}}
	for _, d := range dists {
		rows = append(rows, []string{d.Name, fmt.Sprintf("%d", d.Count),
			fmtUS(d.Total), fmtUS(d.P50), fmtUS(d.P95), fmtUS(d.P99)})
	}
	writeAligned(sb, rows)
}

func writeAligned(sb *strings.Builder, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		sb.WriteString(" ")
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
}

// fmtUS renders a duration compactly (µs precision like the trace schema).
func fmtUS(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
