package analysis

import (
	"strings"
	"testing"
	"time"

	"scamv/internal/telemetry"
)

// synthTrace builds a small synthetic trace: one campaign, two programs
// with asymmetric solver effort, three stages, and a counterexample.
func synthTrace() []telemetry.Record {
	return []telemetry.Record{
		{V: 1, Kind: "campaign", Name: "t/refined", Programs: 2},
		{V: 1, Kind: "span", Prog: 0, Stage: "proggen", DurUS: 100},
		{V: 1, Kind: "span", Prog: 0, Stage: "testgen", DurUS: 4000},
		{V: 1, Kind: "span", Prog: 0, Stage: "execute", DurUS: 900},
		{V: 1, Kind: "query", Prog: 0, Status: "sat", DurUS: 2000,
			Conflicts: 5, Decisions: 40, Propagations: 600, BlastHits: 10, BlastMisses: 3, AckReads: 4},
		{V: 1, Kind: "query", Prog: 0, Status: "unsat", DurUS: 1500,
			Conflicts: 9, Decisions: 20, Propagations: 400},
		{V: 1, Kind: "query", Prog: 1, Status: "sat", DurUS: 300, Decisions: 8, Propagations: 50},
		{V: 1, Kind: "span", Prog: 1, Stage: "proggen", DurUS: 120},
		{V: 1, Kind: "span", Prog: 1, Stage: "testgen", DurUS: 800},
		{V: 1, Kind: "span", Prog: 1, Stage: "execute", DurUS: 700},
		{V: 1, Kind: "verdict", Prog: 0, Test: 0, Verdict: "counterexample", DurUS: 50},
		{V: 1, Kind: "verdict", Prog: 0, Test: 1, Verdict: "pass", DurUS: 40},
		{V: 1, Kind: "verdict", Prog: 1, Test: 0, Verdict: "inconclusive", DurUS: 45},
	}
}

func TestAnalyzeTrace(t *testing.T) {
	r := AnalyzeTrace(synthTrace())

	if len(r.Campaigns) != 1 || r.Campaigns[0] != "t/refined" || r.Programs != 2 {
		t.Fatalf("campaign header wrong: %+v", r)
	}
	if r.Spans != 6 || r.Queries != 3 || r.Verdicts != 3 {
		t.Fatalf("record counts wrong: spans=%d queries=%d verdicts=%d", r.Spans, r.Queries, r.Verdicts)
	}

	// Stages keep first-seen (pipeline) order.
	var order []string
	for _, d := range r.Stages {
		order = append(order, d.Name)
	}
	if got := strings.Join(order, ","); got != "proggen,testgen,execute" {
		t.Errorf("stage order = %s", got)
	}
	for _, d := range r.Stages {
		if d.Count != 2 {
			t.Errorf("stage %s count = %d, want 2", d.Name, d.Count)
		}
	}
	if r.Stages[1].Total != 4800*time.Microsecond {
		t.Errorf("testgen total = %v, want 4.8ms", r.Stages[1].Total)
	}
	// Quantiles come from log2 buckets: upper bound of the hit bucket,
	// clamped to the observed max — so p99 equals the max observation.
	if r.Stages[1].P99 != 4000*time.Microsecond {
		t.Errorf("testgen p99 = %v, want clamp to max 4ms", r.Stages[1].P99)
	}

	if r.QueryAll.Count != 3 || r.QueryAll.Total != 3800*time.Microsecond {
		t.Errorf("query-all dist wrong: %+v", r.QueryAll)
	}
	statuses := map[string]int64{}
	for _, d := range r.QueryByStatus {
		statuses[d.Name] = d.Count
	}
	if statuses["sat"] != 2 || statuses["unsat"] != 1 {
		t.Errorf("status split wrong: %v", statuses)
	}
	if r.ExecDist.Count != 3 || r.ExecDist.Total != 135*time.Microsecond {
		t.Errorf("exec dist wrong: %+v", r.ExecDist)
	}

	// Per-program effort: program 0 did more query work and sorts first.
	if len(r.ByProgram) != 2 || r.ByProgram[0].Prog != 0 {
		t.Fatalf("program sort wrong: %+v", r.ByProgram)
	}
	p0 := r.ByProgram[0]
	if p0.Queries != 2 || p0.QueryTime != 3500*time.Microsecond ||
		p0.Conflicts != 14 || p0.Decisions != 60 || p0.Propagations != 1000 ||
		p0.BlastHits != 10 || p0.BlastMisses != 3 || p0.AckReads != 4 {
		t.Errorf("program 0 effort wrong: %+v", p0)
	}
	if p0.Experiments != 2 || p0.Counterexamples != 1 {
		t.Errorf("program 0 outcome wrong: %+v", p0)
	}

	out := r.String()
	for _, want := range []string{"stage latency", "solver query latency",
		"solver effort per program", "p50", "p95", "p99", "testgen", "unsat", "p0", "blast h/m"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeTraceEmpty checks the zero-duration / empty-trace edge: no
// divisions by zero, no panic, a rendering that says so.
func TestAnalyzeTraceEmpty(t *testing.T) {
	r := AnalyzeTrace(nil)
	if r.Spans != 0 || r.Queries != 0 || r.Verdicts != 0 || len(r.ByProgram) != 0 {
		t.Fatalf("empty trace not empty: %+v", r)
	}
	out := r.String()
	if !strings.Contains(out, "0 spans, 0 queries, 0 verdicts") {
		t.Errorf("empty report header wrong:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN in empty report:\n%s", out)
	}

	// Zero-duration records (a campaign faster than the µs clock) must
	// keep counts while rendering zero latencies.
	r = AnalyzeTrace([]telemetry.Record{
		{V: 1, Kind: "span", Stage: "proggen"},
		{V: 1, Kind: "query", Status: "sat"},
		{V: 1, Kind: "verdict", Verdict: "pass"},
	})
	if r.Spans != 1 || r.QueryAll.Count != 1 || r.ExecDist.Count != 1 {
		t.Fatalf("zero-duration records lost: %+v", r)
	}
	if r.QueryAll.P99 != 0 || r.Stages[0].Total != 0 {
		t.Errorf("zero durations should stay zero: %+v", r.QueryAll)
	}
	if s := r.String(); strings.Contains(s, "NaN") {
		t.Errorf("NaN in zero-duration report:\n%s", s)
	}
}

// TestProgramTableCap checks the per-program table stays bounded and says
// how many rows it hid.
func TestProgramTableCap(t *testing.T) {
	var recs []telemetry.Record
	for p := 0; p < maxProgramRows+7; p++ {
		recs = append(recs, telemetry.Record{V: 1, Kind: "query", Prog: p,
			Status: "sat", DurUS: int64(1000 + p)})
	}
	r := AnalyzeTrace(recs)
	out := r.String()
	if !strings.Contains(out, "… and 7 more programs") {
		t.Errorf("cap note missing:\n%s", out)
	}
	if strings.Count(out, "\n p") > maxProgramRows+1 {
		t.Errorf("program table not capped:\n%s", out)
	}
}
