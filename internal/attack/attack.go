// Package attack mounts the concrete SiSCloak attack of the paper's §6.4:
// after Scam-V's validation exposes the speculative leak, an attacker uses
// Flush+Reload (§2.1) and the cycle counter (the PMC of §6.1, here the
// simulator's cycle accounting) to recover bits of the secret value that a
// single speculative load pushed into the cache.
//
// The attack loop is the classic one: (1) train the branch predictor by
// running the victim with benign inputs, (2) flush the probe array from the
// cache, (3) run the victim with the malicious input so the mispredicted
// branch transiently loads B[secret], (4) reload every line of B and time
// it — the single fast line reveals the secret at cache-line granularity.
package attack

import (
	"fmt"
	"math/rand"

	"scamv/internal/arm"
	"scamv/internal/expr"
	"scamv/internal/micro"
)

// Config tunes the attack.
type Config struct {
	// TrainRuns is the number of benign victim executions used to train
	// the branch predictor toward the in-bounds direction.
	TrainRuns int
	// ProbeLines is the number of cache lines of the probe array B that
	// the attacker reloads.
	ProbeLines int
	// LineSize is the cache line size in bytes.
	LineSize uint64
	// HitThreshold separates a cached reload from a memory reload, in
	// cycles. Zero picks the midpoint of the machine's hit/miss costs.
	HitThreshold uint64
}

// DefaultConfig returns attack parameters matching micro.DefaultConfig.
func DefaultConfig() Config {
	return Config{TrainRuns: 4, ProbeLines: 64, LineSize: 64}
}

// Result reports one Flush+Reload round.
type Result struct {
	// HitLines are the probe-array line indexes that reloaded fast.
	HitLines []int
	// Timings records the reload time of every probed line.
	Timings []uint64
}

// Recovered returns the single recovered line index, when exactly one probe
// line hit (the expected outcome of a successful round).
func (r *Result) Recovered() (int, bool) {
	if len(r.HitLines) == 1 {
		return r.HitLines[0], true
	}
	return 0, false
}

// Runner drives the victim program on a machine shared between victim and
// attacker (same core, shared L1D — the Flush+Reload setting).
type Runner struct {
	Cfg     Config
	Machine *micro.Machine
	Victim  *arm.Program
	// Mem is the victim's initial memory image (the secret lives here).
	Mem *expr.MemModel

	round int64 // seeds the per-round probe permutation
}

// NewRunner builds an attack runner over a fresh default machine.
func NewRunner(victim *arm.Program, mem *expr.MemModel, cfg Config) *Runner {
	if cfg.TrainRuns == 0 {
		cfg.TrainRuns = 4
	}
	if cfg.ProbeLines == 0 {
		cfg.ProbeLines = 64
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	return &Runner{
		Cfg:     cfg,
		Machine: micro.New(micro.DefaultConfig()),
		Victim:  victim,
		Mem:     mem,
	}
}

func (r *Runner) threshold() uint64 {
	if r.Cfg.HitThreshold > 0 {
		return r.Cfg.HitThreshold
	}
	return (r.Machine.Cfg.HitCycles + r.Machine.Cfg.MissCycles) / 2
}

// runVictim executes the victim once with the given registers.
func (r *Runner) runVictim(regs map[string]uint64) error {
	if err := r.Machine.LoadState(regs, r.Mem); err != nil {
		return err
	}
	return r.Machine.Run(r.Victim, 0, nil)
}

// Round performs one train → flush → victim → reload round. trainRegs is a
// benign input (the branch resolves toward the leaking body); attackRegs is
// the malicious input; probeBase is the address of the probe array B.
func (r *Runner) Round(trainRegs, attackRegs map[string]uint64, probeBase uint64) (*Result, error) {
	// (1) Train the predictor.
	for i := 0; i < r.Cfg.TrainRuns; i++ {
		if err := r.runVictim(trainRegs); err != nil {
			return nil, fmt.Errorf("attack: training run: %w", err)
		}
	}
	// (2) Flush: evict the probe array (the simulator's platform role of
	// clearing the cache; a real attacker would flush line by line).
	for i := 0; i < r.Cfg.ProbeLines; i++ {
		r.Machine.Cache.Flush(probeBase + uint64(i)*r.Cfg.LineSize)
	}
	// (3) Victim run with the malicious input: the mispredicted branch
	// issues the secret-dependent transient load.
	if err := r.runVictim(attackRegs); err != nil {
		return nil, fmt.Errorf("attack: victim run: %w", err)
	}
	// (4) Reload and time each probe line — in a random permutation order:
	// a sequential sweep would itself train the stride prefetcher and turn
	// every line into a hit, exactly as real Flush+Reload implementations
	// must avoid.
	res := &Result{Timings: make([]uint64, r.Cfg.ProbeLines)}
	thr := r.threshold()
	order := rand.New(rand.NewSource(int64(r.round))).Perm(r.Cfg.ProbeLines)
	r.round++
	for _, i := range order {
		t := r.Machine.AccessTimed(probeBase + uint64(i)*r.Cfg.LineSize)
		res.Timings[i] = t
	}
	for i, t := range res.Timings {
		if t < thr {
			res.HitLines = append(res.HitLines, i)
		}
	}
	return res, nil
}

// RecoverLine runs rounds until a round yields exactly one hit, returning
// the recovered probe-line index (the secret at cache-line granularity).
func (r *Runner) RecoverLine(trainRegs, attackRegs map[string]uint64, probeBase uint64, maxRounds int) (int, error) {
	if maxRounds <= 0 {
		maxRounds = 4
	}
	for round := 0; round < maxRounds; round++ {
		res, err := r.Round(trainRegs, attackRegs, probeBase)
		if err != nil {
			return 0, err
		}
		if line, ok := res.Recovered(); ok {
			return line, nil
		}
	}
	return 0, fmt.Errorf("attack: no unambiguous hit after %d rounds", maxRounds)
}
