package attack

import (
	"testing"

	"scamv/internal/expr"
	"scamv/internal/gen"
)

const (
	arrayA    = 0x10000 // #A
	arrayB    = 0x20000 // #B (probe array)
	boundSize = 8       // #A-size
)

func TestSiSCloak1RecoversSecret(t *testing.T) {
	// Victim memory: A[16] (out of bounds, since bound = 8) holds the
	// secret, expressed as a probe-array offset.
	secretLine := 37
	mem := expr.NewMemModel(0)
	mem.Set(arrayA+16, uint64(secretLine)*64)

	r := NewRunner(gen.SiSCloak1(), mem, DefaultConfig())
	train := map[string]uint64{"x0": 0, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": boundSize, "x5": arrayA, "x7": arrayB}

	line, err := r.RecoverLine(train, attackRegs, arrayB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if line != secretLine {
		t.Fatalf("recovered line %d, want %d", line, secretLine)
	}
}

func TestSiSCloak2RecoversConfidentialElement(t *testing.T) {
	// Fig. 6 second counterexample: elements of A carry their own
	// confidentiality classification in the high bit. A confidential
	// element (bit set) must not reach the cache — but it does,
	// transiently, when the classification branch mispredicts.
	secretLine := 21
	mem := expr.NewMemModel(0)
	// Confidential element at A[24]: high classification bit set plus the
	// secret index into B.
	mem.Set(arrayA+24, 0x80000000|uint64(secretLine)*64)
	// Public element at A[0] used for training (high bit clear).
	mem.Set(arrayA+0, 5*64)

	r := NewRunner(gen.SiSCloak2(), mem, DefaultConfig())
	// The transient load address is x7 + (0x80000000 | secretLine*64). The
	// attacker controls x7 and compensates for the classification bit so
	// the access lands inside its probe array.
	var base uint64 = arrayB
	base -= 0x80000000 // wraps: x7 + (bit | offset) lands back on arrayB
	train := map[string]uint64{"x0": 0, "x5": arrayA, "x7": base}
	attackRegs := map[string]uint64{"x0": 24, "x5": arrayA, "x7": base}

	line, err := r.RecoverLine(train, attackRegs, arrayB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if line != secretLine {
		t.Fatalf("recovered line %d, want %d", line, secretLine)
	}
}

func TestSpectrePHTDoesNotLeakOnA53(t *testing.T) {
	// The original Spectre-PHT gadget (both loads inside the branch,
	// causally dependent) must NOT leak on the modelled core: the
	// dependent transient load never issues (§6.5).
	secretLine := 37
	mem := expr.NewMemModel(0)
	mem.Set(arrayA+16, uint64(secretLine)*64)

	r := NewRunner(gen.SpectrePHT(), mem, DefaultConfig())
	train := map[string]uint64{"x0": 0, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": boundSize, "x5": arrayA, "x7": arrayB}

	res, err := r.Round(train, attackRegs, arrayB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitLines) != 0 {
		t.Fatalf("Spectre-PHT leaked lines %v on a non-forwarding core", res.HitLines)
	}
}

func TestNoLeakWhenPredictorAgrees(t *testing.T) {
	// When the predictor is trained in the SAME direction the attack input
	// takes (out of bounds → branch taken), there is no misprediction, no
	// transient execution, and nothing leaks.
	secretLine := 37
	mem := expr.NewMemModel(0)
	mem.Set(arrayA+16, uint64(secretLine)*64)

	r := NewRunner(gen.SiSCloak1(), mem, DefaultConfig())
	// "Training" with an out-of-bounds index: the branch resolves taken,
	// matching the attack run.
	train := map[string]uint64{"x0": 32, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	res, err := r.Round(train, attackRegs, arrayB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitLines) != 0 {
		t.Fatalf("leak despite agreeing predictor: %v", res.HitLines)
	}
}

func TestTimingsSeparateHitsFromMisses(t *testing.T) {
	secretLine := 3
	mem := expr.NewMemModel(0)
	mem.Set(arrayA+16, uint64(secretLine)*64)
	r := NewRunner(gen.SiSCloak1(), mem, DefaultConfig())
	train := map[string]uint64{"x0": 0, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	res, err := r.Round(train, attackRegs, arrayB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) != r.Cfg.ProbeLines {
		t.Fatalf("timings: %d", len(res.Timings))
	}
	hit := res.Timings[secretLine]
	for i, tm := range res.Timings {
		if i == secretLine {
			continue
		}
		if tm <= hit {
			t.Fatalf("line %d (%d cycles) not slower than the secret line (%d)", i, tm, hit)
		}
	}
}

func TestRecoveredRequiresSingleHit(t *testing.T) {
	r := &Result{HitLines: []int{3, 9}}
	if _, ok := r.Recovered(); ok {
		t.Error("two hits must not count as recovered")
	}
	r2 := &Result{HitLines: []int{7}}
	if line, ok := r2.Recovered(); !ok || line != 7 {
		t.Error("single hit must recover")
	}
	if _, ok := (&Result{}).Recovered(); ok {
		t.Error("no hits must not recover")
	}
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(gen.SiSCloak1(), expr.NewMemModel(0), Config{})
	if r.Cfg.TrainRuns == 0 || r.Cfg.ProbeLines == 0 || r.Cfg.LineSize == 0 {
		t.Errorf("defaults not applied: %+v", r.Cfg)
	}
	if r.threshold() == 0 {
		t.Error("threshold must default to a positive value")
	}
}

func TestRecoverLineGivesUp(t *testing.T) {
	// A victim that never leaks (branch trained correctly) exhausts the
	// round budget with an error rather than fabricating a recovery.
	mem := expr.NewMemModel(0)
	r := NewRunner(gen.SiSCloak1(), mem, DefaultConfig())
	sameDir := map[string]uint64{"x0": 32, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": boundSize, "x5": arrayA, "x7": arrayB}
	if _, err := r.RecoverLine(sameDir, attackRegs, arrayB, 2); err == nil {
		t.Error("expected failure when the predictor agrees with the attack input")
	}
}
