package scamv

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"scamv/internal/gen"
	"scamv/internal/obs"
)

// benchGenCampaign is the MLine-support generation benchmark of the
// incremental-solver rework: 8 symbolic paths (TemplateA composed three
// times), 128 coverage classes, refinement on — the configuration whose
// per-(pair × class × slot) solver rebuild cost motivated shared-prefix
// reuse.
func benchGenCampaign(legacy bool) Experiment {
	return Experiment{
		Name:            "bench-gen-mline",
		Template:        gen.Sequence{Parts: []gen.Template{gen.TemplateA{}, gen.TemplateA{}, gen.TemplateA{}}},
		Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll},
		Refined:         true,
		Support:         obs.MLine{Geom: obs.DefaultGeometry},
		Programs:        3,
		TestsPerProgram: 40,
		Seed:            2021,
		MaxConflicts:    200000,
		LegacySolver:    legacy,
	}
}

// benchGenRow is one mode's entry in BENCH_gen.json.
type benchGenRow struct {
	Mode            string  `json:"mode"`
	Programs        int     `json:"programs"`
	Experiments     int     `json:"experiments"`
	Counterexamples int     `json:"counterexamples"`
	Inconclusive    int     `json:"inconclusive"`
	Queries         int     `json:"queries"`
	GenTimeMS       float64 `json:"gen_time_ms"`
	GenPerExpUS     float64 `json:"gen_per_exp_us"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
}

func benchGenRun(t *testing.T, mode string, mutate func(*Experiment)) benchGenRow {
	t.Helper()
	e := benchGenCampaign(false)
	if mutate != nil {
		mutate(&e)
	}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	row := benchGenRow{
		Mode:            mode,
		Programs:        res.Programs,
		Experiments:     res.Experiments,
		Counterexamples: res.Counterexamples,
		Inconclusive:    res.Inconclusive,
		Queries:         res.Queries,
		GenTimeMS:       float64(res.GenTime.Microseconds()) / 1e3,
	}
	if res.Experiments > 0 {
		row.GenPerExpUS = float64(res.GenTime.Microseconds()) / float64(res.Experiments)
	}
	if res.GenTime > 0 {
		row.QueriesPerSec = float64(res.Queries) / res.GenTime.Seconds()
	}
	return row
}

// TestWriteBenchGen measures generation throughput of the incremental
// solver against the legacy fresh-solver-per-stream mode on the MLine
// campaign and writes BENCH_gen.json. Gated behind BENCH_GEN=1 so regular
// test runs stay fast:
//
//	BENCH_GEN=1 go test -run TestWriteBenchGen -count=1 .
//
// (or `make bench-gen`). The verdict counts of the two modes must match —
// the incremental solver changes cost, not outcomes.
func TestWriteBenchGen(t *testing.T) {
	if os.Getenv("BENCH_GEN") == "" {
		t.Skip("set BENCH_GEN=1 to run the generation benchmark")
	}
	inc := benchGenRun(t, "incremental", nil)
	leg := benchGenRun(t, "legacy", func(e *Experiment) { e.LegacySolver = true })
	por := benchGenRun(t, "portfolio-4+cache", func(e *Experiment) {
		e.Portfolio = 4
		e.SharedCache = true
	})
	if inc.Experiments != leg.Experiments ||
		inc.Counterexamples != leg.Counterexamples ||
		inc.Inconclusive != leg.Inconclusive {
		t.Errorf("verdict counts diverge between modes:\nincremental %+v\nlegacy      %+v", inc, leg)
	}
	// The portfolio row must ask the same questions; its counterexample
	// count may differ slightly from the plain incremental baseline (learnt
	// clauses rewound per query — see TestWriteBenchPortfolio), so only
	// experiment/query parity is asserted here.
	if por.Experiments != inc.Experiments || por.Queries != inc.Queries ||
		por.Inconclusive != inc.Inconclusive {
		t.Errorf("portfolio row diverges from baseline:\nportfolio   %+v\nincremental %+v", por, inc)
	}
	speedup := 0.0
	if inc.GenTimeMS > 0 {
		speedup = leg.GenTimeMS / inc.GenTimeMS
	}
	out := struct {
		Date        string        `json:"date"`
		Campaign    string        `json:"campaign"`
		Paths       int           `json:"paths"`
		Classes     int           `json:"classes"`
		Incremental benchGenRow   `json:"incremental"`
		Legacy      benchGenRow   `json:"legacy"`
		Portfolio   benchGenRow   `json:"portfolio"`
		Speedup     float64       `json:"gen_time_speedup"`
		Rows        []benchGenRow `json:"-"`
	}{
		Date:        time.Now().UTC().Format("2006-01-02"),
		Campaign:    "MLine-support, TemplateA^3 (8 paths), 128 classes, refined MCt/SpecAll, 3 programs x 40 tests, seed 2021",
		Paths:       8,
		Classes:     128,
		Incremental: inc,
		Legacy:      leg,
		Portfolio:   por,
		Speedup:     speedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_gen.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("gen speedup: %.2fx (legacy %.1fms, incremental %.1fms; queries/s %.0f vs %.0f)",
		speedup, leg.GenTimeMS, inc.GenTimeMS, inc.QueriesPerSec, leg.QueriesPerSec)
	if speedup < 2 {
		t.Errorf("gen speedup %.2fx below the 2x target", speedup)
	}
}
