package scamv

import (
	"scamv/internal/gen"
	"scamv/internal/micro"
	"scamv/internal/obs"
)

// This file defines the experiment presets of the paper's evaluation
// (Table 1 and the Fig. 7 table). Program counts are parameters: the paper
// ran 425–942 programs per campaign over 7 days on 4 Raspberry Pis; the
// benchmarks here default to a reduced scale (see bench_test.go), and
// cmd/scamv can run the paper-scale versions.

// Paper-scale campaign sizes, for reference and for cmd/scamv -paper.
const (
	PaperMPartPrograms     = 450
	PaperMPartPAPrograms   = 425
	PaperMCtAPrograms      = 655
	PaperMCtBPrograms      = 942
	PaperFig7CPrograms     = 8
	PaperFig7CTests        = 1000
	PaperMSpec1BPrograms   = 915
	PaperStraightPrograms  = 478
	PaperStraightTests     = 100
	DefaultTestsPerProgram = 40
	// Noise probabilities are calibrated so the inconclusive rates land in
	// the ballpark of Table 1: M_ct campaigns show ~0.02-2%% inconclusive
	// experiments, M_part campaigns ~8-26%% (the attacker-partition view is
	// far more sensitive to spurious fills).
	mctNoiseProb           = 0.001
	mpartNoiseProb         = 0.01
	defaultRandomPhaseProb = 0
	defaultMaxConflictsGen = 200000
	defaultARLo, defaultHi = 61, 127
	pageAlignedARLo        = 64
	defaultSpecWindowStmts = 16
)

func microWithNoise(noise float64) micro.Config {
	cfg := micro.DefaultConfig()
	cfg.NoiseProb = noise
	return cfg
}

// MPartExperiments builds the cache-partitioning campaigns of Table 1
// (§6.2): the unguided baseline (coverage M_pc) and the refined campaign
// (refinement M_part', coverage M_pc & M_line). pageAligned selects the
// page-aligned attacker region (AR = sets 64..127) instead of the default
// AR = sets 61..127.
func MPartExperiments(pageAligned bool, programs, tests int, seed int64) (unguided, refined Experiment) {
	lo := uint64(defaultARLo)
	name := "Mpart"
	if pageAligned {
		lo = pageAlignedARLo
		name = "Mpart-page-aligned"
	}
	ar := obs.ARRegion{Lo: lo, Hi: defaultHi, Geom: obs.DefaultGeometry}
	view := micro.RangeView(int(lo), defaultHi)
	base := Experiment{
		Template:        gen.Stride{},
		Programs:        programs,
		TestsPerProgram: tests,
		Seed:            seed,
		RandomPhaseProb: defaultRandomPhaseProb,
		MaxConflicts:    defaultMaxConflictsGen,
		Micro:           microWithNoise(mpartNoiseProb),
		AttackerView:    view,
	}
	unguided = base
	unguided.Name = name + "/unguided"
	unguided.Model = &obs.MPart{AR: ar}
	unguided.Refined = false

	refined = base
	refined.Name = name + "/refined"
	refined.Model = &obs.MPart{AR: ar, WithRefinement: true}
	refined.Refined = true
	refined.Support = obs.MLine{Geom: obs.DefaultGeometry}
	return unguided, refined
}

// MCtExperiments builds the constant-time campaigns of Table 1 and Fig. 7
// (§6.3, §6.5): the unguided baseline (plain M_ct) and the refined campaign
// (refinement M_spec) for the given template.
func MCtExperiments(tpl gen.Template, programs, tests int, seed int64) (unguided, refined Experiment) {
	base := Experiment{
		Template:        tpl,
		Programs:        programs,
		TestsPerProgram: tests,
		Seed:            seed,
		RandomPhaseProb: defaultRandomPhaseProb,
		MaxConflicts:    defaultMaxConflictsGen,
		Micro:           microWithNoise(mctNoiseProb),
		Speculative:     true,
	}
	unguided = base
	unguided.Name = "Mct-" + tpl.Name() + "/unguided"
	unguided.Model = &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecNone}
	unguided.Refined = false

	refined = base
	refined.Name = "Mct-" + tpl.Name() + "/refined"
	refined.Model = &obs.MCt{
		Geom:           obs.DefaultGeometry,
		Spec:           obs.SpecAll,
		MaxShadowStmts: defaultSpecWindowStmts,
	}
	refined.Refined = true
	return unguided, refined
}

// MSpec1Experiment builds the M_spec1 validation campaign of Fig. 7 (§6.5):
// the model under validation is M_spec1 (M_ct plus the first transient
// load), refined by M_spec.
func MSpec1Experiment(tpl gen.Template, programs, tests int, seed int64) Experiment {
	return Experiment{
		Name:            "Mspec1-" + tpl.Name() + "/refined",
		Template:        tpl,
		Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecFirstBase, MaxShadowStmts: defaultSpecWindowStmts},
		Refined:         true,
		Programs:        programs,
		TestsPerProgram: tests,
		Seed:            seed,
		RandomPhaseProb: defaultRandomPhaseProb,
		MaxConflicts:    defaultMaxConflictsGen,
		Micro:           microWithNoise(mctNoiseProb),
		Speculative:     true,
	}
}

// MTimeExperiments builds the variable-time arithmetic channel campaigns
// (the §3 illustration, run as an extension experiment): the core has an
// early-terminating multiplier and the attacker reads the cycle counter.
// M_ct considers multiply operands unobservable; the refined model M_time
// observes their early-termination size class.
func MTimeExperiments(programs, tests int, seed int64) (unguided, refined Experiment) {
	mc := microWithNoise(0) // timing channel: deterministic core, no spurious fills
	mc.VarTimeMul = true
	base := Experiment{
		Template:        gen.TemplateMul{},
		Programs:        programs,
		TestsPerProgram: tests,
		Seed:            seed,
		RandomPhaseProb: defaultRandomPhaseProb,
		MaxConflicts:    defaultMaxConflictsGen,
		Micro:           mc,
		TimingAttacker:  true,
	}
	unguided = base
	unguided.Name = "Mtime/unguided"
	unguided.Model = &obs.MTime{Geom: obs.DefaultGeometry}
	unguided.Refined = false

	refined = base
	refined.Name = "Mtime/refined"
	refined.Model = &obs.MTime{Geom: obs.DefaultGeometry, WithRefinement: true}
	refined.Refined = true
	return unguided, refined
}

// MPCModelExperiments validates the program-counter security model of
// Molnar et al. (the paper's [36]) against the data-cache channel: the
// model under validation observes only control flow; the refinement adds
// cache-line observations. On any machine with a data cache the refined
// campaign exposes the model immediately.
func MPCModelExperiments(programs, tests int, seed int64) (unguided, refined Experiment) {
	base := Experiment{
		Template:        gen.TemplateB{},
		Programs:        programs,
		TestsPerProgram: tests,
		Seed:            seed,
		RandomPhaseProb: defaultRandomPhaseProb,
		MaxConflicts:    defaultMaxConflictsGen,
		Micro:           microWithNoise(mctNoiseProb),
	}
	unguided = base
	unguided.Name = "Mpcmodel/unguided"
	unguided.Model = &obs.MPCModel{Geom: obs.DefaultGeometry}
	unguided.Refined = false

	refined = base
	refined.Name = "Mpcmodel/refined"
	refined.Model = &obs.MPCModel{Geom: obs.DefaultGeometry, WithRefinement: true}
	refined.Refined = true
	return unguided, refined
}

// StraightLineExperiment builds the M_spec' campaign of Fig. 7 (§6.5):
// Template D programs with unconditional direct branches, refined by the
// tautological-branch transform M_spec'. The branch is unconditional, so
// there is no predictor mistraining to do.
func StraightLineExperiment(programs, tests int, seed int64) Experiment {
	return Experiment{
		Name:            "Mct-tplD/Mspec'",
		Template:        gen.TemplateD{},
		Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecStraightLine, MaxShadowStmts: defaultSpecWindowStmts},
		Refined:         true,
		Programs:        programs,
		TestsPerProgram: tests,
		Seed:            seed,
		RandomPhaseProb: defaultRandomPhaseProb,
		MaxConflicts:    defaultMaxConflictsGen,
		Micro:           microWithNoise(mctNoiseProb),
		Speculative:     false,
	}
}
