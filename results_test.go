package scamv

import (
	"strings"
	"testing"
	"time"

	"scamv/internal/gen"
	"scamv/internal/micro"
	"scamv/internal/stage"
)

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{500 * time.Microsecond, "500µs"},
		{2500 * time.Microsecond, "2.5ms"},
		{3 * time.Second, "3.00s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestResultAverages(t *testing.T) {
	r := &Result{Experiments: 4, GenTime: 8 * time.Millisecond, ExeTime: 2 * time.Millisecond}
	if r.AvgGen() != 2*time.Millisecond || r.AvgExe() != 500*time.Microsecond {
		t.Errorf("averages: %v %v", r.AvgGen(), r.AvgExe())
	}
	empty := &Result{}
	if empty.AvgGen() != 0 || empty.AvgExe() != 0 {
		t.Error("zero experiments must not divide by zero")
	}
}

func TestPresetNames(t *testing.T) {
	u, r := MPartExperiments(false, 1, 1, 1)
	if u.Name != "Mpart/unguided" || r.Name != "Mpart/refined" {
		t.Errorf("mpart names: %q %q", u.Name, r.Name)
	}
	u, r = MPartExperiments(true, 1, 1, 1)
	if !strings.Contains(u.Name, "page-aligned") {
		t.Errorf("page-aligned name: %q", u.Name)
	}
	u, r = MCtExperiments(gen.TemplateA{}, 1, 1, 1)
	if u.Name != "Mct-tplA/unguided" || r.Name != "Mct-tplA/refined" {
		t.Errorf("mct names: %q %q", u.Name, r.Name)
	}
	if e := MSpec1Experiment(gen.TemplateB{}, 1, 1, 1); e.Name != "Mspec1-tplB/refined" {
		t.Errorf("mspec1 name: %q", e.Name)
	}
	if e := StraightLineExperiment(1, 1, 1); !strings.Contains(e.Name, "Mspec'") {
		t.Errorf("straight-line name: %q", e.Name)
	}
}

func TestPresetViews(t *testing.T) {
	// The M_part attacker only sees its partition; the M_ct attacker sees
	// everything.
	_, r := MPartExperiments(false, 1, 1, 1)
	if r.AttackerView(60) || !r.AttackerView(61) || !r.AttackerView(127) {
		t.Error("mpart attacker view must be the AR partition")
	}
	_, rc := MCtExperiments(gen.TemplateA{}, 1, 1, 1)
	e := rc.WithDefaults()
	if !e.AttackerView(0) || !e.AttackerView(127) {
		t.Error("mct attacker view must be the full cache")
	}
}

func TestPresetMicroSettings(t *testing.T) {
	_, r := MTimeExperiments(1, 1, 1)
	if !r.Micro.VarTimeMul || !r.TimingAttacker {
		t.Error("mtime preset must enable the timing channel")
	}
	if r.Micro.NoiseProb != 0 {
		t.Error("timing campaigns must run without fill noise")
	}
	_, rp := MPartExperiments(false, 1, 1, 1)
	if rp.Micro.NoiseProb == 0 {
		t.Error("mpart campaigns model measurement noise")
	}
	if rp.Micro.Sets != micro.DefaultConfig().Sets {
		t.Error("presets use the default A53 geometry")
	}
}

func TestRepairReportString(t *testing.T) {
	rep := &RepairReport{
		Steps: []RepairStep{
			{K: 0, Model: "Mct+Mspec", Result: &Result{Experiments: 10, Counterexamples: 5}},
			{K: 1, Model: "Mspec1+Mspec", Result: &Result{Experiments: 10}},
		},
		FinalK:    1,
		Validated: true,
	}
	out := rep.String()
	for _, want := range []string{"K=0", "K=1", "repaired: Mspec1"} {
		if !strings.Contains(out, want) {
			t.Errorf("repair report missing %q:\n%s", want, out)
		}
	}
	rep.Validated = false
	if !strings.Contains(rep.String(), "repair failed") {
		t.Error("failed repair must say so")
	}
}

func TestFormatStagesEdgeCases(t *testing.T) {
	// Empty stage spine (monolithic engine): no block at all.
	if got := FormatStages(&Result{Name: "mono"}); got != "" {
		t.Errorf("FormatStages with no stages = %q, want empty", got)
	}

	// Zero-duration campaign: busy shares have a zero denominator and must
	// render as "-" instead of dividing by zero.
	r := &Result{Name: "zero", Stages: []stage.Snapshot{
		{Name: "proggen", Workers: 1},
		{Name: "execute", Workers: 2},
	}}
	out := FormatStages(r)
	if !strings.Contains(out, "busy%") {
		t.Errorf("missing busy%% column:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("zero-duration campaign should render '-' shares:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "%!") {
		t.Errorf("bad formatting in zero-duration output:\n%s", out)
	}

	// Normal case: shares sum to ~100 and reflect the busy split.
	r = &Result{Name: "hot", Stages: []stage.Snapshot{
		{Name: "testgen", Workers: 2, In: 4, Out: 4, Busy: 3 * time.Second},
		{Name: "execute", Workers: 2, In: 4, Out: 4, Busy: 1 * time.Second},
	}}
	out = FormatStages(r)
	if !strings.Contains(out, "75%") || !strings.Contains(out, "25%") {
		t.Errorf("busy shares wrong:\n%s", out)
	}
}
